// Package ccatscale is a laboratory for evaluating TCP congestion
// control throughput models and fairness properties at the scale of the
// Internet core, reproducing Philip, Ware, Athapathu, Sherry & Sekar,
// "Revisiting TCP Congestion Control Throughput Models & Fairness
// Properties At Scale" (IMC 2021).
//
// The library wraps a deterministic packet-level discrete-event testbed
// — a dumbbell topology with a drop-tail bottleneck, SACK/PRR/TLP TCP
// transports, and NewReno, Cubic and BBRv1 congestion control — behind
// the paper's experimental vocabulary: settings (EdgeScale, CoreScale),
// flow mixes, warm-up and convergence rules, and the derived metrics
// (Mathis-model fits, Jain's Fairness Index, inter-CCA shares, drop
// burstiness).
//
// # Quick start
//
//	setting := ccatscale.CoreScaleScaled(50) // 200 Mbps, 20–100 flows
//	cfg := setting.Build(
//		ccatscale.MixedFlows(40, "cubic", "reno", 20*time.Millisecond),
//		ccatscale.WithSeed(1))
//	res, err := ccatscale.Run(context.Background(), cfg)
//	if err != nil { ... }
//	fmt.Println(res.ShareByCCA()["cubic"]) // ≈0.7–0.8 (paper Finding 8)
//
// Every run is deterministic in its seed: identical configurations
// reproduce bit-identical results. Run and RunMany accept functional
// options (WithBudget, WithCollector, WithSweepOptions) for resource
// governance and live telemetry; both only observe, so an instrumented
// run reproduces the same bits as a bare one.
package ccatscale

import (
	"context"
	"time"

	"ccatscale/internal/budget"
	"ccatscale/internal/core"
	"ccatscale/internal/mathis"
	"ccatscale/internal/metrics"
	"ccatscale/internal/netem"
	"ccatscale/internal/schema"
	"ccatscale/internal/sim"
	"ccatscale/internal/units"
	"ccatscale/internal/waremodel"
)

// Setting is an evaluation regime: bottleneck rate, buffer, flow-count
// sweep, and run-length parameters. See EdgeScale, CoreScale and
// CoreScaleScaled.
type Setting = core.Setting

// FlowSpec describes one flow (CCA name and base RTT).
type FlowSpec = core.FlowSpec

// RunConfig fully describes one experiment run.
type RunConfig = core.RunConfig

// RunResult holds per-flow and aggregate metrics of a completed run.
type RunResult = core.RunResult

// FlowResult holds one flow's measurement-window metrics.
type FlowResult = core.FlowResult

// MathisRow is one cell of the paper's §4 analysis (Table 1, Figures
// 2–3, and the drop-burstiness corroboration).
type MathisRow = core.MathisRow

// FairnessRow is one cell of the fairness figures (§5).
type FairnessRow = core.FairnessRow

// InterCCAMode selects the competition pattern of an inter-CCA sweep.
type InterCCAMode = core.InterCCAMode

// Inter-CCA sweep modes.
const (
	// EqualSplit runs a 50/50 mix of two CCAs (Figures 5 and 8).
	EqualSplit = core.EqualSplit
	// OneVersusMany runs one flow of the first CCA against a crowd of
	// the second (Figures 6 and 7).
	OneVersusMany = core.OneVersusMany
)

// EdgeScale returns the paper's edge-link regime: 100 Mbps bottleneck,
// 3 MB drop-tail buffer, tens of flows.
func EdgeScale() Setting { return core.EdgeScale() }

// CoreScale returns the paper's full at-scale regime: 10 Gbps, 375 MB
// buffer, 1000–5000 flows. Full-fidelity sweeps at this setting process
// billions of simulator events; prefer CoreScaleScaled for interactive
// work.
func CoreScale() Setting { return core.CoreScale() }

// CoreScaleScaled shrinks CoreScale by divisor while preserving
// per-flow bandwidth (2 Mbps/flow) and the buffer-to-BDP ratio.
func CoreScaleScaled(divisor int) Setting { return core.CoreScaleScaled(divisor) }

// Run executes one experiment under ctx. Cancellation is polled from
// the engine's supervisor hook, so a cancelled run stops promptly and
// surfaces a structured error. Options attach governance and telemetry
// to configs that do not already carry their own.
func Run(ctx context.Context, cfg RunConfig, opts ...RunOption) (RunResult, error) {
	o := applyOptions(opts)
	if cfg.Budget == nil {
		cfg.Budget = o.Budget
	}
	if cfg.Collector == nil {
		cfg.Collector = o.Collector
	}
	return core.RunCtx(ctx, cfg)
}

// RunMany executes several runs concurrently under ctx (each run is
// internally single-threaded and deterministic) and returns results in
// input order, one entry per config. Options configure parallelism,
// sweep-level budget governance, and telemetry; per-config errors are
// tagged with the config's index and joined.
func RunMany(ctx context.Context, cfgs []RunConfig, opts ...RunOption) ([]RunResult, error) {
	return core.RunManyCtx(ctx, cfgs, applyOptions(opts))
}

// Budget bounds one run's resource consumption: heap bytes, simulator
// event footprint, retained trace points, wall clock, and virtual
// horizon. Zero fields are unlimited. Set it on a RunConfig (or a
// Setting) to enable admission control and in-flight enforcement.
type Budget = budget.Budget

// BudgetError is the structured breach report governance surfaces
// instead of an OOM: which resource, at which stage (admission or
// in-flight), the limit and the observed value — plus, for in-flight
// breaches, a Checkpoint of the progress made.
type BudgetError = budget.BudgetError

// Checkpoint records a stopped run's progress (virtual time, events
// processed, wall clock consumed).
type Checkpoint = budget.Checkpoint

// Usage records the resources a run (or merged sweep) actually
// consumed; see RunResult.Usage.
type Usage = budget.Usage

// Footprint is the estimator's predicted cost of one configuration.
type Footprint = budget.Footprint

// SweepOptions configures RunManyCtx: parallelism, a shared Budget
// applied to configs that carry none, and the reduced-fidelity retry
// allowance for budget breaches.
type SweepOptions = core.SweepOptions

// RunManyCtx executes several runs concurrently under a context and
// sweep-level resource governance: configurations whose estimated
// footprint exceeds the budget are rejected with an admission-stage
// BudgetError (degraded and retried up to Retries tiers first), runs
// that breach in flight are retried at reduced fidelity with
// deterministic backoff, and a cancelled context stops scheduling new
// runs. Per-config errors are tagged with the config's index.
//
// Deprecated: use RunMany with WithSweepOptions — same behavior,
// options-based surface.
func RunManyCtx(ctx context.Context, cfgs []RunConfig, opt SweepOptions) ([]RunResult, error) {
	return core.RunManyCtx(ctx, cfgs, opt)
}

// EstimateConfig predicts a configuration's resource footprint — the
// same model RunManyCtx's admission control uses.
func EstimateConfig(cfg RunConfig) Footprint { return core.EstimateConfig(cfg) }

// DegradeTier returns cfg degraded to the given fidelity tier: a
// coarser throughput series, a smaller drop-timestamp cap, and (from
// tier 2) a shorter measurement window. Deterministic in (cfg, tier).
func DegradeTier(cfg RunConfig, tier int) RunConfig { return core.DegradeTier(cfg, tier) }

// UniformFlows builds n flows of one CCA at one base RTT.
func UniformFlows(n int, cca string, rtt time.Duration) []FlowSpec {
	return core.UniformFlows(n, cca, sim.Duration(rtt))
}

// MixedFlows builds a 50/50 interleaved mix of two CCAs at one RTT.
func MixedFlows(n int, ccaA, ccaB string, rtt time.Duration) []FlowSpec {
	return core.MixedFlows(n, ccaA, ccaB, sim.Duration(rtt))
}

// OneVersusFlows builds one flow of loner plus n−1 flows of crowd.
func OneVersusFlows(n int, loner, crowd string, rtt time.Duration) []FlowSpec {
	return core.OneVersusFlows(n, loner, crowd, sim.Duration(rtt))
}

// MathisSweep runs the §4 experiment (all NewReno at 20 ms) across the
// setting's flow counts: the data behind Table 1 and Figures 2–3.
func MathisSweep(s Setting, seed uint64, parallelism int) ([]MathisRow, error) {
	return core.MathisSweep(s, seed, parallelism)
}

// IntraCCASweep measures intra-CCA fairness (JFI) across flow counts
// and RTTs (Figure 4 for "bbr"; Finding 4 for "reno"/"cubic").
func IntraCCASweep(s Setting, cca string, rtts []time.Duration, seed uint64, parallelism int) ([]FairnessRow, error) {
	return core.IntraCCASweep(s, cca, simTimes(rtts), seed, parallelism)
}

// InterCCASweep measures inter-CCA goodput shares (Figures 5–8).
func InterCCASweep(s Setting, mode InterCCAMode, ccaA, ccaB string, rtts []time.Duration, seed uint64, parallelism int) ([]FairnessRow, error) {
	return core.InterCCASweep(s, mode, ccaA, ccaB, simTimes(rtts), seed, parallelism)
}

// PaperRTTs returns the three base RTTs the paper's fairness figures
// sweep: 20, 100 and 200 ms.
func PaperRTTs() []time.Duration {
	out := make([]time.Duration, len(core.RTTs))
	for i, r := range core.RTTs {
		out[i] = r.Std()
	}
	return out
}

func simTimes(ds []time.Duration) []sim.Time {
	out := make([]sim.Time, len(ds))
	for i, d := range ds {
		out[i] = sim.Duration(d)
	}
	return out
}

// JFI computes Jain's Fairness Index over per-flow allocations.
func JFI(xs []float64) float64 { return metrics.JFI(xs) }

// Burstiness computes the Goh–Barabási burstiness score over event
// timestamps (in any consistent unit).
func Burstiness(times []float64) float64 { return metrics.Burstiness(times) }

// MathisPredict returns the Mathis-model throughput (bytes/sec) for
// constant c, segment size mssBytes, round-trip rtt, and congestion
// event probability p.
func MathisPredict(c, mssBytes float64, rtt time.Duration, p float64) float64 {
	return mathis.Predict(c, mathis.Sample{P: p, RTTSeconds: rtt.Seconds(), MSSBytes: mssBytes})
}

// WareBBRShare returns the Ware et al. model's predicted steady-state
// bandwidth share for a cap-limited BBR aggregate against loss-based
// traffic, given the bottleneck buffer in base-BDP units (paper
// Findings 6–7).
func WareBBRShare(bufferBDP float64) float64 {
	return waremodel.SingleBBRShare(bufferBDP)
}

// MSS is the segment size used throughout (1448 bytes, as in the
// paper).
const MSS = int(units.MSS)

// TopologySpec is a network graph replacing the implicit dumbbell:
// named nodes, directed links with per-link rate/delay/queue/ECN
// configuration, and per-flow paths. Set it on a RunConfig (or compile
// a Scenario) to run multi-bottleneck experiments — a parking lot, a
// shared transit link — with per-bottleneck conservation auditing.
type TopologySpec = netem.TopologySpec

// LinkSpec is one directed link of a TopologySpec.
type LinkSpec = netem.LinkSpec

// LinkStat reports one link's counters in a topology run's RunResult.
type LinkStat = netem.LinkStat

// Scenario is the versioned declarative experiment document (JSON,
// schema-versioned) accepted by cmd/reproduce -scenario and ccserve
// submission: flows, network (dumbbell or topology), ECN/AQM marking,
// and run lengths as plain data.
type Scenario = schema.Scenario

// ParseScenario decodes and validates a scenario document, rejecting
// unknown fields and incompatible schema majors.
func ParseScenario(data []byte) (*Scenario, error) { return schema.ParseScenario(data) }

// ScenarioBuilder compiles a parsed Scenario into runnable
// configuration; see NewScenarioBuilder.
type ScenarioBuilder = core.ScenarioBuilder

// NewScenarioBuilder compiles a scenario document, surfacing every
// validation and topology-graph error at construction.
func NewScenarioBuilder(scn *Scenario) (*ScenarioBuilder, error) {
	return core.NewScenarioBuilder(scn)
}

// ChurnConfig describes a flow-churn experiment: finite transfers
// arriving as a Poisson process (the dynamic the paper's fixed
// population deliberately excludes), measured by flow completion time.
type ChurnConfig = core.ChurnConfig

// ChurnResult summarizes a churn run (arrivals, completions, FCT
// quantiles).
type ChurnResult = core.ChurnResult

// RunChurn executes one churn experiment.
func RunChurn(cfg ChurnConfig) (ChurnResult, error) { return core.RunChurn(cfg) }
