// Churn: flow completion times under Poisson arrivals — the dynamic
// the paper's long-running fixed population deliberately excludes
// (its §3.2 Limitations), applied to the same bottleneck. Compares the
// paper's drop-tail with the CoDel AQM extension: bufferbloat is an
// FCT tax on short transfers.
//
//	go run ./examples/churn
package main

import (
	"fmt"
	"log"
	"time"

	"ccatscale"
)

func main() {
	setting := ccatscale.CoreScaleScaled(50) // 200 Mbps tier

	fmt.Println("500 KB mice over four long-lived Cubic elephants pinning the")
	fmt.Println("buffer. FCT quantiles in seconds; lower is better.")
	fmt.Println()
	fmt.Println("load  aqm       completed  p50     p95     p99")
	for _, aqm := range []string{"droptail", "codel"} {
		for _, load := range []float64{0.2, 0.4} {
			size := 500_000.0 // bytes
			cfg := ccatscale.ChurnConfig{
				Rate:          setting.Rate,
				Buffer:        setting.Buffer,
				CCA:           "reno",
				RTT:           20e6, // 20 ms
				TransferBytes: 500_000,
				ArrivalRate:   load * float64(setting.Rate) / (size * 8),
				Duration:      40e9, // 40 s arrival window
				Seed:          1,
				AQM:           aqm,
				Background:    ccatscale.UniformFlows(4, "cubic", 20*time.Millisecond),
			}
			res, err := ccatscale.RunChurn(cfg)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%3.0f%%  %-8s  %9d  %.3f   %.3f   %.3f\n",
				load*100, aqm, res.Completed, res.P50FCT, res.P95FCT, res.P99FCT)
		}
	}
	fmt.Println()
	fmt.Println("Under drop-tail the elephants pin the deep buffer and every short")
	fmt.Println("transfer pays the standing-queue RTT on each round trip; CoDel")
	fmt.Println("keeps the queue near its 5 ms target and the mice finish fast.")
}
