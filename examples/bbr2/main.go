// BBRv2 preview: the paper closes by calling for at-scale evaluation of
// future CCAs — BBRv2 was "a work in progress" at publication. This
// example applies the paper's own methodology to the successor: how do
// v1 and v2 treat a competing NewReno population, and how fair is each
// to its own kind at scale?
//
//	go run ./examples/bbr2
package main

import (
	"context"
	"fmt"
	"log"
	"runtime"
	"time"

	"ccatscale"
)

func main() {
	setting := ccatscale.CoreScaleScaled(50) // 200 Mbps tier
	rtts := []time.Duration{20 * time.Millisecond}
	parallel := runtime.GOMAXPROCS(0)

	fmt.Println("NewReno's share when half the flows are BBR (paper Fig 8 regime):")
	fmt.Println("flows  reno-share% vs bbr(v1)  reno-share% vs bbr2")
	for _, n := range setting.FlowCounts {
		var shares [2]float64
		for i, bbr := range []string{"bbr", "bbr2"} {
			cfg := setting.Build(
				ccatscale.MixedFlows(n, bbr, "reno", rtts[0]),
				ccatscale.WithSeed(1))
			res, err := ccatscale.Run(context.Background(), cfg)
			if err != nil {
				log.Fatal(err)
			}
			shares[i] = res.ShareByCCA()["reno"]
		}
		fmt.Printf("%5d  %22.1f  %19.1f\n", n, shares[0]*100, shares[1]*100)
	}
	fmt.Println()
	fmt.Println("BBRv2's explicit loss response (β-cut bounds, headroom) is designed")
	fmt.Println("to leave loss-based flows more room than v1's loss-blind model.")
	fmt.Println()

	fmt.Println("Intra-CCA fairness at scale (paper Fig 4 applied to both versions):")
	fmt.Println("flows  JFI(bbr v1)  JFI(bbr2)")
	v1, err := ccatscale.IntraCCASweep(setting, "bbr", rtts, 2, parallel)
	if err != nil {
		log.Fatal(err)
	}
	v2, err := ccatscale.IntraCCASweep(setting, "bbr2", rtts, 2, parallel)
	if err != nil {
		log.Fatal(err)
	}
	for i := range v1 {
		fmt.Printf("%5d  %11.3f  %9.3f\n", v1[i].FlowCount, v1[i].JFI, v2[i].JFI)
	}
}
