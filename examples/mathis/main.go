// Mathis: reproduce the paper's §4 analysis end-to-end at a reduced
// scale — derive the Mathis constant C with both interpretations of p
// (packet loss rate vs CWND halving rate), evaluate prediction error,
// and measure the loss-to-halving ratio and drop burstiness that
// explain the divergence (Table 1, Figures 2–3).
//
//	go run ./examples/mathis
package main

import (
	"fmt"
	"log"
	"runtime"

	"ccatscale"
)

func main() {
	fmt.Println("Mathis model: Throughput = MSS·C / (RTT·√p)")
	fmt.Println("p = packet loss rate?  or  p = CWND halving rate?  (paper §4)")
	fmt.Println()

	for _, setting := range []ccatscale.Setting{
		ccatscale.EdgeScale(),         // 100 Mbps, 10–50 flows
		ccatscale.CoreScaleScaled(25), // 400 Mbps, 40–200 flows
	} {
		rows, err := ccatscale.MathisSweep(setting, 1, runtime.GOMAXPROCS(0))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s (%v bottleneck, %v buffer)\n", setting.Name, setting.Rate, setting.Buffer)
		fmt.Println("flows  C(loss)  C(halve)  err(loss)%  err(halve)%  loss:halve  burstiness")
		for _, r := range rows {
			fmt.Printf("%5d  %7.2f  %8.2f  %10.1f  %11.1f  %10.2f  %10.2f\n",
				r.FlowCount, r.CLoss, r.CHalve,
				r.MedianErrLoss*100, r.MedianErrHalve*100,
				r.LossToHalvingRatio, r.DropBurstiness)
		}
		fmt.Println()
	}

	fmt.Println("Expected shape (paper Findings 1-3): at edge scale both")
	fmt.Println("interpretations work and losses ≈ halvings; at core scale the")
	fmt.Println("loss rate diverges from the halving rate (bursty multi-loss")
	fmt.Println("congestion events), so only the halving rate yields a stable C")
	fmt.Println("and accurate predictions.")
}
