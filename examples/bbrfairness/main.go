// BBR fairness: the paper's headline surprise (Finding 5, Figure 4) —
// BBR flows that share fairly at low flow counts become drastically
// unfair to each other at scale, with Jain's Fairness Index falling
// toward 0.4. This example measures BBR's intra-CCA JFI across flow
// counts at two scales and contrasts it with NewReno's.
//
//	go run ./examples/bbrfairness
package main

import (
	"fmt"
	"log"
	"runtime"
	"time"

	"ccatscale"
)

func main() {
	rtts := []time.Duration{20 * time.Millisecond}
	parallel := runtime.GOMAXPROCS(0)

	for _, setting := range []ccatscale.Setting{
		ccatscale.EdgeScale(),
		ccatscale.CoreScaleScaled(25), // 400 Mbps, 40–200 flows
	} {
		fmt.Printf("%s (%v bottleneck):\n", setting.Name, setting.Rate)
		fmt.Println("flows  JFI(bbr)  JFI(reno)")
		bbr, err := ccatscale.IntraCCASweep(setting, "bbr", rtts, 1, parallel)
		if err != nil {
			log.Fatal(err)
		}
		reno, err := ccatscale.IntraCCASweep(setting, "reno", rtts, 1, parallel)
		if err != nil {
			log.Fatal(err)
		}
		for i := range bbr {
			fmt.Printf("%5d  %8.3f  %9.3f\n", bbr[i].FlowCount, bbr[i].JFI, reno[i].JFI)
		}
		fmt.Println()
	}

	fmt.Println("Expected shape (paper Figure 4 / Finding 4): NewReno stays fair")
	fmt.Println("everywhere (JFI → 0.99); BBR is fair only at small flow counts")
	fmt.Println("and turns unfair as the flow count grows — the paper measures")
	fmt.Println("JFIs as low as 0.4 at CoreScale and 0.7 beyond 10 flows at the")
	fmt.Println("edge. The suspected mechanism is the loss of ProbeRTT/model")
	fmt.Println("synchronization once thousands of flows share the queue.")
}
