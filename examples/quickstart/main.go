// Quickstart: run one small mixed-CCA experiment on the simulated
// testbed and print per-flow results — the "hello world" of the
// library.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"ccatscale"
)

func main() {
	// A scaled-down CoreScale: 200 Mbps bottleneck, drop-tail buffer of
	// 1.5 base-BDPs at 200 ms, per-flow bandwidth matching the paper's
	// 2 Mbps/flow.
	setting := ccatscale.CoreScaleScaled(50)
	setting.Duration = 60 * 1e9 // 60 virtual seconds of measurement

	// Ten Cubic flows against ten NewReno flows, all at 20 ms base RTT.
	flows := ccatscale.MixedFlows(20, "cubic", "reno", 20*time.Millisecond)

	cfg := setting.Build(flows, ccatscale.WithSeed(42))
	res, err := ccatscale.Run(context.Background(), cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("bottleneck %v, buffer %v, %d flows, window %v\n",
		setting.Rate, setting.Buffer, len(flows), res.Window)
	fmt.Printf("utilization %.1f%%, aggregate goodput %v, drops %d\n\n",
		res.Utilization*100, res.AggregateGoodput, res.TotalDrops)

	fmt.Println("flow  cca    goodput      loss%   meanRTT")
	for i, f := range res.Flows {
		fmt.Printf("%4d  %-5s  %-11v  %.3f   %v\n",
			i, f.Spec.CCA, f.Goodput, f.LossRate*100, f.MeanRTT)
	}

	share := res.ShareByCCA()
	fmt.Printf("\nCubic takes %.1f%% of goodput vs NewReno's %.1f%% — the paper's\n",
		share["cubic"]*100, share["reno"]*100)
	fmt.Println("Finding 8 (Cubic gets 70-80% against an equal NewReno population).")
	fmt.Printf("Jain's Fairness Index across all flows: %.3f\n", res.JFI())
}
