// Inter-CCA competition: the paper's §5.2 figures — one BBR flow
// against a NewReno crowd (Figure 6: ≈40 % of the link, as the Ware et
// al. model predicts) and Cubic against an equal NewReno population
// (Figure 5: 70–80 %).
//
//	go run ./examples/intercca
package main

import (
	"fmt"
	"log"
	"runtime"
	"time"

	"ccatscale"
)

func main() {
	setting := ccatscale.CoreScaleScaled(50) // 200 Mbps, 20–100 flows
	rtts := []time.Duration{20 * time.Millisecond}
	parallel := runtime.GOMAXPROCS(0)

	// Figure 6: a single BBR flow versus a NewReno crowd. The Ware
	// model says the BBR share depends only on its in-flight cap, not
	// on how many competitors it faces.
	bufferBDP := 15.0 // 1.5×BDP(200ms) ≈ 15×BDP(20ms), the flows' base RTT
	fmt.Printf("One BBR flow vs NewReno crowd (Ware model predicts %.0f%%):\n",
		ccatscale.WareBBRShare(bufferBDP)*100)
	rows, err := ccatscale.InterCCASweep(setting, ccatscale.OneVersusMany, "bbr", "reno", rtts, 1, parallel)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("flows  bbr-share%")
	for _, r := range rows {
		fmt.Printf("%5d  %9.1f\n", r.FlowCount, r.Share["bbr"]*100)
	}
	fmt.Println()

	// Figure 5: Cubic vs an equal number of NewReno flows.
	fmt.Println("Cubic vs equal NewReno (paper: Cubic takes 70-80%):")
	rows, err = ccatscale.InterCCASweep(setting, ccatscale.EqualSplit, "cubic", "reno", rtts, 2, parallel)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("flows  cubic-share%")
	for _, r := range rows {
		fmt.Printf("%5d  %11.1f\n", r.FlowCount, r.Share["cubic"]*100)
	}
	fmt.Println()
	fmt.Println("A single flow holding tens of percent of a shared link that")
	fmt.Println("thousands of neighbors split evenly is the paper's deployment")
	fmt.Println("concern: one sender can affect everyone behind an inter-domain")
	fmt.Println("link (§5.2 implications).")
}
