// Parking lot: multi-bottleneck fairness with ECN, Cubic vs BBRv2.
// The paper's dumbbell findings ask an obvious follow-up: do they hold
// when flows cross more than one bottleneck? This example runs the
// committed parking-lot scenario — two ECN-enabled bottlenecks in
// series (50 then 40 Mbps), long Cubic and BBRv2 flows crossing both,
// and a short flow entering at each hop — entirely through the
// declarative API: parse the document, compile it, run it under the
// strict conservation auditor.
//
//	go run ./examples/parkinglot
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"ccatscale"
)

func main() {
	path := flag.String("scenario", "examples/scenarios/parkinglot.json",
		"scenario document to run (the same file cmd/reproduce -scenario and ccserve accept)")
	flag.Parse()

	data, err := os.ReadFile(*path)
	if err != nil {
		log.Fatal(err)
	}
	scn, err := ccatscale.ParseScenario(data)
	if err != nil {
		log.Fatal(err)
	}
	b, err := ccatscale.NewScenarioBuilder(scn)
	if err != nil {
		log.Fatal(err)
	}
	res, err := ccatscale.Run(context.Background(), b.RunConfig())
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("scenario %q, seed %d, strict audit: %d events, 0 violations\n\n",
		scn.Name, scn.Seed, res.Events)
	fmt.Println("flow  cca    rtt      path        goodput    ecn_resp")
	perCCA := map[string][]float64{}
	for i, f := range res.Flows {
		path := "ab+bc"
		if len(scn.Topology.Links) == 2 && i >= 4 {
			// The two short flows each cross a single hop.
			path = scn.Flows[2+(i-4)].Path[0]
		}
		fmt.Printf("%4d  %-5s  %v  %-8s  %7.2f Mbps  %8d\n",
			i, f.Spec.CCA, time.Duration(f.Spec.RTT), path,
			float64(f.Goodput)/1e6, f.ECNResponses)
		if i < 4 { // the long flows compete over the same two bottlenecks
			perCCA[f.Spec.CCA] = append(perCCA[f.Spec.CCA], float64(f.Goodput))
		}
	}

	fmt.Println()
	var long []float64
	for _, cca := range []string{"cubic", "bbr2"} {
		var sum float64
		for _, g := range perCCA[cca] {
			sum += g
		}
		long = append(long, perCCA[cca]...)
		fmt.Printf("long %-5s flows: %7.2f Mbps aggregate, intra-CCA JFI %.3f\n",
			cca, sum/1e6, ccatscale.JFI(perCCA[cca]))
	}
	fmt.Printf("long-flow JFI across both CCAs: %.3f\n", ccatscale.JFI(long))

	fmt.Println()
	for _, l := range res.Links {
		fmt.Printf("link %-3s  %5.1f Mbps  utilization %5.1f%%  CE marks %d  drops %d B\n",
			l.Name, float64(l.Rate)/1e6, 100*l.Utilization, l.CEMarks, l.DropWire)
	}
	fmt.Printf("\nECN: %d CE marks fabric-wide; every window reduction above came\n", res.CEMarks)
	fmt.Println("from a mark, not a loss — compare the drops column. The parking")
	fmt.Println("lot is the classic multi-bottleneck fairness shape: the long")
	fmt.Println("flows pay for crossing two congested hops while each short flow")
	fmt.Println("competes at only one, and BBRv2's model-based response to CE")
	fmt.Println("marks differs from Cubic's multiplicative decrease.")
}
