module ccatscale

go 1.22
