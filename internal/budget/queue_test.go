package budget

import (
	"errors"
	"testing"
	"time"
)

func TestPoolSlotBackpressure(t *testing.T) {
	p := NewPool(nil, 2, 1)
	f := Footprint{Wall: 10 * time.Second}
	if err := p.Admit(f); err != nil {
		t.Fatal(err)
	}
	if err := p.Admit(f); err != nil {
		t.Fatal(err)
	}
	err := p.Admit(f)
	var qe *QueueError
	if !errors.As(err, &qe) {
		t.Fatalf("third admit = %v, want *QueueError", err)
	}
	if qe.Kind != KindSlots {
		t.Fatalf("kind = %s, want %s", qe.Kind, KindSlots)
	}
	if qe.RetryAfter < time.Second {
		t.Fatalf("retry-after = %v, want ≥ 1s", qe.RetryAfter)
	}
	// Releasing one slot makes room again.
	p.Release(f)
	if err := p.Admit(f); err != nil {
		t.Fatalf("admit after release = %v", err)
	}
	if p.Depth() != 2 {
		t.Fatalf("depth = %d, want 2", p.Depth())
	}
}

func TestPoolBudgetBackpressure(t *testing.T) {
	p := NewPool(&Budget{HeapBytes: 100}, 100, 1)
	if err := p.Admit(Footprint{HeapBytes: 60}); err != nil {
		t.Fatal(err)
	}
	err := p.Admit(Footprint{HeapBytes: 60})
	var qe *QueueError
	if !errors.As(err, &qe) {
		t.Fatalf("over-budget admit = %v, want *QueueError", err)
	}
	if qe.Kind != KindHeapBytes || qe.Observed != 120 || qe.Limit != 100 {
		t.Fatalf("breach = %+v", qe)
	}
	// A rejected admission reserves nothing: a smaller job still fits.
	if err := p.Admit(Footprint{HeapBytes: 30}); err != nil {
		t.Fatalf("smaller admit after rejection = %v", err)
	}
}

func TestPoolForceBypassesLimits(t *testing.T) {
	p := NewPool(&Budget{HeapBytes: 10}, 1, 1)
	p.Force(Footprint{HeapBytes: 50})
	p.Force(Footprint{HeapBytes: 50})
	if p.Depth() != 2 {
		t.Fatalf("depth after force = %d, want 2", p.Depth())
	}
	// Normal admission now sees a full pool.
	if err := p.Admit(Footprint{}); err == nil {
		t.Fatal("admit into forced-full pool succeeded")
	}
}

func TestPoolRetryAfterScalesWithParallelism(t *testing.T) {
	serial := NewPool(nil, 1, 1)
	wide := NewPool(nil, 1, 4)
	f := Footprint{Wall: 80 * time.Second}
	if err := serial.Admit(f); err != nil {
		t.Fatal(err)
	}
	if err := wide.Admit(f); err != nil {
		t.Fatal(err)
	}
	var se, we *QueueError
	if !errors.As(serial.Admit(f), &se) || !errors.As(wide.Admit(f), &we) {
		t.Fatal("expected queue errors")
	}
	if se.RetryAfter != 80*time.Second {
		t.Fatalf("serial retry-after = %v, want 80s", se.RetryAfter)
	}
	if we.RetryAfter != 20*time.Second {
		t.Fatalf("wide retry-after = %v, want 20s", we.RetryAfter)
	}
}

func TestPoolReleaseClampsAtZero(t *testing.T) {
	p := NewPool(&Budget{HeapBytes: 100}, 4, 1)
	f := Footprint{HeapBytes: 40}
	if err := p.Admit(f); err != nil {
		t.Fatal(err)
	}
	p.Release(f)
	p.Release(f) // double release must not underflow into spare capacity
	if p.Depth() != 0 {
		t.Fatalf("depth = %d, want 0", p.Depth())
	}
	for i := 0; i < 2; i++ {
		if err := p.Admit(f); err != nil {
			t.Fatalf("admit %d after double release = %v", i, err)
		}
	}
}
