package budget

import (
	"fmt"
	"time"

	"ccatscale/internal/sim"
)

// Calibration constants of the footprint model. They are fitted against
// the PR 3 performance baseline (BENCH_pr3.json: BenchmarkEngineThroughput
// processed 384,935 events in 72.3 ms → ≈5.3M events/s) and a cmd/fprint
// reference run (4 NewReno flows at 50 Mbps for 10 virtual seconds:
// 141,024 events over ≈41k full-size data packets → ≈3.4 events per data
// packet, covering the packet's bottleneck enqueue/serialize/deliver hops
// plus the coalesced ACK path and timer churn). The constants are
// deliberately conservative (rounded toward over-prediction) because the
// estimator gates admission: over-predicting wastes a retry at a lower
// fidelity tier, under-predicting OOMs the sweep.
const (
	// EventsPerDataPacket converts predicted data packets into processed
	// simulator events.
	EventsPerDataPacket = 4.0
	// EventsPerFlowSecond covers per-flow housekeeping (RTO rearms,
	// delayed-ACK and pacing timers) not proportional to packet count.
	EventsPerFlowSecond = 64.0
	// WallEventsPerSecond converts processed events into wall-clock time
	// (BENCH_pr3: ≈5.3M events/s on the reference machine; 4M leaves
	// margin for slower hosts and cache-unfriendly giant runs).
	WallEventsPerSecond = 4.0e6
	// DropRetentionGuess predicts the fraction of data packets whose
	// drop timestamps a run with unbounded MaxDropTimestamps retains.
	// The paper's regimes run drop-tail buffers near 100% utilization;
	// 2% is above every loss rate the reproduction measures.
	DropRetentionGuess = 0.02
	// EventStructBytes is the in-memory cost of one engine event
	// (struct + heap slot + free-list slot).
	EventStructBytes = 96
	// PerFlowFixedBytes covers one sender+receiver pair's fixed state:
	// the minimum 256-slot send-window ring, RTT estimator, CCA state,
	// SACK scoreboard.
	PerFlowFixedBytes = 48 << 10
	// PerInflightSegmentBytes is the send-window cost of one in-flight
	// segment beyond the fixed rings (segState + sentAt + scoreboard).
	PerInflightSegmentBytes = 64
	// SeriesPointBytes is the retained cost of one throughput-series
	// sample cell; DropTimestampBytes of one drop timestamp.
	SeriesPointBytes   = 24
	DropTimestampBytes = 8
	// BaseHeapBytes is the fixed process overhead (runtime, harness,
	// tables) charged to every run.
	BaseHeapBytes = 32 << 20
)

// Input is the configuration signature the footprint model predicts
// from: flow count × capacity × horizon, plus the instrumentation knobs
// that drive trace retention. internal/core adapts a RunConfig into one
// of these (it knows defaults the model should not duplicate).
type Input struct {
	// Flows is the number of concurrent flows.
	Flows int
	// RateBps is the bottleneck bandwidth in bits/sec.
	RateBps int64
	// BufferBytes is the bottleneck queue capacity.
	BufferBytes int64
	// BDPBytes is rate × the largest base RTT (in-flight ceiling).
	BDPBytes int64
	// FrameBytes is the wire size of one full data segment (MSS +
	// header overhead).
	FrameBytes int64
	// SegmentBytes is the MSS (window accounting granularity).
	SegmentBytes int64
	// QueueSlots is the bottleneck ring preallocation (slots); zero lets
	// the model derive it from BufferBytes/FrameBytes.
	QueueSlots int64
	// QueueSlotBytes is the in-memory size of one queued packet.
	QueueSlotBytes int64
	// Horizon is the run's virtual end time (warm-up + duration).
	Horizon sim.Time
	// SeriesInterval and SeriesWidth describe the throughput series
	// (0 interval = no series).
	SeriesInterval sim.Time
	// SeriesWidth is the number of tracked series (distinct CCAs).
	SeriesWidth int
	// MaxDropTimestamps bounds retained drop timestamps (0 = unbounded,
	// the model predicts retention from the drop-rate guess).
	MaxDropTimestamps int64
}

// Footprint is the model's predicted cost of one run.
type Footprint struct {
	// HeapBytes is the predicted peak heap contribution.
	HeapBytes int64
	// Events is the predicted peak event-object footprint.
	Events int64
	// Processed is the predicted cumulative processed-event count.
	Processed int64
	// TracePoints is the predicted retained trace-point count.
	TracePoints int64
	// Wall is the predicted wall-clock time.
	Wall time.Duration
}

// Estimate predicts a configuration's resource footprint. The model is
// a deliberate order-of-magnitude tool: admission control needs to
// separate a 400 MB CoreScale run from a 4 GB mis-scaled one, not to
// predict allocator behavior byte-exactly.
func Estimate(in Input) Footprint {
	horizonSec := in.Horizon.Seconds()
	if horizonSec < 0 {
		horizonSec = 0
	}
	frame := in.FrameBytes
	if frame <= 0 {
		frame = 1518
	}
	seg := in.SegmentBytes
	if seg <= 0 {
		seg = frame
	}
	slotBytes := in.QueueSlotBytes
	if slotBytes <= 0 {
		slotBytes = 160
	}

	// Offered load: the bottleneck runs near saturation in every regime
	// the paper studies, so data packets ≈ line rate over the horizon.
	dataPackets := float64(in.RateBps) / 8 / float64(frame) * horizonSec

	// Processed events.
	processed := dataPackets*EventsPerDataPacket +
		float64(in.Flows)*horizonSec*EventsPerFlowSecond
	var seriesTicks float64
	if in.SeriesInterval > 0 {
		seriesTicks = horizonSec / in.SeriesInterval.Seconds()
		processed += seriesTicks
	}

	// Peak event-object footprint: a handful of live timers per flow,
	// doubled for the lazily-cancelled corpses compaction tolerates,
	// plus the engine's initial arena.
	events := int64(in.Flows)*16 + 2048

	// Trace retention.
	tracePoints := int64(seriesTicks) * int64(max(in.SeriesWidth, 1))
	if in.SeriesInterval <= 0 {
		tracePoints = 0
	}
	dropTs := float64(in.MaxDropTimestamps)
	if in.MaxDropTimestamps <= 0 {
		dropTs = dataPackets * DropRetentionGuess
	}
	tracePoints += int64(dropTs)

	// Queue ring: preallocated for a buffer full of full-size frames.
	slots := in.QueueSlots
	if slots <= 0 {
		slots = in.BufferBytes/frame + 1
	}
	// In-flight window state: the segments that can be outstanding
	// across all flows together (buffer + BDP), independent of how many
	// flows share them — plus each flow's fixed minimum.
	inflightSegs := (in.BufferBytes + in.BDPBytes) / seg

	heap := int64(BaseHeapBytes) +
		slots*slotBytes +
		events*EventStructBytes +
		int64(in.Flows)*PerFlowFixedBytes +
		inflightSegs*PerInflightSegmentBytes +
		tracePoints*SeriesPointBytes +
		int64(dropTs)*DropTimestampBytes

	return Footprint{
		HeapBytes:   heap,
		Events:      events,
		Processed:   int64(processed),
		TracePoints: tracePoints,
		Wall:        time.Duration(processed / WallEventsPerSecond * float64(time.Second)),
	}
}

// Check compares the predicted footprint against a budget and returns
// the first breach as an admission-stage BudgetError, or nil when the
// configuration fits. horizon is the run's virtual end time, checked
// against the budget's Horizon cap.
func (f Footprint) Check(b *Budget, horizon sim.Time) *BudgetError {
	if b.Unlimited() {
		return nil
	}
	reject := func(kind Kind, limit, observed int64, detail string) *BudgetError {
		return &BudgetError{Kind: kind, Stage: StageAdmission, Limit: limit,
			Observed: observed, Detail: detail}
	}
	if b.HeapBytes > 0 && f.HeapBytes > b.HeapBytes {
		return reject(KindHeapBytes, b.HeapBytes, f.HeapBytes,
			"estimated peak heap from flows × capacity × horizon")
	}
	if b.Events > 0 && f.Events > b.Events {
		return reject(KindEvents, b.Events, f.Events,
			"estimated peak event-object footprint")
	}
	if b.TracePoints > 0 && f.TracePoints > b.TracePoints {
		return reject(KindTracePoints, b.TracePoints, f.TracePoints,
			"estimated retained series samples + drop timestamps")
	}
	if b.Wall > 0 && f.Wall > b.Wall {
		return reject(KindWallClock, int64(b.Wall), int64(f.Wall),
			fmt.Sprintf("estimated %d processed events at %.0f events/s",
				f.Processed, float64(WallEventsPerSecond)))
	}
	if b.Horizon > 0 && horizon > b.Horizon {
		return reject(KindHorizon, int64(b.Horizon), int64(horizon),
			"virtual end time (warm-up + duration)")
	}
	return nil
}
