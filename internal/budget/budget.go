// Package budget is the resource-governance layer for experiment
// sweeps: per-run budgets (heap bytes, simulator-event footprint,
// retained trace points, wall clock, virtual horizon), a footprint
// estimator that predicts a configuration's cost before it runs, and
// the structured BudgetError that admission control and in-flight
// enforcement surface instead of letting one oversized configuration
// OOM the process and take every sibling job down with it.
//
// The package sits below internal/core: core declares a Budget on a
// RunConfig, runs admission control against the estimator in RunMany,
// and converts in-flight breaches (checked from the engine's interrupt
// hook) into replayable run errors carrying a Checkpoint of what
// completed.
package budget

import (
	"fmt"
	"time"

	"ccatscale/internal/sim"
)

// Kind names the budgeted resource a limit or breach refers to.
type Kind string

const (
	// KindHeapBytes bounds the process heap a run may occupy.
	KindHeapBytes Kind = "heap-bytes"
	// KindEvents bounds the simulator's event-object footprint: live
	// events plus the heap capacity holding lazily-cancelled corpses.
	KindEvents Kind = "events"
	// KindTracePoints bounds retained instrumentation: throughput-series
	// samples plus drop timestamps.
	KindTracePoints Kind = "trace-points"
	// KindWallClock bounds a run's wall-clock time.
	KindWallClock Kind = "wall-clock"
	// KindHorizon bounds a run's virtual end time (warm-up + duration).
	KindHorizon Kind = "virtual-horizon"
)

// Stages of enforcement recorded on a BudgetError.
const (
	// StageAdmission marks a configuration rejected before running,
	// from the estimator's predicted footprint.
	StageAdmission = "admission"
	// StageInFlight marks a running simulation stopped by a periodic
	// budget check.
	StageInFlight = "in-flight"
)

// Budget bounds one run's resource consumption. A zero field is
// unlimited; the zero Budget imposes no limits at all.
type Budget struct {
	// HeapBytes caps the process heap while the run executes. The check
	// is process-wide (Go heaps are not per-goroutine), so under a
	// parallel sweep it acts as a shared ceiling: whichever run observes
	// the breach stops first.
	HeapBytes int64 `json:"heapBytes,omitempty"`
	// Events caps the engine's event-object footprint (live events plus
	// heap capacity awaiting corpse collection).
	Events int64 `json:"events,omitempty"`
	// TracePoints caps retained trace points: throughput-series samples
	// plus bottleneck drop timestamps.
	TracePoints int64 `json:"tracePoints,omitempty"`
	// Wall caps the run's wall-clock time.
	Wall time.Duration `json:"wallNs,omitempty"`
	// Horizon caps the run's virtual end time.
	Horizon sim.Time `json:"horizonNs,omitempty"`
}

// Unlimited reports whether the budget imposes no limits.
func (b *Budget) Unlimited() bool {
	return b == nil || *b == Budget{}
}

// String renders the non-zero limits compactly.
func (b *Budget) String() string {
	if b.Unlimited() {
		return "unlimited"
	}
	s := ""
	app := func(format string, args ...interface{}) {
		if s != "" {
			s += " "
		}
		s += fmt.Sprintf(format, args...)
	}
	if b.HeapBytes > 0 {
		app("heap≤%dB", b.HeapBytes)
	}
	if b.Events > 0 {
		app("events≤%d", b.Events)
	}
	if b.TracePoints > 0 {
		app("trace≤%d", b.TracePoints)
	}
	if b.Wall > 0 {
		app("wall≤%v", b.Wall)
	}
	if b.Horizon > 0 {
		app("horizon≤%v", b.Horizon)
	}
	return s
}

// Checkpoint records the progress a run had made when a budget breach
// stopped it — enough for a batch driver to account the partial work
// and for a retry to know what was lost.
type Checkpoint struct {
	// VirtualTime is the simulation clock at the breach.
	VirtualTime sim.Time `json:"virtualTimeNs"`
	// Events is the number of simulator events processed.
	Events uint64 `json:"events"`
	// Wall is the wall-clock time consumed.
	Wall time.Duration `json:"wallNs"`
}

// BudgetError reports a budget breach: which resource, at which
// enforcement stage, the limit, and the observed (or predicted) value.
// Admission-stage errors carry no checkpoint (nothing ran); in-flight
// errors carry a Checkpoint of what completed.
type BudgetError struct {
	Kind     Kind   `json:"kind"`
	Stage    string `json:"stage"`
	Limit    int64  `json:"limit"`
	Observed int64  `json:"observed"`
	// Detail qualifies the numbers (e.g. that an admission value is an
	// estimate, or which component dominated).
	Detail string `json:"detail,omitempty"`
	// Checkpoint is the progress at an in-flight breach; nil at
	// admission.
	Checkpoint *Checkpoint `json:"checkpoint,omitempty"`
}

// Error renders the breach on one line, structured enough to grep.
func (e *BudgetError) Error() string {
	s := fmt.Sprintf("budget: %s limit exceeded at %s: observed %d > limit %d",
		e.Kind, e.Stage, e.Observed, e.Limit)
	if e.Detail != "" {
		s += " (" + e.Detail + ")"
	}
	if e.Checkpoint != nil {
		s += fmt.Sprintf(" [completed: vt=%v events=%d wall=%v]",
			e.Checkpoint.VirtualTime, e.Checkpoint.Events, e.Checkpoint.Wall)
	}
	return s
}

// Usage records the resources a run (or, merged, a sweep) actually
// consumed — the observability side of governance, reported per job in
// reproduce's manifest.json.
type Usage struct {
	// Runs counts merged runs.
	Runs int `json:"runs,omitempty"`
	// Events is the cumulative simulator events processed.
	Events uint64 `json:"events"`
	// PeakEventCap is the largest event-object footprint observed
	// (engine heap capacity, live plus corpses).
	PeakEventCap int64 `json:"peakEventCap"`
	// TracePoints is the largest retained trace-point count observed.
	TracePoints int64 `json:"tracePoints,omitempty"`
	// PeakHeapBytes is the largest sampled process heap (0 when heap
	// sampling was off, i.e. no heap budget was set).
	PeakHeapBytes int64 `json:"peakHeapBytes,omitempty"`
	// PeakQueueBytes / PeakQueuePackets are the bottleneck queue's
	// high-water marks.
	PeakQueueBytes   int64 `json:"peakQueueBytes,omitempty"`
	PeakQueuePackets int64 `json:"peakQueuePackets,omitempty"`
	// Wall is the cumulative wall-clock time.
	Wall time.Duration `json:"wallNs"`
	// MaxFidelity is the highest degradation tier any merged run
	// executed at (0 = all full fidelity).
	MaxFidelity int `json:"maxFidelity,omitempty"`
	// MaxDecimation is the largest series decimation factor observed
	// (1 = no decimation).
	MaxDecimation int `json:"maxDecimation,omitempty"`
}

// Degraded reports whether any merged run produced reduced-fidelity
// output (a degradation tier or an adaptively decimated series).
func (u *Usage) Degraded() bool {
	return u.MaxFidelity > 0 || u.MaxDecimation > 1
}

// Merge folds another run's usage into u: counters and wall time sum,
// peaks take the maximum.
func (u *Usage) Merge(o Usage) {
	u.Runs += max(o.Runs, 1)
	u.Events += o.Events
	u.Wall += o.Wall
	u.PeakEventCap = max(u.PeakEventCap, o.PeakEventCap)
	u.TracePoints = max(u.TracePoints, o.TracePoints)
	u.PeakHeapBytes = max(u.PeakHeapBytes, o.PeakHeapBytes)
	u.PeakQueueBytes = max(u.PeakQueueBytes, o.PeakQueueBytes)
	u.PeakQueuePackets = max(u.PeakQueuePackets, o.PeakQueuePackets)
	u.MaxFidelity = max(u.MaxFidelity, o.MaxFidelity)
	u.MaxDecimation = max(u.MaxDecimation, o.MaxDecimation)
}
