package budget

import (
	"fmt"
	"sync"
	"time"
)

// QueueError reports a queue-admission rejection: the pool is full,
// either by slot count or because adding the candidate's estimated
// footprint would push the aggregate past the pool's budget. RetryAfter
// is the server's guess at when capacity frees up — derived from the
// wall-clock already reserved, divided across the workers draining it —
// so clients can back off honestly instead of hammering.
type QueueError struct {
	Kind       Kind          `json:"kind"`
	Limit      int64         `json:"limit"`
	Observed   int64         `json:"observed"`
	RetryAfter time.Duration `json:"retryAfterNs"`
}

// KindSlots marks a rejection by queue depth rather than by any
// resource limit: every slot is occupied.
const KindSlots Kind = "queue-slots"

func (e *QueueError) Error() string {
	return fmt.Sprintf("budget: queue full: %s observed %d > limit %d (retry after %v)",
		e.Kind, e.Observed, e.Limit, e.RetryAfter.Round(time.Second))
}

// Pool bounds the aggregate estimated footprint of queued-plus-running
// work. It is backpressure, not enforcement: admission sums the
// estimator's predictions and refuses new work past the limit, while
// actual in-flight enforcement stays with each run's own Budget. Two
// bounds apply — a slot count (hard cap on queued jobs, which bounds
// journal replay and status-map memory) and an optional Budget whose
// HeapBytes/Events/TracePoints/Wall fields cap the summed estimates.
//
// All methods are safe for concurrent use.
type Pool struct {
	mu          sync.Mutex
	limit       *Budget
	slots       int
	parallelism int
	reserved    Footprint
	count       int
}

// NewPool builds a pool admitting at most slots jobs whose summed
// estimated footprint stays within limit (nil or zero Budget = no
// resource bound, slots only). parallelism is the worker count draining
// the pool; it scales the Retry-After hint, never admission itself.
func NewPool(limit *Budget, slots, parallelism int) *Pool {
	if slots < 1 {
		slots = 1
	}
	if parallelism < 1 {
		parallelism = 1
	}
	return &Pool{limit: limit, slots: slots, parallelism: parallelism}
}

// Admit reserves capacity for one job or rejects it with a *QueueError.
// The caller must Release the same footprint exactly once when the job
// reaches a terminal state (or on enqueue failure after admission).
func (p *Pool) Admit(f Footprint) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.count >= p.slots {
		return &QueueError{
			Kind:       KindSlots,
			Limit:      int64(p.slots),
			Observed:   int64(p.count + 1),
			RetryAfter: p.retryAfter(),
		}
	}
	if !p.limit.Unlimited() {
		next := p.reserved
		next.add(f)
		if qe := next.exceeds(p.limit); qe != nil {
			qe.RetryAfter = p.retryAfter()
			return qe
		}
	}
	p.reserve(f)
	return nil
}

// Force reserves capacity unconditionally. Boot recovery uses it to
// re-admit jobs the journal proves were already accepted: a restart
// must never bounce work the previous process promised to run, even if
// the limits have since been tightened.
func (p *Pool) Force(f Footprint) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.reserve(f)
}

// Release returns a job's reserved capacity. It must be passed the
// same footprint that was admitted.
func (p *Pool) Release(f Footprint) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.count--
	if p.count < 0 {
		p.count = 0
	}
	p.reserved.HeapBytes = max(p.reserved.HeapBytes-f.HeapBytes, 0)
	p.reserved.Events = max(p.reserved.Events-f.Events, 0)
	p.reserved.Processed = max(p.reserved.Processed-f.Processed, 0)
	p.reserved.TracePoints = max(p.reserved.TracePoints-f.TracePoints, 0)
	p.reserved.Wall = max(p.reserved.Wall-f.Wall, 0)
}

// Depth returns the number of jobs currently holding capacity.
func (p *Pool) Depth() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.count
}

// reserve applies one admission; the caller holds p.mu.
func (p *Pool) reserve(f Footprint) {
	p.count++
	p.reserved.add(f)
}

// retryAfter estimates when capacity frees: the reserved wall-clock
// spread over the draining workers, clamped to a sane client-visible
// range. The caller holds p.mu.
func (p *Pool) retryAfter() time.Duration {
	d := p.reserved.Wall / time.Duration(p.parallelism)
	if d < time.Second {
		d = time.Second
	}
	if d > 5*time.Minute {
		d = 5 * time.Minute
	}
	return d
}

// add sums another footprint into f.
func (f *Footprint) add(o Footprint) {
	f.HeapBytes += o.HeapBytes
	f.Events += o.Events
	f.Processed += o.Processed
	f.TracePoints += o.TracePoints
	f.Wall += o.Wall
}

// exceeds reports the first budget field the summed footprint breaks,
// or nil. The Wall comparison treats the budget as aggregate reserved
// work, mirroring how the pool uses it; per-run wall limits still
// apply inside each run.
func (f Footprint) exceeds(b *Budget) *QueueError {
	if b.HeapBytes > 0 && f.HeapBytes > b.HeapBytes {
		return &QueueError{Kind: KindHeapBytes, Limit: b.HeapBytes, Observed: f.HeapBytes}
	}
	if b.Events > 0 && f.Events > b.Events {
		return &QueueError{Kind: KindEvents, Limit: b.Events, Observed: f.Events}
	}
	if b.TracePoints > 0 && f.TracePoints > b.TracePoints {
		return &QueueError{Kind: KindTracePoints, Limit: b.TracePoints, Observed: f.TracePoints}
	}
	if b.Wall > 0 && f.Wall > b.Wall {
		return &QueueError{Kind: KindWallClock, Limit: int64(b.Wall), Observed: int64(f.Wall)}
	}
	return nil
}
