package budget

// Per-process memory limits for worker subprocesses. The estimator's
// Footprint prices a run's *heap*; an OS address-space limit
// (RLIMIT_AS) must also cover everything else a Go process maps —
// runtime arena reservations, thread stacks, the binary — and leave the
// garbage collector room to run at its default 100% growth target.
const (
	// WorkerVABaseBytes is the address-space floor below which a Go
	// worker process cannot start at all: the runtime reserves well over
	// a gigabyte of virtual address space (heap arena and page-allocator
	// structures) before user code allocates its first byte. Measured on
	// linux/amd64 with the toolchain this repo builds with: a trivial
	// program dies at startup under a 1 GiB RLIMIT_AS and runs fine at
	// 2 GiB. The constant is deliberately the working bound, not a
	// theoretical one.
	WorkerVABaseBytes = 2 << 30
	// WorkerHeapHeadroom multiplies the estimator's predicted peak heap:
	// one share live, one for the GC's growth target, one for allocator
	// fragmentation and transient copies (result rendering, JSON).
	WorkerHeapHeadroom = 3
)

// WorkerMemLimit derives the RLIMIT_AS ceiling for one worker process
// from its job's estimated footprint: the runtime's address-space floor
// plus headroom times the predicted heap. memCap, when positive, is an
// operator override that clamps the derived limit — the knob that turns
// "this host has 8 GB" into "no worker maps more than N" even when the
// estimator would allow more. A config whose real appetite exceeds the
// limit dies alone in its process (mmap failure → runtime OOM abort),
// which is the fleet design's whole point: the blast radius of a
// mis-scaled config is one worker, never the service.
func WorkerMemLimit(fp Footprint, memCap int64) int64 {
	limit := int64(WorkerVABaseBytes) + WorkerHeapHeadroom*fp.HeapBytes
	if limit < WorkerVABaseBytes { // overflow on absurd estimates
		limit = int64(^uint64(0) >> 1)
	}
	if memCap > 0 && limit > memCap {
		limit = memCap
	}
	return limit
}
