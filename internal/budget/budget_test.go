package budget

import (
	"encoding/json"
	"strings"
	"testing"
	"time"

	"ccatscale/internal/sim"
)

func refInput() Input {
	return Input{
		Flows:        40,
		RateBps:      200e6,
		BufferBytes:  7_500_000,
		BDPBytes:     5_000_000,
		FrameBytes:   1518,
		SegmentBytes: 1448,
		Horizon:      75 * sim.Second,
	}
}

func TestEstimateMonotone(t *testing.T) {
	base := Estimate(refInput())
	if base.HeapBytes <= 0 || base.Processed <= 0 || base.Wall <= 0 {
		t.Fatalf("degenerate base estimate: %+v", base)
	}

	bigger := refInput()
	bigger.Flows *= 10
	bigger.RateBps *= 10
	bigger.BufferBytes *= 10
	bigger.BDPBytes *= 10
	big := Estimate(bigger)
	if big.HeapBytes <= base.HeapBytes || big.Processed <= base.Processed ||
		big.Wall <= base.Wall || big.Events <= base.Events {
		t.Fatalf("10× scale did not grow the estimate:\nbase %+v\nbig  %+v", base, big)
	}

	longer := refInput()
	longer.Horizon *= 4
	long := Estimate(longer)
	if long.Processed <= base.Processed || long.Wall <= base.Wall {
		t.Fatalf("4× horizon did not grow processed events: base %+v long %+v", base, long)
	}
}

func TestEstimateTraceKnobs(t *testing.T) {
	in := refInput()
	in.SeriesInterval = 100 * sim.Millisecond
	in.SeriesWidth = 2
	withSeries := Estimate(in)
	without := Estimate(refInput())
	wantTicks := int64(75 / 0.1 * 2)
	if got := withSeries.TracePoints - without.TracePoints; got < wantTicks*9/10 || got > wantTicks*11/10 {
		t.Fatalf("series trace points = %d, want ≈%d", got, wantTicks)
	}

	bounded := refInput()
	bounded.MaxDropTimestamps = 1000
	unbounded := Estimate(refInput())
	if got := Estimate(bounded); got.TracePoints >= unbounded.TracePoints {
		t.Fatalf("bounding drop timestamps did not shrink trace points: %d vs %d",
			got.TracePoints, unbounded.TracePoints)
	}
}

func TestCheckKinds(t *testing.T) {
	f := Estimate(refInput())
	horizon := refInput().Horizon
	for _, tc := range []struct {
		kind Kind
		b    Budget
	}{
		{KindHeapBytes, Budget{HeapBytes: f.HeapBytes - 1}},
		{KindEvents, Budget{Events: f.Events - 1}},
		{KindTracePoints, Budget{TracePoints: f.TracePoints - 1}},
		{KindWallClock, Budget{Wall: f.Wall - 1}},
		{KindHorizon, Budget{Horizon: horizon - 1}},
	} {
		be := f.Check(&tc.b, horizon)
		if be == nil {
			t.Fatalf("%s: breach not detected", tc.kind)
		}
		if be.Kind != tc.kind || be.Stage != StageAdmission {
			t.Fatalf("%s: got kind %s stage %s", tc.kind, be.Kind, be.Stage)
		}
		if be.Observed <= be.Limit {
			t.Fatalf("%s: observed %d not above limit %d", tc.kind, be.Observed, be.Limit)
		}
		if be.Checkpoint != nil {
			t.Fatalf("%s: admission error carries a checkpoint", tc.kind)
		}
	}

	generous := Budget{HeapBytes: f.HeapBytes * 2, Events: f.Events * 2,
		TracePoints: f.TracePoints * 2, Wall: f.Wall * 2, Horizon: horizon * 2}
	if be := f.Check(&generous, horizon); be != nil {
		t.Fatalf("fitting config rejected: %v", be)
	}
	if be := f.Check(nil, horizon); be != nil {
		t.Fatalf("nil budget rejected: %v", be)
	}
	if be := f.Check(&Budget{}, horizon); be != nil {
		t.Fatalf("zero budget rejected: %v", be)
	}
}

func TestBudgetErrorJSONRoundTrip(t *testing.T) {
	in := &BudgetError{
		Kind: KindEvents, Stage: StageInFlight, Limit: 100, Observed: 150,
		Detail:     "engine heap capacity",
		Checkpoint: &Checkpoint{VirtualTime: 3 * sim.Second, Events: 42, Wall: time.Millisecond},
	}
	data, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	var out BudgetError
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatal(err)
	}
	if out.Kind != in.Kind || out.Stage != in.Stage || out.Limit != in.Limit ||
		out.Observed != in.Observed || out.Checkpoint == nil ||
		*out.Checkpoint != *in.Checkpoint {
		t.Fatalf("round trip mismatch: %+v vs %+v", out, in)
	}
	msg := in.Error()
	for _, want := range []string{"events", "in-flight", "150", "100", "vt="} {
		if !strings.Contains(msg, want) {
			t.Fatalf("error message missing %q: %s", want, msg)
		}
	}
}

func TestBudgetStringAndUnlimited(t *testing.T) {
	var nilB *Budget
	if !nilB.Unlimited() {
		t.Fatal("nil budget not unlimited")
	}
	if !(&Budget{}).Unlimited() {
		t.Fatal("zero budget not unlimited")
	}
	b := &Budget{HeapBytes: 1 << 30, Events: 5000}
	if b.Unlimited() {
		t.Fatal("non-zero budget reported unlimited")
	}
	s := b.String()
	if !strings.Contains(s, "heap") || !strings.Contains(s, "events") {
		t.Fatalf("String() missing limits: %s", s)
	}
}

func TestUsageMerge(t *testing.T) {
	var u Usage
	u.Merge(Usage{Events: 100, PeakEventCap: 10, Wall: time.Second, PeakHeapBytes: 5})
	u.Merge(Usage{Events: 50, PeakEventCap: 30, Wall: time.Second, MaxFidelity: 1, MaxDecimation: 4})
	if u.Runs != 2 || u.Events != 150 || u.PeakEventCap != 30 || u.Wall != 2*time.Second {
		t.Fatalf("merge sums/peaks wrong: %+v", u)
	}
	if u.PeakHeapBytes != 5 || u.MaxFidelity != 1 || u.MaxDecimation != 4 {
		t.Fatalf("merge peaks wrong: %+v", u)
	}
	if !u.Degraded() {
		t.Fatal("degraded usage not reported")
	}
	clean := Usage{MaxDecimation: 1}
	if clean.Degraded() {
		t.Fatal("clean usage reported degraded")
	}
}
