package budget

import "testing"

func TestWorkerMemLimit(t *testing.T) {
	small := Footprint{HeapBytes: 64 << 20}
	big := Footprint{HeapBytes: 2 << 30}

	// Floor: even a tiny job gets the runtime's address-space base.
	if got := WorkerMemLimit(small, 0); got < WorkerVABaseBytes {
		t.Fatalf("limit %d below the VA floor %d", got, WorkerVABaseBytes)
	}
	// Monotone in predicted heap.
	if WorkerMemLimit(big, 0) <= WorkerMemLimit(small, 0) {
		t.Fatal("bigger predicted heap did not raise the limit")
	}
	// Headroom: the derived limit covers floor + headroom × heap.
	want := int64(WorkerVABaseBytes) + WorkerHeapHeadroom*big.HeapBytes
	if got := WorkerMemLimit(big, 0); got != want {
		t.Fatalf("limit = %d, want %d", got, want)
	}
	// Operator cap clamps below the derived limit…
	if got := WorkerMemLimit(big, 1<<30); got != 1<<30 {
		t.Fatalf("capped limit = %d, want the cap", got)
	}
	// …but a cap above the derived limit changes nothing.
	if got := WorkerMemLimit(small, 1<<40); got != WorkerMemLimit(small, 0) {
		t.Fatalf("loose cap altered the limit: %d", got)
	}
	// Overflow-hostile estimates saturate instead of wrapping negative.
	absurd := Footprint{HeapBytes: int64(^uint64(0) >> 2)}
	if got := WorkerMemLimit(absurd, 0); got <= 0 {
		t.Fatalf("absurd estimate produced non-positive limit %d", got)
	}
}
