package packet

import "unsafe"

// StructBytes is the in-memory size of one Packet value. Queued packets
// dominate the bottleneck buffer's heap footprint at scale (a CoreScale
// drop-tail ring holds ~250k of them), so the resource-budget estimator
// prices queue capacity in these units rather than wire bytes.
const StructBytes = int64(unsafe.Sizeof(Packet{}))
