package packet

import "unsafe"

// sizeOf isolates the unsafe import so the main test file stays plain.
func sizeOf(p *Packet) uintptr { return unsafe.Sizeof(*p) }
