// Package packet defines the wire unit exchanged between the simulated
// TCP endpoints and the network substrate: data segments flowing
// sender→receiver and (selective) acknowledgments flowing back.
//
// Packets are plain values. At CoreScale a run moves hundreds of millions
// of segments, so the representation is a small fixed-size struct that
// lives in queues by value — no per-packet heap allocation, no pointer
// chasing on the hot path.
package packet

import (
	"fmt"

	"ccatscale/internal/sim"
	"ccatscale/internal/units"
)

// HeaderBytes is the per-segment overhead charged on the wire in
// addition to payload: Ethernet (14+4) + IPv4 (20) + TCP with timestamp
// options (32) = 70 bytes. With a 1448-byte MSS this reproduces the
// ~1518-byte on-the-wire frame the paper's 10 Gbps budget is spent on.
const HeaderBytes units.ByteCount = 70

// AckBytes is the wire size of a pure ACK (headers plus up to three SACK
// blocks). ACKs traverse the reverse path, which is never the bottleneck
// in the paper's topology, but the size is kept for completeness.
const AckBytes units.ByteCount = 90

// SackBlock is one contiguous received range [Start, End) reported in an
// ACK, in byte sequence space.
type SackBlock struct {
	Start, End int64
}

// Len returns the block's length in bytes.
func (b SackBlock) Len() int64 { return b.End - b.Start }

// MaxSackBlocks is the number of SACK blocks carried per ACK. Linux fits
// three alongside timestamps; the paper's stacks all negotiate SACK.
const MaxSackBlocks = 3

// Packet is a simulated TCP segment or acknowledgment.
type Packet struct {
	// Flow identifies the connection. Flow IDs are dense small integers
	// assigned by the experiment harness.
	Flow int32

	// Seq is the sequence number (byte offset) of the first payload byte
	// for data segments.
	Seq int64

	// Len is the payload length in bytes for data segments; 0 for ACKs.
	Len int32

	// Ack marks a pure acknowledgment traveling receiver→sender.
	Ack bool

	// Retrans marks a retransmitted data segment: its ACK must not
	// produce an RTT sample (Karn's algorithm).
	Retrans bool

	// ECN state (RFC 3168, simplified to one bit per codepoint). ECT
	// marks a data segment ECN-capable: an ECN-enabled queue sets CE on
	// it instead of (or before) dropping. The receiver echoes CE back as
	// ECE on every ACK until the sender's CWR-marked data confirms a
	// window reduction. Retransmissions are never ECT (RFC 3168 §6.1.5),
	// and pure ACKs are never ECT/CE.
	ECT bool
	CE  bool
	ECE bool // on ACKs: congestion-experienced echo latch
	CWR bool // on data: congestion window reduced (clears the ECE latch)

	// CumAck is the cumulative acknowledgment (next expected byte) for
	// ACK packets.
	CumAck int64

	// Sack holds up to MaxSackBlocks selective-acknowledgment ranges,
	// most recently received first. NumSack is the live count.
	Sack    [MaxSackBlocks]SackBlock
	NumSack int8

	// SentAt is the virtual time the segment was transmitted. Echoed
	// back in ACKs (AckedSentAt) to produce RTT samples, playing the
	// role of the TCP timestamp option.
	SentAt sim.Time

	// AckedSentAt is, on an ACK, the SentAt of the segment whose arrival
	// triggered it.
	AckedSentAt sim.Time

	// AckedRetrans is, on an ACK, whether that segment was a
	// retransmission.
	AckedRetrans bool

	// Delivery-rate sampling state (Cheng et al., "Delivery Rate
	// Estimation"), recorded at transmit time and echoed through the
	// receiver so BBR can compute per-ACK bandwidth samples:
	// Delivered/DeliveredAt snapshot the connection's delivered-byte
	// counter, FirstSentAt the send time of the first packet of the
	// sampling interval, AppLimited whether the sample window was
	// application-limited. On an ACK, RateSentAt echoes the SentAt of
	// the newest segment covered (RTT echoes, by contrast, come from the
	// oldest pending segment, as with TCP timestamps under delayed ACKs).
	Delivered   int64
	DeliveredAt sim.Time
	FirstSentAt sim.Time
	RateSentAt  sim.Time
	AppLimited  bool
}

// WireBytes returns the packet's size on the wire, headers included.
func (p *Packet) WireBytes() units.ByteCount {
	if p.Ack {
		return AckBytes
	}
	return units.ByteCount(p.Len) + HeaderBytes
}

// End returns the sequence number one past the segment's last payload
// byte.
func (p *Packet) End() int64 { return p.Seq + int64(p.Len) }

// String renders a compact human-readable form for traces and test
// failures.
func (p *Packet) String() string {
	if p.Ack {
		s := fmt.Sprintf("flow %d ACK %d", p.Flow, p.CumAck)
		for i := int8(0); i < p.NumSack; i++ {
			s += fmt.Sprintf(" sack[%d,%d)", p.Sack[i].Start, p.Sack[i].End)
		}
		return s
	}
	kind := "DATA"
	if p.Retrans {
		kind = "RTX"
	}
	return fmt.Sprintf("flow %d %s [%d,%d)", p.Flow, kind, p.Seq, p.End())
}
