package packet

import (
	"strings"
	"testing"

	"ccatscale/internal/units"
)

func TestWireBytes(t *testing.T) {
	data := Packet{Len: 1448}
	if got := data.WireBytes(); got != 1448+HeaderBytes {
		t.Fatalf("data WireBytes = %v, want %v", got, 1448+HeaderBytes)
	}
	// Full-MSS frame should be the classic ~1518B Ethernet frame.
	if data.WireBytes() != 1518 {
		t.Fatalf("full-MSS frame = %v, want 1518", data.WireBytes())
	}
	ack := Packet{Ack: true}
	if got := ack.WireBytes(); got != AckBytes {
		t.Fatalf("ack WireBytes = %v, want %v", got, AckBytes)
	}
}

func TestEnd(t *testing.T) {
	p := Packet{Seq: 1000, Len: 1448}
	if p.End() != 2448 {
		t.Fatalf("End = %d, want 2448", p.End())
	}
}

func TestSackBlockLen(t *testing.T) {
	b := SackBlock{Start: 10, End: 25}
	if b.Len() != 15 {
		t.Fatalf("Len = %d, want 15", b.Len())
	}
}

func TestStringForms(t *testing.T) {
	d := Packet{Flow: 3, Seq: 0, Len: 1448}
	if got := d.String(); !strings.Contains(got, "DATA") || !strings.Contains(got, "flow 3") {
		t.Errorf("data String = %q", got)
	}
	d.Retrans = true
	if got := d.String(); !strings.Contains(got, "RTX") {
		t.Errorf("retransmission String = %q", got)
	}
	a := Packet{Flow: 1, Ack: true, CumAck: 2896, NumSack: 1}
	a.Sack[0] = SackBlock{Start: 4344, End: 5792}
	got := a.String()
	if !strings.Contains(got, "ACK 2896") || !strings.Contains(got, "sack[4344,5792)") {
		t.Errorf("ack String = %q", got)
	}
}

func TestPacketValueSizeStaysSmall(t *testing.T) {
	// Queues hold packets by value; a size regression multiplies across
	// hundreds of thousands of queued segments at CoreScale.
	var p Packet
	const maxBytes = 200
	if size := int(unsafeSizeof(p)); size > maxBytes {
		t.Fatalf("Packet value is %d bytes, want ≤ %d", size, maxBytes)
	}
}

func unsafeSizeof(p Packet) uintptr {
	return sizeOf(&p)
}

func TestHeaderAccounting(t *testing.T) {
	// The harness charges wire bytes against link capacity; sanity-check
	// goodput fraction for full-MSS segments: 1448/1518 ≈ 95.4%.
	frac := float64(units.MSS) / float64(units.MSS+HeaderBytes)
	if frac < 0.95 || frac > 0.96 {
		t.Fatalf("goodput fraction = %v, want ≈0.954", frac)
	}
}
