// Package sim provides the discrete-event simulation engine that drives
// every experiment in this repository: a virtual clock, an event queue,
// cancellable timers, and a deterministic pseudo-random number generator.
//
// The engine is single-threaded by design. An experiment run schedules
// closures at virtual timestamps; Run executes them in timestamp order
// (FIFO among equal timestamps) until the horizon is reached, the event
// queue drains, or the run is stopped. Determinism is a hard requirement:
// two runs with the same configuration and seed produce bit-identical
// results, which makes every reported number in EXPERIMENTS.md
// reproducible.
//
// The event hot path is allocation-free in steady state: fired and
// cancelled events return to an engine-owned free list and Schedule
// reuses them, and the binary heap compacts itself when lazily-cancelled
// corpses outnumber live entries. At CoreScale (hundreds of millions of
// packet, timer, and sample events per run) this is the difference
// between running at memory speed and running at garbage-collector
// speed.
package sim

import (
	"fmt"
	"math"
	"time"
)

// Time is a virtual timestamp in nanoseconds since the start of the run.
//
// Virtual nanoseconds are stored in an int64, which covers runs of about
// 292 years — far beyond the paper's 3-hour experiments.
type Time int64

// Common durations, mirroring the time package so call sites read
// naturally (5*sim.Second) without importing time for arithmetic.
const (
	Nanosecond  Time = 1
	Microsecond      = 1000 * Nanosecond
	Millisecond      = 1000 * Microsecond
	Second           = 1000 * Millisecond
	Minute           = 60 * Second
	Hour             = 60 * Minute
)

// MaxTime is the largest representable virtual time. It is used as the
// horizon for runs that should only terminate by convergence or event
// exhaustion.
const MaxTime = Time(math.MaxInt64)

// Duration converts a standard library duration to virtual time.
func Duration(d time.Duration) Time { return Time(d.Nanoseconds()) }

// Std converts a virtual time to a standard library duration.
func (t Time) Std() time.Duration { return time.Duration(t) }

// Seconds reports the time as floating-point seconds. Intended for
// metric computation and reporting, not for scheduling arithmetic.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// String formats the time with the standard library's duration rules.
func (t Time) String() string { return time.Duration(t).String() }

// Event is a scheduled closure. The zero Event is not valid; events are
// created by Engine.Schedule and friends.
//
// Events may be cancelled while pending. Cancellation is lazy: the heap
// entry stays in place and is discarded when popped, which keeps timer
// churn (TCP retransmission timers are rearmed on almost every ACK)
// cheap. The engine compacts the heap when lazily-cancelled corpses
// outnumber live entries, so churn cannot grow the heap without bound.
//
// An *Event handle is valid until the event fires or its cancellation is
// collected: the engine then recycles the Event for a future Schedule.
// Cancel and Pending on a stale handle are safe no-ops until the moment
// of reuse, but a holder that may outlive its event must use Timer,
// which detects recycling through a generation counter.
type Event struct {
	at  Time
	seq uint64 // tie-break so equal timestamps run FIFO
	fn  func()
	eng *Engine
	gen uint64 // incremented on recycle; Timer's staleness check

	cancelled bool
	popped    bool
}

// At reports the virtual time the event fires at.
func (e *Event) At() Time { return e.at }

// Cancel prevents a pending event from firing. Cancelling an event that
// already fired or was already cancelled is a no-op.
func (e *Event) Cancel() {
	if e == nil || e.cancelled || e.popped {
		return
	}
	e.cancelled = true
	e.eng.live--
	e.eng.maybeCompact()
}

// Pending reports whether the event is still scheduled to fire.
func (e *Event) Pending() bool {
	return e != nil && !e.cancelled && !e.popped
}

// Engine is a discrete-event simulator. The zero value is not usable;
// construct one with NewEngine.
type Engine struct {
	now     Time
	queue   []*Event // binary min-heap ordered by (at, seq)
	nextSeq uint64
	stopped bool

	// live counts heap entries that are still scheduled to fire; the
	// difference to len(queue) is lazily-cancelled corpses.
	live int

	// free is the event free list: fired and collected events are
	// recycled here so steady-state scheduling never allocates.
	free []*Event

	// processed counts events executed so far; useful for progress
	// reporting and for sanity limits in tests.
	processed uint64

	// interruptEvery/interruptFn implement the supervisor hook: Run
	// calls interruptFn after every interruptEvery-th processed event.
	interruptEvery uint64
	interruptFn    func()

	// auditFn, when set, receives engine invariant violations (a
	// non-monotone clock, an event scheduled in the past) as structured
	// reports instead of — or, for causality-protecting panics, in
	// addition to — a bare panic. Installed by the run supervisor; the
	// engine stays free of upward dependencies.
	auditFn func(check, detail string)
}

// NewEngine returns an engine with the clock at zero and an empty queue.
func NewEngine() *Engine {
	return &Engine{queue: make([]*Event, 0, 1024)}
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Processed reports the number of events executed so far.
func (e *Engine) Processed() uint64 { return e.processed }

// Len reports the number of live (pending, not cancelled) events. The
// run supervisor's stall guard and capacity heuristics rely on this
// being an exact count, not an estimate inflated by lazily-cancelled
// corpses.
func (e *Engine) Len() int { return e.live }

// Cap reports the raw heap size, including lazily-cancelled entries
// awaiting collection — the engine's actual memory footprint indicator.
func (e *Engine) Cap() int { return len(e.queue) }

// acquire returns a recycled event from the free list, or a new one.
func (e *Engine) acquire() *Event {
	if n := len(e.free); n > 0 {
		ev := e.free[n-1]
		e.free[n-1] = nil
		e.free = e.free[:n-1]
		return ev
	}
	return &Event{eng: e}
}

// release recycles an event that fired or whose cancellation was
// collected. The closure reference is dropped immediately so the pool
// never extends closure lifetimes; the generation bump invalidates any
// Timer still holding the handle.
func (e *Engine) release(ev *Event) {
	ev.fn = nil
	ev.gen++
	ev.popped = true
	e.free = append(e.free, ev)
}

// Schedule runs fn at virtual time at. Scheduling in the past panics:
// it always indicates a logic error in the caller, and silently clamping
// would corrupt causality.
func (e *Engine) Schedule(at Time, fn func()) *Event {
	if at < e.now {
		if e.auditFn != nil {
			// Under a strict auditor this panics with the structured
			// violation; under warn it records, and the panic below
			// still protects causality.
			e.auditFn("sim/schedule-in-past", fmt.Sprintf("event at %v before now %v", at, e.now))
		}
		panic(fmt.Sprintf("sim: schedule at %v before now %v", at, e.now))
	}
	ev := e.acquire()
	ev.at = at
	ev.seq = e.nextSeq
	ev.fn = fn
	ev.cancelled = false
	ev.popped = false
	e.nextSeq++
	e.live++
	e.heapPush(ev)
	return ev
}

// After runs fn after delay d. A non-positive delay schedules for the
// current instant (the event still goes through the queue, after any
// events already scheduled for now).
func (e *Engine) After(d Time, fn func()) *Event {
	if d < 0 {
		d = 0
	}
	return e.Schedule(e.now+d, fn)
}

// Stop makes Run return after the currently executing event completes.
func (e *Engine) Stop() { e.stopped = true }

// Stopped reports whether Stop was called during the current or most
// recent Run.
func (e *Engine) Stopped() bool { return e.stopped }

// SetInterrupt installs a supervisor hook: Run invokes fn after every
// every-th processed event. The hook exists for watchdogs — checking a
// wall-clock budget or detecting a stalled virtual clock — which then
// end the run gracefully via Stop instead of aborting the process. A
// zero interval or nil fn removes the hook.
//
// The hook must not schedule or cancel events; it observes and stops.
// Because it runs on the event-loop thread at deterministic points, a
// hook that inspects only virtual state cannot perturb determinism;
// one that inspects wall-clock time trades determinism for liveness
// only in the runs it actually stops.
func (e *Engine) SetInterrupt(every uint64, fn func()) {
	if every == 0 || fn == nil {
		e.interruptEvery, e.interruptFn = 0, nil
		return
	}
	e.interruptEvery, e.interruptFn = every, fn
}

// SetAudit installs the engine's invariant reporter: fn receives a
// check name ("sim/...") and a detail string whenever an engine
// invariant fails. Like the interrupt hook, the reporter observes only
// virtual state at deterministic points, so it cannot perturb
// determinism. A nil fn removes the hook.
func (e *Engine) SetAudit(fn func(check, detail string)) { e.auditFn = fn }

// Run executes events in timestamp order until the queue is empty, the
// next event lies beyond horizon, or Stop is called. It returns the
// virtual time at which execution stopped: the horizon if it was
// reached, otherwise the time of the last executed event.
//
// Events scheduled exactly at the horizon are executed.
func (e *Engine) Run(horizon Time) Time {
	e.stopped = false
	for len(e.queue) > 0 && !e.stopped {
		next := e.queue[0]
		if next.cancelled {
			// Collect a corpse that bubbled to the top.
			e.heapPopTop()
			e.release(next)
			continue
		}
		if next.at > horizon {
			e.now = horizon
			return e.now
		}
		e.heapPopTop()
		at, fn := next.at, next.fn
		e.live--
		// Recycle before executing: fn may Schedule and reuse the slot,
		// and a Timer watching this event observes the generation bump
		// exactly as it previously observed the popped flag.
		e.release(next)
		if e.auditFn != nil && at < e.now {
			e.auditFn("sim/clock-monotone", fmt.Sprintf("popped event at %v behind clock %v", at, e.now))
		}
		e.now = at
		e.processed++
		fn()
		if e.interruptEvery > 0 && e.processed%e.interruptEvery == 0 {
			e.interruptFn()
		}
	}
	if !e.stopped && e.now < horizon && horizon != MaxTime {
		// Queue drained before the horizon: advance the clock so
		// measurement windows that end at the horizon stay well defined.
		e.now = horizon
	}
	return e.now
}

// compactMin is the heap size below which compaction is never worth the
// rebuild; tiny heaps drain their corpses through ordinary pops.
const compactMin = 64

// maybeCompact rebuilds the heap without its lazily-cancelled corpses
// once they outnumber live entries. Timer-churny workloads (TCP rearms
// the RTO on almost every ACK) otherwise grow the heap without bound:
// each rearm leaves a corpse whose deadline may lie far in the future,
// surviving every pop of the run. Compaction preserves the (at, seq)
// order exactly, so execution order — and therefore determinism — is
// unaffected.
func (e *Engine) maybeCompact() {
	if len(e.queue) < compactMin || len(e.queue)-e.live <= len(e.queue)/2 {
		return
	}
	q := e.queue
	kept := q[:0]
	for _, ev := range q {
		if ev.cancelled {
			e.release(ev)
			continue
		}
		kept = append(kept, ev)
	}
	for i := len(kept); i < len(q); i++ {
		q[i] = nil
	}
	e.queue = kept
	// Re-establish the heap invariant bottom-up (standard O(n) build).
	for i := len(kept)/2 - 1; i >= 0; i-- {
		e.siftDown(i)
	}
}

// eventLess orders the heap by timestamp, sequence-number tie-broken so
// equal timestamps run FIFO.
func eventLess(a, b *Event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

func (e *Engine) heapPush(ev *Event) {
	e.queue = append(e.queue, ev)
	i := len(e.queue) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !eventLess(e.queue[i], e.queue[parent]) {
			break
		}
		e.queue[i], e.queue[parent] = e.queue[parent], e.queue[i]
		i = parent
	}
}

// heapPopTop removes the root entry (callers read e.queue[0] first).
func (e *Engine) heapPopTop() {
	last := len(e.queue) - 1
	e.queue[0] = e.queue[last]
	e.queue[last] = nil
	e.queue = e.queue[:last]
	if last > 0 {
		e.siftDown(0)
	}
}

func (e *Engine) siftDown(i int) {
	q := e.queue
	n := len(q)
	for {
		left := 2*i + 1
		if left >= n {
			return
		}
		min := left
		if right := left + 1; right < n && eventLess(q[right], q[left]) {
			min = right
		}
		if !eventLess(q[min], q[i]) {
			return
		}
		q[i], q[min] = q[min], q[i]
		i = min
	}
}

// Timer is a rearm-friendly wrapper over Schedule for the common TCP
// pattern "reset the retransmission timer on every ACK". Reset cancels
// any pending expiry and schedules a new one; Stop cancels. Both are
// allocation-free in steady state: the engine recycles the underlying
// events, and the timer's single stored callback means no closure is
// ever created per (re)arm.
type Timer struct {
	eng *Engine
	fn  func()
	ev  *Event
	gen uint64 // generation of ev at arm time; detects recycling
}

// NewTimer creates a stopped timer that will invoke fn when it expires.
func NewTimer(eng *Engine, fn func()) *Timer {
	return &Timer{eng: eng, fn: fn}
}

// armed reports whether the timer's event handle is still its own live
// arm: present, not recycled into a different event, and pending.
func (t *Timer) armed() bool {
	return t.ev != nil && t.ev.gen == t.gen && t.ev.Pending()
}

// Reset (re)arms the timer to fire after d.
func (t *Timer) Reset(d Time) {
	if t.armed() {
		t.ev.Cancel()
	}
	t.ev = t.eng.After(d, t.fn)
	t.gen = t.ev.gen
}

// Stop cancels the pending expiry, if any.
func (t *Timer) Stop() {
	if t.armed() {
		t.ev.Cancel()
	}
}

// Pending reports whether the timer is armed.
func (t *Timer) Pending() bool { return t.armed() }

// Deadline returns the expiry time of an armed timer and true, or zero
// and false for a stopped timer.
func (t *Timer) Deadline() (Time, bool) {
	if !t.armed() {
		return 0, false
	}
	return t.ev.At(), true
}
