// Package sim provides the discrete-event simulation engine that drives
// every experiment in this repository: a virtual clock, an event queue,
// cancellable timers, and a deterministic pseudo-random number generator.
//
// The engine is single-threaded by design. An experiment run schedules
// closures at virtual timestamps; Run executes them in timestamp order
// (FIFO among equal timestamps) until the horizon is reached, the event
// queue drains, or the run is stopped. Determinism is a hard requirement:
// two runs with the same configuration and seed produce bit-identical
// results, which makes every reported number in EXPERIMENTS.md
// reproducible.
package sim

import (
	"container/heap"
	"fmt"
	"math"
	"time"
)

// Time is a virtual timestamp in nanoseconds since the start of the run.
//
// Virtual nanoseconds are stored in an int64, which covers runs of about
// 292 years — far beyond the paper's 3-hour experiments.
type Time int64

// Common durations, mirroring the time package so call sites read
// naturally (5*sim.Second) without importing time for arithmetic.
const (
	Nanosecond  Time = 1
	Microsecond      = 1000 * Nanosecond
	Millisecond      = 1000 * Microsecond
	Second           = 1000 * Millisecond
	Minute           = 60 * Second
	Hour             = 60 * Minute
)

// MaxTime is the largest representable virtual time. It is used as the
// horizon for runs that should only terminate by convergence or event
// exhaustion.
const MaxTime = Time(math.MaxInt64)

// Duration converts a standard library duration to virtual time.
func Duration(d time.Duration) Time { return Time(d.Nanoseconds()) }

// Std converts a virtual time to a standard library duration.
func (t Time) Std() time.Duration { return time.Duration(t) }

// Seconds reports the time as floating-point seconds. Intended for
// metric computation and reporting, not for scheduling arithmetic.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// String formats the time with the standard library's duration rules.
func (t Time) String() string { return time.Duration(t).String() }

// Event is a scheduled closure. The zero Event is not valid; events are
// created by Engine.Schedule and friends.
//
// Events may be cancelled while pending. Cancellation is lazy: the heap
// entry stays in place and is discarded when popped, which keeps timer
// churn (TCP retransmission timers are rearmed on almost every ACK)
// cheap.
type Event struct {
	at  Time
	seq uint64 // tie-break so equal timestamps run FIFO
	fn  func()

	cancelled bool
	popped    bool
}

// At reports the virtual time the event fires at.
func (e *Event) At() Time { return e.at }

// Cancel prevents a pending event from firing. Cancelling an event that
// already fired or was already cancelled is a no-op.
func (e *Event) Cancel() {
	if e != nil {
		e.cancelled = true
	}
}

// Pending reports whether the event is still scheduled to fire.
func (e *Event) Pending() bool {
	return e != nil && !e.cancelled && !e.popped
}

type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(*Event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// Engine is a discrete-event simulator. The zero value is not usable;
// construct one with NewEngine.
type Engine struct {
	now     Time
	queue   eventHeap
	nextSeq uint64
	stopped bool

	// processed counts events executed so far; useful for progress
	// reporting and for sanity limits in tests.
	processed uint64

	// interruptEvery/interruptFn implement the supervisor hook: Run
	// calls interruptFn after every interruptEvery-th processed event.
	interruptEvery uint64
	interruptFn    func()

	// auditFn, when set, receives engine invariant violations (a
	// non-monotone clock, an event scheduled in the past) as structured
	// reports instead of — or, for causality-protecting panics, in
	// addition to — a bare panic. Installed by the run supervisor; the
	// engine stays free of upward dependencies.
	auditFn func(check, detail string)
}

// NewEngine returns an engine with the clock at zero and an empty queue.
func NewEngine() *Engine {
	return &Engine{queue: make(eventHeap, 0, 1024)}
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Processed reports the number of events executed so far.
func (e *Engine) Processed() uint64 { return e.processed }

// Len reports the number of queue entries, including lazily cancelled
// ones. It is a capacity indicator, not an exact count of live events.
func (e *Engine) Len() int { return len(e.queue) }

// Schedule runs fn at virtual time at. Scheduling in the past panics:
// it always indicates a logic error in the caller, and silently clamping
// would corrupt causality.
func (e *Engine) Schedule(at Time, fn func()) *Event {
	if at < e.now {
		if e.auditFn != nil {
			// Under a strict auditor this panics with the structured
			// violation; under warn it records, and the panic below
			// still protects causality.
			e.auditFn("sim/schedule-in-past", fmt.Sprintf("event at %v before now %v", at, e.now))
		}
		panic(fmt.Sprintf("sim: schedule at %v before now %v", at, e.now))
	}
	ev := &Event{at: at, seq: e.nextSeq, fn: fn}
	e.nextSeq++
	heap.Push(&e.queue, ev)
	return ev
}

// After runs fn after delay d. A non-positive delay schedules for the
// current instant (the event still goes through the queue, after any
// events already scheduled for now).
func (e *Engine) After(d Time, fn func()) *Event {
	if d < 0 {
		d = 0
	}
	return e.Schedule(e.now+d, fn)
}

// Stop makes Run return after the currently executing event completes.
func (e *Engine) Stop() { e.stopped = true }

// Stopped reports whether Stop was called during the current or most
// recent Run.
func (e *Engine) Stopped() bool { return e.stopped }

// SetInterrupt installs a supervisor hook: Run invokes fn after every
// every-th processed event. The hook exists for watchdogs — checking a
// wall-clock budget or detecting a stalled virtual clock — which then
// end the run gracefully via Stop instead of aborting the process. A
// zero interval or nil fn removes the hook.
//
// The hook must not schedule or cancel events; it observes and stops.
// Because it runs on the event-loop thread at deterministic points, a
// hook that inspects only virtual state cannot perturb determinism;
// one that inspects wall-clock time trades determinism for liveness
// only in the runs it actually stops.
func (e *Engine) SetInterrupt(every uint64, fn func()) {
	if every == 0 || fn == nil {
		e.interruptEvery, e.interruptFn = 0, nil
		return
	}
	e.interruptEvery, e.interruptFn = every, fn
}

// SetAudit installs the engine's invariant reporter: fn receives a
// check name ("sim/...") and a detail string whenever an engine
// invariant fails. Like the interrupt hook, the reporter observes only
// virtual state at deterministic points, so it cannot perturb
// determinism. A nil fn removes the hook.
func (e *Engine) SetAudit(fn func(check, detail string)) { e.auditFn = fn }

// Run executes events in timestamp order until the queue is empty, the
// next event lies beyond horizon, or Stop is called. It returns the
// virtual time at which execution stopped: the horizon if it was
// reached, otherwise the time of the last executed event.
//
// Events scheduled exactly at the horizon are executed.
func (e *Engine) Run(horizon Time) Time {
	e.stopped = false
	for len(e.queue) > 0 && !e.stopped {
		next := e.queue[0]
		if next.at > horizon {
			e.now = horizon
			return e.now
		}
		heap.Pop(&e.queue)
		next.popped = true
		if next.cancelled {
			continue
		}
		if e.auditFn != nil && next.at < e.now {
			e.auditFn("sim/clock-monotone", fmt.Sprintf("popped event at %v behind clock %v", next.at, e.now))
		}
		e.now = next.at
		e.processed++
		next.fn()
		if e.interruptEvery > 0 && e.processed%e.interruptEvery == 0 {
			e.interruptFn()
		}
	}
	if !e.stopped && e.now < horizon && horizon != MaxTime {
		// Queue drained before the horizon: advance the clock so
		// measurement windows that end at the horizon stay well defined.
		e.now = horizon
	}
	return e.now
}

// Timer is a rearm-friendly wrapper over Schedule for the common TCP
// pattern "reset the retransmission timer on every ACK". Reset cancels
// any pending expiry and schedules a new one; Stop cancels.
type Timer struct {
	eng *Engine
	fn  func()
	ev  *Event
}

// NewTimer creates a stopped timer that will invoke fn when it expires.
func NewTimer(eng *Engine, fn func()) *Timer {
	return &Timer{eng: eng, fn: fn}
}

// Reset (re)arms the timer to fire after d.
func (t *Timer) Reset(d Time) {
	t.ev.Cancel()
	t.ev = t.eng.After(d, t.fn)
}

// Stop cancels the pending expiry, if any.
func (t *Timer) Stop() { t.ev.Cancel() }

// Pending reports whether the timer is armed.
func (t *Timer) Pending() bool { return t.ev.Pending() }

// Deadline returns the expiry time of an armed timer and true, or zero
// and false for a stopped timer.
func (t *Timer) Deadline() (Time, bool) {
	if !t.ev.Pending() {
		return 0, false
	}
	return t.ev.At(), true
}
