package sim

import "math/bits"

// RNG is a small, fast, deterministic pseudo-random number generator
// (xoshiro256** seeded via SplitMix64). Experiments never use the global
// math/rand state: every run owns an RNG derived from the experiment
// seed, so results are reproducible regardless of package initialization
// order or parallel test execution.
type RNG struct {
	s [4]uint64
}

// NewRNG returns a generator seeded deterministically from seed.
func NewRNG(seed uint64) *RNG {
	r := &RNG{}
	// SplitMix64 expansion of the seed, as recommended by the xoshiro
	// authors: guarantees a non-zero state for any seed value.
	x := seed
	for i := range r.s {
		x += 0x9e3779b97f4a7c15
		z := x
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		r.s[i] = z ^ (z >> 31)
	}
	return r
}

// Split returns a new generator whose stream is independent of r's
// continued output. It is used to give each flow its own stream so that
// adding instrumentation to one flow cannot perturb another.
func (r *RNG) Split() *RNG {
	return NewRNG(r.Uint64() ^ 0xd1b54a32d192ed03)
}

// Uint64 returns the next 64 uniformly distributed bits.
func (r *RNG) Uint64() uint64 {
	s := &r.s
	result := bits.RotateLeft64(s[1]*5, 7) * 9
	t := s[1] << 17
	s[2] ^= s[0]
	s[3] ^= s[1]
	s[1] ^= s[2]
	s[0] ^= s[3]
	s[2] ^= t
	s[3] = bits.RotateLeft64(s[3], 45)
	return result
}

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Int63n returns a uniform value in [0, n). It panics if n <= 0.
func (r *RNG) Int63n(n int64) int64 {
	if n <= 0 {
		panic("sim: Int63n with non-positive bound")
	}
	// Lemire's multiply-shift rejection method: unbiased and division-free
	// in the common case.
	un := uint64(n)
	hi, lo := bits.Mul64(r.Uint64(), un)
	if lo < un {
		thresh := -un % un
		for lo < thresh {
			hi, lo = bits.Mul64(r.Uint64(), un)
		}
	}
	return int64(hi)
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int { return int(r.Int63n(int64(n))) }

// Dur returns a uniform virtual duration in [0, d). A non-positive d
// returns 0, which lets callers pass an unscaled "stagger window" of
// zero to request simultaneous starts.
func (r *RNG) Dur(d Time) Time {
	if d <= 0 {
		return 0
	}
	return Time(r.Int63n(int64(d)))
}

// Perm returns a random permutation of [0, n), Fisher–Yates shuffled.
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := 1; i < n; i++ {
		j := r.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}

// Shuffle randomizes the order of n elements using swap, as in math/rand.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}
