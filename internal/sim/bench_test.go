package sim

import "testing"

// BenchmarkSchedule measures the pooled schedule+fire cycle — the
// engine's per-event cost with a primed free list.
func BenchmarkSchedule(b *testing.B) {
	eng := NewEngine()
	fn := func() {}
	for i := 0; i < 64; i++ {
		eng.After(1, fn)
	}
	eng.Run(MaxTime)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng.After(1, fn)
		if i%64 == 63 {
			eng.Run(MaxTime)
		}
	}
	eng.Run(MaxTime)
}

// BenchmarkTimerChurn measures the rearm-heavy RTO pattern: each Reset
// lazily cancels the previous arm, exercising pool recycling and heap
// compaction together.
func BenchmarkTimerChurn(b *testing.B) {
	eng := NewEngine()
	tm := NewTimer(eng, func() {})
	tm.Reset(1 << 40)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tm.Reset(1 << 40)
	}
}

// BenchmarkScheduleCancel measures schedule-then-cancel churn, the
// pacing-timer pattern under bursty ACK arrival.
func BenchmarkScheduleCancel(b *testing.B) {
	eng := NewEngine()
	fn := func() {}
	for i := 0; i < 64; i++ {
		eng.After(1, fn)
	}
	eng.Run(MaxTime)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng.After(1000, fn).Cancel()
	}
}
