package sim

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRNGDeterministic(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same-seed generators diverged at step %d", i)
		}
	}
}

func TestRNGSeedsDiffer(t *testing.T) {
	a, b := NewRNG(1), NewRNG(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds produced %d/100 identical outputs", same)
	}
}

func TestRNGZeroSeedWorks(t *testing.T) {
	r := NewRNG(0)
	// xoshiro with an all-zero state would emit only zeros; the SplitMix64
	// expansion must prevent that.
	allZero := true
	for i := 0; i < 10; i++ {
		if r.Uint64() != 0 {
			allZero = false
		}
	}
	if allZero {
		t.Fatal("zero seed produced a degenerate all-zero stream")
	}
}

func TestFloat64Range(t *testing.T) {
	r := NewRNG(7)
	f := func(_ uint8) bool {
		v := r.Float64()
		return v >= 0 && v < 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

func TestFloat64Mean(t *testing.T) {
	r := NewRNG(9)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("Float64 mean = %v, want ≈0.5", mean)
	}
}

func TestInt63nBoundsProperty(t *testing.T) {
	r := NewRNG(11)
	f := func(bound uint32) bool {
		n := int64(bound%1000) + 1
		v := r.Int63n(n)
		return v >= 0 && v < n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

func TestInt63nUniformity(t *testing.T) {
	r := NewRNG(13)
	const buckets = 10
	const n = 100000
	counts := make([]int, buckets)
	for i := 0; i < n; i++ {
		counts[r.Int63n(buckets)]++
	}
	want := float64(n) / buckets
	for b, c := range counts {
		if math.Abs(float64(c)-want) > want*0.1 {
			t.Fatalf("bucket %d count %d deviates >10%% from %v", b, c, want)
		}
	}
}

func TestInt63nPanicsOnNonPositive(t *testing.T) {
	r := NewRNG(1)
	for _, n := range []int64{0, -1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Int63n(%d) did not panic", n)
				}
			}()
			r.Int63n(n)
		}()
	}
}

func TestDur(t *testing.T) {
	r := NewRNG(5)
	if r.Dur(0) != 0 || r.Dur(-5) != 0 {
		t.Fatal("Dur of non-positive bound should be 0")
	}
	for i := 0; i < 1000; i++ {
		d := r.Dur(2 * Minute)
		if d < 0 || d >= 2*Minute {
			t.Fatalf("Dur out of range: %v", d)
		}
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := NewRNG(3)
	for _, n := range []int{0, 1, 2, 17, 100} {
		p := r.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) = %v is not a permutation", n, p)
			}
			seen[v] = true
		}
	}
}

func TestShufflePreservesElements(t *testing.T) {
	r := NewRNG(21)
	s := []int{1, 2, 3, 4, 5, 6, 7, 8}
	sum := 0
	for _, v := range s {
		sum += v
	}
	r.Shuffle(len(s), func(i, j int) { s[i], s[j] = s[j], s[i] })
	got := 0
	for _, v := range s {
		got += v
	}
	if got != sum {
		t.Fatalf("shuffle changed multiset: %v", s)
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := NewRNG(42)
	child := parent.Split()
	// The child stream must differ from the parent's continued stream.
	same := 0
	for i := 0; i < 100; i++ {
		if parent.Uint64() == child.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("split stream matches parent %d/100 times", same)
	}
}

func BenchmarkRNGUint64(b *testing.B) {
	r := NewRNG(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += r.Uint64()
	}
	_ = sink
}

func BenchmarkEngineScheduleRun(b *testing.B) {
	eng := NewEngine()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng.Schedule(eng.Now()+1, func() {})
		if eng.Len() > 1024 {
			eng.Run(eng.Now() + 10)
		}
	}
	eng.Run(MaxTime)
}
