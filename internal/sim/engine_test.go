package sim

import (
	"testing"
	"time"
)

func TestTimeConversions(t *testing.T) {
	if got := Duration(1500 * time.Millisecond); got != 1500*Millisecond {
		t.Fatalf("Duration = %v, want %v", got, 1500*Millisecond)
	}
	if got := (2 * Second).Std(); got != 2*time.Second {
		t.Fatalf("Std = %v, want 2s", got)
	}
	if got := (250 * Millisecond).Seconds(); got != 0.25 {
		t.Fatalf("Seconds = %v, want 0.25", got)
	}
	if got := (3 * Minute).String(); got != "3m0s" {
		t.Fatalf("String = %q, want 3m0s", got)
	}
}

func TestScheduleOrdering(t *testing.T) {
	eng := NewEngine()
	var order []int
	eng.Schedule(30, func() { order = append(order, 3) })
	eng.Schedule(10, func() { order = append(order, 1) })
	eng.Schedule(20, func() { order = append(order, 2) })
	eng.Run(100)
	want := []int{1, 2, 3}
	for i, v := range want {
		if order[i] != v {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestEqualTimestampsRunFIFO(t *testing.T) {
	eng := NewEngine()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		eng.Schedule(5, func() { order = append(order, i) })
	}
	eng.Run(10)
	for i, v := range order {
		if v != i {
			t.Fatalf("equal-timestamp events ran out of order: %v", order)
		}
	}
}

func TestClockAdvancesToEventTime(t *testing.T) {
	eng := NewEngine()
	var seen Time
	eng.Schedule(42, func() { seen = eng.Now() })
	eng.Run(100)
	if seen != 42 {
		t.Fatalf("Now inside event = %v, want 42", seen)
	}
}

func TestHorizonStopsExecution(t *testing.T) {
	eng := NewEngine()
	ran := 0
	eng.Schedule(10, func() { ran++ })
	eng.Schedule(50, func() { ran++ })
	end := eng.Run(20)
	if ran != 1 {
		t.Fatalf("ran %d events, want 1", ran)
	}
	if end != 20 || eng.Now() != 20 {
		t.Fatalf("end = %v now = %v, want 20", end, eng.Now())
	}
	// Continuing the run executes the remaining event.
	eng.Run(100)
	if ran != 2 {
		t.Fatalf("after second Run, ran = %d, want 2", ran)
	}
}

func TestEventAtHorizonRuns(t *testing.T) {
	eng := NewEngine()
	ran := false
	eng.Schedule(20, func() { ran = true })
	eng.Run(20)
	if !ran {
		t.Fatal("event scheduled exactly at horizon did not run")
	}
}

func TestQueueDrainAdvancesToHorizon(t *testing.T) {
	eng := NewEngine()
	eng.Schedule(5, func() {})
	end := eng.Run(1000)
	if end != 1000 {
		t.Fatalf("Run returned %v, want horizon 1000", end)
	}
}

func TestSchedulingInPastPanics(t *testing.T) {
	eng := NewEngine()
	eng.Schedule(50, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		eng.Schedule(10, func() {})
	})
	eng.Run(100)
}

func TestAfterClampsNegativeDelay(t *testing.T) {
	eng := NewEngine()
	eng.Schedule(10, func() {
		eng.After(-5, func() {
			if eng.Now() != 10 {
				t.Errorf("negative-delay event ran at %v, want 10", eng.Now())
			}
		})
	})
	eng.Run(100)
}

func TestCancel(t *testing.T) {
	eng := NewEngine()
	ran := false
	ev := eng.Schedule(10, func() { ran = true })
	if !ev.Pending() {
		t.Fatal("freshly scheduled event not pending")
	}
	ev.Cancel()
	if ev.Pending() {
		t.Fatal("cancelled event still pending")
	}
	eng.Run(100)
	if ran {
		t.Fatal("cancelled event ran")
	}
	ev.Cancel() // double-cancel must be a no-op
}

func TestCancelNilEventSafe(t *testing.T) {
	var ev *Event
	ev.Cancel()
	if ev.Pending() {
		t.Fatal("nil event reported pending")
	}
}

func TestStop(t *testing.T) {
	eng := NewEngine()
	ran := 0
	eng.Schedule(10, func() { ran++; eng.Stop() })
	eng.Schedule(20, func() { ran++ })
	eng.Run(100)
	if ran != 1 {
		t.Fatalf("ran = %d after Stop, want 1", ran)
	}
	// A subsequent Run resumes.
	eng.Run(100)
	if ran != 2 {
		t.Fatalf("ran = %d after resume, want 2", ran)
	}
}

func TestEventsScheduledDuringRun(t *testing.T) {
	eng := NewEngine()
	var fired []Time
	var chain func()
	chain = func() {
		fired = append(fired, eng.Now())
		if len(fired) < 5 {
			eng.After(10, chain)
		}
	}
	eng.Schedule(0, chain)
	eng.Run(1000)
	if len(fired) != 5 {
		t.Fatalf("chain fired %d times, want 5", len(fired))
	}
	for i, at := range fired {
		if at != Time(i*10) {
			t.Fatalf("chain[%d] at %v, want %v", i, at, Time(i*10))
		}
	}
}

func TestProcessedCount(t *testing.T) {
	eng := NewEngine()
	for i := 0; i < 7; i++ {
		eng.Schedule(Time(i), func() {})
	}
	ev := eng.Schedule(100, func() {})
	ev.Cancel()
	eng.Run(MaxTime)
	if eng.Processed() != 7 {
		t.Fatalf("Processed = %d, want 7 (cancelled events don't count)", eng.Processed())
	}
}

func TestTimerResetAndStop(t *testing.T) {
	eng := NewEngine()
	fires := 0
	tm := NewTimer(eng, func() { fires++ })
	if tm.Pending() {
		t.Fatal("new timer pending")
	}
	tm.Reset(10)
	tm.Reset(50) // supersedes the first arm
	if d, ok := tm.Deadline(); !ok || d != 50 {
		t.Fatalf("Deadline = %v %v, want 50 true", d, ok)
	}
	eng.Run(30)
	if fires != 0 {
		t.Fatal("timer fired before rearmed deadline")
	}
	eng.Run(100)
	if fires != 1 {
		t.Fatalf("fires = %d, want 1", fires)
	}
	tm.Reset(10)
	tm.Stop()
	eng.Run(200)
	if fires != 1 {
		t.Fatalf("stopped timer fired; fires = %d", fires)
	}
	if _, ok := tm.Deadline(); ok {
		t.Fatal("stopped timer reports a deadline")
	}
}

func TestManyEventsHeapStress(t *testing.T) {
	eng := NewEngine()
	rng := NewRNG(1)
	const n = 10000
	var last Time = -1
	outOfOrder := false
	for i := 0; i < n; i++ {
		at := Time(rng.Int63n(1 << 30))
		eng.Schedule(at, func() {
			if eng.Now() < last {
				outOfOrder = true
			}
			last = eng.Now()
		})
	}
	eng.Run(MaxTime)
	if outOfOrder {
		t.Fatal("events executed out of timestamp order")
	}
	if eng.Processed() != n {
		t.Fatalf("Processed = %d, want %d", eng.Processed(), n)
	}
}

func TestTimerChurnStress(t *testing.T) {
	// TCP rearms its RTO on nearly every ACK: a timer that is Reset
	// thousands of times must fire exactly once, at the final deadline,
	// and lazily-cancelled heap entries must all drain.
	eng := NewEngine()
	fires := 0
	var firedAt Time
	tm := NewTimer(eng, func() { fires++; firedAt = eng.Now() })
	for i := 0; i < 5000; i++ {
		at := Time(i)
		eng.Schedule(at, func() { tm.Reset(100) })
	}
	eng.Run(MaxTime)
	if fires != 1 {
		t.Fatalf("fires = %d, want 1", fires)
	}
	if firedAt != 4999+100 {
		t.Fatalf("fired at %v, want %v", firedAt, Time(5099))
	}
	if eng.Len() != 0 {
		t.Fatalf("heap retains %d entries after drain", eng.Len())
	}
}

func TestRunResumesAfterHorizonRepeatedly(t *testing.T) {
	// Slicing one simulation into many Run(horizon) windows must be
	// equivalent to a single long run.
	mk := func() (*Engine, *[]Time) {
		eng := NewEngine()
		var fired []Time
		for i := 1; i <= 50; i++ {
			at := Time(i * 7)
			eng.Schedule(at, func() { fired = append(fired, eng.Now()) })
		}
		return eng, &fired
	}
	engA, firedA := mk()
	engA.Run(1000)
	engB, firedB := mk()
	for h := Time(10); h <= 1000; h += 10 {
		engB.Run(h)
	}
	if len(*firedA) != len(*firedB) {
		t.Fatalf("sliced run fired %d events, single run %d", len(*firedB), len(*firedA))
	}
	for i := range *firedA {
		if (*firedA)[i] != (*firedB)[i] {
			t.Fatalf("divergence at %d: %v vs %v", i, (*firedA)[i], (*firedB)[i])
		}
	}
}

func TestSetInterruptCadence(t *testing.T) {
	eng := NewEngine()
	for i := 1; i <= 100; i++ {
		eng.Schedule(Time(i), func() {})
	}
	calls := 0
	eng.SetInterrupt(10, func() { calls++ })
	eng.Run(1000)
	if calls != 10 {
		t.Fatalf("interrupt fired %d times over 100 events at every=10, want 10", calls)
	}
}

func TestSetInterruptCanStopRun(t *testing.T) {
	eng := NewEngine()
	executed := 0
	var reschedule func()
	reschedule = func() {
		executed++
		eng.After(1, reschedule) // self-sustaining load: would run forever
	}
	eng.After(1, reschedule)
	eng.SetInterrupt(25, func() {
		if eng.Processed() >= 50 {
			eng.Stop()
		}
	})
	end := eng.Run(MaxTime)
	if executed != 50 {
		t.Fatalf("executed %d events, want the watchdog to stop at 50", executed)
	}
	if !eng.Stopped() {
		t.Fatal("Stopped() = false after watchdog stop")
	}
	if end != eng.Now() {
		t.Fatalf("Run returned %v, Now() = %v", end, eng.Now())
	}
}

func TestSetInterruptRemoval(t *testing.T) {
	eng := NewEngine()
	for i := 1; i <= 20; i++ {
		eng.Schedule(Time(i), func() {})
	}
	calls := 0
	eng.SetInterrupt(1, func() { calls++ })
	eng.SetInterrupt(0, nil)
	eng.Run(1000)
	if calls != 0 {
		t.Fatalf("removed interrupt still fired %d times", calls)
	}
}
