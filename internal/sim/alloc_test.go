package sim

import (
	"testing"
)

// TestLenCountsOnlyLiveEvents is the regression test for the Engine.Len
// lie: cancelled entries used to be reported as queue length, so the
// run supervisor's stall guard and capacity heuristics read corpses as
// pending work.
func TestLenCountsOnlyLiveEvents(t *testing.T) {
	eng := NewEngine()
	events := make([]*Event, 1000)
	for i := range events {
		events[i] = eng.Schedule(Time(i+1), func() {})
	}
	if eng.Len() != 1000 {
		t.Fatalf("Len = %d after scheduling 1000, want 1000", eng.Len())
	}
	for _, ev := range events {
		ev.Cancel()
	}
	if eng.Len() != 0 {
		t.Fatalf("Len = %d after cancelling all 1000, want 0", eng.Len())
	}
	// Double-cancel must not drive the live count negative.
	events[0].Cancel()
	if eng.Len() != 0 {
		t.Fatalf("Len = %d after double cancel, want 0", eng.Len())
	}
	eng.Run(MaxTime)
	if eng.Processed() != 0 {
		t.Fatalf("Processed = %d, cancelled events ran", eng.Processed())
	}
}

// TestCapReportsRawHeapSize pins the Len/Cap split: Len is live events,
// Cap is the heap's actual footprint including corpses awaiting
// collection.
func TestCapReportsRawHeapSize(t *testing.T) {
	eng := NewEngine()
	var evs []*Event
	for i := 0; i < 30; i++ {
		evs = append(evs, eng.Schedule(Time(i+1), func() {}))
	}
	for i := 0; i < 10; i++ {
		evs[i].Cancel()
	}
	// Below compactMin nothing is collected eagerly.
	if got := eng.Len(); got != 20 {
		t.Fatalf("Len = %d, want 20", got)
	}
	if got := eng.Cap(); got != 30 {
		t.Fatalf("Cap = %d, want 30 (corpses still in heap)", got)
	}
}

// TestHeapCompaction verifies the corpse-majority trigger: once
// cancelled entries exceed half the heap (above the compactMin floor),
// the heap shrinks without dropping or reordering live events.
func TestHeapCompaction(t *testing.T) {
	eng := NewEngine()
	var live []*Event
	var corpses []*Event
	for i := 0; i < 200; i++ {
		ev := eng.Schedule(Time(1000+i), func() {})
		if i%2 == 0 {
			corpses = append(corpses, ev)
		} else {
			live = append(live, ev)
		}
	}
	for _, ev := range corpses {
		ev.Cancel()
	}
	// Exactly half cancelled: not yet a corpse majority, no compaction.
	if eng.Cap() != 200 {
		t.Fatalf("Cap = %d before trigger, want 200", eng.Cap())
	}
	// One more cancellation tips corpses over half the heap.
	live[0].Cancel()
	if eng.Cap() != 99 {
		t.Fatalf("Cap = %d after compaction, want 99 live entries", eng.Cap())
	}
	if eng.Len() != 99 {
		t.Fatalf("Len = %d after compaction, want 99", eng.Len())
	}
	eng.Run(MaxTime)
	if eng.Processed() != 99 {
		t.Fatalf("Processed = %d, want all 99 live events to fire", eng.Processed())
	}
	live = live[1:]
	for _, ev := range live {
		if ev.Pending() {
			t.Fatal("live event still pending after run")
		}
	}
}

// TestTimerChurnBoundsHeap pins the tentpole property: a timer rearmed
// far more often than it fires must not grow the heap without bound.
// Before compaction, 100k rearms left 100k corpses in the heap.
func TestTimerChurnBoundsHeap(t *testing.T) {
	eng := NewEngine()
	tm := NewTimer(eng, func() {})
	for i := 0; i < 100000; i++ {
		at := Time(i)
		eng.Schedule(at, func() { tm.Reset(1 << 40) })
	}
	eng.Run(Time(99999)) // run the rearm load, leave the final deadline pending
	if eng.Len() != 1 {
		t.Fatalf("Len = %d after churn, want 1 (the armed timer)", eng.Len())
	}
	if eng.Cap() > compactMin {
		t.Fatalf("Cap = %d after 100k rearms; compaction failed to bound the heap", eng.Cap())
	}
}

// TestTimerStaleHandleAfterFire proves the generation guard: once a
// timer's event has fired and its Event struct was recycled into an
// unrelated event, Stop/Reset/Pending on the timer must not touch the
// new owner's event.
func TestTimerStaleHandleAfterFire(t *testing.T) {
	eng := NewEngine()
	timerFired := 0
	tm := NewTimer(eng, func() { timerFired++ })
	tm.Reset(10)
	eng.Run(20) // timer fires; its Event returns to the pool
	if timerFired != 1 {
		t.Fatalf("timer fired %d times, want 1", timerFired)
	}
	if tm.Pending() {
		t.Fatal("fired timer reports pending")
	}
	// The pool reuses the timer's old Event struct for this victim.
	victimRan := false
	eng.Schedule(50, func() { victimRan = true })
	tm.Stop() // must NOT cancel the victim through the stale handle
	eng.Run(100)
	if !victimRan {
		t.Fatal("Timer.Stop on a stale handle cancelled an unrelated event")
	}
}

// TestScheduleSteadyStateZeroAlloc is the allocation budget for the
// event hot path: once the pool is primed, Schedule + fire must not
// allocate. A future PR that reintroduces a per-event allocation fails
// here instead of silently regressing CoreScale runs.
func TestScheduleSteadyStateZeroAlloc(t *testing.T) {
	eng := NewEngine()
	fn := func() {}
	// Prime the pool.
	for i := 0; i < 64; i++ {
		eng.After(1, fn)
	}
	eng.Run(MaxTime)
	allocs := testing.AllocsPerRun(1000, func() {
		eng.After(1, fn)
		eng.Run(MaxTime)
	})
	if allocs != 0 {
		t.Fatalf("schedule+fire allocates %.1f objects per event, want 0", allocs)
	}
}

// TestTimerChurnZeroAlloc budgets the rearm path: Reset (cancel + new
// arm) on a pooled engine must be allocation-free — this is the per-ACK
// RTO pattern.
func TestTimerChurnZeroAlloc(t *testing.T) {
	eng := NewEngine()
	tm := NewTimer(eng, func() {})
	for i := 0; i < 64; i++ {
		tm.Reset(1000)
	}
	allocs := testing.AllocsPerRun(1000, func() {
		tm.Reset(1000)
	})
	if allocs != 0 {
		t.Fatalf("timer rearm allocates %.1f objects, want 0", allocs)
	}
	tm.Stop()
	// Cancel/collect churn must likewise stay off the allocator.
	allocs = testing.AllocsPerRun(1000, func() {
		ev := eng.After(1000, func() {})
		ev.Cancel()
	})
	if allocs != 0 {
		t.Fatalf("schedule+cancel allocates %.1f objects, want 0", allocs)
	}
}

// TestPoolRecyclingPreservesOrder stresses interleaved schedule, fire,
// cancel, and compaction, checking that execution order stays sorted by
// (time, FIFO) exactly as an unpooled engine would run it.
func TestPoolRecyclingPreservesOrder(t *testing.T) {
	eng := NewEngine()
	rng := NewRNG(99)
	type rec struct {
		at  Time
		seq int
	}
	var fired []rec
	n := 0
	for round := 0; round < 50; round++ {
		var cancel []*Event
		for i := 0; i < 100; i++ {
			at := eng.Now() + Time(rng.Int63n(1000))
			seq := n
			n++
			ev := eng.Schedule(at, func() { fired = append(fired, rec{at, seq}) })
			if rng.Int63n(3) == 0 {
				cancel = append(cancel, ev)
			}
		}
		for _, ev := range cancel {
			ev.Cancel()
		}
		eng.Run(eng.Now() + 500)
	}
	eng.Run(MaxTime)
	for i := 1; i < len(fired); i++ {
		a, b := fired[i-1], fired[i]
		if b.at < a.at || (b.at == a.at && b.seq < a.seq) {
			t.Fatalf("order violated at %d: (%v,%d) before (%v,%d)", i, a.at, a.seq, b.at, b.seq)
		}
	}
}
