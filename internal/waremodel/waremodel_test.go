package waremodel

import (
	"testing"
	"testing/quick"
)

func TestDeepBufferShareIsFlowCountIndependent(t *testing.T) {
	// The model has no loss-based flow-count parameter at all — that IS
	// the paper's Finding 6 — but the share must also be buffer-depth
	// independent once the buffer is deep.
	s10 := SingleBBRShare(10)
	s15 := SingleBBRShare(15)
	s30 := SingleBBRShare(30)
	if s10 != s15 || s15 != s30 {
		t.Fatalf("deep-buffer share varies with depth: %v %v %v", s10, s15, s30)
	}
}

func TestDeepBufferShareNearMeasured40Percent(t *testing.T) {
	// CoreScale at 20 ms base RTT: buffer 375 MB ≈ 15 base BDPs. The
	// paper measures ≈40 %; the contended-probe model gives 50 %, the
	// full-probe variant 60 % — the model's documented accuracy band.
	got := SingleBBRShare(15)
	if got < 0.35 || got > 0.65 {
		t.Fatalf("deep-buffer share = %v, want within the 0.35–0.65 band around the measured 40%%", got)
	}
}

func TestShallowBufferStarvesLossBased(t *testing.T) {
	// Hock et al. regime: at ≤1 BDP of buffer the fixed point exceeds
	// the pipe and BBR takes (nearly) everything.
	if got := SingleBBRShare(0.5); got < 0.99 {
		t.Fatalf("shallow-buffer share = %v, want ≈1", got)
	}
	// β = 1 is exactly the regime boundary: the deep fixed point
	// (in-flight = buffer) is just barely sustainable.
	if got := SingleBBRShare(1); got != 0.5 {
		t.Fatalf("boundary share = %v, want 0.5", got)
	}
}

func TestShareMonotoneNonIncreasingInBuffer(t *testing.T) {
	prev := 2.0
	for beta := 0.0; beta <= 40; beta += 0.25 {
		s := SingleBBRShare(beta)
		if s > prev+1e-12 {
			t.Fatalf("share increased with buffer at β=%v: %v > %v", beta, s, prev)
		}
		prev = s
	}
}

func TestProbeUtilizationRaisesShare(t *testing.T) {
	contended := Share(Params{CwndGain: 2, ProbeUtilization: 1, BufferBDP: 15})
	full := Share(Params{CwndGain: 2, ProbeUtilization: 1.25, BufferBDP: 15})
	if full <= contended {
		t.Fatalf("full probe %v not above contended %v", full, contended)
	}
	if full != 0.6 || contended != 0.5 {
		t.Fatalf("closed-form values: full=%v contended=%v, want 0.6/0.5", full, contended)
	}
}

func TestDegenerateParams(t *testing.T) {
	if Share(Params{CwndGain: 0, ProbeUtilization: 1, BufferBDP: 1}) != 0 {
		t.Fatal("zero gain should give 0")
	}
	if Share(Params{CwndGain: 1, ProbeUtilization: 1, BufferBDP: 1}) != 0 {
		t.Fatal("gain·φ ≤ 1 should give 0")
	}
	if Share(Params{CwndGain: 2, ProbeUtilization: 1, BufferBDP: -1}) != 0 {
		t.Fatal("negative buffer should give 0")
	}
}

// Property: share is always within [0, 1].
func TestShareBoundsProperty(t *testing.T) {
	f := func(g, phi, beta uint16) bool {
		p := Params{
			CwndGain:         float64(g%50)/10 + 0.1,
			ProbeUtilization: float64(phi%20)/10 + 0.1,
			BufferBDP:        float64(beta % 1000),
		}
		s := Share(p)
		return s >= 0 && s <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
