// Package waremodel reconstructs the fixed-point analysis of Ware et
// al., "Modeling BBR's Interactions with Loss-Based Congestion Control"
// (IMC 2019) — the model whose headline prediction the paper validates
// at scale in Findings 6–7: when BBRv1 competes against loss-based
// flows that keep a deep drop-tail buffer full, BBR is limited by its
// in-flight cap (cwnd_gain × BtlBw × RTprop) and settles at a fixed
// fraction of the link that is independent of HOW MANY loss-based flows
// it faces and of the exact buffer depth.
//
// Model structure (normalized to link capacity C = 1, base RTT R = 1,
// buffer β in base-BDP units):
//
//   - Loss-based traffic keeps the queue full, so the actual round-trip
//     time is T = 1 + β and total outstanding data is C·T.
//   - A cap-limited BBR aggregate with in-flight I delivers at w = I/T
//     (FIFO: throughput share equals queue-occupancy share).
//   - The max filter samples the probe phase: ŵ = φ·w with probe gain
//     utilization φ ∈ [1, 1.25].
//   - BBR's min-RTT estimate R̂ is taken during PROBE_RTT, when its own
//     in-flight briefly leaves the queue: R̂ = 1 + max(0, β − I).
//   - The cap equation closes the loop: I = g·ŵ·R̂ with g = cwnd_gain.
//
// Solving for I gives the BBR share I/(C·T). For deep buffers (β ≥ 1)
// and default parameters the share is g·φ−over-related constant around
// one half, matching the ≈40 % the paper measures for a single BBR flow
// against thousands of NewReno or Cubic flows; for shallow buffers the
// fixed point exceeds the pipe and BBR starves the loss-based traffic,
// matching Hock et al. and the paper's Figure 8 regime.
package waremodel

import "math"

// Params configures the fixed-point model.
type Params struct {
	// CwndGain is BBR's in-flight cap gain (2.0 in BBRv1).
	CwndGain float64
	// ProbeUtilization φ is the fraction of the 1.25 pacing-gain probe
	// that survives into the bandwidth filter; 1.0 models a fully
	// contended probe (samples equal the steady share), 1.25 a probe
	// that delivers at the full pacing gain.
	ProbeUtilization float64
	// BufferBDP is the bottleneck buffer in units of the flow's base
	// bandwidth-delay product (β above).
	BufferBDP float64
}

// DefaultParams returns the BBRv1 parameters with a contended probe.
func DefaultParams(bufferBDP float64) Params {
	return Params{CwndGain: 2, ProbeUtilization: 1, BufferBDP: bufferBDP}
}

// Share returns the steady-state fraction of bottleneck bandwidth the
// model predicts for the BBR aggregate, in [0, 1].
//
// The closed form: with T = 1+β, the cap equation I = g·φ·(I/T)·R̂
// requires R̂ = T/(g·φ). When the implied R̂ stays above the base RTT
// (deep buffer), R̂ = 1 + β − I gives
//
//	I = T·(1 − 1/(g·φ))  ⇒  share = 1 − 1/(g·φ).
//
// When the buffer is too shallow for that fixed point (β < I, so BBR's
// ProbeRTT already observes the base RTT and R̂ = 1), the cap ratchets
// until BBR occupies everything it can: share = min(1, g·φ/T).
func Share(p Params) float64 {
	if p.CwndGain <= 0 || p.ProbeUtilization <= 0 || p.BufferBDP < 0 {
		return 0
	}
	g := p.CwndGain * p.ProbeUtilization
	t := 1 + p.BufferBDP
	if g <= 1 {
		// A cap below one delivered-BDP cannot sustain any queue
		// occupancy against competitors; the model degenerates.
		return 0
	}
	deepShare := 1 - 1/g
	deepInflight := t * deepShare
	if p.BufferBDP >= deepInflight {
		return deepShare
	}
	// Shallow buffer: R̂ pins at the base RTT and the cap grows until
	// it owns the whole pipe or the g·R̂/T multiplier turns < 1.
	return math.Min(1, g/t)
}

// SingleBBRShare is the headline prediction the paper tests in Figures
// 6 and 7: one BBR flow against any number of loss-based flows on a
// deep buffer.
func SingleBBRShare(bufferBDP float64) float64 {
	return Share(DefaultParams(bufferBDP))
}
