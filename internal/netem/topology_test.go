package netem

import (
	"strings"
	"testing"

	"ccatscale/internal/audit"
	"ccatscale/internal/packet"
	"ccatscale/internal/sim"
	"ccatscale/internal/units"
)

// chainSpec is a valid two-bottleneck parking-lot graph: a→b→c with one
// flow crossing both links and one entering at the middle hop.
func chainSpec() TopologySpec {
	return TopologySpec{
		Nodes: []string{"a", "b", "c"},
		Links: []LinkSpec{
			{Name: "ab", From: "a", To: "b", Rate: 10 * units.MbitPerSec, Delay: 5 * sim.Millisecond, Buffer: 256 * 1518},
			{Name: "bc", From: "b", To: "c", Rate: 8 * units.MbitPerSec, Delay: 5 * sim.Millisecond, Buffer: 256 * 1518},
		},
		Paths: [][]int{{0, 1}, {1}},
	}
}

// TestTopologySpecValidationErrors pins the constructor-error contract:
// every malformed graph is rejected with a descriptive message naming
// the offending element, never a panic or a degenerate run.
func TestTopologySpecValidationErrors(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*TopologySpec)
		want string
	}{
		{"no nodes", func(s *TopologySpec) { s.Nodes = nil }, "declares no nodes"},
		{"empty node name", func(s *TopologySpec) { s.Nodes[0] = "" }, "empty name"},
		{"duplicate node", func(s *TopologySpec) { s.Nodes[2] = "a" }, "duplicate topology node"},
		{"no links", func(s *TopologySpec) { s.Links = nil }, "declares no links"},
		{"empty link name", func(s *TopologySpec) { s.Links[0].Name = "" }, "empty name"},
		{"duplicate link", func(s *TopologySpec) { s.Links[1].Name = "ab" }, "duplicate topology link"},
		{"undeclared from", func(s *TopologySpec) { s.Links[0].From = "x" }, `starts at undeclared node "x"`},
		{"undeclared to", func(s *TopologySpec) { s.Links[1].To = "y" }, `ends at undeclared node "y"`},
		{"self loop", func(s *TopologySpec) { s.Links[0].To = "a" }, "self-loop"},
		{"zero capacity", func(s *TopologySpec) { s.Links[1].Rate = 0 }, "zero capacity"},
		{"negative capacity", func(s *TopologySpec) { s.Links[0].Rate = -units.MbitPerSec }, "zero capacity"},
		{"sub-frame buffer", func(s *TopologySpec) { s.Links[0].Buffer = 100 }, "cannot hold one full-size frame"},
		{"negative delay", func(s *TopologySpec) { s.Links[0].Delay = -sim.Millisecond }, "negative delay"},
		{"loss rate too high", func(s *TopologySpec) { s.Links[0].LossRate = 1 }, "outside [0, 1)"},
		{"no paths", func(s *TopologySpec) { s.Paths = nil }, "declares no flow paths"},
		{"empty path", func(s *TopologySpec) { s.Paths[0] = nil }, "empty path"},
		{"path index out of range", func(s *TopologySpec) { s.Paths[0] = []int{0, 5} }, "topology has 2 links"},
		{"broken chain", func(s *TopologySpec) { s.Paths[1] = []int{1, 0} }, "path is broken"},
		{"unreachable node", func(s *TopologySpec) {
			s.Nodes = append(s.Nodes, "orphan")
		}, `node "orphan" is unreachable`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			spec := chainSpec()
			tc.mut(&spec)
			err := spec.Validate()
			if err == nil {
				t.Fatal("expected a validation error")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
	if err := chainSpec().Validate(); err != nil {
		t.Fatalf("valid chain rejected: %v", err)
	}
}

// TestTopologyConfigValidation covers the runtime half: RTT alignment
// and positivity.
func TestTopologyConfigValidation(t *testing.T) {
	spec := chainSpec()
	if err := (TopologyConfig{Spec: spec, RTT: []sim.Time{20 * sim.Millisecond}}).Validate(); err == nil ||
		!strings.Contains(err.Error(), "2 flow paths but 1 RTTs") {
		t.Fatalf("misaligned RTTs not rejected: %v", err)
	}
	if err := (TopologyConfig{Spec: spec, RTT: []sim.Time{20 * sim.Millisecond, 0}}).Validate(); err == nil ||
		!strings.Contains(err.Error(), "non-positive base RTT") {
		t.Fatalf("zero RTT not rejected: %v", err)
	}
}

// topoHarness drives a Topology directly with hand-built packets,
// bypassing TCP: a fixed population per flow, endpoints that count
// arrivals, the auditor strict so any ledger break panics.
type topoHarness struct {
	eng       *sim.Engine
	topo      *Topology
	aud       *audit.Auditor
	delivered map[int32]int
	acks      int
	lastAt    sim.Time
}

func newTopoHarness(t *testing.T, spec TopologySpec, rtts []sim.Time) *topoHarness {
	t.Helper()
	eng := sim.NewEngine()
	aud := audit.New(audit.PolicyWarn, eng.Now)
	h := &topoHarness{eng: eng, aud: aud, delivered: map[int32]int{}}
	h.topo = NewTopology(eng, sim.NewRNG(1), TopologyConfig{Spec: spec, RTT: rtts, Audit: aud})
	h.topo.SetEndpoints(
		func(p packet.Packet) { h.delivered[p.Flow]++; h.lastAt = eng.Now() },
		func(p packet.Packet) { h.acks++ },
	)
	return h
}

// TestTopologyRoutingAndConservation pushes a known packet population
// through the two-bottleneck chain and closes every ledger: per-flow
// delivery counts, the fabric-wide byte equation, per-link transmit
// counters, and the per-bottleneck port-conservation audit (strict via
// violation count).
func TestTopologyRoutingAndConservation(t *testing.T) {
	const perFlow = 50
	spec := chainSpec()
	h := newTopoHarness(t, spec, []sim.Time{20 * sim.Millisecond, 20 * sim.Millisecond})

	var injected units.ByteCount
	for i := 0; i < perFlow; i++ {
		for flow := int32(0); flow < 2; flow++ {
			p := packet.Packet{Flow: flow, Seq: int64(i) * int64(units.MSS), Len: int32(units.MSS)}
			injected += p.WireBytes()
			fp := p
			h.eng.Schedule(sim.Time(i)*sim.Millisecond, func() { h.topo.SendData(fp) })
		}
	}
	h.eng.Run(5 * sim.Second)

	if h.delivered[0] != perFlow || h.delivered[1] != perFlow {
		t.Fatalf("delivery counts = %v, want %d per flow", h.delivered, perFlow)
	}
	// Fabric-wide byte conservation after quiescence.
	if got := h.topo.InNetworkBytes(); got != 0 {
		t.Fatalf("%d bytes still in-network after drain", got)
	}
	ref := packet.Packet{Len: int32(units.MSS)}
	wire := ref.WireBytes()
	arrived := units.ByteCount(2*perFlow) * wire
	if arrived+h.topo.DropWire() != injected {
		t.Fatalf("byte ledger leaks: arrived %d + dropped %d != injected %d",
			arrived, h.topo.DropWire(), injected)
	}
	// Per-link accounting: flow 0 crosses both links, flow 1 only bc.
	stats := h.topo.LinkStats()
	if len(stats) != 2 {
		t.Fatalf("LinkStats returned %d entries, want 2", len(stats))
	}
	if stats[0].Name != "ab" || stats[1].Name != "bc" {
		t.Fatalf("link stats out of declaration order: %q, %q", stats[0].Name, stats[1].Name)
	}
	// Buffers are sized so nothing drops; the transmit counters must
	// then be exact: flow 0 alone crosses ab, both flows cross bc.
	if h.topo.DropWire() != 0 {
		t.Fatalf("unexpected drops: %d wire bytes", h.topo.DropWire())
	}
	if stats[0].TxPackets != perFlow {
		t.Fatalf("link ab transmitted %d packets, want %d", stats[0].TxPackets, perFlow)
	}
	if stats[1].TxPackets != 2*perFlow {
		t.Fatalf("link bc transmitted %d packets, want %d", stats[1].TxPackets, 2*perFlow)
	}
	// The per-bottleneck conservation check ran after every operation
	// and found nothing.
	if n := h.aud.Total(); n != 0 {
		t.Fatalf("auditor recorded %d violations on a clean run: %+v", n, h.aud.Violations())
	}
	// Primary bottleneck is the lowest-rate link (bc at 8 Mbps).
	if rate, idx := spec.MinRate(); idx != 1 || rate != 8*units.MbitPerSec {
		t.Fatalf("MinRate = %d at index %d, want link bc", int64(rate), idx)
	}
}

// TestTopologyECNLedgerCloses floods an ECN-enabled bottleneck with ECT
// traffic past its marking threshold and requires (a) marks actually
// happen, (b) the CE ledger closes exactly — every marked byte is
// delivered, dropped, or in flight — and (c) non-ECT packets are never
// marked.
func TestTopologyECNLedgerCloses(t *testing.T) {
	spec := chainSpec()
	spec.Links[0].ECN = true
	spec.Links[0].ECNMarkBytes = 2 * 1518 // mark almost immediately under burst
	h := newTopoHarness(t, spec, []sim.Time{20 * sim.Millisecond, 20 * sim.Millisecond})

	// Flow 0 sends an ECT burst at t=0 — far faster than 10 Mbps drains —
	// so occupancy crosses the threshold. Flow 1 sends non-ECT.
	var injected int
	for i := 0; i < 80; i++ {
		p := packet.Packet{Flow: 0, Seq: int64(i) * int64(units.MSS), Len: int32(units.MSS), ECT: true}
		q := packet.Packet{Flow: 1, Seq: int64(i) * int64(units.MSS), Len: int32(units.MSS)}
		fp, fq := p, q
		h.eng.Schedule(sim.Time(i)*100*sim.Microsecond, func() { h.topo.SendData(fp); h.topo.SendData(fq) })
		injected += 2
	}
	h.eng.Run(5 * sim.Second)

	marked, delivered, dropped, inNetwork := h.topo.ECNLedger()
	if marked == 0 {
		t.Fatal("ECN burst crossed the threshold but nothing was marked")
	}
	if inNetwork != 0 {
		t.Fatalf("%d CE bytes still in-network after drain", inNetwork)
	}
	if marked != delivered+dropped {
		t.Fatalf("CE ledger leaks: marked %d != delivered %d + dropped %d", marked, delivered, dropped)
	}
	stats := h.topo.LinkStats()
	if stats[0].CEMarks == 0 {
		t.Fatal("link ab reports no CE marks despite the ledger")
	}
	if stats[1].CEMarks != 0 {
		t.Fatalf("link bc marked %d packets but has ECN disabled", stats[1].CEMarks)
	}
	if n := h.aud.Total(); n != 0 {
		t.Fatalf("auditor recorded %d violations: %+v", n, h.aud.Violations())
	}
}

// TestTopologyReverseDelay checks the ACK return path: the reverse
// delay is the base RTT minus the flow's forward propagation, so a
// lone uncontended segment's echo completes one RTT plus serialization
// after injection.
func TestTopologyReverseDelay(t *testing.T) {
	spec := chainSpec()
	h := newTopoHarness(t, spec, []sim.Time{40 * sim.Millisecond, 40 * sim.Millisecond})

	var ackAt sim.Time
	h.topo.SetEndpoints(
		func(p packet.Packet) {
			// Receiver echoes an ACK immediately.
			h.topo.SendAck(packet.Packet{Flow: p.Flow, Ack: true, CumAck: p.Seq + int64(p.Len)})
		},
		func(p packet.Packet) { ackAt = h.eng.Now() },
	)
	p := packet.Packet{Flow: 0, Len: int32(units.MSS)}
	h.eng.Schedule(0, func() { h.topo.SendData(p) })
	h.eng.Run(sim.Second)

	if ackAt == 0 {
		t.Fatal("ACK never returned")
	}
	// Serialization: once per link at 10 and 8 Mbps; everything else is
	// the configured 40 ms RTT (10 ms forward prop + 30 ms reverse).
	wire := p.WireBytes()
	ser := spec.Links[0].Rate.TransmissionTime(wire) + spec.Links[1].Rate.TransmissionTime(wire)
	want := 40*sim.Millisecond + ser
	if ackAt != want {
		t.Fatalf("ACK completed at %v, want %v (40ms RTT + %v serialization)", ackAt, want, ser)
	}
}
