package netem

import (
	"ccatscale/internal/packet"
	"ccatscale/internal/sim"
	"ccatscale/internal/units"
)

// Sink consumes packets at their delivery time.
type Sink func(p packet.Packet)

// DropFunc observes a tail drop at the moment it happens.
type DropFunc func(now sim.Time, p packet.Packet)

// Queue is the buffering discipline a Port drains: drop-tail
// (DropTailQueue, the paper's configuration) or an AQM (CoDelQueue).
// Push reports acceptance; Pop may apply dequeue-side policy (CoDel
// head drops) before yielding the next deliverable packet.
type Queue interface {
	Push(p packet.Packet) bool
	Pop() (packet.Packet, bool)
	Bytes() units.ByteCount
	Len() int
	Capacity() units.ByteCount
}

// Port models a store-and-forward output port: packets are accepted into
// a queue and serialized one at a time at the configured line rate, then
// handed to the downstream sink. Together with DropTailQueue it is the
// simulated equivalent of the paper's BESS bottleneck port.
type Port struct {
	eng    *sim.Engine
	rate   units.Bandwidth
	queue  Queue
	out    Sink
	onDrop DropFunc

	busy bool

	// busySince/busyTotal track utilization: the fraction of virtual
	// time the port spent transmitting.
	busySince sim.Time
	busyTotal sim.Time

	txBytes   units.ByteCount
	txPackets uint64
}

// NewPort creates a port draining queue at rate, delivering into out.
// onDrop may be nil.
func NewPort(eng *sim.Engine, rate units.Bandwidth, queue Queue, out Sink, onDrop DropFunc) *Port {
	if rate <= 0 {
		panic("netem: non-positive port rate")
	}
	if out == nil {
		panic("netem: port without sink")
	}
	return &Port{eng: eng, rate: rate, queue: queue, out: out, onDrop: onDrop}
}

// Rate returns the configured line rate.
func (p *Port) Rate() units.Bandwidth { return p.rate }

// Queue returns the attached queue.
func (p *Port) Queue() Queue { return p.queue }

// TxBytes returns cumulative wire bytes transmitted.
func (p *Port) TxBytes() units.ByteCount { return p.txBytes }

// TxPackets returns cumulative packets transmitted.
func (p *Port) TxPackets() uint64 { return p.txPackets }

// Utilization returns the fraction of the window [0, now] the port spent
// transmitting.
func (p *Port) Utilization() float64 {
	total := p.busyTotal
	if p.busy {
		total += p.eng.Now() - p.busySince
	}
	if p.eng.Now() == 0 {
		return 0
	}
	return float64(total) / float64(p.eng.Now())
}

// Send offers a packet to the port. If the port is idle and the queue
// empty the packet goes straight to the wire; otherwise it joins the
// queue, or is tail-dropped when the buffer is full.
func (p *Port) Send(pkt packet.Packet) {
	if !p.busy && p.queue.Len() == 0 {
		p.transmit(pkt)
		return
	}
	if !p.queue.Push(pkt) {
		if p.onDrop != nil {
			p.onDrop(p.eng.Now(), pkt)
		}
	}
}

// transmit puts pkt on the wire and schedules its completion.
func (p *Port) transmit(pkt packet.Packet) {
	p.busy = true
	p.busySince = p.eng.Now()
	done := p.rate.TransmissionTime(pkt.WireBytes())
	p.eng.After(done, func() { p.txDone(pkt) })
}

func (p *Port) txDone(pkt packet.Packet) {
	p.busyTotal += p.eng.Now() - p.busySince
	p.busy = false
	p.txBytes += pkt.WireBytes()
	p.txPackets++
	if next, ok := p.queue.Pop(); ok {
		p.transmit(next)
	}
	// Deliver after bookkeeping so a sink that sends more traffic
	// observes a consistent port state.
	p.out(pkt)
}
