package netem

import (
	"ccatscale/internal/packet"
	"ccatscale/internal/sim"
	"ccatscale/internal/units"
)

// Sink consumes packets at their delivery time.
type Sink func(p packet.Packet)

// DropFunc observes a tail drop at the moment it happens.
type DropFunc func(now sim.Time, p packet.Packet)

// Queue is the buffering discipline a Port drains: drop-tail
// (DropTailQueue, the paper's configuration) or an AQM (CoDelQueue).
// Push reports acceptance; Pop may apply dequeue-side policy (CoDel
// head drops) before yielding the next deliverable packet.
type Queue interface {
	Push(p packet.Packet) bool
	Pop() (packet.Packet, bool)
	Bytes() units.ByteCount
	Len() int
	Capacity() units.ByteCount
}

// OccupancyStats is the optional accounting interface both built-in
// queues implement: high-water marks of occupancy and the realized
// in-memory footprint. The run supervisor reports these per run, and
// sweeps aggregate them into per-job peak-usage records that calibrate
// the budget estimator against reality.
type OccupancyStats interface {
	MaxBytes() units.ByteCount
	MaxLen() int
	MemBytes() int64
}

// ECNStats is the optional interface CE-marking queues implement: the
// cumulative marks made at the queue and the CE occupancy still inside
// it, the queue-side terms of the marking-conservation ledger.
type ECNStats interface {
	CEMarkWire() units.ByteCount
	CEMarks() uint64
	CEQueuedBytes() units.ByteCount
}

// Port models a store-and-forward output port: packets are accepted into
// a queue and serialized one at a time at the configured line rate, then
// handed to the downstream sink. Together with DropTailQueue it is the
// simulated equivalent of the paper's BESS bottleneck port.
type Port struct {
	eng    *sim.Engine
	rate   units.Bandwidth
	queue  Queue
	out    Sink
	onDrop DropFunc

	busy bool

	// busySince/busyTotal track utilization: the fraction of virtual
	// time the port spent transmitting.
	busySince sim.Time
	busyTotal sim.Time

	txBytes   units.ByteCount
	txPackets uint64

	// Conservation-ledger state: every wire byte offered to the port,
	// bytes tail-dropped at it, and bytes currently serializing. The
	// counters are maintained unconditionally (three integer adds per
	// packet); auditCheck, when set, verifies the port-level
	// conservation equation after every send and transmit completion.
	offeredBytes units.ByteCount
	dropBytes    units.ByteCount
	serializing  units.ByteCount
	auditCheck   func(op string)

	// CE-marked slices of the ledger, for the ECN marking-conservation
	// check: wire bytes of CE packets tail-dropped here and currently
	// serializing. Zero for all traffic without ECN enabled.
	ceDropWire    units.ByteCount
	ceSerializing units.ByteCount

	// The in-flight serialization is completed by a single reusable
	// bound-method event: the port transmits one packet at a time, so
	// the packet rides in txPkt instead of a per-packet closure.
	txPkt    packet.Packet
	txDoneFn func()
}

// NewPort creates a port draining queue at rate, delivering into out.
// onDrop may be nil.
func NewPort(eng *sim.Engine, rate units.Bandwidth, queue Queue, out Sink, onDrop DropFunc) *Port {
	if rate <= 0 {
		panic("netem: non-positive port rate")
	}
	if out == nil {
		panic("netem: port without sink")
	}
	p := &Port{eng: eng, rate: rate, queue: queue, out: out, onDrop: onDrop}
	p.txDoneFn = p.txDone // bound once; rescheduled per transmission
	return p
}

// Rate returns the configured line rate.
func (p *Port) Rate() units.Bandwidth { return p.rate }

// Queue returns the attached queue.
func (p *Port) Queue() Queue { return p.queue }

// TxBytes returns cumulative wire bytes transmitted.
func (p *Port) TxBytes() units.ByteCount { return p.txBytes }

// TxPackets returns cumulative packets transmitted.
func (p *Port) TxPackets() uint64 { return p.txPackets }

// OfferedBytes returns cumulative wire bytes offered to the port.
func (p *Port) OfferedBytes() units.ByteCount { return p.offeredBytes }

// DropBytes returns cumulative wire bytes tail-dropped by the port
// (drop-tail discipline; AQM disciplines report their own drops).
func (p *Port) DropBytes() units.ByteCount { return p.dropBytes }

// SerializingBytes returns the wire bytes currently on the wire (0 or
// one packet's worth).
func (p *Port) SerializingBytes() units.ByteCount { return p.serializing }

// CEDropBytes returns cumulative wire bytes of CE-marked packets
// tail-dropped at this port (possible only past a marking bottleneck).
func (p *Port) CEDropBytes() units.ByteCount { return p.ceDropWire }

// CESerializingBytes returns the CE-marked wire bytes currently on the
// wire (0 or one packet's worth).
func (p *Port) CESerializingBytes() units.ByteCount { return p.ceSerializing }

// SetAuditCheck installs a conservation check invoked after every send
// and transmit completion. The check observes only port and queue
// state; nil removes it.
func (p *Port) SetAuditCheck(fn func(op string)) { p.auditCheck = fn }

// Utilization returns the fraction of the window [0, now] the port spent
// transmitting.
func (p *Port) Utilization() float64 {
	total := p.busyTotal
	if p.busy {
		total += p.eng.Now() - p.busySince
	}
	if p.eng.Now() == 0 {
		return 0
	}
	return float64(total) / float64(p.eng.Now())
}

// Send offers a packet to the port. If the port is idle and the queue
// empty the packet goes straight to the wire; otherwise it joins the
// queue, or is tail-dropped when the buffer is full.
func (p *Port) Send(pkt packet.Packet) {
	p.offeredBytes += pkt.WireBytes()
	if !p.busy && p.queue.Len() == 0 {
		p.transmit(pkt)
		if p.auditCheck != nil {
			p.auditCheck("send")
		}
		return
	}
	if !p.queue.Push(pkt) {
		p.dropBytes += pkt.WireBytes()
		if pkt.CE {
			p.ceDropWire += pkt.WireBytes()
		}
		if p.onDrop != nil {
			p.onDrop(p.eng.Now(), pkt)
		}
	}
	if p.auditCheck != nil {
		p.auditCheck("send")
	}
}

// transmit puts pkt on the wire and schedules its completion.
func (p *Port) transmit(pkt packet.Packet) {
	p.busy = true
	p.busySince = p.eng.Now()
	p.serializing += pkt.WireBytes()
	if pkt.CE {
		p.ceSerializing += pkt.WireBytes()
	}
	p.txPkt = pkt
	done := p.rate.TransmissionTime(pkt.WireBytes())
	p.eng.After(done, p.txDoneFn)
}

func (p *Port) txDone() {
	pkt := p.txPkt // copy before transmit(next) reuses the slot
	p.busyTotal += p.eng.Now() - p.busySince
	p.busy = false
	p.serializing -= pkt.WireBytes()
	if pkt.CE {
		p.ceSerializing -= pkt.WireBytes()
	}
	p.txBytes += pkt.WireBytes()
	p.txPackets++
	if next, ok := p.queue.Pop(); ok {
		p.transmit(next)
	} else {
		p.txPkt = packet.Packet{}
	}
	if p.auditCheck != nil {
		p.auditCheck("txDone")
	}
	// Deliver after bookkeeping so a sink that sends more traffic
	// observes a consistent port state.
	p.out(pkt)
}
