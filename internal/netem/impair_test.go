package netem

import (
	"math"
	"testing"

	"ccatscale/internal/packet"
	"ccatscale/internal/sim"
)

func TestImpairmentLossRate(t *testing.T) {
	eng := sim.NewEngine()
	delivered := 0
	im := NewImpairment(eng, sim.NewRNG(1), ImpairmentConfig{LossProb: 0.1},
		func(packet.Packet) { delivered++ })
	const n = 50000
	for i := 0; i < n; i++ {
		im.Send(packet.Packet{})
	}
	got := float64(im.Dropped()) / n
	if math.Abs(got-0.1) > 0.01 {
		t.Fatalf("drop rate = %v, want ≈0.1", got)
	}
	if im.Passed() != uint64(delivered) || im.Passed()+im.Dropped() != n {
		t.Fatalf("conservation: passed %d dropped %d delivered %d", im.Passed(), im.Dropped(), delivered)
	}
}

func TestImpairmentZeroLossPassesAll(t *testing.T) {
	eng := sim.NewEngine()
	delivered := 0
	im := NewImpairment(eng, sim.NewRNG(1), ImpairmentConfig{},
		func(packet.Packet) { delivered++ })
	for i := 0; i < 100; i++ {
		im.Send(packet.Packet{})
	}
	if delivered != 100 || im.Dropped() != 0 {
		t.Fatalf("delivered = %d dropped = %d", delivered, im.Dropped())
	}
}

func TestImpairmentJitterRange(t *testing.T) {
	eng := sim.NewEngine()
	var arrivals []sim.Time
	im := NewImpairment(eng, sim.NewRNG(2), ImpairmentConfig{Jitter: 10 * sim.Millisecond},
		func(packet.Packet) { arrivals = append(arrivals, eng.Now()) })
	eng.Schedule(0, func() {
		for i := 0; i < 1000; i++ {
			im.Send(packet.Packet{})
		}
	})
	eng.Run(sim.Second)
	if len(arrivals) != 1000 {
		t.Fatalf("arrivals = %d", len(arrivals))
	}
	var max sim.Time
	for _, a := range arrivals {
		if a >= 10*sim.Millisecond {
			t.Fatalf("jitter %v outside [0, 10ms)", a)
		}
		if a > max {
			max = a
		}
	}
	if max < 5*sim.Millisecond {
		t.Fatalf("jitter never exceeded 5ms (max %v): not uniform", max)
	}
}

// TestImpairmentJitterReorders documents the element's netem-faithful
// behavior: jitter larger than the packet spacing reorders packets,
// because (like tc-netem without a reorder-correction queue) each
// packet draws an independent delay.
func TestImpairmentJitterReorders(t *testing.T) {
	eng := sim.NewEngine()
	var arrivals []int64
	im := NewImpairment(eng, sim.NewRNG(4), ImpairmentConfig{Jitter: 10 * sim.Millisecond},
		func(p packet.Packet) { arrivals = append(arrivals, p.Seq) })
	// Packets enter 1 ms apart with up to 10 ms of jitter: any packet
	// can overtake up to ~9 predecessors.
	const n = 500
	for i := 0; i < n; i++ {
		seq := int64(i)
		eng.Schedule(sim.Time(i)*sim.Millisecond, func() {
			im.Send(packet.Packet{Seq: seq})
		})
	}
	eng.Run(10 * sim.Second)
	if len(arrivals) != n {
		t.Fatalf("delivered %d of %d packets", len(arrivals), n)
	}
	if im.Passed() != n || im.Dropped() != 0 {
		t.Fatalf("counters: passed %d dropped %d, want %d/0", im.Passed(), im.Dropped(), n)
	}
	seen := make([]bool, n)
	inversions := 0
	for i, seq := range arrivals {
		if seq < 0 || seq >= n || seen[seq] {
			t.Fatalf("arrival %d: bad or duplicate seq %d", i, seq)
		}
		seen[seq] = true
		if i > 0 && seq < arrivals[i-1] {
			inversions++
		}
	}
	if inversions == 0 {
		t.Fatal("10ms jitter over 1ms spacing produced no reordering")
	}
	t.Logf("%d adjacent inversions across %d packets", inversions, n)
}

// TestImpairmentJitterKeepsOrderWhenSmall is the complement: jitter
// strictly smaller than the packet spacing cannot reorder.
func TestImpairmentJitterKeepsOrderWhenSmall(t *testing.T) {
	eng := sim.NewEngine()
	var arrivals []int64
	im := NewImpairment(eng, sim.NewRNG(5), ImpairmentConfig{Jitter: sim.Millisecond},
		func(p packet.Packet) { arrivals = append(arrivals, p.Seq) })
	const n = 200
	for i := 0; i < n; i++ {
		seq := int64(i)
		eng.Schedule(sim.Time(i)*2*sim.Millisecond, func() {
			im.Send(packet.Packet{Seq: seq})
		})
	}
	eng.Run(10 * sim.Second)
	if len(arrivals) != n {
		t.Fatalf("delivered %d of %d packets", len(arrivals), n)
	}
	for i, seq := range arrivals {
		if seq != int64(i) {
			t.Fatalf("arrival %d: seq %d out of order despite sub-spacing jitter", i, seq)
		}
	}
}

func TestImpairmentDropCallback(t *testing.T) {
	eng := sim.NewEngine()
	drops := 0
	im := NewImpairment(eng, sim.NewRNG(3), ImpairmentConfig{
		LossProb: 0.5,
		OnDrop:   func(sim.Time, packet.Packet) { drops++ },
	}, func(packet.Packet) {})
	for i := 0; i < 1000; i++ {
		im.Send(packet.Packet{})
	}
	if uint64(drops) != im.Dropped() {
		t.Fatalf("callback count %d != dropped %d", drops, im.Dropped())
	}
}

func TestImpairmentValidation(t *testing.T) {
	eng := sim.NewEngine()
	sink := func(packet.Packet) {}
	for name, fn := range map[string]func(){
		"nil sink": func() { NewImpairment(eng, sim.NewRNG(1), ImpairmentConfig{}, nil) },
		"nil rng":  func() { NewImpairment(eng, nil, ImpairmentConfig{}, sink) },
		"p=1":      func() { NewImpairment(eng, sim.NewRNG(1), ImpairmentConfig{LossProb: 1}, sink) },
		"p<0":      func() { NewImpairment(eng, sim.NewRNG(1), ImpairmentConfig{LossProb: -0.1}, sink) },
		"jitter<0": func() { NewImpairment(eng, sim.NewRNG(1), ImpairmentConfig{Jitter: -1}, sink) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			fn()
		}()
	}
}
