package netem

import (
	"ccatscale/internal/packet"
	"ccatscale/internal/units"
)

// Fabric is the network substrate a run drives: the paper's dumbbell or
// the general Topology graph. Both move data sender→receiver through
// rate-limited serializing ports and return ACKs over an uncongested
// reverse path, and both maintain the conservation-ledger terms the
// auditor closes the run against.
type Fabric interface {
	// SendData injects a data segment at its flow's source.
	SendData(p packet.Packet)
	// SendAck returns an ACK to the sender after the flow's reverse
	// delay.
	SendAck(p packet.Packet)
	// SetEndpoints attaches the demultiplexed delivery sinks.
	SetEndpoints(toReceiver, toSender Sink)
	// Port exposes the primary bottleneck port (the lowest-rate link)
	// for utilization and queue-occupancy statistics.
	Port() *Port
	// Flows returns the number of configured flows.
	Flows() int
	// InNetworkBytes returns wire bytes queued, serializing, or in
	// propagation flight inside the fabric (propagation terms are
	// maintained only while auditing).
	InNetworkBytes() units.ByteCount
	// DropWire returns cumulative fabric drops in wire bytes
	// (maintained only while auditing).
	DropWire() units.ByteCount
	// ECNLedger returns the marking-conservation terms at the fabric
	// boundary: wire bytes CE-marked by queues, delivered to the
	// endpoint sink, dropped after marking, and still inside the
	// fabric. Every marked byte must be exactly one of the other three.
	ECNLedger() (marked, delivered, dropped, inNetwork units.ByteCount)
	// LinkStats reports per-link counters, primary bottleneck first for
	// the dumbbell and in declaration order for topologies.
	LinkStats() []LinkStat
	// DrillCorruptQueue corrupts a drop-tail byte counter for the audit
	// drill, reporting whether a drill hook existed.
	DrillCorruptQueue() bool
}

// LinkStat is one link's externally visible counters.
type LinkStat struct {
	// Name labels the link ("bottleneck" for the dumbbell).
	Name string
	// Rate is the configured line rate.
	Rate units.Bandwidth
	// Utilization is the fraction of virtual time spent transmitting.
	Utilization float64
	// TxBytes / TxPackets are cumulative transmissions.
	TxBytes   units.ByteCount
	TxPackets uint64
	// DropWire is cumulative dropped wire bytes (tail + AQM).
	DropWire units.ByteCount
	// CEMarks / CEMarkWire count CE marks made at this link's queue.
	CEMarks    uint64
	CEMarkWire units.ByteCount
	// QueueMaxBytes / QueueMaxLen are queue occupancy high-water marks.
	QueueMaxBytes units.ByteCount
	QueueMaxLen   int
}

// ceThreshold resolves a configured drop-tail CE-marking threshold:
// explicit wins, otherwise a quarter of the buffer — deep enough to
// stay above transient bursts, shallow enough that marking fires well
// before tail loss.
func ceThreshold(markAt, buffer units.ByteCount) units.ByteCount {
	if markAt > 0 {
		return markAt
	}
	return buffer / 4
}

// innerQueue unwraps an audit shadow wrapper to the concrete queue.
func innerQueue(q Queue) Queue {
	if aq, ok := q.(*AuditedQueue); ok {
		return aq.Inner()
	}
	return q
}

// portECNTerms collects one port's contribution to the ECN ledger:
// marks made at its queue, CE bytes dropped at it (tail drops of
// already-marked packets plus AQM head drops), and CE bytes still
// queued.
func portECNTerms(p *Port) (marked, dropped, ceQueued units.ByteCount) {
	q := innerQueue(p.Queue())
	if st, ok := q.(ECNStats); ok {
		marked = st.CEMarkWire()
		ceQueued = st.CEQueuedBytes()
	}
	dropped = p.CEDropBytes()
	if cq, ok := q.(*CoDelQueue); ok {
		dropped += cq.CEDropWire()
	}
	return marked, dropped, ceQueued
}

// linkStat renders one port's LinkStat under the given name.
func linkStat(name string, p *Port) LinkStat {
	st := LinkStat{
		Name:        name,
		Rate:        p.Rate(),
		Utilization: p.Utilization(),
		TxBytes:     p.TxBytes(),
		TxPackets:   p.TxPackets(),
		DropWire:    p.DropBytes(),
	}
	q := innerQueue(p.Queue())
	if cq, ok := q.(*CoDelQueue); ok {
		st.DropWire += cq.AQMDropWire()
	}
	if e, ok := q.(ECNStats); ok {
		st.CEMarks = e.CEMarks()
		st.CEMarkWire = e.CEMarkWire()
	}
	if occ, ok := q.(OccupancyStats); ok {
		st.QueueMaxBytes = occ.MaxBytes()
		st.QueueMaxLen = occ.MaxLen()
	}
	return st
}
