package netem

import (
	"math"
	"testing"

	"ccatscale/internal/packet"
	"ccatscale/internal/sim"
)

func TestGilbertStationaryLossAndBadFraction(t *testing.T) {
	eng := sim.NewEngine()
	cfg := GilbertElliottConfig{
		PGoodToBad: 0.01,
		PBadToGood: 0.25,
		LossBad:    1,
	}
	ge := NewGilbertElliott(eng, sim.NewRNG(11), cfg, func(packet.Packet) {})
	const n = 400000
	for i := 0; i < n; i++ {
		ge.Send(packet.Packet{})
	}
	wantBad := cfg.StationaryBad() // ≈ 0.0385
	gotBad := float64(ge.BadPackets()) / n
	if math.Abs(gotBad-wantBad) > 0.15*wantBad {
		t.Fatalf("bad-state fraction = %v, want ≈%v", gotBad, wantBad)
	}
	gotLoss := float64(ge.Dropped()) / n
	wantLoss := cfg.StationaryLoss()
	if math.Abs(gotLoss-wantLoss) > 0.15*wantLoss {
		t.Fatalf("loss rate = %v, want ≈%v", gotLoss, wantLoss)
	}
	if ge.Passed()+ge.Dropped() != n || ge.GoodPackets()+ge.BadPackets() != n {
		t.Fatalf("conservation: passed %d dropped %d good %d bad %d",
			ge.Passed(), ge.Dropped(), ge.GoodPackets(), ge.BadPackets())
	}
}

func TestGilbertMeanBurstLength(t *testing.T) {
	eng := sim.NewEngine()
	cfg := SimpleGilbert(0.02, 8) // LossBad=1 ⇒ every Bad packet drops
	ge := NewGilbertElliott(eng, sim.NewRNG(3), cfg, func(packet.Packet) {})
	const n = 500000
	for i := 0; i < n; i++ {
		ge.Send(packet.Packet{})
	}
	if ge.Bursts() == 0 {
		t.Fatal("no bursts observed")
	}
	// With LossBad = 1 every Bad-state packet is a drop, so drops per
	// Good→Bad transition estimates the mean burst length 1/PBadToGood.
	gotLen := float64(ge.Dropped()) / float64(ge.Bursts())
	if math.Abs(gotLen-8) > 1 {
		t.Fatalf("mean burst length = %v, want ≈8", gotLen)
	}
	gotLoss := float64(ge.Dropped()) / n
	if math.Abs(gotLoss-0.02) > 0.004 {
		t.Fatalf("loss rate = %v, want ≈0.02 (SimpleGilbert calibration)", gotLoss)
	}
}

func TestGilbertBurstLenOneMatchesBernoulli(t *testing.T) {
	// Mean burst length 1 must degenerate to independent loss: the
	// state after every packet is redrawn without memory of drops.
	cfg := SimpleGilbert(0.1, 1)
	if math.Abs(cfg.StationaryLoss()-0.1) > 1e-12 {
		t.Fatalf("stationary loss = %v, want 0.1", cfg.StationaryLoss())
	}
	if cfg.PBadToGood != 1 {
		t.Fatalf("PBadToGood = %v, want 1", cfg.PBadToGood)
	}
}

func TestGilbertDeterministicUnderFixedSeed(t *testing.T) {
	run := func(seed uint64) (dropped, bursts uint64) {
		eng := sim.NewEngine()
		ge := NewGilbertElliott(eng, sim.NewRNG(seed), SimpleGilbert(0.05, 4), func(packet.Packet) {})
		for i := 0; i < 100000; i++ {
			ge.Send(packet.Packet{})
		}
		return ge.Dropped(), ge.Bursts()
	}
	d1, b1 := run(42)
	d2, b2 := run(42)
	if d1 != d2 || b1 != b2 {
		t.Fatalf("same seed diverged: drops %d vs %d, bursts %d vs %d", d1, d2, b1, b2)
	}
	d3, _ := run(43)
	if d3 == d1 {
		t.Fatalf("different seeds produced identical drop counts (%d): RNG not consumed?", d1)
	}
}

func TestGilbertDropCallbackAndStartBad(t *testing.T) {
	eng := sim.NewEngine()
	drops := 0
	ge := NewGilbertElliott(eng, sim.NewRNG(5), GilbertElliottConfig{
		PGoodToBad: 0.0, // never re-enter Bad…
		PBadToGood: 1.0, // …and leave it after the first packet
		LossBad:    1,
		StartBad:   true,
		OnDrop:     func(sim.Time, packet.Packet) { drops++ },
	}, func(packet.Packet) {})
	for i := 0; i < 100; i++ {
		ge.Send(packet.Packet{})
	}
	if ge.Dropped() != 1 || drops != 1 {
		t.Fatalf("dropped = %d (callback %d), want exactly the first packet", ge.Dropped(), drops)
	}
	if ge.Passed() != 99 {
		t.Fatalf("passed = %d, want 99", ge.Passed())
	}
}

func TestGilbertValidation(t *testing.T) {
	eng := sim.NewEngine()
	sink := func(packet.Packet) {}
	for name, fn := range map[string]func(){
		"nil sink":      func() { NewGilbertElliott(eng, sim.NewRNG(1), GilbertElliottConfig{}, nil) },
		"nil rng":       func() { NewGilbertElliott(eng, nil, GilbertElliottConfig{}, sink) },
		"p>1":           func() { NewGilbertElliott(eng, sim.NewRNG(1), GilbertElliottConfig{PGoodToBad: 1.5, PBadToGood: 1}, sink) },
		"r<0":           func() { NewGilbertElliott(eng, sim.NewRNG(1), GilbertElliottConfig{PBadToGood: -0.1}, sink) },
		"absorbing bad": func() { NewGilbertElliott(eng, sim.NewRNG(1), GilbertElliottConfig{PGoodToBad: 0.1}, sink) },
		"lossGood=1":    func() { NewGilbertElliott(eng, sim.NewRNG(1), GilbertElliottConfig{PBadToGood: 1, LossGood: 1}, sink) },
		"lossBad>1":     func() { NewGilbertElliott(eng, sim.NewRNG(1), GilbertElliottConfig{PBadToGood: 1, LossBad: 1.1}, sink) },
		"simple p>=1":   func() { SimpleGilbert(1, 4) },
		"simple len<1":  func() { SimpleGilbert(0.1, 0.5) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			fn()
		}()
	}
}
