package netem

import (
	"testing"
	"testing/quick"

	"ccatscale/internal/packet"
	"ccatscale/internal/sim"
	"ccatscale/internal/units"
)

func dataPkt(flow int32, seq int64, payload int32) packet.Packet {
	return packet.Packet{Flow: flow, Seq: seq, Len: payload}
}

func TestQueueFIFO(t *testing.T) {
	q := NewDropTailQueue(1 * units.MB)
	for i := 0; i < 100; i++ {
		if !q.Push(dataPkt(0, int64(i), 1448)) {
			t.Fatalf("push %d rejected below capacity", i)
		}
	}
	for i := 0; i < 100; i++ {
		p, ok := q.Pop()
		if !ok || p.Seq != int64(i) {
			t.Fatalf("pop %d = %v %v, want seq %d", i, p.Seq, ok, i)
		}
	}
	if _, ok := q.Pop(); ok {
		t.Fatal("pop from empty queue succeeded")
	}
}

func TestQueueByteCapacityDropTail(t *testing.T) {
	// Capacity for two full-MSS frames (1518 wire bytes each) plus a
	// little headroom that only a small packet can use.
	q := NewDropTailQueue(2*1518 + 200)
	if !q.Push(dataPkt(0, 0, 1448)) || !q.Push(dataPkt(0, 1448, 1448)) {
		t.Fatal("pushes within capacity rejected")
	}
	if q.Push(dataPkt(0, 2896, 1448)) {
		t.Fatal("push beyond capacity accepted")
	}
	if q.Dropped() != 1 || q.Enqueued() != 2 {
		t.Fatalf("dropped=%d enqueued=%d, want 1, 2", q.Dropped(), q.Enqueued())
	}
	// A smaller packet that fits must still be accepted (byte, not
	// packet, capacity).
	if !q.Push(dataPkt(0, 2896, 100)) {
		t.Fatal("small packet that fits was dropped")
	}
}

func TestQueueBytesTracking(t *testing.T) {
	q := NewDropTailQueue(1 * units.MB)
	q.Push(dataPkt(0, 0, 1448))
	q.Push(dataPkt(0, 0, 100))
	wantBytes := units.ByteCount(1448+70) + units.ByteCount(100+70)
	if q.Bytes() != wantBytes {
		t.Fatalf("Bytes = %v, want %v", q.Bytes(), wantBytes)
	}
	q.Pop()
	if q.Bytes() != 170 {
		t.Fatalf("Bytes after pop = %v, want 170", q.Bytes())
	}
	q.Pop()
	if q.Bytes() != 0 || q.Len() != 0 {
		t.Fatalf("empty queue has Bytes=%v Len=%d", q.Bytes(), q.Len())
	}
}

func TestQueueRingGrowthPreservesOrder(t *testing.T) {
	q := NewDropTailQueue(100 * units.MB)
	// Interleave pushes and pops so head is offset when growth happens,
	// exercising the wraparound copy.
	seq := int64(0)
	next := int64(0)
	for round := 0; round < 5; round++ {
		for i := 0; i < 900; i++ {
			q.Push(dataPkt(0, seq, 1448))
			seq++
		}
		for i := 0; i < 300; i++ {
			p, ok := q.Pop()
			if !ok || p.Seq != next {
				t.Fatalf("out of order after growth: got %d want %d", p.Seq, next)
			}
			next++
		}
	}
	for {
		p, ok := q.Pop()
		if !ok {
			break
		}
		if p.Seq != next {
			t.Fatalf("drain out of order: got %d want %d", p.Seq, next)
		}
		next++
	}
	if next != seq {
		t.Fatalf("drained %d packets, want %d", next, seq)
	}
}

func TestQueueHighWaterMarks(t *testing.T) {
	q := NewDropTailQueue(1 * units.MB)
	for i := 0; i < 10; i++ {
		q.Push(dataPkt(0, 0, 1448))
	}
	for i := 0; i < 10; i++ {
		q.Pop()
	}
	if q.MaxLen() != 10 {
		t.Fatalf("MaxLen = %d, want 10", q.MaxLen())
	}
	if q.MaxBytes() != 10*1518 {
		t.Fatalf("MaxBytes = %v, want %v", q.MaxBytes(), 10*1518)
	}
}

func TestQueuePanicsOnBadCapacity(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for zero capacity")
		}
	}()
	NewDropTailQueue(0)
}

func TestQueueingDelay(t *testing.T) {
	q := NewDropTailQueue(1 * units.MB)
	for i := 0; i < 100; i++ {
		q.Push(dataPkt(0, 0, 1448))
	}
	// 100 × 1518B at 100 Mbps = 151800×8/1e8 s = 12.144 ms.
	got := q.QueueingDelay(100 * units.MbitPerSec)
	want := 12144 * sim.Microsecond
	if got != want {
		t.Fatalf("QueueingDelay = %v, want %v", got, want)
	}
}

// Property: occupancy counters are always consistent with the multiset
// of operations applied.
func TestQueueConservationProperty(t *testing.T) {
	f := func(ops []bool, sizes []uint16) bool {
		q := NewDropTailQueue(64 * units.KB)
		var model []units.ByteCount
		var modelBytes units.ByteCount
		si := 0
		for _, push := range ops {
			if push {
				if len(sizes) == 0 {
					continue
				}
				payload := int32(sizes[si%len(sizes)]%1448) + 1
				si++
				p := dataPkt(0, 0, payload)
				accepted := q.Push(p)
				fits := modelBytes+p.WireBytes() <= 64*units.KB
				if accepted != fits {
					return false
				}
				if accepted {
					model = append(model, p.WireBytes())
					modelBytes += p.WireBytes()
				}
			} else {
				_, ok := q.Pop()
				if ok != (len(model) > 0) {
					return false
				}
				if ok {
					modelBytes -= model[0]
					model = model[1:]
				}
			}
			if q.Bytes() != modelBytes || q.Len() != len(model) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
