package netem

import (
	"ccatscale/internal/audit"
	"ccatscale/internal/packet"
	"ccatscale/internal/units"
)

// AuditedQueue wraps a Queue with shadow byte/packet accounting: it
// independently tracks what the occupancy *must* be from the admitted
// and removed packets it observes, and reports any divergence from the
// wrapped queue's own counters. This is the continuous half of the
// conservation ledger — "drop-tail queue occupancy must match the sum
// of enqueued segment sizes at all times" — and it is what catches a
// corrupted increment or decrement at the operation that corrupts it,
// not at the end of the run.
type AuditedQueue struct {
	inner Queue
	aud   *audit.Auditor

	bytes units.ByteCount
	n     int

	// aqmDropWire accumulates wire bytes of admitted packets dropped on
	// the dequeue side (CoDel head drops) — a conservation-ledger term.
	aqmDropWire units.ByteCount

	// inPush/inPop disambiguate the wrapped queue's drop callbacks:
	// drops reported during Push are tail rejections of packets never
	// admitted (no shadow adjustment), drops reported during Pop are
	// AQM head drops of admitted packets (shadow must shrink). Drops
	// reported by the Port after a rejected Push arrive outside both.
	inPush bool
	inPop  bool
}

// NewAuditedQueue wraps inner. aud must be non-nil; an off auditor
// should skip the wrapper entirely.
func NewAuditedQueue(inner Queue, aud *audit.Auditor) *AuditedQueue {
	if aud == nil {
		panic("netem: audited queue without auditor")
	}
	return &AuditedQueue{inner: inner, aud: aud}
}

// Inner returns the wrapped queue (for statistics and drills).
func (q *AuditedQueue) Inner() Queue { return q.inner }

// Push implements Queue.
func (q *AuditedQueue) Push(p packet.Packet) bool {
	q.inPush = true
	ok := q.inner.Push(p)
	q.inPush = false
	if ok {
		q.bytes += p.WireBytes()
		q.n++
	}
	q.check("push")
	return ok
}

// Pop implements Queue.
func (q *AuditedQueue) Pop() (packet.Packet, bool) {
	q.inPop = true
	p, ok := q.inner.Pop()
	q.inPop = false
	if ok {
		q.bytes -= p.WireBytes()
		q.n--
	}
	q.check("pop")
	return p, ok
}

// NoteDrop must be called from the wrapped queue's drop callback. Only
// dequeue-side drops (CoDel's head drops of already-admitted packets)
// adjust the shadow accounting.
func (q *AuditedQueue) NoteDrop(p packet.Packet) {
	if q.inPop {
		q.bytes -= p.WireBytes()
		q.n--
		q.aqmDropWire += p.WireBytes()
	}
}

// AQMDropBytes returns cumulative wire bytes of dequeue-side (AQM)
// drops observed via NoteDrop.
func (q *AuditedQueue) AQMDropBytes() units.ByteCount { return q.aqmDropWire }

// Bytes implements Queue.
func (q *AuditedQueue) Bytes() units.ByteCount { return q.inner.Bytes() }

// Len implements Queue.
func (q *AuditedQueue) Len() int { return q.inner.Len() }

// Capacity implements Queue.
func (q *AuditedQueue) Capacity() units.ByteCount { return q.inner.Capacity() }

// check compares the wrapped queue's counters against the shadow and
// the configured capacity after every operation.
func (q *AuditedQueue) check(op string) {
	gotBytes, gotLen := q.inner.Bytes(), q.inner.Len()
	if gotBytes != q.bytes || gotLen != q.n {
		q.aud.Reportf("netem/queue-occupancy", -1,
			"after %s: queue reports %d bytes / %d packets, ledger has %d bytes / %d packets",
			op, gotBytes, gotLen, q.bytes, q.n)
	}
	if gotBytes < 0 {
		q.aud.Reportf("netem/queue-negative", -1, "after %s: occupancy %d bytes", op, gotBytes)
	}
	if cap := q.inner.Capacity(); gotBytes > cap {
		q.aud.Reportf("netem/queue-overflow", -1,
			"after %s: occupancy %d bytes exceeds capacity %d", op, gotBytes, cap)
	}
}
