package netem

import (
	"reflect"
	"testing"

	"ccatscale/internal/packet"
	"ccatscale/internal/sim"
	"ccatscale/internal/units"
)

// composedChain builds the production forward-path composition — link
// outage outermost, Gilbert–Elliott burst loss behind it, the receiver
// sink innermost — exactly as core wires it: a dark link is dark for
// everything behind it, and packets a hold-policy outage releases still
// cross the lossy channel.
type composedChain struct {
	outage *Outage
	ge     *GilbertElliott
}

type composedDelivery struct {
	At  sim.Time
	Seq int64
}

func newComposedChain(eng *sim.Engine, seed uint64, geCfg GilbertElliottConfig, oCfg OutageConfig, got *[]composedDelivery) *composedChain {
	sink := func(p packet.Packet) { *got = append(*got, composedDelivery{eng.Now(), p.Seq}) }
	ge := NewGilbertElliott(eng, sim.NewRNG(seed), geCfg, sink)
	o := NewOutage(eng, oCfg, ge.Send)
	return &composedChain{outage: o, ge: ge}
}

// offerEveryMs schedules count packets into the chain, one per virtual
// millisecond starting at t=1ms, each carrying its index as Seq and a
// fixed payload size.
func offerEveryMs(eng *sim.Engine, c *composedChain, count int) {
	for i := 0; i < count; i++ {
		seq := int64(i)
		eng.Schedule(sim.Time(i+1)*sim.Millisecond, func() {
			c.outage.Send(packet.Packet{Seq: seq, Len: 1000})
		})
	}
}

func composeWindows() []OutageWindow {
	return []OutageWindow{
		{Start: 50 * sim.Millisecond, End: 70 * sim.Millisecond},
		{Start: 120 * sim.Millisecond, End: 140 * sim.Millisecond},
	}
}

// TestComposedChainConservation offers a known packet population to the
// outage→burst-loss chain under the drop policy and requires the
// conservation ledger to close exactly: every packet (and every wire
// byte) is either delivered, dropped dark, or dropped by the channel —
// no path in the composition loses a byte silently.
func TestComposedChainConservation(t *testing.T) {
	const offered = 200
	eng := sim.NewEngine()
	var got []composedDelivery
	c := newComposedChain(eng, 7, SimpleGilbert(0.2, 4), OutageConfig{Windows: composeWindows()}, &got)
	offerEveryMs(eng, c, offered)
	eng.Run(sim.Second)

	delivered := uint64(len(got))
	if delivered+c.outage.Dropped()+c.ge.Dropped() != offered {
		t.Fatalf("packet ledger leaks: %d delivered + %d dark + %d burst != %d offered",
			delivered, c.outage.Dropped(), c.ge.Dropped(), offered)
	}
	if c.outage.Dropped() == 0 {
		t.Fatal("no dark drops: the windows never saw traffic")
	}
	if c.ge.Dropped() == 0 {
		t.Fatal("no burst drops: the channel never fired")
	}
	// The outage hands exactly its survivors to the channel.
	if c.outage.Passed() != c.ge.Passed()+c.ge.Dropped() {
		t.Fatalf("chain leak between stages: outage passed %d, channel saw %d",
			c.outage.Passed(), c.ge.Passed()+c.ge.Dropped())
	}
	// Byte conservation, same ledger in wire bytes.
	ref := packet.Packet{Len: 1000}
	wire := ref.WireBytes()
	offeredBytes := units.ByteCount(offered) * wire
	deliveredBytes := units.ByteCount(delivered) * wire
	if deliveredBytes+c.outage.DropBytes()+c.ge.DropBytes() != offeredBytes {
		t.Fatalf("byte ledger leaks: %d + %d + %d != %d",
			deliveredBytes, c.outage.DropBytes(), c.ge.DropBytes(), offeredBytes)
	}
	// Nothing may arrive while the link is dark.
	for _, d := range got {
		for i, w := range composeWindows() {
			if d.At >= w.Start && d.At < w.End {
				t.Fatalf("packet %d delivered at %v inside dark window %d", d.Seq, d.At, i)
			}
		}
	}
}

// TestComposedChainHoldConservation swaps in the hold policy: packets
// parked during an outage flush at window end and then still face the
// burst channel. The ledger closes with the flush path included, the
// flushed packets preserve arrival order, and nothing stays held after
// the last window.
func TestComposedChainHoldConservation(t *testing.T) {
	const offered = 200
	eng := sim.NewEngine()
	var got []composedDelivery
	c := newComposedChain(eng, 7, SimpleGilbert(0.2, 4),
		OutageConfig{Windows: composeWindows(), Policy: OutageHold}, &got)
	offerEveryMs(eng, c, offered)
	eng.Run(sim.Second)

	if c.outage.Held() != 0 || c.outage.HeldBytes() != 0 {
		t.Fatalf("%d packets (%d bytes) still parked after the last window",
			c.outage.Held(), c.outage.HeldBytes())
	}
	if c.outage.Dropped() != 0 {
		t.Fatalf("hold policy without a capacity dropped %d packets", c.outage.Dropped())
	}
	if c.outage.Flushed() == 0 {
		t.Fatal("no packets were held and flushed: the windows never saw traffic")
	}
	delivered := uint64(len(got))
	if delivered+c.ge.Dropped() != offered {
		t.Fatalf("packet ledger leaks: %d delivered + %d burst != %d offered (flushed %d)",
			delivered, c.ge.Dropped(), offered, c.outage.Flushed())
	}
	// Up-link passes plus flushes is everything the channel saw.
	if c.outage.Passed()+c.outage.Flushed() != c.ge.Passed()+c.ge.Dropped() {
		t.Fatalf("chain leak between stages: outage forwarded %d, channel saw %d",
			c.outage.Passed()+c.outage.Flushed(), c.ge.Passed()+c.ge.Dropped())
	}
	// Deliveries stay in Seq order: the flush preserves FIFO and the
	// channel never reorders.
	for i := 1; i < len(got); i++ {
		if got[i].Seq <= got[i-1].Seq {
			t.Fatalf("delivery %d out of order: seq %d after %d", i, got[i].Seq, got[i-1].Seq)
		}
	}
	// A held packet must not be delivered before its window ends.
	for _, d := range got {
		for i, w := range composeWindows() {
			if d.At >= w.Start && d.At < w.End {
				t.Fatalf("packet %d delivered at %v inside dark window %d", d.Seq, d.At, i)
			}
		}
	}
}

// TestComposedChainDeterminism pins the composition's reproducibility:
// same seed, same schedule → bit-identical delivery sequences and
// counters, for both policies; a different seed must change the burst
// pattern (the outage schedule, being configuration, must not).
func TestComposedChainDeterminism(t *testing.T) {
	run := func(seed uint64, policy OutagePolicy) ([]composedDelivery, uint64, uint64) {
		eng := sim.NewEngine()
		var got []composedDelivery
		c := newComposedChain(eng, seed, SimpleGilbert(0.1, 4),
			OutageConfig{Windows: composeWindows(), Policy: policy}, &got)
		offerEveryMs(eng, c, 200)
		eng.Run(sim.Second)
		return got, c.ge.Dropped(), c.outage.Dropped() + c.outage.Flushed()
	}
	for _, policy := range []OutagePolicy{OutageDrop, OutageHold} {
		a, aGE, aOut := run(11, policy)
		b, bGE, bOut := run(11, policy)
		if !reflect.DeepEqual(a, b) || aGE != bGE || aOut != bOut {
			t.Fatalf("policy %d: same-seed composed runs differ", policy)
		}
		c, _, _ := run(13, policy)
		if reflect.DeepEqual(a, c) {
			t.Fatalf("policy %d: different seeds produced identical burst patterns", policy)
		}
	}
}
