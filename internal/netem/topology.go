package netem

import (
	"fmt"

	"ccatscale/internal/audit"
	"ccatscale/internal/packet"
	"ccatscale/internal/sim"
	"ccatscale/internal/units"
)

// LinkSpec declares one directed link of a topology graph: a
// rate-limited serializing port draining a queue discipline, followed
// by a fixed propagation delay and an optional iid-loss impairment.
type LinkSpec struct {
	// Name labels the link in results and errors; unique per topology.
	Name string `json:"name"`
	// From and To are the endpoints, by node name.
	From string `json:"from"`
	To   string `json:"to"`
	// Rate is the line rate. A link with zero capacity can never drain
	// and is rejected at validation.
	Rate units.Bandwidth `json:"rate"`
	// Delay is the propagation delay crossed after serialization.
	Delay sim.Time `json:"delay"`
	// Buffer is the queue capacity in wire bytes.
	Buffer units.ByteCount `json:"buffer"`
	// Discipline selects the queueing discipline (default DropTail).
	Discipline AQM `json:"discipline,omitempty"`
	// ECN enables CE marking at this link's queue (threshold marking
	// for drop-tail, mark-instead-of-drop for CoDel).
	ECN bool `json:"ecn,omitempty"`
	// ECNMarkBytes overrides the drop-tail marking threshold (0 = a
	// quarter of the buffer).
	ECNMarkBytes units.ByteCount `json:"ecnMarkBytes,omitempty"`
	// LossRate is an iid per-packet loss probability applied after
	// serialization, the link's impairment stage. 0 disables it.
	LossRate float64 `json:"lossRate,omitempty"`
}

// TopologySpec is the serializable declaration of a topology graph:
// named nodes, directed links between them, and each flow's forward
// path as a chain of link indices. Parking-lot and other
// multi-bottleneck shapes are expressed directly; the dumbbell is the
// one-link special case.
//
// ACKs return over an uncongested reverse path, as in the dumbbell:
// each flow's base RTT minus its forward propagation delays rides the
// return trip, so the sender observes exactly the configured RTT plus
// queueing.
type TopologySpec struct {
	// Nodes declares the vertex names.
	Nodes []string `json:"nodes"`
	// Links declares the directed edges.
	Links []LinkSpec `json:"links"`
	// Paths holds each flow's forward route as indices into Links,
	// indexed by flow ID. Consecutive links must share the intermediate
	// node (link[k].To == link[k+1].From).
	Paths [][]int `json:"paths"`
}

// Validate rejects malformed topologies with a descriptive error,
// following the netem constructor-error convention: zero-capacity
// links, unreachable nodes, dangling endpoints, and broken paths are
// all construction-time errors, not degenerate runs.
func (s TopologySpec) Validate() error {
	if len(s.Nodes) == 0 {
		return fmt.Errorf("netem: topology declares no nodes")
	}
	nodes := make(map[string]bool, len(s.Nodes))
	for i, n := range s.Nodes {
		if n == "" {
			return fmt.Errorf("netem: topology node %d has an empty name", i)
		}
		if nodes[n] {
			return fmt.Errorf("netem: duplicate topology node %q", n)
		}
		nodes[n] = true
	}
	if len(s.Links) == 0 {
		return fmt.Errorf("netem: topology declares no links")
	}
	minFrame := units.MSS + packet.HeaderBytes
	linkNames := make(map[string]bool, len(s.Links))
	for i, l := range s.Links {
		if l.Name == "" {
			return fmt.Errorf("netem: topology link %d has an empty name", i)
		}
		if linkNames[l.Name] {
			return fmt.Errorf("netem: duplicate topology link %q", l.Name)
		}
		linkNames[l.Name] = true
		if !nodes[l.From] {
			return fmt.Errorf("netem: link %q starts at undeclared node %q", l.Name, l.From)
		}
		if !nodes[l.To] {
			return fmt.Errorf("netem: link %q ends at undeclared node %q", l.Name, l.To)
		}
		if l.From == l.To {
			return fmt.Errorf("netem: link %q is a self-loop at node %q", l.Name, l.From)
		}
		if l.Rate <= 0 {
			return fmt.Errorf("netem: link %q has zero capacity (%d bits/sec); it could never drain its queue",
				l.Name, int64(l.Rate))
		}
		if l.Buffer < minFrame {
			return fmt.Errorf("netem: link %q buffer %d bytes cannot hold one full-size frame (%d bytes)",
				l.Name, int64(l.Buffer), int64(minFrame))
		}
		if l.Delay < 0 {
			return fmt.Errorf("netem: link %q has negative delay %v", l.Name, l.Delay)
		}
		if l.LossRate < 0 || l.LossRate >= 1 {
			return fmt.Errorf("netem: link %q loss rate %v outside [0, 1)", l.Name, l.LossRate)
		}
	}
	if len(s.Paths) == 0 {
		return fmt.Errorf("netem: topology declares no flow paths")
	}
	sources := map[string]bool{}
	for f, path := range s.Paths {
		if len(path) == 0 {
			return fmt.Errorf("netem: flow %d has an empty path", f)
		}
		for k, li := range path {
			if li < 0 || li >= len(s.Links) {
				return fmt.Errorf("netem: flow %d path step %d references link %d; topology has %d links",
					f, k, li, len(s.Links))
			}
			if k > 0 {
				prev := s.Links[path[k-1]]
				cur := s.Links[li]
				if prev.To != cur.From {
					return fmt.Errorf("netem: flow %d path is broken at step %d: link %q ends at node %q but link %q starts at node %q",
						f, k, prev.Name, prev.To, cur.Name, cur.From)
				}
			}
		}
		sources[s.Links[path[0]].From] = true
	}
	// Every declared node must be reachable from some flow source over
	// the directed links; an unreachable node is dead configuration the
	// author almost certainly misnamed.
	reached := make(map[string]bool, len(nodes))
	frontier := make([]string, 0, len(sources))
	for n := range sources {
		reached[n] = true
		frontier = append(frontier, n)
	}
	for len(frontier) > 0 {
		n := frontier[len(frontier)-1]
		frontier = frontier[:len(frontier)-1]
		for _, l := range s.Links {
			if l.From == n && !reached[l.To] {
				reached[l.To] = true
				frontier = append(frontier, l.To)
			}
		}
	}
	for _, n := range s.Nodes {
		if !reached[n] {
			return fmt.Errorf("netem: node %q is unreachable from every flow source; remove it or route a path through it", n)
		}
	}
	return nil
}

// ForwardDelay returns the sum of propagation delays along flow f's
// path.
func (s TopologySpec) ForwardDelay(f int) sim.Time {
	var sum sim.Time
	for _, li := range s.Paths[f] {
		sum += s.Links[li].Delay
	}
	return sum
}

// MinRate returns the lowest link rate — the topology's primary
// bottleneck — and its link index.
func (s TopologySpec) MinRate() (units.Bandwidth, int) {
	best := 0
	for i := 1; i < len(s.Links); i++ {
		if s.Links[i].Rate < s.Links[best].Rate {
			best = i
		}
	}
	return s.Links[best].Rate, best
}

// TopologyConfig describes a runtime Topology instance.
type TopologyConfig struct {
	// Spec is the validated graph declaration.
	Spec TopologySpec
	// RTT holds each flow's base round-trip time, indexed by flow ID;
	// must align with Spec.Paths. The reverse (ACK) delay is the RTT
	// minus the flow's forward propagation delays, clamped at zero.
	RTT []sim.Time
	// OnDrop observes every drop in the fabric (tail, AQM, and
	// impairment loss); may be nil.
	OnDrop DropFunc
	// Audit enables the per-bottleneck conservation ledgers: shadow
	// queue accounting plus the per-link port conservation check after
	// every operation. Nil disables auditing.
	Audit *audit.Auditor
}

// Validate rejects invalid runtime configurations with a descriptive
// error.
func (cfg TopologyConfig) Validate() error {
	if err := cfg.Spec.Validate(); err != nil {
		return err
	}
	if len(cfg.RTT) != len(cfg.Spec.Paths) {
		return fmt.Errorf("netem: topology has %d flow paths but %d RTTs", len(cfg.Spec.Paths), len(cfg.RTT))
	}
	for i, rtt := range cfg.RTT {
		if rtt <= 0 {
			return fmt.Errorf("netem: flow %d has non-positive base RTT %v", i, rtt)
		}
	}
	return nil
}

// Topology is the runtime instantiation of a TopologySpec: one Port per
// link, pooled propagation events per hop, per-flow next-hop routing,
// and — under audit — a conservation ledger per bottleneck plus the
// fabric-wide terms the end-to-end check closes against.
type Topology struct {
	eng  *sim.Engine
	spec TopologySpec

	links      []*topoLink
	next       [][]int32 // next[link][flow]: next link index, -1 = receiver
	entry      []int32   // entry[flow]: first link of the flow's path
	revDelay   []sim.Time
	bottleneck int

	toReceiver Sink
	toSender   Sink
	revPool    *deliveryPool
	ackFn      Sink

	onDrop DropFunc
	aud    *audit.Auditor

	// Audit ledger terms (maintained only while auditing, except the
	// loss counters which are cheap and always correct).
	propBytes       units.ByteCount
	cePropBytes     units.ByteCount
	ceDeliveredWire units.ByteCount
	lossWire        units.ByteCount
	ceLossWire      units.ByteCount
}

// topoLink is one link's runtime state.
type topoLink struct {
	t    *Topology
	idx  int32
	spec LinkSpec

	port    *Port
	pool    *deliveryPool
	aq      *AuditedQueue
	arrive  Sink // bound once: packet finishes this link's propagation
	lossRNG *sim.RNG

	// queueDropWire accumulates tail + AQM drops at this link (wire
	// bytes), the per-bottleneck ledger's drop term. Maintained only
	// while auditing, like the dumbbell's.
	queueDropWire units.ByteCount
}

// NewTopology wires the graph, panicking on an invalid configuration
// (call Validate first to get the error instead). rng seeds the
// per-link impairment stages and may be nil when no link declares loss.
// Endpoint sinks must be attached with SetEndpoints before traffic
// flows.
func NewTopology(eng *sim.Engine, rng *sim.RNG, cfg TopologyConfig) *Topology {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	t := &Topology{
		eng:      eng,
		spec:     cfg.Spec,
		revDelay: make([]sim.Time, len(cfg.RTT)),
		revPool:  newDeliveryPool(),
		onDrop:   cfg.OnDrop,
		aud:      cfg.Audit,
	}
	t.ackFn = func(p packet.Packet) { t.toSender(p) }
	for f, rtt := range cfg.RTT {
		rev := rtt - cfg.Spec.ForwardDelay(f)
		if rev < 0 {
			rev = 0
		}
		t.revDelay[f] = rev
	}
	_, t.bottleneck = cfg.Spec.MinRate()

	t.links = make([]*topoLink, len(cfg.Spec.Links))
	for i, ls := range cfg.Spec.Links {
		l := &topoLink{t: t, idx: int32(i), spec: ls, pool: newDeliveryPool()}
		l.arrive = l.arriveFn
		if ls.LossRate > 0 {
			if rng == nil {
				panic(fmt.Sprintf("netem: link %q declares loss but topology has no RNG", ls.Name))
			}
			l.lossRNG = rng.Split()
		}
		onDrop := t.linkOnDrop(l)
		switch ls.Discipline {
		case CoDel:
			cq := NewCoDelQueue(eng.Now, ls.Buffer, onDrop)
			if ls.ECN {
				cq.SetECN(true)
			}
			var queue Queue = cq
			if t.aud != nil {
				l.aq = NewAuditedQueue(queue, t.aud)
				queue = l.aq
			}
			l.port = NewPort(eng, ls.Rate, queue, l.hopDone, nil)
		default:
			dt := NewDropTailQueue(ls.Buffer)
			if ls.ECN {
				dt.SetCEThreshold(ceThreshold(ls.ECNMarkBytes, ls.Buffer))
			}
			var queue Queue = dt
			if t.aud != nil {
				l.aq = NewAuditedQueue(queue, t.aud)
				queue = l.aq
			}
			l.port = NewPort(eng, ls.Rate, queue, l.hopDone, onDrop)
		}
		if t.aud != nil {
			l.port.SetAuditCheck(l.checkConservation)
		}
		t.links[i] = l
	}

	// Routing tables: the entry link per flow and, per (link, flow),
	// the next link after finishing a hop. Paths are simple chains, so
	// the pair determines the successor uniquely.
	t.entry = make([]int32, len(cfg.Spec.Paths))
	t.next = make([][]int32, len(cfg.Spec.Links))
	for i := range t.next {
		row := make([]int32, len(cfg.Spec.Paths))
		for f := range row {
			row[f] = -1
		}
		t.next[i] = row
	}
	for f, path := range cfg.Spec.Paths {
		t.entry[f] = int32(path[0])
		for k := 0; k+1 < len(path); k++ {
			t.next[path[k]][f] = int32(path[k+1])
		}
	}
	return t
}

// linkOnDrop interposes the per-bottleneck ledger on a link's drop
// callback, mirroring the dumbbell's audit interposition, and forwards
// to the user's observer.
func (t *Topology) linkOnDrop(l *topoLink) DropFunc {
	if t.aud == nil {
		return t.onDrop
	}
	return func(now sim.Time, p packet.Packet) {
		l.queueDropWire += p.WireBytes()
		if l.aq != nil {
			l.aq.NoteDrop(p)
		}
		if t.onDrop != nil {
			t.onDrop(now, p)
		}
	}
}

// checkConservation verifies one link's conservation equation after
// every port operation — the per-bottleneck half of the audit ledger:
// every wire byte offered to the link is transmitted, dropped at its
// queue, still queued, or serializing.
func (l *topoLink) checkConservation(op string) {
	p := l.port
	accounted := p.TxBytes() + l.queueDropWire + p.Queue().Bytes() + p.SerializingBytes()
	if offered := p.OfferedBytes(); offered != accounted {
		l.t.aud.Reportf("netem/port-conservation", -1,
			"link %q after %s: offered %d bytes != tx %d + dropped %d + queued %d + serializing %d (missing %d)",
			l.spec.Name, op, offered, p.TxBytes(), l.queueDropWire, p.Queue().Bytes(), p.SerializingBytes(),
			int64(offered)-int64(accounted))
	}
}

// hopDone is the link port's output sink: the packet finished
// serialization; apply the link's impairment stage, then cross the
// propagation delay.
func (l *topoLink) hopDone(p packet.Packet) {
	t := l.t
	if l.lossRNG != nil && l.lossRNG.Float64() < l.spec.LossRate {
		t.lossWire += p.WireBytes()
		if p.CE {
			t.ceLossWire += p.WireBytes()
		}
		if t.onDrop != nil {
			t.onDrop(t.eng.Now(), p)
		}
		return
	}
	if t.aud != nil {
		t.propBytes += p.WireBytes()
		if p.CE {
			t.cePropBytes += p.WireBytes()
		}
	}
	t.eng.After(l.spec.Delay, l.pool.get(l.arrive, p).fn)
}

// arriveFn completes a hop: the packet reached the link's far node and
// either enters the next link on its flow's path or leaves the fabric.
func (l *topoLink) arriveFn(p packet.Packet) {
	t := l.t
	if t.aud != nil {
		t.propBytes -= p.WireBytes()
		if p.CE {
			t.cePropBytes -= p.WireBytes()
		}
	}
	if next := t.next[l.idx][p.Flow]; next >= 0 {
		t.links[next].port.Send(p)
		return
	}
	if t.aud != nil && p.CE {
		t.ceDeliveredWire += p.WireBytes()
	}
	t.toReceiver(p)
}

// SetEndpoints implements Fabric.
func (t *Topology) SetEndpoints(toReceiver, toSender Sink) {
	t.toReceiver = toReceiver
	t.toSender = toSender
}

// Port implements Fabric: the lowest-rate link's port, the primary
// bottleneck reported in run statistics.
func (t *Topology) Port() *Port { return t.links[t.bottleneck].port }

// Link returns the runtime port of the i'th declared link.
func (t *Topology) Link(i int) *Port { return t.links[i].port }

// Flows implements Fabric.
func (t *Topology) Flows() int { return len(t.revDelay) }

// SendData implements Fabric: the segment enters the first link of its
// flow's path.
func (t *Topology) SendData(p packet.Packet) {
	t.links[t.entry[p.Flow]].port.Send(p)
}

// SendAck implements Fabric: the ACK returns over the uncongested
// reverse path after the flow's residual base-RTT delay.
func (t *Topology) SendAck(p packet.Packet) {
	t.eng.After(t.revDelay[p.Flow], t.revPool.get(t.ackFn, p).fn)
}

// InNetworkBytes implements Fabric.
func (t *Topology) InNetworkBytes() units.ByteCount {
	total := t.propBytes
	for _, l := range t.links {
		total += l.port.Queue().Bytes() + l.port.SerializingBytes()
	}
	return total
}

// DropWire implements Fabric: queue drops across all links plus
// impairment losses (queue terms maintained only while auditing).
func (t *Topology) DropWire() units.ByteCount {
	total := t.lossWire
	for _, l := range t.links {
		total += l.queueDropWire
	}
	return total
}

// ECNLedger implements Fabric.
func (t *Topology) ECNLedger() (marked, delivered, dropped, inNetwork units.ByteCount) {
	dropped = t.ceLossWire
	inNetwork = t.cePropBytes
	for _, l := range t.links {
		m, d, q := portECNTerms(l.port)
		marked += m
		dropped += d
		inNetwork += q + l.port.CESerializingBytes()
	}
	return marked, t.ceDeliveredWire, dropped, inNetwork
}

// LinkStats implements Fabric: one entry per declared link, in
// declaration order.
func (t *Topology) LinkStats() []LinkStat {
	out := make([]LinkStat, len(t.links))
	for i, l := range t.links {
		out[i] = linkStat(l.spec.Name, l.port)
	}
	return out
}

// DrillCorruptQueue implements Fabric: corrupts the primary
// bottleneck's drop-tail byte counter (false when it runs an AQM).
func (t *Topology) DrillCorruptQueue() bool {
	if dt, ok := innerQueue(t.Port().Queue()).(*DropTailQueue); ok {
		dt.DrillCorrupt(units.MSS + packet.HeaderBytes)
		return true
	}
	return false
}
