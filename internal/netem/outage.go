package netem

import (
	"fmt"

	"ccatscale/internal/packet"
	"ccatscale/internal/sim"
	"ccatscale/internal/telemetry"
	"ccatscale/internal/units"
)

// OutageWindow is one interval of virtual time [Start, End) during
// which the link is dark.
type OutageWindow struct {
	Start, End sim.Time
}

// OutagePolicy selects what happens to packets offered while the link
// is dark.
type OutagePolicy int

const (
	// OutageDrop discards packets arriving during an outage — the
	// behavior of a pulled cable or a wireless deep fade.
	OutageDrop OutagePolicy = iota
	// OutageHold parks arriving packets (up to HoldCapacity) and
	// releases them in order at the outage's end — the behavior of an
	// upstream buffer that keeps queueing while the interface is down.
	OutageHold
)

// OutageConfig describes a deterministic link outage/flap schedule.
type OutageConfig struct {
	// Windows are the dark intervals, sorted by Start and
	// non-overlapping.
	Windows []OutageWindow
	// Policy selects drop vs hold (default OutageDrop).
	Policy OutagePolicy
	// HoldCapacity caps held wire bytes under OutageHold; beyond it
	// packets tail-drop. 0 means unlimited.
	HoldCapacity units.ByteCount
	// OnDrop observes outage drops; may be nil.
	OnDrop DropFunc
	// Telemetry receives link-down/link-up events bracketing each
	// window (nil = off). Transitions are detected lazily at packet
	// observation points but stamped with the exact window boundaries.
	Telemetry telemetry.Collector
}

// Flaps builds a periodic flap schedule: count outages of length down,
// the first starting at first, subsequent ones every period.
func Flaps(first, down, period sim.Time, count int) []OutageWindow {
	if count <= 0 || down <= 0 {
		return nil
	}
	if period <= 0 {
		count = 1
	}
	out := make([]OutageWindow, 0, count)
	for i := 0; i < count; i++ {
		start := first + sim.Time(i)*period
		out = append(out, OutageWindow{Start: start, End: start + down})
	}
	return out
}

// Outage is the link-outage impairment element. Unlike the stochastic
// elements, its schedule is part of the configuration, so runs are
// deterministic without consuming any randomness — two runs with the
// same schedule see bit-identical dark periods.
type Outage struct {
	eng *sim.Engine
	out Sink
	cfg OutageConfig

	idx       int // first window whose End is still in the future
	held      []packet.Packet
	heldBytes units.ByteCount
	dropWire  units.ByteCount

	telIdx  int  // first window whose link-up is still unannounced
	telDown bool // current window's link-down emitted

	passed  uint64
	dropped uint64
	flushed uint64
}

// NewOutage creates the element delivering into out. The schedule must
// lie entirely at or after the engine's current time.
func NewOutage(eng *sim.Engine, cfg OutageConfig, out Sink) *Outage {
	if out == nil {
		panic("netem: outage without sink")
	}
	if cfg.HoldCapacity < 0 {
		panic("netem: negative outage hold capacity")
	}
	for i, w := range cfg.Windows {
		if w.End <= w.Start {
			panic(fmt.Sprintf("netem: outage window %d is empty or inverted (%v..%v)", i, w.Start, w.End))
		}
		if w.Start < eng.Now() {
			panic(fmt.Sprintf("netem: outage window %d starts in the past", i))
		}
		if i > 0 && w.Start < cfg.Windows[i-1].End {
			panic(fmt.Sprintf("netem: outage windows %d and %d overlap or are unsorted", i-1, i))
		}
	}
	o := &Outage{eng: eng, out: out, cfg: cfg}
	if cfg.Policy == OutageHold {
		// Release held packets at each window's end. The flush events
		// are scheduled up front, so they carry earlier sequence numbers
		// than any packet event at the same timestamp and FIFO order is
		// preserved for traffic arriving exactly at End.
		for _, w := range cfg.Windows {
			o.eng.Schedule(w.End, o.flush)
		}
	}
	return o
}

// Dark reports whether the link is dark at time t. t must be
// non-decreasing across calls (virtual time is).
func (o *Outage) Dark(t sim.Time) bool {
	for o.idx < len(o.cfg.Windows) && o.cfg.Windows[o.idx].End <= t {
		o.idx++
	}
	return o.idx < len(o.cfg.Windows) && t >= o.cfg.Windows[o.idx].Start
}

// noteTransitions emits any link-down/link-up events implied by the
// schedule positions crossed since the last observation. Events carry
// the exact window boundary as their timestamp, A = window index, and
// B = window length in virtual nanoseconds.
func (o *Outage) noteTransitions(dark bool) {
	for o.telIdx < o.idx {
		w := o.cfg.Windows[o.telIdx]
		if !o.telDown {
			o.cfg.Telemetry.Emit(telemetry.Event{
				Time: w.Start, Kind: telemetry.KindLinkDown,
				Flow: -1, A: int64(o.telIdx), B: int64(w.End - w.Start),
			})
		}
		o.cfg.Telemetry.Emit(telemetry.Event{
			Time: w.End, Kind: telemetry.KindLinkUp,
			Flow: -1, A: int64(o.telIdx), B: int64(w.End - w.Start),
		})
		o.telIdx++
		o.telDown = false
	}
	if dark && !o.telDown {
		w := o.cfg.Windows[o.idx]
		o.cfg.Telemetry.Emit(telemetry.Event{
			Time: w.Start, Kind: telemetry.KindLinkDown,
			Flow: -1, A: int64(o.idx), B: int64(w.End - w.Start),
		})
		o.telDown = true
	}
}

// Send offers one packet to the link.
func (o *Outage) Send(p packet.Packet) {
	dark := o.Dark(o.eng.Now())
	if o.cfg.Telemetry != nil {
		o.noteTransitions(dark)
	}
	if !dark {
		o.passed++
		o.out(p)
		return
	}
	if o.cfg.Policy == OutageHold {
		if o.cfg.HoldCapacity == 0 || o.heldBytes+p.WireBytes() <= o.cfg.HoldCapacity {
			o.held = append(o.held, p)
			o.heldBytes += p.WireBytes()
			return
		}
	}
	o.dropped++
	o.dropWire += p.WireBytes()
	if o.cfg.OnDrop != nil {
		o.cfg.OnDrop(o.eng.Now(), p)
	}
}

// flush releases every held packet in arrival order.
func (o *Outage) flush() {
	if o.cfg.Telemetry != nil {
		o.noteTransitions(o.Dark(o.eng.Now()))
	}
	held := o.held
	o.held = nil
	o.heldBytes = 0
	for _, p := range held {
		o.flushed++
		o.out(p)
	}
}

// Passed returns packets delivered while the link was up.
func (o *Outage) Passed() uint64 { return o.passed }

// Dropped returns packets discarded during outages.
func (o *Outage) Dropped() uint64 { return o.dropped }

// Flushed returns held packets released at outage ends.
func (o *Outage) Flushed() uint64 { return o.flushed }

// Held returns the packets currently parked.
func (o *Outage) Held() int { return len(o.held) }

// HeldBytes returns the wire bytes currently parked.
func (o *Outage) HeldBytes() units.ByteCount { return o.heldBytes }

// DropBytes returns cumulative wire bytes discarded during outages.
func (o *Outage) DropBytes() units.ByteCount { return o.dropWire }
