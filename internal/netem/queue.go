// Package netem is the network-emulation substrate standing in for the
// paper's BESS software switch and netem delay configuration: a byte-
// capacity drop-tail FIFO, a rate-limited serializing port, and fixed
// propagation-delay pipes, composable into the dumbbell topology every
// experiment uses.
package netem

import (
	"ccatscale/internal/packet"
	"ccatscale/internal/sim"
	"ccatscale/internal/units"
)

// DropTailQueue is a byte-capacity FIFO, the queue discipline the paper
// configures at the bottleneck ("a drop-tail queue is used at the
// bottleneck link"). Capacity is expressed in bytes, matching the
// paper's 3 MB / 375 MB buffer specifications.
//
// The backing store is a growable ring buffer: at CoreScale a full
// buffer holds ~250k segments and the queue churns hundreds of millions
// of times per run, so per-operation allocation is unacceptable.
type DropTailQueue struct {
	capacity units.ByteCount
	bytes    units.ByteCount

	ring []packet.Packet // length is always a power of two
	mask int             // len(ring) - 1, for index masking
	head int
	n    int

	// Cumulative statistics.
	enqueued   uint64
	dropped    uint64
	maxBytes   units.ByteCount
	maxPackets int

	// ECN: when markAt > 0, ECT packets admitted while occupancy
	// (including the new packet) reaches markAt are CE-marked instead of
	// waiting for a tail drop — a DCTCP-style step threshold. ceBytes
	// tracks the wire bytes of CE packets currently queued (for the
	// marking conservation ledger); ceMarkWire/ceMarks the cumulative
	// marks made here.
	markAt     units.ByteCount
	ceBytes    units.ByteCount
	ceMarkWire units.ByteCount
	ceMarks    uint64
}

// NewDropTailQueue creates a queue holding at most capacity bytes of
// packets (wire sizes). The ring is pre-sized so a queue full of
// full-size frames never grows: steady-state enqueue/dequeue is
// allocation-free.
func NewDropTailQueue(capacity units.ByteCount) *DropTailQueue {
	if capacity <= 0 {
		panic("netem: non-positive queue capacity")
	}
	size := RingSlotsFor(capacity)
	return &DropTailQueue{
		capacity: capacity,
		ring:     make([]packet.Packet, size),
		mask:     size - 1,
	}
}

// RingSlotsFor returns the ring preallocation NewDropTailQueue makes for
// a byte capacity: the worst case for full-size traffic (capacity ÷ one
// MSS frame, plus one slot of slack) rounded up to a power of two so
// Push/Pop mask instead of dividing. Smaller-than-MSS packets can still
// exceed this and trigger grow, which doubles (preserving the power of
// two). Exported so the resource-budget estimator can price a buffer's
// memory footprint without building the queue.
func RingSlotsFor(capacity units.ByteCount) int {
	frames := int(capacity/(units.MSS+packet.HeaderBytes)) + 1
	size := 1024
	for size < frames {
		size <<= 1
	}
	return size
}

// Capacity returns the configured byte capacity.
func (q *DropTailQueue) Capacity() units.ByteCount { return q.capacity }

// SetCEThreshold enables CE marking of ECT packets once occupancy
// reaches markAt wire bytes (0 disables marking, the default). Marking
// never changes which packets are accepted or their order — only the CE
// bit — so an all-non-ECT workload is bit-identical with any threshold.
func (q *DropTailQueue) SetCEThreshold(markAt units.ByteCount) { q.markAt = markAt }

// CEMarkWire returns cumulative wire bytes CE-marked at this queue.
func (q *DropTailQueue) CEMarkWire() units.ByteCount { return q.ceMarkWire }

// CEMarks returns the cumulative count of packets CE-marked here.
func (q *DropTailQueue) CEMarks() uint64 { return q.ceMarks }

// CEQueuedBytes returns the wire bytes of CE-marked packets currently
// queued.
func (q *DropTailQueue) CEQueuedBytes() units.ByteCount { return q.ceBytes }

// Bytes returns the current occupancy in wire bytes.
func (q *DropTailQueue) Bytes() units.ByteCount { return q.bytes }

// Len returns the number of queued packets.
func (q *DropTailQueue) Len() int { return q.n }

// Enqueued returns the cumulative count of accepted packets.
func (q *DropTailQueue) Enqueued() uint64 { return q.enqueued }

// Dropped returns the cumulative count of tail-dropped packets.
func (q *DropTailQueue) Dropped() uint64 { return q.dropped }

// MaxBytes returns the high-water mark of byte occupancy.
func (q *DropTailQueue) MaxBytes() units.ByteCount { return q.maxBytes }

// MaxLen returns the high-water mark of packet occupancy.
func (q *DropTailQueue) MaxLen() int { return q.maxPackets }

// MemBytes returns the queue's in-memory footprint: the ring's slot
// count times the packet struct size. This is the number the budget
// estimator predicts via RingSlotsFor; exposing the realized value lets
// sweeps report actual peak usage next to the prediction.
func (q *DropTailQueue) MemBytes() int64 {
	return int64(len(q.ring)) * packet.StructBytes
}

// Push appends p if its wire size fits within the remaining capacity and
// reports whether it was accepted. A false return is a tail drop; the
// caller is responsible for logging it (the paper logs every drop at the
// bottleneck to compute loss rates and burstiness).
func (q *DropTailQueue) Push(p packet.Packet) bool {
	wire := p.WireBytes()
	if q.bytes+wire > q.capacity {
		q.dropped++
		return false
	}
	if q.n == len(q.ring) {
		q.grow()
	}
	if q.markAt > 0 && p.ECT && !p.CE && q.bytes+wire >= q.markAt {
		p.CE = true
		q.ceMarkWire += wire
		q.ceMarks++
	}
	if p.CE {
		q.ceBytes += wire
	}
	q.ring[(q.head+q.n)&q.mask] = p
	q.n++
	q.bytes += wire
	q.enqueued++
	if q.bytes > q.maxBytes {
		q.maxBytes = q.bytes
	}
	if q.n > q.maxPackets {
		q.maxPackets = q.n
	}
	return true
}

// Pop removes and returns the oldest packet. The second result is false
// when the queue is empty.
func (q *DropTailQueue) Pop() (packet.Packet, bool) {
	if q.n == 0 {
		return packet.Packet{}, false
	}
	p := q.ring[q.head]
	q.ring[q.head] = packet.Packet{} // clear for GC hygiene of any future pointer fields
	q.head = (q.head + 1) & q.mask
	q.n--
	q.bytes -= p.WireBytes()
	if p.CE {
		q.ceBytes -= p.WireBytes()
	}
	return p, true
}

func (q *DropTailQueue) grow() {
	bigger := make([]packet.Packet, 2*len(q.ring))
	for i := 0; i < q.n; i++ {
		bigger[i] = q.ring[(q.head+i)&q.mask]
	}
	q.ring = bigger
	q.mask = len(bigger) - 1
	q.head = 0
}

// DrillCorrupt deliberately corrupts the byte-occupancy counter by
// delta, as if one dequeue had decremented twice. It exists solely for
// the audit drill (-audit-drill): a seeded accounting bug the
// conservation ledger must catch. Never call it outside drills.
func (q *DropTailQueue) DrillCorrupt(delta units.ByteCount) { q.bytes -= delta }

// QueueingDelay estimates the waiting time a packet arriving now would
// experience before reaching the head of the line, given drain rate
// rate. Used by tests and by queue-depth instrumentation.
func (q *DropTailQueue) QueueingDelay(rate units.Bandwidth) sim.Time {
	return rate.TransmissionTime(q.bytes)
}
