package netem

import (
	"testing"

	"ccatscale/internal/packet"
	"ccatscale/internal/sim"
	"ccatscale/internal/units"
)

func TestCoDelPassThroughBelowTarget(t *testing.T) {
	eng := sim.NewEngine()
	q := NewCoDelQueue(eng.Now, units.MB, nil)
	// Packets dequeued immediately (zero sojourn): no AQM drops.
	for i := int64(0); i < 100; i++ {
		if !q.Push(dataPkt(0, i, 1448)) {
			t.Fatal("push rejected below capacity")
		}
		p, ok := q.Pop()
		if !ok || p.Seq != i {
			t.Fatalf("pop %d: %v %v", i, p.Seq, ok)
		}
	}
	if q.AQMDrops() != 0 || q.TailDrops() != 0 {
		t.Fatalf("drops: aqm=%d tail=%d", q.AQMDrops(), q.TailDrops())
	}
}

func TestCoDelDropsUnderStandingQueue(t *testing.T) {
	eng := sim.NewEngine()
	drops := 0
	q := NewCoDelQueue(eng.Now, 100*units.MB, func(sim.Time, packet.Packet) { drops++ })
	// Build a standing queue: 500 packets enqueued at t=0, dequeued
	// slowly so sojourn stays far above the 5 ms target for well over
	// an interval.
	for i := int64(0); i < 500; i++ {
		q.Push(dataPkt(0, i, 1448))
	}
	delivered := 0
	var step func()
	step = func() {
		if _, ok := q.Pop(); ok {
			delivered++
		}
		if q.Len() > 0 {
			eng.After(2*sim.Millisecond, step)
		}
	}
	eng.Schedule(0, step)
	eng.Run(10 * sim.Second)
	if q.AQMDrops() == 0 {
		t.Fatal("CoDel never dropped despite a persistent standing queue")
	}
	if uint64(drops) != q.AQMDrops()+q.TailDrops() {
		t.Fatalf("callback count %d != %d+%d", drops, q.AQMDrops(), q.TailDrops())
	}
	if delivered == 0 {
		t.Fatal("nothing delivered")
	}
}

func TestCoDelTailDropAtCapacity(t *testing.T) {
	eng := sim.NewEngine()
	q := NewCoDelQueue(eng.Now, 2*1518, nil)
	q.Push(dataPkt(0, 0, 1448))
	q.Push(dataPkt(0, 1, 1448))
	if q.Push(dataPkt(0, 2, 1448)) {
		t.Fatal("push above capacity accepted")
	}
	if q.TailDrops() != 1 {
		t.Fatalf("TailDrops = %d", q.TailDrops())
	}
}

func TestCoDelValidation(t *testing.T) {
	eng := sim.NewEngine()
	for name, fn := range map[string]func(){
		"zero cap":  func() { NewCoDelQueue(eng.Now, 0, nil) },
		"nil clock": func() { NewCoDelQueue(nil, units.MB, nil) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			fn()
		}()
	}
}
