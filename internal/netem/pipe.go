package netem

import (
	"ccatscale/internal/packet"
	"ccatscale/internal/sim"
)

// Pipe is a fixed-delay, infinite-capacity propagation element: the
// simulated counterpart of the netem delay the paper installs at the
// receiver to set each flow's base RTT, and of the (never-congested)
// 25 Gbps edge links. Packets entering a pipe emerge at the sink exactly
// Delay later, in order.
type Pipe struct {
	eng   *sim.Engine
	delay sim.Time
	out   Sink
	pool  *deliveryPool
}

// NewPipe builds a delay line of the given one-way latency.
func NewPipe(eng *sim.Engine, delay sim.Time, out Sink) *Pipe {
	if delay < 0 {
		panic("netem: negative pipe delay")
	}
	if out == nil {
		panic("netem: pipe without sink")
	}
	return &Pipe{eng: eng, delay: delay, out: out, pool: newDeliveryPool()}
}

// Delay returns the configured one-way latency.
func (pi *Pipe) Delay() sim.Time { return pi.delay }

// Send schedules delivery of p after the pipe's delay.
func (pi *Pipe) Send(p packet.Packet) {
	pi.eng.After(pi.delay, pi.pool.get(pi.out, p).fn)
}
