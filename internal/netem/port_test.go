package netem

import (
	"testing"

	"ccatscale/internal/packet"
	"ccatscale/internal/sim"
	"ccatscale/internal/units"
)

func newTestPort(rate units.Bandwidth, buf units.ByteCount) (*sim.Engine, *Port, *[]packet.Packet, *[]sim.Time, *int) {
	eng := sim.NewEngine()
	var delivered []packet.Packet
	var times []sim.Time
	drops := 0
	q := NewDropTailQueue(buf)
	p := NewPort(eng, rate, q,
		func(pkt packet.Packet) {
			delivered = append(delivered, pkt)
			times = append(times, eng.Now())
		},
		func(_ sim.Time, _ packet.Packet) { drops++ })
	return eng, p, &delivered, &times, &drops
}

func TestPortSerializationTiming(t *testing.T) {
	eng, p, delivered, times, _ := newTestPort(100*units.MbitPerSec, 1*units.MB)
	p.Send(dataPkt(0, 0, 1448)) // 1518 wire bytes → 121.44 µs
	eng.Run(sim.Second)
	if len(*delivered) != 1 {
		t.Fatalf("delivered %d packets, want 1", len(*delivered))
	}
	want := sim.Time(1518 * 8 * 10) // 1518*8 bits at 100 Mbps = 121440 ns
	if (*times)[0] != want {
		t.Fatalf("delivery at %v, want %v", (*times)[0], want)
	}
}

func TestPortBackToBackRate(t *testing.T) {
	// 10 packets sent at t=0 must drain at exactly line rate.
	eng, p, delivered, times, _ := newTestPort(100*units.MbitPerSec, 1*units.MB)
	for i := 0; i < 10; i++ {
		p.Send(dataPkt(0, int64(i)*1448, 1448))
	}
	eng.Run(sim.Second)
	if len(*delivered) != 10 {
		t.Fatalf("delivered %d, want 10", len(*delivered))
	}
	per := sim.Time(121440)
	for i, at := range *times {
		want := per * sim.Time(i+1)
		if at != want {
			t.Fatalf("packet %d delivered at %v, want %v", i, at, want)
		}
	}
	// FIFO order preserved.
	for i, pkt := range *delivered {
		if pkt.Seq != int64(i)*1448 {
			t.Fatalf("packet %d out of order: seq %d", i, pkt.Seq)
		}
	}
}

func TestPortDropsWhenBufferFull(t *testing.T) {
	// Buffer sized for 2 queued full-MSS frames; one more is in service.
	eng, p, delivered, _, drops := newTestPort(100*units.MbitPerSec, 2*1518)
	for i := 0; i < 5; i++ {
		p.Send(dataPkt(0, int64(i)*1448, 1448))
	}
	eng.Run(sim.Second)
	// 1 in service + 2 queued = 3 delivered, 2 dropped.
	if len(*delivered) != 3 {
		t.Fatalf("delivered %d, want 3", len(*delivered))
	}
	if *drops != 2 {
		t.Fatalf("drops = %d, want 2", *drops)
	}
}

func TestPortWorkConserving(t *testing.T) {
	// A packet arriving while the port is idle (after a drain) starts
	// transmitting immediately.
	eng, p, _, times, _ := newTestPort(100*units.MbitPerSec, 1*units.MB)
	p.Send(dataPkt(0, 0, 1448))
	eng.Run(sim.Second) // drains; now idle at 1s
	eng.Schedule(2*sim.Second, func() { p.Send(dataPkt(0, 1448, 1448)) })
	eng.Run(3 * sim.Second)
	if len(*times) != 2 {
		t.Fatalf("delivered %d, want 2", len(*times))
	}
	want := 2*sim.Second + 121440
	if (*times)[1] != want {
		t.Fatalf("second delivery at %v, want %v", (*times)[1], want)
	}
}

func TestPortUtilization(t *testing.T) {
	eng, p, _, _, _ := newTestPort(100*units.MbitPerSec, 10*units.MB)
	// Keep the port busy for roughly half the horizon:
	// 100 Mbps for 0.5 s = 6.25 MB ≈ 4117 full frames (all of which fit
	// in the 10 MB buffer).
	for i := 0; i < 4117; i++ {
		p.Send(dataPkt(0, 0, 1448))
	}
	eng.Run(sim.Second)
	u := p.Utilization()
	if u < 0.49 || u > 0.51 {
		t.Fatalf("utilization = %v, want ≈0.5", u)
	}
	if p.TxPackets() != 4117 {
		t.Fatalf("TxPackets = %d, want 4117", p.TxPackets())
	}
	if p.TxBytes() != 4117*1518 {
		t.Fatalf("TxBytes = %v", p.TxBytes())
	}
}

func TestPortPanicsOnBadConfig(t *testing.T) {
	eng := sim.NewEngine()
	q := NewDropTailQueue(units.MB)
	for name, fn := range map[string]func(){
		"zero rate": func() { NewPort(eng, 0, q, func(packet.Packet) {}, nil) },
		"nil sink":  func() { NewPort(eng, units.MbitPerSec, q, nil, nil) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestPipeDelay(t *testing.T) {
	eng := sim.NewEngine()
	var at sim.Time
	pi := NewPipe(eng, 20*sim.Millisecond, func(packet.Packet) { at = eng.Now() })
	eng.Schedule(5*sim.Millisecond, func() { pi.Send(packet.Packet{}) })
	eng.Run(sim.Second)
	if at != 25*sim.Millisecond {
		t.Fatalf("pipe delivery at %v, want 25ms", at)
	}
	if pi.Delay() != 20*sim.Millisecond {
		t.Fatalf("Delay = %v", pi.Delay())
	}
}

func TestPipeOrderPreserved(t *testing.T) {
	eng := sim.NewEngine()
	var seqs []int64
	pi := NewPipe(eng, sim.Millisecond, func(p packet.Packet) { seqs = append(seqs, p.Seq) })
	for i := 0; i < 10; i++ {
		i := i
		eng.Schedule(sim.Time(i), func() { pi.Send(packet.Packet{Seq: int64(i)}) })
	}
	eng.Run(sim.Second)
	for i, s := range seqs {
		if s != int64(i) {
			t.Fatalf("pipe reordered: %v", seqs)
		}
	}
}

func TestDumbbellEndToEndRTT(t *testing.T) {
	eng := sim.NewEngine()
	rtt := 20 * sim.Millisecond
	d := NewDumbbell(eng, DumbbellConfig{
		Rate:   100 * units.MbitPerSec,
		Buffer: units.MB,
		RTT:    []sim.Time{rtt},
	})
	var dataAt, ackAt sim.Time
	d.SetEndpoints(
		func(p packet.Packet) { // receiver: immediately ACK
			dataAt = eng.Now()
			d.SendAck(packet.Packet{Flow: p.Flow, Ack: true, CumAck: p.End()})
		},
		func(p packet.Packet) { ackAt = eng.Now() },
	)
	d.SendData(dataPkt(0, 0, 1448))
	eng.Run(sim.Second)
	serialization := sim.Time(121440)
	if dataAt != serialization+fwdPropDelay {
		t.Fatalf("data arrived at %v, want %v", dataAt, serialization+fwdPropDelay)
	}
	// Total RTT = serialization + base RTT (fwd prop + rev delay = rtt).
	if ackAt != serialization+rtt {
		t.Fatalf("ack arrived at %v, want %v", ackAt, serialization+rtt)
	}
	if d.Flows() != 1 {
		t.Fatalf("Flows = %d", d.Flows())
	}
}

func TestDumbbellPerFlowRTTs(t *testing.T) {
	eng := sim.NewEngine()
	d := NewDumbbell(eng, DumbbellConfig{
		Rate:   10 * units.GbitPerSec,
		Buffer: units.MB,
		RTT:    []sim.Time{20 * sim.Millisecond, 200 * sim.Millisecond},
	})
	ackAt := map[int32]sim.Time{}
	d.SetEndpoints(
		func(p packet.Packet) {
			d.SendAck(packet.Packet{Flow: p.Flow, Ack: true, CumAck: p.End()})
		},
		func(p packet.Packet) { ackAt[p.Flow] = eng.Now() },
	)
	d.SendData(dataPkt(0, 0, 1448))
	d.SendData(dataPkt(1, 0, 1448))
	eng.Run(sim.Second)
	// Flow 1's ACK must arrive ≈180 ms after flow 0's.
	gap := ackAt[1] - ackAt[0]
	if gap < 179*sim.Millisecond || gap > 181*sim.Millisecond {
		t.Fatalf("RTT gap = %v, want ≈180ms", gap)
	}
}

func TestDumbbellDropCallback(t *testing.T) {
	eng := sim.NewEngine()
	var drops []packet.Packet
	d := NewDumbbell(eng, DumbbellConfig{
		Rate:   units.MbitPerSec,
		Buffer: 1518, // one queued frame
		RTT:    []sim.Time{20 * sim.Millisecond},
		OnDrop: func(_ sim.Time, p packet.Packet) { drops = append(drops, p) },
	})
	d.SetEndpoints(func(packet.Packet) {}, func(packet.Packet) {})
	for i := 0; i < 4; i++ {
		d.SendData(dataPkt(0, int64(i)*1448, 1448))
	}
	eng.Run(sim.Second)
	// 1 in service, 1 queued, 2 dropped.
	if len(drops) != 2 {
		t.Fatalf("drops = %d, want 2", len(drops))
	}
	if drops[0].Seq != 2*1448 || drops[1].Seq != 3*1448 {
		t.Fatalf("wrong packets dropped: %v", drops)
	}
}
