package netem

import (
	"testing"

	"ccatscale/internal/packet"
	"ccatscale/internal/sim"
	"ccatscale/internal/units"
)

// TestQueueSteadyStateZeroAlloc is the allocation budget for the
// bottleneck ring buffer: the pre-sized power-of-two ring means
// enqueue/dequeue in steady state — even at full occupancy — never
// touches the allocator.
func TestQueueSteadyStateZeroAlloc(t *testing.T) {
	q := NewDropTailQueue(3 * units.MB)
	p := dataPkt(0, 0, 1448)
	allocs := testing.AllocsPerRun(1000, func() {
		for i := 0; i < 64; i++ {
			if !q.Push(p) {
				t.Fatal("push rejected below capacity")
			}
		}
		for i := 0; i < 64; i++ {
			if _, ok := q.Pop(); !ok {
				t.Fatal("pop from non-empty queue failed")
			}
		}
	})
	if allocs != 0 {
		t.Fatalf("enqueue/dequeue allocates %.1f objects per cycle, want 0", allocs)
	}
}

// TestQueuePreSizedNeverGrows verifies the ring pre-sizing rule: a
// queue filled to its byte capacity with full-size frames fits in the
// initial ring, so grow is never called in the steady state the paper's
// experiments run in.
func TestQueuePreSizedNeverGrows(t *testing.T) {
	capacity := 375 * units.MB / 100 // CoreScale buffer at the scaled tier
	q := NewDropTailQueue(capacity)
	ringBefore := len(q.ring)
	if ringBefore&(ringBefore-1) != 0 {
		t.Fatalf("ring size %d is not a power of two", ringBefore)
	}
	n := 0
	for q.Push(dataPkt(0, int64(n)*1448, 1448)) {
		n++
	}
	if len(q.ring) != ringBefore {
		t.Fatalf("ring grew from %d to %d filling to byte capacity", ringBefore, len(q.ring))
	}
	if n == 0 {
		t.Fatal("no packets accepted")
	}
}

// TestQueueGrowPreservesFIFOAndMask exercises the doubling path with
// sub-MSS packets (the only way to exceed the pre-size) across a
// wrapped head, checking FIFO order and mask consistency survive.
func TestQueueGrowPreservesFIFOAndMask(t *testing.T) {
	q := NewDropTailQueue(4 * units.MB) // byte capacity far beyond what tiny packets fill
	// Wrap the head first.
	for i := 0; i < 100; i++ {
		q.Push(dataPkt(0, int64(i), 1))
		q.Pop()
	}
	total := len(q.ring)*2 + 10 // force two grows
	for i := 0; i < total; i++ {
		if !q.Push(dataPkt(0, int64(i), 1)) {
			t.Fatalf("push %d rejected", i)
		}
	}
	if len(q.ring)&(len(q.ring)-1) != 0 {
		t.Fatalf("ring size %d not a power of two after grow", len(q.ring))
	}
	if q.mask != len(q.ring)-1 {
		t.Fatalf("mask %d inconsistent with ring size %d", q.mask, len(q.ring))
	}
	for i := 0; i < total; i++ {
		p, ok := q.Pop()
		if !ok || p.Seq != int64(i) {
			t.Fatalf("pop %d = seq %d ok=%v, want seq %d", i, p.Seq, ok, i)
		}
	}
}

func BenchmarkQueuePushPop(b *testing.B) {
	q := NewDropTailQueue(3 * units.MB)
	p := dataPkt(0, 0, 1448)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q.Push(p)
		q.Pop()
	}
}

func BenchmarkQueueFullCycle(b *testing.B) {
	q := NewDropTailQueue(3 * units.MB)
	p := dataPkt(0, 0, 1448)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for q.Push(p) {
		}
		for {
			if _, ok := q.Pop(); !ok {
				break
			}
		}
	}
}

// BenchmarkPortSaturated measures the serialize/deliver path: a port
// kept saturated by re-offering every delivered packet.
func BenchmarkPortSaturated(b *testing.B) {
	eng := sim.NewEngine()
	var port *Port
	delivered := 0
	port = NewPort(eng, 10*units.GbitPerSec, NewDropTailQueue(3*units.MB), func(p packet.Packet) {
		delivered++
		port.Send(p)
	}, nil)
	for i := 0; i < 32; i++ {
		port.Send(dataPkt(0, int64(i)*1448, 1448))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		delivered = 0
		for eng.Len() > 0 && delivered < 1000 {
			eng.Run(eng.Now() + sim.Millisecond)
		}
	}
	b.ReportMetric(float64(delivered), "pkts/iter")
}

// BenchmarkPipeSend measures the pooled propagation hop.
func BenchmarkPipeSend(b *testing.B) {
	eng := sim.NewEngine()
	sunk := 0
	pipe := NewPipe(eng, 5*sim.Microsecond, func(packet.Packet) { sunk++ })
	p := dataPkt(0, 0, 1448)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pipe.Send(p)
		if i%64 == 63 {
			eng.Run(eng.Now() + 10*sim.Microsecond)
		}
	}
	eng.Run(sim.MaxTime)
	if sunk != b.N {
		b.Fatalf("delivered %d of %d", sunk, b.N)
	}
}
