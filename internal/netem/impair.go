package netem

import (
	"ccatscale/internal/packet"
	"ccatscale/internal/sim"
	"ccatscale/internal/units"
)

// Impairment models the stochastic features of the Linux netem qdisc
// the paper's testbed tool provides (tc-netem(8)): independent random
// loss and uniform delay jitter. The paper's experiments deliberately
// run with no random loss ("there is no random loss"), but the
// capability is essential for calibration: the Mathis model's constant
// was originally derived under independent-loss assumptions, and the
// calibration tests in this repository verify the fitted C against
// controlled Bernoulli loss through exactly this element.
type Impairment struct {
	eng *sim.Engine
	rng *sim.RNG
	out Sink

	lossProb float64
	jitter   sim.Time

	onDrop DropFunc

	passed  uint64
	dropped uint64

	dropWire   units.ByteCount
	parkedWire units.ByteCount

	// Jittered packets ride pooled bound-method events; jitterFn is the
	// once-constructed sink that unparks and forwards.
	pool     *deliveryPool
	jitterFn Sink
}

// ImpairmentConfig describes the element.
type ImpairmentConfig struct {
	// LossProb is the independent per-packet drop probability in
	// [0, 1).
	LossProb float64
	// Jitter adds a uniform random delay in [0, Jitter) per packet.
	// Note that large jitter can reorder packets, exactly as real netem
	// does without a reorder-correction queue.
	Jitter sim.Time
	// OnDrop observes random drops; may be nil.
	OnDrop DropFunc
}

// NewImpairment creates the element delivering into out using the given
// deterministic randomness source.
func NewImpairment(eng *sim.Engine, rng *sim.RNG, cfg ImpairmentConfig, out Sink) *Impairment {
	if out == nil {
		panic("netem: impairment without sink")
	}
	if rng == nil {
		panic("netem: impairment without RNG")
	}
	if cfg.LossProb < 0 || cfg.LossProb >= 1 {
		panic("netem: loss probability outside [0, 1)")
	}
	if cfg.Jitter < 0 {
		panic("netem: negative jitter")
	}
	im := &Impairment{
		eng:      eng,
		rng:      rng,
		out:      out,
		lossProb: cfg.LossProb,
		jitter:   cfg.Jitter,
		onDrop:   cfg.OnDrop,
		pool:     newDeliveryPool(),
	}
	im.jitterFn = func(p packet.Packet) {
		im.parkedWire -= p.WireBytes()
		im.out(p)
	}
	return im
}

// Send applies loss and jitter to one packet.
func (im *Impairment) Send(p packet.Packet) {
	if im.lossProb > 0 && im.rng.Float64() < im.lossProb {
		im.dropped++
		im.dropWire += p.WireBytes()
		if im.onDrop != nil {
			im.onDrop(im.eng.Now(), p)
		}
		return
	}
	im.passed++
	if im.jitter > 0 {
		im.parkedWire += p.WireBytes()
		im.eng.After(im.rng.Dur(im.jitter), im.pool.get(im.jitterFn, p).fn)
		return
	}
	im.out(p)
}

// Passed returns the number of packets forwarded.
func (im *Impairment) Passed() uint64 { return im.passed }

// Dropped returns the number of packets randomly dropped.
func (im *Impairment) Dropped() uint64 { return im.dropped }

// DropBytes returns cumulative wire bytes of random drops.
func (im *Impairment) DropBytes() units.ByteCount { return im.dropWire }

// ParkedBytes returns the wire bytes currently parked in jitter delay.
func (im *Impairment) ParkedBytes() units.ByteCount { return im.parkedWire }
