package netem

import (
	"testing"

	"ccatscale/internal/packet"
	"ccatscale/internal/sim"
)

// sendEvery schedules one packet into o at each of the given times.
func sendEvery(eng *sim.Engine, o *Outage, times []sim.Time) {
	for i, at := range times {
		seq := int64(i)
		eng.Schedule(at, func() { o.Send(packet.Packet{Seq: seq}) })
	}
}

func TestOutageDropWindow(t *testing.T) {
	eng := sim.NewEngine()
	var delivered []sim.Time
	o := NewOutage(eng, OutageConfig{
		Windows: []OutageWindow{{Start: 10 * sim.Millisecond, End: 20 * sim.Millisecond}},
	}, func(packet.Packet) { delivered = append(delivered, eng.Now()) })

	times := []sim.Time{
		5 * sim.Millisecond,  // up
		10 * sim.Millisecond, // dark (Start inclusive)
		15 * sim.Millisecond, // dark
		20 * sim.Millisecond, // up again (End exclusive)
		25 * sim.Millisecond, // up
	}
	sendEvery(eng, o, times)
	eng.Run(sim.Second)

	if o.Dropped() != 2 {
		t.Fatalf("dropped = %d, want 2", o.Dropped())
	}
	want := []sim.Time{5 * sim.Millisecond, 20 * sim.Millisecond, 25 * sim.Millisecond}
	if len(delivered) != len(want) {
		t.Fatalf("delivered %d packets, want %d", len(delivered), len(want))
	}
	for i := range want {
		if delivered[i] != want[i] {
			t.Fatalf("delivery %d at %v, want %v", i, delivered[i], want[i])
		}
	}
}

func TestOutageHoldFlushesInOrder(t *testing.T) {
	eng := sim.NewEngine()
	type arrival struct {
		at  sim.Time
		seq int64
	}
	var got []arrival
	o := NewOutage(eng, OutageConfig{
		Windows: []OutageWindow{{Start: 10 * sim.Millisecond, End: 30 * sim.Millisecond}},
		Policy:  OutageHold,
	}, func(p packet.Packet) { got = append(got, arrival{eng.Now(), p.Seq}) })

	sendEvery(eng, o, []sim.Time{
		12 * sim.Millisecond,
		14 * sim.Millisecond,
		16 * sim.Millisecond,
		30 * sim.Millisecond, // arrives as the link returns, after the flush
	})
	eng.Run(sim.Second)

	if o.Dropped() != 0 || o.Flushed() != 3 || o.Held() != 0 {
		t.Fatalf("dropped %d flushed %d held %d, want 0/3/0", o.Dropped(), o.Flushed(), o.Held())
	}
	if len(got) != 4 {
		t.Fatalf("delivered %d, want 4", len(got))
	}
	for i, a := range got {
		if a.seq != int64(i) {
			t.Fatalf("delivery %d carries seq %d: FIFO violated", i, a.seq)
		}
	}
	for _, a := range got[:3] {
		if a.at != 30*sim.Millisecond {
			t.Fatalf("held packet delivered at %v, want flush time 30ms", a.at)
		}
	}
}

func TestOutageHoldCapacityTailDrops(t *testing.T) {
	eng := sim.NewEngine()
	delivered := 0
	drops := 0
	pktWire := (&packet.Packet{Len: 1000}).WireBytes()
	o := NewOutage(eng, OutageConfig{
		Windows:      []OutageWindow{{Start: 0, End: 10 * sim.Millisecond}},
		Policy:       OutageHold,
		HoldCapacity: 2 * pktWire,
		OnDrop:       func(sim.Time, packet.Packet) { drops++ },
	}, func(packet.Packet) { delivered++ })

	eng.Schedule(sim.Millisecond, func() {
		for i := 0; i < 5; i++ {
			o.Send(packet.Packet{Len: 1000})
		}
	})
	eng.Run(sim.Second)

	if o.Flushed() != 2 || delivered != 2 {
		t.Fatalf("flushed %d delivered %d, want 2 held packets released", o.Flushed(), delivered)
	}
	if o.Dropped() != 3 || drops != 3 {
		t.Fatalf("dropped %d (callback %d), want 3 over-capacity drops", o.Dropped(), drops)
	}
}

func TestOutageFlapsSchedule(t *testing.T) {
	ws := Flaps(2*sim.Second, 500*sim.Millisecond, 3*sim.Second, 3)
	want := []OutageWindow{
		{2 * sim.Second, 2*sim.Second + 500*sim.Millisecond},
		{5 * sim.Second, 5*sim.Second + 500*sim.Millisecond},
		{8 * sim.Second, 8*sim.Second + 500*sim.Millisecond},
	}
	if len(ws) != len(want) {
		t.Fatalf("got %d windows, want %d", len(ws), len(want))
	}
	for i := range want {
		if ws[i] != want[i] {
			t.Fatalf("window %d = %+v, want %+v", i, ws[i], want[i])
		}
	}
	if Flaps(0, sim.Second, 0, 5) == nil || len(Flaps(0, sim.Second, 0, 5)) != 1 {
		t.Fatal("zero period should yield a single outage")
	}
	if Flaps(0, 0, sim.Second, 5) != nil {
		t.Fatal("zero down-time should yield no outages")
	}
}

func TestOutageDeterministicDropCounts(t *testing.T) {
	run := func() uint64 {
		eng := sim.NewEngine()
		o := NewOutage(eng, OutageConfig{
			Windows: Flaps(5*sim.Millisecond, 2*sim.Millisecond, 10*sim.Millisecond, 4),
		}, func(packet.Packet) {})
		for i := sim.Time(0); i < 50*sim.Millisecond; i += 100 * sim.Microsecond {
			at := i
			eng.Schedule(at, func() { o.Send(packet.Packet{}) })
		}
		eng.Run(sim.Second)
		return o.Dropped()
	}
	d1, d2 := run(), run()
	if d1 != d2 {
		t.Fatalf("drop counts diverged: %d vs %d", d1, d2)
	}
	// 4 flaps × 2 ms dark × one packet per 100 µs = 80 arrivals in the
	// dark, [Start, End) inclusive-exclusive.
	if d1 != 80 {
		t.Fatalf("dropped = %d, want 80", d1)
	}
}

func TestOutageValidation(t *testing.T) {
	eng := sim.NewEngine()
	sink := func(packet.Packet) {}
	for name, fn := range map[string]func(){
		"nil sink": func() { NewOutage(eng, OutageConfig{}, nil) },
		"inverted": func() {
			NewOutage(eng, OutageConfig{Windows: []OutageWindow{{Start: 2, End: 1}}}, sink)
		},
		"overlap": func() {
			NewOutage(eng, OutageConfig{Windows: []OutageWindow{{0, 10}, {5, 15}}}, sink)
		},
		"unsorted": func() {
			NewOutage(eng, OutageConfig{Windows: []OutageWindow{{20, 30}, {0, 10}}}, sink)
		},
		"negative cap": func() {
			NewOutage(eng, OutageConfig{HoldCapacity: -1}, sink)
		},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			fn()
		}()
	}
}
