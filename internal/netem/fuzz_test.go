package netem

import (
	"testing"

	"ccatscale/internal/audit"
	"ccatscale/internal/packet"
	"ccatscale/internal/sim"
	"ccatscale/internal/units"
)

// FuzzQueueConservation drives both queue disciplines through arbitrary
// push/pop sequences (with time advancing between operations so CoDel's
// sojourn logic engages) under a strict AuditedQueue: the queue's own
// occupancy counters must match the shadow ledger after every operation,
// never go negative, and never exceed capacity. The first byte selects
// the discipline; each following byte is one operation.
func FuzzQueueConservation(f *testing.F) {
	f.Add([]byte{0, 10, 10, 128, 10, 200, 200, 200})
	f.Add([]byte{1, 10, 20, 30, 128, 128, 40, 200, 128})
	f.Add([]byte{1, 255, 255, 255, 255, 128, 128, 128, 128, 128, 128})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) == 0 {
			return
		}
		capacity := 20 * (units.MSS + packet.HeaderBytes)
		now := sim.Time(0)
		aud := audit.New(audit.PolicyStrict, func() sim.Time { return now })

		var aq *AuditedQueue
		var inner Queue
		if data[0]%2 == 0 {
			inner = NewDropTailQueue(capacity)
		} else {
			// Mirror the dumbbell's wiring: CoDel reports its own drops
			// (tail on push, AQM head drops inside pop) and the audited
			// queue learns about the dequeue-side ones via NoteDrop.
			inner = NewCoDelQueue(func() sim.Time { return now }, capacity,
				func(_ sim.Time, p packet.Packet) { aq.NoteDrop(p) })
		}
		aq = NewAuditedQueue(inner, aud)

		seq := int64(0)
		for _, b := range data[1:] {
			// Advance time irregularly so CoDel crosses its 100 ms
			// interval and enters/leaves the dropping state.
			now += sim.Time(b) * sim.Millisecond / 4
			if b < 128 {
				// Variable payload sizes exercise byte (not just packet)
				// accounting, including sub-MSS runts.
				size := int32(1 + (int(b)*97)%int(units.MSS))
				aq.Push(packet.Packet{Flow: 0, Seq: seq, Len: size})
				seq += int64(size)
			} else {
				aq.Pop()
			}
			if aq.Bytes() != inner.Bytes() || aq.Len() != inner.Len() {
				t.Fatalf("wrapper view diverged: %d/%d vs %d/%d",
					aq.Bytes(), aq.Len(), inner.Bytes(), inner.Len())
			}
		}
		// Drain: everything admitted must come back out, and the ledger
		// must agree the queue is empty.
		for {
			if _, ok := aq.Pop(); !ok {
				break
			}
		}
		if aq.Bytes() != 0 || aq.Len() != 0 {
			t.Fatalf("drained queue reports %d bytes / %d packets", aq.Bytes(), aq.Len())
		}
	})
}

// FuzzDropTailDrillDetected proves the detector the -audit-drill rests
// on: any nonzero corruption of the byte counter, injected at any point
// of any operation sequence, is caught by the shadow ledger on the next
// operation.
func FuzzDropTailDrillDetected(f *testing.F) {
	f.Add([]byte{10, 10, 200}, uint8(1), uint16(3))
	f.Add([]byte{10, 10, 10, 10, 200, 200}, uint8(4), uint16(1518))
	f.Fuzz(func(t *testing.T, data []byte, when uint8, delta uint16) {
		if delta == 0 {
			return
		}
		now := sim.Time(0)
		aud := audit.New(audit.PolicyWarn, func() sim.Time { return now })
		dt := NewDropTailQueue(20 * (units.MSS + packet.HeaderBytes))
		aq := NewAuditedQueue(dt, aud)

		corruptAt := int(when) % (len(data) + 1)
		for i, b := range data {
			if i == corruptAt {
				dt.DrillCorrupt(units.ByteCount(delta))
			}
			now += sim.Millisecond
			if b < 128 {
				aq.Push(packet.Packet{Flow: 0, Len: int32(units.MSS)})
			} else {
				aq.Pop()
			}
		}
		if corruptAt >= len(data) {
			dt.DrillCorrupt(units.ByteCount(delta))
		}
		aq.Pop() // at least one post-corruption operation
		if aud.Total() == 0 {
			t.Fatal("corrupted byte counter never detected")
		}
		if aud.Violations()[0].Check != "netem/queue-occupancy" {
			t.Fatalf("first violation %q, want netem/queue-occupancy", aud.Violations()[0].Check)
		}
	})
}
