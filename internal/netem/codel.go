package netem

import (
	"math"

	"ccatscale/internal/packet"
	"ccatscale/internal/sim"
	"ccatscale/internal/units"
)

// CoDel parameters (RFC 8289 defaults).
const (
	// CoDelTarget is the acceptable standing-queue sojourn time.
	CoDelTarget = 5 * sim.Millisecond
	// CoDelInterval is the sliding window in which sojourn must dip
	// below target at least once.
	CoDelInterval = 100 * sim.Millisecond
)

// CoDelQueue implements the CoDel AQM (Nichols & Jacobson, RFC 8289)
// over the same byte-capacity FIFO used for drop-tail: packets carry
// their enqueue time, and the dequeue path drops from the head at the
// square-root-spaced control-law rate while the sojourn time stays
// above target for a full interval.
//
// The paper evaluates drop-tail only — the rule for sizing its buffers
// — but its closing call for at-scale CCA evaluation makes AQM the
// obvious next axis: CoDel removes the standing queue that both the
// Mathis-divergence and the BBR findings depend on, and the ablation
// benchmark quantifies exactly that.
type CoDelQueue struct {
	now func() sim.Time

	capacity units.ByteCount
	bytes    units.ByteCount

	ring    []codelEntry
	head, n int

	// CoDel control-law state.
	firstAboveTime sim.Time
	dropNext       sim.Time
	count          uint32
	lastCount      uint32
	dropping       bool

	enqueued    uint64
	tailDrops   uint64
	aqmDrops    uint64
	aqmDropWire units.ByteCount

	maxBytes   units.ByteCount
	maxPackets int

	onDrop DropFunc

	// ECN mode: when enabled, the control law CE-marks ECT packets
	// instead of dropping them (RFC 8289 §3; the fq_codel behavior).
	// Non-ECT packets are still dropped, and tail drops always drop.
	ecn           bool
	ceBytes       units.ByteCount
	ceMarkWire    units.ByteCount
	ceMarks       uint64
	ceAqmDropWire units.ByteCount
}

type codelEntry struct {
	p  packet.Packet
	at sim.Time
}

// NewCoDelQueue creates a CoDel-managed queue of the given byte
// capacity. now supplies virtual time (the engine's Now). onDrop
// observes both tail and AQM drops; may be nil.
func NewCoDelQueue(now func() sim.Time, capacity units.ByteCount, onDrop DropFunc) *CoDelQueue {
	if capacity <= 0 {
		panic("netem: non-positive CoDel capacity")
	}
	if now == nil {
		panic("netem: CoDel without clock")
	}
	return &CoDelQueue{
		now:      now,
		capacity: capacity,
		ring:     make([]codelEntry, 1024),
		onDrop:   onDrop,
	}
}

// Capacity returns the configured byte capacity.
func (q *CoDelQueue) Capacity() units.ByteCount { return q.capacity }

// SetECN switches the control law to CE-marking ECT packets instead of
// dropping them. Marking never changes admission or ordering for
// non-ECT traffic, so an all-non-ECT workload is bit-identical either
// way.
func (q *CoDelQueue) SetECN(on bool) { q.ecn = on }

// CEMarkWire returns cumulative wire bytes CE-marked at this queue.
func (q *CoDelQueue) CEMarkWire() units.ByteCount { return q.ceMarkWire }

// CEMarks returns the cumulative count of packets CE-marked here.
func (q *CoDelQueue) CEMarks() uint64 { return q.ceMarks }

// CEQueuedBytes returns the wire bytes of CE-marked packets currently
// queued (pass-through CE from an upstream bottleneck; CoDel's own
// marks leave immediately).
func (q *CoDelQueue) CEQueuedBytes() units.ByteCount { return q.ceBytes }

// CEDropWire returns cumulative wire bytes of CE-marked packets the
// control law dropped anyway (non-ECN mode, or head drops of upstream-
// marked packets while their flow is non-ECT — impossible by
// construction, but the ledger accounts it rather than assuming).
func (q *CoDelQueue) CEDropWire() units.ByteCount { return q.ceAqmDropWire }

// Bytes returns current occupancy in wire bytes.
func (q *CoDelQueue) Bytes() units.ByteCount { return q.bytes }

// Len returns the number of queued packets.
func (q *CoDelQueue) Len() int { return q.n }

// Enqueued returns accepted packets.
func (q *CoDelQueue) Enqueued() uint64 { return q.enqueued }

// TailDrops returns drops due to a full buffer.
func (q *CoDelQueue) TailDrops() uint64 { return q.tailDrops }

// AQMDrops returns drops made by the CoDel control law.
func (q *CoDelQueue) AQMDrops() uint64 { return q.aqmDrops }

// AQMDropWire returns cumulative wire bytes dropped by the control law.
func (q *CoDelQueue) AQMDropWire() units.ByteCount { return q.aqmDropWire }

// MaxBytes returns the high-water mark of byte occupancy.
func (q *CoDelQueue) MaxBytes() units.ByteCount { return q.maxBytes }

// MaxLen returns the high-water mark of packet occupancy.
func (q *CoDelQueue) MaxLen() int { return q.maxPackets }

// MemBytes returns the ring's in-memory footprint (slots × entry size),
// for peak-usage reporting next to the budget estimator's prediction.
func (q *CoDelQueue) MemBytes() int64 {
	return int64(len(q.ring)) * (packet.StructBytes + 8)
}

// Push appends a packet or tail-drops it when the buffer is full (CoDel
// still needs a hard byte limit; with the control law active it should
// rarely be hit).
func (q *CoDelQueue) Push(p packet.Packet) bool {
	wire := p.WireBytes()
	if q.bytes+wire > q.capacity {
		q.tailDrops++
		if q.onDrop != nil {
			q.onDrop(q.now(), p)
		}
		return false
	}
	if q.n == len(q.ring) {
		q.grow()
	}
	if p.CE {
		q.ceBytes += wire
	}
	q.ring[(q.head+q.n)%len(q.ring)] = codelEntry{p: p, at: q.now()}
	q.n++
	q.bytes += wire
	q.enqueued++
	if q.bytes > q.maxBytes {
		q.maxBytes = q.bytes
	}
	if q.n > q.maxPackets {
		q.maxPackets = q.n
	}
	return true
}

func (q *CoDelQueue) grow() {
	bigger := make([]codelEntry, 2*len(q.ring))
	for i := 0; i < q.n; i++ {
		bigger[i] = q.ring[(q.head+i)%len(q.ring)]
	}
	q.ring = bigger
	q.head = 0
}

func (q *CoDelQueue) popHead() (codelEntry, bool) {
	if q.n == 0 {
		return codelEntry{}, false
	}
	e := q.ring[q.head]
	q.ring[q.head] = codelEntry{}
	q.head = (q.head + 1) % len(q.ring)
	q.n--
	q.bytes -= e.p.WireBytes()
	if e.p.CE {
		q.ceBytes -= e.p.WireBytes()
	}
	return e, true
}

// doDequeue implements the RFC 8289 dodeque() helper: pop one packet
// and report whether its sojourn stayed above target long enough to
// arm/keep the dropping state.
func (q *CoDelQueue) doDequeue(now sim.Time) (codelEntry, bool, bool) {
	e, ok := q.popHead()
	if !ok {
		q.firstAboveTime = 0
		return e, false, false
	}
	sojourn := now - e.at
	if sojourn < CoDelTarget || q.bytes <= 1518 {
		// Below target (or queue nearly empty): leave dropping state
		// eligibility.
		q.firstAboveTime = 0
		return e, true, false
	}
	if q.firstAboveTime == 0 {
		q.firstAboveTime = now + CoDelInterval
		return e, true, false
	}
	return e, true, now >= q.firstAboveTime
}

// controlLaw spaces drops by interval/√count.
func (q *CoDelQueue) controlLaw(t sim.Time) sim.Time {
	return t + sim.Time(float64(CoDelInterval)/math.Sqrt(float64(q.count)))
}

// Pop dequeues the next deliverable packet, applying the CoDel drop
// law; it returns false when the queue is empty (possibly after
// dropping stragglers).
func (q *CoDelQueue) Pop() (packet.Packet, bool) {
	now := q.now()
	e, ok, okToDrop := q.doDequeue(now)
	if !ok {
		q.dropping = false
		return packet.Packet{}, false
	}
	if q.dropping {
		if !okToDrop {
			q.dropping = false
		} else {
			for now >= q.dropNext && q.dropping {
				if q.markCE(&e.p) {
					// ECN: the mark stands in for the drop; the control
					// law advances as if one had happened and the marked
					// packet is delivered.
					q.count++
					q.dropNext = q.controlLaw(q.dropNext)
					return e.p, true
				}
				q.dropPacket(e.p, now)
				q.count++
				e, ok, okToDrop = q.doDequeue(now)
				if !ok {
					q.dropping = false
					return packet.Packet{}, false
				}
				if !okToDrop {
					q.dropping = false
				} else {
					q.dropNext = q.controlLaw(q.dropNext)
				}
			}
		}
	} else if okToDrop {
		marked := q.markCE(&e.p)
		if !marked {
			q.dropPacket(e.p, now)
		}
		q.dropping = true
		// Resume drop spacing near the previous rate if we were
		// dropping recently (RFC 8289 §5.4).
		delta := q.count - q.lastCount
		if delta > 1 && now-q.dropNext < 16*CoDelInterval {
			q.count = delta
		} else {
			q.count = 1
		}
		q.lastCount = q.count
		q.dropNext = q.controlLaw(now)
		if !marked {
			e, ok, _ = q.doDequeue(now)
			if !ok {
				q.dropping = false
				return packet.Packet{}, false
			}
		}
	}
	return e.p, true
}

func (q *CoDelQueue) dropPacket(p packet.Packet, now sim.Time) {
	q.aqmDrops++
	q.aqmDropWire += p.WireBytes()
	if p.CE {
		q.ceAqmDropWire += p.WireBytes()
	}
	if q.onDrop != nil {
		q.onDrop(now, p)
	}
}

// markCE CE-marks an ECT packet in ECN mode, reporting whether the
// packet may be delivered in place of a control-law drop.
func (q *CoDelQueue) markCE(p *packet.Packet) bool {
	if !q.ecn || !p.ECT {
		return false
	}
	if !p.CE {
		p.CE = true
		q.ceMarks++
		q.ceMarkWire += p.WireBytes()
	}
	return true
}
