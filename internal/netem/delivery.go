package netem

import (
	"ccatscale/internal/packet"
)

// delivery is a reusable bound-method event: a packet plus the sink it
// is destined for, with a pre-created func() that delivers and returns
// the struct to its pool. Scheduling one costs no allocation in steady
// state, unlike the obvious per-packet closure — and at CoreScale every
// propagation hop of every packet goes through one of these, so the
// difference is hundreds of millions of allocations per run.
//
// Ordering is untouched: each packet still gets its own engine event,
// scheduled at exactly the same call sites as before, so the event
// sequence — and with it bit-for-bit determinism — is preserved.
type delivery struct {
	p    packet.Packet
	sink Sink
	pool *deliveryPool
	fn   func()
}

// deliveryPool recycles delivery structs. Pools are per-element (pipe,
// dumbbell, impairment) and the simulation is single-threaded, so there
// is no locking.
type deliveryPool struct {
	free []*delivery
}

func newDeliveryPool() *deliveryPool {
	return &deliveryPool{}
}

// get returns a delivery armed with sink and p. The returned struct's
// fn field is the event callback to schedule.
func (dp *deliveryPool) get(sink Sink, p packet.Packet) *delivery {
	var d *delivery
	if n := len(dp.free); n > 0 {
		d = dp.free[n-1]
		dp.free[n-1] = nil
		dp.free = dp.free[:n-1]
	} else {
		d = &delivery{pool: dp}
		d.fn = d.run // bound once; reused for the struct's lifetime
	}
	d.sink = sink
	d.p = p
	return d
}

// run delivers the packet and recycles the struct. The struct is
// returned to the pool before the sink executes so a sink that sends
// more traffic through the same element can reuse it immediately.
func (d *delivery) run() {
	p, sink := d.p, d.sink
	d.sink = nil
	d.p = packet.Packet{}
	d.pool.free = append(d.pool.free, d)
	sink(p)
}
