package netem

import (
	"fmt"

	"ccatscale/internal/packet"
	"ccatscale/internal/sim"
	"ccatscale/internal/units"
)

// GilbertElliott is a two-state burst-loss impairment: the classic
// Gilbert–Elliott channel model (Gilbert 1960, Elliott 1963), the
// standard generalization of netem's independent loss to correlated
// loss. The channel alternates between a Good and a Bad state with
// per-packet transition probabilities; each state drops packets with
// its own probability. The paper's testbed has no random loss at all,
// but bursty loss is exactly the regime where the Mathis/Padhye
// independent-loss assumption breaks down (a burst of drops triggers a
// single window halving), so the model is the natural fault-injection
// axis for stress-testing the throughput-model findings.
//
// With LossBad = 1 and LossGood = 0 the model reduces to the simple
// Gilbert channel: mean burst length 1/PBadToGood, stationary loss
// rate PGoodToBad/(PGoodToBad+PBadToGood).
type GilbertElliott struct {
	eng *sim.Engine
	rng *sim.RNG
	out Sink

	cfg GilbertElliottConfig
	bad bool // current state

	passed   uint64
	dropped  uint64
	dropWire units.ByteCount
	goodPkts uint64
	badPkts  uint64
	bursts   uint64 // Good→Bad transitions
}

// GilbertElliottConfig describes the channel.
type GilbertElliottConfig struct {
	// PGoodToBad is the per-packet probability of entering the Bad
	// state from Good, in [0, 1].
	PGoodToBad float64
	// PBadToGood is the per-packet probability of returning to Good
	// from Bad, in (0, 1] when PGoodToBad > 0. Its reciprocal is the
	// mean burst length in packets.
	PBadToGood float64
	// LossGood is the drop probability while Good (usually 0), in [0, 1).
	LossGood float64
	// LossBad is the drop probability while Bad (usually 1), in [0, 1].
	LossBad float64
	// StartBad starts the channel in the Bad state (default Good).
	StartBad bool
	// OnDrop observes drops; may be nil.
	OnDrop DropFunc
}

// StationaryBad returns the stationary probability of the Bad state,
// PGoodToBad/(PGoodToBad+PBadToGood).
func (c GilbertElliottConfig) StationaryBad() float64 {
	den := c.PGoodToBad + c.PBadToGood
	if den <= 0 {
		return 0
	}
	return c.PGoodToBad / den
}

// StationaryLoss returns the long-run drop probability of the channel:
// the state-occupancy-weighted mix of the two loss probabilities.
func (c GilbertElliottConfig) StationaryLoss() float64 {
	pb := c.StationaryBad()
	return (1-pb)*c.LossGood + pb*c.LossBad
}

// SimpleGilbert builds the two-parameter special case from the target
// stationary loss rate and mean burst length (in packets): LossBad = 1,
// LossGood = 0, PBadToGood = 1/meanBurstLen, and PGoodToBad solved so
// that the stationary loss equals meanLoss. meanBurstLen = 1 recovers
// independent Bernoulli loss.
func SimpleGilbert(meanLoss, meanBurstLen float64) GilbertElliottConfig {
	if meanLoss < 0 || meanLoss >= 1 {
		panic("netem: Gilbert mean loss outside [0, 1)")
	}
	if meanBurstLen < 1 {
		panic("netem: Gilbert mean burst length below 1 packet")
	}
	r := 1 / meanBurstLen
	// stationary loss = p/(p+r) = meanLoss  ⇒  p = r·meanLoss/(1−meanLoss)
	return GilbertElliottConfig{
		PGoodToBad: r * meanLoss / (1 - meanLoss),
		PBadToGood: r,
		LossBad:    1,
	}
}

// NewGilbertElliott creates the element delivering into out using the
// given deterministic randomness source.
func NewGilbertElliott(eng *sim.Engine, rng *sim.RNG, cfg GilbertElliottConfig, out Sink) *GilbertElliott {
	if out == nil {
		panic("netem: Gilbert–Elliott without sink")
	}
	if rng == nil {
		panic("netem: Gilbert–Elliott without RNG")
	}
	if cfg.PGoodToBad < 0 || cfg.PGoodToBad > 1 {
		panic(fmt.Sprintf("netem: PGoodToBad %v outside [0, 1]", cfg.PGoodToBad))
	}
	if cfg.PBadToGood < 0 || cfg.PBadToGood > 1 {
		panic(fmt.Sprintf("netem: PBadToGood %v outside [0, 1]", cfg.PBadToGood))
	}
	if cfg.PGoodToBad > 0 && cfg.PBadToGood == 0 {
		panic("netem: Bad state is absorbing (PBadToGood = 0)")
	}
	if cfg.LossGood < 0 || cfg.LossGood >= 1 {
		panic(fmt.Sprintf("netem: LossGood %v outside [0, 1)", cfg.LossGood))
	}
	if cfg.LossBad < 0 || cfg.LossBad > 1 {
		panic(fmt.Sprintf("netem: LossBad %v outside [0, 1]", cfg.LossBad))
	}
	return &GilbertElliott{
		eng: eng,
		rng: rng,
		out: out,
		cfg: cfg,
		bad: cfg.StartBad,
	}
}

// Send applies the channel to one packet: drop per the current state's
// loss probability, then advance the state machine.
func (g *GilbertElliott) Send(p packet.Packet) {
	var lossP float64
	if g.bad {
		g.badPkts++
		lossP = g.cfg.LossBad
	} else {
		g.goodPkts++
		lossP = g.cfg.LossGood
	}
	drop := lossP > 0 && (lossP >= 1 || g.rng.Float64() < lossP)

	// State transition after the loss decision, so a burst's first
	// packet is decided by the state it arrived in.
	if g.bad {
		if g.cfg.PBadToGood > 0 && g.rng.Float64() < g.cfg.PBadToGood {
			g.bad = false
		}
	} else if g.cfg.PGoodToBad > 0 && g.rng.Float64() < g.cfg.PGoodToBad {
		g.bad = true
		g.bursts++
	}

	if drop {
		g.dropped++
		g.dropWire += p.WireBytes()
		if g.cfg.OnDrop != nil {
			g.cfg.OnDrop(g.eng.Now(), p)
		}
		return
	}
	g.passed++
	g.out(p)
}

// Passed returns the number of packets forwarded.
func (g *GilbertElliott) Passed() uint64 { return g.passed }

// Dropped returns the number of packets dropped by the channel.
func (g *GilbertElliott) Dropped() uint64 { return g.dropped }

// DropBytes returns cumulative wire bytes dropped by the channel.
func (g *GilbertElliott) DropBytes() units.ByteCount { return g.dropWire }

// GoodPackets returns the number of packets that met the Good state.
func (g *GilbertElliott) GoodPackets() uint64 { return g.goodPkts }

// BadPackets returns the number of packets that met the Bad state.
func (g *GilbertElliott) BadPackets() uint64 { return g.badPkts }

// Bursts returns the number of Good→Bad transitions observed.
func (g *GilbertElliott) Bursts() uint64 { return g.bursts }
