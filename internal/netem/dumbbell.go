package netem

import (
	"ccatscale/internal/packet"
	"ccatscale/internal/sim"
	"ccatscale/internal/units"
)

// fwdPropDelay is the fixed sender→receiver propagation component. The
// paper installs the entire base RTT with netem at the receiver side, so
// the forward path carries only a token propagation delay and the
// remainder rides the ACK return path. Where the delay sits is
// immaterial to the sender, which only ever observes the sum.
const fwdPropDelay = 5 * sim.Microsecond

// Dumbbell is the experiment topology (paper Figure 1): all senders feed
// one bottleneck port; delivered segments reach per-flow receivers after
// a short forward propagation delay; ACKs return over an uncongested
// reverse path that carries the per-flow base RTT.
//
// The 25 Gbps edge links of the physical testbed exist to guarantee that
// congestion happens only at the switch; the simulation gets that
// guarantee by construction, so edge serialization is not modeled (its
// per-segment contribution at 25 Gbps, ~0.5 µs, is three orders of
// magnitude below the base RTTs studied).
type Dumbbell struct {
	eng  *sim.Engine
	port *Port

	revDelay []sim.Time

	toReceiver Sink
	toSender   Sink
}

// AQM selects the bottleneck queue discipline.
type AQM int

const (
	// DropTail is the paper's configuration.
	DropTail AQM = iota
	// CoDel applies RFC 8289 active queue management (an extension
	// axis beyond the paper).
	CoDel
)

// DumbbellConfig describes a dumbbell instance.
type DumbbellConfig struct {
	// Rate is the bottleneck line rate.
	Rate units.Bandwidth
	// Buffer is the bottleneck queue capacity in bytes.
	Buffer units.ByteCount
	// RTT holds each flow's base round-trip time, indexed by flow ID.
	RTT []sim.Time
	// OnDrop observes bottleneck drops (tail and AQM); may be nil.
	OnDrop DropFunc
	// Discipline selects the queueing discipline (default DropTail).
	Discipline AQM
}

// NewDumbbell wires the topology. Endpoint sinks must be attached with
// SetEndpoints before traffic flows.
func NewDumbbell(eng *sim.Engine, cfg DumbbellConfig) *Dumbbell {
	d := &Dumbbell{
		eng:      eng,
		revDelay: make([]sim.Time, len(cfg.RTT)),
	}
	for i, rtt := range cfg.RTT {
		if rtt <= 0 {
			panic("netem: flow with non-positive base RTT")
		}
		rev := rtt - fwdPropDelay
		if rev < 0 {
			rev = 0
		}
		d.revDelay[i] = rev
	}
	switch cfg.Discipline {
	case CoDel:
		// The CoDel queue reports its own drops (both tail and AQM), so
		// the port's tail-drop callback stays unset to avoid double
		// counting.
		queue := NewCoDelQueue(eng.Now, cfg.Buffer, cfg.OnDrop)
		d.port = NewPort(eng, cfg.Rate, queue, d.deliverData, nil)
	default:
		queue := NewDropTailQueue(cfg.Buffer)
		d.port = NewPort(eng, cfg.Rate, queue, d.deliverData, cfg.OnDrop)
	}
	return d
}

// SetEndpoints attaches the demultiplexed delivery sinks: toReceiver
// gets data segments at their receiver-arrival times, toSender gets ACKs
// at their sender-arrival times. Both dispatch on Packet.Flow.
func (d *Dumbbell) SetEndpoints(toReceiver, toSender Sink) {
	d.toReceiver = toReceiver
	d.toSender = toSender
}

// Port exposes the bottleneck port for statistics.
func (d *Dumbbell) Port() *Port { return d.port }

// Flows returns the number of configured flows.
func (d *Dumbbell) Flows() int { return len(d.revDelay) }

// SendData is the sender-side entry point: the segment heads into the
// bottleneck.
func (d *Dumbbell) SendData(p packet.Packet) {
	d.port.Send(p)
}

// deliverData is invoked by the port when a segment finishes
// serialization; it completes the forward path.
func (d *Dumbbell) deliverData(p packet.Packet) {
	d.eng.After(fwdPropDelay, func() { d.toReceiver(p) })
}

// SendAck is the receiver-side entry point: the ACK returns to the
// sender over the uncongested reverse path after the flow's base-RTT
// delay.
func (d *Dumbbell) SendAck(p packet.Packet) {
	delay := d.revDelay[p.Flow]
	d.eng.After(delay, func() { d.toSender(p) })
}
