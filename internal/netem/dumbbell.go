package netem

import (
	"fmt"

	"ccatscale/internal/audit"
	"ccatscale/internal/packet"
	"ccatscale/internal/sim"
	"ccatscale/internal/units"
)

// fwdPropDelay is the fixed sender→receiver propagation component. The
// paper installs the entire base RTT with netem at the receiver side, so
// the forward path carries only a token propagation delay and the
// remainder rides the ACK return path. Where the delay sits is
// immaterial to the sender, which only ever observes the sum.
const fwdPropDelay = 5 * sim.Microsecond

// Dumbbell is the experiment topology (paper Figure 1): all senders feed
// one bottleneck port; delivered segments reach per-flow receivers after
// a short forward propagation delay; ACKs return over an uncongested
// reverse path that carries the per-flow base RTT.
//
// The 25 Gbps edge links of the physical testbed exist to guarantee that
// congestion happens only at the switch; the simulation gets that
// guarantee by construction, so edge serialization is not modeled (its
// per-segment contribution at 25 Gbps, ~0.5 µs, is three orders of
// magnitude below the base RTTs studied).
type Dumbbell struct {
	eng  *sim.Engine
	port *Port

	revDelay []sim.Time

	toReceiver Sink
	toSender   Sink

	// Delivery pools and once-constructed sink adapters: the forward
	// propagation hop and the reverse ACK path each schedule one event
	// per packet, reusing pooled bound-method events instead of
	// allocating a closure per packet.
	fwdPool *deliveryPool
	revPool *deliveryPool
	recvFn  Sink // delivers into toReceiver (audited variant tracks propBytes)
	ackFn   Sink // delivers into toSender

	// Audit state (nil/zero when auditing is off).
	aud       *audit.Auditor
	aq        *AuditedQueue
	dropWire  units.ByteCount // all bottleneck drops (tail + AQM), wire bytes
	propBytes units.ByteCount // data bytes in forward propagation flight

	// CE slices of the audit ledger: wire bytes of CE-marked packets in
	// propagation flight and delivered to the endpoint sink.
	cePropBytes     units.ByteCount
	ceDeliveredWire units.ByteCount
}

// AQM selects the bottleneck queue discipline.
type AQM int

const (
	// DropTail is the paper's configuration.
	DropTail AQM = iota
	// CoDel applies RFC 8289 active queue management (an extension
	// axis beyond the paper).
	CoDel
)

// DumbbellConfig describes a dumbbell instance.
type DumbbellConfig struct {
	// Rate is the bottleneck line rate.
	Rate units.Bandwidth
	// Buffer is the bottleneck queue capacity in bytes.
	Buffer units.ByteCount
	// RTT holds each flow's base round-trip time, indexed by flow ID.
	RTT []sim.Time
	// OnDrop observes bottleneck drops (tail and AQM); may be nil.
	OnDrop DropFunc
	// Discipline selects the queueing discipline (default DropTail).
	Discipline AQM
	// ECN enables CE marking at the bottleneck: a step threshold on the
	// drop-tail queue, mark-instead-of-drop on CoDel. Marking only ever
	// touches ECT packets, so enabling it under non-ECT traffic is
	// bit-identical to leaving it off.
	ECN bool
	// ECNMarkBytes is the drop-tail CE-marking threshold in wire bytes;
	// 0 defaults to a quarter of the buffer. Ignored by CoDel, whose
	// control law decides when to mark.
	ECNMarkBytes units.ByteCount
	// Audit enables the netem conservation ledger: shadow queue
	// accounting plus the port-level byte-conservation check after
	// every send and transmit completion. Nil disables auditing.
	Audit *audit.Auditor
}

// Validate rejects degenerate topologies at construction time with a
// descriptive error: a zero or negative bottleneck rate stalls the
// port forever, a zero-capacity queue silently drops everything beyond
// the packet in serialization, and a non-positive RTT breaks the ACK
// clock. All of these previously produced degenerate runs (or panics
// deep in the stack) rather than an actionable message.
func (cfg DumbbellConfig) Validate() error {
	if cfg.Rate <= 0 {
		return fmt.Errorf("netem: bottleneck rate must be positive, got %d bits/sec", int64(cfg.Rate))
	}
	if cfg.Buffer <= 0 {
		return fmt.Errorf("netem: bottleneck queue capacity must be positive, got %d bytes", int64(cfg.Buffer))
	}
	if minFrame := units.MSS + packet.HeaderBytes; cfg.Buffer < minFrame {
		return fmt.Errorf("netem: bottleneck queue capacity %d bytes cannot hold one full-size frame (%d bytes); every standing-queue packet would be tail-dropped",
			int64(cfg.Buffer), int64(minFrame))
	}
	if len(cfg.RTT) == 0 {
		return fmt.Errorf("netem: dumbbell with no flows")
	}
	for i, rtt := range cfg.RTT {
		if rtt <= 0 {
			return fmt.Errorf("netem: flow %d has non-positive base RTT %v", i, rtt)
		}
	}
	return nil
}

// NewDumbbell wires the topology, panicking on an invalid configuration
// (call Validate first to get the error instead). Endpoint sinks must
// be attached with SetEndpoints before traffic flows.
func NewDumbbell(eng *sim.Engine, cfg DumbbellConfig) *Dumbbell {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	d := &Dumbbell{
		eng:      eng,
		aud:      cfg.Audit,
		revDelay: make([]sim.Time, len(cfg.RTT)),
		fwdPool:  newDeliveryPool(),
		revPool:  newDeliveryPool(),
	}
	if cfg.Audit != nil {
		d.recvFn = func(p packet.Packet) {
			d.propBytes -= p.WireBytes()
			if p.CE {
				d.cePropBytes -= p.WireBytes()
				d.ceDeliveredWire += p.WireBytes()
			}
			d.toReceiver(p)
		}
	} else {
		d.recvFn = func(p packet.Packet) { d.toReceiver(p) }
	}
	d.ackFn = func(p packet.Packet) { d.toSender(p) }
	for i, rtt := range cfg.RTT {
		rev := rtt - fwdPropDelay
		if rev < 0 {
			rev = 0
		}
		d.revDelay[i] = rev
	}
	onDrop := cfg.OnDrop
	if d.aud != nil {
		// Interpose on the drop callback so the dumbbell's ledger sees
		// every bottleneck drop (tail and AQM) in wire bytes, and the
		// audited queue learns about dequeue-side drops of admitted
		// packets.
		user := cfg.OnDrop
		onDrop = func(now sim.Time, p packet.Packet) {
			d.dropWire += p.WireBytes()
			if d.aq != nil {
				d.aq.NoteDrop(p)
			}
			if user != nil {
				user(now, p)
			}
		}
	}
	switch cfg.Discipline {
	case CoDel:
		// The CoDel queue reports its own drops (both tail and AQM), so
		// the port's tail-drop callback stays unset to avoid double
		// counting.
		cq := NewCoDelQueue(eng.Now, cfg.Buffer, onDrop)
		if cfg.ECN {
			cq.SetECN(true)
		}
		var queue Queue = cq
		if d.aud != nil {
			d.aq = NewAuditedQueue(queue, d.aud)
			queue = d.aq
		}
		d.port = NewPort(eng, cfg.Rate, queue, d.deliverData, nil)
	default:
		dt := NewDropTailQueue(cfg.Buffer)
		if cfg.ECN {
			dt.SetCEThreshold(ceThreshold(cfg.ECNMarkBytes, cfg.Buffer))
		}
		var queue Queue = dt
		if d.aud != nil {
			d.aq = NewAuditedQueue(queue, d.aud)
			queue = d.aq
		}
		d.port = NewPort(eng, cfg.Rate, queue, d.deliverData, onDrop)
	}
	if d.aud != nil {
		d.port.SetAuditCheck(d.checkConservation)
	}
	return d
}

// checkConservation verifies the bottleneck conservation equation after
// every port operation: every wire byte offered is transmitted,
// dropped, queued, or serializing — nothing else.
func (d *Dumbbell) checkConservation(op string) {
	p := d.port
	accounted := p.TxBytes() + d.dropWire + p.Queue().Bytes() + p.SerializingBytes()
	if offered := p.OfferedBytes(); offered != accounted {
		d.aud.Reportf("netem/port-conservation", -1,
			"after %s: offered %d bytes != tx %d + dropped %d + queued %d + serializing %d (missing %d)",
			op, offered, p.TxBytes(), d.dropWire, p.Queue().Bytes(), p.SerializingBytes(),
			int64(offered)-int64(accounted))
	}
}

// SetEndpoints attaches the demultiplexed delivery sinks: toReceiver
// gets data segments at their receiver-arrival times, toSender gets ACKs
// at their sender-arrival times. Both dispatch on Packet.Flow.
func (d *Dumbbell) SetEndpoints(toReceiver, toSender Sink) {
	d.toReceiver = toReceiver
	d.toSender = toSender
}

// Port exposes the bottleneck port for statistics.
func (d *Dumbbell) Port() *Port { return d.port }

// Flows returns the number of configured flows.
func (d *Dumbbell) Flows() int { return len(d.revDelay) }

// SendData is the sender-side entry point: the segment heads into the
// bottleneck.
func (d *Dumbbell) SendData(p packet.Packet) {
	d.port.Send(p)
}

// deliverData is invoked by the port when a segment finishes
// serialization; it completes the forward path.
func (d *Dumbbell) deliverData(p packet.Packet) {
	if d.aud != nil {
		d.propBytes += p.WireBytes()
		if p.CE {
			d.cePropBytes += p.WireBytes()
		}
	}
	d.eng.After(fwdPropDelay, d.fwdPool.get(d.recvFn, p).fn)
}

// PropagatingBytes returns the wire bytes currently in forward
// propagation flight (maintained only while auditing).
func (d *Dumbbell) PropagatingBytes() units.ByteCount { return d.propBytes }

// BottleneckDropWire returns cumulative wire bytes dropped at the
// bottleneck, tail and AQM combined (maintained only while auditing).
func (d *Dumbbell) BottleneckDropWire() units.ByteCount { return d.dropWire }

// DropWire implements Fabric: total fabric drops in wire bytes
// (maintained only while auditing, like the end-to-end ledger it feeds).
func (d *Dumbbell) DropWire() units.ByteCount { return d.dropWire }

// InNetworkBytes implements Fabric: wire bytes queued, serializing, or
// in propagation flight inside the fabric.
func (d *Dumbbell) InNetworkBytes() units.ByteCount {
	return d.port.Queue().Bytes() + d.port.SerializingBytes() + d.propBytes
}

// ECNLedger implements Fabric. Delivered and in-flight terms are
// maintained only while auditing.
func (d *Dumbbell) ECNLedger() (marked, delivered, dropped, inNetwork units.ByteCount) {
	marked, dropped, ceQueued := portECNTerms(d.port)
	inNetwork = ceQueued + d.port.CESerializingBytes() + d.cePropBytes
	return marked, d.ceDeliveredWire, dropped, inNetwork
}

// LinkStats implements Fabric: the dumbbell is one bottleneck link.
func (d *Dumbbell) LinkStats() []LinkStat {
	return []LinkStat{linkStat("bottleneck", d.port)}
}

// DrillCorruptQueue corrupts the bottleneck drop-tail queue's byte
// counter by one full-size frame, simulating a double decrement — the
// seeded accounting bug behind -audit-drill. It reports whether the
// corruption was applied (false for AQM disciplines, which have no
// drill hook).
func (d *Dumbbell) DrillCorruptQueue() bool {
	q := d.port.Queue()
	if aq, ok := q.(*AuditedQueue); ok {
		q = aq.Inner()
	}
	if dt, ok := q.(*DropTailQueue); ok {
		dt.DrillCorrupt(units.MSS + packet.HeaderBytes)
		return true
	}
	return false
}

// SendAck is the receiver-side entry point: the ACK returns to the
// sender over the uncongested reverse path after the flow's base-RTT
// delay.
func (d *Dumbbell) SendAck(p packet.Packet) {
	d.eng.After(d.revDelay[p.Flow], d.revPool.get(d.ackFn, p).fn)
}
