package telemetry

import (
	"bytes"
	"errors"
	"strings"
	"sync"
	"testing"

	"ccatscale/internal/cca"
	"ccatscale/internal/schema"
	"ccatscale/internal/sim"
	"ccatscale/internal/units"
)

// recorder captures emitted events for assertions.
type recorder struct {
	mu  sync.Mutex
	evs []Event
}

func (r *recorder) Emit(ev Event) {
	r.mu.Lock()
	r.evs = append(r.evs, ev)
	r.mu.Unlock()
}

func TestKindStringsAreUnique(t *testing.T) {
	seen := map[string]Kind{}
	for k := KindRunStart; k <= KindDegraded; k++ {
		s := k.String()
		if s == "unknown" {
			t.Fatalf("kind %d has no name", k)
		}
		if prev, dup := seen[s]; dup {
			t.Fatalf("kinds %d and %d share the name %q", prev, k, s)
		}
		seen[s] = k
	}
	if got := Kind(200).String(); got != "unknown" {
		t.Fatalf("out-of-range kind = %q, want unknown", got)
	}
}

func TestMultiCollapses(t *testing.T) {
	if Multi() != nil {
		t.Fatal("Multi() should be nil")
	}
	if Multi(nil, nil) != nil {
		t.Fatal("Multi(nil, nil) should be nil")
	}
	r := &recorder{}
	if got := Multi(nil, r, nil); got != Collector(r) {
		t.Fatal("Multi with one live target should return it unwrapped")
	}
	r2 := &recorder{}
	m := Multi(r, nil, r2)
	m.Emit(Event{Kind: KindLoss, A: 7})
	if len(r.evs) != 1 || len(r2.evs) != 1 || r.evs[0].A != 7 || r2.evs[0].A != 7 {
		t.Fatalf("fan-out did not reach both collectors: %v / %v", r.evs, r2.evs)
	}
}

func TestRegistryInstruments(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("hits")
	c.Inc()
	c.Add(4)
	if got := r.Counter("hits").Load(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}

	g := r.Gauge("depth")
	g.Set(10)
	g.Max(3) // lower: no-op
	g.Max(42)
	if got := r.Gauge("depth").Load(); got != 42 {
		t.Fatalf("gauge = %d, want 42", got)
	}

	h := r.Histogram("lat", []int64{10, 100})
	for _, v := range []int64{1, 9, 10, 11, 1000} {
		h.Observe(v)
	}
	if h.Count() != 5 || h.Sum() != 1031 {
		t.Fatalf("histogram count/sum = %d/%d, want 5/1031", h.Count(), h.Sum())
	}

	snap := r.Snapshot()
	if snap.SchemaVersion != schema.Version {
		t.Fatalf("snapshot schema = %q, want %q", snap.SchemaVersion, schema.Version)
	}
	if snap.Counters["hits"] != 5 || snap.Gauges["depth"] != 42 {
		t.Fatalf("snapshot values wrong: %+v", snap)
	}
	hs := snap.Histograms["lat"]
	want := []int64{3, 1, 1} // ≤10, ≤100, overflow
	for i, b := range want {
		if hs.Buckets[i] != b {
			t.Fatalf("bucket %d = %d, want %d (%+v)", i, hs.Buckets[i], b, hs)
		}
	}
}

func TestNilRegistryIsDisabledButUsable(t *testing.T) {
	var r *Registry
	r.Counter("x").Inc()
	r.Gauge("y").Set(9)
	r.Histogram("z", []int64{1}).Observe(2)
	snap := r.Snapshot()
	if len(snap.Counters) != 0 || len(snap.Gauges) != 0 || len(snap.Histograms) != 0 {
		t.Fatalf("nil registry snapshot should be empty: %+v", snap)
	}
	if r.Instrument() != nil {
		t.Fatal("nil registry Instrument() should be nil")
	}
}

func TestInstrumentFoldsEvents(t *testing.T) {
	r := NewRegistry()
	coll := r.Instrument()
	coll.Emit(Event{Kind: KindRunStart})
	coll.Emit(Event{Kind: KindLoss})
	coll.Emit(Event{Kind: KindLoss})
	coll.Emit(Event{Kind: KindCCAState})
	coll.Emit(Event{Kind: KindQueueWatermark, A: 100, B: 2})
	coll.Emit(Event{Kind: KindQueueWatermark, A: 50, B: 1}) // lower: peak holds
	coll.Emit(Event{Kind: KindEngineSample, A: 12345})
	coll.Emit(Event{Kind: KindDegraded})
	coll.Emit(Event{Kind: KindRunEnd})

	snap := r.Snapshot()
	checks := map[string]int64{
		"runs_started":                1,
		"runs_ended":                  1,
		"loss_episodes_total":         2,
		"cca_transitions_total":       1,
		"degradations_total":          1,
		"telemetry_events_total/loss": 2,
	}
	for name, want := range checks {
		if got := snap.Counters[name]; got != want {
			t.Errorf("counter %s = %d, want %d", name, got, want)
		}
	}
	if snap.Gauges["queue_bytes_peak"] != 100 || snap.Gauges["queue_packets_peak"] != 2 {
		t.Errorf("queue peaks = %d/%d, want 100/2",
			snap.Gauges["queue_bytes_peak"], snap.Gauges["queue_packets_peak"])
	}
	if snap.Gauges["engine_events_processed"] != 12345 {
		t.Errorf("engine gauge = %d, want 12345", snap.Gauges["engine_events_processed"])
	}
}

func TestStreamRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	s, err := NewStream(&buf, "unit test")
	if err != nil {
		t.Fatal(err)
	}
	coll := s.Collector("run-a")
	coll.Emit(Event{Time: 2 * sim.Second, Kind: KindLoss, Flow: 3, CCA: "reno", Label: "rto", A: 9000, B: 4500})
	coll.Emit(Event{Time: 3 * sim.Second, Kind: KindCCAState, Flow: 0, CCA: "bbr", Prev: "startup", Label: "drain"})
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}

	var recs []StreamRecord
	if err := ParseStream(bytes.NewReader(buf.Bytes()), func(rec StreamRecord) error {
		recs = append(recs, rec)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("parsed %d records, want 2", len(recs))
	}
	r0 := recs[0]
	if r0.Kind != "loss" || r0.Run != "run-a" || r0.T != 2.0 || r0.Flow != 3 ||
		r0.CCA != "reno" || r0.Label != "rto" || r0.A != 9000 || r0.B != 4500 {
		t.Fatalf("record 0 mismatch: %+v", r0)
	}
	if recs[1].Prev != "startup" || recs[1].Label != "drain" {
		t.Fatalf("record 1 mismatch: %+v", recs[1])
	}
}

func TestParseStreamRejectsBadInput(t *testing.T) {
	cases := []struct {
		name, input, wantErr string
	}{
		{"empty", "", "empty stream"},
		{"no header", `{"k":"loss"}`, "does not start with a header"},
		{"future major", `{"k":"header","schema_version":"99.0","tool":"ccatscale"}`, "schema"},
		{"garbage", "not json\n", "line 1"},
	}
	for _, tc := range cases {
		err := ParseStream(strings.NewReader(tc.input), func(StreamRecord) error { return nil })
		if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
			t.Errorf("%s: err = %v, want containing %q", tc.name, err, tc.wantErr)
		}
	}
}

// failWriter fails every write after the first n bytes.
type failWriter struct{ n int }

func (w *failWriter) Write(p []byte) (int, error) {
	if w.n <= 0 {
		return 0, errors.New("disk full")
	}
	w.n -= len(p)
	return len(p), nil
}

func TestStreamErrorIsSticky(t *testing.T) {
	s, err := NewStream(&failWriter{n: 1 << 10}, "x")
	if err != nil {
		t.Fatal(err)
	}
	coll := s.Collector("r")
	// Overflow the 64 KiB buffer so writes hit the failing writer.
	for i := 0; i < 5000; i++ {
		coll.Emit(Event{Kind: KindLoss, Label: "fast-recovery", CCA: "cubic", A: 1 << 40, B: 1 << 40})
	}
	s.Flush()
	if s.Err() == nil {
		t.Fatal("expected sticky write error")
	}
	// Later emissions and flushes stay no-ops reporting the same error.
	coll.Emit(Event{Kind: KindLoss})
	if err := s.Flush(); err == nil || !strings.Contains(err.Error(), "disk full") {
		t.Fatalf("sticky error lost: %v", err)
	}
}

// fakeStateCCA is a minimal named-state CCA for wrapper tests.
type fakeStateCCA struct {
	state string
}

func (f *fakeStateCCA) Name() string                              { return "fake" }
func (f *fakeStateCCA) OnAck(cca.AckEvent)                        { f.state = "acked" }
func (f *fakeStateCCA) OnEnterRecovery(sim.Time, units.ByteCount) { f.state = "recovery" }
func (f *fakeStateCCA) OnExitRecovery(sim.Time)                   { f.state = "open" }
func (f *fakeStateCCA) OnRTO(sim.Time)                            { f.state = "loss" }
func (f *fakeStateCCA) OnECNMark(sim.Time, units.ByteCount)       { f.state = "marked" }
func (f *fakeStateCCA) Cwnd() units.ByteCount                     { return 10 * 1460 }
func (f *fakeStateCCA) PacingRate() units.Bandwidth               { return 0 }
func (f *fakeStateCCA) State() string                             { return f.state }

// fakeRecoveryCCA adds the RecoveryController marker.
type fakeRecoveryCCA struct{ fakeStateCCA }

func (f *fakeRecoveryCCA) ControlsRecovery() {}

// statelessCCA has no named state.
type statelessCCA struct{}

func (statelessCCA) Name() string                              { return "plain" }
func (statelessCCA) OnAck(cca.AckEvent)                        {}
func (statelessCCA) OnEnterRecovery(sim.Time, units.ByteCount) {}
func (statelessCCA) OnExitRecovery(sim.Time)                   {}
func (statelessCCA) OnRTO(sim.Time)                            {}
func (statelessCCA) OnECNMark(sim.Time, units.ByteCount)       {}
func (statelessCCA) Cwnd() units.ByteCount                     { return 1460 }
func (statelessCCA) PacingRate() units.Bandwidth               { return 0 }

func TestWrapCCAPassthrough(t *testing.T) {
	ctrl := &fakeStateCCA{state: "startup"}
	if got := WrapCCA(ctrl, 0, nil); got != cca.CCA(ctrl) {
		t.Fatal("nil collector should return the controller unwrapped")
	}
	r := &recorder{}
	var plain statelessCCA
	if got := WrapCCA(plain, 0, r); got != cca.CCA(plain) {
		t.Fatal("stateless CCA should return unwrapped even with a collector")
	}
}

func TestWrapCCAEmitsTransitions(t *testing.T) {
	ctrl := &fakeStateCCA{state: "startup"}
	r := &recorder{}
	w := WrapCCA(ctrl, 5, r)
	if w == cca.CCA(ctrl) {
		t.Fatal("named-state CCA with a collector should be wrapped")
	}
	if _, controls := w.(cca.RecoveryController); controls {
		t.Fatal("wrapper must not invent the RecoveryController marker")
	}

	w.OnEnterRecovery(sim.Second, 100)
	w.OnEnterRecovery(2*sim.Second, 100) // same state: no event
	w.OnRTO(3 * sim.Second)
	if len(r.evs) != 2 {
		t.Fatalf("got %d events, want 2: %+v", len(r.evs), r.evs)
	}
	first := r.evs[0]
	if first.Kind != KindCCAState || first.Flow != 5 || first.CCA != "fake" ||
		first.Prev != "startup" || first.Label != "recovery" || first.Time != sim.Second {
		t.Fatalf("transition event mismatch: %+v", first)
	}
	if r.evs[1].Prev != "recovery" || r.evs[1].Label != "loss" {
		t.Fatalf("second transition mismatch: %+v", r.evs[1])
	}
}

func TestWrapCCAPreservesRecoveryController(t *testing.T) {
	ctrl := &fakeRecoveryCCA{fakeStateCCA{state: "startup"}}
	r := &recorder{}
	w := WrapCCA(ctrl, 0, r)
	if _, controls := w.(cca.RecoveryController); !controls {
		t.Fatal("wrapper dropped the RecoveryController marker")
	}
	u, ok := w.(interface{ Unwrap() cca.CCA })
	if !ok || u.Unwrap() != cca.CCA(ctrl) {
		t.Fatal("wrapper chain must stay walkable via Unwrap")
	}
}
