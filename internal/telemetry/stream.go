package telemetry

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sync"

	"ccatscale/internal/schema"
)

// StreamHeader is the first line of a telemetry JSONL stream. It is the
// only line carrying the schema version; every following line is one
// event record.
type StreamHeader struct {
	SchemaVersion string `json:"schema_version"`
	Kind          string `json:"k"` // always "header"
	Tool          string `json:"tool"`
	Label         string `json:"label,omitempty"`
}

// StreamRecord is one serialized event line. The generic A/B payload
// carries the kind-specific numbers documented on the Kind constants
// (queue-watermark: bytes/packets; loss: cwnd/in-flight; run-end:
// events/goodput-bps; …).
type StreamRecord struct {
	Kind  string  `json:"k"`
	Run   string  `json:"run,omitempty"`
	T     float64 `json:"t"` // virtual seconds
	Flow  int32   `json:"flow"`
	CCA   string  `json:"cca,omitempty"`
	Label string  `json:"label,omitempty"`
	Prev  string  `json:"prev,omitempty"`
	A     int64   `json:"a"`
	B     int64   `json:"b"`
}

// Stream serializes telemetry events as JSON Lines: one header record,
// then one object per event. It is safe for concurrent emitters (a
// parallel sweep funnels every run's events through one stream); lines
// are written atomically under a mutex through a buffered writer, so
// interleaved runs never corrupt each other's records.
//
// Write errors are sticky: the first error latches, later emissions
// become no-ops, and Close reports it — a full disk degrades telemetry,
// never the experiment.
type Stream struct {
	mu  sync.Mutex
	w   *bufio.Writer
	err error
}

// NewStream wraps w and writes the stream header. label is free-form
// provenance (e.g. the sweep's command line) recorded in the header.
func NewStream(w io.Writer, label string) (*Stream, error) {
	s := &Stream{w: bufio.NewWriterSize(w, 64<<10)}
	hdr, err := json.Marshal(StreamHeader{
		SchemaVersion: schema.Version,
		Kind:          "header",
		Tool:          "ccatscale",
		Label:         label,
	})
	if err != nil {
		return nil, err
	}
	if _, err := s.w.Write(append(hdr, '\n')); err != nil {
		return nil, fmt.Errorf("telemetry: writing stream header: %w", err)
	}
	return s, nil
}

// Collector returns a collector that tags every event with the given
// run label before serializing it to the stream. Multiple collectors
// from one stream may emit concurrently.
func (s *Stream) Collector(run string) Collector {
	return &streamCollector{s: s, run: run}
}

// Flush drains the buffer to the underlying writer.
func (s *Stream) Flush() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.err != nil {
		return s.err
	}
	s.err = s.w.Flush()
	return s.err
}

// Err returns the sticky write error, if any.
func (s *Stream) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}

func (s *Stream) emit(run string, ev Event) {
	rec := StreamRecord{
		Kind:  ev.Kind.String(),
		Run:   run,
		T:     ev.Time.Seconds(),
		Flow:  ev.Flow,
		CCA:   ev.CCA,
		Label: ev.Label,
		Prev:  ev.Prev,
		A:     ev.A,
		B:     ev.B,
	}
	line, err := json.Marshal(rec)
	if err != nil { // flat struct of scalars; cannot fail, but stay honest
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.err != nil {
		return
	}
	if _, err := s.w.Write(append(line, '\n')); err != nil {
		s.err = err
	}
}

type streamCollector struct {
	s   *Stream
	run string
}

func (c *streamCollector) Emit(ev Event) { c.s.emit(c.run, ev) }

// ParseStream reads a telemetry JSONL stream: it validates the header's
// schema version (rejecting unknown majors with the schema package's
// error) and invokes fn for each event record. Blank lines are skipped.
func ParseStream(r io.Reader, fn func(StreamRecord) error) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64<<10), 16<<20)
	line := 0
	sawHeader := false
	for sc.Scan() {
		line++
		raw := sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		if !sawHeader {
			var hdr StreamHeader
			if err := json.Unmarshal(raw, &hdr); err != nil {
				return fmt.Errorf("telemetry: line %d: %w", line, err)
			}
			if hdr.Kind != "header" {
				return fmt.Errorf("telemetry: line %d: stream does not start with a header record", line)
			}
			if err := schema.Check(hdr.SchemaVersion); err != nil {
				return err
			}
			sawHeader = true
			continue
		}
		var rec StreamRecord
		if err := json.Unmarshal(raw, &rec); err != nil {
			return fmt.Errorf("telemetry: line %d: %w", line, err)
		}
		if err := fn(rec); err != nil {
			return err
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if !sawHeader {
		return fmt.Errorf("telemetry: empty stream (no header record)")
	}
	return nil
}
