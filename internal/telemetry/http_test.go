package telemetry

import (
	"net/http"
	"net/http/httptest"
	"testing"
)

func TestHTTPMetricsCountsAndClassifies(t *testing.T) {
	reg := NewRegistry()
	h := HTTPMetrics(reg, "POST /v1/batches", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Query().Get("full") == "1" {
			http.Error(w, "queue full", http.StatusTooManyRequests)
			return
		}
		w.Write([]byte("ok")) // implicit 200 via Write
	}))
	for i := 0; i < 3; i++ {
		rr := httptest.NewRecorder()
		h.ServeHTTP(rr, httptest.NewRequest("POST", "/v1/batches", nil))
		if rr.Code != http.StatusOK {
			t.Fatalf("status = %d", rr.Code)
		}
	}
	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest("POST", "/v1/batches?full=1", nil))
	if rr.Code != http.StatusTooManyRequests {
		t.Fatalf("status = %d", rr.Code)
	}

	snap := reg.Snapshot()
	if got := snap.Counters["http_requests_total/POST /v1/batches"]; got != 4 {
		t.Fatalf("requests = %d, want 4", got)
	}
	if got := snap.Counters["http_responses_total/POST /v1/batches/2xx"]; got != 3 {
		t.Fatalf("2xx = %d, want 3", got)
	}
	if got := snap.Counters["http_responses_total/POST /v1/batches/4xx"]; got != 1 {
		t.Fatalf("4xx = %d, want 1", got)
	}
	if got := snap.Gauges["http_inflight/POST /v1/batches"]; got != 0 {
		t.Fatalf("inflight after completion = %d, want 0", got)
	}
	hs, ok := snap.Histograms["http_latency_ms/POST /v1/batches"]
	if !ok || hs.Count != 4 {
		t.Fatalf("latency histogram = %+v", hs)
	}
}

func TestHTTPMetricsInflightDuringRequest(t *testing.T) {
	reg := NewRegistry()
	var seen int64
	h := HTTPMetrics(reg, "GET /x", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		seen = reg.Gauge("http_inflight/GET /x").Load()
	}))
	h.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest("GET", "/x", nil))
	if seen != 1 {
		t.Fatalf("inflight during request = %d, want 1", seen)
	}
}

func TestHTTPMetricsPreservesFlusher(t *testing.T) {
	reg := NewRegistry()
	flushed := false
	h := HTTPMetrics(reg, "GET /v1/events", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		f, ok := w.(http.Flusher)
		if !ok {
			t.Fatal("wrapped writer lost http.Flusher")
		}
		w.Write([]byte("event\n"))
		f.Flush()
		flushed = true
	}))
	h.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest("GET", "/v1/events", nil))
	if !flushed {
		t.Fatal("handler did not run")
	}
}

func TestHTTPMetricsNilRegistryPassesThrough(t *testing.T) {
	inner := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {})
	if got := HTTPMetrics(nil, "GET /x", inner); got == nil {
		t.Fatal("nil registry returned nil handler")
	}
}

func TestGaugeAdd(t *testing.T) {
	var g Gauge
	g.Add(5)
	g.Add(-2)
	if g.Load() != 3 {
		t.Fatalf("gauge = %d, want 3", g.Load())
	}
}
