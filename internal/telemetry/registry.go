package telemetry

import (
	"sort"
	"sync"
	"sync/atomic"

	"ccatscale/internal/schema"
)

// Counter is a monotonically increasing atomic counter. The zero value
// is ready to use; Add and Inc are safe from concurrent runs and never
// allocate.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n must be non-negative; this is not checked on the hot
// path).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Load returns the current value.
func (c *Counter) Load() int64 { return c.v.Load() }

// Gauge is an atomic last-value cell. The zero value is ready to use.
type Gauge struct {
	v atomic.Int64
}

// Set stores n.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add adjusts the gauge by delta (negative to decrement) — the shape
// in-flight tracking needs.
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Max raises the gauge to n if n is larger (a high-water-mark update).
func (g *Gauge) Max(n int64) {
	for {
		cur := g.v.Load()
		if n <= cur {
			return
		}
		if g.v.CompareAndSwap(cur, n) {
			return
		}
	}
}

// Load returns the current value.
func (g *Gauge) Load() int64 { return g.v.Load() }

// Histogram counts observations into fixed buckets with atomic cells.
// Bounds are inclusive upper edges in ascending order; one implicit
// overflow bucket catches everything above the last bound. Observe is
// lock-free and allocation-free.
type Histogram struct {
	bounds  []int64
	buckets []atomic.Int64
	count   atomic.Int64
	sum     atomic.Int64
}

// NewHistogram builds a histogram over the given ascending inclusive
// upper bounds.
func NewHistogram(bounds []int64) *Histogram {
	b := make([]int64, len(bounds))
	copy(b, bounds)
	return &Histogram{bounds: b, buckets: make([]atomic.Int64, len(b)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v int64) {
	i := sort.Search(len(h.bounds), func(i int) bool { return v <= h.bounds[i] })
	h.buckets[i].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of observed values.
func (h *Histogram) Sum() int64 { return h.sum.Load() }

// Registry is a named collection of counters, gauges, and histograms.
// Get-or-create accessors take a lock; callers on hot paths resolve
// their instrument once and hold the pointer, after which every update
// is a single atomic op. A nil *Registry is a valid "disabled"
// registry: accessors return unregistered instruments that still work
// but appear in no snapshot, so instrumented code needs no nil checks
// beyond its Collector guard.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   map[string]*Counter{},
		gauges:     map[string]*Gauge{},
		histograms: map[string]*Histogram{},
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return &Counter{}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return &Gauge{}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given
// bounds on first use (later calls ignore bounds).
func (r *Registry) Histogram(name string, bounds []int64) *Histogram {
	if r == nil {
		return NewHistogram(bounds)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.histograms[name]
	if !ok {
		h = NewHistogram(bounds)
		r.histograms[name] = h
	}
	return h
}

// HistogramSnapshot is one histogram's state in a Snapshot.
type HistogramSnapshot struct {
	Bounds  []int64 `json:"bounds"`
	Buckets []int64 `json:"buckets"`
	Count   int64   `json:"count"`
	Sum     int64   `json:"sum"`
}

// Snapshot is a point-in-time copy of a registry, shaped for JSON
// (the /metricsz endpoint and tests). Maps iterate non-deterministically
// but encoding/json sorts object keys, so serialized snapshots are
// stable.
type Snapshot struct {
	SchemaVersion string                       `json:"schema_version"`
	Counters      map[string]int64             `json:"counters"`
	Gauges        map[string]int64             `json:"gauges"`
	Histograms    map[string]HistogramSnapshot `json:"histograms,omitempty"`
}

// Snapshot copies the registry's current values.
func (r *Registry) Snapshot() Snapshot {
	snap := Snapshot{
		SchemaVersion: schema.Version,
		Counters:      map[string]int64{},
		Gauges:        map[string]int64{},
	}
	if r == nil {
		return snap
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for name, c := range r.counters {
		snap.Counters[name] = c.Load()
	}
	for name, g := range r.gauges {
		snap.Gauges[name] = g.Load()
	}
	if len(r.histograms) > 0 {
		snap.Histograms = map[string]HistogramSnapshot{}
		for name, h := range r.histograms {
			hs := HistogramSnapshot{
				Bounds:  append([]int64(nil), h.bounds...),
				Buckets: make([]int64, len(h.buckets)),
				Count:   h.count.Load(),
				Sum:     h.sum.Load(),
			}
			for i := range h.buckets {
				hs.Buckets[i] = h.buckets[i].Load()
			}
			snap.Histograms[name] = hs
		}
	}
	return snap
}

// Instrument returns a Collector that folds the event stream into the
// registry: one "telemetry_events_total/<kind>" counter per kind, plus
// derived gauges — peak queue occupancy, engine progress, loss and
// state-transition totals. It is the bridge between the event stream
// and the /metricsz snapshot.
func (r *Registry) Instrument() Collector {
	if r == nil {
		return nil
	}
	// Resolve every instrument once; Emit then touches only atomics.
	perKind := [KindDegraded + 1]*Counter{}
	for k := KindRunStart; k <= KindDegraded; k++ {
		perKind[k] = r.Counter("telemetry_events_total/" + k.String())
	}
	var (
		queueBytesMax = r.Gauge("queue_bytes_peak")
		queuePktsMax  = r.Gauge("queue_packets_peak")
		engineEvents  = r.Gauge("engine_events_processed")
		runsStarted   = r.Counter("runs_started")
		runsEnded     = r.Counter("runs_ended")
		losses        = r.Counter("loss_episodes_total")
		transitions   = r.Counter("cca_transitions_total")
		degradations  = r.Counter("degradations_total")
	)
	return CollectorFunc(func(ev Event) {
		if int(ev.Kind) < len(perKind) && perKind[ev.Kind] != nil {
			perKind[ev.Kind].Inc()
		}
		switch ev.Kind {
		case KindRunStart:
			runsStarted.Inc()
		case KindRunEnd:
			runsEnded.Inc()
		case KindLoss:
			losses.Inc()
		case KindCCAState:
			transitions.Inc()
		case KindQueueWatermark:
			queueBytesMax.Max(ev.A)
			queuePktsMax.Max(ev.B)
		case KindEngineSample:
			engineEvents.Set(ev.A)
		case KindDegraded:
			degradations.Inc()
		}
	})
}
