// Package telemetry is the live observability layer of the experiment
// harness: a run-scoped event stream (flow lifecycle, CCA state
// transitions, loss/recovery episodes, queue-occupancy watermarks,
// budget-degradation decisions) and an atomic metrics registry for
// process-wide counters, gauges, and histograms.
//
// The design constraint is that observability must never perturb the
// observed system. Every instrumentation site in sim, netem, tcp, cca,
// and core guards on a nil Collector:
//
//	if c != nil {
//		c.Emit(telemetry.Event{...})
//	}
//
// so a disabled run (the default) pays one predictable branch per site,
// allocates nothing, and stays bit-identical to an uninstrumented
// build — cmd/fprint verifies this. Collectors only observe: they
// receive value-typed events after the simulation state they describe
// has been committed, and nothing a collector does can feed back into
// the event loop.
package telemetry

import (
	"ccatscale/internal/sim"
)

// Kind discriminates telemetry events.
type Kind uint8

const (
	// KindRunStart opens a run: A = flow count, B = seed (as int64),
	// Label = fidelity tier rendered by the emitter.
	KindRunStart Kind = iota
	// KindRunEnd closes a run: A = engine events processed, B =
	// aggregate goodput in bits/sec.
	KindRunEnd
	// KindFlowStart marks a flow's first transmission: Flow, CCA, and
	// A = initial cwnd in bytes.
	KindFlowStart
	// KindFlowEnd reports a flow's window metrics at run end: Flow,
	// CCA, A = goodput in bits/sec, B = window drops.
	KindFlowEnd
	// KindCCAState is a congestion-control state transition (BBR v1/v2
	// expose one): Flow, CCA, Prev = old state, Label = new state.
	KindCCAState
	// KindLoss is a loss/recovery episode: Flow, CCA, Label =
	// "fast-recovery" or "rto", A = cwnd bytes before the episode's
	// multiplicative decrease, B = in-flight bytes.
	KindLoss
	// KindRecoveryExit marks the end of a fast-recovery episode: Flow,
	// A = cwnd bytes after recovery.
	KindRecoveryExit
	// KindQueueWatermark is a new bottleneck queue occupancy high-water
	// mark, observed at a sampling point: A = bytes, B = packets.
	KindQueueWatermark
	// KindEngineSample is a periodic engine progress sample: A =
	// events processed, B = live pending events.
	KindEngineSample
	// KindLinkDown / KindLinkUp bracket a scheduled outage window on
	// the forward path: Time = the exact window boundary, A = window
	// index in the schedule, B = window length in virtual nanoseconds.
	KindLinkDown
	KindLinkUp
	// KindDegraded records a budget-governance fidelity decision:
	// Label = stage ("admission" or "retry"), A = the tier the config
	// will run at, B = the config's sweep index (-1 outside a sweep).
	KindDegraded
)

// String names the kind as it appears in the JSONL stream.
func (k Kind) String() string {
	switch k {
	case KindRunStart:
		return "run-start"
	case KindRunEnd:
		return "run-end"
	case KindFlowStart:
		return "flow-start"
	case KindFlowEnd:
		return "flow-end"
	case KindCCAState:
		return "cca-state"
	case KindLoss:
		return "loss"
	case KindRecoveryExit:
		return "recovery-exit"
	case KindQueueWatermark:
		return "queue-watermark"
	case KindEngineSample:
		return "engine-sample"
	case KindLinkDown:
		return "link-down"
	case KindLinkUp:
		return "link-up"
	case KindDegraded:
		return "degraded"
	}
	return "unknown"
}

// Event is one telemetry observation. It is a flat value type so
// emitting one costs a struct fill and an interface call — no heap
// allocation at the emission site. The string fields always reference
// static or long-lived strings (CCA names, state names, kind labels),
// never per-event formatting.
//
// Field meaning is kind-specific; see the Kind constants.
type Event struct {
	// Time is the virtual timestamp of the observation.
	Time sim.Time
	// Kind discriminates the payload.
	Kind Kind
	// Flow is the flow index, or -1 for run- and link-scoped events.
	Flow int32
	// CCA is the flow's algorithm name, when flow-scoped.
	CCA string
	// Label is the kind-specific name payload (new state, loss kind,
	// degradation stage).
	Label string
	// Prev is the previous state for KindCCAState.
	Prev string
	// A and B are the kind-specific numeric payload.
	A, B int64
}

// Collector receives telemetry events. Implementations must treat the
// event as read-only and must not call back into the simulation; they
// may be invoked from concurrent runs of a sweep and must be safe for
// that. A nil Collector means telemetry is off — every emission site
// checks for nil before constructing an event.
type Collector interface {
	Emit(ev Event)
}

// CollectorFunc adapts a function to the Collector interface.
type CollectorFunc func(ev Event)

// Emit implements Collector.
func (f CollectorFunc) Emit(ev Event) { f(ev) }

// Multi fans every event out to each non-nil collector in order. A
// Multi of zero or one effective targets collapses to nil or the
// target itself, so emission sites never pay for an empty fan-out.
func Multi(cs ...Collector) Collector {
	var live []Collector
	for _, c := range cs {
		if c != nil {
			live = append(live, c)
		}
	}
	switch len(live) {
	case 0:
		return nil
	case 1:
		return live[0]
	}
	return multi(live)
}

type multi []Collector

func (m multi) Emit(ev Event) {
	for _, c := range m {
		c.Emit(ev)
	}
}
