package telemetry

import (
	"net/http"
	"strconv"
	"time"
)

// httpLatencyBounds are the inclusive millisecond upper edges of the
// request-latency histogram: fine enough to separate cache-served from
// computed responses, coarse enough to stay a handful of atomics.
var httpLatencyBounds = []int64{1, 5, 20, 100, 500, 2000, 10_000, 60_000}

// HTTPMetrics wraps an http.Handler with per-route instrumentation in
// reg: a request counter, per-status-class counters, an in-flight
// gauge, and a latency histogram, all named under the given route label
// (use the mux pattern, not the raw URL, or cardinality explodes).
// Instruments resolve once at wrap time; per request the middleware
// costs a few atomic ops.
func HTTPMetrics(reg *Registry, route string, next http.Handler) http.Handler {
	if reg == nil {
		return next
	}
	var (
		requests = reg.Counter("http_requests_total/" + route)
		inflight = reg.Gauge("http_inflight/" + route)
		latency  = reg.Histogram("http_latency_ms/"+route, httpLatencyBounds)
		classes  = [6]*Counter{}
	)
	for c := 1; c <= 5; c++ {
		classes[c] = reg.Counter("http_responses_total/" + route + "/" + strconv.Itoa(c) + "xx")
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		requests.Inc()
		inflight.Add(1)
		start := time.Now()
		sw := &statusWriter{ResponseWriter: w}
		defer func() {
			inflight.Add(-1)
			latency.Observe(time.Since(start).Milliseconds())
			if c := sw.status / 100; c >= 1 && c <= 5 {
				classes[c].Inc()
			}
		}()
		next.ServeHTTP(sw, r)
	})
}

// statusWriter records the response status. It forwards Flush so
// streaming endpoints (the server's per-job event feed) keep working
// through the wrapper.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	return w.ResponseWriter.Write(b)
}

func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}
