package telemetry

import (
	"ccatscale/internal/cca"
	"ccatscale/internal/sim"
	"ccatscale/internal/units"
)

// stateMachine matches CCAs that expose a named state (BBR v1/v2). It
// mirrors audit.StateMachine without importing the audit package.
type stateMachine interface {
	State() string
}

// unwrapper matches transparent CCA wrappers (the audit wrapper) so the
// telemetry observer can find the state machine behind them.
type unwrapper interface {
	Unwrap() cca.CCA
}

// findStateMachine walks a wrapper chain looking for a named-state CCA.
func findStateMachine(ctrl cca.CCA) stateMachine {
	for ctrl != nil {
		if sm, ok := ctrl.(stateMachine); ok {
			return sm
		}
		u, ok := ctrl.(unwrapper)
		if !ok {
			return nil
		}
		ctrl = u.Unwrap()
	}
	return nil
}

// WrapCCA observes ctrl's state transitions for one flow, emitting a
// KindCCAState event after any callback that changed the named state.
// It is fully transparent: every decision still comes from the wrapped
// controller, and the cca.RecoveryController marker is preserved so the
// transport's recovery behavior is unchanged.
//
// CCAs without a named state (Reno, Cubic, Vegas), and any call with a
// nil collector, return ctrl unwrapped — zero overhead.
func WrapCCA(ctrl cca.CCA, flow int32, c Collector) cca.CCA {
	if c == nil {
		return ctrl
	}
	sm := findStateMachine(ctrl)
	if sm == nil {
		return ctrl
	}
	w := &observedCCA{inner: ctrl, sm: sm, c: c, flow: flow, last: sm.State()}
	if _, controls := ctrl.(cca.RecoveryController); controls {
		return &observedRecoveryCCA{observedCCA: w}
	}
	return w
}

// observedCCA forwards every callback and emits a state-transition
// event when the named state changed across it.
type observedCCA struct {
	inner cca.CCA
	sm    stateMachine
	c     Collector
	flow  int32
	last  string
}

// observedRecoveryCCA re-exposes the RecoveryController marker.
type observedRecoveryCCA struct {
	*observedCCA
}

// ControlsRecovery implements cca.RecoveryController.
func (w *observedRecoveryCCA) ControlsRecovery() {}

// Unwrap returns the observed controller, keeping the wrapper chain
// walkable for further instrumentation.
func (w *observedCCA) Unwrap() cca.CCA { return w.inner }

func (w *observedCCA) Name() string { return w.inner.Name() }

func (w *observedCCA) Cwnd() units.ByteCount { return w.inner.Cwnd() }

func (w *observedCCA) PacingRate() units.Bandwidth { return w.inner.PacingRate() }

func (w *observedCCA) State() string { return w.sm.State() }

func (w *observedCCA) emitTransition(now sim.Time) {
	state := w.sm.State()
	if state == w.last {
		return
	}
	w.c.Emit(Event{
		Time:  now,
		Kind:  KindCCAState,
		Flow:  w.flow,
		CCA:   w.inner.Name(),
		Prev:  w.last,
		Label: state,
	})
	w.last = state
}

func (w *observedCCA) OnAck(ev cca.AckEvent) {
	w.inner.OnAck(ev)
	w.emitTransition(ev.Now)
}

func (w *observedCCA) OnEnterRecovery(now sim.Time, inFlight units.ByteCount) {
	w.inner.OnEnterRecovery(now, inFlight)
	w.emitTransition(now)
}

func (w *observedCCA) OnExitRecovery(now sim.Time) {
	w.inner.OnExitRecovery(now)
	w.emitTransition(now)
}

func (w *observedCCA) OnRTO(now sim.Time) {
	w.inner.OnRTO(now)
	w.emitTransition(now)
}

func (w *observedCCA) OnECNMark(now sim.Time, inFlight units.ByteCount) {
	w.inner.OnECNMark(now, inFlight)
	w.emitTransition(now)
}
