package trace

import (
	"bytes"
	"strings"
	"testing"

	"ccatscale/internal/packet"
	"ccatscale/internal/sim"
	"ccatscale/internal/units"
)

func TestThroughputSeriesRates(t *testing.T) {
	eng := sim.NewEngine()
	var delivered units.ByteCount
	// A synthetic flow delivering 1 MB/s.
	var feed func()
	feed = func() {
		delivered += 100 * units.KB
		eng.After(100*sim.Millisecond, feed)
	}
	eng.Schedule(0, feed)

	ts := NewThroughputSeries(eng, sim.Second, []string{"flow0"},
		func() []units.ByteCount { return []units.ByteCount{delivered} }, true, nil)
	ts.Start(0)
	eng.Run(5 * sim.Second)
	pts := ts.Points()
	if len(pts) < 4 {
		t.Fatalf("points = %d", len(pts))
	}
	for _, p := range pts {
		// 1 MB/s = 8 Mbps ±1 sample of jitter.
		if p.Rates[0] < 7*units.MbitPerSec || p.Rates[0] > 9*units.MbitPerSec {
			t.Fatalf("rate at %v = %v, want ≈8Mbps", p.At, p.Rates[0])
		}
	}
}

func TestThroughputSeriesCSV(t *testing.T) {
	eng := sim.NewEngine()
	var buf bytes.Buffer
	n := units.ByteCount(0)
	ts := NewThroughputSeries(eng, sim.Second, []string{"a", "b"},
		func() []units.ByteCount {
			n += 1000
			return []units.ByteCount{n, 2 * n}
		}, false, &buf)
	ts.Start(0)
	eng.Run(3 * sim.Second)
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if lines[0] != "seconds,a,b" {
		t.Fatalf("header = %q", lines[0])
	}
	if len(lines) < 3 {
		t.Fatalf("lines = %d", len(lines))
	}
	if !strings.HasPrefix(lines[1], "1.000,8000,") {
		t.Fatalf("row = %q", lines[1])
	}
}

func TestThroughputSeriesStop(t *testing.T) {
	eng := sim.NewEngine()
	calls := 0
	ts := NewThroughputSeries(eng, sim.Second, nil,
		func() []units.ByteCount { calls++; return nil }, true, nil)
	ts.Start(0)
	eng.Schedule(2500*sim.Millisecond, ts.Stop)
	eng.Run(10 * sim.Second)
	if calls != 3 { // t=0 baseline, t=1, t=2
		t.Fatalf("calls = %d, want 3", calls)
	}
}

func TestThroughputSeriesDecimation(t *testing.T) {
	eng := sim.NewEngine()
	var delivered units.ByteCount
	var feed func()
	feed = func() {
		delivered += 100 * units.KB // constant 1 MB/s
		eng.After(100*sim.Millisecond, feed)
	}
	eng.Schedule(0, feed)

	ts := NewThroughputSeries(eng, sim.Second, []string{"flow0"},
		func() []units.ByteCount { return []units.ByteCount{delivered} }, true, nil)
	ts.SetMaxPoints(8)
	ts.Start(0)
	// Would be 59 full-resolution samples; each halving doubles the tick
	// interval, so the series settles at 3 halvings by t=60s.
	eng.Run(60 * sim.Second)
	if ts.Decimation() != 8 {
		t.Fatalf("decimation = %d, want 8", ts.Decimation())
	}
	pts := ts.Points()
	if len(pts) == 0 || len(pts) > 8 {
		t.Fatalf("points = %d, want 1..8", len(pts))
	}
	// A constant-rate feed must survive pair averaging unchanged.
	for _, p := range pts {
		if p.Rates[0] < 7*units.MbitPerSec || p.Rates[0] > 9*units.MbitPerSec {
			t.Fatalf("rate at %v = %v, want ≈8Mbps", p.At, p.Rates[0])
		}
	}
	// Timestamps stay strictly increasing through merges.
	for i := 1; i < len(pts); i++ {
		if pts[i].At <= pts[i-1].At {
			t.Fatalf("timestamps not increasing: %v then %v", pts[i-1].At, pts[i].At)
		}
	}
}

func TestThroughputSeriesDecimateAverages(t *testing.T) {
	s := &ThroughputSeries{decimation: 1, interval: sim.Second}
	s.points = []SeriesPoint{
		{At: 1 * sim.Second, Rates: []units.Bandwidth{10}},
		{At: 2 * sim.Second, Rates: []units.Bandwidth{30}},
		{At: 3 * sim.Second, Rates: []units.Bandwidth{50}},
	}
	s.decimate()
	if len(s.points) != 2 {
		t.Fatalf("points = %d, want 2", len(s.points))
	}
	if s.points[0].At != 2*sim.Second || s.points[0].Rates[0] != 20 {
		t.Fatalf("merged point = %+v, want At=2s rate=20", s.points[0])
	}
	if s.points[1].At != 3*sim.Second || s.points[1].Rates[0] != 50 {
		t.Fatalf("odd tail = %+v, want kept as-is", s.points[1])
	}
	if s.interval != 2*sim.Second || s.decimation != 2 {
		t.Fatalf("interval=%v decimation=%d, want 2s and 2", s.interval, s.decimation)
	}
}

func TestQueueLogOverflow(t *testing.T) {
	l := NewQueueLog(2)
	for i := 0; i < 5; i++ {
		l.OnDrop(sim.Time(i)*sim.Second, packet.Packet{})
	}
	if l.TimesLen() != 2 {
		t.Fatalf("TimesLen = %d, want 2", l.TimesLen())
	}
	if l.Overflow() != 3 {
		t.Fatalf("Overflow = %d, want 3", l.Overflow())
	}
	if l.Total() != 5 {
		t.Fatalf("Total = %d, want 5 (counts stay exact)", l.Total())
	}
}

func TestThroughputSeriesValidation(t *testing.T) {
	eng := sim.NewEngine()
	for name, fn := range map[string]func(){
		"zero interval": func() {
			NewThroughputSeries(eng, 0, nil, func() []units.ByteCount { return nil }, false, nil)
		},
		"nil reader": func() { NewThroughputSeries(eng, sim.Second, nil, nil, false, nil) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			fn()
		}()
	}
}
