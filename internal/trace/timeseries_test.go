package trace

import (
	"bytes"
	"strings"
	"testing"

	"ccatscale/internal/sim"
	"ccatscale/internal/units"
)

func TestThroughputSeriesRates(t *testing.T) {
	eng := sim.NewEngine()
	var delivered units.ByteCount
	// A synthetic flow delivering 1 MB/s.
	var feed func()
	feed = func() {
		delivered += 100 * units.KB
		eng.After(100*sim.Millisecond, feed)
	}
	eng.Schedule(0, feed)

	ts := NewThroughputSeries(eng, sim.Second, []string{"flow0"},
		func() []units.ByteCount { return []units.ByteCount{delivered} }, true, nil)
	ts.Start(0)
	eng.Run(5 * sim.Second)
	pts := ts.Points()
	if len(pts) < 4 {
		t.Fatalf("points = %d", len(pts))
	}
	for _, p := range pts {
		// 1 MB/s = 8 Mbps ±1 sample of jitter.
		if p.Rates[0] < 7*units.MbitPerSec || p.Rates[0] > 9*units.MbitPerSec {
			t.Fatalf("rate at %v = %v, want ≈8Mbps", p.At, p.Rates[0])
		}
	}
}

func TestThroughputSeriesCSV(t *testing.T) {
	eng := sim.NewEngine()
	var buf bytes.Buffer
	n := units.ByteCount(0)
	ts := NewThroughputSeries(eng, sim.Second, []string{"a", "b"},
		func() []units.ByteCount {
			n += 1000
			return []units.ByteCount{n, 2 * n}
		}, false, &buf)
	ts.Start(0)
	eng.Run(3 * sim.Second)
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if lines[0] != "seconds,a,b" {
		t.Fatalf("header = %q", lines[0])
	}
	if len(lines) < 3 {
		t.Fatalf("lines = %d", len(lines))
	}
	if !strings.HasPrefix(lines[1], "1.000,8000,") {
		t.Fatalf("row = %q", lines[1])
	}
}

func TestThroughputSeriesStop(t *testing.T) {
	eng := sim.NewEngine()
	calls := 0
	ts := NewThroughputSeries(eng, sim.Second, nil,
		func() []units.ByteCount { calls++; return nil }, true, nil)
	ts.Start(0)
	eng.Schedule(2500*sim.Millisecond, ts.Stop)
	eng.Run(10 * sim.Second)
	if calls != 3 { // t=0 baseline, t=1, t=2
		t.Fatalf("calls = %d, want 3", calls)
	}
}

func TestThroughputSeriesValidation(t *testing.T) {
	eng := sim.NewEngine()
	for name, fn := range map[string]func(){
		"zero interval": func() {
			NewThroughputSeries(eng, 0, nil, func() []units.ByteCount { return nil }, false, nil)
		},
		"nil reader": func() { NewThroughputSeries(eng, sim.Second, nil, nil, false, nil) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			fn()
		}()
	}
}
