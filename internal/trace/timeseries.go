package trace

import (
	"fmt"
	"io"

	"ccatscale/internal/sim"
	"ccatscale/internal/units"
)

// SeriesPoint is one sample of a goodput time series.
type SeriesPoint struct {
	At sim.Time
	// Rates holds the interval goodput per tracked series (bits/sec).
	Rates []units.Bandwidth
}

// ThroughputSeries periodically samples cumulative delivered-byte
// counters and records interval goodput per series — the data behind
// throughput-over-time plots (flow convergence, BBR probe cycles,
// capture effects).
type ThroughputSeries struct {
	eng      *sim.Engine
	interval sim.Time
	read     func() []units.ByteCount // cumulative delivered per series
	names    []string
	w        io.Writer
	keep     bool

	prev    []units.ByteCount
	points  []SeriesPoint
	rates   []units.Bandwidth // flat arena the points' Rates slices are cut from
	stopped bool
	started bool

	// maxPoints, when positive, bounds the retained points by adaptive
	// decimation; decimation is the accumulated factor (1 = full
	// resolution).
	maxPoints  int
	decimation int
}

// NewThroughputSeries samples read every interval. names labels each
// series (CSV header). If keep is true, points accumulate in memory; if
// w is non-nil each sample appends a CSV row "seconds,rate1,rate2,…".
func NewThroughputSeries(eng *sim.Engine, interval sim.Time, names []string, read func() []units.ByteCount, keep bool, w io.Writer) *ThroughputSeries {
	if interval <= 0 {
		panic("trace: non-positive series interval")
	}
	if read == nil {
		panic("trace: series without reader")
	}
	return &ThroughputSeries{
		eng:        eng,
		interval:   interval,
		read:       read,
		names:      names,
		keep:       keep,
		w:          w,
		decimation: 1,
	}
}

// SetMaxPoints bounds the retained points: once the series reaches n
// samples it degrades gracefully instead of growing without bound —
// adjacent pairs are merged (rates averaged, the later timestamp kept)
// and the sampling interval doubles, halving resolution. The factor is
// exposed via Decimation so reports can mark decimated series honestly.
// A non-positive n removes the bound. Call before Start; the bound only
// applies when points are kept.
func (s *ThroughputSeries) SetMaxPoints(n int) {
	if n < 0 {
		n = 0
	}
	s.maxPoints = n
}

// Decimation returns the accumulated decimation factor: 1 for a
// full-resolution series, 2^k after k halvings forced by SetMaxPoints.
func (s *ThroughputSeries) Decimation() int { return s.decimation }

// Start begins sampling at virtual time at (the first tick records the
// baseline and emits nothing).
func (s *ThroughputSeries) Start(at sim.Time) {
	s.eng.Schedule(at, s.tick)
}

// Preallocate sizes the retained-point buffers for a run ending at
// horizon, so sampling never reallocates mid-run: the point slice and a
// flat rate arena are sized from horizon/interval up front. Call before
// Start; a no-op when points are not kept.
func (s *ThroughputSeries) Preallocate(horizon sim.Time) {
	if !s.keep || horizon <= 0 {
		return
	}
	n := int(horizon/s.interval) + 2
	if cap(s.points) < n {
		s.points = make([]SeriesPoint, 0, n)
	}
	if width := len(s.names); width > 0 && cap(s.rates) < n*width {
		s.rates = make([]units.Bandwidth, 0, n*width)
	}
}

// Stop halts sampling.
func (s *ThroughputSeries) Stop() { s.stopped = true }

// Points returns the retained samples.
func (s *ThroughputSeries) Points() []SeriesPoint { return s.points }

func (s *ThroughputSeries) tick() {
	if s.stopped {
		return
	}
	cur := s.read()
	if !s.started {
		s.started = true
		s.prev = append([]units.ByteCount(nil), cur...)
		if s.w != nil && len(s.names) > 0 {
			fmt.Fprint(s.w, "seconds")
			for _, n := range s.names {
				fmt.Fprintf(s.w, ",%s", n)
			}
			fmt.Fprintln(s.w)
		}
		s.eng.After(s.interval, s.tick)
		return
	}
	pt := SeriesPoint{At: s.eng.Now(), Rates: s.takeRates(len(cur))}
	for i := range cur {
		var delta units.ByteCount
		if i < len(s.prev) {
			delta = cur[i] - s.prev[i]
		} else {
			delta = cur[i]
		}
		pt.Rates[i] = units.Throughput(delta, s.interval)
	}
	s.prev = append(s.prev[:0], cur...)
	if s.keep {
		s.points = append(s.points, pt)
		if s.maxPoints > 0 && len(s.points) >= s.maxPoints && len(s.points) >= 2 {
			s.decimate()
		}
	}
	if s.w != nil {
		fmt.Fprintf(s.w, "%.3f", pt.At.Seconds())
		for _, r := range pt.Rates {
			fmt.Fprintf(s.w, ",%d", int64(r))
		}
		fmt.Fprintln(s.w)
	}
	s.eng.After(s.interval, s.tick)
}

// decimate halves the retained series in place: adjacent pairs merge
// into one point carrying the pair's average rate and the later
// timestamp, and the sampling interval doubles so future points arrive
// at the reduced cadence. Rate averaging keeps the merged value honest
// (each input rate covered one old interval; their mean covers the
// doubled one). An odd trailing point is kept as-is — its rate covers a
// half-window, which the recorded decimation factor makes auditable.
// Decimation depends only on virtual state, so a budget-bounded series
// remains deterministic.
func (s *ThroughputSeries) decimate() {
	n := len(s.points)
	half := n / 2
	for k := 0; k < half; k++ {
		a, b := s.points[2*k], s.points[2*k+1]
		for j := range a.Rates {
			if j < len(b.Rates) {
				a.Rates[j] = (a.Rates[j] + b.Rates[j]) / 2
			}
		}
		a.At = b.At
		s.points[k] = a
	}
	if n%2 == 1 {
		s.points[half] = s.points[n-1]
		half++
	}
	s.points = s.points[:half]
	s.interval *= 2
	s.decimation *= 2
}

// takeRates cuts an n-wide rate slice from the preallocated arena, or
// allocates one when the arena is exhausted (or was never sized).
func (s *ThroughputSeries) takeRates(n int) []units.Bandwidth {
	if cap(s.rates)-len(s.rates) < n {
		return make([]units.Bandwidth, n)
	}
	start := len(s.rates)
	s.rates = s.rates[: start+n : start+n]
	return s.rates[start : start+n : start+n]
}
