// Package trace provides the instrumentation the paper's testbed got
// from BESS drop logging and the Linux tcpprobe module: a bottleneck
// drop log (per-flow counts plus timestamps for loss-rate and
// burstiness analysis) and a periodic per-flow congestion-window
// sampler.
package trace

import (
	"fmt"
	"io"

	"ccatscale/internal/packet"
	"ccatscale/internal/sim"
	"ccatscale/internal/units"
)

// QueueLog records bottleneck tail drops, standing in for the paper's
// "logging packet drops at the bottleneck queue in the software
// switch".
type QueueLog struct {
	startAt sim.Time

	times    []sim.Time
	perFlow  map[int32]uint64
	total    uint64
	capTimes int
	overflow uint64
}

// NewQueueLog creates a log. maxTimestamps bounds the retained
// timestamp list (0 = unbounded); per-flow counters are always exact.
// Burstiness needs the raw inter-drop gaps, so CoreScale runs keep a
// large but bounded sample.
func NewQueueLog(maxTimestamps int) *QueueLog {
	return &QueueLog{perFlow: make(map[int32]uint64), capTimes: maxTimestamps}
}

// SetWindowStart discards the notion of drops before t for timestamp
// collection: drops recorded earlier than t are counted but their
// timestamps excluded from burstiness analysis (the paper ignores the
// warm-up period).
func (l *QueueLog) SetWindowStart(t sim.Time) { l.startAt = t }

// OnDrop is the netem.DropFunc to install at the bottleneck.
func (l *QueueLog) OnDrop(now sim.Time, p packet.Packet) {
	l.total++
	l.perFlow[p.Flow]++
	if now < l.startAt {
		return
	}
	if l.capTimes == 0 || len(l.times) < l.capTimes {
		l.times = append(l.times, now)
	} else {
		l.overflow++
	}
}

// TimesLen returns the number of retained drop timestamps (the log's
// trace-point footprint; per-flow counters are O(flows) and not
// counted).
func (l *QueueLog) TimesLen() int { return len(l.times) }

// Overflow returns the number of window drops whose timestamps were
// discarded because the retention cap was reached — the honesty counter
// behind any burstiness score computed from a truncated sample.
func (l *QueueLog) Overflow() uint64 { return l.overflow }

// Total returns the total drop count.
func (l *QueueLog) Total() uint64 { return l.total }

// Flow returns the drop count for one flow.
func (l *QueueLog) Flow(f int32) uint64 { return l.perFlow[f] }

// TimesSeconds returns the retained drop timestamps in seconds, for
// metrics.Burstiness.
func (l *QueueLog) TimesSeconds() []float64 {
	out := make([]float64, len(l.times))
	for i, t := range l.times {
		out[i] = t.Seconds()
	}
	return out
}

// ResetCounts clears per-flow and total counters (used at the end of
// the warm-up window so loss rates cover only the measurement period).
func (l *QueueLog) ResetCounts() {
	l.total = 0
	for k := range l.perFlow {
		delete(l.perFlow, k)
	}
	l.times = l.times[:0]
}

// CwndSample is one tcpprobe-style record.
type CwndSample struct {
	At   sim.Time
	Flow int32
	Cwnd units.ByteCount
}

// CwndProbe periodically samples congestion windows, like tcpprobe's
// kprobe on tcp_rcv_established. Samples can be retained in memory,
// streamed as CSV, or both.
type CwndProbe struct {
	eng      *sim.Engine
	interval sim.Time
	read     func() []CwndSample
	keep     bool
	w        io.Writer

	samples []CwndSample
	stopped bool
}

// NewCwndProbe samples via read every interval. If keep is true the
// samples accumulate in memory; if w is non-nil each sample is written
// as a "seconds,flow,cwnd_bytes" CSV line.
func NewCwndProbe(eng *sim.Engine, interval sim.Time, read func() []CwndSample, keep bool, w io.Writer) *CwndProbe {
	if interval <= 0 {
		panic("trace: non-positive probe interval")
	}
	if read == nil {
		panic("trace: probe without reader")
	}
	return &CwndProbe{eng: eng, interval: interval, read: read, keep: keep, w: w}
}

// Start begins sampling at virtual time at.
func (p *CwndProbe) Start(at sim.Time) {
	p.eng.Schedule(at, p.tick)
}

// Stop halts sampling after the current tick.
func (p *CwndProbe) Stop() { p.stopped = true }

// Samples returns the retained samples.
func (p *CwndProbe) Samples() []CwndSample { return p.samples }

func (p *CwndProbe) tick() {
	if p.stopped {
		return
	}
	for _, s := range p.read() {
		if p.keep {
			p.samples = append(p.samples, s)
		}
		if p.w != nil {
			fmt.Fprintf(p.w, "%.6f,%d,%d\n", s.At.Seconds(), s.Flow, int64(s.Cwnd))
		}
	}
	p.eng.After(p.interval, p.tick)
}
