package trace

import (
	"bytes"
	"strings"
	"testing"

	"ccatscale/internal/packet"
	"ccatscale/internal/sim"
	"ccatscale/internal/units"
)

func TestQueueLogCounts(t *testing.T) {
	l := NewQueueLog(0)
	l.OnDrop(sim.Second, packet.Packet{Flow: 0})
	l.OnDrop(2*sim.Second, packet.Packet{Flow: 0})
	l.OnDrop(3*sim.Second, packet.Packet{Flow: 1})
	if l.Total() != 3 || l.Flow(0) != 2 || l.Flow(1) != 1 || l.Flow(9) != 0 {
		t.Fatalf("counts wrong: total=%d", l.Total())
	}
	ts := l.TimesSeconds()
	if len(ts) != 3 || ts[0] != 1 || ts[2] != 3 {
		t.Fatalf("times = %v", ts)
	}
}

func TestQueueLogWindowStartExcludesWarmup(t *testing.T) {
	l := NewQueueLog(0)
	l.SetWindowStart(5 * sim.Second)
	l.OnDrop(sim.Second, packet.Packet{Flow: 0})
	l.OnDrop(6*sim.Second, packet.Packet{Flow: 0})
	if l.Total() != 2 {
		t.Fatalf("Total = %d (warm-up drops must still count)", l.Total())
	}
	if ts := l.TimesSeconds(); len(ts) != 1 || ts[0] != 6 {
		t.Fatalf("times = %v, warm-up timestamp not excluded", ts)
	}
}

func TestQueueLogTimestampCap(t *testing.T) {
	l := NewQueueLog(2)
	for i := 0; i < 5; i++ {
		l.OnDrop(sim.Time(i), packet.Packet{})
	}
	if l.Total() != 5 {
		t.Fatalf("Total = %d", l.Total())
	}
	if len(l.TimesSeconds()) != 2 {
		t.Fatalf("timestamp cap not applied: %d", len(l.TimesSeconds()))
	}
}

func TestQueueLogReset(t *testing.T) {
	l := NewQueueLog(0)
	l.OnDrop(sim.Second, packet.Packet{Flow: 3})
	l.ResetCounts()
	if l.Total() != 0 || l.Flow(3) != 0 || len(l.TimesSeconds()) != 0 {
		t.Fatal("reset incomplete")
	}
}

func TestCwndProbeSamplesAtInterval(t *testing.T) {
	eng := sim.NewEngine()
	cwnd := units.ByteCount(1000)
	probe := NewCwndProbe(eng, sim.Second, func() []CwndSample {
		cwnd += 1000
		return []CwndSample{{At: eng.Now(), Flow: 7, Cwnd: cwnd}}
	}, true, nil)
	probe.Start(0)
	eng.Run(5*sim.Second + sim.Millisecond)
	got := probe.Samples()
	if len(got) != 6 { // t = 0,1,2,3,4,5
		t.Fatalf("samples = %d, want 6", len(got))
	}
	if got[0].Cwnd != 2000 || got[5].Cwnd != 7000 || got[3].Flow != 7 {
		t.Fatalf("sample contents wrong: %+v", got)
	}
}

func TestCwndProbeCSVOutput(t *testing.T) {
	eng := sim.NewEngine()
	var buf bytes.Buffer
	probe := NewCwndProbe(eng, sim.Second, func() []CwndSample {
		return []CwndSample{{At: eng.Now(), Flow: 1, Cwnd: 4096}}
	}, false, &buf)
	probe.Start(0)
	eng.Run(2 * sim.Second)
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("csv lines = %d: %q", len(lines), buf.String())
	}
	if lines[1] != "1.000000,1,4096" {
		t.Fatalf("csv line = %q", lines[1])
	}
	if len(probe.Samples()) != 0 {
		t.Fatal("keep=false retained samples")
	}
}

func TestCwndProbeStop(t *testing.T) {
	eng := sim.NewEngine()
	n := 0
	probe := NewCwndProbe(eng, sim.Second, func() []CwndSample {
		n++
		return nil
	}, false, nil)
	probe.Start(0)
	eng.Schedule(2500*sim.Millisecond, probe.Stop)
	eng.Run(10 * sim.Second)
	if n != 3 { // t = 0, 1, 2
		t.Fatalf("ticks = %d, want 3", n)
	}
}

func TestCwndProbeValidation(t *testing.T) {
	eng := sim.NewEngine()
	for name, fn := range map[string]func(){
		"zero interval": func() { NewCwndProbe(eng, 0, func() []CwndSample { return nil }, false, nil) },
		"nil reader":    func() { NewCwndProbe(eng, sim.Second, nil, false, nil) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			fn()
		}()
	}
}
