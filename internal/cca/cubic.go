package cca

import (
	"math"

	"ccatscale/internal/sim"
	"ccatscale/internal/units"
)

// RFC 8312 constants.
const (
	cubicC     = 0.4 // window growth scaling factor (segments/sec³)
	cubicBeta  = 0.7 // multiplicative decrease factor
	cubicAlpha = 3 * (1 - cubicBeta) / (1 + cubicBeta)
)

// HyStart parameters (Ha & Rhee 2011 / HyStart++ RFC 9406 flavors, as
// Linux cubic enables by default): leave slow start when the round's
// minimum RTT rises noticeably above the previous round's, i.e. a queue
// is forming, instead of waiting for the overshoot loss.
const (
	hystartMinSamples = 8                    // RTT samples per round before judging
	hystartMinEta     = 4 * sim.Millisecond  // floor on the divergence threshold
	hystartMaxEta     = 16 * sim.Millisecond // ceiling on the divergence threshold
	hystartLowWindow  = 16                   // segments; no HyStart below this
)

// Cubic implements TCP Cubic congestion control (RFC 8312): window
// growth is a cubic function of time since the last congestion event,
// anchored at the window size where that event occurred, with the
// TCP-friendly region ensuring Cubic never does worse than an AIMD flow
// — the mechanism behind its 70–80 % share against NewReno (paper
// Finding 8).
//
// HyStart is not implemented: the paper's long-running saturating flows
// leave slow start via loss within the first round trips, and HyStart's
// early exit heuristics would add a degree of freedom the study does not
// exercise.
type Cubic struct {
	mss units.ByteCount

	cwnd     float64 // segments
	ssthresh float64 // segments

	// Cubic epoch state, reset at each congestion event.
	wMax       float64  // window just before the last reduction (segments)
	k          float64  // time offset to reach wMax again (seconds)
	epochStart sim.Time // 0 = epoch not started
	originSeg  float64  // plateau origin W_max for the current epoch
	ackedSeg   float64  // segments acked this epoch (for W_est)

	lastRTT    sim.Time
	inRecovery bool

	// HyStart state (delay-increase detection during slow start).
	hystartEnabled  bool
	hsCurrMin       sim.Time // current round's min RTT
	hsCurrSamples   int
	hsLastRoundMin  sim.Time // previous completed round's min RTT
	hystartTriggers int      // rounds where HyStart ended slow start (stats)
}

// NewCubic returns a Cubic controller with the standard 10-segment
// initial window and HyStart enabled, matching Linux defaults.
func NewCubic(mss units.ByteCount) *Cubic {
	return &Cubic{
		mss:            mss,
		cwnd:           InitialCwndSegments,
		ssthresh:       math.MaxFloat64,
		hystartEnabled: true,
	}
}

// SetHyStart enables or disables HyStart (the ablation benchmarks turn
// it off to measure slow-start overshoot).
func (c *Cubic) SetHyStart(on bool) { c.hystartEnabled = on }

// HyStartExits reports how many times HyStart ended slow start.
func (c *Cubic) HyStartExits() int { return c.hystartTriggers }

// Name implements CCA.
func (c *Cubic) Name() string { return "cubic" }

// Cwnd implements CCA.
func (c *Cubic) Cwnd() units.ByteCount {
	return units.ByteCount(c.cwnd * float64(c.mss))
}

// PacingRate implements CCA: Cubic is ACK-clocked.
func (c *Cubic) PacingRate() units.Bandwidth { return 0 }

// InSlowStart reports whether the window is below ssthresh.
func (c *Cubic) InSlowStart() bool { return c.cwnd < c.ssthresh }

// Ssthresh returns the slow-start threshold in bytes (saturating at
// MaxInt64 for the initial "infinite" threshold), for instrumentation
// and the invariant auditor.
func (c *Cubic) Ssthresh() units.ByteCount {
	bytes := c.ssthresh * float64(c.mss)
	if bytes >= float64(math.MaxInt64) {
		return units.ByteCount(math.MaxInt64)
	}
	return units.ByteCount(bytes)
}

// WMax returns the window (in segments) recorded at the last reduction,
// the anchor of the cubic growth function (0 before any reduction).
func (c *Cubic) WMax() float64 { return c.wMax }

// OnAck implements CCA.
func (c *Cubic) OnAck(ev AckEvent) {
	if c.inRecovery || ev.AckedBytes <= 0 {
		return
	}
	if ev.RTT > 0 {
		c.lastRTT = ev.RTT
	}
	ackedSeg := float64(ev.AckedBytes) / float64(c.mss)
	if c.InSlowStart() {
		c.hystart(ev)
		if !c.InSlowStart() {
			return
		}
		// Slow start, ABC-capped at 2 segments per ACK as in NewReno.
		if ackedSeg > 2 {
			ackedSeg = 2
		}
		c.cwnd += ackedSeg
		if c.cwnd > c.ssthresh {
			c.cwnd = c.ssthresh
		}
		return
	}
	c.congestionAvoidance(ev.Now, ackedSeg)
}

// hystart runs the delay-increase slow-start exit check: once the
// current round's min RTT exceeds the previous round's by more than
// η = clamp(prevMin/8, 4ms, 16ms), a queue is forming and slow start
// ends at the current window.
func (c *Cubic) hystart(ev AckEvent) {
	if !c.hystartEnabled || c.cwnd < hystartLowWindow {
		return
	}
	if ev.RoundStart {
		if c.hsCurrSamples >= hystartMinSamples {
			c.hsLastRoundMin = c.hsCurrMin
		}
		c.hsCurrMin = 0
		c.hsCurrSamples = 0
	}
	if ev.RTT <= 0 {
		return
	}
	if c.hsCurrMin == 0 || ev.RTT < c.hsCurrMin {
		c.hsCurrMin = ev.RTT
	}
	c.hsCurrSamples++
	if c.hsLastRoundMin == 0 || c.hsCurrSamples < hystartMinSamples {
		return
	}
	eta := c.hsLastRoundMin / 8
	if eta < hystartMinEta {
		eta = hystartMinEta
	}
	if eta > hystartMaxEta {
		eta = hystartMaxEta
	}
	if c.hsCurrMin > c.hsLastRoundMin+eta {
		c.ssthresh = c.cwnd
		c.hystartTriggers++
	}
}

// congestionAvoidance performs the RFC 8312 window update for one ACK.
func (c *Cubic) congestionAvoidance(now sim.Time, ackedSeg float64) {
	if c.epochStart == 0 {
		c.epochStart = now
		c.ackedSeg = 0
		if c.cwnd < c.wMax {
			c.k = math.Cbrt((c.wMax - c.cwnd) / cubicC)
			c.originSeg = c.wMax
		} else {
			c.k = 0
			c.originSeg = c.cwnd
		}
	}
	c.ackedSeg += ackedSeg

	t := (now - c.epochStart).Seconds()
	rtt := c.lastRTT.Seconds()
	if rtt <= 0 {
		rtt = 0.1 // no sample yet; a conservative placeholder
	}

	// Target: where the cubic curve says the window should be one RTT
	// from now (RFC 8312 §4.1).
	dt := t + rtt - c.k
	target := c.originSeg + cubicC*dt*dt*dt
	switch {
	case target < c.cwnd:
		target = c.cwnd // cubic never shrinks the window on an ACK
	case target > 1.5*c.cwnd:
		target = 1.5 * c.cwnd // RFC 8312 growth clamp
	}
	// Per-ACK increment spreading (target − cwnd) over one window's
	// worth of ACKs.
	c.cwnd += (target - c.cwnd) * ackedSeg / c.cwnd

	// TCP-friendly region (RFC 8312 §4.2): estimate what AIMD with the
	// same β would achieve; never be slower than that.
	wEst := c.wMax*cubicBeta + cubicAlpha*(t/rtt)
	if wEst > c.cwnd {
		c.cwnd = wEst
	}
}

// OnEnterRecovery implements CCA: the multiplicative decrease with fast
// convergence (RFC 8312 §4.5–4.6).
func (c *Cubic) OnEnterRecovery(_ sim.Time, _ units.ByteCount) {
	c.reduce()
	c.inRecovery = true
}

// OnExitRecovery implements CCA.
func (c *Cubic) OnExitRecovery(_ sim.Time) { c.inRecovery = false }

// OnECNMark implements CCA: an echoed CE mark takes the RFC 8312
// multiplicative decrease (with fast convergence), the Linux cubic
// response to ECN, without entering a recovery episode.
func (c *Cubic) OnECNMark(_ sim.Time, _ units.ByteCount) {
	if c.inRecovery {
		return
	}
	c.reduce()
}

// OnRTO implements CCA: like NewReno, collapse to one segment; the
// cubic epoch restarts from the reduced window.
func (c *Cubic) OnRTO(_ sim.Time) {
	c.reduce()
	c.cwnd = 1
	c.inRecovery = false
}

func (c *Cubic) reduce() {
	if c.cwnd < c.wMax {
		// Fast convergence: a loss before regaining the previous
		// maximum means a new flow is competing; release extra room.
		c.wMax = c.cwnd * (2 - cubicBeta) / 2
	} else {
		c.wMax = c.cwnd
	}
	c.cwnd *= cubicBeta
	if c.cwnd < 2 {
		c.cwnd = 2
	}
	c.ssthresh = c.cwnd
	c.epochStart = 0
}
