package cca

import (
	"ccatscale/internal/sim"
	"ccatscale/internal/units"
)

// Reno implements TCP NewReno congestion control (RFC 5681 congestion
// avoidance with the RFC 6582 fast-recovery discipline; the recovery
// bookkeeping itself lives in the transport). This is the classic
// loss-based AIMD algorithm whose throughput the Mathis model predicts.
type Reno struct {
	mss      units.ByteCount
	cwnd     units.ByteCount
	ssthresh units.ByteCount

	// acked accumulates bytes ACKed during congestion avoidance toward
	// the next full-window increment of one MSS (byte-counting variant
	// of the classic cwnd += MSS²/cwnd per ACK).
	acked units.ByteCount

	inRecovery bool
}

// NewReno returns a NewReno controller with the standard 10-segment
// initial window.
func NewReno(mss units.ByteCount) *Reno {
	return &Reno{
		mss:      mss,
		cwnd:     InitialCwndSegments * mss,
		ssthresh: units.ByteCount(1) << 40, // "infinite": slow start until first loss
	}
}

// Name implements CCA.
func (r *Reno) Name() string { return "reno" }

// Cwnd implements CCA.
func (r *Reno) Cwnd() units.ByteCount { return r.cwnd }

// PacingRate implements CCA: NewReno is purely ACK-clocked.
func (r *Reno) PacingRate() units.Bandwidth { return 0 }

// InSlowStart reports whether the window is below ssthresh.
func (r *Reno) InSlowStart() bool { return r.cwnd < r.ssthresh }

// Ssthresh returns the slow-start threshold (for instrumentation and
// the invariant auditor).
func (r *Reno) Ssthresh() units.ByteCount { return r.ssthresh }

// OnAck implements CCA: slow start grows the window by the bytes acked
// (capped at 2·MSS per ACK, RFC 3465 ABC with L=2); congestion
// avoidance grows it one MSS per window's worth of acknowledged data.
func (r *Reno) OnAck(ev AckEvent) {
	if r.inRecovery {
		// Window is frozen at ssthresh during fast recovery; the
		// transport clocks out segments against the pipe estimate.
		return
	}
	if ev.AckedBytes <= 0 {
		return
	}
	if r.InSlowStart() {
		inc := ev.AckedBytes
		if inc > 2*r.mss {
			inc = 2 * r.mss
		}
		r.cwnd += inc
		if r.cwnd > r.ssthresh {
			r.cwnd = r.ssthresh
		}
		return
	}
	r.acked += ev.AckedBytes
	if r.acked >= r.cwnd {
		r.acked -= r.cwnd
		r.cwnd += r.mss
	}
}

// OnEnterRecovery implements CCA: the multiplicative decrease. This is
// exactly the "CWND halving" event the paper counts via tcpprobe when
// validating the Mathis model.
func (r *Reno) OnEnterRecovery(_ sim.Time, _ units.ByteCount) {
	r.ssthresh = maxBytes(r.cwnd/2, 2*r.mss)
	r.cwnd = r.ssthresh
	r.acked = 0
	r.inRecovery = true
}

// OnExitRecovery implements CCA.
func (r *Reno) OnExitRecovery(_ sim.Time) { r.inRecovery = false }

// OnECNMark implements CCA: RFC 3168 §6.1.2 — react to an echoed CE
// mark exactly as to a single lost segment, halving the window, but
// with nothing to retransmit and no recovery episode.
func (r *Reno) OnECNMark(_ sim.Time, _ units.ByteCount) {
	if r.inRecovery {
		return
	}
	r.ssthresh = maxBytes(r.cwnd/2, 2*r.mss)
	r.cwnd = r.ssthresh
	r.acked = 0
}

// OnRTO implements CCA: collapse to one segment and restart slow start
// toward half the pre-timeout window (RFC 5681 §3.1).
func (r *Reno) OnRTO(_ sim.Time) {
	r.ssthresh = maxBytes(r.cwnd/2, 2*r.mss)
	r.cwnd = r.mss
	r.acked = 0
	r.inRecovery = false
}

func maxBytes(a, b units.ByteCount) units.ByteCount {
	if a > b {
		return a
	}
	return b
}
