package cca

import (
	"testing"

	"ccatscale/internal/sim"
	"ccatscale/internal/units"
)

// bbr2Harness drives a BBR2 instance like bbrHarness drives BBR.
type bbr2Harness struct {
	b         *BBR2
	now       sim.Time
	rtt       sim.Time
	linkRate  units.Bandwidth
	delivered units.ByteCount
	inFlight  units.ByteCount
	jitter    sim.Time
}

func newBBR2Harness(rate units.Bandwidth, rtt sim.Time) *bbr2Harness {
	return &bbr2Harness{
		b:        NewBBR2(testMSS, sim.NewRNG(7)),
		rtt:      rtt,
		linkRate: rate,
	}
}

func (h *bbr2Harness) round() {
	sendable := h.b.Cwnd()
	if pr := h.b.PacingRate(); pr > 0 {
		if paceable := pr.BytesIn(h.rtt); paceable < sendable {
			sendable = paceable
		}
	}
	rate := units.Throughput(sendable, h.rtt)
	if rate > h.linkRate {
		rate = h.linkRate
	}
	h.inFlight = sendable
	acks := int(sendable / testMSS)
	if acks == 0 {
		acks = 1
	}
	step := h.rtt / sim.Time(acks)
	for i := 0; i < acks; i++ {
		h.now += step
		h.delivered += testMSS
		h.inFlight -= testMSS
		if h.inFlight < 0 {
			h.inFlight = 0
		}
		h.b.OnAck(AckEvent{
			Now:        h.now,
			AckedBytes: testMSS,
			RTT:        h.rtt + h.jitter,
			MinRTT:     h.rtt,
			Delivered:  h.delivered,
			Rate:       rate,
			RoundStart: i == 0,
			InFlight:   h.inFlight,
		})
	}
}

func TestBBR2ReachesProbeBWAndConverges(t *testing.T) {
	link := 100 * units.MbitPerSec
	h := newBBR2Harness(link, 20*sim.Millisecond)
	for i := 0; i < 60; i++ {
		h.round()
	}
	st := h.b.State()
	if st == "STARTUP" || st == "DRAIN" {
		t.Fatalf("state = %s after 60 rounds", st)
	}
	got := float64(h.b.BtlBw())
	if got < 0.8*float64(link) || got > 1.3*float64(link) {
		t.Fatalf("BtlBw = %v, want ≈%v", h.b.BtlBw(), link)
	}
}

func TestBBR2RespondsToLossUnlikeV1(t *testing.T) {
	// The defining v2 behavior: a loss episode cuts the effective
	// bandwidth bound by β, where v1 sails on unchanged.
	h := newBBR2Harness(100*units.MbitPerSec, 20*sim.Millisecond)
	for i := 0; i < 60; i++ {
		h.round()
	}
	before := h.b.BtlBw()
	h.b.OnEnterRecovery(h.now, h.inFlight)
	after := h.b.BtlBw()
	if float64(after) > 0.75*float64(before) {
		t.Fatalf("loss did not cut the bound: %v → %v", before, after)
	}
	// The bound decays back once rounds are clean again.
	h.b.OnExitRecovery(h.now)
	for i := 0; i < 30; i++ {
		h.round()
	}
	if h.b.BtlBw() < before*9/10 {
		t.Fatalf("bound never recovered: %v (was %v)", h.b.BtlBw(), before)
	}
}

func TestBBR2ProbeRTTUsesHalfBDP(t *testing.T) {
	h := newBBR2Harness(100*units.MbitPerSec, 20*sim.Millisecond)
	for i := 0; i < 30; i++ {
		h.round()
	}
	h.jitter = sim.Millisecond // keep min-RTT stale
	var cwndDuring units.ByteCount
	saw := false
	for i := 0; i < 600 && !saw; i++ {
		h.round()
		if h.b.State() == "PROBE_RTT" {
			saw = true
			cwndDuring = h.b.Cwnd()
		}
	}
	if !saw {
		t.Fatal("never entered PROBE_RTT (5s window)")
	}
	bdp := units.BDP(100*units.MbitPerSec, 20*sim.Millisecond)
	// Half a BDP, not 4 packets: far milder than v1.
	if cwndDuring < bdp/4 || cwndDuring > bdp {
		t.Fatalf("PROBE_RTT cwnd = %v, want ≈BDP/2 (%v)", cwndDuring, bdp/2)
	}
}

func TestBBR2InflightHiCapsAfterLossProbe(t *testing.T) {
	h := newBBR2Harness(100*units.MbitPerSec, 20*sim.Millisecond)
	for i := 0; i < 60; i++ {
		h.round()
	}
	// Signal a lossy probe round: ceiling discovered at current inflight.
	h.b.lossRoundLost = 100 * testMSS
	h.b.lossRoundDelivered = 100 * testMSS
	h.b.state = bbr2ProbeBWUp
	h.b.OnAck(AckEvent{
		Now: h.now + sim.Millisecond, AckedBytes: testMSS, RTT: 20 * sim.Millisecond,
		Delivered: h.delivered, Rate: h.b.BtlBw(), RoundStart: true,
		InFlight: 50 * testMSS,
	})
	if h.b.inflightHi == 0 {
		t.Fatal("lossy probe did not set inflight_hi")
	}
	if h.b.State() != "PROBE_DOWN" {
		t.Fatalf("state after lossy probe = %s, want PROBE_DOWN", h.b.State())
	}
}

func TestBBR2RegisteredAndControlsRecovery(t *testing.T) {
	f, ok := ByName("bbr2")
	if !ok {
		t.Fatal("bbr2 not registered")
	}
	c := f(testMSS, sim.NewRNG(1))
	if c.Name() != "bbr2" {
		t.Fatal("wrong CCA")
	}
	if _, ok := c.(RecoveryController); !ok {
		t.Fatal("bbr2 must control its own recovery window")
	}
}

func TestBBR2RTORestore(t *testing.T) {
	h := newBBR2Harness(100*units.MbitPerSec, 20*sim.Millisecond)
	for i := 0; i < 60; i++ {
		h.round()
	}
	prior := h.b.Cwnd()
	h.b.OnRTO(h.now)
	if h.b.Cwnd() > bbrMinCwndSegments*testMSS {
		t.Fatalf("cwnd after RTO = %v", h.b.Cwnd())
	}
	for i := 0; i < 20; i++ {
		h.round()
	}
	if h.b.Cwnd() < prior/2 {
		t.Fatalf("cwnd never rebuilt after RTO: %v (prior %v)", h.b.Cwnd(), prior)
	}
}

func TestBBR2StateStrings(t *testing.T) {
	want := map[bbr2State]string{
		bbr2Startup: "STARTUP", bbr2Drain: "DRAIN",
		bbr2ProbeBWDown: "PROBE_DOWN", bbr2ProbeBWCruise: "CRUISE",
		bbr2ProbeBWRefill: "REFILL", bbr2ProbeBWUp: "PROBE_UP",
		bbr2ProbeRTT: "PROBE_RTT", bbr2State(99): "bbr2State(?)",
	}
	for s, w := range want {
		if s.String() != w {
			t.Fatalf("String(%d) = %q", s, s.String())
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("NewBBR2(nil) did not panic")
		}
	}()
	NewBBR2(testMSS, nil)
}
