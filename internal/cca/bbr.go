package cca

import (
	"fmt"

	"ccatscale/internal/sim"
	"ccatscale/internal/units"
)

// BBRv1 constants from draft-cardwell-iccrg-bbr-congestion-control-00
// and the Linux tcp_bbr implementation the paper evaluates.
const (
	// bbrHighGain is 2/ln(2): fast enough to double the sending rate
	// each round during STARTUP.
	bbrHighGain = 2.885

	// bbrDrainGain empties the queue STARTUP built.
	bbrDrainGain = 1 / bbrHighGain

	// bbrCwndGain is the ProbeBW congestion-window gain: up to 2 BDPs
	// may be in flight — the inflight cap at the heart of the Ware et
	// al. model the paper validates at scale.
	bbrCwndGain = 2.0

	// bbrBtlBwFilterLen is the bottleneck-bandwidth max-filter window
	// in round trips.
	bbrBtlBwFilterLen = 10

	// bbrRTpropFilterLen is the min-RTT validity window.
	bbrRTpropFilterLen = 10 * sim.Second

	// bbrProbeRTTDuration is the time spent at minimal inflight during
	// PROBE_RTT.
	bbrProbeRTTDuration = 200 * sim.Millisecond

	// bbrMinCwndSegments is the floor on the window (and the PROBE_RTT
	// target).
	bbrMinCwndSegments = 4

	// bbrFullBwThresh declares the pipe full when bandwidth stops
	// growing by at least 25 % per round...
	bbrFullBwThresh = 1.25
	// ...for bbrFullBwCount consecutive rounds.
	bbrFullBwCount = 3

	// bbrExtraAckedFilterLen is the ack-aggregation filter window in
	// round trips (Linux bbr_extra_acked_win_rtts covers two 5-round
	// sub-windows).
	bbrExtraAckedFilterLen = 10

	// bbrAckEpochResetThresh resets the aggregation epoch once the
	// accounted bytes grow past this many estimated BDPs, bounding
	// drift (Linux bbr_ack_epoch_acked_reset_thresh ≈ 1<<20 packets;
	// a BDP-relative bound behaves equivalently here).
	bbrAckEpochResetThresh = 10
)

// bbrState is the BBRv1 state machine phase.
type bbrState uint8

const (
	bbrStartup bbrState = iota
	bbrDrain
	bbrProbeBW
	bbrProbeRTT
)

func (s bbrState) String() string {
	switch s {
	case bbrStartup:
		return "STARTUP"
	case bbrDrain:
		return "DRAIN"
	case bbrProbeBW:
		return "PROBE_BW"
	case bbrProbeRTT:
		return "PROBE_RTT"
	}
	return fmt.Sprintf("bbrState(%d)", uint8(s))
}

// bbrPacingGainCycle is the PROBE_BW gain cycle: probe above the
// estimated bandwidth for one min-RTT, drain for one, then cruise.
var bbrPacingGainCycle = [8]float64{1.25, 0.75, 1, 1, 1, 1, 1, 1}

// BBR implements BBRv1 (Cardwell et al., "BBR: Congestion-Based
// Congestion Control", ACM Queue 2016): a rate-based algorithm that
// paces at a windowed-max estimate of bottleneck bandwidth, caps
// inflight at cwnd_gain × estimated BDP, and periodically probes for
// bandwidth and for a lower base RTT. BBRv1 does not reduce its window
// in response to packet loss — the property behind the paper's
// inter-CCA findings 6–7 — and its flow-synchronized ProbeRTT is the
// mechanism whose breakdown at scale the paper hypothesizes causes
// Finding 5's intra-CCA unfairness.
type BBR struct {
	mss units.ByteCount
	rng *sim.RNG

	state bbrState

	// Model: bottleneck bandwidth (windowed max of delivery-rate
	// samples) and round-trip propagation delay (windowed min).
	btlBwFilter   *maxFilter
	rtProp        sim.Time
	rtPropStamp   sim.Time
	rtPropValid   bool
	rtPropExpired bool

	roundCount uint64

	pacingGain float64
	cwndGain   float64

	cwnd       units.ByteCount
	pacingRate units.Bandwidth

	// STARTUP full-pipe detection.
	filledPipe  bool
	fullBwBase  units.Bandwidth
	fullBwCount int

	// PROBE_BW gain cycling.
	cycleIndex int
	cycleStamp sim.Time

	// PROBE_RTT bookkeeping.
	probeRTTDoneStamp sim.Time
	probeRTTRoundDone bool

	// Ack-aggregation compensation (Linux bbr_update_ack_aggregation,
	// v5.1+, present in the kernels the paper measures): when ACKs
	// arrive in aggregated bursts (delayed ACKs, GRO stretch ACKs), a
	// 2·BDP window cannot keep the pipe full between bursts, so the
	// window is widened by the windowed-max of "bytes ACKed beyond
	// what the estimated bandwidth predicts for the epoch".
	extraAckedFilter *maxFilter
	ackEpochStart    sim.Time
	ackEpochAcked    units.ByteCount

	// Loss-recovery window conservation (Linux-style save/restore).
	priorCwnd  units.ByteCount
	inRecovery bool

	// packetConservation is true for the first round of recovery.
	packetConservation bool

	// restoreOnRound requests a cwnd restore at the next round start:
	// set by OnRTO so the pre-timeout window returns as soon as the
	// retransmission round completes, before the bandwidth filter's
	// samples from the collapsed window can expire the model.
	restoreOnRound bool
}

// NewBBR returns a BBRv1 controller. rng seeds the randomized PROBE_BW
// starting phase; it must not be nil.
func NewBBR(mss units.ByteCount, rng *sim.RNG) *BBR {
	if rng == nil {
		panic("cca: BBR requires an RNG")
	}
	b := &BBR{
		mss:              mss,
		rng:              rng,
		btlBwFilter:      newMaxFilter(bbrBtlBwFilterLen),
		extraAckedFilter: newMaxFilter(bbrExtraAckedFilterLen),
		cwnd:             InitialCwndSegments * mss,
	}
	b.enterStartup()
	return b
}

// Name implements CCA.
func (b *BBR) Name() string { return "bbr" }

// Cwnd implements CCA.
func (b *BBR) Cwnd() units.ByteCount { return b.cwnd }

// PacingRate implements CCA.
func (b *BBR) PacingRate() units.Bandwidth { return b.pacingRate }

// State returns the current state-machine phase (exported for tests and
// ablation instrumentation).
func (b *BBR) State() string { return b.state.String() }

// BtlBw returns the current bottleneck-bandwidth estimate.
func (b *BBR) BtlBw() units.Bandwidth { return units.Bandwidth(b.btlBwFilter.Get()) }

// RTProp returns the current min-RTT estimate (0 before any sample).
func (b *BBR) RTProp() sim.Time { return b.rtProp }

func (b *BBR) enterStartup() {
	b.state = bbrStartup
	b.pacingGain = bbrHighGain
	b.cwndGain = bbrHighGain
}

func (b *BBR) enterDrain() {
	b.state = bbrDrain
	b.pacingGain = bbrDrainGain
	b.cwndGain = bbrHighGain
}

func (b *BBR) enterProbeBW(now sim.Time) {
	b.state = bbrProbeBW
	b.cwndGain = bbrCwndGain
	// Randomized starting phase, excluding the 1.25 probe phase (index
	// 0), as in the reference implementation: 1 + random(7) ∈ [1, 7].
	b.cycleIndex = 1 + b.rng.Intn(len(bbrPacingGainCycle)-1)
	b.pacingGain = bbrPacingGainCycle[b.cycleIndex]
	b.cycleStamp = now
}

func (b *BBR) enterProbeRTT() {
	b.state = bbrProbeRTT
	b.pacingGain = 1
	b.cwndGain = 1
	b.probeRTTDoneStamp = 0
	b.probeRTTRoundDone = false
}

// bdp returns gain × BtlBw × RTprop in bytes, or 0 while the model has
// no samples.
func (b *BBR) bdp(gain float64) units.ByteCount {
	bw := b.BtlBw()
	if bw == 0 || !b.rtPropValid {
		return 0
	}
	bdp := bw.BytesPerSec() * b.rtProp.Seconds()
	return units.ByteCount(gain * bdp)
}

// targetCwnd is the inflight target for the current cwnd gain plus the
// ack-aggregation allowance, floored at the minimal window.
func (b *BBR) targetCwnd() units.ByteCount {
	t := b.bdp(b.cwndGain)
	if b.state != bbrProbeRTT {
		t += b.extraAcked()
	}
	if min := units.ByteCount(bbrMinCwndSegments) * b.mss; t < min {
		t = min
	}
	return t
}

// OnAck implements CCA: the draft's "upon ACK" model/state/control
// update sequence.
func (b *BBR) OnAck(ev AckEvent) {
	if ev.RoundStart {
		b.roundCount++
		if b.packetConservation {
			// One full round of packet conservation has elapsed;
			// resume normal window growth toward the saved window.
			b.packetConservation = false
			b.restoreCwnd()
		}
		if b.restoreOnRound {
			b.restoreOnRound = false
			b.restoreCwnd()
		}
	}
	b.updateBtlBw(ev)
	b.updateAckAggregation(ev)
	b.checkCyclePhase(ev)
	b.checkFullPipe(ev)
	b.checkDrain(ev)
	b.updateRTProp(ev)
	b.checkProbeRTT(ev)
	b.setPacingRate()
	b.setCwnd(ev)
}

func (b *BBR) updateBtlBw(ev AckEvent) {
	if ev.Rate <= 0 {
		return
	}
	// App-limited samples can only raise the estimate.
	if !ev.RateAppLimited || int64(ev.Rate) > b.btlBwFilter.Get() {
		b.btlBwFilter.Update(b.roundCount, int64(ev.Rate))
	}
}

// updateAckAggregation measures how many bytes each ACK delivers beyond
// the estimated bandwidth's prediction for the current epoch and keeps
// a windowed maximum, which setCwnd adds to the inflight target.
func (b *BBR) updateAckAggregation(ev AckEvent) {
	bw := b.BtlBw()
	if bw == 0 || ev.AckedBytes <= 0 {
		return
	}
	if b.ackEpochStart == 0 {
		b.ackEpochStart = ev.Now
		b.ackEpochAcked = 0
	}
	expected := bw.BytesIn(ev.Now - b.ackEpochStart)
	if b.ackEpochAcked <= expected ||
		b.ackEpochAcked+ev.AckedBytes >= bbrAckEpochResetThresh*b.bdp(1) {
		// The aggregate drained (or the epoch ran long): start a new
		// epoch at this ACK.
		b.ackEpochAcked = 0
		b.ackEpochStart = ev.Now
		expected = 0
	}
	b.ackEpochAcked += ev.AckedBytes
	extra := b.ackEpochAcked - expected
	if extra > b.cwnd {
		extra = b.cwnd
	}
	b.extraAckedFilter.Update(b.roundCount, int64(extra))
}

// extraAcked returns the current ack-aggregation allowance.
func (b *BBR) extraAcked() units.ByteCount {
	return units.ByteCount(b.extraAckedFilter.Get())
}

func (b *BBR) checkCyclePhase(ev AckEvent) {
	if b.state != bbrProbeBW {
		return
	}
	if b.isNextCyclePhase(ev) {
		b.cycleIndex = (b.cycleIndex + 1) % len(bbrPacingGainCycle)
		b.pacingGain = bbrPacingGainCycle[b.cycleIndex]
		b.cycleStamp = ev.Now
	}
}

func (b *BBR) isNextCyclePhase(ev AckEvent) bool {
	fullLength := ev.Now-b.cycleStamp > b.rtProp
	// priorInFlight approximates the pipe just before this ACK removed
	// its bytes, as the reference implementation's prior_in_flight.
	priorInFlight := ev.InFlight + ev.AckedBytes
	switch {
	case b.pacingGain == 1:
		return fullLength
	case b.pacingGain > 1:
		// Keep probing until the probe actually filled the pipe (or
		// losses/recovery say it overfilled it).
		return fullLength && (ev.InRecovery || priorInFlight >= b.bdp(b.pacingGain))
	default:
		// Drain phase ends early once the queue contribution is gone.
		return fullLength || priorInFlight <= b.bdp(1)
	}
}

func (b *BBR) checkFullPipe(ev AckEvent) {
	if b.filledPipe || !ev.RoundStart || ev.RateAppLimited {
		return
	}
	bw := b.BtlBw()
	if float64(bw) >= float64(b.fullBwBase)*bbrFullBwThresh {
		b.fullBwBase = bw
		b.fullBwCount = 0
		return
	}
	b.fullBwCount++
	if b.fullBwCount >= bbrFullBwCount {
		b.filledPipe = true
	}
}

func (b *BBR) checkDrain(ev AckEvent) {
	if b.state == bbrStartup && b.filledPipe {
		b.enterDrain()
	}
	if b.state == bbrDrain && ev.InFlight <= b.bdp(1) {
		b.enterProbeBW(ev.Now)
	}
}

func (b *BBR) updateRTProp(ev AckEvent) {
	// The expiry decision is latched before any refresh: the draft's
	// BBRCheckProbeRTT consumes the flag computed here, so an inflated
	// sample adopted on expiry still triggers the PROBE_RTT it proves
	// necessary.
	b.rtPropExpired = b.rtPropValid && ev.Now-b.rtPropStamp > bbrRTpropFilterLen
	if ev.RTT <= 0 {
		return
	}
	if ev.RTT <= b.rtProp || !b.rtPropValid || b.rtPropExpired {
		b.rtProp = ev.RTT
		b.rtPropStamp = ev.Now
		b.rtPropValid = true
	}
}

func (b *BBR) checkProbeRTT(ev AckEvent) {
	if b.state != bbrProbeRTT && b.rtPropExpired {
		b.saveCwnd()
		b.enterProbeRTT()
	}
	if b.state == bbrProbeRTT {
		b.handleProbeRTT(ev)
	}
}

func (b *BBR) handleProbeRTT(ev AckEvent) {
	minWin := units.ByteCount(bbrMinCwndSegments) * b.mss
	if b.probeRTTDoneStamp == 0 && ev.InFlight <= minWin {
		b.probeRTTDoneStamp = ev.Now + bbrProbeRTTDuration
		b.probeRTTRoundDone = false
		return
	}
	if b.probeRTTDoneStamp == 0 {
		return
	}
	if ev.RoundStart {
		b.probeRTTRoundDone = true
	}
	if b.probeRTTRoundDone && ev.Now > b.probeRTTDoneStamp {
		// ProbeRTT complete: the fresh (possibly unchanged) estimate is
		// valid for another filter window.
		b.rtPropStamp = ev.Now
		b.restoreCwnd()
		if b.filledPipe {
			b.enterProbeBW(ev.Now)
		} else {
			b.enterStartup()
		}
	}
}

func (b *BBR) setPacingRate() {
	bw := b.BtlBw()
	if bw == 0 {
		// No bandwidth sample yet: pace the initial window across the
		// first measured RTT, if we have one.
		if b.rtPropValid && b.rtProp > 0 {
			initialBw := units.Throughput(b.cwnd, b.rtProp)
			b.pacingRate = units.Bandwidth(bbrHighGain * float64(initialBw))
		}
		return
	}
	rate := units.Bandwidth(b.pacingGain * float64(bw))
	if b.filledPipe || rate > b.pacingRate {
		b.pacingRate = rate
	}
}

func (b *BBR) setCwnd(ev AckEvent) {
	acked := ev.AckedBytes
	if acked < 0 {
		acked = 0
	}
	target := b.targetCwnd()
	switch {
	case b.packetConservation:
		// First round of recovery: window follows inflight exactly.
		b.cwnd = ev.InFlight + acked
	case b.filledPipe:
		b.cwnd += acked
		if b.cwnd > target {
			b.cwnd = target
		}
	case b.cwnd < target || units.ByteCount(ev.Delivered) < InitialCwndSegments*b.mss:
		b.cwnd += acked
	}
	if min := units.ByteCount(bbrMinCwndSegments) * b.mss; b.cwnd < min {
		b.cwnd = min
	}
	if b.state == bbrProbeRTT {
		if lim := units.ByteCount(bbrMinCwndSegments) * b.mss; b.cwnd > lim {
			b.cwnd = lim
		}
	}
}

func (b *BBR) saveCwnd() {
	if !b.inRecovery && b.state != bbrProbeRTT && !b.restoreOnRound {
		b.priorCwnd = b.cwnd
	} else if b.cwnd > b.priorCwnd {
		// Already inside a loss/probe episode: never let a collapsed
		// window overwrite the saved one.
		b.priorCwnd = b.cwnd
	}
}

func (b *BBR) restoreCwnd() {
	if b.cwnd < b.priorCwnd {
		b.cwnd = b.priorCwnd
	}
}

// OnEnterRecovery implements CCA. BBRv1 does not back off its model on
// loss; it only applies one round of packet conservation, then restores
// the prior window (the Linux save/restore discipline).
func (b *BBR) OnEnterRecovery(_ sim.Time, inFlight units.ByteCount) {
	b.saveCwnd()
	b.inRecovery = true
	b.packetConservation = true
	b.cwnd = inFlight + b.mss
	if min := units.ByteCount(bbrMinCwndSegments) * b.mss; b.cwnd < min {
		b.cwnd = min
	}
}

// ControlsRecovery implements cca.RecoveryController: BBR's packet
// conservation replaces the transport's PRR.
func (b *BBR) ControlsRecovery() {}

// OnECNMark implements CCA: BBRv1 famously ignores ECN (and loss) as a
// congestion signal — the model alone drives the rate. The paper's BBR
// findings (Finding 10's RTT-inverted unfairness) hinge on exactly this
// deafness, so the simulation preserves it.
func (b *BBR) OnECNMark(_ sim.Time, _ units.ByteCount) {}

// OnExitRecovery implements CCA.
func (b *BBR) OnExitRecovery(_ sim.Time) {
	b.inRecovery = false
	b.packetConservation = false
	b.restoreCwnd()
}

// OnRTO implements CCA: collapse to one segment for the retransmit, but
// keep the model; the saved window returns at the next round start, as
// the reference implementation's save/restore does on leaving the loss
// state.
func (b *BBR) OnRTO(_ sim.Time) {
	b.saveCwnd()
	b.cwnd = b.mss
	b.packetConservation = false
	b.inRecovery = false
	b.restoreOnRound = true
}
