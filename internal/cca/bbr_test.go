package cca

import (
	"testing"

	"ccatscale/internal/sim"
	"ccatscale/internal/units"
)

// bbrHarness feeds a BBR instance synthetic ACK events as if it were
// the only flow on a clean link of the given rate and RTT.
type bbrHarness struct {
	b         *BBR
	now       sim.Time
	rtt       sim.Time
	linkRate  units.Bandwidth
	delivered units.ByteCount
	inFlight  units.ByteCount

	// jitter, when positive, is added to every RTT sample to model the
	// standing queue of a shared link: the base RTT is then never
	// re-observed and BBR's min-RTT filter eventually expires.
	jitter sim.Time

	// trace, when set, runs after every OnAck.
	trace func()
}

func newBBRHarness(rate units.Bandwidth, rtt sim.Time) *bbrHarness {
	return &bbrHarness{
		b:        NewBBR(testMSS, sim.NewRNG(7)),
		rtt:      rtt,
		linkRate: rate,
	}
}

// round simulates one round trip: the flow sends up to cwnd (and is
// pacing-limited to its pacing rate), the link delivers at most
// linkRate, and each delivery produces an ACK event.
func (h *bbrHarness) round() {
	cwnd := h.b.Cwnd()
	sendable := cwnd
	if pr := h.b.PacingRate(); pr > 0 {
		paceable := pr.BytesIn(h.rtt)
		if paceable < sendable {
			sendable = paceable
		}
	}
	// Delivery rate observed = min(send rate, link rate).
	rate := units.Throughput(sendable, h.rtt)
	if rate > h.linkRate {
		rate = h.linkRate
	}
	h.inFlight = sendable
	acks := int(sendable / testMSS)
	if acks == 0 {
		acks = 1
	}
	step := h.rtt / sim.Time(acks)
	for i := 0; i < acks; i++ {
		h.now += step
		h.delivered += testMSS
		h.inFlight -= testMSS
		if h.inFlight < 0 {
			h.inFlight = 0
		}
		h.b.OnAck(AckEvent{
			Now:        h.now,
			AckedBytes: testMSS,
			RTT:        h.rtt + h.jitter,
			MinRTT:     h.rtt,
			Delivered:  h.delivered,
			Rate:       rate,
			RoundStart: i == 0,
			InFlight:   h.inFlight,
		})
		if h.trace != nil {
			h.trace()
		}
	}
}

func TestBBRStartupExitsOnPlateau(t *testing.T) {
	h := newBBRHarness(100*units.MbitPerSec, 20*sim.Millisecond)
	for i := 0; i < 30; i++ {
		h.round()
		if h.b.State() == "PROBE_BW" {
			return
		}
	}
	t.Fatalf("BBR never reached PROBE_BW; state %s after 30 rounds", h.b.State())
}

func TestBBRBandwidthEstimateConverges(t *testing.T) {
	link := 100 * units.MbitPerSec
	h := newBBRHarness(link, 20*sim.Millisecond)
	for i := 0; i < 40; i++ {
		h.round()
	}
	got := float64(h.b.BtlBw())
	if got < 0.9*float64(link) || got > 1.3*float64(link) {
		t.Fatalf("BtlBw = %v, want ≈%v", h.b.BtlBw(), link)
	}
	if h.b.RTProp() != 20*sim.Millisecond {
		t.Fatalf("RTProp = %v, want 20ms", h.b.RTProp())
	}
}

func TestBBRCwndIsTwoBDPInProbeBW(t *testing.T) {
	link := 100 * units.MbitPerSec
	rtt := 20 * sim.Millisecond
	h := newBBRHarness(link, rtt)
	for i := 0; i < 60; i++ {
		h.round()
	}
	if h.b.State() != "PROBE_BW" {
		t.Fatalf("state = %s, want PROBE_BW", h.b.State())
	}
	bdp := float64(units.BDP(link, rtt))
	got := float64(h.b.Cwnd())
	// 2×BDP plus the ack-aggregation allowance (the synthetic harness
	// delivers each round as a burst, so some allowance accrues).
	if got < 1.6*bdp || got > 3.2*bdp {
		t.Fatalf("ProbeBW cwnd = %v, want ≈2×BDP (%v) + aggregation allowance", h.b.Cwnd(), units.ByteCount(2*bdp))
	}
}

func TestBBRPacingGainCyclesThroughProbe(t *testing.T) {
	h := newBBRHarness(100*units.MbitPerSec, 20*sim.Millisecond)
	seen := map[float64]bool{}
	h.trace = func() {
		if h.b.State() == "PROBE_BW" {
			seen[h.b.pacingGain] = true
		}
	}
	for i := 0; i < 200; i++ {
		h.round()
	}
	for _, g := range []float64{1.25, 0.75, 1} {
		if !seen[g] {
			t.Fatalf("pacing gain %v never used in PROBE_BW; saw %v", g, seen)
		}
	}
}

func TestBBRProbeRTTEntryAndExit(t *testing.T) {
	h := newBBRHarness(100*units.MbitPerSec, 20*sim.Millisecond)
	// After the model converges, a standing queue keeps every RTT
	// sample above the base RTT, so the min-RTT filter goes stale and
	// must force a PROBE_RTT at the 10 s horizon.
	for i := 0; i < 20; i++ {
		h.round()
	}
	h.jitter = sim.Millisecond
	enteredAt := sim.Time(0)
	var sawProbeRTT, exited bool
	var cwndDuring units.ByteCount
	for i := 0; i < 900; i++ {
		h.round()
		if h.b.State() == "PROBE_RTT" && !sawProbeRTT {
			sawProbeRTT = true
			enteredAt = h.now
			cwndDuring = h.b.Cwnd()
		}
		if sawProbeRTT && h.b.State() == "PROBE_BW" && h.now > enteredAt {
			exited = true
			break
		}
	}
	if !sawProbeRTT {
		t.Fatal("BBR never entered PROBE_RTT (min-RTT filter should expire after 10s)")
	}
	if cwndDuring > bbrMinCwndSegments*testMSS {
		t.Fatalf("PROBE_RTT cwnd = %v, want ≤ %v", cwndDuring, bbrMinCwndSegments*testMSS)
	}
	if !exited {
		t.Fatal("BBR never exited PROBE_RTT back to PROBE_BW")
	}
	// Entry should happen roughly at the 10 s filter horizon.
	if enteredAt < 9*sim.Second || enteredAt > 15*sim.Second {
		t.Fatalf("entered PROBE_RTT at %v, want ≈10s", enteredAt)
	}
}

func TestBBRLossDoesNotCollapseModel(t *testing.T) {
	link := 100 * units.MbitPerSec
	h := newBBRHarness(link, 20*sim.Millisecond)
	for i := 0; i < 60; i++ {
		h.round()
	}
	bwBefore := h.b.BtlBw()
	cwndBefore := h.b.Cwnd()
	h.b.OnEnterRecovery(h.now, h.inFlight)
	// A couple of recovery rounds.
	h.round()
	h.round()
	h.b.OnExitRecovery(h.now)
	h.round()
	if h.b.BtlBw() < bwBefore*9/10 {
		t.Fatalf("loss collapsed BtlBw: %v → %v", bwBefore, h.b.BtlBw())
	}
	if h.b.Cwnd() < cwndBefore*9/10 {
		t.Fatalf("window not restored after recovery: %v → %v", cwndBefore, h.b.Cwnd())
	}
}

func TestBBRRTOThenRestore(t *testing.T) {
	h := newBBRHarness(100*units.MbitPerSec, 20*sim.Millisecond)
	for i := 0; i < 60; i++ {
		h.round()
	}
	prior := h.b.Cwnd()
	h.b.OnRTO(h.now)
	if h.b.Cwnd() > bbrMinCwndSegments*testMSS {
		t.Fatalf("cwnd after RTO = %v, want ≤ %v", h.b.Cwnd(), bbrMinCwndSegments*testMSS)
	}
	for i := 0; i < 10; i++ {
		h.round()
	}
	if h.b.Cwnd() < prior*8/10 {
		t.Fatalf("cwnd not rebuilt after RTO: %v, prior %v", h.b.Cwnd(), prior)
	}
}

func TestBBRAppLimitedSamplesOnlyRaise(t *testing.T) {
	b := NewBBR(testMSS, sim.NewRNG(1))
	base := AckEvent{
		Now: sim.Second, AckedBytes: testMSS, RTT: 20 * sim.Millisecond,
		Rate: 100 * units.MbitPerSec, RoundStart: true, Delivered: testMSS,
	}
	b.OnAck(base)
	if b.BtlBw() != 100*units.MbitPerSec {
		t.Fatalf("BtlBw = %v", b.BtlBw())
	}
	// A lower app-limited sample must be ignored.
	low := base
	low.Now += 20 * sim.Millisecond
	low.Rate = 10 * units.MbitPerSec
	low.RateAppLimited = true
	b.OnAck(low)
	if b.BtlBw() != 100*units.MbitPerSec {
		t.Fatalf("app-limited sample lowered BtlBw to %v", b.BtlBw())
	}
	// A higher app-limited sample may raise it.
	high := base
	high.Now += 40 * sim.Millisecond
	high.Rate = 200 * units.MbitPerSec
	high.RateAppLimited = true
	b.OnAck(high)
	if b.BtlBw() != 200*units.MbitPerSec {
		t.Fatalf("higher app-limited sample ignored: %v", b.BtlBw())
	}
}

func TestBBRRandomizedCycleStartAvoidsDrainPhase(t *testing.T) {
	// The randomized starting phase must never be the 0.75 drain phase
	// (index 1 would be... index 0 is 1.25; the implementation starts in
	// [1,7] which excludes the 1.25 probe phase, matching the reference).
	for seed := uint64(0); seed < 50; seed++ {
		b := NewBBR(testMSS, sim.NewRNG(seed))
		b.enterProbeBW(0)
		if b.cycleIndex == 0 {
			t.Fatalf("seed %d: cycle started at the 1.25 probe phase", seed)
		}
	}
}

func TestBBRRequiresRNG(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewBBR(nil rng) did not panic")
		}
	}()
	NewBBR(testMSS, nil)
}

func TestBBRAckAggregationAllowance(t *testing.T) {
	b := NewBBR(testMSS, sim.NewRNG(1))
	// Prime the model: 100 Mbps, 20 ms.
	h := &bbrHarness{b: b, rtt: 20 * sim.Millisecond, linkRate: 100 * units.MbitPerSec}
	for i := 0; i < 40; i++ {
		h.round()
	}
	base := b.targetCwnd()
	// Deliver a large aggregated ACK burst: far more bytes at one
	// instant than the estimated bandwidth predicts.
	now := h.now + sim.Millisecond
	b.OnAck(AckEvent{
		Now:        now,
		AckedBytes: 40 * testMSS,
		RTT:        20 * sim.Millisecond,
		Delivered:  h.delivered + 40*testMSS,
		Rate:       b.BtlBw(),
		InFlight:   0,
	})
	if got := b.extraAcked(); got == 0 {
		t.Fatal("aggregated burst produced no extra-acked allowance")
	}
	if got := b.targetCwnd(); got <= base {
		t.Fatalf("target did not grow with aggregation: %v <= %v", got, base)
	}
}

func TestBBRAckAggregationEpochReset(t *testing.T) {
	b := NewBBR(testMSS, sim.NewRNG(1))
	h := &bbrHarness{b: b, rtt: 20 * sim.Millisecond, linkRate: 100 * units.MbitPerSec}
	for i := 0; i < 40; i++ {
		h.round()
	}
	// Smooth, paced ACK arrivals at exactly the estimated bandwidth
	// should accumulate (almost) no allowance: each ACK's bytes match
	// the epoch expectation and reset it.
	bw := b.BtlBw()
	gap := bw.TransmissionTime(testMSS)
	now := h.now
	before := b.extraAcked()
	for i := 0; i < 200; i++ {
		now += gap
		h.delivered += testMSS
		b.OnAck(AckEvent{
			Now: now, AckedBytes: testMSS, RTT: 20 * sim.Millisecond,
			Delivered: h.delivered, Rate: bw, InFlight: 10 * testMSS,
		})
	}
	after := b.extraAcked()
	if after > before+2*testMSS && after > 4*testMSS {
		t.Fatalf("smooth arrivals accumulated allowance: %v → %v", before, after)
	}
}
