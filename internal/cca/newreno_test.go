package cca

import (
	"testing"

	"ccatscale/internal/sim"
	"ccatscale/internal/units"
)

const testMSS = units.MSS

func ack(bytes units.ByteCount) AckEvent {
	return AckEvent{AckedBytes: bytes, RTT: 20 * sim.Millisecond}
}

func TestRenoInitialWindow(t *testing.T) {
	r := NewReno(testMSS)
	if r.Cwnd() != 10*testMSS {
		t.Fatalf("initial cwnd = %v, want %v", r.Cwnd(), 10*testMSS)
	}
	if !r.InSlowStart() {
		t.Fatal("new connection not in slow start")
	}
	if r.Name() != "reno" || r.PacingRate() != 0 {
		t.Fatal("identity/pacing wrong")
	}
}

func TestRenoSlowStartDoublesPerRound(t *testing.T) {
	r := NewReno(testMSS)
	// One round: every in-flight segment ACKed; cwnd should double
	// (ABC cap of 2·MSS per ACK doesn't bite for 1-segment ACKs).
	start := r.Cwnd()
	for acked := units.ByteCount(0); acked < start; acked += testMSS {
		r.OnAck(ack(testMSS))
	}
	if r.Cwnd() != 2*start {
		t.Fatalf("after one slow-start round cwnd = %v, want %v", r.Cwnd(), 2*start)
	}
}

func TestRenoCongestionAvoidanceLinearGrowth(t *testing.T) {
	r := NewReno(testMSS)
	r.OnEnterRecovery(0, 0) // force out of slow start
	r.OnExitRecovery(0)
	cwnd := r.Cwnd()
	// One full window of ACKs grows cwnd by exactly one MSS.
	var acked units.ByteCount
	for acked < cwnd {
		r.OnAck(ack(testMSS))
		acked += testMSS
	}
	if got := r.Cwnd(); got < cwnd+testMSS || got > cwnd+2*testMSS {
		t.Fatalf("after one CA round cwnd = %v, want ≈%v", got, cwnd+testMSS)
	}
}

func TestRenoHalvingOnRecovery(t *testing.T) {
	r := NewReno(testMSS)
	// Grow a bit first.
	for i := 0; i < 100; i++ {
		r.OnAck(ack(testMSS))
	}
	before := r.Cwnd()
	r.OnEnterRecovery(0, before)
	if got := r.Cwnd(); got != before/2 {
		t.Fatalf("cwnd after MD = %v, want %v", got, before/2)
	}
	if r.InSlowStart() {
		t.Fatal("in slow start right after MD")
	}
}

func TestRenoWindowFrozenDuringRecovery(t *testing.T) {
	r := NewReno(testMSS)
	r.OnEnterRecovery(0, 0)
	during := r.Cwnd()
	for i := 0; i < 50; i++ {
		r.OnAck(ack(testMSS))
	}
	if r.Cwnd() != during {
		t.Fatalf("cwnd grew during recovery: %v → %v", during, r.Cwnd())
	}
	r.OnExitRecovery(0)
	// One full window of ACKs after exit must grow the window again.
	for acked := units.ByteCount(0); acked <= during; acked += testMSS {
		r.OnAck(ack(testMSS))
	}
	if r.Cwnd() <= during {
		t.Fatal("cwnd did not resume growth after recovery exit")
	}
}

func TestRenoFloorTwoSegments(t *testing.T) {
	r := NewReno(testMSS)
	for i := 0; i < 20; i++ {
		r.OnEnterRecovery(0, 0)
		r.OnExitRecovery(0)
	}
	if r.Cwnd() != 2*testMSS {
		t.Fatalf("cwnd floor = %v, want %v", r.Cwnd(), 2*testMSS)
	}
}

func TestRenoRTO(t *testing.T) {
	r := NewReno(testMSS)
	for i := 0; i < 100; i++ {
		r.OnAck(ack(testMSS))
	}
	before := r.Cwnd()
	r.OnRTO(0)
	if r.Cwnd() != testMSS {
		t.Fatalf("cwnd after RTO = %v, want 1 MSS", r.Cwnd())
	}
	if !r.InSlowStart() {
		t.Fatal("not in slow start after RTO")
	}
	// Slow start should stop at half the pre-RTO window.
	for i := 0; i < 1000; i++ {
		r.OnAck(ack(testMSS))
		if !r.InSlowStart() {
			break
		}
	}
	if got := r.Cwnd(); got != before/2 {
		t.Fatalf("post-RTO ssthresh plateau = %v, want %v", got, before/2)
	}
}

func TestRenoIgnoresZeroByteAcks(t *testing.T) {
	r := NewReno(testMSS)
	before := r.Cwnd()
	r.OnAck(AckEvent{AckedBytes: 0})
	if r.Cwnd() != before {
		t.Fatal("zero-byte ACK changed cwnd")
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"reno", "newreno", "cubic", "bbr"} {
		f, ok := ByName(name)
		if !ok {
			t.Fatalf("ByName(%q) not found", name)
		}
		c := f(testMSS, sim.NewRNG(1))
		if c.Cwnd() <= 0 {
			t.Fatalf("%s: non-positive initial cwnd", name)
		}
	}
	if _, ok := ByName("copa"); ok {
		t.Fatal("unknown CCA resolved")
	}
}
