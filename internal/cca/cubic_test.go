package cca

import (
	"testing"

	"ccatscale/internal/sim"
	"ccatscale/internal/units"
)

// driveCubicRound delivers one window's worth of 1-MSS ACKs spread over
// rtt, returning the new now.
func driveCubicRound(c *Cubic, now, rtt sim.Time) sim.Time {
	cwnd := c.Cwnd()
	n := int(cwnd / testMSS)
	if n == 0 {
		n = 1
	}
	step := rtt / sim.Time(n)
	for i := 0; i < n; i++ {
		now += step
		c.OnAck(AckEvent{Now: now, AckedBytes: testMSS, RTT: rtt})
	}
	return now
}

func TestCubicInitialAndIdentity(t *testing.T) {
	c := NewCubic(testMSS)
	if c.Cwnd() != 10*testMSS {
		t.Fatalf("initial cwnd = %v", c.Cwnd())
	}
	if c.Name() != "cubic" || c.PacingRate() != 0 {
		t.Fatal("identity/pacing wrong")
	}
	if !c.InSlowStart() {
		t.Fatal("not in slow start initially")
	}
}

func TestCubicSlowStartGrowth(t *testing.T) {
	c := NewCubic(testMSS)
	start := c.Cwnd()
	for acked := units.ByteCount(0); acked < start; acked += testMSS {
		c.OnAck(AckEvent{Now: sim.Millisecond, AckedBytes: testMSS, RTT: 20 * sim.Millisecond})
	}
	if c.Cwnd() != 2*start {
		t.Fatalf("slow-start round: cwnd = %v, want %v", c.Cwnd(), 2*start)
	}
}

func TestCubicMultiplicativeDecreaseIsBeta(t *testing.T) {
	c := NewCubic(testMSS)
	now := sim.Time(0)
	rtt := 20 * sim.Millisecond
	for i := 0; i < 6; i++ {
		now = driveCubicRound(c, now, rtt)
	}
	before := c.Cwnd()
	c.OnEnterRecovery(now, 0)
	got := float64(c.Cwnd()) / float64(before)
	if got < cubicBeta-0.01 || got > cubicBeta+0.01 {
		t.Fatalf("MD factor = %v, want %v", got, cubicBeta)
	}
}

func TestCubicConcaveRecoveryTowardWmax(t *testing.T) {
	// W_max ≈ 80 segments after 3 slow-start doublings, so
	// K = cbrt(80·0.3/0.4) ≈ 3.9 s: the plateau is reachable in a few
	// hundred 100 ms rounds.
	c := NewCubic(testMSS)
	now := sim.Time(0)
	rtt := 100 * sim.Millisecond
	for i := 0; i < 3; i++ {
		now = driveCubicRound(c, now, rtt)
	}
	wMaxBytes := c.Cwnd()
	c.OnEnterRecovery(now, 0)
	c.OnExitRecovery(now)

	for i := 0; i < 600 && c.Cwnd() < wMaxBytes*95/100; i++ {
		now = driveCubicRound(c, now, rtt)
	}
	if c.Cwnd() < wMaxBytes*95/100 {
		t.Fatalf("window never recovered toward W_max: %v < %v", c.Cwnd(), wMaxBytes)
	}
	// The recovery must have taken at least K seconds: cubic approaches
	// the old maximum slowly (concave region), unlike slow start.
	kSeconds := (now - 0).Seconds()
	if kSeconds < 2 {
		t.Fatalf("recovered implausibly fast (%.1fs); concave region not honored", kSeconds)
	}
}

func TestCubicConvexGrowthBeyondWmax(t *testing.T) {
	c := NewCubic(testMSS)
	now := sim.Time(0)
	rtt := 100 * sim.Millisecond
	for i := 0; i < 3; i++ {
		now = driveCubicRound(c, now, rtt)
	}
	wMax := c.Cwnd()
	c.OnEnterRecovery(now, 0)
	c.OnExitRecovery(now)
	// Drive well past the plateau: beyond K the cubic term goes convex
	// and the window must clear 2×W_max.
	for i := 0; i < 600 && c.Cwnd() < 2*wMax; i++ {
		now = driveCubicRound(c, now, rtt)
	}
	if c.Cwnd() < 2*wMax {
		t.Fatalf("window did not enter convex growth: %v after plateau %v", c.Cwnd(), wMax)
	}
}

func TestCubicFastConvergence(t *testing.T) {
	c := NewCubic(testMSS)
	now := sim.Time(0)
	rtt := 20 * sim.Millisecond
	for i := 0; i < 8; i++ {
		now = driveCubicRound(c, now, rtt)
	}
	c.OnEnterRecovery(now, 0)
	c.OnExitRecovery(now)
	firstWmax := c.wMax
	// Second loss before regaining wMax → wMax should shrink below the
	// current window's natural wMax (fast convergence releases room).
	c.OnEnterRecovery(now, 0)
	if c.wMax >= firstWmax {
		t.Fatalf("fast convergence did not shrink wMax: %v → %v", firstWmax, c.wMax)
	}
}

func TestCubicRTO(t *testing.T) {
	c := NewCubic(testMSS)
	now := driveCubicRound(c, 0, 20*sim.Millisecond)
	c.OnRTO(now)
	if c.Cwnd() != testMSS {
		t.Fatalf("cwnd after RTO = %v, want 1 MSS", c.Cwnd())
	}
}

func TestCubicFrozenInRecovery(t *testing.T) {
	c := NewCubic(testMSS)
	c.OnEnterRecovery(sim.Second, 0)
	during := c.Cwnd()
	for i := 0; i < 20; i++ {
		c.OnAck(AckEvent{Now: sim.Second + sim.Time(i)*sim.Millisecond, AckedBytes: testMSS, RTT: 20 * sim.Millisecond})
	}
	if c.Cwnd() != during {
		t.Fatalf("cwnd changed during recovery: %v → %v", during, c.Cwnd())
	}
}

func TestCubicGrowsFasterAtHigherRTT(t *testing.T) {
	// Cubic's RTT-independence of the cubic term means the window in
	// segments grows with wall time, so per-round growth at 200 ms RTT
	// should exceed NewReno's one-MSS-per-round by a wide margin once in
	// the convex region. This is the property that lets Cubic out-compete
	// NewReno (paper Finding 8).
	c := NewCubic(testMSS)
	now := sim.Time(0)
	rtt := 200 * sim.Millisecond
	for i := 0; i < 6; i++ {
		now = driveCubicRound(c, now, rtt)
	}
	c.OnEnterRecovery(now, 0)
	c.OnExitRecovery(now)
	start := c.Cwnd()
	rounds := 30
	for i := 0; i < rounds; i++ {
		now = driveCubicRound(c, now, rtt)
	}
	growth := c.Cwnd() - start
	renoGrowth := units.ByteCount(rounds) * testMSS
	if growth < 2*renoGrowth {
		t.Fatalf("cubic growth %v not clearly above reno growth %v at 200ms RTT", growth, renoGrowth)
	}
}

func TestHyStartExitsBeforeOvershoot(t *testing.T) {
	// A pipe with 50-segment BDP: as slow start exceeds it, RTT climbs;
	// HyStart must end slow start well before the window doubles past
	// the pipe.
	c := NewCubic(testMSS)
	now := sim.Time(0)
	base := 20 * sim.Millisecond
	bdpSegs := 50.0
	perSeg := sim.Time(float64(base) / bdpSegs)
	for round := 0; round < 20 && c.InSlowStart(); round++ {
		cwndSegs := float64(c.Cwnd() / testMSS)
		rtt := base
		if cwndSegs > bdpSegs {
			rtt += sim.Time(cwndSegs-bdpSegs) * perSeg
		}
		n := int(cwndSegs)
		for i := 0; i < n; i++ {
			now += rtt / sim.Time(n)
			c.OnAck(AckEvent{Now: now, AckedBytes: testMSS, RTT: rtt, RoundStart: i == 0})
		}
	}
	if c.InSlowStart() {
		t.Fatal("HyStart never ended slow start despite RTT growth")
	}
	if c.HyStartExits() == 0 {
		t.Fatal("exit not attributed to HyStart")
	}
	// Exit must happen before a catastrophic overshoot (≾ 3×BDP).
	if got := float64(c.Cwnd() / testMSS); got > 3*bdpSegs {
		t.Fatalf("HyStart exit at %v segs; overshoot not prevented", got)
	}
}

func TestHyStartDisabledKeepsClassicSlowStart(t *testing.T) {
	c := NewCubic(testMSS)
	c.SetHyStart(false)
	now := sim.Time(0)
	base := 20 * sim.Millisecond
	// Strongly rising RTT, but HyStart is off: slow start continues
	// until loss.
	for round := 0; round < 10; round++ {
		rtt := base + sim.Time(round)*10*sim.Millisecond
		n := int(c.Cwnd() / testMSS)
		for i := 0; i < n; i++ {
			now += rtt / sim.Time(n)
			c.OnAck(AckEvent{Now: now, AckedBytes: testMSS, RTT: rtt, RoundStart: i == 0})
		}
	}
	if !c.InSlowStart() {
		t.Fatal("slow start ended without loss despite HyStart disabled")
	}
}

func TestHyStartIgnoresSmallWindows(t *testing.T) {
	c := NewCubic(testMSS)
	now := sim.Time(0)
	// Below hystartLowWindow segments, rising RTT must not end slow
	// start (avoids spurious exits on tiny flows).
	for round := 0; round < 3 && float64(c.Cwnd()/testMSS) < hystartLowWindow; round++ {
		rtt := 20*sim.Millisecond + sim.Time(round)*20*sim.Millisecond
		n := int(c.Cwnd() / testMSS)
		for i := 0; i < n; i++ {
			now += rtt / sim.Time(n)
			c.OnAck(AckEvent{Now: now, AckedBytes: testMSS, RTT: rtt, RoundStart: i == 0})
		}
		if !c.InSlowStart() {
			t.Fatal("HyStart fired below the low-window threshold")
		}
	}
}
