package cca

import (
	"testing"

	"ccatscale/internal/sim"
)

// vegasRound delivers one round of ACKs with the given observed RTT and
// base (min) RTT.
func vegasRound(v *Vegas, now *sim.Time, rtt, base sim.Time) {
	n := int(v.Cwnd() / testMSS)
	if n == 0 {
		n = 1
	}
	for i := 0; i < n; i++ {
		*now += rtt / sim.Time(n)
		v.OnAck(AckEvent{
			Now:        *now,
			AckedBytes: testMSS,
			RTT:        rtt,
			MinRTT:     base,
			RoundStart: i == 0,
		})
	}
}

func TestVegasIdentity(t *testing.T) {
	v := NewVegas(testMSS)
	if v.Name() != "vegas" || v.PacingRate() != 0 {
		t.Fatal("identity")
	}
	if v.Cwnd() != 10*testMSS || !v.InSlowStart() {
		t.Fatalf("initial state: cwnd=%v ss=%v", v.Cwnd(), v.InSlowStart())
	}
	if _, ok := ByName("vegas"); !ok {
		t.Fatal("vegas not registered")
	}
}

func TestVegasSlowStartEveryOtherRound(t *testing.T) {
	v := NewVegas(testMSS)
	now := sim.Time(0)
	base := 20 * sim.Millisecond
	start := v.Cwnd()
	// No queueing: RTT == base, Diff = 0 < γ → stay in slow start.
	vegasRound(v, &now, base, base)
	vegasRound(v, &now, base, base)
	vegasRound(v, &now, base, base)
	vegasRound(v, &now, base, base)
	if v.Cwnd() < 2*start || v.Cwnd() > 4*start {
		t.Fatalf("after 4 rounds cwnd = %v (start %v): want ≈2 doublings", v.Cwnd(), start)
	}
	if !v.InSlowStart() {
		t.Fatal("left slow start without queueing signal")
	}
}

func TestVegasExitsSlowStartOnQueueing(t *testing.T) {
	v := NewVegas(testMSS)
	now := sim.Time(0)
	base := 20 * sim.Millisecond
	// Observed RTT 50% above base: Diff = cwnd·(1−20/30) = cwnd/3 > γ.
	vegasRound(v, &now, 30*sim.Millisecond, base)
	vegasRound(v, &now, 30*sim.Millisecond, base)
	if v.InSlowStart() {
		t.Fatal("still in slow start despite queueing")
	}
}

func TestVegasSteersDiffIntoAlphaBetaBand(t *testing.T) {
	v := NewVegas(testMSS)
	now := sim.Time(0)
	base := 20 * sim.Millisecond
	// A synthetic single-bottleneck pipe: RTT grows linearly with the
	// window beyond the BDP (50 segments).
	bdpSegs := 50.0
	perSeg := sim.Time(float64(base) / bdpSegs) // queue delay per extra segment
	for i := 0; i < 200; i++ {
		cwndSegs := float64(v.Cwnd() / testMSS)
		rtt := base
		if cwndSegs > bdpSegs {
			rtt += sim.Time(cwndSegs-bdpSegs) * perSeg
		}
		vegasRound(v, &now, rtt, base)
	}
	// Steady state: Diff ∈ [α, β] ⇒ cwnd between bdp+α and bdp+β
	// (approximately — Diff is computed against the inflated RTT).
	got := float64(v.Cwnd() / testMSS)
	if got < bdpSegs+1 || got > bdpSegs+10 {
		t.Fatalf("steady cwnd = %v segs, want ≈ BDP+[α,β] (50+2..4)", got)
	}
}

func TestVegasBacksOffAboveBeta(t *testing.T) {
	v := NewVegas(testMSS)
	v.inSlowStart = false
	v.cwnd = 100 * testMSS
	now := sim.Time(0)
	base := 20 * sim.Millisecond
	before := v.Cwnd()
	// RTT double the base: Diff = 50 ≫ β → shrink.
	vegasRound(v, &now, 40*sim.Millisecond, base)
	vegasRound(v, &now, 40*sim.Millisecond, base)
	if v.Cwnd() >= before {
		t.Fatalf("cwnd did not shrink: %v → %v", before, v.Cwnd())
	}
}

func TestVegasRecoveryAndRTO(t *testing.T) {
	v := NewVegas(testMSS)
	v.inSlowStart = false
	v.cwnd = 100 * testMSS
	v.OnEnterRecovery(0, 0)
	if v.Cwnd() != 75*testMSS {
		t.Fatalf("recovery cwnd = %v, want 3/4", v.Cwnd())
	}
	// Frozen during recovery.
	now := sim.Time(0)
	vegasRound(v, &now, 20*sim.Millisecond, 20*sim.Millisecond)
	if v.Cwnd() != 75*testMSS {
		t.Fatal("cwnd changed during recovery")
	}
	v.OnExitRecovery(0)
	v.OnRTO(0)
	if v.Cwnd() != testMSS || !v.InSlowStart() {
		t.Fatalf("post-RTO state: cwnd=%v ss=%v", v.Cwnd(), v.InSlowStart())
	}
}

func TestVegasFloor(t *testing.T) {
	v := NewVegas(testMSS)
	v.inSlowStart = false
	v.cwnd = 2 * testMSS
	now := sim.Time(0)
	for i := 0; i < 10; i++ {
		vegasRound(v, &now, 60*sim.Millisecond, 20*sim.Millisecond)
	}
	if v.Cwnd() < 2*testMSS {
		t.Fatalf("cwnd below floor: %v", v.Cwnd())
	}
}

func TestVegasStarvedByLossBasedCompetitor(t *testing.T) {
	// Not a unit test of Vegas alone but of the registered name: a
	// quick sanity check that the factory wires into the library (the
	// integration behavior is exercised in internal/core tests).
	f, ok := ByName("vegas")
	if !ok {
		t.Fatal("factory missing")
	}
	c := f(testMSS, nil)
	if c.Name() != "vegas" {
		t.Fatal("factory produced wrong CCA")
	}
}

func TestNamesListsAll(t *testing.T) {
	names := Names()
	if len(names) != 6 {
		t.Fatalf("Names = %v", names)
	}
	for _, n := range names {
		if _, ok := ByName(n); !ok {
			t.Fatalf("listed name %q not resolvable", n)
		}
	}
}
