package cca

import (
	"ccatscale/internal/sim"
	"ccatscale/internal/units"
)

// Vegas constants (Brakmo & Peterson 1994; Linux tcp_vegas defaults).
const (
	vegasAlpha = 2 // lower bound on queued segments
	vegasBeta  = 4 // upper bound on queued segments
	vegasGamma = 1 // slow-start exit threshold
)

// Vegas implements TCP Vegas (Brakmo, O'Malley, Peterson 1994), the
// classic delay-based CCA the paper cites among the deployed
// algorithms. Vegas estimates how many of its own segments are queued
// at the bottleneck — Diff = cwnd·(1 − baseRTT/RTT) — and steers the
// window to keep Diff between α and β segments, backing off before
// loss rather than in response to it.
//
// Vegas is included as an extension beyond the paper's three measured
// CCAs: a delay-based endpoint makes the at-scale harness useful for
// studying how delay-based flows fare against the queue-filling
// algorithms the paper measures (they famously starve — the reason the
// paper's candidates are what they are).
type Vegas struct {
	mss units.ByteCount

	cwnd     units.ByteCount
	ssthresh units.ByteCount

	// Per-round state: Vegas adjusts once per round trip using the
	// round's minimum RTT sample.
	roundMinRTT sim.Time
	inSlowStart bool
	evenRound   bool // slow start grows every other round

	inRecovery bool
}

// NewVegas returns a Vegas controller with the standard initial window.
func NewVegas(mss units.ByteCount) *Vegas {
	return &Vegas{
		mss:         mss,
		cwnd:        InitialCwndSegments * mss,
		ssthresh:    units.ByteCount(1) << 40,
		inSlowStart: true,
	}
}

// Name implements CCA.
func (v *Vegas) Name() string { return "vegas" }

// Cwnd implements CCA.
func (v *Vegas) Cwnd() units.ByteCount { return v.cwnd }

// PacingRate implements CCA: Vegas is ACK-clocked.
func (v *Vegas) PacingRate() units.Bandwidth { return 0 }

// InSlowStart reports whether Vegas is still in its modified slow
// start.
func (v *Vegas) InSlowStart() bool { return v.inSlowStart }

// Ssthresh returns the slow-start threshold (for instrumentation and
// the invariant auditor).
func (v *Vegas) Ssthresh() units.ByteCount { return v.ssthresh }

// OnAck implements CCA: collect the round's best RTT sample and adjust
// the window once per round.
func (v *Vegas) OnAck(ev AckEvent) {
	if v.inRecovery {
		return
	}
	if ev.RTT > 0 && (v.roundMinRTT == 0 || ev.RTT < v.roundMinRTT) {
		v.roundMinRTT = ev.RTT
	}
	if !ev.RoundStart {
		return
	}
	rtt := v.roundMinRTT
	v.roundMinRTT = 0
	base := ev.MinRTT
	if rtt <= 0 || base <= 0 {
		return
	}

	// Diff: segments of our own data sitting in queues.
	cwndSeg := float64(v.cwnd) / float64(v.mss)
	diff := cwndSeg * (1 - float64(base)/float64(rtt))

	if v.inSlowStart {
		if diff > vegasGamma {
			// Queue building: leave slow start and trim the excess.
			v.inSlowStart = false
			v.cwnd -= units.ByteCount(diff) * v.mss / 2
			v.clampFloor()
			v.ssthresh = v.cwnd
			return
		}
		// Grow every other round (Vegas's cautious doubling).
		v.evenRound = !v.evenRound
		if v.evenRound {
			v.cwnd *= 2
		}
		return
	}

	switch {
	case diff < vegasAlpha:
		v.cwnd += v.mss
	case diff > vegasBeta:
		v.cwnd -= v.mss
		v.clampFloor()
	}
}

// OnEnterRecovery implements CCA: Vegas treats a fast retransmit as a
// mild signal (window to 3/4) since its delay control usually prevents
// queue overflow.
func (v *Vegas) OnEnterRecovery(_ sim.Time, _ units.ByteCount) {
	v.cwnd = v.cwnd * 3 / 4
	v.clampFloor()
	v.ssthresh = v.cwnd
	v.inSlowStart = false
	v.inRecovery = true
}

// OnExitRecovery implements CCA.
func (v *Vegas) OnExitRecovery(_ sim.Time) { v.inRecovery = false }

// OnECNMark implements CCA: Vegas has no native ECN response, so it
// borrows its own mild fast-retransmit reaction (window to 3/4) — the
// mark says a queue formed that the delay controller missed.
func (v *Vegas) OnECNMark(_ sim.Time, _ units.ByteCount) {
	if v.inRecovery {
		return
	}
	v.cwnd = v.cwnd * 3 / 4
	v.clampFloor()
	v.ssthresh = v.cwnd
	v.inSlowStart = false
}

// OnRTO implements CCA.
func (v *Vegas) OnRTO(_ sim.Time) {
	v.ssthresh = maxBytes(v.cwnd/2, 2*v.mss)
	v.cwnd = v.mss
	v.inSlowStart = true
	v.evenRound = false
	v.inRecovery = false
}

func (v *Vegas) clampFloor() {
	if v.cwnd < 2*v.mss {
		v.cwnd = 2 * v.mss
	}
}
