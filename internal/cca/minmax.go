package cca

// maxFilter is a windowed maximum estimator over an integer-stamped
// window (round-trip counts for BBR's bottleneck-bandwidth filter). It
// is a direct port of the Kathleen Nichols lib/minmax design used by
// Linux: the best three samples are kept so the maximum can "decay" as
// stale samples age out, in O(1) time and space.
//
// The estimate never underruns the most recent sample and never exceeds
// the all-time maximum; like the kernel's, it is an approximation of
// the exact windowed maximum that errs only on the side of remembering
// a recently-expired larger sample slightly too long.
type maxFilter struct {
	window uint64 // width in stamp units
	s      [3]maxSample
}

type maxSample struct {
	t uint64
	v int64
}

// newMaxFilter creates a filter whose samples expire after window stamp
// units.
func newMaxFilter(window uint64) *maxFilter {
	return &maxFilter{window: window}
}

// Update inserts a sample and returns the current windowed maximum.
func (f *maxFilter) Update(t uint64, v int64) int64 {
	val := maxSample{t, v}
	if v >= f.s[0].v || // found new max
		t-f.s[2].t > f.window { // nothing left in window
		f.reset(val)
		return f.Get()
	}
	if v >= f.s[1].v {
		f.s[1] = val
	} else if v >= f.s[2].v {
		f.s[2] = val
	}
	f.subwinUpdate(val)
	return f.Get()
}

// subwinUpdate ages out best choices that have fallen out of the window
// (the "quarter/half window without a challenger" heuristic from
// lib/minmax.c).
func (f *maxFilter) subwinUpdate(val maxSample) {
	dt := val.t - f.s[0].t
	switch {
	case dt > f.window:
		// Passed the entire window without a new max: make the 2nd
		// choice the new best, the 3rd the new 2nd, and insert val.
		f.s[0] = f.s[1]
		f.s[1] = f.s[2]
		f.s[2] = val
		if val.t-f.s[0].t > f.window {
			f.s[0] = f.s[1]
			f.s[1] = f.s[2]
			f.s[2] = val
		}
	case f.s[1].t == f.s[0].t && dt > f.window/4:
		// A quarter of the window passed without a better 2nd choice.
		f.s[1] = val
		f.s[2] = val
	case f.s[2].t == f.s[1].t && dt > f.window/2:
		// Half the window passed without a better 3rd choice.
		f.s[2] = val
	}
}

func (f *maxFilter) reset(val maxSample) {
	f.s[0] = val
	f.s[1] = val
	f.s[2] = val
}

// Get returns the current windowed maximum.
func (f *maxFilter) Get() int64 { return f.s[0].v }
