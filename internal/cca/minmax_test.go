package cca

import (
	"testing"
	"testing/quick"

	"ccatscale/internal/sim"
)

func TestMaxFilterTracksMax(t *testing.T) {
	f := newMaxFilter(10)
	f.Update(0, 100)
	if f.Get() != 100 {
		t.Fatalf("Get = %d, want 100", f.Get())
	}
	f.Update(1, 50)
	if f.Get() != 100 {
		t.Fatalf("smaller sample changed max: %d", f.Get())
	}
	f.Update(2, 200)
	if f.Get() != 200 {
		t.Fatalf("larger sample not adopted: %d", f.Get())
	}
}

func TestMaxFilterExpiry(t *testing.T) {
	f := newMaxFilter(10)
	f.Update(0, 1000)
	for tm := uint64(1); tm <= 30; tm++ {
		f.Update(tm, 100)
	}
	if f.Get() != 100 {
		t.Fatalf("stale max survived expiry: %d", f.Get())
	}
}

func TestMaxFilterDecaysThroughIntermediates(t *testing.T) {
	f := newMaxFilter(10)
	f.Update(0, 1000)
	f.Update(3, 500)
	f.Update(6, 200)
	// At t=11 the 1000 sample has expired; the 500 one should take over.
	f.Update(11, 100)
	if f.Get() != 500 {
		t.Fatalf("after first expiry Get = %d, want 500", f.Get())
	}
	// At t=14 the 500 sample has expired too.
	f.Update(14, 100)
	if f.Get() != 200 {
		t.Fatalf("after second expiry Get = %d, want 200", f.Get())
	}
}

// Property: the filter is a sound approximation — its estimate never
// exceeds the maximum over samples in the last 2×window stamps (bounded
// staleness), and never falls below the most recent sample.
func TestMaxFilterBoundsProperty(t *testing.T) {
	f := func(vals []uint16) bool {
		const window = 8
		filt := newMaxFilter(window)
		var all []maxSample
		for i, v := range vals {
			tm := uint64(i)
			filt.Update(tm, int64(v))
			all = append(all, maxSample{tm, int64(v)})
			var maxRecent int64
			for _, s := range all {
				if tm-s.t <= 2*window && s.v > maxRecent {
					maxRecent = s.v
				}
			}
			got := filt.Get()
			if got > maxRecent || got < int64(v) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: a constant stream converges the estimate to that constant
// within one window, regardless of history.
func TestMaxFilterConvergenceProperty(t *testing.T) {
	f := func(history []uint16, c uint16) bool {
		const window = 8
		filt := newMaxFilter(window)
		tm := uint64(0)
		for _, v := range history {
			filt.Update(tm, int64(v))
			tm++
		}
		for i := 0; i < 2*window+2; i++ {
			filt.Update(tm, int64(c))
			tm++
		}
		return filt.Get() == int64(c)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestBBRStateString(t *testing.T) {
	for s, want := range map[bbrState]string{
		bbrStartup:  "STARTUP",
		bbrDrain:    "DRAIN",
		bbrProbeBW:  "PROBE_BW",
		bbrProbeRTT: "PROBE_RTT",
		bbrState(9): "bbrState(9)",
	} {
		if got := s.String(); got != want {
			t.Errorf("String(%d) = %q, want %q", s, got, want)
		}
	}
	b := NewBBR(testMSS, sim.NewRNG(1))
	if b.State() != "STARTUP" {
		t.Fatalf("new BBR state = %s", b.State())
	}
}
