package cca

import (
	"ccatscale/internal/sim"
	"ccatscale/internal/units"
)

// BBRv2 constants, following the structure of
// draft-cardwell-iccrg-bbr-congestion-control-02 and the Linux/Google
// bbr2 reference parameters.
const (
	bbr2Beta = 0.7 // multiplicative cut applied to the lower bounds on loss

	// bbr2LossThresh is the per-round loss-rate ceiling the probe
	// respects: probing stops raising inflight_hi once a round loses
	// more than this fraction.
	bbr2LossThresh = 0.02

	// bbr2Headroom keeps inflight slightly below the estimated ceiling
	// to leave room for entering flows.
	bbr2Headroom = 0.85

	// bbr2MinRTTWin is the (shorter than v1) min-RTT validity window.
	bbr2MinRTTWin = 5 * sim.Second

	// bbr2ProbeRTTCwndGain floors PROBE_RTT at half a BDP instead of
	// v1's four packets — a far milder drain.
	bbr2ProbeRTTCwndGain = 0.5

	// bbr2ProbeBWCycles is the number of non-probing rounds between
	// bandwidth probes (time-scaled in the reference; round-scaled
	// here, matching the simulation's ack-clocked granularity).
	bbr2ProbeBWCycles = 8
)

// bbr2State is the BBRv2 state machine phase.
type bbr2State uint8

const (
	bbr2Startup bbr2State = iota
	bbr2Drain
	bbr2ProbeBWDown
	bbr2ProbeBWCruise
	bbr2ProbeBWRefill
	bbr2ProbeBWUp
	bbr2ProbeRTT
)

func (s bbr2State) String() string {
	switch s {
	case bbr2Startup:
		return "STARTUP"
	case bbr2Drain:
		return "DRAIN"
	case bbr2ProbeBWDown:
		return "PROBE_DOWN"
	case bbr2ProbeBWCruise:
		return "CRUISE"
	case bbr2ProbeBWRefill:
		return "REFILL"
	case bbr2ProbeBWUp:
		return "PROBE_UP"
	case bbr2ProbeRTT:
		return "PROBE_RTT"
	}
	return "bbr2State(?)"
}

// BBR2 implements a faithful-in-structure, simplified BBRv2: the same
// bandwidth/min-RTT model as BBRv1 plus the v2 additions that address
// v1's deployment complaints the paper raises — an explicit loss
// response (bounded multiplicative decrease of the short-term bounds),
// headroom below the estimated inflight ceiling, milder and less
// frequent probing, and a much lighter PROBE_RTT.
//
// BBRv2 is an extension beyond the paper's measured CCAs ("a work in
// progress" at publication time); the harness includes it so the
// paper's at-scale methodology can be applied to it — exactly the
// future evaluation the paper calls for.
type BBR2 struct {
	mss units.ByteCount
	rng *sim.RNG

	state bbr2State

	btlBwFilter *maxFilter
	rtProp      sim.Time
	rtPropStamp sim.Time
	rtPropValid bool
	rtPropExp   bool

	roundCount uint64

	// Short-term bounds (reset on loss, decay upward).
	bwLo       units.Bandwidth
	inflightLo units.ByteCount
	// Long-term ceiling discovered by probing into loss.
	inflightHi units.ByteCount

	pacingGain float64
	cwndGain   float64
	cwnd       units.ByteCount
	pacingRate units.Bandwidth

	filledPipe  bool
	fullBwBase  units.Bandwidth
	fullBwCount int

	// Probe scheduling (round-based).
	roundsInPhase int

	// Per-round loss accounting.
	lossRoundDelivered units.ByteCount
	lossRoundLost      units.ByteCount
	lastRoundLossy     bool

	probeRTTDoneStamp sim.Time
	probeRTTRoundDone bool

	priorCwnd          units.ByteCount
	inRecovery         bool
	packetConservation bool
	restoreOnRound     bool
}

// NewBBR2 returns a BBRv2 controller.
func NewBBR2(mss units.ByteCount, rng *sim.RNG) *BBR2 {
	if rng == nil {
		panic("cca: BBR2 requires an RNG")
	}
	b := &BBR2{
		mss:         mss,
		rng:         rng,
		btlBwFilter: newMaxFilter(bbrBtlBwFilterLen),
		cwnd:        InitialCwndSegments * mss,
		state:       bbr2Startup,
		pacingGain:  bbrHighGain,
		cwndGain:    bbrHighGain,
	}
	return b
}

// Name implements CCA.
func (b *BBR2) Name() string { return "bbr2" }

// Cwnd implements CCA.
func (b *BBR2) Cwnd() units.ByteCount { return b.cwnd }

// PacingRate implements CCA.
func (b *BBR2) PacingRate() units.Bandwidth { return b.pacingRate }

// State returns the phase name (for tests and instrumentation).
func (b *BBR2) State() string { return b.state.String() }

// BtlBw returns the effective bandwidth estimate: the windowed max
// bounded by the short-term bw_lo.
func (b *BBR2) BtlBw() units.Bandwidth {
	bw := units.Bandwidth(b.btlBwFilter.Get())
	if b.bwLo > 0 && b.bwLo < bw {
		bw = b.bwLo
	}
	return bw
}

// RTProp returns the min-RTT estimate.
func (b *BBR2) RTProp() sim.Time { return b.rtProp }

// ControlsRecovery implements cca.RecoveryController.
func (b *BBR2) ControlsRecovery() {}

func (b *BBR2) bdp(gain float64) units.ByteCount {
	bw := b.BtlBw()
	if bw == 0 || !b.rtPropValid {
		return 0
	}
	return units.ByteCount(gain * bw.BytesPerSec() * b.rtProp.Seconds())
}

// OnAck implements CCA.
func (b *BBR2) OnAck(ev AckEvent) {
	if ev.RoundStart {
		b.roundCount++
		b.roundsInPhase++
		b.endLossRound()
		if b.packetConservation {
			b.packetConservation = false
			b.restoreCwnd()
		}
		if b.restoreOnRound {
			b.restoreOnRound = false
			b.restoreCwnd()
		}
	}
	b.lossRoundDelivered += ev.AckedBytes

	if ev.Rate > 0 && (!ev.RateAppLimited || int64(ev.Rate) > b.btlBwFilter.Get()) {
		b.btlBwFilter.Update(b.roundCount, int64(ev.Rate))
	}
	b.updateRTProp(ev)
	b.updateState(ev)
	b.setPacing()
	b.setCwnd(ev)
}

// endLossRound evaluates the finished round's loss rate and advances
// the bound decay.
func (b *BBR2) endLossRound() {
	total := b.lossRoundDelivered + b.lossRoundLost
	b.lastRoundLossy = total > 0 && float64(b.lossRoundLost) > bbr2LossThresh*float64(total)
	b.lossRoundDelivered = 0
	b.lossRoundLost = 0
	// Bounds decay back toward the long-term model when rounds are
	// clean.
	if !b.lastRoundLossy {
		if b.bwLo > 0 {
			b.bwLo += b.bwLo / 8
			if int64(b.bwLo) >= b.btlBwFilter.Get() {
				b.bwLo = 0 // bound released
			}
		}
		if b.inflightLo > 0 {
			b.inflightLo += b.inflightLo / 8
			if b.inflightHi == 0 || b.inflightLo >= b.inflightHi {
				b.inflightLo = 0
			}
		}
	}
}

func (b *BBR2) updateRTProp(ev AckEvent) {
	b.rtPropExp = b.rtPropValid && ev.Now-b.rtPropStamp > bbr2MinRTTWin
	if ev.RTT <= 0 {
		return
	}
	if ev.RTT <= b.rtProp || !b.rtPropValid || b.rtPropExp {
		b.rtProp = ev.RTT
		b.rtPropStamp = ev.Now
		b.rtPropValid = true
	}
}

func (b *BBR2) updateState(ev AckEvent) {
	switch b.state {
	case bbr2Startup:
		b.checkFullPipe(ev)
		if b.filledPipe || b.lastRoundLossy {
			b.filledPipe = true
			b.state = bbr2Drain
			b.pacingGain = bbrDrainGain
			b.cwndGain = bbrCwndGain
		}
	case bbr2Drain:
		if ev.InFlight <= b.bdp(1) {
			b.enterProbeDown(ev)
		}
	case bbr2ProbeBWDown:
		if ev.InFlight <= units.ByteCount(bbr2Headroom*float64(b.bdp(1))) {
			b.state = bbr2ProbeBWCruise
			b.pacingGain = 1
			b.cwndGain = bbrCwndGain
			b.roundsInPhase = 0
		}
	case bbr2ProbeBWCruise:
		if b.roundsInPhase >= bbr2ProbeBWCycles {
			b.state = bbr2ProbeBWRefill
			b.pacingGain = 1
			b.cwndGain = bbrCwndGain
			b.roundsInPhase = 0
			// Refill releases the short-term bounds so the probe can
			// actually lift inflight.
			b.bwLo = 0
			b.inflightLo = 0
		}
	case bbr2ProbeBWRefill:
		if b.roundsInPhase >= 1 {
			b.state = bbr2ProbeBWUp
			b.pacingGain = 1.25
			b.cwndGain = bbrCwndGain
			b.roundsInPhase = 0
		}
	case bbr2ProbeBWUp:
		// Probe until loss says the ceiling was found, or for one
		// min-RTT round past filling the pipe.
		if b.lastRoundLossy {
			b.inflightHi = ev.InFlight + ev.AckedBytes
			b.enterProbeDown(ev)
		} else if b.roundsInPhase >= 2 && ev.InFlight >= b.bdp(1.25) {
			b.enterProbeDown(ev)
		}
	case bbr2ProbeRTT:
		b.handleProbeRTT(ev)
	}
	if b.state != bbr2ProbeRTT && b.state != bbr2Startup && b.rtPropExp {
		b.saveCwnd()
		b.state = bbr2ProbeRTT
		b.pacingGain = 1
		b.cwndGain = bbr2ProbeRTTCwndGain
		b.probeRTTDoneStamp = 0
		b.probeRTTRoundDone = false
	}
}

func (b *BBR2) enterProbeDown(ev AckEvent) {
	b.state = bbr2ProbeBWDown
	b.pacingGain = 0.9
	b.cwndGain = bbrCwndGain
	b.roundsInPhase = 0
}

func (b *BBR2) probeRTTTarget() units.ByteCount {
	t := b.bdp(bbr2ProbeRTTCwndGain)
	if min := units.ByteCount(bbrMinCwndSegments) * b.mss; t < min {
		t = min
	}
	return t
}

func (b *BBR2) handleProbeRTT(ev AckEvent) {
	target := b.probeRTTTarget()
	if b.probeRTTDoneStamp == 0 && ev.InFlight <= target {
		b.probeRTTDoneStamp = ev.Now + bbrProbeRTTDuration
		b.probeRTTRoundDone = false
		return
	}
	if b.probeRTTDoneStamp == 0 {
		return
	}
	if ev.RoundStart {
		b.probeRTTRoundDone = true
	}
	if b.probeRTTRoundDone && ev.Now > b.probeRTTDoneStamp {
		b.rtPropStamp = ev.Now
		b.restoreCwnd()
		b.enterProbeDown(ev)
	}
}

func (b *BBR2) checkFullPipe(ev AckEvent) {
	if b.filledPipe || !ev.RoundStart || ev.RateAppLimited {
		return
	}
	bw := units.Bandwidth(b.btlBwFilter.Get())
	if float64(bw) >= float64(b.fullBwBase)*bbrFullBwThresh {
		b.fullBwBase = bw
		b.fullBwCount = 0
		return
	}
	b.fullBwCount++
	if b.fullBwCount >= bbrFullBwCount {
		b.filledPipe = true
	}
}

func (b *BBR2) setPacing() {
	bw := b.BtlBw()
	if bw == 0 {
		if b.rtPropValid && b.rtProp > 0 {
			init := units.Throughput(b.cwnd, b.rtProp)
			b.pacingRate = units.Bandwidth(bbrHighGain * float64(init))
		}
		return
	}
	rate := units.Bandwidth(b.pacingGain * float64(bw))
	if b.filledPipe || rate > b.pacingRate {
		b.pacingRate = rate
	}
}

func (b *BBR2) inflightTarget() units.ByteCount {
	t := b.bdp(b.cwndGain)
	// Respect the loss-derived bounds with headroom.
	if b.inflightHi > 0 {
		hi := units.ByteCount(bbr2Headroom * float64(b.inflightHi))
		if b.state == bbr2ProbeBWUp || b.state == bbr2ProbeBWRefill {
			hi = b.inflightHi // probing is allowed to touch the ceiling
		}
		if t > hi {
			t = hi
		}
	}
	if b.inflightLo > 0 && b.state != bbr2ProbeBWUp && b.state != bbr2ProbeBWRefill && t > b.inflightLo {
		t = b.inflightLo
	}
	if min := units.ByteCount(bbrMinCwndSegments) * b.mss; t < min {
		t = min
	}
	return t
}

func (b *BBR2) setCwnd(ev AckEvent) {
	target := b.inflightTarget()
	switch {
	case b.packetConservation:
		b.cwnd = ev.InFlight + ev.AckedBytes
	case b.filledPipe:
		b.cwnd += ev.AckedBytes
		if b.cwnd > target {
			b.cwnd = target
		}
	case b.cwnd < target || units.ByteCount(ev.Delivered) < InitialCwndSegments*b.mss:
		b.cwnd += ev.AckedBytes
	}
	if min := units.ByteCount(bbrMinCwndSegments) * b.mss; b.cwnd < min {
		b.cwnd = min
	}
	if b.state == bbr2ProbeRTT {
		if lim := b.probeRTTTarget(); b.cwnd > lim {
			b.cwnd = lim
		}
	}
}

func (b *BBR2) saveCwnd() {
	if !b.inRecovery && b.state != bbr2ProbeRTT && !b.restoreOnRound {
		b.priorCwnd = b.cwnd
	} else if b.cwnd > b.priorCwnd {
		b.priorCwnd = b.cwnd
	}
}

func (b *BBR2) restoreCwnd() {
	if b.cwnd < b.priorCwnd {
		b.cwnd = b.priorCwnd
	}
}

// OnEnterRecovery implements CCA: unlike v1, BBRv2 responds to loss —
// the short-term bounds take a β cut, so the very next windows actually
// shrink.
func (b *BBR2) OnEnterRecovery(_ sim.Time, inFlight units.ByteCount) {
	b.saveCwnd()
	b.inRecovery = true
	b.packetConservation = true
	b.lossRoundLost += b.mss // at least one segment was lost

	bw := units.Bandwidth(b.btlBwFilter.Get())
	cut := units.Bandwidth(bbr2Beta * float64(bw))
	if b.bwLo == 0 || cut < b.bwLo {
		b.bwLo = cut
	}
	infCut := units.ByteCount(bbr2Beta * float64(inFlight))
	if b.inflightLo == 0 || infCut < b.inflightLo {
		b.inflightLo = infCut
	}
	b.cwnd = inFlight + b.mss
	if min := units.ByteCount(bbrMinCwndSegments) * b.mss; b.cwnd < min {
		b.cwnd = min
	}
}

// OnECNMark implements CCA: unlike v1, BBRv2 listens to ECN — an echoed
// CE mark takes the same β cut on the short-term bounds as a loss
// (simplified from the draft's per-round ECN fraction accounting), but
// without entering packet conservation: nothing was lost, so the pipe
// estimate stays trustworthy.
func (b *BBR2) OnECNMark(_ sim.Time, inFlight units.ByteCount) {
	if b.inRecovery {
		return
	}
	bw := units.Bandwidth(b.btlBwFilter.Get())
	cut := units.Bandwidth(bbr2Beta * float64(bw))
	if b.bwLo == 0 || cut < b.bwLo {
		b.bwLo = cut
	}
	infCut := units.ByteCount(bbr2Beta * float64(inFlight))
	if b.inflightLo == 0 || infCut < b.inflightLo {
		b.inflightLo = infCut
	}
}

// OnExitRecovery implements CCA.
func (b *BBR2) OnExitRecovery(_ sim.Time) {
	b.inRecovery = false
	b.packetConservation = false
	b.restoreCwnd()
}

// OnRTO implements CCA.
func (b *BBR2) OnRTO(_ sim.Time) {
	b.saveCwnd()
	b.cwnd = b.mss
	b.packetConservation = false
	b.inRecovery = false
	b.restoreOnRound = true
	b.lossRoundLost += b.mss
}
