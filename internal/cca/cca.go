// Package cca implements the three congestion control algorithms the
// paper studies — NewReno (RFC 6582/5681), Cubic (RFC 8312), and BBRv1
// (Cardwell et al. 2016) — behind a pluggable interface consumed by the
// transport in internal/tcp.
//
// The split of responsibilities mirrors the Linux kernel's: the
// transport owns reliability (SACK scoreboard, retransmission, RTO,
// recovery state) and delivery-rate sampling; the CCA owns the
// congestion window and, for rate-based algorithms, the pacing rate.
package cca

import (
	"ccatscale/internal/sim"
	"ccatscale/internal/units"
)

// InitialCwndSegments is the initial congestion window in segments
// (RFC 6928, the Linux default used by all three of the paper's stacks).
const InitialCwndSegments = 10

// AckEvent carries everything a CCA may want to know about one arriving
// acknowledgment. The transport fills it per ACK after reassembly and
// loss detection.
type AckEvent struct {
	// Now is the virtual arrival time of the ACK.
	Now sim.Time

	// AckedBytes is the number of bytes newly acknowledged by this ACK,
	// cumulatively or selectively.
	AckedBytes units.ByteCount

	// RTT is the round-trip sample produced by this ACK, or 0 when the
	// ACK yielded no sample (Karn's rule: retransmitted segment).
	RTT sim.Time

	// MinRTT is the connection's lifetime minimum RTT estimate (0 until
	// the first sample).
	MinRTT sim.Time

	// Delivered is the connection's cumulative delivered-byte counter
	// after processing this ACK.
	Delivered units.ByteCount

	// Rate is the delivery-rate sample (Cheng et al.) computed from the
	// packet this ACK acknowledges, or 0 when no valid sample exists.
	Rate units.Bandwidth

	// RateAppLimited reports whether the rate sample was taken while
	// the sender was application-limited; such samples may only raise,
	// never lower, a bandwidth estimate.
	RateAppLimited bool

	// RoundStart is true when this ACK begins a new round trip in
	// delivered-byte terms (used by BBR's filters and full-pipe check).
	RoundStart bool

	// InFlight is the transport's in-flight byte estimate ("pipe")
	// after processing this ACK.
	InFlight units.ByteCount

	// InRecovery reports whether the transport is currently in fast
	// recovery.
	InRecovery bool
}

// CCA is a congestion control algorithm. Implementations are stateful
// and belong to exactly one connection; none of the methods are safe for
// concurrent use (the simulation is single-threaded).
type CCA interface {
	// Name returns the algorithm's short name ("reno", "cubic", "bbr").
	Name() string

	// OnAck is invoked once per arriving ACK.
	OnAck(ev AckEvent)

	// OnEnterRecovery is invoked when the transport enters fast
	// recovery (at most once per recovery episode). Loss-based CCAs
	// perform their multiplicative decrease here.
	OnEnterRecovery(now sim.Time, inFlight units.ByteCount)

	// OnExitRecovery is invoked when the recovery point is cumulatively
	// acknowledged.
	OnExitRecovery(now sim.Time)

	// OnRTO is invoked on a retransmission timeout.
	OnRTO(now sim.Time)

	// OnECNMark is invoked when an arriving ACK echoes congestion
	// (RFC 3168 ECE) and the transport elects to react — at most once
	// per window of data, like a single loss event but with nothing to
	// retransmit. inFlight is the pipe estimate at the mark.
	OnECNMark(now sim.Time, inFlight units.ByteCount)

	// Cwnd returns the current congestion window in bytes. The
	// transport sends while in-flight bytes stay below it.
	Cwnd() units.ByteCount

	// PacingRate returns the current pacing rate, or 0 for ACK-clocked
	// algorithms that do not pace.
	PacingRate() units.Bandwidth
}

// RecoveryController is implemented by CCAs that manage their own
// congestion window during loss recovery (rate-based algorithms like
// BBR, which applies packet conservation and save/restore). For CCAs
// without it, the transport applies Proportional Rate Reduction
// (RFC 6937) while in fast recovery, as Linux does for Reno and Cubic.
type RecoveryController interface {
	ControlsRecovery()
}

// Factory builds a CCA instance for one connection. rng provides the
// connection's deterministic randomness (BBR randomizes its ProbeBW
// starting phase).
type Factory func(mss units.ByteCount, rng *sim.RNG) CCA

// ByName returns the factory for a CCA name used across the experiment
// harness and CLIs, or false for an unknown name.
func ByName(name string) (Factory, bool) {
	switch name {
	case "reno", "newreno":
		return func(mss units.ByteCount, _ *sim.RNG) CCA { return NewReno(mss) }, true
	case "cubic":
		return func(mss units.ByteCount, _ *sim.RNG) CCA { return NewCubic(mss) }, true
	case "cubic-nohystart":
		// Ablation variant: Linux cubic with HyStart disabled.
		return func(mss units.ByteCount, _ *sim.RNG) CCA {
			c := NewCubic(mss)
			c.SetHyStart(false)
			return c
		}, true
	case "bbr":
		return func(mss units.ByteCount, rng *sim.RNG) CCA { return NewBBR(mss, rng) }, true
	case "vegas":
		return func(mss units.ByteCount, _ *sim.RNG) CCA { return NewVegas(mss) }, true
	case "bbr2":
		return func(mss units.ByteCount, rng *sim.RNG) CCA { return NewBBR2(mss, rng) }, true
	}
	return nil, false
}

// Names lists the registered CCA names.
func Names() []string {
	return []string{"reno", "cubic", "cubic-nohystart", "bbr", "vegas", "bbr2"}
}
