// Package schema versions the JSON shapes this repository emits — the
// reproduce manifest, table JSON, and the telemetry event stream — so
// tools that read them (cmd/fprint, cmd/tracestat, external analysis)
// can reject a shape they do not understand instead of silently
// fingerprinting or mis-parsing it.
//
// Versions are "major.minor" strings. The major component gates
// compatibility: a reader accepts any minor revision of its own major
// (minors only add fields) and must refuse everything else. Every
// top-level JSON document carries the version in a "schema_version"
// field.
package schema

import (
	"fmt"
	"strconv"
	"strings"
)

// Version is the schema version this build writes into every JSON
// document it emits.
//
// History:
//
//	1.0 — first versioned shapes: manifest.json gains schema_version,
//	      table JSON (report.Table.WriteJSON), telemetry JSONL header.
//	1.1 — crash-safe orchestration shapes: write-ahead journal records
//	      (internal/store JournalRecord), content-addressed store record
//	      trailers, and the manifest jobRecord's "cached" field. Minor
//	      bump: 1.0 readers would only miss additions.
//	1.2 — declarative scenarios: the Scenario document (a JobSpec plus
//	      audit/series knobs behind one schema_version), topology graphs
//	      on JobSpec ("topology", per-group "path"), and ECN fields
//	      ("ecn", "ecnMarkBytes", per-link equivalents). Minor bump: all
//	      additions are omitempty, so 1.1 documents parse unchanged and
//	      1.1 readers only miss fields they never set.
const Version = "1.2"

// Field is the canonical JSON key carrying the version.
const Field = "schema_version"

// Major returns the major component of a "major.minor" version string,
// or an error for anything else.
func Major(v string) (int, error) {
	head, _, found := strings.Cut(v, ".")
	if !found {
		return 0, fmt.Errorf("schema: version %q is not major.minor", v)
	}
	m, err := strconv.Atoi(head)
	if err != nil || m < 0 {
		return 0, fmt.Errorf("schema: version %q has a non-numeric major", v)
	}
	return m, nil
}

// Check accepts a document version this build can read: same major as
// Version, any minor. It returns a descriptive error otherwise — the
// error readers are required to surface instead of proceeding.
func Check(v string) error {
	if v == "" {
		return fmt.Errorf("schema: document carries no %s field (pre-versioning shape, or not a result document)", Field)
	}
	docMajor, err := Major(v)
	if err != nil {
		return err
	}
	ownMajor, err := Major(Version)
	if err != nil {
		return err
	}
	if docMajor != ownMajor {
		return fmt.Errorf("schema: document version %s has major %d, this build reads major %d (%s); refusing to parse a shape it may misread",
			v, docMajor, ownMajor, Version)
	}
	return nil
}
