package schema

import (
	"bytes"
	"encoding/json"
	"fmt"
)

// Scenario shapes: the versioned JSON document that describes one
// experiment declaratively — flows, network (dumbbell or topology
// graph), ECN/AQM marking, and run-length parameters — and fronts both
// cmd/reproduce (-scenario file.json) and ccserve submission. Like
// every schema type it is plain data: rates in Mbps, delays in
// milliseconds, buffers in bytes, no simulator imports.

// LinkDoc is one directed link of a topology graph.
type LinkDoc struct {
	// Name identifies the link; flow paths reference links by name.
	Name string `json:"name"`
	// From and To are node names; traffic flows From → To.
	From string `json:"from"`
	To   string `json:"to"`
	// RateMbps is the link bandwidth in Mbps.
	RateMbps float64 `json:"rateMbps"`
	// DelayMs is the one-way propagation delay in milliseconds.
	DelayMs float64 `json:"delayMs,omitempty"`
	// BufferBytes is the link's queue capacity.
	BufferBytes int64 `json:"bufferBytes"`
	// AQM selects the queue discipline ("" = drop-tail, "codel").
	AQM string `json:"aqm,omitempty"`
	// ECN enables CE marking on this link's queue.
	ECN bool `json:"ecn,omitempty"`
	// ECNMarkBytes overrides the drop-tail marking threshold
	// (0 = BufferBytes/4; ignored without ECN).
	ECNMarkBytes int64 `json:"ecnMarkBytes,omitempty"`
	// LossRate is an i.i.d. per-packet loss probability on the link,
	// in [0, 1).
	LossRate float64 `json:"lossRate,omitempty"`
}

// TopologyDoc is a network graph replacing the implicit dumbbell: named
// nodes, directed links between them, and (via FlowGroup.Path) the
// per-group forward routes. Validation here is structural — name
// resolution, positive rates, probability ranges; graph-level checks
// (path chaining, reachability) run when the document compiles to a
// simulator topology.
type TopologyDoc struct {
	Nodes []string  `json:"nodes"`
	Links []LinkDoc `json:"links"`
}

// Validate rejects structurally broken topology documents.
func (t *TopologyDoc) Validate() error {
	if len(t.Nodes) == 0 {
		return fmt.Errorf("schema: topology has no nodes")
	}
	if len(t.Links) == 0 {
		return fmt.Errorf("schema: topology has no links")
	}
	nodes := make(map[string]bool, len(t.Nodes))
	for _, n := range t.Nodes {
		if n == "" {
			return fmt.Errorf("schema: topology has an empty node name")
		}
		if nodes[n] {
			return fmt.Errorf("schema: topology declares node %q twice", n)
		}
		nodes[n] = true
	}
	names := make(map[string]bool, len(t.Links))
	for i, l := range t.Links {
		if l.Name == "" {
			return fmt.Errorf("schema: topology link %d has no name", i)
		}
		if names[l.Name] {
			return fmt.Errorf("schema: topology declares link %q twice", l.Name)
		}
		names[l.Name] = true
		if !nodes[l.From] {
			return fmt.Errorf("schema: link %q runs from undeclared node %q", l.Name, l.From)
		}
		if !nodes[l.To] {
			return fmt.Errorf("schema: link %q runs to undeclared node %q", l.Name, l.To)
		}
		if l.RateMbps <= 0 {
			return fmt.Errorf("schema: link %q rateMbps %v must be positive (a zero-capacity link could never drain)", l.Name, l.RateMbps)
		}
		if l.BufferBytes <= 0 {
			return fmt.Errorf("schema: link %q bufferBytes %d must be positive", l.Name, l.BufferBytes)
		}
		if l.DelayMs < 0 {
			return fmt.Errorf("schema: link %q delayMs %v must be non-negative", l.Name, l.DelayMs)
		}
		if l.LossRate < 0 || l.LossRate >= 1 {
			return fmt.Errorf("schema: link %q lossRate %v outside [0, 1)", l.Name, l.LossRate)
		}
	}
	return nil
}

// Link returns the named link, or nil.
func (t *TopologyDoc) Link(name string) *LinkDoc {
	for i := range t.Links {
		if t.Links[i].Name == name {
			return &t.Links[i]
		}
	}
	return nil
}

// Scenario is the top-level experiment document: one JobSpec — the same
// shape ccserve admits — plus the run attachments a file-driven
// invocation wants (audit policy, series sampling) behind a
// schema_version stamp.
type Scenario struct {
	// SchemaVersion must carry a major this build reads; Encode stamps
	// the build's own Version.
	SchemaVersion string `json:"schema_version"`
	// JobSpec is the experiment itself (flows, network, durations).
	JobSpec
	// Audit selects the invariant-auditing policy for the run
	// ("", "off", "warn", or "strict").
	Audit string `json:"audit,omitempty"`
	// SeriesIntervalS enables per-CCA goodput series sampling at this
	// interval in virtual seconds (0 = off).
	SeriesIntervalS float64 `json:"seriesIntervalS,omitempty"`
}

// Validate extends JobSpec validation with the scenario-only fields.
func (s *Scenario) Validate() error {
	if err := s.JobSpec.Validate(); err != nil {
		return err
	}
	switch s.Audit {
	case "", "off", "warn", "strict":
	default:
		return fmt.Errorf("schema: scenario %s: audit %q is not off/warn/strict", s.Name, s.Audit)
	}
	if s.SeriesIntervalS < 0 {
		return fmt.Errorf("schema: scenario %s: seriesIntervalS %v must be non-negative", s.Name, s.SeriesIntervalS)
	}
	return nil
}

// ParseScenario decodes and validates one scenario document. Unknown
// fields are rejected — a typo'd knob silently ignored is an experiment
// that ran with the wrong configuration — and the version check runs
// before shape validation so a future-major document fails with the
// version message, not a confusing field error.
func ParseScenario(data []byte) (*Scenario, error) {
	var probe struct {
		SchemaVersion string `json:"schema_version"`
	}
	if err := json.Unmarshal(data, &probe); err != nil {
		return nil, fmt.Errorf("schema: scenario is not JSON: %w", err)
	}
	if err := Check(probe.SchemaVersion); err != nil {
		return nil, err
	}
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var s Scenario
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("schema: scenario does not parse: %w", err)
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &s, nil
}

// Encode stamps the build's schema version and renders the scenario as
// indented JSON with a trailing newline, ready to write to a file.
func (s *Scenario) Encode() ([]byte, error) {
	out := *s
	out.SchemaVersion = Version
	data, err := json.MarshalIndent(&out, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}
