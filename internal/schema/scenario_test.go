package schema

import (
	"reflect"
	"strings"
	"testing"
)

// parkingLotScenario is a full-featured topology scenario touching every
// declarative knob: two bottlenecks, per-link ECN and AQM, flow groups
// on distinct paths, audit and series attachments.
func parkingLotScenario() *Scenario {
	return &Scenario{
		JobSpec: JobSpec{
			Name: "parkinglot",
			Seed: 42,
			Topology: &TopologyDoc{
				Nodes: []string{"a", "b", "c"},
				Links: []LinkDoc{
					{Name: "ab", From: "a", To: "b", RateMbps: 50, DelayMs: 5, BufferBytes: 262144, ECN: true},
					{Name: "bc", From: "b", To: "c", RateMbps: 40, DelayMs: 5, BufferBytes: 196608, AQM: "codel", ECN: true},
				},
			},
			Flows: []FlowGroup{
				{CCA: "cubic", RTTMs: 40, Count: 2, Path: []string{"ab", "bc"}},
				{CCA: "bbr2", RTTMs: 20, Count: 1, Path: []string{"bc"}},
			},
			WarmupS:   2,
			DurationS: 8,
			StaggerS:  1,
		},
		Audit:           "strict",
		SeriesIntervalS: 0.5,
	}
}

// TestScenarioRoundTrip pins the serialization contract: Encode stamps
// the build's version, and ParseScenario returns a document deep-equal
// to the original — nothing dropped, renamed, or defaulted differently.
func TestScenarioRoundTrip(t *testing.T) {
	want := parkingLotScenario()
	data, err := want.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"schema_version": "`+Version+`"`) {
		t.Fatalf("encoded document not stamped with version %s:\n%s", Version, data)
	}
	got, err := ParseScenario(data)
	if err != nil {
		t.Fatal(err)
	}
	want.SchemaVersion = Version // Encode stamped it
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("round trip drifted:\nwant %+v\ngot  %+v", want, got)
	}
}

// TestScenarioDumbbellRoundTrip does the same for the dumbbell shape —
// no topology, flat rate/buffer, ECN at the job level.
func TestScenarioDumbbellRoundTrip(t *testing.T) {
	want := &Scenario{
		JobSpec: JobSpec{
			Name: "dumbbell", Seed: 7, RateMbps: 50, BufferBytes: 262144,
			ECN: true, ECNMarkBytes: 65536,
			Flows:     []FlowGroup{{CCA: "reno", RTTMs: 20, Count: 4}},
			DurationS: 8,
		},
	}
	data, err := want.Encode()
	if err != nil {
		t.Fatal(err)
	}
	got, err := ParseScenario(data)
	if err != nil {
		t.Fatal(err)
	}
	want.SchemaVersion = Version
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("round trip drifted:\nwant %+v\ngot  %+v", want, got)
	}
}

// TestParseScenarioRejections pins the failure modes a scenario author
// hits: each malformed document must fail with a message naming the
// problem. Unknown fields are hard errors — a typo'd knob silently
// ignored is an experiment that ran with the wrong configuration.
func TestParseScenarioRejections(t *testing.T) {
	valid := func() *Scenario { return parkingLotScenario() }
	encode := func(t *testing.T, s *Scenario) []byte {
		t.Helper()
		data, err := s.Encode()
		if err != nil {
			t.Fatal(err)
		}
		return data
	}
	cases := []struct {
		name string
		data func(t *testing.T) []byte
		want string
	}{
		{"not json", func(t *testing.T) []byte { return []byte("{") }, "not JSON"},
		{"missing version", func(t *testing.T) []byte {
			data := encode(t, valid())
			return []byte(strings.Replace(string(data), Version, "", 1))
		}, "no schema_version"},
		{"future major", func(t *testing.T) []byte {
			data := encode(t, valid())
			return []byte(strings.Replace(string(data), Version, "99.0", 1))
		}, "has major 99"},
		{"unknown field", func(t *testing.T) []byte {
			data := encode(t, valid())
			return []byte(strings.Replace(string(data), `"audit"`, `"addit"`, 1))
		}, "unknown field"},
		{"bad audit policy", func(t *testing.T) []byte {
			s := valid()
			s.Audit = "paranoid"
			return encode(t, s)
		}, "not off/warn/strict"},
		{"negative series interval", func(t *testing.T) []byte {
			s := valid()
			s.SeriesIntervalS = -1
			return encode(t, s)
		}, "must be non-negative"},
		{"zero-capacity link", func(t *testing.T) []byte {
			s := valid()
			s.Topology.Links[1].RateMbps = 0
			return encode(t, s)
		}, "could never drain"},
		{"path over undeclared link", func(t *testing.T) []byte {
			s := valid()
			s.Flows[0].Path = []string{"ab", "cd"}
			return encode(t, s)
		}, `undeclared link "cd"`},
		{"topology without path", func(t *testing.T) []byte {
			s := valid()
			s.Flows[1].Path = nil
			return encode(t, s)
		}, "needs a path"},
		{"path without topology", func(t *testing.T) []byte {
			s := valid()
			s.Topology = nil
			s.RateMbps, s.BufferBytes = 50, 262144
			return encode(t, s)
		}, "no topology"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ParseScenario(tc.data(t))
			if err == nil {
				t.Fatal("expected a parse/validation error")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}
