package schema

import (
	"fmt"
	"strings"
)

// Serving shapes: the JSON bodies cmd/ccserve accepts and returns.
// They live here, beside the version they are stamped with, so clients
// and server agree on one declaration — and so the shapes stay plain
// data with no dependency on simulator types (durations are seconds,
// rates are Mbps, buffers are bytes).

// Job lifecycle states reported by the server. A job enters "queued" at
// admission, moves to "running" when a worker claims it, and ends in
// exactly one terminal state. "done" covers both computed and
// cache-served results (JobStatus.Cached distinguishes them);
// "quarantined" means the circuit breaker parked the job after repeated
// failures of the same config hash.
const (
	JobQueued      = "queued"
	JobRunning     = "running"
	JobDone        = "done"
	JobFailed      = "failed"
	JobRejected    = "rejected"
	JobQuarantined = "quarantined"
	// JobPoisoned means the job's worker process itself died repeatedly
	// (OOM kill, runtime crash) rather than the simulation failing: the
	// config is recorded as poisoned and refused until an operator
	// removes its poison record. Unlike "quarantined" — which a client
	// can clear by resubmitting — poisoned configs stay rejected, because
	// re-running them costs a whole process each strike.
	JobPoisoned = "poisoned"
)

// JobTerminal reports whether a job state is final.
func JobTerminal(state string) bool {
	switch state {
	case JobDone, JobFailed, JobRejected, JobQuarantined, JobPoisoned:
		return true
	}
	return false
}

// FlowGroup describes Count identical flows in a scenario.
type FlowGroup struct {
	// CCA is the congestion control algorithm ("reno", "cubic", "bbr",
	// "vegas", "bbr2").
	CCA string `json:"cca"`
	// RTTMs is the flows' base round-trip time in milliseconds.
	RTTMs float64 `json:"rttMs"`
	// Count is how many such flows to run (≥1).
	Count int `json:"count"`
	// Path routes the group's forward traffic through the named
	// topology links, in order. Required (non-empty) when the job
	// declares a topology; must be absent otherwise.
	Path []string `json:"path,omitempty"`
}

// JobSpec is one scenario configuration a client submits. Name plus
// Seed plus the scenario fields form the job's identity: the server
// hashes the scenario (not the name) into the result key, so two
// differently-named but identical scenarios share one cached result.
type JobSpec struct {
	// Name labels the job in status output and result files. It becomes
	// part of file names, so it is restricted to [A-Za-z0-9._-].
	Name string `json:"name"`
	// Seed seeds the simulation.
	Seed uint64 `json:"seed"`
	// RateMbps is the bottleneck bandwidth in Mbps (dumbbell jobs;
	// ignored when Topology is set, where each link carries its own
	// rate).
	RateMbps float64 `json:"rateMbps,omitempty"`
	// BufferBytes is the drop-tail queue capacity (dumbbell jobs;
	// ignored when Topology is set).
	BufferBytes int64 `json:"bufferBytes,omitempty"`
	// Topology replaces the implicit dumbbell with an explicit link
	// graph; flow groups then route via their Path fields.
	Topology *TopologyDoc `json:"topology,omitempty"`
	// ECN enables RFC 3168 marking end to end on a dumbbell job
	// (topology jobs flag ECN per link instead).
	ECN bool `json:"ecn,omitempty"`
	// ECNMarkBytes overrides the dumbbell's drop-tail CE-marking
	// threshold (0 = BufferBytes/4; ignored without ECN).
	ECNMarkBytes int64 `json:"ecnMarkBytes,omitempty"`
	// Flows lists the flow groups; at least one, each non-empty.
	Flows []FlowGroup `json:"flows"`
	// WarmupS is the excluded start-up period in virtual seconds.
	WarmupS float64 `json:"warmupS,omitempty"`
	// DurationS is the measurement window in virtual seconds.
	DurationS float64 `json:"durationS"`
	// StaggerS is the random start window in virtual seconds.
	StaggerS float64 `json:"staggerS,omitempty"`
	// AQM overrides the bottleneck discipline ("" = drop-tail).
	AQM string `json:"aqm,omitempty"`
}

// Validate rejects specs the simulator cannot run or the store cannot
// key. It is the server's first line of defense: everything past it may
// be journaled, so nothing un-runnable should survive it.
func (s *JobSpec) Validate() error {
	if s.Name == "" {
		return fmt.Errorf("schema: job has no name")
	}
	for i := 0; i < len(s.Name); i++ {
		c := s.Name[i]
		ok := c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9' ||
			c == '-' || c == '_' || c == '.'
		if !ok {
			return fmt.Errorf("schema: job name %q: character %q not in [A-Za-z0-9._-]", s.Name, c)
		}
	}
	if strings.HasPrefix(s.Name, ".") {
		return fmt.Errorf("schema: job name %q must not start with a dot", s.Name)
	}
	if s.Topology != nil {
		if err := s.Topology.Validate(); err != nil {
			return fmt.Errorf("schema: job %s: %w", s.Name, err)
		}
	} else {
		if s.RateMbps <= 0 {
			return fmt.Errorf("schema: job %s: rateMbps %v must be positive", s.Name, s.RateMbps)
		}
		if s.BufferBytes <= 0 {
			return fmt.Errorf("schema: job %s: bufferBytes %d must be positive", s.Name, s.BufferBytes)
		}
		if s.ECNMarkBytes < 0 {
			return fmt.Errorf("schema: job %s: ecnMarkBytes %d must be non-negative", s.Name, s.ECNMarkBytes)
		}
	}
	if s.DurationS <= 0 {
		return fmt.Errorf("schema: job %s: durationS %v must be positive", s.Name, s.DurationS)
	}
	if s.WarmupS < 0 || s.StaggerS < 0 {
		return fmt.Errorf("schema: job %s: warmupS/staggerS must be non-negative", s.Name)
	}
	if len(s.Flows) == 0 {
		return fmt.Errorf("schema: job %s: no flow groups", s.Name)
	}
	for i, g := range s.Flows {
		if g.CCA == "" {
			return fmt.Errorf("schema: job %s: flow group %d has no cca", s.Name, i)
		}
		if g.RTTMs <= 0 {
			return fmt.Errorf("schema: job %s: flow group %d rttMs %v must be positive", s.Name, i, g.RTTMs)
		}
		if g.Count < 1 {
			return fmt.Errorf("schema: job %s: flow group %d count %d must be ≥1", s.Name, i, g.Count)
		}
		if s.Topology == nil {
			if len(g.Path) > 0 {
				return fmt.Errorf("schema: job %s: flow group %d declares a path but the job has no topology", s.Name, i)
			}
			continue
		}
		if len(g.Path) == 0 {
			return fmt.Errorf("schema: job %s: flow group %d needs a path through the topology", s.Name, i)
		}
		for _, name := range g.Path {
			if s.Topology.Link(name) == nil {
				return fmt.Errorf("schema: job %s: flow group %d routes over undeclared link %q", s.Name, i, name)
			}
		}
	}
	return nil
}

// BatchRequest is the body of POST /v1/batches.
type BatchRequest struct {
	// SchemaVersion must carry a major this server reads.
	SchemaVersion string `json:"schema_version"`
	// Jobs are the scenarios to run; admission is all-or-nothing per
	// batch, so one oversized job bounces the whole request rather than
	// leaving a half-admitted batch.
	Jobs []JobSpec `json:"jobs"`
}

// JobStatus is one job's externally visible state.
type JobStatus struct {
	// Name is the client's label from the JobSpec.
	Name string `json:"name"`
	// Key is the content address of the result in the store.
	Key string `json:"key"`
	// State is one of the Job* lifecycle constants.
	State string `json:"state"`
	// Cached reports that the result was served from the store without
	// recomputation.
	Cached bool `json:"cached,omitempty"`
	// Error carries the failure or rejection reason for terminal
	// non-done states.
	Error string `json:"error,omitempty"`
	// Attempts counts executions of this job, including the failed ones
	// the circuit breaker watched.
	Attempts int `json:"attempts,omitempty"`
	// WallMs is the wall-clock time the finished run consumed.
	WallMs float64 `json:"wallMs,omitempty"`
}

// BatchResponse is the body of a successful POST /v1/batches (201) and
// of GET /v1/batches/{id}.
type BatchResponse struct {
	SchemaVersion string `json:"schema_version"`
	// Batch identifies the admitted batch; it is a hash of the member
	// keys, so resubmitting the same scenarios addresses the same batch.
	Batch string `json:"batch"`
	// Jobs reports every member's current status, in submission order.
	Jobs []JobStatus `json:"jobs"`
}

// ErrorResponse is the body of every non-2xx ccserve reply.
type ErrorResponse struct {
	SchemaVersion string `json:"schema_version"`
	Error         string `json:"error"`
	// RetryAfterS mirrors the Retry-After header on 429 responses.
	RetryAfterS float64 `json:"retryAfterS,omitempty"`
}

// Server lifecycle states reported by GET /healthz.
const (
	ServerReady    = "ready"
	ServerDraining = "draining"
)

// HealthResponse is the body of GET /healthz. The HTTP status carries
// the same signal for probes that only look at codes: 200 when ready,
// 503 when draining — unless the probe asks for liveness only
// (?probe=live), which answers 200 whenever the process can respond at
// all. Liveness and readiness are distinct questions: a draining server
// is alive (do not restart it mid-checkpoint) but not ready (send no
// new work).
type HealthResponse struct {
	SchemaVersion string `json:"schema_version"`
	State         string `json:"state"`
	// Live is true whenever the server process answers: the supervisor
	// loop is running even if it refuses new work.
	Live bool `json:"live"`
	// Ready is true when the server accepts new submissions.
	Ready bool `json:"ready"`
	// Queued and Running count jobs not yet terminal.
	Queued  int `json:"queued"`
	Running int `json:"running"`
	// Workers lists currently live worker subprocesses (fleet mode).
	Workers []WorkerHealth `json:"workers,omitempty"`
	// Fleet aggregates worker lifecycle counters (fleet mode).
	Fleet *FleetHealth `json:"fleet,omitempty"`
}

// WorkerHealth is one live worker subprocess in /healthz output.
type WorkerHealth struct {
	// PID is the worker's OS process id.
	PID int `json:"pid"`
	// Job and Key identify the scenario the worker is executing.
	Job string `json:"job"`
	Key string `json:"key"`
	// Slot is the hedge slot: 0 for the primary attempt, ≥1 for a
	// straggler hedge racing it.
	Slot int `json:"slot"`
}

// FleetHealth aggregates worker lifecycle counters since boot.
type FleetHealth struct {
	// Spawns counts worker processes started (primaries and hedges).
	Spawns int64 `json:"spawns"`
	// Exits counts worker processes reaped, however they ended.
	Exits int64 `json:"exits"`
	// Restarts counts crash-loop respawns: a worker died without
	// delivering an outcome and the job was retried in a new process.
	Restarts int64 `json:"restarts"`
	// Hedges counts duplicate workers launched against stragglers.
	Hedges int64 `json:"hedges"`
	// Poisoned counts configs quarantined for killing their workers.
	Poisoned int64 `json:"poisoned"`
}

// Worker outcome states: the final word a worker subprocess writes to
// stdout before exiting. A worker that dies without one crashed.
const (
	// WorkerDone: the result is committed to the store.
	WorkerDone = "done"
	// WorkerFailed: the simulation failed with a replayable RunError;
	// the worker parked <key>.failed.json beside the store.
	WorkerFailed = "failed"
	// WorkerCheckpoint: the run was cancelled (SIGTERM, drain) before
	// finishing; nothing was committed and the job can re-run verbatim.
	WorkerCheckpoint = "checkpoint"
)

// WorkerJob is the payload a ccserve supervisor writes to a worker
// subprocess's stdin: everything one execution attempt needs, so the
// worker re-derives the simulation from the same spec the journal
// holds and commits through the same store/lease protocol any process
// would. Times are milliseconds and sizes bytes so the shape stays
// plain data, like every other schema type.
type WorkerJob struct {
	SchemaVersion string `json:"schema_version"`
	// Out is the output directory (store, journal, leases) to commit to.
	Out string `json:"out"`
	// Spec is the scenario to run.
	Spec JobSpec `json:"spec"`
	// Key is the supervisor's content address for the result; the worker
	// recomputes it from Spec and refuses to run on a mismatch rather
	// than commit under a wrong identity.
	Key string `json:"key"`
	// Slot is the hedge slot this attempt claims its lease under.
	Slot int `json:"slot"`
	// Owner is the lease identity for this attempt, unique per spawn so
	// the supervisor can clean up a crashed worker's leases.
	Owner string `json:"owner"`
	// Retries is the reduced-fidelity retry allowance inside the run.
	Retries int `json:"retries"`
	// MemLimitBytes caps the worker's address space (RLIMIT_AS); 0
	// leaves the OS default.
	MemLimitBytes int64 `json:"memLimitBytes,omitempty"`
	// DeadlineMs is the wall-clock allowance for the run.
	DeadlineMs float64 `json:"deadlineMs"`
	// LeaseTTLMs and HeartbeatMs configure the worker's lease protocol;
	// they must match the supervisor's so staleness means one thing.
	LeaseTTLMs  float64 `json:"leaseTTLMs"`
	HeartbeatMs float64 `json:"heartbeatMs"`
}

// WorkerOutcome is the single JSON line a worker writes to stdout when
// an attempt resolves. Absence of one is the crash signal.
type WorkerOutcome struct {
	SchemaVersion string `json:"schema_version"`
	// State is one of the Worker* constants.
	State string `json:"state"`
	// Cached reports the result was already in the store.
	Cached bool `json:"cached,omitempty"`
	// Error carries the failure reason for WorkerFailed.
	Error string `json:"error,omitempty"`
	// WallMs is the wall-clock time the run consumed.
	WallMs float64 `json:"wallMs,omitempty"`
}
