package schema

import (
	"strings"
	"testing"
)

func TestMajor(t *testing.T) {
	cases := []struct {
		in      string
		want    int
		wantErr bool
	}{
		{"1.0", 1, false},
		{"2.17", 2, false},
		{"0.9", 0, false},
		{"1", 0, true},
		{"", 0, true},
		{"x.0", 0, true},
		{"-1.0", 0, true},
	}
	for _, tc := range cases {
		got, err := Major(tc.in)
		if tc.wantErr != (err != nil) {
			t.Errorf("Major(%q) err = %v, wantErr %v", tc.in, err, tc.wantErr)
			continue
		}
		if err == nil && got != tc.want {
			t.Errorf("Major(%q) = %d, want %d", tc.in, got, tc.want)
		}
	}
}

func TestCheckOwnVersion(t *testing.T) {
	if err := Check(Version); err != nil {
		t.Fatalf("a build must accept its own version: %v", err)
	}
	// Any minor revision of the same major is readable.
	maj, err := Major(Version)
	if err != nil {
		t.Fatal(err)
	}
	if err := Check(strings.TrimRight(Version, "0123456789") + "999"); err != nil {
		t.Fatalf("minor revisions of major %d must pass: %v", maj, err)
	}
}

func TestCheckRejections(t *testing.T) {
	cases := []struct {
		in, wantErr string
	}{
		{"", "no schema_version field"},
		{"99.0", "major 99"},
		{"bogus", "not major.minor"},
	}
	for _, tc := range cases {
		err := Check(tc.in)
		if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
			t.Errorf("Check(%q) = %v, want error containing %q", tc.in, err, tc.wantErr)
		}
	}
}
