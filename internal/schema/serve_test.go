package schema

import (
	"encoding/json"
	"reflect"
	"strings"
	"testing"
)

func validSpec() JobSpec {
	return JobSpec{
		Name:        "edge-reno.10",
		Seed:        7,
		RateMbps:    100,
		BufferBytes: 3_000_000,
		Flows:       []FlowGroup{{CCA: "reno", RTTMs: 20, Count: 10}},
		WarmupS:     1,
		DurationS:   5,
	}
}

func TestJobSpecValidate(t *testing.T) {
	vs := validSpec()
	if err := vs.Validate(); err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}
	cases := []struct {
		name   string
		mutate func(*JobSpec)
		want   string
	}{
		{"empty name", func(s *JobSpec) { s.Name = "" }, "no name"},
		{"path separator", func(s *JobSpec) { s.Name = "a/b" }, "not in"},
		{"space", func(s *JobSpec) { s.Name = "a b" }, "not in"},
		{"dotfile", func(s *JobSpec) { s.Name = ".hidden" }, "start with a dot"},
		{"zero rate", func(s *JobSpec) { s.RateMbps = 0 }, "rateMbps"},
		{"negative buffer", func(s *JobSpec) { s.BufferBytes = -1 }, "bufferBytes"},
		{"zero duration", func(s *JobSpec) { s.DurationS = 0 }, "durationS"},
		{"negative warmup", func(s *JobSpec) { s.WarmupS = -1 }, "warmupS"},
		{"no flows", func(s *JobSpec) { s.Flows = nil }, "no flow groups"},
		{"empty cca", func(s *JobSpec) { s.Flows[0].CCA = "" }, "no cca"},
		{"zero rtt", func(s *JobSpec) { s.Flows[0].RTTMs = 0 }, "rttMs"},
		{"zero count", func(s *JobSpec) { s.Flows[0].Count = 0 }, "count"},
	}
	for _, c := range cases {
		s := validSpec()
		c.mutate(&s)
		err := s.Validate()
		if err == nil {
			t.Errorf("%s: validated, want error", c.name)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error %q does not mention %q", c.name, err, c.want)
		}
	}
}

func TestJobTerminal(t *testing.T) {
	for _, s := range []string{JobDone, JobFailed, JobRejected, JobQuarantined} {
		if !JobTerminal(s) {
			t.Errorf("JobTerminal(%s) = false", s)
		}
	}
	for _, s := range []string{JobQueued, JobRunning, "", "bogus"} {
		if JobTerminal(s) {
			t.Errorf("JobTerminal(%s) = true", s)
		}
	}
}

func TestBatchRequestRoundTrip(t *testing.T) {
	req := BatchRequest{SchemaVersion: Version, Jobs: []JobSpec{validSpec()}}
	data, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	var got BatchRequest
	if err := json.Unmarshal(data, &got); err != nil {
		t.Fatal(err)
	}
	if err := Check(got.SchemaVersion); err != nil {
		t.Fatal(err)
	}
	if len(got.Jobs) != 1 {
		t.Fatalf("round trip lost jobs: %+v", got.Jobs)
	}
	want, have := req.Jobs[0], got.Jobs[0]
	if want.Name != have.Name || want.Seed != have.Seed || want.RateMbps != have.RateMbps ||
		want.BufferBytes != have.BufferBytes || want.DurationS != have.DurationS ||
		len(want.Flows) != len(have.Flows) || !reflect.DeepEqual(want.Flows[0], have.Flows[0]) {
		t.Fatalf("round trip changed the spec: want %+v got %+v", want, have)
	}
}
