package audit

import (
	"strings"
	"testing"

	"ccatscale/internal/cca"
	"ccatscale/internal/sim"
	"ccatscale/internal/units"
)

func TestParsePolicy(t *testing.T) {
	good := map[string]Policy{
		"": PolicyOff, "off": PolicyOff, "warn": PolicyWarn, "strict": PolicyStrict,
	}
	for in, want := range good {
		got, err := ParsePolicy(in)
		if err != nil || got != want {
			t.Errorf("ParsePolicy(%q) = %v, %v; want %v", in, got, err, want)
		}
		if got.String() != want.String() {
			t.Errorf("Policy(%q).String() = %q", in, got.String())
		}
	}
	if _, err := ParsePolicy("paranoid"); err == nil {
		t.Error("unknown policy accepted")
	}
}

func TestNilAuditorIsOff(t *testing.T) {
	var a *Auditor
	if a.On() || a.Policy() != PolicyOff || a.Total() != 0 || a.Violations() != nil {
		t.Fatal("nil auditor not inert")
	}
	a.Reportf("x", -1, "must not panic")
	if New(PolicyOff, func() sim.Time { return 0 }) != nil {
		t.Fatal("PolicyOff auditor should be nil")
	}
}

func TestWarnCountsAndCapsSample(t *testing.T) {
	now := sim.Time(7)
	a := New(PolicyWarn, func() sim.Time { return now })
	for i := 0; i < maxRecorded+10; i++ {
		a.Reportf("test/check", int32(i), "violation %d", i)
	}
	if a.Total() != maxRecorded+10 {
		t.Fatalf("Total = %d", a.Total())
	}
	vs := a.Violations()
	if len(vs) != maxRecorded {
		t.Fatalf("sample length = %d, want %d", len(vs), maxRecorded)
	}
	if vs[0].Flow != 0 || vs[0].Time != now || vs[0].Check != "test/check" {
		t.Fatalf("first sample = %+v", vs[0])
	}
	if !strings.Contains(vs[0].Error(), "flow 0") {
		t.Fatalf("Error() = %q", vs[0].Error())
	}
}

func TestStrictPanicsWithViolation(t *testing.T) {
	a := New(PolicyStrict, func() sim.Time { return 42 })
	defer func() {
		v, ok := recover().(*InvariantViolation)
		if !ok {
			t.Fatalf("panic value is %T", v)
		}
		if v.Check != "test/boom" || v.Time != 42 || v.Flow != 3 || v.Detail != "got 1 want 2" {
			t.Fatalf("violation = %+v", v)
		}
		if a.Total() != 1 {
			t.Fatalf("Total = %d", a.Total())
		}
	}()
	a.Reportf("test/boom", 3, "got %d want %d", 1, 2)
	t.Fatal("Reportf returned under strict policy")
}

// brokenCCA is a controller that violates the window floor on demand.
type brokenCCA struct {
	cca.CCA
	cwnd units.ByteCount
}

func (b *brokenCCA) Cwnd() units.ByteCount { return b.cwnd }

func TestWrapCCANilAuditorIsIdentity(t *testing.T) {
	inner := cca.NewReno(units.MSS)
	if got := WrapCCA(inner, units.MSS, 0, nil); got != cca.CCA(inner) {
		t.Fatal("nil auditor should return the controller unchanged")
	}
}

func TestWrapCCADetectsWindowCollapse(t *testing.T) {
	a := New(PolicyWarn, func() sim.Time { return 0 })
	b := &brokenCCA{CCA: cca.NewReno(units.MSS), cwnd: units.MSS / 2}
	w := WrapCCA(b, units.MSS, 5, a)
	w.OnAck(cca.AckEvent{AckedBytes: units.MSS})
	if a.Total() == 0 {
		t.Fatal("sub-MSS cwnd not reported")
	}
	if v := a.Violations()[0]; v.Check != "cca/cwnd-floor" || v.Flow != 5 {
		t.Fatalf("violation = %+v", v)
	}
}

func TestWrapCCAPreservesRecoveryController(t *testing.T) {
	a := New(PolicyWarn, func() sim.Time { return 0 })
	factory, ok := cca.ByName("bbr")
	if !ok {
		t.Fatal("no bbr factory")
	}
	bbr := factory(units.MSS, sim.NewRNG(1))
	if _, controls := bbr.(cca.RecoveryController); !controls {
		t.Skip("bbr no longer a RecoveryController")
	}
	wrapped := WrapCCA(bbr, units.MSS, 0, a)
	if _, controls := wrapped.(cca.RecoveryController); !controls {
		t.Fatal("wrapping dropped the RecoveryController marker")
	}
	reno := WrapCCA(cca.NewReno(units.MSS), units.MSS, 0, a)
	if _, controls := reno.(cca.RecoveryController); controls {
		t.Fatal("wrapping invented a RecoveryController marker")
	}
}

// cleanSequenceCCA drives a wrapped real controller through a normal
// loss episode and must produce no violations.
func TestWrapCCACleanLossEpisode(t *testing.T) {
	for _, name := range cca.Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			a := New(PolicyWarn, func() sim.Time { return 0 })
			factory, _ := cca.ByName(name)
			w := WrapCCA(factory(units.MSS, sim.NewRNG(2)), units.MSS, 0, a)
			for i := 0; i < 50; i++ {
				w.OnAck(cca.AckEvent{Now: sim.Time(i) * sim.Millisecond,
					AckedBytes: units.MSS, RTT: 20 * sim.Millisecond, MinRTT: 20 * sim.Millisecond})
			}
			w.OnEnterRecovery(60*sim.Millisecond, 20*units.MSS)
			w.OnExitRecovery(80 * sim.Millisecond)
			w.OnRTO(200 * sim.Millisecond)
			if a.Total() != 0 {
				t.Fatalf("clean episode reported %d violations; first: %v",
					a.Total(), a.Violations()[0].Error())
			}
		})
	}
}

func TestReachableExpandsHops(t *testing.T) {
	legal := reachable(bbrTransitions, 3)
	// One OnAck can cross STARTUP→DRAIN→PROBE_BW.
	if !legal["STARTUP"]["PROBE_BW"] {
		t.Fatal("3-hop reachability missing STARTUP→PROBE_BW")
	}
	// Self transitions are always legal (no state change observed).
	if !legal["STARTUP"]["STARTUP"] {
		t.Fatal("self state not reachable")
	}
	one := reachable(bbrTransitions, 1)
	if one["PROBE_BW"]["STARTUP"] {
		t.Fatal("1-hop graph leaked a 2-hop edge")
	}
}
