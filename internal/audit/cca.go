package audit

import (
	"ccatscale/internal/cca"
	"ccatscale/internal/sim"
	"ccatscale/internal/units"
)

// StateMachine is implemented by CCAs exposing a named state (BBR v1
// and v2); the wrapper validates every observed transition against the
// algorithm's legal transition graph.
type StateMachine interface {
	State() string
}

// SlowStartThresholder is implemented by loss-based CCAs exposing their
// slow-start threshold for bound checking.
type SlowStartThresholder interface {
	Ssthresh() units.ByteCount
}

// WMaxer is implemented by Cubic, exposing W_max (in segments) so the
// wrapper can validate the RFC 8312 update rules around reductions.
type WMaxer interface {
	WMax() float64
}

// bbrTransitions is the legal single-step transition graph of the BBRv1
// state machine (Cardwell et al. 2016 §4): STARTUP→DRAIN on full pipe,
// DRAIN→PROBE_BW once inflight reaches BDP, any steady state→PROBE_RTT
// on min-RTT filter expiry, and PROBE_RTT exits to STARTUP (pipe not yet
// filled) or PROBE_BW.
var bbrTransitions = map[string][]string{
	"STARTUP":   {"DRAIN", "PROBE_RTT"},
	"DRAIN":     {"PROBE_BW", "PROBE_RTT"},
	"PROBE_BW":  {"PROBE_RTT"},
	"PROBE_RTT": {"STARTUP", "PROBE_BW"},
}

// bbr2Transitions is the legal single-step graph of the BBRv2 machine:
// the startup path STARTUP→DRAIN→PROBE_DOWN, the bandwidth-probing
// cycle PROBE_DOWN→CRUISE→REFILL→PROBE_UP→PROBE_DOWN, PROBE_RTT entry
// from any post-startup state, and PROBE_RTT exit into PROBE_DOWN.
var bbr2Transitions = map[string][]string{
	"STARTUP":    {"DRAIN", "PROBE_RTT"},
	"DRAIN":      {"PROBE_DOWN", "PROBE_RTT"},
	"PROBE_DOWN": {"CRUISE", "PROBE_RTT"},
	"CRUISE":     {"REFILL", "PROBE_RTT"},
	"REFILL":     {"PROBE_UP", "PROBE_RTT"},
	"PROBE_UP":   {"PROBE_DOWN", "PROBE_RTT"},
	"PROBE_RTT":  {"PROBE_DOWN"},
}

// reachable expands a single-step graph to everything observable across
// one CCA callback: a single OnAck may take up to maxHops legal steps
// back to back (BBRv1 can pass STARTUP→DRAIN→PROBE_BW in one ACK when
// the drain target is already met).
func reachable(single map[string][]string, maxHops int) map[string]map[string]bool {
	out := make(map[string]map[string]bool, len(single))
	for from := range single {
		seen := map[string]bool{from: true}
		frontier := []string{from}
		for hop := 0; hop < maxHops; hop++ {
			var next []string
			for _, s := range frontier {
				for _, t := range single[s] {
					if !seen[t] {
						seen[t] = true
						next = append(next, t)
					}
				}
			}
			frontier = next
		}
		out[from] = seen
	}
	return out
}

// auditedCCA observes every CCA callback and validates the universal
// invariants (cwnd floor, non-negative pacing) plus the
// algorithm-specific ones (ssthresh bounds, Cubic W_max rules, legal
// BBR transitions). It is transparent: all decisions still come from
// the wrapped controller, so audited and unaudited runs are
// bit-identical until a strict violation fires.
type auditedCCA struct {
	inner cca.CCA
	aud   *Auditor
	flow  int32
	mss   units.ByteCount

	sm        StateMachine
	legal     map[string]map[string]bool
	lastState string
}

// WrapCCA wraps ctrl with invariant checking for one flow. The wrapper
// preserves the cca.RecoveryController marker: a wrapped BBR still
// manages its own recovery window and the transport still skips PRR,
// exactly as it would unaudited.
func WrapCCA(ctrl cca.CCA, mss units.ByteCount, flow int32, aud *Auditor) cca.CCA {
	if aud == nil {
		return ctrl
	}
	w := &auditedCCA{inner: ctrl, aud: aud, flow: flow, mss: mss}
	if sm, ok := ctrl.(StateMachine); ok {
		w.sm = sm
		w.lastState = sm.State()
		switch ctrl.Name() {
		case "bbr":
			w.legal = reachable(bbrTransitions, 3)
		case "bbr2":
			w.legal = reachable(bbr2Transitions, 3)
		}
	}
	if _, controls := ctrl.(cca.RecoveryController); controls {
		return &auditedRecoveryCCA{auditedCCA: w}
	}
	return w
}

// auditedRecoveryCCA re-exposes the RecoveryController marker of the
// wrapped controller.
type auditedRecoveryCCA struct {
	*auditedCCA
}

// ControlsRecovery implements cca.RecoveryController.
func (w *auditedRecoveryCCA) ControlsRecovery() {}

// Unwrap returns the audited controller (for instrumentation that
// type-asserts on concrete CCA types).
func (w *auditedCCA) Unwrap() cca.CCA { return w.inner }

func (w *auditedCCA) Name() string { return w.inner.Name() }

func (w *auditedCCA) Cwnd() units.ByteCount { return w.inner.Cwnd() }

func (w *auditedCCA) PacingRate() units.Bandwidth { return w.inner.PacingRate() }

func (w *auditedCCA) OnAck(ev cca.AckEvent) {
	w.inner.OnAck(ev)
	w.checkCommon()
	w.checkTransition()
}

func (w *auditedCCA) OnEnterRecovery(now sim.Time, inFlight units.ByteCount) {
	prior := w.inner.Cwnd()
	w.inner.OnEnterRecovery(now, inFlight)
	w.checkCommon()
	w.checkTransition()
	w.checkReduction("recovery entry", prior)
}

func (w *auditedCCA) OnExitRecovery(now sim.Time) {
	w.inner.OnExitRecovery(now)
	w.checkCommon()
	w.checkTransition()
}

func (w *auditedCCA) OnECNMark(now sim.Time, inFlight units.ByteCount) {
	prior := w.inner.Cwnd()
	w.inner.OnECNMark(now, inFlight)
	w.checkCommon()
	w.checkTransition()
	// An ECN response must never grow the window: it is a congestion
	// signal, reacted to like a loss (RFC 3168 §6.1.2), minus the
	// retransmission. The 2-segment floor still applies.
	if cwnd := w.inner.Cwnd(); cwnd > prior && cwnd > 2*w.mss {
		w.aud.Reportf("cca/no-decrease-on-ecn", w.flow,
			"%s grew cwnd on ECN mark: %d -> %d", w.inner.Name(), prior, cwnd)
	}
}

func (w *auditedCCA) OnRTO(now sim.Time) {
	prior := w.inner.Cwnd()
	w.inner.OnRTO(now)
	w.checkTransition()
	// The RTO response may legally collapse to one segment (below the
	// recovery floor), so only the W_max and pacing invariants apply.
	if cwnd := w.inner.Cwnd(); cwnd < w.mss {
		w.aud.Reportf("cca/cwnd-floor", w.flow,
			"%s cwnd %d below one MSS (%d) after RTO", w.inner.Name(), cwnd, w.mss)
	}
	if rate := w.inner.PacingRate(); rate < 0 {
		w.aud.Reportf("cca/pacing-negative", w.flow,
			"%s pacing rate %d negative after RTO", w.inner.Name(), int64(rate))
	}
	if wm, ok := w.inner.(WMaxer); ok {
		wMaxBytes := units.ByteCount(wm.WMax() * float64(w.mss))
		if wMaxBytes <= 0 || wMaxBytes > prior+w.mss {
			w.aud.Reportf("cca/cubic-wmax", w.flow,
				"%s W_max %d outside (0, %d] after RTO", w.inner.Name(), wMaxBytes, prior+w.mss)
		}
	}
}

// checkCommon validates the invariants every CCA must uphold after any
// callback: the window never collapses below one segment (the transport
// could never send again) and the pacing rate is never negative.
func (w *auditedCCA) checkCommon() {
	if cwnd := w.inner.Cwnd(); cwnd < w.mss {
		w.aud.Reportf("cca/cwnd-floor", w.flow,
			"%s cwnd %d below one MSS (%d)", w.inner.Name(), cwnd, w.mss)
	}
	if rate := w.inner.PacingRate(); rate < 0 {
		w.aud.Reportf("cca/pacing-negative", w.flow,
			"%s pacing rate %d negative", w.inner.Name(), int64(rate))
	}
}

// checkTransition validates a BBR state change against the legal graph.
func (w *auditedCCA) checkTransition() {
	if w.sm == nil {
		return
	}
	state := w.sm.State()
	if state == w.lastState {
		return
	}
	if w.legal != nil && !w.legal[w.lastState][state] {
		w.aud.Reportf("cca/bbr-transition", w.flow,
			"%s illegal state transition %s -> %s", w.inner.Name(), w.lastState, state)
	}
	w.lastState = state
}

// checkReduction validates the bounds around a loss response. prior is
// the window before the event. Multiplicative-decrease CCAs must not
// grow the window on loss (beyond the 2-segment floor) and must keep
// ssthresh at or above 2 segments; Cubic must additionally keep W_max
// positive and at or below the pre-reduction window (RFC 8312 §4.6,
// including the fast-convergence variant).
func (w *auditedCCA) checkReduction(event string, prior units.ByteCount) {
	name := w.inner.Name()
	_, controls := w.inner.(cca.RecoveryController)
	if !controls {
		floor := 2 * w.mss
		if cwnd := w.inner.Cwnd(); cwnd > prior && cwnd > floor {
			w.aud.Reportf("cca/no-decrease-on-loss", w.flow,
				"%s grew cwnd on %s: %d -> %d", name, event, prior, cwnd)
		}
		if st, ok := w.inner.(SlowStartThresholder); ok {
			if ss := st.Ssthresh(); ss < floor {
				w.aud.Reportf("cca/ssthresh-floor", w.flow,
					"%s ssthresh %d below two MSS (%d) after %s", name, ss, floor, event)
			}
		}
	}
	if wm, ok := w.inner.(WMaxer); ok {
		wMaxBytes := units.ByteCount(wm.WMax() * float64(w.mss))
		if wMaxBytes <= 0 {
			w.aud.Reportf("cca/cubic-wmax", w.flow,
				"%s W_max %d non-positive after %s", name, wMaxBytes, event)
		}
		// W_max is either the pre-reduction window or, under fast
		// convergence, (2-beta)/2 of it — never more (allow one segment
		// of float slack).
		if wMaxBytes > prior+w.mss {
			w.aud.Reportf("cca/cubic-wmax", w.flow,
				"%s W_max %d above pre-reduction cwnd %d after %s", name, wMaxBytes, prior, event)
		}
	}
}
