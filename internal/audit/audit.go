// Package audit is the self-verification layer of the simulator: a set
// of invariant checks wired as observers into the engine, the netem
// substrate, the TCP transport, and the congestion controllers. Every
// reported number in this repository rests on the simulator conserving
// bytes and keeping TCP sequence space sane; the auditor turns silent
// accounting corruption into loud, structured, replayable failures.
//
// The auditor is an observer by construction: it never mutates
// simulation state and all of its checks read only virtual state, so an
// audited run is bit-identical to an unaudited run up to the moment a
// violation fires. That property is what allows the same seed to
// reproduce a violation under replay.
package audit

import (
	"fmt"

	"ccatscale/internal/sim"
)

// Policy selects what happens when an invariant check fails.
type Policy int

const (
	// PolicyOff disables all auditing (the zero value).
	PolicyOff Policy = iota
	// PolicyWarn records violations and lets the run continue; the run
	// result reports the count and a sample of violations.
	PolicyWarn
	// PolicyStrict fails the run at the first violation by panicking
	// with the *InvariantViolation, which the run supervisor converts
	// into a structured, replayable *RunError.
	PolicyStrict
)

// String implements fmt.Stringer, matching ParsePolicy's inputs.
func (p Policy) String() string {
	switch p {
	case PolicyWarn:
		return "warn"
	case PolicyStrict:
		return "strict"
	default:
		return "off"
	}
}

// ParsePolicy parses the -audit flag values. The empty string is
// PolicyOff, so configurations that predate the auditor keep working.
func ParsePolicy(s string) (Policy, error) {
	switch s {
	case "", "off":
		return PolicyOff, nil
	case "warn":
		return PolicyWarn, nil
	case "strict":
		return PolicyStrict, nil
	}
	return PolicyOff, fmt.Errorf("audit: unknown policy %q (want off, warn, or strict)", s)
}

// InvariantViolation describes one failed invariant check. It is an
// error, the panic value of strict-mode failures, and a JSON-stable
// record embedded into RunError for checkpointing and replay.
type InvariantViolation struct {
	// Check names the failed invariant, e.g. "netem/queue-occupancy".
	// The prefix is the layer that owns the check.
	Check string `json:"check"`
	// Time is the virtual time at which the check failed.
	Time sim.Time `json:"virtualTimeNs"`
	// Flow is the flow the violation is attributed to, or -1 when the
	// invariant is not flow-specific (queues, the engine clock).
	Flow int32 `json:"flow"`
	// Detail is the human-readable expected-vs-got description.
	Detail string `json:"detail"`
}

// Error implements error.
func (v *InvariantViolation) Error() string {
	if v.Flow >= 0 {
		return fmt.Sprintf("invariant %s violated at %v (flow %d): %s", v.Check, v.Time, v.Flow, v.Detail)
	}
	return fmt.Sprintf("invariant %s violated at %v: %s", v.Check, v.Time, v.Detail)
}

// maxRecorded bounds the violations retained in warn mode; the total
// count is always exact.
const maxRecorded = 16

// Auditor collects invariant violations under a policy. A nil *Auditor
// is valid and means auditing is off: every method is nil-safe, so
// instrumented code holds a single pointer and pays one predictable
// branch when auditing is disabled.
//
// The Auditor is not safe for concurrent use; like the rest of the
// simulation it belongs to exactly one single-threaded run.
type Auditor struct {
	policy Policy
	now    func() sim.Time

	total      uint64
	violations []InvariantViolation
}

// New creates an auditor for one run. now supplies virtual time (the
// engine's Now). A PolicyOff auditor is represented as nil.
func New(policy Policy, now func() sim.Time) *Auditor {
	if policy == PolicyOff {
		return nil
	}
	if now == nil {
		panic("audit: auditor without clock")
	}
	return &Auditor{policy: policy, now: now}
}

// On reports whether auditing is enabled.
func (a *Auditor) On() bool { return a != nil }

// Policy returns the auditor's policy (PolicyOff for nil).
func (a *Auditor) Policy() Policy {
	if a == nil {
		return PolicyOff
	}
	return a.policy
}

// Reportf records one violation. Under PolicyStrict it panics with the
// *InvariantViolation so the run supervisor fails the run; under
// PolicyWarn it counts (and retains a bounded sample) and returns.
// Format arguments are only evaluated on the failure path, so callers
// may guard checks with a plain comparison and call Reportf in the
// unlikely branch.
func (a *Auditor) Reportf(check string, flow int32, format string, args ...interface{}) {
	if a == nil {
		return
	}
	v := InvariantViolation{
		Check:  check,
		Time:   a.now(),
		Flow:   flow,
		Detail: fmt.Sprintf(format, args...),
	}
	a.total++
	if len(a.violations) < maxRecorded {
		a.violations = append(a.violations, v)
	}
	if a.policy == PolicyStrict {
		panic(&v)
	}
}

// Total returns the exact number of violations reported so far.
func (a *Auditor) Total() uint64 {
	if a == nil {
		return 0
	}
	return a.total
}

// Violations returns the retained sample of violations (at most
// maxRecorded; the first violations reported win).
func (a *Auditor) Violations() []InvariantViolation {
	if a == nil {
		return nil
	}
	return a.violations
}
