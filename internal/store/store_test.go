package store

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestSealParseRoundTrip(t *testing.T) {
	for _, payload := range [][]byte{
		[]byte("hello\n"),
		[]byte(""),
		[]byte("{\"a\":1}\n#ccstore not-a-real-trailer\nmore payload"),
		bytes.Repeat([]byte{0, 1, 2, 0xff}, 1000),
	} {
		got, err := ParseRecord(Seal(payload))
		if err != nil {
			t.Fatalf("ParseRecord(Seal(%d bytes)): %v", len(payload), err)
		}
		if !bytes.Equal(got, payload) {
			t.Fatalf("round trip changed payload: %q -> %q", payload, got)
		}
	}
}

func TestParseRecordRejectsDamage(t *testing.T) {
	rec := Seal([]byte("the result\n"))
	cases := map[string][]byte{
		"no trailer":   []byte("just bytes"),
		"torn payload": rec[1:], // first byte lost: length + crc mismatch
		"torn trailer": rec[:len(rec)-5],
		"flipped bit":  append([]byte{rec[0] ^ 0x01}, rec[1:]...),
		"empty":        {},
	}
	for name, data := range cases {
		if _, err := ParseRecord(data); !errors.Is(err, ErrCorrupt) {
			t.Errorf("%s: error = %v, want ErrCorrupt", name, err)
		}
	}
}

func TestStorePutGetIdempotent(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	key := "cafe0123-7"
	if s.Has(key) {
		t.Fatal("empty store has key")
	}
	if _, err := s.Get(key); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Get on empty store: %v, want ErrNotFound", err)
	}
	if err := s.Put(key, []byte("first")); err != nil {
		t.Fatal(err)
	}
	// Exactly-once: a duplicate commit (a racing worker's attempt) is a
	// no-op; the first committed bytes stay canonical.
	if err := s.Put(key, []byte("second attempt, different bytes")); err != nil {
		t.Fatal(err)
	}
	got, err := s.Get(key)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "first" {
		t.Fatalf("duplicate Put overwrote committed record: %q", got)
	}
	keys, err := s.Keys()
	if err != nil {
		t.Fatal(err)
	}
	if len(keys) != 1 || keys[0] != key {
		t.Fatalf("Keys() = %v", keys)
	}
}

func TestStoreQuarantinesCorruption(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put("deadbeef-1", []byte("good bytes")); err != nil {
		t.Fatal(err)
	}
	// Flip a payload bit on disk behind the store's back.
	path := filepath.Join(dir, "deadbeef-1.rec")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[0] ^= 0x40
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	_, err = s.Get("deadbeef-1")
	if !errors.Is(err, ErrCorrupt) || !errors.Is(err, ErrNotFound) {
		t.Fatalf("corrupt Get error = %v, want ErrCorrupt and ErrNotFound", err)
	}
	if _, serr := os.Stat(path + ".corrupt"); serr != nil {
		t.Fatalf("corrupt record not quarantined: %v", serr)
	}
	if _, serr := os.Stat(path); !os.IsNotExist(serr) {
		t.Fatalf("corrupt record still present: %v", serr)
	}
	// The key now reads as absent and can be recomputed.
	if s.Has("deadbeef-1") {
		t.Fatal("quarantined key still reads as present")
	}
	if err := s.Put("deadbeef-1", []byte("recomputed")); err != nil {
		t.Fatal(err)
	}
	got, err := s.Get("deadbeef-1")
	if err != nil || string(got) != "recomputed" {
		t.Fatalf("recommit after quarantine: %q, %v", got, err)
	}
}

func TestStoreRejectsHostileKeys(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	for _, bad := range []string{"", "../escape", "a/b", ".hidden", "sp ace"} {
		if err := s.Put(bad, []byte("x")); err == nil {
			t.Errorf("Put(%q) accepted", bad)
		}
	}
}

func TestWriteFileAtomicReplacesWholly(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "target.json")
	if err := WriteFileAtomic(path, []byte("v1")); err != nil {
		t.Fatal(err)
	}
	if err := WriteFileAtomic(path, []byte("v2 is longer")); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil || string(data) != "v2 is longer" {
		t.Fatalf("read back %q, %v", data, err)
	}
	// No temp litter after success.
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		if strings.Contains(e.Name(), ".tmp.") {
			t.Fatalf("leftover temp file %s", e.Name())
		}
	}
	// Missing parent fails loudly instead of silently dropping data.
	if err := WriteFileAtomic(filepath.Join(dir, "no/such/dir/x"), []byte("x")); err == nil {
		t.Fatal("write into missing directory succeeded")
	}
}
