package store

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func appendRecords(t *testing.T, dir string, recs ...JournalRecord) {
	t.Helper()
	j, _, err := OpenJournal(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range recs {
		if err := j.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestJournalAppendReplay(t *testing.T) {
	dir := t.TempDir()
	detail, _ := json.Marshal(map[string]string{"status": "done", "file": "a.txt"})
	appendRecords(t, dir,
		JournalRecord{Op: OpIntent, Job: "fig4_edge", Key: "abc-7", Owner: "w1"},
		JournalRecord{Op: OpDone, Job: "fig4_edge", Key: "abc-7", Owner: "w1", Detail: detail},
		JournalRecord{Op: OpIntent, Job: "fig5_core", Key: "def-7", Owner: "w1"},
	)

	var got []JournalRecord
	j, n, err := OpenJournal(dir, func(r JournalRecord) error {
		got = append(got, r)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	if n != 3 || len(got) != 3 {
		t.Fatalf("replayed %d/%d records, want 3", n, len(got))
	}
	if got[0].Op != OpIntent || got[0].Job != "fig4_edge" || got[0].Seq != 1 {
		t.Fatalf("record 0: %+v", got[0])
	}
	if got[1].Op != OpDone || string(got[1].Detail) != string(detail) {
		t.Fatalf("record 1 detail did not round-trip: %+v", got[1])
	}
	if got[2].Seq != 3 || j.Seq() != 3 {
		t.Fatalf("sequence: rec %d, journal %d, want 3", got[2].Seq, j.Seq())
	}
	// Appending after replay continues the sequence.
	if err := j.Append(JournalRecord{Op: OpFailed, Job: "fig5_core"}); err != nil {
		t.Fatal(err)
	}
	if j.Seq() != 4 {
		t.Fatalf("post-replay append seq = %d, want 4", j.Seq())
	}
}

// TestJournalTornTail: a crash mid-Append leaves a partial final line.
// Recovery must drop exactly that line — the record never committed —
// and keep everything before it.
func TestJournalTornTail(t *testing.T) {
	dir := t.TempDir()
	appendRecords(t, dir,
		JournalRecord{Op: OpIntent, Job: "a"},
		JournalRecord{Op: OpDone, Job: "a"},
		JournalRecord{Op: OpIntent, Job: "b"},
	)
	path := filepath.Join(dir, JournalFile)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Tear the final record in half (drop its newline and tail bytes).
	torn := data[:len(data)-12]
	if err := os.WriteFile(path, torn, 0o644); err != nil {
		t.Fatal(err)
	}

	var ops []string
	j, n, err := OpenJournal(dir, func(r JournalRecord) error {
		ops = append(ops, r.Op+":"+r.Job)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 || strings.Join(ops, ",") != "intent:a,done:a" {
		t.Fatalf("replay after torn tail: n=%d ops=%v", n, ops)
	}
	// The torn line is gone from disk and the next append lands cleanly.
	if err := j.Append(JournalRecord{Op: OpIntent, Job: "b"}); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	_, n, err = OpenJournal(dir, nil)
	if err != nil || n != 3 {
		t.Fatalf("reopen after repair: n=%d err=%v, want 3 records", n, err)
	}
}

// TestJournalMidFileCorruption: damage before the tail cannot come from
// the append protocol (every record is fsync'd before the next); the
// journal is quarantined and restarted rather than trusted.
func TestJournalMidFileCorruption(t *testing.T) {
	dir := t.TempDir()
	appendRecords(t, dir,
		JournalRecord{Op: OpIntent, Job: "a"},
		JournalRecord{Op: OpDone, Job: "a"},
		JournalRecord{Op: OpIntent, Job: "b"},
	)
	path := filepath.Join(dir, JournalFile)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[10] ^= 0x01 // flip a bit in the first record
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	j, n, err := OpenJournal(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	if n != 0 {
		t.Fatalf("replayed %d records from a corrupt journal, want 0", n)
	}
	if j.Seq() != 0 {
		t.Fatalf("fresh journal seq = %d", j.Seq())
	}
	if _, serr := os.Stat(path + ".corrupt"); serr != nil {
		t.Fatalf("corrupt journal not quarantined: %v", serr)
	}
}

// TestJournalRejectsDroppedRecord: a missing line (sequence gap) is
// corruption, not a torn tail — recovery must not silently skip it.
func TestJournalRejectsDroppedRecord(t *testing.T) {
	dir := t.TempDir()
	appendRecords(t, dir,
		JournalRecord{Op: OpIntent, Job: "a"},
		JournalRecord{Op: OpDone, Job: "a"},
		JournalRecord{Op: OpIntent, Job: "b"},
	)
	path := filepath.Join(dir, JournalFile)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.SplitAfter(string(data), "\n")
	if err := os.WriteFile(path, []byte(lines[0]+lines[2]), 0o644); err != nil {
		t.Fatal(err)
	}
	_, n, err := OpenJournal(dir, nil)
	if err != nil || n != 1 {
		// Record 1 survives; the gap quarantines the rest.
		t.Fatalf("after dropped record: n=%d err=%v", n, err)
	}
	if _, serr := os.Stat(path + ".corrupt"); serr != nil {
		t.Fatalf("journal with sequence gap not quarantined: %v", serr)
	}
}
