package store

import (
	"errors"
	"testing"
	"time"
)

// fakeClock lets lease tests move time without sleeping. Heartbeats
// still use the real clock (they only touch mtime forward, which reads
// as "fresh" under any later fake now).
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }

func newTestLeases(t *testing.T, dir, owner string, ttl time.Duration, clk *fakeClock) *Leases {
	t.Helper()
	ls, err := NewLeases(dir, owner, ttl)
	if err != nil {
		t.Fatal(err)
	}
	if clk != nil {
		ls.now = clk.now
	}
	return ls
}

func TestLeaseAcquireConflictRelease(t *testing.T) {
	dir := t.TempDir()
	a := newTestLeases(t, dir, "worker-a", time.Hour, nil)
	b := newTestLeases(t, dir, "worker-b", time.Hour, nil)

	la, err := a.Acquire("fig4_edge")
	if err != nil {
		t.Fatal(err)
	}
	if !la.Confirm() {
		t.Fatal("holder cannot confirm its own lease")
	}
	if _, err := b.Acquire("fig4_edge"); !errors.Is(err, ErrLeaseHeld) {
		t.Fatalf("second worker acquired a live lease: %v", err)
	}
	// Distinct jobs do not conflict.
	lb, err := b.Acquire("fig5_core")
	if err != nil {
		t.Fatal(err)
	}
	if err := lb.Release(); err != nil {
		t.Fatal(err)
	}
	if err := la.Release(); err != nil {
		t.Fatal(err)
	}
	// Released: anyone can claim.
	if _, err := b.Acquire("fig4_edge"); err != nil {
		t.Fatalf("acquire after release: %v", err)
	}
}

func TestLeaseRejectsBadConfig(t *testing.T) {
	dir := t.TempDir()
	if _, err := NewLeases(dir, "", time.Hour); err == nil {
		t.Fatal("empty owner accepted")
	}
	if _, err := NewLeases(dir, "w", 0); err == nil {
		t.Fatal("zero ttl accepted")
	}
	ls := newTestLeases(t, dir, "w", time.Hour, nil)
	if _, err := ls.Acquire("../escape"); err == nil {
		t.Fatal("path-hostile job name accepted")
	}
}

// TestLeaseTakeoverExactlyOnce is the satellite acceptance drill:
// worker A claims a job and stops heartbeating; worker B takes the
// lease over after the TTL; both workers then commit a result — and the
// journal plus store show exactly one committed result, because the
// duplicate commit is a no-op by content address.
func TestLeaseTakeoverExactlyOnce(t *testing.T) {
	dir := t.TempDir()
	clk := &fakeClock{t: time.Now()}
	const ttl = 50 * time.Millisecond
	a := newTestLeases(t, dir, "worker-a", ttl, clk)
	b := newTestLeases(t, dir, "worker-b", ttl, clk)

	st, err := Open(dir + "/store")
	if err != nil {
		t.Fatal(err)
	}
	j, _, err := OpenJournal(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()

	const jobName = "fig8_reno_core"
	const key = "1a2b3c-7" // content address: config hash + seed

	// Worker A claims the job and journals its intent… then stalls
	// (no heartbeats). mtime ages past the TTL.
	la, err := a.Acquire(jobName)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Append(JournalRecord{Op: OpIntent, Job: jobName, Key: key, Owner: "worker-a"}); err != nil {
		t.Fatal(err)
	}
	time.Sleep(2 * ttl) // let the real mtime age past the TTL
	clk.advance(2 * ttl)

	// Worker B sees the stale heartbeat and takes over.
	lb, err := b.Acquire(jobName)
	if err != nil {
		t.Fatalf("takeover after stale heartbeat: %v", err)
	}
	if err := j.Append(JournalRecord{Op: OpIntent, Job: jobName, Key: key, Owner: "worker-b"}); err != nil {
		t.Fatal(err)
	}
	if la.Confirm() {
		t.Fatal("worker A still confirms a lease that was taken over")
	}
	if !lb.Confirm() {
		t.Fatal("worker B cannot confirm its takeover")
	}

	// B commits its result and journals the outcome.
	resultB := []byte("deterministic result bytes")
	if err := st.Put(key, resultB); err != nil {
		t.Fatal(err)
	}
	if err := j.Append(JournalRecord{Op: OpDone, Job: jobName, Key: key, Owner: "worker-b"}); err != nil {
		t.Fatal(err)
	}

	// A wakes up late and finishes the same (deterministic) work. Its
	// commit must be a no-op, and its Release must not disturb B.
	if err := st.Put(key, resultB); err != nil {
		t.Fatal(err)
	}
	if err := la.Release(); err != nil {
		t.Fatal(err)
	}
	if !lb.Confirm() {
		t.Fatal("stale worker's release destroyed the new holder's lease")
	}
	if err := lb.Release(); err != nil {
		t.Fatal(err)
	}

	// Exactly one committed result…
	keys, err := st.Keys()
	if err != nil {
		t.Fatal(err)
	}
	if len(keys) != 1 || keys[0] != key {
		t.Fatalf("store keys = %v, want exactly [%s]", keys, key)
	}
	got, err := st.Get(key)
	if err != nil || string(got) != string(resultB) {
		t.Fatalf("committed result: %q, %v", got, err)
	}
	// …and the journal shows one done outcome across two intents.
	done, intents := 0, 0
	if _, _, err := OpenJournal(dir, nil); err != nil {
		t.Fatal(err)
	}
	j2, n, err := OpenJournal(dir, func(r JournalRecord) error {
		switch r.Op {
		case OpDone:
			done++
		case OpIntent:
			intents++
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	j2.Close()
	if n != 3 || intents != 2 || done != 1 {
		t.Fatalf("journal replay: n=%d intents=%d done=%d, want 3/2/1", n, intents, done)
	}
}

// TestLeaseHeartbeatPreventsTakeover: a live worker that heartbeats
// keeps its claim past the nominal TTL.
func TestLeaseHeartbeatPreventsTakeover(t *testing.T) {
	dir := t.TempDir()
	clk := &fakeClock{t: time.Now()}
	a := newTestLeases(t, dir, "worker-a", time.Hour, clk)
	b := newTestLeases(t, dir, "worker-b", time.Hour, clk)

	la, err := a.Acquire("job")
	if err != nil {
		t.Fatal(err)
	}
	clk.advance(2 * time.Hour) // past the TTL…
	if err := la.Heartbeat(); err != nil {
		t.Fatal(err)
	}
	// …but Heartbeat has reset the mtime to the real now, and the fake
	// clock only runs ahead of it, so for worker B the lease would look
	// stale without the heartbeat. Re-derive: set B's view to just past
	// real-now so the heartbeat reads fresh.
	clk.t = time.Now().Add(time.Minute)
	if _, err := b.Acquire("job"); !errors.Is(err, ErrLeaseHeld) {
		t.Fatalf("heartbeated lease taken over: %v", err)
	}
}

func TestValidateHeartbeat(t *testing.T) {
	cases := []struct {
		hb, ttl time.Duration
		ok      bool
	}{
		{time.Second, 10 * time.Second, true},
		{time.Second, 3100 * time.Millisecond, true}, // 3·hb just under ttl
		{time.Second, 3 * time.Second, false},        // exactly ttl/3: rejected
		{2 * time.Second, 3 * time.Second, false},
		{0, 10 * time.Second, false},
		{-time.Second, 10 * time.Second, false},
		{time.Second, 0, false},
	}
	for _, c := range cases {
		err := ValidateHeartbeat(c.hb, c.ttl)
		if c.ok && err != nil {
			t.Errorf("ValidateHeartbeat(%v, %v) = %v, want nil", c.hb, c.ttl, err)
		}
		if !c.ok && err == nil {
			t.Errorf("ValidateHeartbeat(%v, %v) = nil, want error", c.hb, c.ttl)
		}
	}
}

func TestDefaultHeartbeatValidates(t *testing.T) {
	for _, ttl := range []time.Duration{time.Second, 10 * time.Second, time.Hour} {
		hb := DefaultHeartbeat(ttl)
		if err := ValidateHeartbeat(hb, ttl); err != nil {
			t.Errorf("DefaultHeartbeat(%v) = %v fails its own validation: %v", ttl, hb, err)
		}
	}
}
