package store

import (
	"errors"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

// fakeClock lets lease tests move time without sleeping. Heartbeats
// still use the real clock (they only touch mtime forward, which reads
// as "fresh" under any later fake now).
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }

func newTestLeases(t *testing.T, dir, owner string, ttl time.Duration, clk *fakeClock) *Leases {
	t.Helper()
	ls, err := NewLeases(dir, owner, ttl)
	if err != nil {
		t.Fatal(err)
	}
	if clk != nil {
		ls.now = clk.now
	}
	return ls
}

func TestLeaseAcquireConflictRelease(t *testing.T) {
	dir := t.TempDir()
	a := newTestLeases(t, dir, "worker-a", time.Hour, nil)
	b := newTestLeases(t, dir, "worker-b", time.Hour, nil)

	la, err := a.Acquire("fig4_edge")
	if err != nil {
		t.Fatal(err)
	}
	if !la.Confirm() {
		t.Fatal("holder cannot confirm its own lease")
	}
	if _, err := b.Acquire("fig4_edge"); !errors.Is(err, ErrLeaseHeld) {
		t.Fatalf("second worker acquired a live lease: %v", err)
	}
	// Distinct jobs do not conflict.
	lb, err := b.Acquire("fig5_core")
	if err != nil {
		t.Fatal(err)
	}
	if err := lb.Release(); err != nil {
		t.Fatal(err)
	}
	if err := la.Release(); err != nil {
		t.Fatal(err)
	}
	// Released: anyone can claim.
	if _, err := b.Acquire("fig4_edge"); err != nil {
		t.Fatalf("acquire after release: %v", err)
	}
}

func TestLeaseRejectsBadConfig(t *testing.T) {
	dir := t.TempDir()
	if _, err := NewLeases(dir, "", time.Hour); err == nil {
		t.Fatal("empty owner accepted")
	}
	if _, err := NewLeases(dir, "w", 0); err == nil {
		t.Fatal("zero ttl accepted")
	}
	ls := newTestLeases(t, dir, "w", time.Hour, nil)
	if _, err := ls.Acquire("../escape"); err == nil {
		t.Fatal("path-hostile job name accepted")
	}
}

// TestLeaseTakeoverExactlyOnce is the satellite acceptance drill:
// worker A claims a job and stops heartbeating; worker B takes the
// lease over after the TTL; both workers then commit a result — and the
// journal plus store show exactly one committed result, because the
// duplicate commit is a no-op by content address.
func TestLeaseTakeoverExactlyOnce(t *testing.T) {
	dir := t.TempDir()
	clk := &fakeClock{t: time.Now()}
	const ttl = 50 * time.Millisecond
	a := newTestLeases(t, dir, "worker-a", ttl, clk)
	b := newTestLeases(t, dir, "worker-b", ttl, clk)

	st, err := Open(dir + "/store")
	if err != nil {
		t.Fatal(err)
	}
	j, _, err := OpenJournal(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()

	const jobName = "fig8_reno_core"
	const key = "1a2b3c-7" // content address: config hash + seed

	// Worker A claims the job and journals its intent… then stalls
	// (no heartbeats). mtime ages past the TTL.
	la, err := a.Acquire(jobName)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Append(JournalRecord{Op: OpIntent, Job: jobName, Key: key, Owner: "worker-a"}); err != nil {
		t.Fatal(err)
	}
	time.Sleep(2 * ttl) // let the real mtime age past the TTL
	clk.advance(2 * ttl)

	// Worker B sees the stale heartbeat and takes over.
	lb, err := b.Acquire(jobName)
	if err != nil {
		t.Fatalf("takeover after stale heartbeat: %v", err)
	}
	if err := j.Append(JournalRecord{Op: OpIntent, Job: jobName, Key: key, Owner: "worker-b"}); err != nil {
		t.Fatal(err)
	}
	if la.Confirm() {
		t.Fatal("worker A still confirms a lease that was taken over")
	}
	if !lb.Confirm() {
		t.Fatal("worker B cannot confirm its takeover")
	}

	// B commits its result and journals the outcome.
	resultB := []byte("deterministic result bytes")
	if err := st.Put(key, resultB); err != nil {
		t.Fatal(err)
	}
	if err := j.Append(JournalRecord{Op: OpDone, Job: jobName, Key: key, Owner: "worker-b"}); err != nil {
		t.Fatal(err)
	}

	// A wakes up late and finishes the same (deterministic) work. Its
	// commit must be a no-op, and its Release must not disturb B.
	if err := st.Put(key, resultB); err != nil {
		t.Fatal(err)
	}
	if err := la.Release(); err != nil {
		t.Fatal(err)
	}
	if !lb.Confirm() {
		t.Fatal("stale worker's release destroyed the new holder's lease")
	}
	if err := lb.Release(); err != nil {
		t.Fatal(err)
	}

	// Exactly one committed result…
	keys, err := st.Keys()
	if err != nil {
		t.Fatal(err)
	}
	if len(keys) != 1 || keys[0] != key {
		t.Fatalf("store keys = %v, want exactly [%s]", keys, key)
	}
	got, err := st.Get(key)
	if err != nil || string(got) != string(resultB) {
		t.Fatalf("committed result: %q, %v", got, err)
	}
	// …and the journal shows one done outcome across two intents.
	done, intents := 0, 0
	if _, _, err := OpenJournal(dir, nil); err != nil {
		t.Fatal(err)
	}
	j2, n, err := OpenJournal(dir, func(r JournalRecord) error {
		switch r.Op {
		case OpDone:
			done++
		case OpIntent:
			intents++
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	j2.Close()
	if n != 3 || intents != 2 || done != 1 {
		t.Fatalf("journal replay: n=%d intents=%d done=%d, want 3/2/1", n, intents, done)
	}
}

// TestLeaseHeartbeatPreventsTakeover: a live worker that heartbeats
// keeps its claim past the nominal TTL.
func TestLeaseHeartbeatPreventsTakeover(t *testing.T) {
	dir := t.TempDir()
	clk := &fakeClock{t: time.Now()}
	a := newTestLeases(t, dir, "worker-a", time.Hour, clk)
	b := newTestLeases(t, dir, "worker-b", time.Hour, clk)

	la, err := a.Acquire("job")
	if err != nil {
		t.Fatal(err)
	}
	clk.advance(2 * time.Hour) // past the TTL…
	if err := la.Heartbeat(); err != nil {
		t.Fatal(err)
	}
	// …but Heartbeat has reset the mtime to the real now, and the fake
	// clock only runs ahead of it, so for worker B the lease would look
	// stale without the heartbeat. Re-derive: set B's view to just past
	// real-now so the heartbeat reads fresh.
	clk.t = time.Now().Add(time.Minute)
	if _, err := b.Acquire("job"); !errors.Is(err, ErrLeaseHeld) {
		t.Fatalf("heartbeated lease taken over: %v", err)
	}
}

func TestValidateHeartbeat(t *testing.T) {
	cases := []struct {
		hb, ttl time.Duration
		ok      bool
	}{
		{time.Second, 10 * time.Second, true},
		{time.Second, 3100 * time.Millisecond, true}, // 3·hb just under ttl
		{time.Second, 3 * time.Second, false},        // exactly ttl/3: rejected
		{2 * time.Second, 3 * time.Second, false},
		{0, 10 * time.Second, false},
		{-time.Second, 10 * time.Second, false},
		{time.Second, 0, false},
	}
	for _, c := range cases {
		err := ValidateHeartbeat(c.hb, c.ttl)
		if c.ok && err != nil {
			t.Errorf("ValidateHeartbeat(%v, %v) = %v, want nil", c.hb, c.ttl, err)
		}
		if !c.ok && err == nil {
			t.Errorf("ValidateHeartbeat(%v, %v) = nil, want error", c.hb, c.ttl)
		}
	}
}

// TestLeaseTakeoverRaceExactlyOneWinner is the satellite drill for
// concurrent stale-lease takeover: two claimants race the same TTL
// expiry at the same instant. The O_EXCL takeover guard must let
// exactly one win; the loser must see a clean ErrLeaseHeld — not an
// I/O error, not a second "win". Repeated rounds give the race a fair
// chance to interleave every way the scheduler can produce.
func TestLeaseTakeoverRaceExactlyOneWinner(t *testing.T) {
	const ttl = 100 * time.Millisecond
	for round := 0; round < 25; round++ {
		dir := t.TempDir()
		dead := newTestLeases(t, dir, "worker-dead", ttl, nil)
		if _, err := dead.Acquire("job"); err != nil {
			t.Fatal(err)
		}
		// Age the dead holder's heartbeat past the TTL without sleeping.
		old := time.Now().Add(-time.Hour)
		if err := os.Chtimes(filepath.Join(dir, leaseDir, "job.lease"), old, old); err != nil {
			t.Fatal(err)
		}

		b := newTestLeases(t, dir, "worker-b", ttl, nil)
		c := newTestLeases(t, dir, "worker-c", ttl, nil)
		type res struct {
			lease *Lease
			err   error
		}
		results := make([]res, 2)
		var start, done sync.WaitGroup
		start.Add(1)
		done.Add(2)
		for i, ls := range []*Leases{b, c} {
			go func(i int, ls *Leases) {
				defer done.Done()
				start.Wait()
				l, err := ls.Acquire("job")
				results[i] = res{l, err}
			}(i, ls)
		}
		start.Done()
		done.Wait()

		winners := 0
		for i, r := range results {
			if r.err == nil {
				winners++
				if !r.lease.Confirm() {
					t.Fatalf("round %d: claimant %d won but cannot confirm", round, i)
				}
				continue
			}
			if !errors.Is(r.err, ErrLeaseHeld) {
				t.Fatalf("round %d: loser got %v, want a clean ErrLeaseHeld", round, r.err)
			}
		}
		if winners != 1 {
			t.Fatalf("round %d: %d takeover winners, want exactly 1", round, winners)
		}
	}
}

// TestLeaseTakeoverGuardAgesOut: a claimant that crashed between
// creating the takeover guard and renaming it must not wedge the job
// forever — the guard goes stale on the same TTL and the next claimant
// clears it.
func TestLeaseTakeoverGuardAgesOut(t *testing.T) {
	dir := t.TempDir()
	clk := &fakeClock{t: time.Now()}
	const ttl = 50 * time.Millisecond
	a := newTestLeases(t, dir, "worker-a", ttl, clk)
	if _, err := a.Acquire("job"); err != nil {
		t.Fatal(err)
	}
	// Simulate a crashed mid-takeover claimant: a guard file exists.
	guard := filepath.Join(dir, leaseDir, "job.lease.takeover")
	if err := os.WriteFile(guard, []byte(`{"owner":"worker-crashed"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	old := time.Now().Add(-time.Hour)
	for _, f := range []string{filepath.Join(dir, leaseDir, "job.lease"), guard} {
		if err := os.Chtimes(f, old, old); err != nil {
			t.Fatal(err)
		}
	}
	clk.advance(time.Hour)
	b := newTestLeases(t, dir, "worker-b", ttl, clk)
	lb, err := b.Acquire("job")
	if err != nil {
		t.Fatalf("takeover with stale guard present: %v", err)
	}
	if !lb.Confirm() {
		t.Fatal("winner cannot confirm after clearing a stale guard")
	}
	// A *fresh* guard (live takeover in progress) must stay a rejection.
	// Judged on the real clock: the lease is stale, the guard is not.
	if err := lb.Release(); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Acquire("other"); err != nil {
		t.Fatal(err)
	}
	if err := os.Chtimes(filepath.Join(dir, leaseDir, "other.lease"), old, old); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, leaseDir, "other.lease.takeover"), []byte("{}"), 0o644); err != nil {
		t.Fatal(err)
	}
	c := newTestLeases(t, dir, "worker-c", ttl, nil)
	if _, err := c.Acquire("other"); !errors.Is(err, ErrLeaseHeld) {
		t.Fatalf("fresh guard ignored: %v", err)
	}
}

func TestSlotName(t *testing.T) {
	if got := SlotName("fig4", 0); got != "fig4" {
		t.Fatalf("SlotName slot 0 = %q, want the bare job name", got)
	}
	if got := SlotName("fig4", 2); got != "fig4~h2" {
		t.Fatalf("SlotName slot 2 = %q", got)
	}
	// Hedge slots are distinct leases: primary and hedge coexist.
	dir := t.TempDir()
	ls := newTestLeases(t, dir, "w", time.Hour, nil)
	if _, err := ls.Acquire(SlotName("job", 0)); err != nil {
		t.Fatal(err)
	}
	if _, err := ls.Acquire(SlotName("job", 1)); err != nil {
		t.Fatalf("hedge slot conflicts with primary: %v", err)
	}
}

// TestReleaseOwned: the supervisor's cleanup for a reaped worker
// removes exactly that worker's lease — never a live successor's.
func TestReleaseOwned(t *testing.T) {
	dir := t.TempDir()
	a := newTestLeases(t, dir, "worker-a", time.Hour, nil)
	sup := newTestLeases(t, dir, "supervisor", time.Hour, nil)
	if _, err := a.Acquire("job"); err != nil {
		t.Fatal(err)
	}
	// Wrong owner: no-op, lease survives.
	if err := sup.ReleaseOwned("job", "worker-b"); err != nil {
		t.Fatal(err)
	}
	if _, err := sup.Acquire("job"); !errors.Is(err, ErrLeaseHeld) {
		t.Fatalf("lease vanished after wrong-owner release: %v", err)
	}
	// Right owner: lease removed, job immediately claimable.
	if err := sup.ReleaseOwned("job", "worker-a"); err != nil {
		t.Fatal(err)
	}
	if _, err := sup.Acquire("job"); err != nil {
		t.Fatalf("acquire after owned release: %v", err)
	}
	// Nonexistent lease: success.
	if err := sup.ReleaseOwned("ghost", "worker-a"); err != nil {
		t.Fatal(err)
	}
}

func TestDefaultHeartbeatValidates(t *testing.T) {
	for _, ttl := range []time.Duration{time.Second, 10 * time.Second, time.Hour} {
		hb := DefaultHeartbeat(ttl)
		if err := ValidateHeartbeat(hb, ttl); err != nil {
			t.Errorf("DefaultHeartbeat(%v) = %v fails its own validation: %v", ttl, hb, err)
		}
	}
}
