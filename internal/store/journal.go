package store

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"strings"
	"time"

	"ccatscale/internal/schema"
)

// errSeqGap marks a well-formed record with the wrong sequence number:
// a record before it was lost, which no crash of the append protocol
// can produce.
var errSeqGap = fmt.Errorf("%w: sequence gap", ErrCorrupt)

// JournalFile is the write-ahead log's file name inside a sweep's
// output directory.
const JournalFile = "journal.jsonl"

// Journal ops. An "intent" is written (and fsync'd) before a job runs;
// exactly one outcome op follows when it finishes. Recovery treats an
// intent with no outcome as in-flight at the crash and re-runs it.
const (
	// OpBegin opens a sweep invocation and carries its parameters
	// (seed, scale, config hash) in Detail, so resume compatibility can
	// be checked even when every derived view is lost.
	OpBegin    = "begin"
	OpIntent   = "intent"
	OpDone     = "done"
	OpFailed   = "failed"
	OpRejected = "rejected"
	// OpCached records that a job's result was served from the
	// content-addressed store without recomputation — the counter the
	// exactly-once acceptance test asserts on.
	OpCached = "cached"
	// OpQueued admits a job into a server's queue: the record's Detail
	// carries the full request spec, so a crashed server re-enqueues the
	// job from the journal alone. OpClaimed marks a worker starting it.
	// Both are pending ops — an OpQueued/OpClaimed with no terminal op
	// is in-flight work that recovery must resume.
	OpQueued  = "queued"
	OpClaimed = "claimed"
	// OpQuarantined is the circuit breaker's terminal op: the same
	// config-hash failed repeatedly, so the job is parked with a
	// replayable RunError instead of retry-looping.
	OpQuarantined = "quarantined"
	// OpPoisoned is the fleet supervisor's terminal op: the config's
	// worker *process* died repeatedly (OOM kill, runtime crash), so the
	// config is refused outright — resubmission does not clear it the
	// way it clears a quarantine, because each strike costs a process.
	OpPoisoned = "poisoned"
)

// TerminalOp reports whether op resolves a job: no further journal
// record is expected for it, and recovery does not re-run it.
func TerminalOp(op string) bool {
	switch op {
	case OpDone, OpFailed, OpRejected, OpCached, OpQuarantined, OpPoisoned:
		return true
	}
	return false
}

// PendingOp reports whether op opens work that a later terminal op must
// resolve (an intent, a queue admission, or a worker claim).
func PendingOp(op string) bool {
	switch op {
	case OpIntent, OpQueued, OpClaimed:
		return true
	}
	return false
}

// JournalRecord is one append-only log entry. Op and Job identify what
// happened to which unit of work; Key is the content address of the
// job's result (config hash + seed); Owner names the worker process
// that wrote the record; Detail carries the caller's own serialized
// outcome (for reproduce, the manifest jobRecord) so the manifest can
// be derived purely from the journal. Seq and CRC are framing: Seq
// must increase by one per record, CRC (CRC-32C over the record
// serialized with CRC zeroed) detects torn or bit-rotted lines.
type JournalRecord struct {
	SchemaVersion string `json:"schema_version"`
	Seq           uint64 `json:"seq"`
	Op            string `json:"op"`
	Job           string `json:"job,omitempty"`
	Key           string `json:"key,omitempty"`
	Owner         string `json:"owner,omitempty"`
	// Gen numbers successive submissions of one (job, key) identity: a
	// resubmitted failure opens a new generation, and a pending op is
	// resolved only by a terminal op of the same or a later generation.
	// Generations are what keep resolution order-safe across segments,
	// which replay in lexicographic — not chronological — order. Zero
	// for single-cycle writers (cmd/reproduce).
	Gen    uint64          `json:"gen,omitempty"`
	At     string          `json:"at,omitempty"`
	Detail json.RawMessage `json:"detail,omitempty"`
	CRC    string          `json:"crc32c"`
}

// Journal is the append-only write-ahead log. Append marshals, frames,
// writes, and fsyncs one line per record: after Append returns, the
// record survives power loss. A torn final line (the crash landed
// mid-write) is detected by CRC at open and ignored; a torn or corrupt
// line anywhere earlier means the file was tampered with or the disk is
// failing, and open refuses it.
type Journal struct {
	f    File
	fs   FS
	path string
	w    *bufio.Writer
	seq  uint64
	err  error // sticky: a journal that failed once stays failed
}

// OpenJournal opens (creating if needed) the journal in dir, replays
// every valid record through replay (nil to skip), and positions the
// log for appending. It returns the journal and the number of valid
// records replayed. A torn tail — the hallmark of a crash during
// Append — is truncated away (the record never committed; its job will
// re-run). Corruption before the tail quarantines the journal to
// journal.jsonl.corrupt and starts fresh, because a mid-file tear
// cannot come from the append protocol.
func OpenJournal(dir string, replay func(JournalRecord) error) (*Journal, int, error) {
	return OpenJournalFS(OSFS(), dir, replay)
}

// OpenJournalFS is OpenJournal on an explicit FS.
func OpenJournalFS(fs FS, dir string, replay func(JournalRecord) error) (*Journal, int, error) {
	return openJournalFile(fs, dir, JournalFile, replay)
}

// openJournalFile opens one named journal segment in dir.
func openJournalFile(fs FS, dir, file string, replay func(JournalRecord) error) (*Journal, int, error) {
	if err := fs.MkdirAll(dir, 0o755); err != nil {
		return nil, 0, err
	}
	path := filepath.Join(dir, file)
	data, err := fs.ReadFile(path)
	if err != nil && !os.IsNotExist(err) {
		return nil, 0, err
	}
	valid, recs, perr := scanJournal(data)
	if perr != nil {
		// Corruption before the tail: quarantine the whole file as
		// evidence, then continue from the verified prefix — records
		// fsync'd in order before the damage are still trustworthy, and
		// result payloads live in the content-addressed store anyway, so
		// the cost of a shortened log is re-verifying, not recomputing.
		if err := fs.Rename(path, path+".corrupt"); err != nil && !os.IsNotExist(err) {
			return nil, 0, fmt.Errorf("store: journal corrupt (%v) and quarantine failed: %v", perr, err)
		}
		if err := fs.SyncDir(dir); err != nil {
			return nil, 0, err
		}
	}
	if len(valid) != len(data) {
		// Shortened log (torn tail, or prefix salvaged from quarantine):
		// rewrite the valid prefix atomically rather than appending
		// after garbage.
		if err := WriteFileAtomicFS(fs, path, valid); err != nil {
			return nil, 0, err
		}
	}
	var seq uint64
	if n := len(recs); n > 0 {
		seq = recs[n-1].Seq
	}
	if replay != nil {
		for _, rec := range recs {
			if err := replay(rec); err != nil {
				return nil, len(recs), err
			}
		}
	}
	f, err := fs.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_APPEND, 0o644)
	if err != nil {
		return nil, 0, err
	}
	return &Journal{f: f, fs: fs, path: path, w: bufio.NewWriter(f), seq: seq}, len(recs), nil
}

// scanJournal walks the log line by line, verifying framing. It returns
// the byte prefix holding valid records, the records themselves, and a
// non-nil error only for corruption *before* the final line (a torn
// tail is normal crash fallout and silently dropped).
func scanJournal(data []byte) (valid []byte, recs []JournalRecord, err error) {
	off := 0
	var seq uint64
	for off < len(data) {
		nl := bytes.IndexByte(data[off:], '\n')
		last := nl < 0
		var line []byte
		if last {
			line = data[off:]
		} else {
			line = data[off : off+nl]
		}
		rec, verr := verifyJournalLine(line, seq+1)
		if verr != nil {
			// A framing failure (unparseable, bad CRC) on the final line
			// is the signature of a torn Append: drop just that line. A
			// sequence gap is never torn-write fallout — the line's CRC
			// verified, so it was written whole after a record vanished —
			// and anywhere before the tail any failure means the log was
			// altered outside the protocol. Both quarantine.
			finalLine := last || off+nl+1 == len(data)
			if finalLine && !errors.Is(verr, errSeqGap) {
				return data[:off], recs, nil
			}
			return data[:off], recs, fmt.Errorf("journal record %d: %w", len(recs)+1, verr)
		}
		seq = rec.Seq
		recs = append(recs, rec)
		if last {
			off = len(data)
		} else {
			off += nl + 1
		}
	}
	return data[:off], recs, nil
}

// verifyJournalLine parses and checks one framed record: JSON shape,
// schema major, CRC-32C, and the expected sequence number.
func verifyJournalLine(line []byte, wantSeq uint64) (JournalRecord, error) {
	var rec JournalRecord
	if err := json.Unmarshal(line, &rec); err != nil {
		return rec, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	if err := schema.Check(rec.SchemaVersion); err != nil {
		return rec, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	crcWant := rec.CRC
	rec.CRC = ""
	reser, err := json.Marshal(rec)
	if err != nil {
		return rec, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	if got := fmt.Sprintf("%08x", crc32.Checksum(reser, castagnoli)); got != crcWant {
		return rec, fmt.Errorf("%w: crc32c %s != recorded %q", ErrCorrupt, got, crcWant)
	}
	if rec.Seq != wantSeq {
		return rec, fmt.Errorf("%w: sequence %d, want %d (lost record)", errSeqGap, rec.Seq, wantSeq)
	}
	rec.CRC = crcWant
	return rec, nil
}

// Append durably logs one record: sequence and checksum are filled in,
// the line is written and fsync'd before return. Errors are sticky —
// once an Append fails the journal refuses further writes, because a
// log with a hole cannot be trusted to order recovery.
func (j *Journal) Append(rec JournalRecord) error {
	if j.err != nil {
		return j.err
	}
	rec.Seq = j.seq + 1
	if rec.At == "" {
		rec.At = time.Now().UTC().Format(time.RFC3339)
	}
	line, err := sealLine(rec)
	if err != nil {
		j.err = err
		return err
	}
	if _, err := j.w.Write(line); err != nil {
		j.err = err
		return err
	}
	if err := j.w.Flush(); err != nil {
		j.err = err
		return err
	}
	if err := j.f.Sync(); err != nil {
		j.err = err
		return err
	}
	j.seq = rec.Seq
	return nil
}

// sealLine frames one record for the log: the current schema version is
// stamped, the CRC-32C computed over the record serialized with CRC
// zeroed, and the framed line returned newline-terminated. The caller
// has already assigned Seq and At.
func sealLine(rec JournalRecord) ([]byte, error) {
	rec.SchemaVersion = schema.Version
	rec.CRC = ""
	body, err := json.Marshal(rec)
	if err != nil {
		return nil, err
	}
	rec.CRC = fmt.Sprintf("%08x", crc32.Checksum(body, castagnoli))
	line, err := json.Marshal(rec)
	if err != nil {
		return nil, err
	}
	return append(line, '\n'), nil
}

// Seq returns the sequence number of the last durable record.
func (j *Journal) Seq() uint64 { return j.seq }

// OpenJournalSet is the multi-process form of OpenJournal: it replays
// every journal segment in dir — journal.jsonl plus one
// journal-<owner>.jsonl per worker process — in lexicographic segment
// order, then opens this owner's segment for appending. Each segment
// has a single writer (owners are unique per process), which is what
// keeps the per-record fsync protocol free of cross-process interleave;
// consumers must therefore derive state commutatively (terminal-op
// priority per job, not wall-clock order). Returns the journal and the
// total records replayed across all segments.
func OpenJournalSet(fs FS, dir, owner string, replay func(JournalRecord) error) (*Journal, int, error) {
	if err := fs.MkdirAll(dir, 0o755); err != nil {
		return nil, 0, err
	}
	ents, err := fs.ReadDir(dir)
	if err != nil {
		return nil, 0, err
	}
	own := journalSegment(owner)
	total := 0
	for _, e := range ents { // ReadDir returns names sorted
		name := e.Name()
		if e.IsDir() || name == own {
			continue // this owner's segment is replayed by OpenJournalFS below
		}
		if name != JournalFile && !(strings.HasPrefix(name, "journal-") && strings.HasSuffix(name, ".jsonl")) {
			continue
		}
		data, err := fs.ReadFile(filepath.Join(dir, name))
		if err != nil {
			if os.IsNotExist(err) {
				continue
			}
			return nil, 0, err
		}
		_, recs, perr := scanJournal(data)
		if perr != nil {
			// A foreign segment with mid-file damage: quarantine it like
			// OpenJournalFS would its own, keep its valid prefix records.
			if err := fs.Rename(filepath.Join(dir, name), filepath.Join(dir, name+".corrupt")); err != nil && !os.IsNotExist(err) {
				return nil, 0, fmt.Errorf("store: journal segment %s corrupt (%v) and quarantine failed: %v", name, perr, err)
			}
			if err := fs.SyncDir(dir); err != nil {
				return nil, 0, err
			}
		}
		for _, rec := range recs {
			if replay != nil {
				if err := replay(rec); err != nil {
					return nil, total, err
				}
			}
			total++
		}
	}
	j, n, err := openJournalFile(fs, dir, own, replay)
	if err != nil {
		return nil, total, err
	}
	return j, total + n, nil
}

// journalSegment names an owner's private segment. Owner strings may
// carry host:pid punctuation; anything path-hostile is flattened.
func journalSegment(owner string) string {
	clean := make([]byte, 0, len(owner))
	for i := 0; i < len(owner); i++ {
		c := owner[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '-', c == '_', c == '.':
			clean = append(clean, c)
		default:
			clean = append(clean, '_')
		}
	}
	return "journal-" + string(clean) + ".jsonl"
}

// Close flushes and closes the log file.
func (j *Journal) Close() error {
	ferr := j.w.Flush()
	cerr := j.f.Close()
	if j.err != nil {
		return j.err
	}
	if ferr != nil {
		return ferr
	}
	return cerr
}
