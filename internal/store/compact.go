package store

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
)

// CompactJournalSet bounds write-ahead-log growth for a long-lived
// owner of dir (a server that boots, serves, and reboots in the same
// output directory for months): it rewrites every journal segment whose
// pending work is fully resolved, keeping only the records recovery
// still needs, and removes segments left empty. Boot-time replay then
// scales with the number of distinct jobs, not with the number of
// requests ever served.
//
// The retention rule per segment, applied only when every pending op
// (intent/queued/claimed) in the segment has a terminal op for the same
// (job, key) of the same or a later generation somewhere in the whole
// set — generation, not position, is what orders records across
// segments, so a resubmitted job's fresh OpQueued (gen n+1) is never
// "resolved" by the old failure (gen n) it is retrying:
//
//   - pending ops are dropped — their jobs are resolved;
//   - of several terminal records for one (job, key), only the last in
//     the segment is kept — it is the record consumers derive state
//     from (terminal-op derivation is commutative, so dropping
//     superseded outcomes cannot change the derived frontier);
//   - of several begin records, only the last is kept;
//   - records with ops this build does not know are kept verbatim.
//
// A segment with an unresolved pending op is left untouched: an
// in-flight intent is exactly the record a crash recovery must replay.
//
// Rewrites are atomic (tmp → fsync → rename → dirsync) and sequence
// numbers are renumbered from 1, so a compacted segment is
// indistinguishable from one that was written small. Since per-process
// owners get fresh segment names each boot, compaction doubles as
// rotation: a previous boot's fully-terminal segment shrinks to its
// outcome summary or disappears entirely.
//
// The caller must own dir exclusively (no other process appending to
// any segment) — ccserve guarantees this with its server-singleton
// lease. Returns the number of records dropped across all segments.
func CompactJournalSet(fs FS, dir string) (dropped int, err error) {
	ents, err := fs.ReadDir(dir)
	if os.IsNotExist(err) {
		return 0, nil
	}
	if err != nil {
		return 0, err
	}
	type segment struct {
		name string
		recs []JournalRecord
	}
	var segs []segment
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() {
			continue
		}
		if name != JournalFile && !(strings.HasPrefix(name, "journal-") && strings.HasSuffix(name, ".jsonl")) {
			continue
		}
		data, rerr := fs.ReadFile(filepath.Join(dir, name))
		if rerr != nil {
			if os.IsNotExist(rerr) {
				continue
			}
			return dropped, rerr
		}
		_, recs, perr := scanJournal(data)
		if perr != nil {
			// Mid-file damage is OpenJournalSet's problem (quarantine);
			// compaction must not destroy the evidence. Skip the segment.
			continue
		}
		segs = append(segs, segment{name: name, recs: recs})
	}

	// resolved maps each (job, key) identity that has a terminal op
	// anywhere in the set to the highest generation so resolved. A
	// pending op is settled only by a terminal of its own generation or
	// later: "a terminal exists somewhere" is not enough, because a
	// resubmitted failure writes its new OpQueued after — possibly in a
	// different segment than — the terminal it is retrying.
	resolved := map[string]uint64{}
	ident := func(r JournalRecord) string { return r.Job + "\x00" + r.Key }
	for _, seg := range segs {
		for _, r := range seg.recs {
			if TerminalOp(r.Op) {
				if g, ok := resolved[ident(r)]; !ok || r.Gen > g {
					resolved[ident(r)] = r.Gen
				}
			}
		}
	}

	for _, seg := range segs {
		compactable := len(seg.recs) > 0
		for _, r := range seg.recs {
			if PendingOp(r.Op) {
				if g, ok := resolved[ident(r)]; !ok || g < r.Gen {
					compactable = false
					break
				}
			}
		}
		if !compactable {
			continue
		}
		// Decide per record, scanning backwards so "last wins" is one
		// pass: the last begin and the last terminal per identity stay.
		keep := make([]bool, len(seg.recs))
		beginKept := false
		terminalKept := map[string]bool{}
		kept := 0
		for i := len(seg.recs) - 1; i >= 0; i-- {
			r := seg.recs[i]
			switch {
			case r.Op == OpBegin:
				keep[i] = !beginKept
				beginKept = true
			case TerminalOp(r.Op):
				keep[i] = !terminalKept[ident(r)]
				terminalKept[ident(r)] = true
			case PendingOp(r.Op):
				keep[i] = false
			default:
				keep[i] = true // unknown op: future shape, keep verbatim
			}
			if keep[i] {
				kept++
			}
		}
		if kept == len(seg.recs) {
			continue // nothing to drop
		}
		dropped += len(seg.recs) - kept
		path := filepath.Join(dir, seg.name)
		if kept == 0 {
			if err := fs.Remove(path); err != nil && !os.IsNotExist(err) {
				return dropped, err
			}
			if err := fs.SyncDir(dir); err != nil {
				return dropped, err
			}
			continue
		}
		var out []byte
		seq := uint64(0)
		for i, r := range seg.recs {
			if !keep[i] {
				continue
			}
			seq++
			r.Seq = seq
			line, err := sealLine(r)
			if err != nil {
				return dropped, fmt.Errorf("store: compacting %s: %w", seg.name, err)
			}
			out = append(out, line...)
		}
		if err := WriteFileAtomicFS(fs, path, out); err != nil {
			return dropped, err
		}
	}
	return dropped, nil
}
