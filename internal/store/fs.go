package store

import (
	"io"
	"os"
	"time"
)

// FS is the syscall surface the store's durability protocol runs on.
// Every operation the crash model reasons about — create, write, fsync,
// rename, directory sync — goes through this seam, so the chaos harness
// (internal/store/chaostest) can cut the process at any syscall
// boundary, tear a write in half, or fail an fsync, and the recovery
// path can be proven against exactly the failures a real kernel can
// deliver.
type FS interface {
	// OpenFile opens a file with the given flags, like os.OpenFile.
	OpenFile(name string, flag int, perm os.FileMode) (File, error)
	// Rename atomically replaces newname with oldname, like os.Rename.
	Rename(oldname, newname string) error
	// Remove deletes a file, like os.Remove.
	Remove(name string) error
	// MkdirAll creates a directory tree, like os.MkdirAll.
	MkdirAll(name string, perm os.FileMode) error
	// Stat stats a path, like os.Stat.
	Stat(name string) (os.FileInfo, error)
	// ReadFile reads a whole file, like os.ReadFile.
	ReadFile(name string) ([]byte, error)
	// ReadDir lists a directory, like os.ReadDir.
	ReadDir(name string) ([]os.DirEntry, error)
	// SyncDir fsyncs a directory so a preceding rename or create in it
	// is durable. On filesystems where directories cannot be fsynced the
	// implementation may degrade to a no-op.
	SyncDir(name string) error
	// Chtimes updates a file's access and modification times, like
	// os.Chtimes. Leases use it to heartbeat.
	Chtimes(name string, atime, mtime time.Time) error
}

// File is the open-file surface the protocol uses: write, fsync, close.
type File interface {
	io.Writer
	Sync() error
	Close() error
	Name() string
}

// osFS is the real filesystem.
type osFS struct{}

// OSFS returns the production FS backed by the os package. Store and
// Journal default to it; tests and the chaos harness substitute their
// own.
func OSFS() FS { return osFS{} }

func (osFS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	f, err := os.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return f, nil
}

func (osFS) Rename(oldname, newname string) error         { return os.Rename(oldname, newname) }
func (osFS) Remove(name string) error                     { return os.Remove(name) }
func (osFS) MkdirAll(name string, perm os.FileMode) error { return os.MkdirAll(name, perm) }
func (osFS) Stat(name string) (os.FileInfo, error)        { return os.Stat(name) }
func (osFS) ReadFile(name string) ([]byte, error)         { return os.ReadFile(name) }
func (osFS) ReadDir(name string) ([]os.DirEntry, error)   { return os.ReadDir(name) }

func (osFS) Chtimes(name string, atime, mtime time.Time) error {
	return os.Chtimes(name, atime, mtime)
}

// SyncDir opens the directory read-only and fsyncs it: the POSIX way to
// make a completed rename survive power loss. Some filesystems refuse
// to fsync a directory handle; that is reported, not swallowed, except
// for EINVAL which several network filesystems return for a legal call.
func (osFS) SyncDir(name string) error {
	d, err := os.Open(name)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}
