package chaostest

import (
	"bytes"
	"errors"
	"fmt"
	"path/filepath"
	"testing"
	"time"

	"ccatscale/internal/store"
)

// opBudget measures how many syscall boundaries fn crosses on a clean
// run, so crash sweeps can place a kill at every single one.
func opBudget(t *testing.T, fn func(fs store.FS) error) uint64 {
	t.Helper()
	probe := Wrap(store.OSFS(), Plan{})
	if err := fn(probe); err != nil {
		t.Fatalf("clean probe run failed: %v", err)
	}
	if probe.Ops() == 0 {
		t.Fatal("probe crossed no syscall boundaries")
	}
	return probe.Ops()
}

// TestStorePutCrashAtEveryBoundary is the core atomicity sweep: kill
// the process at every syscall boundary of a Store.Put, reboot, and
// require that the key reads either fully committed or absent — never
// torn — and that a retry always converges to the committed bytes.
func TestStorePutCrashAtEveryBoundary(t *testing.T) {
	payload := []byte("table bytes: deterministic result of (config-hash, seed)\n")
	const key = "abcd1234-7"
	doPut := func(dir string) func(fs store.FS) error {
		return func(fs store.FS) error {
			s, err := store.OpenFS(dir, fs)
			if err != nil {
				return err
			}
			return s.Put(key, payload)
		}
	}
	budget := opBudget(t, doPut(t.TempDir()))
	t.Logf("Store.Put crosses %d syscall boundaries", budget)

	for kill := uint64(1); kill <= budget; kill++ {
		for _, torn := range []int{0, 7, -1} {
			plan := Plan{KillAt: kill, TornBytes: torn}
			t.Run(plan.String(), func(t *testing.T) {
				dir := t.TempDir()
				chaos := Wrap(store.OSFS(), plan)
				err := doPut(dir)(chaos)
				if !chaos.Killed() {
					t.Fatalf("kill point %d never fired (err=%v)", kill, err)
				}

				// Reboot: a fresh process over the same directory.
				s, err := store.Open(dir)
				if err != nil {
					t.Fatalf("reopen after crash: %v", err)
				}
				got, err := s.Get(key)
				switch {
				case err == nil:
					if !bytes.Equal(got, payload) {
						t.Fatalf("committed record differs after crash: %q", got)
					}
				case errors.Is(err, store.ErrNotFound):
					// Absent (possibly after quarantining a torn tmp
					// promoted by... nothing — tmp never renamed). Fine.
				default:
					t.Fatalf("Get after crash: %v", err)
				}

				// Recovery: the retry must land the exact bytes.
				if err := s.Put(key, payload); err != nil {
					t.Fatalf("recommit after crash: %v", err)
				}
				got, err = s.Get(key)
				if err != nil || !bytes.Equal(got, payload) {
					t.Fatalf("record after recovery: %q, %v", got, err)
				}
			})
		}
	}
}

// TestJournalCrashAtEveryBoundary: kill at every syscall boundary while
// appending a fixed record sequence; reboot and replay. The recovered
// log must be an exact prefix of the attempted sequence — the pre-crash
// frontier — with no record altered, reordered, or invented, and at
// least every acknowledged (Append returned nil) record present.
func TestJournalCrashAtEveryBoundary(t *testing.T) {
	attempts := []store.JournalRecord{
		{Op: store.OpIntent, Job: "fig4_edge", Key: "aa-7", Owner: "w1"},
		{Op: store.OpDone, Job: "fig4_edge", Key: "aa-7", Owner: "w1"},
		{Op: store.OpIntent, Job: "fig5_core", Key: "bb-7", Owner: "w1"},
		{Op: store.OpDone, Job: "fig5_core", Key: "bb-7", Owner: "w1"},
	}
	doAppends := func(dir string) func(fs store.FS) (int, error) {
		return func(fs store.FS) (int, error) {
			j, _, err := store.OpenJournalFS(fs, dir, nil)
			if err != nil {
				return 0, err
			}
			acked := 0
			for _, rec := range attempts {
				if err := j.Append(rec); err != nil {
					return acked, err
				}
				acked++
			}
			return acked, j.Close()
		}
	}
	budget := opBudget(t, func(fs store.FS) error {
		_, err := doAppends(t.TempDir())(fs)
		return err
	})
	t.Logf("journal open+4 appends cross %d syscall boundaries", budget)

	for kill := uint64(1); kill <= budget; kill++ {
		for _, torn := range []int{0, 5, -1} {
			plan := Plan{KillAt: kill, TornBytes: torn}
			t.Run(plan.String(), func(t *testing.T) {
				dir := t.TempDir()
				chaos := Wrap(store.OSFS(), plan)
				acked, _ := doAppends(dir)(chaos)
				if !chaos.Killed() {
					t.Skip("appends finished before the kill point (budget includes Close)")
				}

				var got []store.JournalRecord
				j, n, err := store.OpenJournal(dir, func(r store.JournalRecord) error {
					got = append(got, r)
					return nil
				})
				if err != nil {
					t.Fatalf("journal recovery: %v", err)
				}
				defer j.Close()
				// Frontier: an exact prefix, at least the acked records.
				// (One more than acked can be present when the crash
				// landed between durability and acknowledgment.)
				if n < acked || n > len(attempts) {
					t.Fatalf("recovered %d records, acked %d, attempted %d", n, acked, len(attempts))
				}
				for i, r := range got {
					want := attempts[i]
					if r.Op != want.Op || r.Job != want.Job || r.Key != want.Key || r.Seq != uint64(i+1) {
						t.Fatalf("record %d altered: %+v, want %+v", i, r, want)
					}
				}
				// The journal accepts appends again after recovery.
				if err := j.Append(store.JournalRecord{Op: store.OpIntent, Job: "resumed"}); err != nil {
					t.Fatalf("append after recovery: %v", err)
				}
			})
		}
	}
}

// TestLeaseCrashLeavesRecoverableState: kill during Acquire at every
// boundary; a rebooted worker must always be able to (eventually, via
// TTL takeover) claim the job.
func TestLeaseCrashLeavesRecoverableState(t *testing.T) {
	const ttl = 10 * time.Millisecond
	doAcquire := func(dir string) func(fs store.FS) error {
		return func(fs store.FS) error {
			ls, err := store.NewLeasesFS(fs, dir, "victim", ttl)
			if err != nil {
				return err
			}
			_, err = ls.Acquire("jobx")
			return err
		}
	}
	budget := opBudget(t, doAcquire(t.TempDir()))
	for kill := uint64(1); kill <= budget; kill++ {
		t.Run(fmt.Sprintf("kill@%d", kill), func(t *testing.T) {
			dir := t.TempDir()
			chaos := Wrap(store.OSFS(), Plan{KillAt: kill, TornBytes: 3})
			doAcquire(dir)(chaos)
			if !chaos.Killed() {
				t.Fatalf("kill point %d never fired", kill)
			}
			time.Sleep(2 * ttl) // any half-written lease goes stale
			ls, err := store.NewLeases(dir, "survivor", ttl)
			if err != nil {
				t.Fatal(err)
			}
			l, err := ls.Acquire("jobx")
			if err != nil {
				t.Fatalf("survivor cannot claim after victim's crash: %v", err)
			}
			if !l.Confirm() {
				t.Fatal("survivor's claim does not confirm")
			}
		})
	}
}

// miniJob is one unit of the simulated sweep: a deterministic "result"
// derived from its key, standing in for a simulation run.
func miniResult(key string) []byte {
	return []byte("RESULT " + key + " deterministic-bytes\n")
}

// runMiniSweep drives the full orchestration protocol — journal intent,
// compute (or serve from store), commit, journal outcome — over a fixed
// job set on the given FS, as one worker process would. It returns how
// many jobs it computed (vs served from cache) before finishing or
// dying.
func runMiniSweep(fs store.FS, dir, owner string, jobs []string) (computed, cached int, err error) {
	st, err := store.OpenFS(filepath.Join(dir, "store"), fs)
	if err != nil {
		return 0, 0, err
	}
	done := map[string]bool{}
	j, _, err := store.OpenJournalFS(fs, dir, func(r store.JournalRecord) error {
		if r.Op == store.OpDone || r.Op == store.OpCached {
			done[r.Job] = true
		}
		return nil
	})
	if err != nil {
		return 0, 0, err
	}
	defer j.Close()
	ls, err := store.NewLeasesFS(fs, dir, owner, 50*time.Millisecond)
	if err != nil {
		return 0, 0, err
	}
	for _, job := range jobs {
		if done[job] {
			continue
		}
		key := job + "-7"
		// Already committed by an earlier (crashed) attempt? Serve from
		// the store: zero recomputation, journal the cache hit.
		if st.Has(key) {
			if err := j.Append(store.JournalRecord{Op: store.OpCached, Job: job, Key: key, Owner: owner}); err != nil {
				return computed, cached, err
			}
			cached++
			continue
		}
		lease, err := ls.Acquire(job)
		if err != nil {
			if errors.Is(err, store.ErrLeaseHeld) {
				continue // another worker owns it
			}
			return computed, cached, err
		}
		if err := j.Append(store.JournalRecord{Op: store.OpIntent, Job: job, Key: key, Owner: owner}); err != nil {
			return computed, cached, err
		}
		if err := st.Put(key, miniResult(key)); err != nil {
			return computed, cached, err
		}
		computed++
		if err := j.Append(store.JournalRecord{Op: store.OpDone, Job: job, Key: key, Owner: owner}); err != nil {
			return computed, cached, err
		}
		if err := lease.Release(); err != nil {
			return computed, cached, err
		}
	}
	return computed, cached, nil
}

// sweepFingerprint hashes the committed result set: every key and its
// exact payload bytes. Two directories with equal fingerprints hold
// byte-identical results.
func sweepFingerprint(t *testing.T, dir string) string {
	t.Helper()
	st, err := store.Open(filepath.Join(dir, "store"))
	if err != nil {
		t.Fatal(err)
	}
	keys, err := st.Keys()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	for _, k := range keys {
		payload, err := st.Get(k)
		if err != nil {
			t.Fatalf("fingerprint: %s: %v", k, err)
		}
		fmt.Fprintf(&buf, "%s %x\n", k, payload)
	}
	return buf.String()
}

// TestSweepCrashResumeExactlyOnce is the acceptance drill for the whole
// protocol: run a mini sweep killed at every syscall boundary, resume
// with a fresh worker each time, and require (a) the final result set
// is byte-identical to an uninterrupted run, (b) every job's result was
// computed exactly once — any attempt after a committed Put is a cache
// hit, never a recomputation that changes bytes.
func TestSweepCrashResumeExactlyOnce(t *testing.T) {
	jobs := []string{"table1_edge", "fig4_edge", "fig8_reno_core"}

	// The uninterrupted reference run.
	refDir := t.TempDir()
	computed, cachedN, err := runMiniSweep(store.OSFS(), refDir, "ref", jobs)
	if err != nil || computed != len(jobs) || cachedN != 0 {
		t.Fatalf("reference sweep: computed=%d cached=%d err=%v", computed, cachedN, err)
	}
	want := sweepFingerprint(t, refDir)

	budget := opBudget(t, func(fs store.FS) error {
		_, _, err := runMiniSweep(fs, t.TempDir(), "probe", jobs)
		return err
	})
	t.Logf("mini sweep crosses %d syscall boundaries", budget)

	for kill := uint64(1); kill <= budget; kill++ {
		plan := Plan{KillAt: kill, TornBytes: 9}
		t.Run(plan.String(), func(t *testing.T) {
			dir := t.TempDir()
			chaos := Wrap(store.OSFS(), plan)
			runMiniSweep(chaos, dir, "worker-crash", jobs) // dies mid-flight
			if !chaos.Killed() {
				t.Fatalf("kill point %d never fired", kill)
			}

			// Resume with fresh workers until the sweep completes; a
			// stalled lease needs one TTL to expire, hence the retry.
			totalComputed := 0
			deadline := time.Now().Add(5 * time.Second)
			for attempt := 0; ; attempt++ {
				c, _, err := runMiniSweep(store.OSFS(), dir, fmt.Sprintf("worker-%d", attempt), jobs)
				if err != nil {
					t.Fatalf("resume attempt %d: %v", attempt, err)
				}
				totalComputed += c
				if got := sweepFingerprint(t, dir); got == want {
					break
				}
				if time.Now().After(deadline) {
					t.Fatalf("sweep never converged; fingerprint:\n%s\nwant:\n%s",
						sweepFingerprint(t, dir), want)
				}
				time.Sleep(10 * time.Millisecond)
			}
			// Exactly-once: jobs whose Put committed before the crash are
			// served from the store, so resumed workers computed at most
			// the jobs the crashed worker did not commit.
			crashedCommits := countCommitted(t, dir, jobs)
			if totalComputed > len(jobs)-crashedCommits {
				t.Fatalf("resume recomputed committed results: resumed computed %d, crashed committed %d of %d",
					totalComputed, crashedCommits, len(jobs))
			}
		})
	}
}

// countCommitted reports how many of the jobs' keys hold valid records
// that the *crashed* worker committed — i.e. results that must never be
// recomputed. It runs after convergence, so it counts from the journal:
// a job is a crashed-worker commit if its first terminal record is an
// OpDone by "worker-crash" or an OpCached (meaning the bytes predated
// the resumed workers).
func countCommitted(t *testing.T, dir string, jobs []string) int {
	t.Helper()
	first := map[string]string{} // job -> first terminal op's owner kind
	j, _, err := store.OpenJournal(dir, func(r store.JournalRecord) error {
		if r.Op != store.OpDone && r.Op != store.OpCached {
			return nil
		}
		if _, seen := first[r.Job]; !seen {
			if r.Op == store.OpCached || r.Owner == "worker-crash" {
				first[r.Job] = "crashed"
			} else {
				first[r.Job] = "resumed"
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	j.Close()
	n := 0
	for _, job := range jobs {
		if first[job] == "crashed" {
			n++
		}
	}
	return n
}
