// Package chaostest is the crash-injection harness for internal/store.
// It wraps the store's FS seam with a fault plan that counts syscall
// boundaries (open, write, sync, rename, remove, dir-sync) and, at a
// seeded point, simulates the process dying mid-operation: the write in
// flight persists only a prefix (a torn write), and every subsequent
// operation fails with ErrKilled — the dead process can touch nothing
// further. Tests then "reboot" by opening a fresh Store/Journal over
// the same directory and assert the recovery invariants: no torn state
// visible, committed records intact, exactly-once execution.
//
// The same wrapper drives the -chaos build-tagged hook in
// cmd/reproduce, where the kill is a real os.Exit so CI can crash a
// live sweep at seeded syscall boundaries and prove a resumed sweep
// byte-identical to an uninterrupted one.
package chaostest

import (
	"errors"
	"fmt"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"ccatscale/internal/store"
)

// ErrKilled is returned by every FS operation after the kill point: the
// simulated process is dead.
var ErrKilled = errors.New("chaostest: process killed at syscall boundary")

// Plan schedules one crash. Ops are counted across the whole FS (1 is
// the first operation); KillAt = 0 disables the crash. TornBytes
// controls how much of the in-flight write persists when the kill lands
// on a write: n >= 0 keeps min(n, len(p)) bytes — the torn-write model;
// -1 keeps the whole write (the kill lands after the data but before
// any later fsync/rename).
type Plan struct {
	KillAt    uint64
	TornBytes int
	// OnKill, when non-nil, runs exactly once at the kill point —
	// cmd/reproduce's chaos hook uses it to os.Exit the real process.
	OnKill func()
}

// FS wraps an inner store.FS with the fault plan.
type FS struct {
	inner store.FS
	plan  Plan
	ops   atomic.Uint64
	dead  atomic.Bool
	once  sync.Once
}

// Wrap builds a chaos FS over inner (usually store.OSFS()).
func Wrap(inner store.FS, plan Plan) *FS {
	return &FS{inner: inner, plan: plan}
}

// Ops returns how many syscall boundaries have been crossed — run a
// scenario once with no kill to learn the budget, then schedule kills
// inside [1, Ops()].
func (c *FS) Ops() uint64 { return c.ops.Load() }

// Killed reports whether the plan's kill point has fired.
func (c *FS) Killed() bool { return c.dead.Load() }

// step counts one syscall boundary and reports whether this operation
// is the one the process dies in.
func (c *FS) step() (dieNow bool, err error) {
	if c.dead.Load() {
		return false, ErrKilled
	}
	n := c.ops.Add(1)
	if c.plan.KillAt != 0 && n >= c.plan.KillAt {
		c.dead.Store(true)
		c.once.Do(func() {
			if c.plan.OnKill != nil {
				c.plan.OnKill()
			}
		})
		return true, nil
	}
	return false, nil
}

func (c *FS) OpenFile(name string, flag int, perm os.FileMode) (store.File, error) {
	die, err := c.step()
	if err != nil {
		return nil, err
	}
	if die {
		// Whether the file was created before the crash is the kernel's
		// coin flip; modeling "created, empty" exercises the harder
		// recovery path (a zero-length tmp file lying around).
		if flag&os.O_CREATE != 0 {
			if f, oerr := c.inner.OpenFile(name, flag, perm); oerr == nil {
				f.Close()
			}
		}
		return nil, ErrKilled
	}
	f, err := c.inner.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return &chaosFile{fs: c, inner: f}, nil
}

func (c *FS) Rename(oldname, newname string) error {
	die, err := c.step()
	if err != nil {
		return err
	}
	if die {
		// A rename is atomic in the kernel: it either happened or it
		// did not. Model the worst case for durability — it did not.
		return ErrKilled
	}
	return c.inner.Rename(oldname, newname)
}

func (c *FS) Remove(name string) error {
	die, err := c.step()
	if err != nil {
		return err
	}
	if die {
		return ErrKilled
	}
	return c.inner.Remove(name)
}

func (c *FS) MkdirAll(name string, perm os.FileMode) error {
	die, err := c.step()
	if err != nil {
		return err
	}
	if die {
		return ErrKilled
	}
	return c.inner.MkdirAll(name, perm)
}

func (c *FS) Stat(name string) (os.FileInfo, error) {
	if c.dead.Load() {
		return nil, ErrKilled
	}
	return c.inner.Stat(name) // read: not a durability boundary
}

func (c *FS) ReadFile(name string) ([]byte, error) {
	if c.dead.Load() {
		return nil, ErrKilled
	}
	return c.inner.ReadFile(name)
}

func (c *FS) ReadDir(name string) ([]os.DirEntry, error) {
	if c.dead.Load() {
		return nil, ErrKilled
	}
	return c.inner.ReadDir(name)
}

func (c *FS) SyncDir(name string) error {
	die, err := c.step()
	if err != nil {
		return err
	}
	if die {
		return ErrKilled
	}
	return c.inner.SyncDir(name)
}

func (c *FS) Chtimes(name string, atime, mtime time.Time) error {
	die, err := c.step()
	if err != nil {
		return err
	}
	if die {
		return ErrKilled
	}
	return c.inner.Chtimes(name, atime, mtime)
}

// chaosFile intercepts writes and fsyncs so the kill can land inside a
// file operation and tear the write.
type chaosFile struct {
	fs    *FS
	inner store.File
}

func (f *chaosFile) Name() string { return f.inner.Name() }

func (f *chaosFile) Write(p []byte) (int, error) {
	die, err := f.fs.step()
	if err != nil {
		return 0, err
	}
	if die {
		keep := f.fs.plan.TornBytes
		if keep < 0 || keep > len(p) {
			keep = len(p)
		}
		if keep > 0 {
			f.inner.Write(p[:keep]) // the torn prefix that reached the disk
		}
		f.inner.Close()
		return 0, ErrKilled
	}
	return f.inner.Write(p)
}

func (f *chaosFile) Sync() error {
	die, err := f.fs.step()
	if err != nil {
		return err
	}
	if die {
		f.inner.Close()
		return ErrKilled
	}
	return f.inner.Sync()
}

func (f *chaosFile) Close() error {
	if f.fs.dead.Load() {
		return ErrKilled
	}
	return f.inner.Close()
}

// Fmt renders a short human label for a kill plan, for test output.
func (p Plan) String() string {
	return fmt.Sprintf("kill@%d torn=%d", p.KillAt, p.TornBytes)
}
