// Package store is the crash-consistent persistence layer under sweep
// orchestration: a content-addressed result store, a write-ahead sweep
// journal, and lease-based job claiming for multi-process workers.
//
// The durability contract, in one paragraph: every result record is
// committed tmp-file → fsync(file) → rename → fsync(dir), so a record
// is either fully present or absent — never torn. Each record carries a
// CRC-32C trailer plus the internal/schema version, so bit rot or a
// half-written file is detected on read and quarantined to
// <name>.corrupt instead of aborting the sweep. The journal
// (journal.jsonl) is an append-only intent/outcome log fsync'd per
// record; recovery replays it to the exact pre-crash frontier, and the
// reproduce manifest becomes a derived view of it rather than the
// source of truth. Leases (owner id + heartbeat mtime, stale takeover
// after a TTL) let N worker processes shard one sweep; a duplicate
// attempt's commit is a no-op because records are addressed by content
// key, which is what makes execution exactly-once.
//
// The whole protocol runs on the FS seam so internal/store/chaostest
// can kill the process at any syscall boundary, tear writes, and race
// duplicate workers, proving the recovery path against the failures a
// real kernel delivers.
package store

import (
	"bytes"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"ccatscale/internal/schema"
)

// castagnoli is the CRC-32C polynomial table (the iSCSI/ext4 checksum,
// chosen over IEEE for its error-detection properties and hardware
// support).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// trailerMagic opens the trailer line appended to every record. The
// leading newline separates it from payloads that do not end in one;
// ParseRecord searches from the end, so payload bytes containing the
// magic are harmless.
const trailerMagic = "\n#ccstore "

// ErrCorrupt tags records whose trailer or checksum does not verify.
// Readers quarantine such files and treat the key as absent.
var ErrCorrupt = errors.New("store: record corrupt")

// ErrNotFound reports an absent key.
var ErrNotFound = errors.New("store: record not found")

// Store is a content-addressed result store rooted at one directory.
// Records are arbitrary payload bytes addressed by a caller-chosen key
// (for sweeps: the governance-invariant config hash + seed), committed
// atomically and verified by CRC-32C on every read. Put is idempotent:
// committing a key that already holds a valid record is a no-op, which
// is the property that makes duplicate worker attempts harmless.
type Store struct {
	dir string
	fs  FS
}

// Open creates or opens a store rooted at dir on the real filesystem.
func Open(dir string) (*Store, error) { return OpenFS(dir, OSFS()) }

// OpenFS is Open on an explicit FS — the seam the chaos harness uses.
func OpenFS(dir string, fs FS) (*Store, error) {
	if err := fs.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	return &Store{dir: dir, fs: fs}, nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// path maps a key to its record file. Keys are hex hashes (plus an
// optional "-seed" suffix); anything path-hostile is rejected by Put.
func (s *Store) path(key string) string { return filepath.Join(s.dir, key+".rec") }

// validKey rejects keys that could escape the store directory or
// collide with the quarantine/tmp suffixes.
func validKey(key string) error {
	if key == "" {
		return errors.New("store: empty key")
	}
	for _, r := range key {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '-', r == '_', r == '.':
		default:
			return fmt.Errorf("store: key %q contains %q; keys are hash-and-seed identifiers", key, r)
		}
	}
	if strings.HasPrefix(key, ".") {
		return fmt.Errorf("store: key %q may not start with a dot", key)
	}
	return nil
}

// Seal frames payload as a durable record: the payload bytes followed
// by a trailer line carrying the schema version, payload length, and
// CRC-32C of the payload. ParseRecord is its inverse.
func Seal(payload []byte) []byte {
	crc := crc32.Checksum(payload, castagnoli)
	trailer := fmt.Sprintf("%sv=%s len=%d crc32c=%08x\n", trailerMagic, schema.Version, len(payload), crc)
	out := make([]byte, 0, len(payload)+len(trailer))
	out = append(out, payload...)
	return append(out, trailer...)
}

// ParseRecord verifies a sealed record and returns its payload. Any
// framing failure — missing trailer, short payload, checksum mismatch,
// unreadable schema major — is reported as ErrCorrupt with detail.
func ParseRecord(rec []byte) ([]byte, error) {
	i := bytes.LastIndex(rec, []byte(trailerMagic))
	if i < 0 {
		return nil, fmt.Errorf("%w: no trailer", ErrCorrupt)
	}
	trailer := strings.TrimSuffix(string(rec[i+1:]), "\n")
	payload := rec[:i]
	var version string
	var length int64 = -1
	var crcWant uint64
	crcSeen := false
	for _, field := range strings.Fields(trailer)[1:] {
		k, v, ok := strings.Cut(field, "=")
		if !ok {
			continue
		}
		switch k {
		case "v":
			version = v
		case "len":
			n, err := strconv.ParseInt(v, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("%w: bad trailer length %q", ErrCorrupt, v)
			}
			length = n
		case "crc32c":
			n, err := strconv.ParseUint(v, 16, 32)
			if err != nil {
				return nil, fmt.Errorf("%w: bad trailer checksum %q", ErrCorrupt, v)
			}
			crcWant, crcSeen = n, true
		}
	}
	if length < 0 || !crcSeen {
		return nil, fmt.Errorf("%w: trailer missing len/crc32c", ErrCorrupt)
	}
	if err := schema.Check(version); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	if int64(len(payload)) != length {
		return nil, fmt.Errorf("%w: payload is %d bytes, trailer says %d (torn write)", ErrCorrupt, len(payload), length)
	}
	if got := crc32.Checksum(payload, castagnoli); uint64(got) != crcWant {
		return nil, fmt.Errorf("%w: crc32c %08x != recorded %08x", ErrCorrupt, got, crcWant)
	}
	return payload, nil
}

// Put commits payload under key. The record is sealed (CRC-32C trailer
// + schema version) and written tmp → fsync(file) → rename →
// fsync(dir), so a crash at any boundary leaves either the old state or
// the complete new record. If key already holds a valid record the call
// is a no-op and the existing bytes win — first committed result is
// canonical, duplicate attempts (retries, racing workers) cannot change
// it. A corrupt existing record is quarantined and overwritten.
func (s *Store) Put(key string, payload []byte) error {
	if err := validKey(key); err != nil {
		return err
	}
	if _, err := s.Get(key); err == nil {
		return nil // exactly-once: the committed record is canonical
	}
	return WriteFileAtomicFS(s.fs, s.path(key), Seal(payload))
}

// Get returns the payload committed under key. A record that fails
// verification is renamed to <name>.corrupt (preserving the evidence)
// and reported as an error wrapping both ErrCorrupt and ErrNotFound, so
// callers that only care about presence can treat it as a miss and
// recompute.
func (s *Store) Get(key string) ([]byte, error) {
	if err := validKey(key); err != nil {
		return nil, err
	}
	path := s.path(key)
	rec, err := s.fs.ReadFile(path)
	if os.IsNotExist(err) {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, key)
	}
	if err != nil {
		return nil, err
	}
	payload, perr := ParseRecord(rec)
	if perr != nil {
		if qerr := s.quarantine(path); qerr != nil {
			return nil, fmt.Errorf("store: %s: %v (and quarantine failed: %v)", key, perr, qerr)
		}
		return nil, fmt.Errorf("store: %s quarantined to %s.corrupt: %w",
			key, filepath.Base(path), errors.Join(perr, ErrNotFound))
	}
	return payload, nil
}

// Has reports whether key holds a valid record. Corrupt records read as
// absent (and are quarantined as a side effect, same as Get).
func (s *Store) Has(key string) bool {
	_, err := s.Get(key)
	return err == nil
}

// Keys lists every committed key, unverified (corruption surfaces on
// Get). Quarantined and temporary files are excluded.
func (s *Store) Keys() ([]string, error) {
	ents, err := s.fs.ReadDir(s.dir)
	if err != nil {
		return nil, err
	}
	var keys []string
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".rec") {
			continue
		}
		keys = append(keys, strings.TrimSuffix(name, ".rec"))
	}
	return keys, nil
}

// quarantine moves a failed record aside as <name>.corrupt, keeping the
// bytes for post-mortem instead of deleting evidence, and fsyncs the
// directory so the quarantine itself survives a crash.
func (s *Store) quarantine(path string) error {
	if err := s.fs.Rename(path, path+".corrupt"); err != nil {
		return err
	}
	return s.fs.SyncDir(filepath.Dir(path))
}

// WriteFileAtomic writes data to path with full crash consistency on
// the real filesystem: unique temp file in the same directory, write,
// fsync(file), rename over path, fsync(dir). After it returns, the file
// is durable; if the process dies at any earlier point, path holds its
// previous content (or remains absent) — never a prefix.
func WriteFileAtomic(path string, data []byte) error {
	return WriteFileAtomicFS(OSFS(), path, data)
}

// WriteFileAtomicFS is WriteFileAtomic on an explicit FS.
func WriteFileAtomicFS(fs FS, path string, data []byte) error {
	dir := filepath.Dir(path)
	// Unique-per-process temp name: O_EXCL retries are not needed
	// because concurrent writers embed their pid, and a leftover tmp
	// from a crashed writer is simply overwritten next attempt.
	tmp := fmt.Sprintf("%s.tmp.%d", path, os.Getpid())
	f, err := fs.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	_, werr := f.Write(data)
	if werr == nil {
		werr = f.Sync()
	}
	cerr := f.Close()
	if werr != nil || cerr != nil {
		fs.Remove(tmp)
		if werr != nil {
			return werr
		}
		return cerr
	}
	if err := fs.Rename(tmp, path); err != nil {
		fs.Remove(tmp)
		return err
	}
	return fs.SyncDir(dir)
}
