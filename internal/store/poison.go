package store

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"ccatscale/internal/schema"
)

// poisonDir is the subdirectory of an output directory holding one
// record per poisoned config.
const poisonDir = "poison"

// PoisonRecord marks a config whose worker process died repeatedly —
// OOM kill, runtime crash, anything that ends the process without an
// outcome. It is distinct from a quarantine (the *simulation* failed,
// retryable by resubmission): a poisoned config is refused until an
// operator deletes its record, because every retry costs a whole
// process. The record is a standalone file, not only a journal entry,
// so it survives journal compaction and is trivially auditable and
// removable with ordinary file tools.
type PoisonRecord struct {
	SchemaVersion string `json:"schema_version"`
	// Key is the poisoned config's content address.
	Key string `json:"key"`
	// Job is the client-facing name the config was last submitted under.
	Job string `json:"job"`
	// Reason describes the final strike (exit status, signal).
	Reason string `json:"reason"`
	// Strikes counts the worker deaths that earned the record.
	Strikes int `json:"strikes"`
}

// Poisons manages the poison directory for one output directory.
type Poisons struct {
	fs  FS
	dir string
}

// OpenPoisonsFS opens (creating if needed) the poison space under
// outDir.
func OpenPoisonsFS(fs FS, outDir string) (*Poisons, error) {
	dir := filepath.Join(outDir, poisonDir)
	if err := fs.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	return &Poisons{fs: fs, dir: dir}, nil
}

func (p *Poisons) path(key string) string {
	return filepath.Join(p.dir, key+".json")
}

// Mark persists a poison record. Marking an already-poisoned key
// overwrites the record — the latest strike count and reason win.
func (p *Poisons) Mark(rec PoisonRecord) error {
	if err := validKey(rec.Key); err != nil {
		return err
	}
	if rec.SchemaVersion == "" {
		rec.SchemaVersion = schema.Version
	}
	data, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		return err
	}
	return WriteFileAtomicFS(p.fs, p.path(rec.Key), append(data, '\n'))
}

// Get returns the poison record for key, or ok=false when the key is
// not poisoned. A corrupt record still reports poisoned — refusing a
// config whose record rotted is the safe direction.
func (p *Poisons) Get(key string) (PoisonRecord, bool) {
	if validKey(key) != nil {
		return PoisonRecord{}, false
	}
	data, err := p.fs.ReadFile(p.path(key))
	if err != nil {
		return PoisonRecord{}, false
	}
	var rec PoisonRecord
	if json.Unmarshal(data, &rec) != nil || rec.Key != key {
		return PoisonRecord{Key: key, Reason: "unreadable poison record"}, true
	}
	return rec, true
}

// List returns every poison record, for boot-time state rebuilding.
func (p *Poisons) List() ([]PoisonRecord, error) {
	ents, err := p.fs.ReadDir(p.dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, err
	}
	var recs []PoisonRecord
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".json") {
			continue
		}
		key := strings.TrimSuffix(name, ".json")
		if rec, ok := p.Get(key); ok {
			recs = append(recs, rec)
		}
	}
	return recs, nil
}

// Clear removes a key's poison record — the operator's un-poison tool.
func (p *Poisons) Clear(key string) error {
	if err := validKey(key); err != nil {
		return err
	}
	err := p.fs.Remove(p.path(key))
	if os.IsNotExist(err) {
		return nil
	}
	return err
}

// String names the directory for error messages.
func (p *Poisons) String() string { return fmt.Sprintf("poisons(%s)", p.dir) }
