package store

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"
)

// leaseDir is the subdirectory of a sweep's output directory holding
// one lease file per claimed job.
const leaseDir = "leases"

// ErrLeaseHeld reports a job currently claimed by a live worker.
var ErrLeaseHeld = errors.New("store: lease held")

// leaseBody is what a lease file contains: enough to name the holder in
// error messages and takeover logs. Liveness is the file's mtime — the
// holder touches it on every heartbeat — not the body, so heartbeating
// is one utimes call, not a rewrite.
type leaseBody struct {
	Owner string `json:"owner"`
	PID   int    `json:"pid"`
	Since string `json:"since"`
}

// Lease is a claim on one job, held by one worker. The holder must
// Heartbeat more often than the TTL other workers acquire with, and
// Release when done.
type Lease struct {
	fs    FS
	path  string
	owner string
}

// Leases manages the lease directory for one sweep.
type Leases struct {
	fs    FS
	dir   string
	owner string
	ttl   time.Duration
	// now is a clock seam for tests; time.Now outside them.
	now func() time.Time
}

// NewLeases opens the lease space under outDir for a worker identified
// by owner (unique per process — e.g. host:pid plus a random suffix).
// ttl is the staleness deadline: a lease whose heartbeat mtime is older
// than ttl may be taken over by another worker.
func NewLeases(outDir, owner string, ttl time.Duration) (*Leases, error) {
	return NewLeasesFS(OSFS(), outDir, owner, ttl)
}

// NewLeasesFS is NewLeases on an explicit FS.
func NewLeasesFS(fs FS, outDir, owner string, ttl time.Duration) (*Leases, error) {
	if owner == "" {
		return nil, errors.New("store: empty lease owner")
	}
	if ttl <= 0 {
		return nil, fmt.Errorf("store: lease ttl %v must be positive", ttl)
	}
	dir := filepath.Join(outDir, leaseDir)
	if err := fs.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	return &Leases{fs: fs, dir: dir, owner: owner, ttl: ttl, now: time.Now}, nil
}

// leasePath maps a job name to its lease file. Job names are flat
// identifiers; path separators are rejected at Acquire.
func (ls *Leases) leasePath(job string) string {
	return filepath.Join(ls.dir, job+".lease")
}

// Acquire claims job for this worker. It succeeds by creating the lease
// file exclusively, or by taking over a lease whose heartbeat is older
// than the TTL (the previous holder is presumed dead). A live lease
// returns ErrLeaseHeld wrapped with the holder's identity.
//
// Takeover admits exactly one winner among racing claimants: the
// takeover is arbitrated by an O_EXCL guard file, so of N workers that
// all see the same stale lease, the one that creates the guard renames
// it into place and every other gets a clean ErrLeaseHeld. The
// exactly-once property matters for supervision — a fleet restarting
// after a crash must not have two workers believing they own the same
// job's lease slot even transiently. The read-back Confirm() after the
// rename stays as a second line of defense (and remains the holder's
// mid-job staleness check). A guard whose creator crashed mid-takeover
// ages out on the same TTL as the lease itself.
func (ls *Leases) Acquire(job string) (*Lease, error) {
	return ls.acquire(job, 0)
}

// acquire is Acquire with a bounded retry depth for the windows where a
// concurrent release or an aged-out guard invites one more attempt.
func (ls *Leases) acquire(job string, depth int) (*Lease, error) {
	if strings.ContainsAny(job, "/\\") {
		return nil, fmt.Errorf("store: job name %q contains a path separator", job)
	}
	const maxDepth = 4
	if depth > maxDepth {
		return nil, fmt.Errorf("%w: job %q contended beyond %d attempts", ErrLeaseHeld, job, maxDepth)
	}
	path := ls.leasePath(job)
	body, err := json.Marshal(leaseBody{
		Owner: ls.owner,
		PID:   os.Getpid(),
		Since: ls.now().UTC().Format(time.RFC3339),
	})
	if err != nil {
		return nil, err
	}
	body = append(body, '\n')
	// Fast path: exclusive create wins the job outright.
	f, err := ls.fs.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
	if err == nil {
		_, werr := f.Write(body)
		cerr := f.Close()
		if werr != nil || cerr != nil {
			ls.fs.Remove(path)
			if werr != nil {
				return nil, werr
			}
			return nil, cerr
		}
		return &Lease{fs: ls.fs, path: path, owner: ls.owner}, nil
	}
	if !os.IsExist(err) {
		return nil, err
	}
	// Slow path: a lease exists. Stale (heartbeat older than TTL) means
	// the holder died without releasing; take it over through the guard.
	fi, err := ls.fs.Stat(path)
	if os.IsNotExist(err) {
		return ls.acquire(job, depth+1) // released between create and stat; retry
	}
	if err != nil {
		return nil, err
	}
	if age := ls.now().Sub(fi.ModTime()); age < ls.ttl {
		holder := "unknown"
		if data, rerr := ls.fs.ReadFile(path); rerr == nil {
			var b leaseBody
			if json.Unmarshal(data, &b) == nil && b.Owner != "" {
				holder = b.Owner
			}
		}
		return nil, fmt.Errorf("%w: job %q by %s (heartbeat %v ago, ttl %v)",
			ErrLeaseHeld, job, holder, age.Round(time.Millisecond), ls.ttl)
	}
	// Takeover arbitration: exactly one racer creates the guard. Losers
	// see EEXIST and stand down cleanly; the winner renames the guard
	// over the stale lease. A guard left by a claimant that crashed
	// between create and rename ages out on the TTL like any lease.
	guard := path + ".takeover"
	gf, err := ls.fs.OpenFile(guard, os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
	if os.IsExist(err) {
		if gfi, serr := ls.fs.Stat(guard); serr == nil && ls.now().Sub(gfi.ModTime()) >= ls.ttl {
			ls.fs.Remove(guard)
			return ls.acquire(job, depth+1)
		}
		return nil, fmt.Errorf("%w: job %q takeover already in progress", ErrLeaseHeld, job)
	}
	if err != nil {
		return nil, err
	}
	_, werr := gf.Write(body)
	cerr := gf.Close()
	if werr != nil || cerr != nil {
		ls.fs.Remove(guard)
		if werr != nil {
			return nil, werr
		}
		return nil, cerr
	}
	// Re-check staleness under the guard: the holder may have heartbeat
	// between our first stat and the guard creation. Giving the claim up
	// here keeps a merely-stalled holder alive instead of usurping it.
	if fi2, serr := ls.fs.Stat(path); serr == nil && ls.now().Sub(fi2.ModTime()) < ls.ttl {
		ls.fs.Remove(guard)
		return nil, fmt.Errorf("%w: job %q holder revived during takeover", ErrLeaseHeld, job)
	}
	if err := ls.fs.Rename(guard, path); err != nil {
		ls.fs.Remove(guard)
		return nil, err
	}
	l := &Lease{fs: ls.fs, path: path, owner: ls.owner}
	// Read back: the guard makes a second winner impossible, but a
	// confirm here is cheap and catches filesystems with weaker rename
	// semantics than POSIX promises.
	if !l.confirm() {
		return nil, fmt.Errorf("%w: job %q lost takeover race", ErrLeaseHeld, job)
	}
	return l, nil
}

// SlotName maps a job name and a hedge slot to the lease name the
// attempt claims: slot 0 (the primary) uses the job name itself —
// compatible with every non-hedged claimant — and hedge slots suffix
// it, so a straggler's duplicate run never contends with the primary's
// lease while both race toward the store's idempotent commit.
func SlotName(job string, slot int) string {
	if slot <= 0 {
		return job
	}
	return fmt.Sprintf("%s~h%d", job, slot)
}

// ReleaseOwned removes job's lease if (and only if) it is held by
// owner. It is the supervisor's cleanup path for a worker it has
// already reaped: the holder is known dead — waitpid said so — so
// deleting its lease immediately instead of waiting out the TTL lets
// the respawned attempt start at once. Removing a lease the dead
// worker did not hold would sabotage a live claimant, hence the owner
// check. A lease that does not exist, or changed hands already, is
// success: the goal is only that the dead owner's claim is gone.
func (ls *Leases) ReleaseOwned(job, owner string) error {
	if strings.ContainsAny(job, "/\\") {
		return fmt.Errorf("store: job name %q contains a path separator", job)
	}
	path := ls.leasePath(job)
	data, err := ls.fs.ReadFile(path)
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return err
	}
	var b leaseBody
	if json.Unmarshal(data, &b) != nil || b.Owner != owner {
		return nil
	}
	if err := ls.fs.Remove(path); err != nil && !os.IsNotExist(err) {
		return err
	}
	return nil
}

// DefaultHeartbeat returns the heartbeat interval used when the caller
// does not configure one: ttl/6, which keeps three missed beats inside
// the safety margin ValidateHeartbeat enforces.
func DefaultHeartbeat(ttl time.Duration) time.Duration {
	return ttl / 6
}

// ValidateHeartbeat rejects heartbeat/TTL pairs that make takeover
// races likely. The interval must be positive and strictly under a
// third of the TTL, so a holder can miss two consecutive beats (GC
// pause, CPU starvation, fsync stall) and still refresh before another
// worker declares it dead.
func ValidateHeartbeat(heartbeat, ttl time.Duration) error {
	if ttl <= 0 {
		return fmt.Errorf("store: lease ttl %v must be positive", ttl)
	}
	if heartbeat <= 0 {
		return fmt.Errorf("store: lease heartbeat %v must be positive", heartbeat)
	}
	if 3*heartbeat >= ttl {
		return fmt.Errorf("store: lease heartbeat %v must be under a third of ttl %v (got ratio %.2f); a single stalled beat would invite takeover",
			heartbeat, ttl, float64(heartbeat)/float64(ttl))
	}
	return nil
}

// Heartbeat advances the lease's liveness clock (its mtime). Holders
// must call it at least every ttl/2 during long jobs or risk takeover.
func (l *Lease) Heartbeat() error {
	now := time.Now()
	return l.fs.Chtimes(l.path, now, now)
}

// Confirm re-reads the lease and reports whether this worker still
// holds it — false means another worker took it over (this process
// stalled past the TTL) and any result must be committed through the
// idempotent store only, never trusted as exclusive.
func (l *Lease) Confirm() bool { return l.confirm() }

func (l *Lease) confirm() bool {
	data, err := l.fs.ReadFile(l.path)
	if err != nil {
		return false
	}
	var b leaseBody
	if err := json.Unmarshal(data, &b); err != nil {
		return false
	}
	return b.Owner == l.owner
}

// Release drops the claim. Releasing a lease lost to takeover is a
// no-op — the file now belongs to the new holder and must survive.
func (l *Lease) Release() error {
	if !l.confirm() {
		return nil
	}
	err := l.fs.Remove(l.path)
	if os.IsNotExist(err) {
		return nil
	}
	return err
}
