package store

import (
	"os"
	"path/filepath"
	"testing"
)

func TestPoisonsMarkGetClear(t *testing.T) {
	dir := t.TempDir()
	p, err := OpenPoisonsFS(OSFS(), dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := p.Get("oom-1-deadbeef"); ok {
		t.Fatal("fresh poison set reports a key poisoned")
	}
	rec := PoisonRecord{Key: "oom-1-deadbeef", Job: "oom", Reason: "exit status 2", Strikes: 3}
	if err := p.Mark(rec); err != nil {
		t.Fatal(err)
	}
	got, ok := p.Get("oom-1-deadbeef")
	if !ok || got.Strikes != 3 || got.Reason != "exit status 2" || got.SchemaVersion == "" {
		t.Fatalf("Get = %+v ok=%v", got, ok)
	}
	// Reopen: the record is durable, and List finds it.
	p2, err := OpenPoisonsFS(OSFS(), dir)
	if err != nil {
		t.Fatal(err)
	}
	recs, err := p2.List()
	if err != nil || len(recs) != 1 || recs[0].Key != rec.Key {
		t.Fatalf("List = %+v, %v", recs, err)
	}
	if err := p2.Clear(rec.Key); err != nil {
		t.Fatal(err)
	}
	if _, ok := p2.Get(rec.Key); ok {
		t.Fatal("key still poisoned after Clear")
	}
	if err := p2.Clear(rec.Key); err != nil {
		t.Fatal("Clear of a clear key must be a no-op, got", err)
	}
}

func TestPoisonsRejectHostileKeys(t *testing.T) {
	p, err := OpenPoisonsFS(OSFS(), t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"", "../escape", "a/b", ".hidden"} {
		if err := p.Mark(PoisonRecord{Key: key}); err == nil {
			t.Errorf("Mark accepted hostile key %q", key)
		}
		if _, ok := p.Get(key); ok {
			t.Errorf("Get reports hostile key %q poisoned", key)
		}
	}
}

func TestPoisonsCorruptRecordStaysPoisoned(t *testing.T) {
	dir := t.TempDir()
	p, err := OpenPoisonsFS(OSFS(), dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, poisonDir, "bad-1-cafe.json"), []byte("{torn"), 0o644); err != nil {
		t.Fatal(err)
	}
	got, ok := p.Get("bad-1-cafe")
	if !ok {
		t.Fatal("corrupt poison record read as not-poisoned; refusing is the safe direction")
	}
	if got.Key != "bad-1-cafe" {
		t.Fatalf("corrupt record key = %q", got.Key)
	}
}
