package store

import (
	"os"
	"path/filepath"
	"testing"
)

// appendSegment writes records into the named owner's segment.
func appendSegment(t *testing.T, dir, owner string, recs ...JournalRecord) {
	t.Helper()
	j, _, err := OpenJournalSet(OSFS(), dir, owner, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range recs {
		if err := j.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
}

func readSegment(t *testing.T, dir, file string) []JournalRecord {
	t.Helper()
	data, err := os.ReadFile(filepath.Join(dir, file))
	if err != nil {
		t.Fatal(err)
	}
	valid, recs, perr := scanJournal(data)
	if perr != nil {
		t.Fatalf("segment %s corrupt after compaction: %v", file, perr)
	}
	if len(valid) != len(data) {
		t.Fatalf("segment %s has a torn tail after compaction", file)
	}
	return recs
}

func TestCompactFullyTerminalSegment(t *testing.T) {
	dir := t.TempDir()
	appendRecords(t, dir,
		JournalRecord{Op: OpBegin, Detail: []byte(`{"seed":7}`)},
		JournalRecord{Op: OpIntent, Job: "a", Key: "ka"},
		JournalRecord{Op: OpFailed, Job: "a", Key: "ka"},
		JournalRecord{Op: OpIntent, Job: "a", Key: "ka"},
		JournalRecord{Op: OpDone, Job: "a", Key: "ka"},
		JournalRecord{Op: OpQueued, Job: "b", Key: "kb"},
		JournalRecord{Op: OpClaimed, Job: "b", Key: "kb"},
		JournalRecord{Op: OpQuarantined, Job: "b", Key: "kb"},
	)
	dropped, err := CompactJournalSet(OSFS(), dir)
	if err != nil {
		t.Fatal(err)
	}
	// Dropped: 2 intents, 1 queued, 1 claimed, and the superseded failed.
	if dropped != 5 {
		t.Fatalf("dropped = %d, want 5", dropped)
	}
	recs := readSegment(t, dir, JournalFile)
	want := []struct{ op, job string }{
		{OpBegin, ""}, {OpDone, "a"}, {OpQuarantined, "b"},
	}
	if len(recs) != len(want) {
		t.Fatalf("kept %d records, want %d: %+v", len(recs), len(want), recs)
	}
	for i, w := range want {
		if recs[i].Op != w.op || recs[i].Job != w.job {
			t.Fatalf("record %d = %s/%s, want %s/%s", i, recs[i].Op, recs[i].Job, w.op, w.job)
		}
		if recs[i].Seq != uint64(i+1) {
			t.Fatalf("record %d seq = %d, want %d (renumbered from 1)", i, recs[i].Seq, i+1)
		}
	}
	// A compacted segment must reopen and replay cleanly, and keep its
	// derived outcome: job a done, job b quarantined.
	outcome := map[string]string{}
	j, n, err := OpenJournal(dir, func(r JournalRecord) error {
		if TerminalOp(r.Op) {
			outcome[r.Job] = r.Op
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	if n != 3 {
		t.Fatalf("replayed %d records, want 3", n)
	}
	if outcome["a"] != OpDone || outcome["b"] != OpQuarantined {
		t.Fatalf("derived outcomes = %v", outcome)
	}
	// And appending after compaction continues the renumbered sequence.
	if err := j.Append(JournalRecord{Op: OpIntent, Job: "c", Key: "kc"}); err != nil {
		t.Fatal(err)
	}
	if j.Seq() != 4 {
		t.Fatalf("seq after post-compaction append = %d, want 4", j.Seq())
	}
}

func TestCompactLeavesUnresolvedPendingUntouched(t *testing.T) {
	dir := t.TempDir()
	appendRecords(t, dir,
		JournalRecord{Op: OpIntent, Job: "a", Key: "ka"},
		JournalRecord{Op: OpDone, Job: "a", Key: "ka"},
		JournalRecord{Op: OpQueued, Job: "b", Key: "kb"}, // still in flight
	)
	before, err := os.ReadFile(filepath.Join(dir, JournalFile))
	if err != nil {
		t.Fatal(err)
	}
	dropped, err := CompactJournalSet(OSFS(), dir)
	if err != nil {
		t.Fatal(err)
	}
	if dropped != 0 {
		t.Fatalf("dropped = %d, want 0 (segment has in-flight work)", dropped)
	}
	after, err := os.ReadFile(filepath.Join(dir, JournalFile))
	if err != nil {
		t.Fatal(err)
	}
	if string(before) != string(after) {
		t.Fatal("segment with unresolved pending op was rewritten")
	}
}

func TestCompactKeepsResubmittedPendingGeneration(t *testing.T) {
	dir := t.TempDir()
	// Boot one ran the job and failed it (generation 0); boot two
	// accepted a resubmission (generation 1) and died before running it.
	// The gen-0 terminal must not resolve the gen-1 pending record: that
	// OpQueued is admitted (201-acknowledged) work recovery must resume.
	appendSegment(t, dir, "boot1",
		JournalRecord{Op: OpQueued, Job: "a", Key: "ka", Gen: 0},
		JournalRecord{Op: OpFailed, Job: "a", Key: "ka", Gen: 0},
	)
	appendSegment(t, dir, "boot2",
		JournalRecord{Op: OpQueued, Job: "a", Key: "ka", Gen: 1},
	)
	dropped, err := CompactJournalSet(OSFS(), dir)
	if err != nil {
		t.Fatal(err)
	}
	// Boot one's pending op is resolved by its own terminal; boot two's
	// segment holds an unresolved generation and stays whole.
	if dropped != 1 {
		t.Fatalf("dropped = %d, want 1 (just boot1's resolved queued op)", dropped)
	}
	recs := readSegment(t, dir, journalSegment("boot2"))
	if len(recs) != 1 || recs[0].Op != OpQueued || recs[0].Gen != 1 {
		t.Fatalf("boot2 segment = %+v, want the gen-1 queued record intact", recs)
	}
	recs = readSegment(t, dir, journalSegment("boot1"))
	if len(recs) != 1 || recs[0].Op != OpFailed {
		t.Fatalf("boot1 segment = %+v, want just the failed terminal", recs)
	}

	// Once a terminal of the pending generation (or later) lands, the
	// whole identity is resolved and every superseded record can go.
	appendSegment(t, dir, "boot3",
		JournalRecord{Op: OpDone, Job: "a", Key: "ka", Gen: 1},
	)
	if _, err := CompactJournalSet(OSFS(), dir); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, journalSegment("boot2"))); !os.IsNotExist(err) {
		t.Fatalf("resolved gen-1 pending segment not removed: stat err = %v", err)
	}
}

func TestCompactSameSegmentResubmission(t *testing.T) {
	dir := t.TempDir()
	// A failure and its resubmission inside one server life: the gen-1
	// queued op is still in flight, so the segment must stay untouched.
	appendRecords(t, dir,
		JournalRecord{Op: OpQueued, Job: "a", Key: "ka", Gen: 0},
		JournalRecord{Op: OpFailed, Job: "a", Key: "ka", Gen: 0},
		JournalRecord{Op: OpQueued, Job: "a", Key: "ka", Gen: 1},
	)
	dropped, err := CompactJournalSet(OSFS(), dir)
	if err != nil {
		t.Fatal(err)
	}
	if dropped != 0 {
		t.Fatalf("dropped = %d, want 0 (gen-1 resubmission is unresolved)", dropped)
	}
}

func TestCompactCrossSegmentResolution(t *testing.T) {
	dir := t.TempDir()
	// Worker one queued and claimed the job, then died; worker two took
	// it over and finished. Worker one's segment is pure pending — the
	// terminal op that resolves it lives in worker two's segment.
	appendSegment(t, dir, "w1",
		JournalRecord{Op: OpQueued, Job: "a", Key: "ka", Owner: "w1"},
		JournalRecord{Op: OpClaimed, Job: "a", Key: "ka", Owner: "w1"},
	)
	appendSegment(t, dir, "w2",
		JournalRecord{Op: OpDone, Job: "a", Key: "ka", Owner: "w2"},
	)
	dropped, err := CompactJournalSet(OSFS(), dir)
	if err != nil {
		t.Fatal(err)
	}
	if dropped != 2 {
		t.Fatalf("dropped = %d, want 2", dropped)
	}
	// Worker one's segment emptied out and was removed entirely.
	if _, err := os.Stat(filepath.Join(dir, journalSegment("w1"))); !os.IsNotExist(err) {
		t.Fatalf("empty segment not removed: stat err = %v", err)
	}
	recs := readSegment(t, dir, journalSegment("w2"))
	if len(recs) != 1 || recs[0].Op != OpDone {
		t.Fatalf("w2 segment = %+v, want the single done record", recs)
	}
	// The whole set still replays for a fresh owner.
	seen := 0
	j, n, err := OpenJournalSet(OSFS(), dir, "w3", func(r JournalRecord) error {
		seen++
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	j.Close()
	if n != 1 || seen != 1 {
		t.Fatalf("replayed %d/%d records after compaction, want 1", n, seen)
	}
}

func TestCompactSkipsCorruptAndForeignFiles(t *testing.T) {
	dir := t.TempDir()
	appendRecords(t, dir,
		JournalRecord{Op: OpIntent, Job: "a", Key: "ka"},
		JournalRecord{Op: OpDone, Job: "a", Key: "ka"},
	)
	// A mid-file-damaged segment: compaction must not touch it (that is
	// OpenJournalSet's quarantine job), and must not fail because of it.
	bad := filepath.Join(dir, "journal-dead.jsonl")
	if err := os.WriteFile(bad, []byte("garbage\nmore garbage\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	// Unrelated files are ignored outright.
	if err := os.WriteFile(filepath.Join(dir, "manifest.json"), []byte("{}"), 0o644); err != nil {
		t.Fatal(err)
	}
	dropped, err := CompactJournalSet(OSFS(), dir)
	if err != nil {
		t.Fatal(err)
	}
	if dropped != 1 {
		t.Fatalf("dropped = %d, want 1 (just the resolved intent)", dropped)
	}
	got, err := os.ReadFile(bad)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "garbage\nmore garbage\n" {
		t.Fatal("compaction modified a corrupt segment")
	}
}

func TestCompactMissingDir(t *testing.T) {
	dropped, err := CompactJournalSet(OSFS(), filepath.Join(t.TempDir(), "nope"))
	if err != nil || dropped != 0 {
		t.Fatalf("CompactJournalSet on missing dir = (%d, %v), want (0, nil)", dropped, err)
	}
}
