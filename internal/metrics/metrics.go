// Package metrics implements the measurement vocabulary of the paper's
// evaluation: Jain's Fairness Index for intra-CCA fairness (Findings
// 4–5), aggregate throughput shares for inter-CCA fairness (Findings
// 6–8), the Goh–Barabási burstiness score applied to bottleneck drop
// times (§4, Finding 3's corroboration), and the summary statistics
// (medians, quantiles) the figures report.
package metrics

import (
	"math"
	"sort"
)

// JFI computes Jain's Fairness Index over per-flow allocations:
// (Σx)² / (n·Σx²), ranging from 1/n (one flow gets everything) to 1
// (perfectly equal shares). An empty input returns 0; all-zero
// allocations return 1 (degenerate equality, matching the convention in
// fairness tooling).
func JFI(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum, sumSq float64
	for _, x := range xs {
		sum += x
		sumSq += x * x
	}
	if sumSq == 0 {
		return 1
	}
	return sum * sum / (float64(len(xs)) * sumSq)
}

// Burstiness computes the Goh–Barabási burstiness score
// B = (σ − μ)/(σ + μ) over the inter-event times of the given event
// timestamps (which need not be sorted; they are sorted internally).
// B ranges from −1 (perfectly periodic) through 0 (Poisson) to 1
// (maximally bursty). The paper measures B ≈ 0.2 for bottleneck drops
// at EdgeScale and ≈ 0.35 at CoreScale. Fewer than three events return
// 0 (no inter-arrival distribution to speak of).
func Burstiness(times []float64) float64 {
	if len(times) < 3 {
		return 0
	}
	ts := append([]float64(nil), times...)
	sort.Float64s(ts)
	gaps := make([]float64, 0, len(ts)-1)
	for i := 1; i < len(ts); i++ {
		gaps = append(gaps, ts[i]-ts[i-1])
	}
	mu := Mean(gaps)
	sigma := StdDev(gaps)
	if sigma+mu == 0 {
		return 0
	}
	return (sigma - mu) / (sigma + mu)
}

// Mean returns the arithmetic mean (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// StdDev returns the population standard deviation (0 for fewer than
// two values).
func StdDev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	mu := Mean(xs)
	var ss float64
	for _, x := range xs {
		d := x - mu
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(xs)))
}

// Median returns the middle value (mean of the two middle values for
// even lengths; 0 for empty input).
func Median(xs []float64) float64 {
	return Quantile(xs, 0.5)
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) using linear
// interpolation between closest ranks. Empty input returns 0.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	pos := q * float64(len(s)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return s[lo]
	}
	frac := pos - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}

// Share returns the fraction of total taken by part, 0 when total is 0.
func Share(part, total float64) float64 {
	if total == 0 {
		return 0
	}
	return part / total
}

// Sum returns the total of the values.
func Sum(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x
	}
	return s
}
