package metrics

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestJFIEqualShares(t *testing.T) {
	if got := JFI([]float64{5, 5, 5, 5}); !almostEqual(got, 1, 1e-12) {
		t.Fatalf("JFI equal = %v, want 1", got)
	}
}

func TestJFISingleHog(t *testing.T) {
	xs := make([]float64, 10)
	xs[0] = 100
	if got := JFI(xs); !almostEqual(got, 0.1, 1e-12) {
		t.Fatalf("JFI hog = %v, want 1/n = 0.1", got)
	}
}

func TestJFIKnownValue(t *testing.T) {
	// Jain's example: allocations 1,2,3 → 36/(3·14) = 6/7.
	if got := JFI([]float64{1, 2, 3}); !almostEqual(got, 6.0/7.0, 1e-12) {
		t.Fatalf("JFI = %v, want 6/7", got)
	}
}

func TestJFIEdgeCases(t *testing.T) {
	if JFI(nil) != 0 {
		t.Fatal("JFI(nil) != 0")
	}
	if JFI([]float64{0, 0}) != 1 {
		t.Fatal("JFI all-zero != 1")
	}
}

// Property: JFI ∈ [1/n, 1], and is scale-invariant.
func TestJFIBoundsAndScaleInvariance(t *testing.T) {
	f := func(raw []uint16, scale uint8) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		any := false
		for i, r := range raw {
			xs[i] = float64(r)
			if r != 0 {
				any = true
			}
		}
		if !any {
			return true
		}
		j := JFI(xs)
		n := float64(len(xs))
		if j < 1/n-1e-9 || j > 1+1e-9 {
			return false
		}
		k := float64(scale%7) + 1
		scaled := make([]float64, len(xs))
		for i := range xs {
			scaled[i] = xs[i] * k
		}
		return almostEqual(JFI(scaled), j, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestBurstinessPeriodic(t *testing.T) {
	// Perfectly periodic events: σ = 0 → B = −1.
	times := make([]float64, 100)
	for i := range times {
		times[i] = float64(i)
	}
	if got := Burstiness(times); !almostEqual(got, -1, 1e-12) {
		t.Fatalf("periodic burstiness = %v, want -1", got)
	}
}

func TestBurstinessPoissonNearZero(t *testing.T) {
	// Exponential inter-arrivals (σ = μ) → B ≈ 0. Use an inverse-CDF
	// with a deterministic low-discrepancy driver.
	var times []float64
	tcur := 0.0
	for i := 1; i <= 5000; i++ {
		u := (float64(i%997) + 0.5) / 997
		tcur += -math.Log(1 - u)
		times = append(times, tcur)
	}
	if got := Burstiness(times); math.Abs(got) > 0.1 {
		t.Fatalf("poisson burstiness = %v, want ≈0", got)
	}
}

func TestBurstinessBurstyPositive(t *testing.T) {
	// Tight bursts separated by long gaps → B well above 0.
	var times []float64
	base := 0.0
	for burst := 0; burst < 50; burst++ {
		for i := 0; i < 20; i++ {
			times = append(times, base+float64(i)*1e-4)
		}
		base += 10
	}
	got := Burstiness(times)
	if got < 0.5 {
		t.Fatalf("bursty burstiness = %v, want > 0.5", got)
	}
}

func TestBurstinessUnsortedInput(t *testing.T) {
	sorted := []float64{0, 1, 2, 3, 10, 11, 12}
	shuffled := []float64{10, 1, 12, 0, 3, 11, 2}
	if Burstiness(sorted) != Burstiness(shuffled) {
		t.Fatal("burstiness depends on input order")
	}
}

func TestBurstinessTooFewEvents(t *testing.T) {
	if Burstiness([]float64{1, 2}) != 0 || Burstiness(nil) != 0 {
		t.Fatal("short input should give 0")
	}
}

// Property: B always lies in [−1, 1].
func TestBurstinessBoundsProperty(t *testing.T) {
	f := func(raw []uint32) bool {
		if len(raw) < 3 {
			return true
		}
		ts := make([]float64, len(raw))
		for i, r := range raw {
			ts[i] = float64(r) / 1000
		}
		b := Burstiness(ts)
		return b >= -1-1e-9 && b <= 1+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestMedianAndQuantile(t *testing.T) {
	xs := []float64{3, 1, 2}
	if got := Median(xs); got != 2 {
		t.Fatalf("Median = %v", got)
	}
	even := []float64{4, 1, 3, 2}
	if got := Median(even); got != 2.5 {
		t.Fatalf("Median even = %v", got)
	}
	if got := Quantile(even, 0); got != 1 {
		t.Fatalf("Q0 = %v", got)
	}
	if got := Quantile(even, 1); got != 4 {
		t.Fatalf("Q1 = %v", got)
	}
	if got := Quantile(even, 0.25); got != 1.75 {
		t.Fatalf("Q.25 = %v", got)
	}
	if Quantile(nil, 0.5) != 0 {
		t.Fatal("Quantile(nil) != 0")
	}
	// Out-of-range q clamps.
	if Quantile(even, -1) != 1 || Quantile(even, 2) != 4 {
		t.Fatal("q clamp broken")
	}
}

func TestQuantileDoesNotMutateInput(t *testing.T) {
	xs := []float64{3, 1, 2}
	Quantile(xs, 0.5)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Fatalf("input mutated: %v", xs)
	}
}

func TestMeanStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Mean(xs); got != 5 {
		t.Fatalf("Mean = %v", got)
	}
	if got := StdDev(xs); !almostEqual(got, 2, 1e-12) {
		t.Fatalf("StdDev = %v, want 2", got)
	}
	if Mean(nil) != 0 || StdDev([]float64{1}) != 0 {
		t.Fatal("empty/short input handling")
	}
}

func TestShareAndSum(t *testing.T) {
	if Share(25, 100) != 0.25 {
		t.Fatal("Share")
	}
	if Share(1, 0) != 0 {
		t.Fatal("Share zero total")
	}
	if Sum([]float64{1, 2, 3}) != 6 {
		t.Fatal("Sum")
	}
}
