// Package mathis implements the Mathis et al. (1997) macroscopic TCP
// throughput model and the empirical constant-fitting procedure the
// paper uses to re-derive C in each setting (§4):
//
//	Throughput = MSS · C / (RTT · √p)
//
// The crux of the paper's Finding 1–2 is the interpretation of p: the
// original model defines it as the congestion event rate (one window
// reduction per 1/p packets), which at the edge coincides with the
// packet loss rate but at core scale diverges from it by 6–9× because
// losses arrive in bursts that each trigger a single window halving.
// This package is agnostic: callers fit and predict with whichever p
// they choose, and the experiment harness evaluates both.
package mathis

import (
	"errors"
	"math"

	"ccatscale/internal/metrics"
)

// Sample is one flow's measurement: throughput in bytes/sec, the event
// probability p (loss rate or halving rate, per packet), and the RTT in
// seconds.
type Sample struct {
	// ThroughputBps is the measured goodput in bytes per second.
	ThroughputBps float64
	// P is the congestion signal probability per packet under the
	// chosen interpretation.
	P float64
	// RTTSeconds is the flow's round-trip time in seconds.
	RTTSeconds float64
	// MSSBytes is the segment size in bytes.
	MSSBytes float64
}

// valid reports whether the sample can parameterize the model.
func (s Sample) valid() bool {
	return s.P > 0 && s.RTTSeconds > 0 && s.MSSBytes > 0 && s.ThroughputBps >= 0
}

// basis returns MSS/(RTT·√p) — the model's throughput per unit C.
func (s Sample) basis() float64 {
	return s.MSSBytes / (s.RTTSeconds * math.Sqrt(s.P))
}

// Predict returns the modeled throughput in bytes/sec for constant c.
func Predict(c float64, s Sample) float64 {
	if !s.valid() {
		return 0
	}
	return c * s.basis()
}

// ErrNoSamples indicates a fit over an empty or fully-degenerate
// sample set.
var ErrNoSamples = errors.New("mathis: no usable samples")

// FitC derives the constant C that minimizes the squared prediction
// error over the samples, following the empirical methodology of the
// original paper (and of this paper's Table 1): for the linear model
// T_i = C·b_i with b_i = MSS/(RTT_i·√p_i), least squares gives
// C = Σ T_i·b_i / Σ b_i².
func FitC(samples []Sample) (float64, error) {
	var num, den float64
	for _, s := range samples {
		if !s.valid() {
			continue
		}
		b := s.basis()
		num += s.ThroughputBps * b
		den += b * b
	}
	if den == 0 {
		return 0, ErrNoSamples
	}
	return num / den, nil
}

// PredictionErrors returns the per-sample relative prediction error
// |predicted − measured| / measured for constant c, skipping samples
// with zero measured throughput or invalid parameters.
func PredictionErrors(c float64, samples []Sample) []float64 {
	errs := make([]float64, 0, len(samples))
	for _, s := range samples {
		if !s.valid() || s.ThroughputBps == 0 {
			continue
		}
		pred := Predict(c, s)
		errs = append(errs, math.Abs(pred-s.ThroughputBps)/s.ThroughputBps)
	}
	return errs
}

// MedianError returns the median relative prediction error for constant
// c over the samples — the quantity plotted in the paper's Figure 2.
func MedianError(c float64, samples []Sample) float64 {
	return metrics.Median(PredictionErrors(c, samples))
}

// Fit bundles a fitted constant with its goodness measures.
type Fit struct {
	// C is the least-squares Mathis constant.
	C float64
	// MedianErr is the median relative prediction error at C.
	MedianErr float64
	// Samples is the number of usable samples.
	Samples int
}

// FitAndEvaluate fits C and evaluates the fit in one call.
func FitAndEvaluate(samples []Sample) (Fit, error) {
	c, err := FitC(samples)
	if err != nil {
		return Fit{}, err
	}
	n := 0
	for _, s := range samples {
		if s.valid() {
			n++
		}
	}
	return Fit{C: c, MedianErr: MedianError(c, samples), Samples: n}, nil
}
