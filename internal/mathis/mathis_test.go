package mathis

import (
	"math"
	"testing"
	"testing/quick"
)

func TestPredictKnownValue(t *testing.T) {
	// MSS 1448 B, RTT 20 ms, p 0.01, C 1: 1448/(0.02·0.1) = 724000 B/s.
	s := Sample{P: 0.01, RTTSeconds: 0.02, MSSBytes: 1448}
	if got := Predict(1, s); math.Abs(got-724000) > 1e-6 {
		t.Fatalf("Predict = %v, want 724000", got)
	}
	// C scales linearly.
	if got := Predict(0.94, s); math.Abs(got-0.94*724000) > 1e-6 {
		t.Fatalf("Predict C=0.94 = %v", got)
	}
}

func TestPredictInvalidSample(t *testing.T) {
	if Predict(1, Sample{P: 0, RTTSeconds: 0.02, MSSBytes: 1448}) != 0 {
		t.Fatal("p=0 should predict 0")
	}
	if Predict(1, Sample{P: 0.1, RTTSeconds: 0, MSSBytes: 1448}) != 0 {
		t.Fatal("rtt=0 should predict 0")
	}
}

func TestFitCRecoversSyntheticConstant(t *testing.T) {
	// Generate samples exactly on the model with C = 1.22 at varying
	// loss rates and RTTs; the fit must recover C.
	const trueC = 1.22
	var samples []Sample
	for _, p := range []float64{0.0001, 0.001, 0.01, 0.05} {
		for _, rtt := range []float64{0.02, 0.1, 0.2} {
			s := Sample{P: p, RTTSeconds: rtt, MSSBytes: 1448}
			s.ThroughputBps = Predict(trueC, s)
			samples = append(samples, s)
		}
	}
	c, err := FitC(samples)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(c-trueC) > 1e-9 {
		t.Fatalf("FitC = %v, want %v", c, trueC)
	}
	if m := MedianError(c, samples); m > 1e-9 {
		t.Fatalf("median error on exact data = %v", m)
	}
}

func TestFitCNoisyDataStillClose(t *testing.T) {
	const trueC = 0.94
	var samples []Sample
	// Deterministic ±20% multiplicative noise.
	noise := []float64{0.8, 1.2, 0.9, 1.1, 1.0}
	i := 0
	for _, p := range []float64{0.0005, 0.002, 0.008, 0.03} {
		for _, rtt := range []float64{0.02, 0.1, 0.2} {
			s := Sample{P: p, RTTSeconds: rtt, MSSBytes: 1448}
			s.ThroughputBps = Predict(trueC, s) * noise[i%len(noise)]
			i++
			samples = append(samples, s)
		}
	}
	c, err := FitC(samples)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(c-trueC)/trueC > 0.15 {
		t.Fatalf("FitC on noisy data = %v, want ≈%v", c, trueC)
	}
}

func TestFitCErrNoSamples(t *testing.T) {
	if _, err := FitC(nil); err != ErrNoSamples {
		t.Fatalf("err = %v, want ErrNoSamples", err)
	}
	if _, err := FitC([]Sample{{P: 0}}); err != ErrNoSamples {
		t.Fatalf("err = %v for degenerate samples", err)
	}
}

func TestWrongPInterpretationInflatesError(t *testing.T) {
	// Core of the paper's Finding 2: if the true congestion-event rate
	// is p but we fit/predict with 7·p (the loss:halving ratio at
	// scale), predictions with a constant fit at a DIFFERENT flow count
	// (different ratio) go wrong. Emulate: fit C on samples built with
	// ratio 6, evaluate on samples with ratio 9.
	build := func(ratio float64, pHalve []float64) []Sample {
		var out []Sample
		for _, p := range pHalve {
			s := Sample{P: p * ratio, RTTSeconds: 0.02, MSSBytes: 1448}
			// True throughput follows the halving rate with C = 1.4.
			s.ThroughputBps = 1.4 * 1448 / (0.02 * math.Sqrt(p))
			out = append(out, s)
		}
		return out
	}
	ps := []float64{0.0005, 0.001, 0.002, 0.004}
	cFit, err := FitC(build(6, ps))
	if err != nil {
		t.Fatal(err)
	}
	errAt9 := MedianError(cFit, build(9, ps))
	if errAt9 < 0.1 {
		t.Fatalf("cross-ratio error = %v; expected large model violation", errAt9)
	}
	// Whereas fitting and evaluating with the correct rate is exact.
	correct := func(ps []float64) []Sample {
		var out []Sample
		for _, p := range ps {
			s := Sample{P: p, RTTSeconds: 0.02, MSSBytes: 1448}
			s.ThroughputBps = 1.4 * 1448 / (0.02 * math.Sqrt(p))
			out = append(out, s)
		}
		return out
	}
	cGood, _ := FitC(correct(ps))
	if e := MedianError(cGood, correct([]float64{0.0007, 0.003})); e > 1e-9 {
		t.Fatalf("correct-rate error = %v, want 0", e)
	}
}

func TestFitAndEvaluate(t *testing.T) {
	s := Sample{P: 0.01, RTTSeconds: 0.02, MSSBytes: 1448}
	s.ThroughputBps = Predict(2, s)
	fit, err := FitAndEvaluate([]Sample{s, {P: 0}})
	if err != nil {
		t.Fatal(err)
	}
	if fit.Samples != 1 {
		t.Fatalf("Samples = %d, want 1", fit.Samples)
	}
	if math.Abs(fit.C-2) > 1e-12 || fit.MedianErr > 1e-12 {
		t.Fatalf("fit = %+v", fit)
	}
}

// Property: FitC is exact on any consistent synthetic data and
// scale-invariant in MSS.
func TestFitCExactnessProperty(t *testing.T) {
	f := func(rawC uint16, rawPs []uint16) bool {
		trueC := float64(rawC%300)/100 + 0.1
		var samples []Sample
		for _, rp := range rawPs {
			p := float64(rp%999+1) / 10000
			s := Sample{P: p, RTTSeconds: 0.05, MSSBytes: 1448}
			s.ThroughputBps = Predict(trueC, s)
			samples = append(samples, s)
		}
		if len(samples) == 0 {
			return true
		}
		c, err := FitC(samples)
		if err != nil {
			return false
		}
		return math.Abs(c-trueC) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestPredictionErrorsSkipZeroThroughput(t *testing.T) {
	errs := PredictionErrors(1, []Sample{
		{P: 0.01, RTTSeconds: 0.02, MSSBytes: 1448, ThroughputBps: 0},
		{P: 0.01, RTTSeconds: 0.02, MSSBytes: 1448, ThroughputBps: 724000},
	})
	if len(errs) != 1 {
		t.Fatalf("errors = %v, want single entry", errs)
	}
}
