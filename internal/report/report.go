// Package report renders experiment results as aligned text tables and
// CSV, matching the rows and series of the paper's tables and figures.
package report

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"

	"ccatscale/internal/schema"
)

// Table is a simple column-aligned text table.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
	// Notes are caveat lines rendered after the rows — honesty markers
	// like "series decimated 4×" or "run at fidelity tier 2" that must
	// travel with the numbers they qualify.
	Notes []string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends one row; cells are formatted with %v.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = formatFloat(v)
		case string:
			row[i] = v
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.Rows = append(t.Rows, row)
}

// formatFloat renders floats compactly: 3 significant decimals for
// small magnitudes, fewer for large.
func formatFloat(v float64) string {
	av := v
	if av < 0 {
		av = -av
	}
	switch {
	case av == 0:
		return "0"
	case av < 0.01:
		return fmt.Sprintf("%.5f", v)
	case av < 10:
		return fmt.Sprintf("%.3f", v)
	case av < 1000:
		return fmt.Sprintf("%.1f", v)
	default:
		return fmt.Sprintf("%.0f", v)
	}
}

// WriteText renders the table with aligned columns.
func (t *Table) WriteText(w io.Writer) error {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	if t.Title != "" {
		if _, err := fmt.Fprintf(w, "%s\n", t.Title); err != nil {
			return err
		}
	}
	line := func(cells []string) error {
		var b strings.Builder
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			b.WriteString(strings.Repeat(" ", widths[i]-len(c)))
		}
		_, err := fmt.Fprintf(w, "%s\n", strings.TrimRight(b.String(), " "))
		return err
	}
	if err := line(t.Headers); err != nil {
		return err
	}
	rules := make([]string, len(t.Headers))
	for i := range rules {
		rules[i] = strings.Repeat("-", widths[i])
	}
	if err := line(rules); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := line(row); err != nil {
			return err
		}
	}
	for _, n := range t.Notes {
		if _, err := fmt.Fprintf(w, "note: %s\n", n); err != nil {
			return err
		}
	}
	return nil
}

// AddNote appends one caveat line to the table's rendering.
func (t *Table) AddNote(format string, args ...interface{}) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// WriteCSV renders the table as CSV (no quoting needed for the numeric
// content these tables carry; commas in cells are rejected).
func (t *Table) WriteCSV(w io.Writer) error {
	writeLine := func(cells []string) error {
		for _, c := range cells {
			if strings.ContainsAny(c, ",\n\"") {
				return fmt.Errorf("report: cell %q needs CSV quoting, which this writer does not support", c)
			}
		}
		_, err := fmt.Fprintf(w, "%s\n", strings.Join(cells, ","))
		return err
	}
	if err := writeLine(t.Headers); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := writeLine(row); err != nil {
			return err
		}
	}
	return nil
}

// JSONTable is the versioned JSON rendering of a Table. The
// schema_version field is shared with reproduce manifests and the
// telemetry stream; consumers gate on its major component (see
// internal/schema).
type JSONTable struct {
	SchemaVersion string     `json:"schema_version"`
	Title         string     `json:"title,omitempty"`
	Headers       []string   `json:"headers"`
	Rows          [][]string `json:"rows"`
	Notes         []string   `json:"notes,omitempty"`
}

// WriteJSON renders the table as a versioned JSON document.
func (t *Table) WriteJSON(w io.Writer) error {
	doc := JSONTable{
		SchemaVersion: schema.Version,
		Title:         t.Title,
		Headers:       t.Headers,
		Rows:          t.Rows,
		Notes:         t.Notes,
	}
	if doc.Rows == nil {
		doc.Rows = [][]string{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

// ReadJSON parses a versioned JSON table, rejecting documents whose
// schema major version this build does not understand.
func ReadJSON(r io.Reader) (*Table, error) {
	var doc JSONTable
	if err := json.NewDecoder(r).Decode(&doc); err != nil {
		return nil, fmt.Errorf("report: parsing JSON table: %w", err)
	}
	if err := schema.Check(doc.SchemaVersion); err != nil {
		return nil, err
	}
	return &Table{Title: doc.Title, Headers: doc.Headers, Rows: doc.Rows, Notes: doc.Notes}, nil
}

// Pct formats a fraction as a percentage string.
func Pct(frac float64) string { return fmt.Sprintf("%.1f%%", frac*100) }
