package report

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
)

func TestTableTextAlignment(t *testing.T) {
	tab := NewTable("Demo", "Flows", "JFI")
	tab.AddRow(1000, 0.4)
	tab.AddRow(50, 0.99)
	var buf bytes.Buffer
	if err := tab.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 { // title, header, rule, 2 rows
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "Demo") {
		t.Fatalf("title missing: %q", lines[0])
	}
	if !strings.Contains(lines[1], "Flows") || !strings.Contains(lines[1], "JFI") {
		t.Fatalf("header: %q", lines[1])
	}
	if !strings.Contains(lines[3], "1000") || !strings.Contains(lines[3], "0.400") {
		t.Fatalf("row: %q", lines[3])
	}
}

func TestTableCSV(t *testing.T) {
	tab := NewTable("", "a", "b")
	tab.AddRow("x", 1.5)
	var buf bytes.Buffer
	if err := tab.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	if got := buf.String(); got != "a,b\nx,1.500\n" {
		t.Fatalf("csv = %q", got)
	}
}

func TestTableCSVRejectsCommas(t *testing.T) {
	tab := NewTable("", "a")
	tab.AddRow("x,y")
	if err := tab.WriteCSV(&bytes.Buffer{}); err == nil {
		t.Fatal("comma cell accepted")
	}
}

func TestFormatFloatRanges(t *testing.T) {
	cases := map[float64]string{
		0:       "0",
		0.001:   "0.00100",
		0.42:    "0.420",
		3.14159: "3.142",
		99.5:    "99.5",
		12345:   "12345",
	}
	for in, want := range cases {
		if got := formatFloat(in); got != want {
			t.Errorf("formatFloat(%v) = %q, want %q", in, got, want)
		}
	}
}

func TestPct(t *testing.T) {
	if got := Pct(0.425); got != "42.5%" {
		t.Fatalf("Pct = %q", got)
	}
}

func TestJSONTableRoundTrip(t *testing.T) {
	tab := NewTable("Round trip", "a", "b")
	tab.AddRow("x", 1.5)
	tab.AddRow("y", 2)
	tab.AddNote("fidelity tier %d", 1)

	var buf bytes.Buffer
	if err := tab.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"schema_version"`) {
		t.Fatalf("JSON table carries no schema version:\n%s", buf.String())
	}
	got, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Title != tab.Title || !reflect.DeepEqual(got.Headers, tab.Headers) ||
		!reflect.DeepEqual(got.Rows, tab.Rows) || !reflect.DeepEqual(got.Notes, tab.Notes) {
		t.Fatalf("round trip mismatch:\nin:  %+v\nout: %+v", tab, got)
	}
}

func TestJSONTableEmptyRowsSerializeAsArray(t *testing.T) {
	var buf bytes.Buffer
	if err := NewTable("empty", "a").WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"rows": []`) {
		t.Fatalf("empty table should serialize rows as [], got:\n%s", buf.String())
	}
}

func TestReadJSONRejectsUnknownMajor(t *testing.T) {
	_, err := ReadJSON(strings.NewReader(`{"schema_version":"99.0","headers":["a"],"rows":[]}`))
	if err == nil || !strings.Contains(err.Error(), "major 99") {
		t.Fatalf("unknown major should be rejected, got %v", err)
	}
	_, err = ReadJSON(strings.NewReader(`{"headers":["a"],"rows":[]}`))
	if err == nil || !strings.Contains(err.Error(), "schema_version") {
		t.Fatalf("missing version should be rejected, got %v", err)
	}
}
