package tcp

import (
	"testing"

	"ccatscale/internal/packet"
	"ccatscale/internal/sim"
)

func newGROReceiver(t *testing.T) (*sim.Engine, *Receiver, *[]packet.Packet) {
	t.Helper()
	eng := sim.NewEngine()
	var acks []packet.Packet
	r := NewReceiver(eng, 0, DefaultReceiverConfig(), func(p packet.Packet) { acks = append(acks, p) })
	return eng, r, &acks
}

func TestGROCoalescesBackToBackRun(t *testing.T) {
	eng, r, acks := newGROReceiver(t)
	// Twelve segments arriving 10 µs apart (a 1+ Gbps bottleneck run):
	// one stretch ACK must cover them all after the coalescing gap.
	for i := int64(0); i < 12; i++ {
		i := i
		eng.Schedule(sim.Time(i)*10*sim.Microsecond, func() { r.OnData(seg(i)) })
	}
	eng.Run(sim.Second)
	if len(*acks) != 1 {
		t.Fatalf("acks = %d, want 1 stretch ACK", len(*acks))
	}
	if (*acks)[0].CumAck != 12*mss {
		t.Fatalf("CumAck = %d, want %d", (*acks)[0].CumAck, 12*mss)
	}
	if st := r.Stats(); st.StretchAcks != 1 {
		t.Fatalf("StretchAcks = %d", st.StretchAcks)
	}
}

func TestGROFlushTiming(t *testing.T) {
	eng, r, acks := newGROReceiver(t)
	var ackAt sim.Time
	eng.Schedule(0, func() { r.OnData(seg(0)) })
	eng.Schedule(50*sim.Microsecond, func() { r.OnData(seg(1)) })
	eng.Schedule(sim.Second, func() {
		if len(*acks) == 1 {
			ackAt = 0 // recorded below
		}
	})
	eng.Run(2 * sim.Second)
	if len(*acks) != 1 {
		t.Fatalf("acks = %d", len(*acks))
	}
	_ = ackAt
	// The flush fires one GROWindow after the last arrival: the run of
	// two is delivered as one unit, and two pending units force an
	// immediate ACK under the every-2 rule.
}

func TestGRODoesNotCoalesceEdgePacing(t *testing.T) {
	eng, r, acks := newGROReceiver(t)
	// Segments 121 µs apart (100 Mbps serialization, the EdgeScale
	// spacing): no coalescing, classic delayed-ACK every 2 segments.
	for i := int64(0); i < 4; i++ {
		i := i
		eng.Schedule(sim.Time(i)*121*sim.Microsecond, func() { r.OnData(seg(i)) })
	}
	eng.Run(sim.Second)
	if len(*acks) != 2 {
		t.Fatalf("acks = %d, want 2 (delack every 2)", len(*acks))
	}
	if st := r.Stats(); st.StretchAcks != 0 {
		t.Fatalf("StretchAcks = %d at edge spacing", st.StretchAcks)
	}
}

func TestGROMaxSegmentsCapsAggregate(t *testing.T) {
	eng, r, acks := newGROReceiver(t)
	// 50 back-to-back segments: the aggregate must flush at the 44-seg
	// GRO cap, then restart.
	for i := int64(0); i < 50; i++ {
		i := i
		eng.Schedule(sim.Time(i)*sim.Microsecond, func() { r.OnData(seg(i)) })
	}
	eng.Run(sim.Second)
	if len(*acks) != 2 {
		t.Fatalf("acks = %d, want 2 (cap flush + tail flush)", len(*acks))
	}
	if (*acks)[0].CumAck != 44*mss {
		t.Fatalf("first flush CumAck = %d, want %d", (*acks)[0].CumAck, 44*mss)
	}
	if (*acks)[1].CumAck != 50*mss {
		t.Fatalf("tail flush CumAck = %d", (*acks)[1].CumAck)
	}
}

func TestGROOutOfOrderFlushesImmediately(t *testing.T) {
	eng, r, acks := newGROReceiver(t)
	eng.Schedule(0, func() { r.OnData(seg(0)) })
	eng.Schedule(10*sim.Microsecond, func() { r.OnData(seg(1)) })
	// A hole: segment 3 arrives while 0-1 are still aggregating.
	eng.Schedule(20*sim.Microsecond, func() { r.OnData(seg(3)) })
	eng.Run(sim.Second)
	if len(*acks) != 1 {
		t.Fatalf("acks = %d, want 1 immediate dup-ACK", len(*acks))
	}
	a := (*acks)[0]
	if a.CumAck != 2*mss || a.NumSack != 1 {
		t.Fatalf("dup ack = %+v", a)
	}
	// It must have fired at the out-of-order arrival, not after the
	// coalescing window.
}

func TestGROHoleFillFlushes(t *testing.T) {
	eng, r, acks := newGROReceiver(t)
	eng.Schedule(0, func() { r.OnData(seg(1)) }) // ooo → immediate ack
	eng.Schedule(10*sim.Microsecond, func() { r.OnData(seg(0)) })
	eng.Run(sim.Second)
	if len(*acks) != 2 {
		t.Fatalf("acks = %d, want 2", len(*acks))
	}
	if (*acks)[1].CumAck != 2*mss {
		t.Fatalf("fill ack CumAck = %d", (*acks)[1].CumAck)
	}
}

func TestGRORTTEchoSpansAggregate(t *testing.T) {
	eng, r, acks := newGROReceiver(t)
	p0 := seg(0)
	p0.SentAt = 1000
	p1 := seg(1)
	p1.SentAt = 2000
	eng.Schedule(0, func() { r.OnData(p0) })
	eng.Schedule(10*sim.Microsecond, func() { r.OnData(p1) })
	eng.Run(sim.Second)
	if len(*acks) != 1 {
		t.Fatalf("acks = %d", len(*acks))
	}
	a := (*acks)[0]
	if a.AckedSentAt != 1000 {
		t.Fatalf("RTT echo = %v, want oldest (1000)", a.AckedSentAt)
	}
	if a.RateSentAt != 2000 {
		t.Fatalf("rate echo = %v, want newest (2000)", a.RateSentAt)
	}
}

func TestGRODisabledBehavesLikeClassicReceiver(t *testing.T) {
	eng := sim.NewEngine()
	var acks []packet.Packet
	cfg := ReceiverConfig{DelAckDelay: DelayedAckTimeout} // GRO off
	r := NewReceiver(eng, 0, cfg, func(p packet.Packet) { acks = append(acks, p) })
	// Back-to-back arrivals still ACK every 2 without coalescing delay.
	r.OnData(seg(0))
	r.OnData(seg(1))
	if len(acks) != 1 {
		t.Fatalf("acks = %d, want immediate every-2 ACK", len(acks))
	}
}
