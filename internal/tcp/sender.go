package tcp

import (
	"ccatscale/internal/audit"
	"ccatscale/internal/cca"
	"ccatscale/internal/packet"
	"ccatscale/internal/sim"
	"ccatscale/internal/telemetry"
	"ccatscale/internal/units"
)

// SenderStats is a snapshot of sender-side counters. The Mathis
// analysis (paper §4) is built from these: SegmentsSent and
// Retransmissions give the send-side loss view, FastRecoveries+RTOs is
// the tcpprobe-equivalent CWND-halving count, and the RTT aggregates
// parameterize the model.
type SenderStats struct {
	// SegmentsSent counts every transmission, including
	// retransmissions.
	SegmentsSent uint64
	// Retransmissions counts retransmitted segments only.
	Retransmissions uint64
	// DeliveredBytes is the cumulative delivered-byte counter
	// (cumulatively or selectively acknowledged, each byte once).
	DeliveredBytes units.ByteCount
	// FastRecoveries counts fast-recovery episodes — multiplicative
	// decreases triggered by duplicate-ACK/SACK loss detection. For
	// NewReno this is exactly the paper's "CWND halving" count.
	FastRecoveries uint64
	// RTOs counts retransmission timeouts (each also a multiplicative
	// decrease, to one segment).
	RTOs uint64
	// TLPProbes counts tail-loss probe transmissions.
	TLPProbes uint64
	// ECEAcks counts ACKs that arrived with the congestion-experienced
	// echo set.
	ECEAcks uint64
	// ECNResponses counts window reductions taken in response to ECE
	// (at most one per window of data; each is a congestion event that
	// cost no retransmission).
	ECNResponses uint64
	// RTTSamples, MeanRTT, MinRTT, SRTT summarize the RTT estimator.
	RTTSamples uint64
	MeanRTT    sim.Time
	MinRTT     sim.Time
	SRTT       sim.Time
	// Cwnd is the congestion window at snapshot time.
	Cwnd units.ByteCount
	// InFlight is the pipe estimate at snapshot time.
	InFlight units.ByteCount
}

// CongestionEvents returns the total count of multiplicative-decrease
// episodes (fast recoveries plus timeouts) — the paper's CWND-halving
// numerator.
func (s SenderStats) CongestionEvents() uint64 { return s.FastRecoveries + s.RTOs }

// Config parameterizes a sender.
type Config struct {
	// MSS is the maximum segment size (payload bytes). Defaults to
	// units.MSS.
	MSS units.ByteCount
	// CCA is the congestion controller; required.
	CCA cca.CCA
	// Output transmits packets toward the network; required.
	Output func(packet.Packet)
	// TransferBytes bounds the transfer: the sender stops producing new
	// data at this many bytes (rounded up to whole segments) and
	// invokes OnComplete when everything is acknowledged. 0 means an
	// infinite stream, the paper's workload.
	TransferBytes units.ByteCount
	// OnComplete fires once when a finite transfer is fully
	// acknowledged; ignored for infinite streams.
	OnComplete func()
	// ECN enables RFC 3168 negotiation: new data is sent ECT,
	// CE-marked deliveries come back as ECE echoes, and the sender
	// responds with at most one window reduction per window of data,
	// confirming via CWR. Retransmissions are never ECT (§6.1.5).
	ECN bool
	// Audit enables the transport invariant checks (nil = off): cheap
	// per-ACK sequence/pipe/timer checks plus a periodic full SACK
	// scoreboard recount.
	Audit *audit.Auditor
	// Telemetry receives the flow's lifecycle and loss/recovery episode
	// events (nil = off; the nil path is branch-identical to an
	// uninstrumented sender).
	Telemetry telemetry.Collector
}

// Sender is the data-source side of a simulated TCP connection,
// transferring an infinite byte stream (the paper's iperf-style
// workload). It owns reliability and ACK clocking; window sizing is the
// CCA's.
type Sender struct {
	eng  *sim.Engine
	flow int32
	mss  units.ByteCount
	out  func(packet.Packet)
	cc   cca.CCA

	window *sendWindow
	rtt    rttEstimator

	// Recovery state.
	inRecovery    bool
	recoveryPoint int64 // segment index; recovery ends when una reaches it
	dupAcks       int

	// Proportional Rate Reduction (RFC 6937) state, active during fast
	// recovery for CCAs that don't manage their own recovery window.
	// PRR paces transmissions at ssthresh/prior-cwnd of the delivery
	// rate so the bottleneck queue drains and retransmissions survive;
	// a frozen-cwnd sender would clock 1-for-1 and never drain an
	// overcommitted queue.
	usePRR       bool
	prrDelivered units.ByteCount
	prrOut       units.ByteCount
	prrSsthresh  units.ByteCount
	prrRecoverFS units.ByteCount
	prrBudget    units.ByteCount

	// RTO state.
	rtoTimer   *sim.Timer
	rtoBackoff uint // consecutive unanswered timeouts

	// Tail-loss probe state (RFC 8985 TLP, simplified): when the tail
	// of the window is lost there are no later segments to produce the
	// SACKs that drive fast recovery, so a probe retransmission of the
	// last segment is sent after ~2 SRTT to elicit them. One probe per
	// flight.
	tlpTimer *sim.Timer
	tlpFired bool

	// Pacing state.
	paceTimer    *sim.Timer
	nextSendTime sim.Time

	// ECN state: ecnRespPoint is the snd.nxt recorded at the last ECE
	// response; further echoes are ignored until it is cumulatively
	// acknowledged (once-per-window, RFC 3168 §6.1.2). sendCWR requests
	// the CWR flag on the next new data segment.
	ecn          bool
	ecnRespPoint int64
	sendCWR      bool

	// Delivery-rate sampling (Cheng et al.).
	delivered     units.ByteCount
	deliveredTime sim.Time
	firstSentTime sim.Time

	// Round-trip accounting for BBR.
	nextRoundDelivered units.ByteCount
	roundStart         bool

	started bool

	// Audit state.
	aud      *audit.Auditor
	ackCount uint64

	// Telemetry collector (nil = off).
	tel telemetry.Collector

	// Finite-transfer state: endSeg is the segment count of the
	// transfer (0 = infinite); completed latches OnComplete.
	endSeg     int64
	onComplete func()
	completed  bool

	stats SenderStats
}

// NewSender creates a sender for flow with the given configuration.
// Call Start to begin transmitting.
func NewSender(eng *sim.Engine, flow int32, cfg Config) *Sender {
	if cfg.CCA == nil {
		panic("tcp: sender without CCA")
	}
	if cfg.Output == nil {
		panic("tcp: sender without output")
	}
	mss := cfg.MSS
	if mss <= 0 {
		mss = units.MSS
	}
	s := &Sender{
		eng:    eng,
		flow:   flow,
		mss:    mss,
		out:    cfg.Output,
		cc:     cfg.CCA,
		window: newSendWindow(mss),
		aud:    cfg.Audit,
		tel:    cfg.Telemetry,
		ecn:    cfg.ECN,
	}
	s.rtoTimer = sim.NewTimer(eng, s.onRTO)
	s.paceTimer = sim.NewTimer(eng, s.trySend)
	s.tlpTimer = sim.NewTimer(eng, s.onTLP)
	_, controlsRecovery := cfg.CCA.(cca.RecoveryController)
	s.usePRR = !controlsRecovery
	if cfg.TransferBytes > 0 {
		s.endSeg = (int64(cfg.TransferBytes) + int64(mss) - 1) / int64(mss)
		s.onComplete = cfg.OnComplete
	}
	return s
}

// Done reports whether a finite transfer has been fully acknowledged.
func (s *Sender) Done() bool { return s.completed }

// Start schedules the first transmission at virtual time at.
func (s *Sender) Start(at sim.Time) {
	s.eng.Schedule(at, func() {
		s.started = true
		if s.tel != nil {
			s.tel.Emit(telemetry.Event{
				Time: s.eng.Now(), Kind: telemetry.KindFlowStart,
				Flow: s.flow, CCA: s.cc.Name(), A: int64(s.cc.Cwnd()),
			})
		}
		s.trySend()
	})
}

// Flow returns the sender's flow ID.
func (s *Sender) Flow() int32 { return s.flow }

// CCA returns the congestion controller (for instrumentation).
func (s *Sender) CCA() cca.CCA { return s.cc }

// Cwnd returns the current congestion window.
func (s *Sender) Cwnd() units.ByteCount { return s.cc.Cwnd() }

// InFlight returns the pipe estimate.
func (s *Sender) InFlight() units.ByteCount { return s.window.Pipe() }

// Stats returns a snapshot of the sender counters.
func (s *Sender) Stats() SenderStats {
	st := s.stats
	st.DeliveredBytes = s.delivered
	st.RTTSamples = s.rtt.Samples()
	st.MeanRTT = s.rtt.Mean()
	st.MinRTT = s.rtt.Min()
	st.SRTT = s.rtt.SRTT()
	st.Cwnd = s.cc.Cwnd()
	st.InFlight = s.window.Pipe()
	return st
}

// OnAck processes one arriving acknowledgment.
func (s *Sender) OnAck(p packet.Packet) {
	now := s.eng.Now()

	// 1. Cumulative acknowledgment.
	ackSeg := p.CumAck / int64(s.mss)
	if s.aud != nil && ackSeg > s.window.Nxt() {
		// "No ACK for unsent data": the receiver cannot acknowledge
		// bytes the sender never transmitted.
		s.aud.Reportf("tcp/ack-beyond-nxt", s.flow,
			"cumulative ACK for segment %d beyond snd.nxt %d", ackSeg, s.window.Nxt())
	}
	var newlyDelivered units.ByteCount
	advanced := ackSeg > s.window.Una()
	if advanced {
		newlyDelivered += s.window.Advance(ackSeg)
		s.dupAcks = 0
	} else {
		s.dupAcks++
	}

	// 2. Selective acknowledgments.
	for i := int8(0); i < p.NumSack; i++ {
		blk := p.Sack[i]
		for seg := blk.Start / int64(s.mss); seg*int64(s.mss) < blk.End; seg++ {
			newlyDelivered += s.window.Sack(seg)
		}
	}

	// 3. RTT sample (Karn's rule excludes echoes from retransmitted
	// segments).
	var rttSample sim.Time
	if p.AckedSentAt > 0 && !p.AckedRetrans {
		rttSample = now - p.AckedSentAt
		s.rtt.Update(rttSample)
		s.rtoBackoff = 0
	}

	// 4. Delivery accounting and rate sample.
	rate, appLimited := s.rateSample(p, newlyDelivered, now)

	// 5. Round-trip tracking (delivered-byte rounds, as in the BBR
	// reference).
	s.roundStart = false
	if units.ByteCount(p.Delivered) >= s.nextRoundDelivered {
		s.nextRoundDelivered = s.delivered
		s.roundStart = true
	}

	// 6. Loss detection and recovery transitions. Forward marking finds
	// first losses; the stale-retransmission check finds dropped
	// retransmissions that would otherwise pin the window until RTO.
	newlyLost := s.window.MarkLost()
	newlyLost += s.window.MarkStaleRtxLost()
	if newlyLost > 0 && !s.inRecovery {
		s.enterRecovery(now)
	}
	if s.inRecovery && s.window.Una() >= s.recoveryPoint {
		s.exitRecovery(now)
	}
	s.updatePRR(newlyDelivered)

	// 6b. ECN echo (RFC 3168 §6.1.2): an ECE-carrying ACK is a
	// congestion signal equivalent to one lost segment, reacted to at
	// most once per window of data and never on top of an in-progress
	// loss recovery (which already reduced for this window).
	if s.ecn && p.ECE {
		s.stats.ECEAcks++
		if !s.inRecovery && s.window.Una() >= s.ecnRespPoint {
			s.stats.ECNResponses++
			var priorCwnd units.ByteCount
			if s.tel != nil {
				priorCwnd = s.cc.Cwnd()
			}
			s.cc.OnECNMark(now, s.window.Pipe())
			s.ecnRespPoint = s.window.Nxt()
			s.sendCWR = true
			if s.tel != nil {
				s.tel.Emit(telemetry.Event{
					Time: now, Kind: telemetry.KindLoss,
					Flow: s.flow, CCA: s.cc.Name(), Label: "ecn-mark",
					A: int64(priorCwnd), B: int64(s.window.Pipe()),
				})
			}
		}
	}

	// 7. Congestion control.
	s.cc.OnAck(cca.AckEvent{
		Now:            now,
		AckedBytes:     newlyDelivered,
		RTT:            rttSample,
		MinRTT:         s.rtt.Min(),
		Delivered:      s.delivered,
		Rate:           rate,
		RateAppLimited: appLimited,
		RoundStart:     s.roundStart,
		InFlight:       s.window.Pipe(),
		InRecovery:     s.inRecovery,
	})

	// 8. Retransmission timer (RFC 6298 §5.3): restart only when the
	// ACK acknowledged new data. Restarting on duplicate ACKs would let
	// a steady dupack stream defer the timeout forever, deadlocking on
	// a lost retransmission that only the RTO can repair.
	switch {
	case s.window.InWindow() == 0:
		s.rtoTimer.Stop()
		s.tlpTimer.Stop()
	case advanced || !s.rtoTimer.Pending():
		s.rtoTimer.Reset(s.rto())
	}
	if advanced {
		s.tlpFired = false
	}
	s.armTLP()

	// 9. Finite-transfer completion.
	if s.endSeg > 0 && !s.completed && s.window.Una() >= s.endSeg {
		s.completed = true
		s.rtoTimer.Stop()
		s.tlpTimer.Stop()
		s.paceTimer.Stop()
		if s.onComplete != nil {
			s.onComplete()
		}
		return
	}

	// 10. Send whatever the updated window and pacing allow.
	s.trySend()

	if s.aud != nil {
		s.auditAck()
	}
}

// auditAckEvery is the period (in ACKs) of the full SACK-scoreboard
// recount. The recount is O(window); the per-ACK checks below are O(1),
// which keeps strict auditing affordable at sweep scale.
const auditAckEvery = 256

// auditAck runs the transport invariants after one fully processed ACK.
func (s *Sender) auditAck() {
	s.ackCount++
	w := s.window
	if w.Una() > w.Nxt() {
		s.aud.Reportf("tcp/una-beyond-nxt", s.flow,
			"snd.una %d beyond snd.nxt %d", w.Una(), w.Nxt())
	}
	if pipe := w.Pipe(); pipe < 0 {
		s.aud.Reportf("tcp/pipe-negative", s.flow, "pipe estimate %d bytes", pipe)
	} else if inWin := units.ByteCount(w.InWindow()) * s.mss; pipe > inWin {
		s.aud.Reportf("tcp/pipe-overflow", s.flow,
			"pipe estimate %d exceeds outstanding window %d", pipe, inWin)
	}
	if rto := s.rto(); rto <= 0 {
		s.aud.Reportf("tcp/rto-nonpositive", s.flow, "RTO %v", rto)
	}
	if rate := s.cc.PacingRate(); rate < 0 {
		s.aud.Reportf("tcp/pacing-negative", s.flow, "pacing rate %d", int64(rate))
	}
	if s.ackCount%auditAckEvery == 0 {
		w.audit(s.aud, s.flow)
	}
}

// rateSample implements the delivery-rate estimator: delivered-byte and
// time deltas between this ACK and the send-time snapshots carried by
// the newest segment it covers.
func (s *Sender) rateSample(p packet.Packet, newlyDelivered units.ByteCount, now sim.Time) (units.Bandwidth, bool) {
	s.delivered += newlyDelivered
	if newlyDelivered > 0 {
		s.deliveredTime = now
	}
	if p.DeliveredAt == 0 || p.RateSentAt == 0 {
		return 0, false
	}
	priorDelivered := units.ByteCount(p.Delivered)
	sendElapsed := p.RateSentAt - p.FirstSentAt
	ackElapsed := s.deliveredTime - p.DeliveredAt
	s.firstSentTime = p.RateSentAt
	interval := sendElapsed
	if ackElapsed > interval {
		interval = ackElapsed
	}
	if interval <= 0 {
		return 0, false
	}
	// Samples shorter than the path's min RTT are unreliable (draft
	// §3.2.2); with segment-aligned delayed ACKs they occur for the
	// very first flight, where FirstSentAt == SentAt.
	if min := s.rtt.Min(); min > 0 && interval < min {
		return 0, false
	}
	deliveredDelta := s.delivered - priorDelivered
	if deliveredDelta <= 0 {
		return 0, false
	}
	return units.Throughput(deliveredDelta, interval), p.AppLimited
}

func (s *Sender) enterRecovery(now sim.Time) {
	s.inRecovery = true
	s.recoveryPoint = s.window.Nxt()
	s.stats.FastRecoveries++
	flightSize := s.window.Pipe()
	var priorCwnd units.ByteCount
	if s.tel != nil {
		priorCwnd = s.cc.Cwnd()
	}
	s.cc.OnEnterRecovery(now, flightSize)
	if s.tel != nil {
		s.tel.Emit(telemetry.Event{
			Time: now, Kind: telemetry.KindLoss,
			Flow: s.flow, CCA: s.cc.Name(), Label: "fast-recovery",
			A: int64(priorCwnd), B: int64(flightSize),
		})
	}
	if s.usePRR {
		s.prrDelivered = 0
		s.prrOut = 0
		s.prrSsthresh = s.cc.Cwnd() // CCAs set cwnd = ssthresh on entry
		s.prrRecoverFS = flightSize
		if s.prrRecoverFS < s.mss {
			s.prrRecoverFS = s.mss
		}
		s.prrBudget = 0
	}
}

func (s *Sender) exitRecovery(now sim.Time) {
	s.inRecovery = false
	s.dupAcks = 0
	s.prrBudget = 0
	s.cc.OnExitRecovery(now)
	if s.tel != nil {
		s.tel.Emit(telemetry.Event{
			Time: now, Kind: telemetry.KindRecoveryExit,
			Flow: s.flow, CCA: s.cc.Name(), A: int64(s.cc.Cwnd()),
		})
	}
}

// updatePRR computes this ACK's transmission allowance (RFC 6937).
func (s *Sender) updatePRR(delivered units.ByteCount) {
	if !s.inRecovery || !s.usePRR {
		return
	}
	s.prrDelivered += delivered
	pipe := s.window.Pipe()
	var sndcnt units.ByteCount
	if pipe > s.prrSsthresh {
		// Proportional reduction: hand out ssthresh/RecoverFS of every
		// delivered byte.
		sndcnt = (s.prrDelivered*s.prrSsthresh+s.prrRecoverFS-1)/s.prrRecoverFS - s.prrOut
	} else {
		// Slow-start-like phase near the target: catch up to ssthresh,
		// with at least one extra segment of headroom for progress.
		limit := s.prrDelivered - s.prrOut
		if delivered > limit {
			limit = delivered
		}
		limit += s.mss
		sndcnt = s.prrSsthresh - pipe
		if sndcnt > limit {
			sndcnt = limit
		}
	}
	if sndcnt < 0 {
		sndcnt = 0
	}
	s.prrBudget = sndcnt
}

// rto returns the current timeout with exponential backoff applied.
func (s *Sender) rto() sim.Time {
	rto := s.rtt.RTO()
	for i := uint(0); i < s.rtoBackoff && rto < MaxRTO; i++ {
		rto *= 2
	}
	if rto > MaxRTO {
		rto = MaxRTO
	}
	return rto
}

// armTLP schedules a tail-loss probe when one is useful: data is
// outstanding, no loss recovery is in progress, and this flight hasn't
// been probed yet. The probe timeout is 2·SRTT, capped below the RTO so
// the probe always gets a chance to convert a timeout into SACK-driven
// recovery.
func (s *Sender) armTLP() {
	if s.window.InWindow() == 0 || s.inRecovery || s.window.HasLost() || s.tlpFired {
		s.tlpTimer.Stop()
		return
	}
	pto := 2 * s.rtt.SRTT()
	if pto == 0 {
		pto = InitialRTO / 2
	}
	if rto := s.rto(); pto >= rto {
		pto = rto * 9 / 10
	}
	s.tlpTimer.Reset(pto)
}

// onTLP transmits the tail probe: a fresh copy of the highest-sent
// segment. The copy travels outside the pipe accounting (it is a
// speculative duplicate); whatever SACK state its ACK reveals drives
// ordinary recovery.
func (s *Sender) onTLP() {
	if s.window.InWindow() == 0 || s.inRecovery || s.window.HasLost() || s.tlpFired {
		return
	}
	s.tlpFired = true
	now := s.eng.Now()
	seg := s.window.Nxt() - 1
	p := packet.Packet{
		Flow:        s.flow,
		Seq:         seg * int64(s.mss),
		Len:         int32(s.mss),
		Retrans:     true,
		SentAt:      now,
		Delivered:   int64(s.delivered),
		DeliveredAt: s.deliveredTime,
		FirstSentAt: s.firstSentTime,
	}
	s.stats.TLPProbes++
	s.stats.SegmentsSent++
	s.out(p)
}

// onRTO handles a retransmission timeout: every outstanding segment is
// presumed lost and the window collapses per the CCA's OnRTO.
func (s *Sender) onRTO() {
	if s.window.InWindow() == 0 {
		return
	}
	s.stats.RTOs++
	s.rtoBackoff++
	var priorCwnd, pipe units.ByteCount
	if s.tel != nil {
		priorCwnd = s.cc.Cwnd()
		pipe = s.window.Pipe()
	}
	s.window.MarkAllLost()
	s.inRecovery = false
	s.dupAcks = 0
	s.cc.OnRTO(s.eng.Now())
	if s.tel != nil {
		s.tel.Emit(telemetry.Event{
			Time: s.eng.Now(), Kind: telemetry.KindLoss,
			Flow: s.flow, CCA: s.cc.Name(), Label: "rto",
			A: int64(priorCwnd), B: int64(pipe),
		})
	}
	// Timeout suspends pacing for the retransmission burst decision;
	// the next ACK re-establishes the pacing clock.
	s.nextSendTime = 0
	s.rtoTimer.Reset(s.rto())
	s.trySend()
}

// trySend transmits as much as the congestion window and pacing allow:
// lost segments first (oldest hole first), then new data.
func (s *Sender) trySend() {
	if !s.started {
		return
	}
	now := s.eng.Now()
	prr := s.inRecovery && s.usePRR
	for {
		if !s.window.HasLost() && s.endSeg > 0 && s.window.Nxt() >= s.endSeg {
			return // finite transfer: nothing left to (re)send
		}
		if prr {
			if s.prrBudget < s.mss {
				return // PRR allowance exhausted until the next ACK
			}
		} else if s.window.Pipe()+s.mss > s.cc.Cwnd() {
			return // window-limited
		}
		if rate := s.cc.PacingRate(); rate > 0 && now < s.nextSendTime {
			s.paceTimer.Reset(s.nextSendTime - now)
			return // pacing-limited
		}
		if prr {
			s.prrBudget -= s.mss
			s.prrOut += s.mss
		}
		if seg, ok := s.window.NextLost(); ok {
			s.window.MarkRetransmitted(seg, now)
			s.transmit(seg, true, now)
			continue
		}
		seg := s.window.ExtendOne(now)
		s.transmit(seg, false, now)
	}
}

// transmit emits one segment.
func (s *Sender) transmit(seg int64, retrans bool, now sim.Time) {
	if s.window.Pipe() == s.mss { // this segment restarted an idle pipe
		if s.deliveredTime == 0 || s.window.InWindow() == 1 {
			s.firstSentTime = now
			s.deliveredTime = now
		}
	}
	if s.firstSentTime == 0 {
		s.firstSentTime = now
	}
	if s.deliveredTime == 0 {
		s.deliveredTime = now
	}
	p := packet.Packet{
		Flow:        s.flow,
		Seq:         seg * int64(s.mss),
		Len:         int32(s.mss),
		Retrans:     retrans,
		SentAt:      now,
		Delivered:   int64(s.delivered),
		DeliveredAt: s.deliveredTime,
		FirstSentAt: s.firstSentTime,
	}
	if s.ecn && !retrans {
		p.ECT = true
		if s.sendCWR {
			p.CWR = true
			s.sendCWR = false
		}
	}
	s.stats.SegmentsSent++
	if retrans {
		s.stats.Retransmissions++
	}
	if !s.rtoTimer.Pending() {
		s.rtoTimer.Reset(s.rto())
	}
	s.armTLP()
	if rate := s.cc.PacingRate(); rate > 0 {
		gap := rate.TransmissionTime(p.WireBytes())
		base := s.nextSendTime
		if now > base {
			base = now
		}
		s.nextSendTime = base + gap
	}
	s.out(p)
}
