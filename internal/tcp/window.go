package tcp

import (
	"fmt"

	"ccatscale/internal/audit"
	"ccatscale/internal/sim"
	"ccatscale/internal/units"
)

// segState tracks one in-window segment through the SACK scoreboard.
type segState uint8

const (
	// segSent: transmitted once, presumed in flight.
	segSent segState = iota
	// segSacked: selectively acknowledged by the receiver.
	segSacked
	// segLost: presumed dropped (FACK rule or RTO); awaiting
	// retransmission.
	segLost
	// segRtx: retransmitted, the new copy presumed in flight.
	segRtx
)

// reorderWindowSegments is the forward-marking threshold: a hole is
// declared lost once any segment this far beyond it has been SACKed.
// The simulated network is strictly FIFO with fixed delays — it can
// never reorder — so the RACK-equivalent window is zero: one SACKed
// segment beyond a hole proves the hole is a loss. (Classic FACK used
// three to tolerate real-world reordering; modern Linux RACK converges
// to the same behavior on non-reordering paths.)
const reorderWindowSegments = 1

// sendWindow is the sender's per-segment scoreboard between snd.una and
// snd.nxt. All segments are MSS-sized (the experiment workload is an
// infinite byte stream), so state lives in a dense ring indexed by
// segment number.
//
// The window maintains the "pipe" estimate (RFC 6675): bytes believed
// in flight, adjusted as segments are sent, SACKed, declared lost,
// retransmitted, and cumulatively acknowledged.
type sendWindow struct {
	mss units.ByteCount

	base int64 // segment index of snd.una
	next int64 // segment index of snd.nxt

	ring   []segState
	sentAt []sim.Time // last transmission time, parallel to ring
	off    int        // ring position of segment 'base'

	pipe units.ByteCount

	highestSacked int64 // highest SACKed segment index; -1 when none
	sackedCount   int
	lostCount     int // segments currently in segLost

	// maxSackedSent is the latest transmission time among SACKed
	// segments: anything transmitted before it and still unacknowledged
	// is lost (RACK with a zero reordering window — valid because the
	// simulated network is strictly FIFO).
	maxSackedSent sim.Time

	lossScan int64 // next index to examine for forward loss marking
	rtxScan  int64 // lowest index that may still hold a LOST segment

	// rtxLog records retransmissions in send order so stale (dropped)
	// retransmissions anywhere in the window can be re-detected in
	// O(1) amortized time: entries older than maxSackedSent are popped
	// and, if still unacknowledged, re-marked lost.
	rtxLog []rtxEntry
}

type rtxEntry struct {
	seg    int64
	sentAt sim.Time
}

func newSendWindow(mss units.ByteCount) *sendWindow {
	return &sendWindow{
		mss:           mss,
		ring:          make([]segState, 256),
		sentAt:        make([]sim.Time, 256),
		highestSacked: -1,
	}
}

// Pipe returns the current in-flight byte estimate.
func (w *sendWindow) Pipe() units.ByteCount { return w.pipe }

// InWindow reports how many segments are tracked (snd.nxt − snd.una).
func (w *sendWindow) InWindow() int64 { return w.next - w.base }

// Una returns the first unacknowledged segment index.
func (w *sendWindow) Una() int64 { return w.base }

// Nxt returns the next-to-send segment index.
func (w *sendWindow) Nxt() int64 { return w.next }

func (w *sendWindow) pos(seg int64) int {
	return (w.off + int(seg-w.base)) % len(w.ring)
}

func (w *sendWindow) state(seg int64) segState { return w.ring[w.pos(seg)] }

func (w *sendWindow) setState(seg int64, s segState) { w.ring[w.pos(seg)] = s }

// ExtendOne registers the transmission of the next new segment at time
// now and returns its index.
func (w *sendWindow) ExtendOne(now sim.Time) int64 {
	if int(w.next-w.base) == len(w.ring) {
		w.grow()
	}
	seg := w.next
	w.next++
	w.setState(seg, segSent)
	w.sentAt[w.pos(seg)] = now
	w.pipe += w.mss
	return seg
}

func (w *sendWindow) grow() {
	n := int(w.next - w.base)
	bigger := make([]segState, 2*len(w.ring))
	biggerAt := make([]sim.Time, 2*len(w.ring))
	for i := 0; i < n; i++ {
		bigger[i] = w.ring[(w.off+i)%len(w.ring)]
		biggerAt[i] = w.sentAt[(w.off+i)%len(w.ring)]
	}
	w.ring = bigger
	w.sentAt = biggerAt
	w.off = 0
}

// Advance moves snd.una forward to newBase (exclusive upper bound of
// acknowledged segments) and returns the number of bytes newly
// delivered by this cumulative ACK — segments not previously SACKed.
func (w *sendWindow) Advance(newBase int64) units.ByteCount {
	if newBase <= w.base {
		return 0
	}
	if newBase > w.next {
		panic(fmt.Sprintf("tcp: cumulative ACK beyond snd.nxt: %d > %d", newBase, w.next))
	}
	var delivered units.ByteCount
	for seg := w.base; seg < newBase; seg++ {
		switch w.state(seg) {
		case segSent, segRtx:
			w.pipe -= w.mss
			delivered += w.mss
		case segLost:
			// Presumed lost but cumulatively acknowledged: the original
			// arrived after all; pipe was already deducted at marking.
			delivered += w.mss
			w.lostCount--
		case segSacked:
			w.sackedCount--
			// Already counted as delivered when SACKed.
		}
	}
	w.off = w.pos(newBase)
	w.base = newBase
	if w.lossScan < w.base {
		w.lossScan = w.base
	}
	if w.rtxScan < w.base {
		w.rtxScan = w.base
	}
	if w.highestSacked < w.base {
		w.highestSacked = -1
	}
	return delivered
}

// Sack marks segment seg as selectively acknowledged and returns the
// bytes newly delivered (0 when the segment was already SACKed or out
// of window).
func (w *sendWindow) Sack(seg int64) units.ByteCount {
	if seg < w.base || seg >= w.next {
		return 0
	}
	switch w.state(seg) {
	case segSacked:
		return 0
	case segSent, segRtx:
		w.pipe -= w.mss
	case segLost:
		// The copy we wrote off arrived; the pending retransmission is
		// cancelled by the state change below.
		w.lostCount--
	}
	w.setState(seg, segSacked)
	w.sackedCount++
	if seg > w.highestSacked {
		w.highestSacked = seg
	}
	if t := w.sentAt[w.pos(seg)]; t > w.maxSackedSent {
		w.maxSackedSent = t
	}
	return w.mss
}

// MarkLost applies the forward-marking rule: every un-SACKed,
// un-retransmitted segment at least reorderWindowSegments below the
// highest SACKed segment is declared lost. It returns the number of
// bytes newly marked.
func (w *sendWindow) MarkLost() units.ByteCount {
	if w.highestSacked < 0 {
		return 0
	}
	limit := w.highestSacked - reorderWindowSegments
	var lost units.ByteCount
	for seg := max64(w.lossScan, w.base); seg <= limit; seg++ {
		if w.state(seg) == segSent {
			w.setState(seg, segLost)
			w.pipe -= w.mss
			lost += w.mss
			w.lostCount++
			if seg < w.rtxScan {
				w.rtxScan = seg
			}
		}
	}
	if limit+1 > w.lossScan {
		w.lossScan = limit + 1
	}
	return lost
}

// MarkAllLost declares every outstanding un-SACKed segment lost (RTO
// handling) and returns the bytes marked.
func (w *sendWindow) MarkAllLost() units.ByteCount {
	var lost units.ByteCount
	for seg := w.base; seg < w.next; seg++ {
		switch w.state(seg) {
		case segSent, segRtx:
			w.setState(seg, segLost)
			w.pipe -= w.mss
			lost += w.mss
			w.lostCount++
		}
	}
	w.rtxScan = w.base
	w.lossScan = w.base
	return lost
}

// NextLost returns the oldest segment awaiting retransmission. The
// lost counter makes the no-loss fast path O(1); the forward-only scan
// pointer amortizes the rest.
func (w *sendWindow) NextLost() (int64, bool) {
	if w.lostCount == 0 {
		return 0, false
	}
	for seg := max64(w.rtxScan, w.base); seg < w.next; seg++ {
		if w.state(seg) == segLost {
			w.rtxScan = seg
			return seg, true
		}
	}
	panic("tcp: lostCount > 0 but no lost segment found")
}

// MarkRetransmitted transitions a lost segment back into flight at time
// now.
func (w *sendWindow) MarkRetransmitted(seg int64, now sim.Time) {
	if w.state(seg) != segLost {
		panic(fmt.Sprintf("tcp: retransmitting segment %d in state %d", seg, w.state(seg)))
	}
	w.setState(seg, segRtx)
	w.sentAt[w.pos(seg)] = now
	w.pipe += w.mss
	w.lostCount--
	w.rtxLog = append(w.rtxLog, rtxEntry{seg: seg, sentAt: now})
}

// MarkStaleRtxLost re-marks retransmissions whose copies were provably
// lost: a SACK exists for data transmitted after them, and the network
// is FIFO, so the retransmission cannot still be in flight. Without
// this, a dropped retransmission pins snd.una until the RTO fires.
// Returns the bytes newly marked.
//
// The retransmission log is in send order, so exactly the stale prefix
// is popped — O(1) amortized per retransmission over the connection's
// lifetime.
func (w *sendWindow) MarkStaleRtxLost() units.ByteCount {
	var lost units.ByteCount
	i := 0
	for ; i < len(w.rtxLog); i++ {
		e := w.rtxLog[i]
		if e.sentAt >= w.maxSackedSent {
			break
		}
		if e.seg < w.base || e.seg >= w.next {
			continue // already cumulatively acknowledged
		}
		// Only act if this entry describes the segment's latest
		// incarnation (it may have been SACKed, acknowledged, or
		// re-retransmitted since).
		if w.state(e.seg) != segRtx || w.sentAt[w.pos(e.seg)] != e.sentAt {
			continue
		}
		w.setState(e.seg, segLost)
		w.pipe -= w.mss
		lost += w.mss
		w.lostCount++
		if e.seg < w.rtxScan {
			w.rtxScan = e.seg
		}
	}
	w.rtxLog = w.rtxLog[i:]
	if len(w.rtxLog) == 0 {
		w.rtxLog = nil // release the backing array once drained
	}
	return lost
}

// audit recounts the SACK scoreboard from first principles and compares
// against the incrementally maintained counters: the pipe estimate must
// equal the bytes in segSent/segRtx states (RFC 6675's definition under
// this transport's accounting), and the SACKed/lost counters must match
// the ring. The recount is O(window), so the sender runs it
// periodically rather than per ACK.
func (w *sendWindow) audit(a *audit.Auditor, flow int32) {
	if w.base > w.next {
		a.Reportf("tcp/una-beyond-nxt", flow, "snd.una %d beyond snd.nxt %d", w.base, w.next)
		return
	}
	var pipe units.ByteCount
	sacked, lost := 0, 0
	for seg := w.base; seg < w.next; seg++ {
		switch w.state(seg) {
		case segSent, segRtx:
			pipe += w.mss
		case segSacked:
			sacked++
		case segLost:
			lost++
		}
	}
	if pipe != w.pipe {
		a.Reportf("tcp/scoreboard-pipe", flow,
			"pipe counter %d != recounted in-flight bytes %d (window [%d, %d))",
			w.pipe, pipe, w.base, w.next)
	}
	if sacked != w.sackedCount {
		a.Reportf("tcp/scoreboard-sacked", flow,
			"sacked counter %d != recounted %d", w.sackedCount, sacked)
	}
	if lost != w.lostCount {
		a.Reportf("tcp/scoreboard-lost", flow,
			"lost counter %d != recounted %d", w.lostCount, lost)
	}
	if w.highestSacked >= w.next {
		a.Reportf("tcp/scoreboard-sack-range", flow,
			"highest SACKed segment %d at or beyond snd.nxt %d", w.highestSacked, w.next)
	}
}

// HasLost reports whether any segment awaits retransmission.
func (w *sendWindow) HasLost() bool { return w.lostCount > 0 }

// LostSegments returns the number of segments currently marked lost.
func (w *sendWindow) LostSegments() int { return w.lostCount }

// SackedSegments returns the number of currently SACKed segments.
func (w *sendWindow) SackedSegments() int { return w.sackedCount }

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
