package tcp

import (
	"testing"

	"ccatscale/internal/cca"
	"ccatscale/internal/sim"
	"ccatscale/internal/units"
)

// TestSenderTimerChurnZeroAlloc budgets the RTO/TLP/pacing timer paths
// directly: with the engine's event pool primed, rearming any of the
// sender's timers — the per-ACK pattern — must not allocate.
func TestSenderTimerChurnZeroAlloc(t *testing.T) {
	n := newTestNet(t, 20*units.MbitPerSec, 3*units.MB,
		[]sim.Time{20 * sim.Millisecond}, []cca.CCA{cca.NewReno(units.MSS)})
	s := n.senders[0]
	// Prime the pool with a few arm/disarm cycles.
	for i := 0; i < 64; i++ {
		s.rtoTimer.Reset(s.rto())
		s.paceTimer.Reset(sim.Millisecond)
		s.tlpTimer.Reset(sim.Millisecond)
	}
	allocs := testing.AllocsPerRun(1000, func() {
		s.rtoTimer.Reset(s.rto())
		s.paceTimer.Reset(sim.Millisecond)
		s.tlpTimer.Reset(sim.Millisecond)
	})
	if allocs != 0 {
		t.Fatalf("timer rearm allocates %.1f objects per cycle, want 0", allocs)
	}
	s.rtoTimer.Stop()
	s.paceTimer.Stop()
	s.tlpTimer.Stop()
}

// TestSteadyStateFlowAllocBudget runs a real Reno flow over the
// dumbbell past slow start, then meters allocations per simulated
// 100 ms window. With pooled events, pooled deliveries, the reusable
// port transmit event, and the pre-sized ring, the steady-state
// per-window allocation count is near zero — the budget below is a
// regression tripwire for reintroduced per-packet garbage.
func TestSteadyStateFlowAllocBudget(t *testing.T) {
	rate := 50 * units.MbitPerSec
	n := newTestNet(t, rate, units.BDP(rate, 100*sim.Millisecond),
		[]sim.Time{20 * sim.Millisecond}, []cca.CCA{cca.NewReno(units.MSS)})
	n.start()
	n.eng.Run(5 * sim.Second) // past slow start, pools primed

	const window = 100 * sim.Millisecond
	allocs := testing.AllocsPerRun(20, func() {
		n.eng.Run(n.eng.Now() + window)
	})
	// ~430 data packets traverse the dumbbell per window at 50 Mbps.
	// Budget far below one alloc per packet; generous enough to ignore
	// amortized growth of long-lived buffers.
	const budget = 32.0
	if allocs > budget {
		t.Fatalf("steady-state flow allocates %.1f objects per %v window (budget %.0f)",
			allocs, window, budget)
	}
	if n.senders[0].Stats().DeliveredBytes == 0 {
		t.Fatal("flow made no progress")
	}
}
