package tcp

import (
	"testing"

	"ccatscale/internal/cca"
	"ccatscale/internal/netem"
	"ccatscale/internal/packet"
	"ccatscale/internal/sim"
	"ccatscale/internal/units"
)

// testNet wires senders and receivers through a dumbbell bottleneck —
// a miniature version of the experiment harness.
type testNet struct {
	eng       *sim.Engine
	db        *netem.Dumbbell
	senders   []*Sender
	receivers []*Receiver
	drops     int
}

func newTestNet(t *testing.T, rate units.Bandwidth, buffer units.ByteCount, rtts []sim.Time, ccas []cca.CCA) *testNet {
	t.Helper()
	n := &testNet{eng: sim.NewEngine()}
	n.db = netem.NewDumbbell(n.eng, netem.DumbbellConfig{
		Rate:   rate,
		Buffer: buffer,
		RTT:    rtts,
		OnDrop: func(_ sim.Time, _ packet.Packet) { n.drops++ },
	})
	for i := range rtts {
		flow := int32(i)
		n.senders = append(n.senders, NewSender(n.eng, flow, Config{
			CCA:    ccas[i],
			Output: n.db.SendData,
		}))
		n.receivers = append(n.receivers, NewReceiver(n.eng, flow, ReceiverConfig{DelAckDelay: DelayedAckTimeout}, n.db.SendAck))
	}
	n.db.SetEndpoints(
		func(p packet.Packet) { n.receivers[p.Flow].OnData(p) },
		func(p packet.Packet) { n.senders[p.Flow].OnAck(p) },
	)
	return n
}

func (n *testNet) start() {
	for _, s := range n.senders {
		s.Start(0)
	}
}

func TestSingleRenoFlowSaturatesLink(t *testing.T) {
	rate := 20 * units.MbitPerSec
	rtt := 20 * sim.Millisecond
	buffer := units.BDP(rate, 200*sim.Millisecond)
	n := newTestNet(t, rate, buffer, []sim.Time{rtt}, []cca.CCA{cca.NewReno(units.MSS)})
	n.start()
	n.eng.Run(20 * sim.Second)

	delivered := n.receivers[0].Stats().Delivered
	goodput := units.Throughput(delivered, 20*sim.Second)
	// Goodput should be near line rate minus header overhead (~95%).
	if float64(goodput) < 0.85*float64(rate) {
		t.Fatalf("goodput = %v on a %v link", goodput, rate)
	}
	util := n.db.Port().Utilization()
	if util < 0.9 {
		t.Fatalf("utilization = %v, want > 0.9", util)
	}
}

func TestRenoExperiencesHalvingsUnderDropTail(t *testing.T) {
	rate := 20 * units.MbitPerSec
	rtt := 20 * sim.Millisecond
	// A small buffer forces periodic loss.
	buffer := units.BDP(rate, 40*sim.Millisecond)
	n := newTestNet(t, rate, buffer, []sim.Time{rtt}, []cca.CCA{cca.NewReno(units.MSS)})
	n.start()
	n.eng.Run(30 * sim.Second)

	st := n.senders[0].Stats()
	if n.drops == 0 {
		t.Fatal("no drops despite 1-BDP-at-40ms buffer and saturating flow")
	}
	if st.FastRecoveries == 0 {
		t.Fatal("no fast recoveries despite drops (fast retransmit broken?)")
	}
	if st.RTOs > st.FastRecoveries/2 {
		t.Fatalf("too many RTOs (%d) vs recoveries (%d): SACK recovery not working", st.RTOs, st.FastRecoveries)
	}
	if st.Retransmissions == 0 {
		t.Fatal("drops but no retransmissions")
	}
	// Every dropped segment must eventually be repaired: receiver
	// delivery gap equals at most the current window.
	recvd := int64(n.receivers[0].Stats().Delivered)
	sent := n.senders[0].window.Nxt() * int64(units.MSS)
	if sent-recvd > int64(st.Cwnd)+int64(units.MSS)*64 {
		t.Fatalf("delivery hole: sent %d delivered %d", sent, recvd)
	}
}

func TestRTTInflatesWithStandingQueue(t *testing.T) {
	rate := 20 * units.MbitPerSec
	rtt := 20 * sim.Millisecond
	buffer := units.BDP(rate, 200*sim.Millisecond)
	n := newTestNet(t, rate, buffer, []sim.Time{rtt}, []cca.CCA{cca.NewReno(units.MSS)})
	n.start()
	n.eng.Run(20 * sim.Second)
	st := n.senders[0].Stats()
	if st.MinRTT < rtt || st.MinRTT > rtt+5*sim.Millisecond {
		t.Fatalf("MinRTT = %v, want ≈%v", st.MinRTT, rtt)
	}
	// With a drop-tail buffer of 10× the base BDP, mean RTT must sit
	// well above the base (standing queue).
	if st.MeanRTT < 2*rtt {
		t.Fatalf("MeanRTT = %v shows no queueing on a deep buffer", st.MeanRTT)
	}
}

func TestTwoRenoFlowsShareFairly(t *testing.T) {
	rate := 20 * units.MbitPerSec
	rtt := 20 * sim.Millisecond
	buffer := units.BDP(rate, 200*sim.Millisecond)
	n := newTestNet(t, rate, buffer,
		[]sim.Time{rtt, rtt},
		[]cca.CCA{cca.NewReno(units.MSS), cca.NewReno(units.MSS)})
	n.start()
	n.eng.Run(60 * sim.Second)
	a := float64(n.receivers[0].Stats().Delivered)
	b := float64(n.receivers[1].Stats().Delivered)
	jfi := (a + b) * (a + b) / (2 * (a*a + b*b))
	if jfi < 0.85 {
		t.Fatalf("two-flow JFI = %v (shares %v/%v)", jfi, a, b)
	}
}

func TestCubicFlowSaturatesLink(t *testing.T) {
	rate := 20 * units.MbitPerSec
	rtt := 20 * sim.Millisecond
	buffer := units.BDP(rate, 200*sim.Millisecond)
	n := newTestNet(t, rate, buffer, []sim.Time{rtt}, []cca.CCA{cca.NewCubic(units.MSS)})
	n.start()
	n.eng.Run(20 * sim.Second)
	goodput := units.Throughput(n.receivers[0].Stats().Delivered, 20*sim.Second)
	if float64(goodput) < 0.85*float64(rate) {
		t.Fatalf("cubic goodput = %v on a %v link", goodput, rate)
	}
}

func TestBBRFlowSaturatesLinkWithShallowQueue(t *testing.T) {
	rate := 20 * units.MbitPerSec
	rtt := 20 * sim.Millisecond
	buffer := units.BDP(rate, 200*sim.Millisecond)
	bbr := cca.NewBBR(units.MSS, sim.NewRNG(1))
	n := newTestNet(t, rate, buffer, []sim.Time{rtt}, []cca.CCA{bbr})
	n.start()
	n.eng.Run(20 * sim.Second)
	goodput := units.Throughput(n.receivers[0].Stats().Delivered, 20*sim.Second)
	if float64(goodput) < 0.8*float64(rate) {
		t.Fatalf("bbr goodput = %v on a %v link", goodput, rate)
	}
	// BBR should not sustain a large standing queue: mean RTT stays
	// near the base RTT, unlike loss-based CCAs on the same buffer.
	st := n.senders[0].Stats()
	if st.MeanRTT > 3*rtt {
		t.Fatalf("BBR MeanRTT = %v: standing queue too deep", st.MeanRTT)
	}
	if bbr.State() == "STARTUP" {
		t.Fatal("BBR still in STARTUP after 20s")
	}
}

func TestSenderRecoversFromBlackholeViaRTO(t *testing.T) {
	// A custom sink that eats every data packet after the first 100:
	// only an RTO can recover, and backoff must kick in.
	eng := sim.NewEngine()
	var sender *Sender
	recv := NewReceiver(eng, 0, ReceiverConfig{DelAckDelay: DelayedAckTimeout}, func(p packet.Packet) {
		eng.After(10*sim.Millisecond, func() { sender.OnAck(p) })
	})
	sent := 0
	sender = NewSender(eng, 0, Config{
		CCA: cca.NewReno(units.MSS),
		Output: func(p packet.Packet) {
			sent++
			if sent <= 100 {
				eng.After(10*sim.Millisecond, func() { recv.OnData(p) })
			}
		},
	})
	sender.Start(0)
	eng.Run(10 * sim.Second)
	st := sender.Stats()
	if st.RTOs == 0 {
		t.Fatal("no RTO despite blackhole")
	}
	if st.RTOs < 3 {
		t.Fatalf("RTOs = %d; expected repeated backoff timeouts", st.RTOs)
	}
	if st.Cwnd != units.MSS {
		t.Fatalf("cwnd = %v during blackhole, want 1 MSS", st.Cwnd)
	}
}

func TestSenderConfigValidation(t *testing.T) {
	eng := sim.NewEngine()
	for name, cfg := range map[string]Config{
		"nil cca":    {Output: func(packet.Packet) {}},
		"nil output": {CCA: cca.NewReno(units.MSS)},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			NewSender(eng, 0, cfg)
		}()
	}
}

func TestDeliveredNeverExceedsSent(t *testing.T) {
	rate := 10 * units.MbitPerSec
	n := newTestNet(t, rate, units.BDP(rate, 100*sim.Millisecond),
		[]sim.Time{20 * sim.Millisecond}, []cca.CCA{cca.NewReno(units.MSS)})
	n.start()
	n.eng.Run(10 * sim.Second)
	st := n.senders[0].Stats()
	sentBytes := units.ByteCount(st.SegmentsSent) * units.MSS
	if st.DeliveredBytes > sentBytes {
		t.Fatalf("delivered %v > sent %v", st.DeliveredBytes, sentBytes)
	}
	if got := n.receivers[0].Stats().Delivered; got > sentBytes {
		t.Fatalf("receiver delivered %v > sent %v", got, sentBytes)
	}
	if st.DeliveredBytes == 0 {
		t.Fatal("nothing delivered")
	}
}

func TestPacingSpacesTransmissions(t *testing.T) {
	// A pacing CCA must not emit back-to-back bursts: check inter-send
	// gaps once the model is warm, with a real bottleneck providing the
	// bandwidth signal.
	rate := 20 * units.MbitPerSec
	rtt := 20 * sim.Millisecond
	n := newTestNet(t, rate, units.BDP(rate, 200*sim.Millisecond),
		[]sim.Time{rtt}, []cca.CCA{cca.NewBBR(units.MSS, sim.NewRNG(3))})
	var sendTimes []sim.Time
	// Rebuild the sender with an output tap in front of the dumbbell.
	n.senders[0] = NewSender(n.eng, 0, Config{
		CCA: cca.NewBBR(units.MSS, sim.NewRNG(3)),
		Output: func(p packet.Packet) {
			sendTimes = append(sendTimes, n.eng.Now())
			n.db.SendData(p)
		},
	})
	n.start()
	n.eng.Run(5 * sim.Second)
	if len(sendTimes) < 100 {
		t.Fatalf("only %d transmissions", len(sendTimes))
	}
	// After warmup, no more than a handful of same-instant sends in a
	// row (initial window burst aside).
	burst, maxBurst := 1, 1
	for i := len(sendTimes) / 2; i < len(sendTimes)-1; i++ {
		if sendTimes[i+1] == sendTimes[i] {
			burst++
			if burst > maxBurst {
				maxBurst = burst
			}
		} else {
			burst = 1
		}
	}
	if maxBurst > 4 {
		t.Fatalf("pacing allowed bursts of %d same-instant sends", maxBurst)
	}
}

func TestFiniteTransferCompletes(t *testing.T) {
	rate := 10 * units.MbitPerSec
	n := newTestNet(t, rate, units.BDP(rate, 100*sim.Millisecond),
		[]sim.Time{20 * sim.Millisecond}, []cca.CCA{cca.NewReno(units.MSS)})
	completedAt := sim.Time(0)
	size := units.ByteCount(100) * units.MSS
	n.senders[0] = NewSender(n.eng, 0, Config{
		CCA:           cca.NewReno(units.MSS),
		Output:        n.db.SendData,
		TransferBytes: size,
		OnComplete:    func() { completedAt = n.eng.Now() },
	})
	n.start()
	n.eng.Run(30 * sim.Second)
	if completedAt == 0 {
		t.Fatal("finite transfer never completed")
	}
	if !n.senders[0].Done() {
		t.Fatal("Done() false after completion")
	}
	st := n.senders[0].Stats()
	if st.SegmentsSent < 100 {
		t.Fatalf("sent %d segments, want ≥100", st.SegmentsSent)
	}
	// No more data should be produced afterwards.
	sentAtDone := st.SegmentsSent
	n.eng.Run(40 * sim.Second)
	if got := n.senders[0].Stats().SegmentsSent; got != sentAtDone {
		t.Fatalf("sender kept transmitting after completion: %d → %d", sentAtDone, got)
	}
	// The floor on completion time: size/rate + base RTT.
	floor := rate.TransmissionTime(size)
	if completedAt < floor {
		t.Fatalf("completed at %v, below serialization floor %v", completedAt, floor)
	}
	if got := n.receivers[0].Stats().Delivered; got != size {
		t.Fatalf("receiver got %v, want %v", got, size)
	}
}

func TestFiniteTransferCompletesUnderLoss(t *testing.T) {
	eng := sim.NewEngine()
	rng := sim.NewRNG(4)
	rate := 10 * units.MbitPerSec
	db := netem.NewDumbbell(eng, netem.DumbbellConfig{
		Rate:   rate,
		Buffer: units.BDP(rate, 100*sim.Millisecond),
		RTT:    []sim.Time{20 * sim.Millisecond},
	})
	var recv *Receiver
	var send *Sender
	done := false
	imp := netem.NewImpairment(eng, rng, netem.ImpairmentConfig{LossProb: 0.1},
		func(p packet.Packet) { recv.OnData(p) })
	db.SetEndpoints(imp.Send, func(p packet.Packet) { send.OnAck(p) })
	recv = NewReceiver(eng, 0, DefaultReceiverConfig(), db.SendAck)
	size := units.ByteCount(200) * units.MSS
	send = NewSender(eng, 0, Config{
		CCA:           cca.NewReno(units.MSS),
		Output:        db.SendData,
		TransferBytes: size,
		OnComplete:    func() { done = true },
	})
	send.Start(0)
	eng.Run(60 * sim.Second)
	if !done {
		t.Fatal("transfer with 10% loss never completed (tail-loss handling broken?)")
	}
	if got := recv.Stats().Delivered; got != size {
		t.Fatalf("delivered %v, want %v", got, size)
	}
}

func TestFiniteTransferRoundsUpPartialSegment(t *testing.T) {
	eng := sim.NewEngine()
	var originals int
	s := NewSender(eng, 0, Config{
		CCA: cca.NewReno(units.MSS),
		Output: func(p packet.Packet) {
			if !p.Retrans { // the blackholed flow will also RTO-retransmit
				originals++
			}
		},
		TransferBytes: units.MSS + 1, // needs 2 segments
	})
	s.Start(0)
	eng.Run(sim.Second)
	if originals != 2 {
		t.Fatalf("sent %d original segments for MSS+1 bytes, want 2", originals)
	}
}
