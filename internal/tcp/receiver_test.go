package tcp

import (
	"testing"

	"ccatscale/internal/packet"
	"ccatscale/internal/sim"
	"ccatscale/internal/units"
)

const mss = int64(units.MSS)

func seg(n int64) packet.Packet {
	return packet.Packet{Seq: n * mss, Len: int32(mss), SentAt: sim.Time(n + 1)}
}

func newTestReceiver(t *testing.T) (*sim.Engine, *Receiver, *[]packet.Packet) {
	t.Helper()
	eng := sim.NewEngine()
	var acks []packet.Packet
	r := NewReceiver(eng, 0, ReceiverConfig{DelAckDelay: DelayedAckTimeout}, func(p packet.Packet) { acks = append(acks, p) })
	return eng, r, &acks
}

func TestReceiverAckEverySecondSegment(t *testing.T) {
	eng, r, acks := newTestReceiver(t)
	r.OnData(seg(0))
	if len(*acks) != 0 {
		t.Fatal("first in-order segment acked immediately despite delayed ACKs")
	}
	r.OnData(seg(1))
	if len(*acks) != 1 {
		t.Fatalf("second segment should force an ACK; got %d", len(*acks))
	}
	if (*acks)[0].CumAck != 2*mss {
		t.Fatalf("CumAck = %d, want %d", (*acks)[0].CumAck, 2*mss)
	}
	eng.Run(sim.Second)
	if len(*acks) != 1 {
		t.Fatal("spurious delayed-ACK fired")
	}
}

func TestReceiverDelayedAckTimeout(t *testing.T) {
	eng, r, acks := newTestReceiver(t)
	eng.Schedule(0, func() { r.OnData(seg(0)) })
	eng.Run(sim.Second)
	if len(*acks) != 1 {
		t.Fatalf("delayed ACK never fired; acks = %d", len(*acks))
	}
	// Timer fires at the 40 ms delayed-ACK timeout.
	if got := (*acks)[0]; got.CumAck != mss {
		t.Fatalf("CumAck = %d", got.CumAck)
	}
}

func TestReceiverImmediateAckDisabledDelack(t *testing.T) {
	eng := sim.NewEngine()
	var acks []packet.Packet
	r := NewReceiver(eng, 0, ReceiverConfig{}, func(p packet.Packet) { acks = append(acks, p) })
	r.OnData(seg(0))
	if len(acks) != 1 {
		t.Fatal("delack-disabled receiver withheld an ACK")
	}
}

func TestReceiverOutOfOrderGeneratesSack(t *testing.T) {
	_, r, acks := newTestReceiver(t)
	r.OnData(seg(0))
	r.OnData(seg(2)) // hole at segment 1
	if len(*acks) != 1 {
		t.Fatalf("out-of-order arrival did not force an ACK")
	}
	a := (*acks)[0]
	if a.CumAck != mss {
		t.Fatalf("CumAck = %d, want %d", a.CumAck, mss)
	}
	if a.NumSack != 1 || a.Sack[0].Start != 2*mss || a.Sack[0].End != 3*mss {
		t.Fatalf("SACK = %+v", a.Sack[:a.NumSack])
	}
}

func TestReceiverFillingHoleAcksImmediately(t *testing.T) {
	_, r, acks := newTestReceiver(t)
	r.OnData(seg(0))
	r.OnData(seg(2))
	r.OnData(seg(1)) // fills the hole
	last := (*acks)[len(*acks)-1]
	if last.CumAck != 3*mss {
		t.Fatalf("CumAck after fill = %d, want %d", last.CumAck, 3*mss)
	}
	if last.NumSack != 0 {
		t.Fatalf("stale SACK blocks after fill: %+v", last.Sack[:last.NumSack])
	}
}

func TestReceiverSackBlockRecencyOrder(t *testing.T) {
	_, r, acks := newTestReceiver(t)
	r.OnData(seg(0))
	r.OnData(seg(2))
	r.OnData(seg(4))
	r.OnData(seg(6))
	r.OnData(seg(8))
	last := (*acks)[len(*acks)-1]
	if last.NumSack != packet.MaxSackBlocks {
		t.Fatalf("NumSack = %d, want %d", last.NumSack, packet.MaxSackBlocks)
	}
	// Most recent block (segment 8) first.
	if last.Sack[0].Start != 8*mss {
		t.Fatalf("first SACK block = %+v, want most recent", last.Sack[0])
	}
}

func TestReceiverMergesAdjacentOOORanges(t *testing.T) {
	_, r, acks := newTestReceiver(t)
	r.OnData(seg(0))
	r.OnData(seg(2))
	r.OnData(seg(3)) // extends [2,3) to [2,4)
	last := (*acks)[len(*acks)-1]
	if last.NumSack != 1 {
		t.Fatalf("NumSack = %d, want 1 merged block", last.NumSack)
	}
	if last.Sack[0].Start != 2*mss || last.Sack[0].End != 4*mss {
		t.Fatalf("merged block = %+v", last.Sack[0])
	}
}

func TestReceiverDuplicateSegment(t *testing.T) {
	_, r, acks := newTestReceiver(t)
	r.OnData(seg(0))
	r.OnData(seg(1))
	n := len(*acks)
	r.OnData(seg(0)) // spurious retransmission
	if len(*acks) != n+1 {
		t.Fatal("duplicate segment did not force an ACK")
	}
	if got := r.Stats(); got.DuplicateSegments != 1 {
		t.Fatalf("DuplicateSegments = %d", got.DuplicateSegments)
	}
}

func TestReceiverEchoesRateFieldsFromNewest(t *testing.T) {
	_, r, acks := newTestReceiver(t)
	p0 := seg(0)
	p0.SentAt = 100
	p0.Delivered = 0
	p0.DeliveredAt = 50
	p1 := seg(1)
	p1.SentAt = 200
	p1.Delivered = int64(units.MSS)
	p1.DeliveredAt = 60
	r.OnData(p0)
	r.OnData(p1)
	a := (*acks)[0]
	// RTT echo from the oldest…
	if a.AckedSentAt != 100 {
		t.Fatalf("AckedSentAt = %v, want 100 (oldest)", a.AckedSentAt)
	}
	// …rate echo from the newest.
	if a.RateSentAt != 200 || a.Delivered != int64(units.MSS) || a.DeliveredAt != 60 {
		t.Fatalf("rate echo wrong: %+v", a)
	}
}

func TestReceiverRetransEchoSuppressesRTT(t *testing.T) {
	_, r, acks := newTestReceiver(t)
	p := seg(0)
	p.Retrans = true
	r.OnData(p)
	r.OnData(seg(1))
	if a := (*acks)[0]; !a.AckedRetrans {
		t.Fatal("AckedRetrans not propagated from oldest pending segment")
	}
}

func TestReceiverDeliveredAccounting(t *testing.T) {
	_, r, _ := newTestReceiver(t)
	r.OnData(seg(0))
	r.OnData(seg(2))
	st := r.Stats()
	if st.Delivered != units.ByteCount(mss) {
		t.Fatalf("Delivered = %v, want 1 segment (ooo not delivered)", st.Delivered)
	}
	r.OnData(seg(1))
	if st := r.Stats(); st.Delivered != units.ByteCount(3*mss) {
		t.Fatalf("Delivered = %v, want 3 segments", st.Delivered)
	}
	if st := r.Stats(); st.OutOfOrderSegments != 1 || st.SegmentsReceived != 3 {
		t.Fatalf("counters: %+v", st)
	}
}
