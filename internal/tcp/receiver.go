package tcp

import (
	"sort"

	"ccatscale/internal/audit"
	"ccatscale/internal/packet"
	"ccatscale/internal/sim"
	"ccatscale/internal/units"
)

// Delayed-ACK and receive-offload parameters (RFC 1122 / Linux
// defaults).
const (
	// DelayedAckTimeout is the maximum time an ACK may be withheld.
	DelayedAckTimeout = 40 * sim.Millisecond

	// ackEverySegments acknowledges at least every second delivered
	// unit.
	ackEverySegments = 2

	// GROWindow is the default same-flow coalescing gap of the modeled
	// receive offload (GRO + NIC interrupt coalescing). Same-flow
	// segments that exit the bottleneck within this gap of each other
	// are aggregated and acknowledged with a single stretch ACK, as a
	// Linux receiver at ≥Gbps NIC rates does. At 100 Mbps a full-size
	// frame serializes in 121 µs, so EdgeScale traffic never coalesces
	// and plain delayed ACKs govern; at many Gbps, back-to-back runs
	// coalesce up to GROMaxSegments. This receive-path asymmetry is what
	// turns the at-scale sender into a micro-burst source — the
	// mechanism behind the paper's bursty at-scale losses (Finding 3).
	GROWindow = 100 * sim.Microsecond

	// GROMaxSegments caps one aggregate (64 KB of 1448-byte segments).
	GROMaxSegments = 44
)

// ReceiverConfig parameterizes the receive path.
type ReceiverConfig struct {
	// DelAckDelay is the delayed-ACK timeout; ≤0 disables delayed ACKs
	// (every delivered unit is acknowledged immediately).
	DelAckDelay sim.Time
	// GROWindow is the same-flow coalescing gap; ≤0 disables receive
	// offload.
	GROWindow sim.Time
	// GROMaxSegments caps a single aggregate; 0 picks GROMaxSegments.
	GROMaxSegments int
	// Audit enables the reassembly invariant checks (nil = off).
	Audit *audit.Auditor
}

// DefaultReceiverConfig models the paper's testbed receivers: Linux
// delayed ACKs plus GRO/interrupt coalescing.
func DefaultReceiverConfig() ReceiverConfig {
	return ReceiverConfig{
		DelAckDelay:    DelayedAckTimeout,
		GROWindow:      GROWindow,
		GROMaxSegments: GROMaxSegments,
	}
}

// ReceiverStats is a snapshot of receiver-side counters.
type ReceiverStats struct {
	// Delivered is the number of in-order bytes delivered to the
	// application (the goodput numerator for throughput metrics).
	Delivered units.ByteCount
	// SegmentsReceived counts all data segment arrivals.
	SegmentsReceived uint64
	// DuplicateSegments counts arrivals entirely below rcv.nxt
	// (spurious retransmissions).
	DuplicateSegments uint64
	// OutOfOrderSegments counts arrivals above rcv.nxt.
	OutOfOrderSegments uint64
	// AcksSent counts acknowledgments emitted.
	AcksSent uint64
	// StretchAcks counts ACKs that covered a coalesced run of more
	// than ackEverySegments segments.
	StretchAcks uint64
	// CESegments counts data arrivals carrying a CE mark.
	CESegments uint64
}

// oooRange is a received out-of-order byte range with a recency stamp
// for SACK block ordering.
type oooRange struct {
	start, end int64
	touched    uint64
}

// Receiver is the data sink side of a connection: it reassembles the
// byte stream, generates cumulative and selective acknowledgments, and
// models the delayed-ACK and receive-offload behavior of the paper's
// Linux receivers.
type Receiver struct {
	eng  *sim.Engine
	flow int32
	out  func(packet.Packet)
	cfg  ReceiverConfig

	rcvNxt int64
	ooo    []oooRange // sorted by start, disjoint
	touch  uint64

	// Delayed-ACK state: delivered units since the last ACK.
	delAck  *sim.Timer
	pending int

	// Receive-offload state: the in-progress same-flow aggregate.
	groTimer *sim.Timer
	groRun   int

	// ECN echo latch (RFC 3168 §6.1.3): set on any CE arrival, echoed
	// as ECE on every ACK until the sender confirms its reduction with
	// CWR. Never set without CE marks, so non-ECN runs are untouched.
	eceLatch bool

	// Echo state for the next (possibly delayed) ACK: RTT fields come
	// from the oldest unacknowledged arrival, rate fields from the
	// newest.
	haveOldest bool
	oldestEcho packet.Packet
	newestEcho packet.Packet

	stats ReceiverStats
}

// NewReceiver creates a receiver for the given flow, emitting ACKs via
// out.
func NewReceiver(eng *sim.Engine, flow int32, cfg ReceiverConfig, out func(packet.Packet)) *Receiver {
	if cfg.GROMaxSegments <= 0 {
		cfg.GROMaxSegments = GROMaxSegments
	}
	r := &Receiver{eng: eng, flow: flow, out: out, cfg: cfg}
	r.delAck = sim.NewTimer(eng, r.onDelAckTimeout)
	r.groTimer = sim.NewTimer(eng, r.onGROFlush)
	return r
}

// Stats returns a snapshot of the receiver counters.
func (r *Receiver) Stats() ReceiverStats {
	s := r.stats
	s.Delivered = units.ByteCount(r.rcvNxt)
	return s
}

// RcvNxt returns the next expected byte (cumulative ACK point).
func (r *Receiver) RcvNxt() int64 { return r.rcvNxt }

// OnData processes one arriving data segment.
func (r *Receiver) OnData(p packet.Packet) {
	if r.cfg.Audit != nil {
		prev := r.rcvNxt
		r.onData(p)
		r.auditReassembly(prev)
		return
	}
	r.onData(p)
}

func (r *Receiver) onData(p packet.Packet) {
	r.stats.SegmentsReceived++
	// CWR clears the echo latch before CE can re-arm it: a packet
	// carrying both announces the reduction and a fresh mark after it.
	if p.CWR {
		r.eceLatch = false
	}
	if p.CE {
		r.eceLatch = true
		r.stats.CESegments++
	}
	r.rememberEcho(p)
	switch {
	case p.End() <= r.rcvNxt:
		// Entirely old: a spurious retransmission. Re-ACK immediately
		// so the sender can move on.
		r.stats.DuplicateSegments++
		r.forceAck()
	case p.Seq == r.rcvNxt:
		r.rcvNxt = p.End()
		hadHoles := r.mergeContiguous()
		if hadHoles || len(r.ooo) > 0 {
			// Immediate ACK while reordering/loss is visible (RFC 5681
			// §4.2).
			r.forceAck()
			return
		}
		r.groRun++
		if r.cfg.GROWindow <= 0 || r.groRun >= r.cfg.GROMaxSegments {
			r.flushRun()
			return
		}
		// Keep aggregating while the same-flow run continues; flush
		// when the inter-arrival gap opens up.
		r.groTimer.Reset(r.cfg.GROWindow)
	default:
		// Out of order: record and ACK immediately (duplicate ACK with
		// SACK information).
		r.stats.OutOfOrderSegments++
		r.insertOOO(p.Seq, p.End())
		r.forceAck()
	}
}

// auditReassembly validates the reassembly state after one segment:
// rcv.nxt never moves backwards, and the out-of-order set is sorted,
// disjoint, and strictly above rcv.nxt (a range at or below it should
// have been merged). prevNxt is rcv.nxt before the segment was applied.
func (r *Receiver) auditReassembly(prevNxt int64) {
	a := r.cfg.Audit
	if r.rcvNxt < prevNxt {
		a.Reportf("tcp/rcvnxt-regressed", r.flow,
			"rcv.nxt moved backwards: %d -> %d", prevNxt, r.rcvNxt)
	}
	prevEnd := r.rcvNxt
	for i, rng := range r.ooo {
		if rng.start >= rng.end {
			a.Reportf("tcp/ooo-empty-range", r.flow,
				"out-of-order range %d is empty: [%d, %d)", i, rng.start, rng.end)
		}
		if rng.start <= prevEnd {
			a.Reportf("tcp/ooo-overlap", r.flow,
				"out-of-order range %d [%d, %d) not strictly above %d (rcv.nxt or previous range)",
				i, rng.start, rng.end, prevEnd)
		}
		prevEnd = rng.end
	}
}

// forceAck folds any in-progress aggregate into one immediately-sent
// acknowledgment.
func (r *Receiver) forceAck() {
	r.pending += r.groRun
	r.groRun = 0
	r.groTimer.Stop()
	r.sendAck()
}

// onGROFlush fires when the coalescing gap elapses without another
// same-flow segment.
func (r *Receiver) onGROFlush() { r.flushRun() }

// flushRun delivers the in-progress aggregate to the ACK policy: runs
// of two or more segments are acknowledged immediately (a stretch ACK);
// single segments go through classic delayed-ACK accounting.
func (r *Receiver) flushRun() {
	run := r.groRun
	r.groRun = 0
	r.groTimer.Stop()
	if run == 0 {
		return
	}
	r.pending += run
	if r.pending >= ackEverySegments || r.cfg.DelAckDelay <= 0 {
		r.sendAck()
		return
	}
	if !r.delAck.Pending() {
		r.delAck.Reset(r.cfg.DelAckDelay)
	}
}

// rememberEcho captures per-packet echo state for the next ACK.
func (r *Receiver) rememberEcho(p packet.Packet) {
	if !r.haveOldest {
		r.oldestEcho = p
		r.haveOldest = true
	}
	r.newestEcho = p
}

// mergeContiguous folds out-of-order ranges now contiguous with rcvNxt
// and reports whether any hole existed before this call.
func (r *Receiver) mergeContiguous() bool {
	had := len(r.ooo) > 0
	for len(r.ooo) > 0 && r.ooo[0].start <= r.rcvNxt {
		if r.ooo[0].end > r.rcvNxt {
			r.rcvNxt = r.ooo[0].end
		}
		r.ooo = r.ooo[1:]
	}
	return had
}

// insertOOO records [start, end) in the sorted disjoint range set.
func (r *Receiver) insertOOO(start, end int64) {
	r.touch++
	i := sort.Search(len(r.ooo), func(i int) bool { return r.ooo[i].end >= start })
	j := i
	for j < len(r.ooo) && r.ooo[j].start <= end {
		if r.ooo[j].start < start {
			start = r.ooo[j].start
		}
		if r.ooo[j].end > end {
			end = r.ooo[j].end
		}
		j++
	}
	merged := oooRange{start: start, end: end, touched: r.touch}
	r.ooo = append(r.ooo[:i], append([]oooRange{merged}, r.ooo[j:]...)...)
}

func (r *Receiver) onDelAckTimeout() {
	if r.pending > 0 {
		r.sendAck()
	}
}

// sendAck emits an acknowledgment reflecting the current reassembly
// state.
func (r *Receiver) sendAck() {
	ack := packet.Packet{
		Flow:   r.flow,
		Ack:    true,
		CumAck: r.rcvNxt,
		ECE:    r.eceLatch,
	}
	// RTT echo from the oldest pending arrival (TCP timestamp
	// semantics under delayed ACKs), rate echo from the newest.
	if r.haveOldest {
		ack.AckedSentAt = r.oldestEcho.SentAt
		ack.AckedRetrans = r.oldestEcho.Retrans
	}
	ack.Delivered = r.newestEcho.Delivered
	ack.DeliveredAt = r.newestEcho.DeliveredAt
	ack.FirstSentAt = r.newestEcho.FirstSentAt
	ack.RateSentAt = r.newestEcho.SentAt
	ack.AppLimited = r.newestEcho.AppLimited

	// SACK blocks: most recently touched ranges first, up to the
	// option-space limit.
	if len(r.ooo) > 0 {
		n := len(r.ooo)
		idx := make([]int, n)
		for i := range idx {
			idx[i] = i
		}
		sort.Slice(idx, func(a, b int) bool {
			return r.ooo[idx[a]].touched > r.ooo[idx[b]].touched
		})
		for k := 0; k < n && k < packet.MaxSackBlocks; k++ {
			rng := r.ooo[idx[k]]
			ack.Sack[ack.NumSack] = packet.SackBlock{Start: rng.start, End: rng.end}
			ack.NumSack++
		}
	}

	if r.pending > ackEverySegments {
		r.stats.StretchAcks++
	}
	r.pending = 0
	r.haveOldest = false
	r.delAck.Stop()
	r.stats.AcksSent++
	r.out(ack)
}
