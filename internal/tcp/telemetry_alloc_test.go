package tcp

import (
	"testing"

	"ccatscale/internal/cca"
	"ccatscale/internal/netem"
	"ccatscale/internal/packet"
	"ccatscale/internal/sim"
	"ccatscale/internal/telemetry"
	"ccatscale/internal/units"
)

// newTelemetryNet is newTestNet with a collector attached to every
// sender — the enabled-telemetry counterpart of the alloc-budget nets.
func newTelemetryNet(t *testing.T, rate units.Bandwidth, buffer units.ByteCount,
	rtts []sim.Time, ccas []cca.CCA, coll telemetry.Collector) *testNet {
	t.Helper()
	n := &testNet{eng: sim.NewEngine()}
	n.db = netem.NewDumbbell(n.eng, netem.DumbbellConfig{
		Rate:   rate,
		Buffer: buffer,
		RTT:    rtts,
		OnDrop: func(_ sim.Time, _ packet.Packet) { n.drops++ },
	})
	for i := range rtts {
		flow := int32(i)
		n.senders = append(n.senders, NewSender(n.eng, flow, Config{
			CCA:       ccas[i],
			Output:    n.db.SendData,
			Telemetry: coll,
		}))
		n.receivers = append(n.receivers, NewReceiver(n.eng, flow,
			ReceiverConfig{DelAckDelay: DelayedAckTimeout}, n.db.SendAck))
	}
	n.db.SetEndpoints(
		func(p packet.Packet) { n.receivers[p.Flow].OnData(p) },
		func(p packet.Packet) { n.senders[p.Flow].OnAck(p) },
	)
	return n
}

// TestTelemetryKeepsSteadyStateAllocBudget meters the same steady-state
// window as TestSteadyStateFlowAllocBudget, but with a live collector
// attached. Events are flat value types handed to the collector by
// value, so an enabled pipeline must fit the same per-window allocation
// budget as a disabled one — the nil path is covered by the original
// test, whose Config leaves Telemetry nil.
func TestTelemetryKeepsSteadyStateAllocBudget(t *testing.T) {
	var events int64
	count := &events
	coll := telemetry.CollectorFunc(func(ev telemetry.Event) { *count++ })

	rate := 50 * units.MbitPerSec
	// The small buffer forces periodic loss, so the KindLoss emission
	// path runs inside the metered window.
	n := newTelemetryNet(t, rate, units.BDP(rate, 40*sim.Millisecond),
		[]sim.Time{20 * sim.Millisecond}, []cca.CCA{cca.NewReno(units.MSS)}, coll)
	n.start()
	n.eng.Run(5 * sim.Second)
	if events == 0 {
		t.Fatal("collector saw no events during warmup; emission sites not wired")
	}

	const window = 100 * sim.Millisecond
	allocs := testing.AllocsPerRun(20, func() {
		n.eng.Run(n.eng.Now() + window)
	})
	// Same tripwire as the nil-collector budget: telemetry must not add
	// per-event garbage.
	const budget = 32.0
	if allocs > budget {
		t.Fatalf("telemetry-enabled flow allocates %.1f objects per %v window (budget %.0f)",
			allocs, window, budget)
	}
}
