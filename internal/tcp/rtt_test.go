package tcp

import (
	"testing"
	"testing/quick"

	"ccatscale/internal/sim"
)

func TestRTTFirstSample(t *testing.T) {
	var e rttEstimator
	if e.RTO() != InitialRTO {
		t.Fatalf("pre-sample RTO = %v, want %v", e.RTO(), InitialRTO)
	}
	e.Update(100 * sim.Millisecond)
	if e.SRTT() != 100*sim.Millisecond {
		t.Fatalf("SRTT = %v", e.SRTT())
	}
	// RTO = SRTT + max(4·RTTVAR, MinRTO) = 100 + max(200, 200) = 300 ms.
	if e.RTO() != 300*sim.Millisecond {
		t.Fatalf("RTO = %v, want 300ms", e.RTO())
	}
	// With a large variance the 4·RTTVAR term dominates the floor.
	var v rttEstimator
	v.Update(100 * sim.Millisecond)
	v.Update(500 * sim.Millisecond) // rttvar = 3/4·50 + 1/4·400 = 137.5ms
	wantMargin := 4 * v.rttvar
	if wantMargin < MinRTO {
		t.Fatal("test setup: margin should exceed MinRTO")
	}
	if v.RTO() != v.srtt+wantMargin {
		t.Fatalf("RTO = %v, want srtt+4var = %v", v.RTO(), v.srtt+wantMargin)
	}
}

func TestRTTSmoothing(t *testing.T) {
	var e rttEstimator
	e.Update(100 * sim.Millisecond)
	e.Update(200 * sim.Millisecond)
	// SRTT = 7/8·100 + 1/8·200 = 112.5 ms.
	want := sim.Time(112500000)
	if e.SRTT() != want {
		t.Fatalf("SRTT = %v, want %v", e.SRTT(), want)
	}
}

func TestRTTMinAndMeanTracking(t *testing.T) {
	var e rttEstimator
	for _, s := range []sim.Time{30, 10, 50, 20} {
		e.Update(s * sim.Millisecond)
	}
	if e.Min() != 10*sim.Millisecond {
		t.Fatalf("Min = %v", e.Min())
	}
	if e.Mean() != 27500*sim.Microsecond {
		t.Fatalf("Mean = %v", e.Mean())
	}
	if e.Samples() != 4 {
		t.Fatalf("Samples = %d", e.Samples())
	}
}

func TestRTOClamps(t *testing.T) {
	var e rttEstimator
	// A tiny stable RTT must clamp to the Linux 200 ms floor.
	for i := 0; i < 50; i++ {
		e.Update(100 * sim.Microsecond)
	}
	if e.RTO() != MinRTO+100*sim.Microsecond {
		t.Fatalf("RTO = %v, want srtt+floor %v", e.RTO(), MinRTO+100*sim.Microsecond)
	}
	var big rttEstimator
	big.Update(100 * sim.Second)
	if big.RTO() != MaxRTO {
		t.Fatalf("RTO = %v, want ceiling %v", big.RTO(), MaxRTO)
	}
}

func TestRTTIgnoresNonPositive(t *testing.T) {
	var e rttEstimator
	e.Update(0)
	e.Update(-5)
	if e.Samples() != 0 {
		t.Fatal("non-positive samples were counted")
	}
}

// Property: with any positive sample stream, SRTT stays within the
// observed min/max envelope and RTO ≥ SRTT (up to the floor).
func TestRTTEnvelopeProperty(t *testing.T) {
	f := func(raw []uint32) bool {
		var e rttEstimator
		min, max := sim.Time(1<<62), sim.Time(0)
		for _, r := range raw {
			s := sim.Time(r%1000000+1) * sim.Microsecond
			if s < min {
				min = s
			}
			if s > max {
				max = s
			}
			e.Update(s)
			if e.SRTT() < min || e.SRTT() > max {
				return false
			}
			if e.RTO() < e.SRTT() && e.RTO() != MaxRTO {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
