package tcp

import (
	"testing"

	"ccatscale/internal/audit"
	"ccatscale/internal/packet"
	"ccatscale/internal/sim"
	"ccatscale/internal/units"
)

// FuzzReceiverSACK drives the receiver's reassembly and SACK generation
// with arbitrary segment arrival orders under a strict auditor: rcv.nxt
// must never regress and the out-of-order set must stay sorted, disjoint,
// and strictly above rcv.nxt after every segment (a violation panics and
// fails the fuzz run). A completion pass then delivers the whole stream
// in order and requires full reassembly — whatever the adversarial
// prefix did, the receiver must still converge to rcv.nxt == total.
func FuzzReceiverSACK(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3})
	f.Add([]byte{7, 7, 0, 200, 13, 42, 42, 1})
	f.Add([]byte{255, 128, 64, 32, 16, 8, 4, 2, 1, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		const mss = int64(units.MSS)
		const segments = 64
		eng := sim.NewEngine()
		aud := audit.New(audit.PolicyStrict, eng.Now)
		var acks int
		r := NewReceiver(eng, 0, ReceiverConfig{
			DelAckDelay: DelayedAckTimeout,
			GROWindow:   GROWindow,
			Audit:       aud,
		}, func(p packet.Packet) {
			acks++
			if p.CumAck > segments*mss {
				t.Fatalf("ACK %d beyond the %d bytes ever sent", p.CumAck, segments*mss)
			}
		})

		// Adversarial phase: each fuzz byte selects which segment arrives
		// next (duplicates and arbitrary order included).
		at := sim.Time(0)
		for _, b := range data {
			seg := int64(b) % segments
			p := packet.Packet{Flow: 0, Seq: seg * mss, Len: int32(mss)}
			at += 10 * sim.Microsecond
			eng.Schedule(at, func() { r.OnData(p) })
		}
		// Completion phase: the full stream in order.
		for seg := int64(0); seg < segments; seg++ {
			p := packet.Packet{Flow: 0, Seq: seg * mss, Len: int32(mss)}
			at += 10 * sim.Microsecond
			eng.Schedule(at, func() { r.OnData(p) })
		}
		eng.Run(at + sim.Second)

		if r.RcvNxt() != segments*mss {
			t.Fatalf("reassembly incomplete: rcv.nxt %d, want %d", r.RcvNxt(), segments*mss)
		}
		if acks == 0 {
			t.Fatal("receiver never acknowledged anything")
		}
	})
}

// FuzzSendWindow drives the sender's SACK scoreboard through arbitrary
// legal operation sequences and recounts it from first principles after
// every step: the pipe estimate, SACKed/lost counters, and scoreboard
// ranges must match exactly, and the pipe must never go negative.
func FuzzSendWindow(f *testing.F) {
	f.Add([]byte{0, 0, 0, 2, 3, 5, 1})
	f.Add([]byte{0, 0, 0, 0, 4, 5, 5, 6, 2, 1})
	f.Add([]byte{0, 2, 0, 2, 3, 5, 6, 0, 1, 1, 1})
	f.Fuzz(func(t *testing.T, data []byte) {
		now := sim.Time(0)
		aud := audit.New(audit.PolicyStrict, func() sim.Time { return now })
		w := newSendWindow(units.MSS)
		for i := 0; i < len(data); i++ {
			op := data[i] % 7
			// The following byte, when present, selects a segment.
			var sel int64
			if i+1 < len(data) {
				sel = int64(data[i+1])
			}
			now += sim.Microsecond
			switch op {
			case 0:
				w.ExtendOne(now)
			case 1:
				if n := w.InWindow(); n > 0 {
					w.Advance(w.Una() + 1 + sel%n)
				}
			case 2:
				if n := w.InWindow(); n > 0 {
					w.Sack(w.Una() + sel%n)
				}
			case 3:
				w.MarkLost()
			case 4:
				w.MarkAllLost()
			case 5:
				if seg, ok := w.NextLost(); ok {
					w.MarkRetransmitted(seg, now)
				}
			case 6:
				w.MarkStaleRtxLost()
			}
			if w.Pipe() < 0 {
				t.Fatalf("pipe went negative: %d", w.Pipe())
			}
			w.audit(aud, 0)
		}
	})
}
