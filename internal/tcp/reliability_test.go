package tcp

import (
	"testing"
	"testing/quick"

	"ccatscale/internal/cca"
	"ccatscale/internal/netem"
	"ccatscale/internal/packet"
	"ccatscale/internal/sim"
	"ccatscale/internal/units"
)

// TestReliabilityUnderRandomLossProperty is the transport's end-to-end
// correctness property: whatever independent random loss the forward
// path applies, the receiver's delivered prefix keeps growing and every
// byte below it was sent exactly in order — TCP reliability holds under
// arbitrary drop patterns.
func TestReliabilityUnderRandomLossProperty(t *testing.T) {
	f := func(seed uint16, lossTenths uint8) bool {
		lossProb := float64(lossTenths%30) / 100 // 0–29 %
		eng := sim.NewEngine()
		rng := sim.NewRNG(uint64(seed))

		rate := 10 * units.MbitPerSec
		db := netem.NewDumbbell(eng, netem.DumbbellConfig{
			Rate:   rate,
			Buffer: units.BDP(rate, 200*sim.Millisecond),
			RTT:    []sim.Time{20 * sim.Millisecond},
		})
		var recv *Receiver
		var send *Sender

		// Random loss sits between the bottleneck and the receiver.
		imp := netem.NewImpairment(eng, rng.Split(), netem.ImpairmentConfig{LossProb: lossProb},
			func(p packet.Packet) { recv.OnData(p) })
		db.SetEndpoints(imp.Send, func(p packet.Packet) { send.OnAck(p) })

		recv = NewReceiver(eng, 0, DefaultReceiverConfig(), db.SendAck)
		send = NewSender(eng, 0, Config{CCA: cca.NewReno(units.MSS), Output: db.SendData})
		send.Start(0)

		eng.Run(20 * sim.Second)

		delivered := recv.Stats().Delivered
		if delivered <= 0 {
			return false // total starvation is a failure even at 29 % loss
		}
		// Delivered bytes are segment-aligned and within what was sent.
		if int64(delivered)%int64(units.MSS) != 0 {
			return false
		}
		sentBytes := units.ByteCount(send.Stats().SegmentsSent) * units.MSS
		if delivered > sentBytes {
			return false
		}
		// Sender and receiver agree: snd.una equals rcv.nxt after the
		// in-flight tail quiesces one RTT later.
		eng.Run(eng.Now() + 5*sim.Second)
		return send.window.Una()*int64(units.MSS) <= recv.RcvNxt()+int64(units.MSS)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestNoDuplicateDeliveryAccounting: the sender's delivered counter
// counts every byte exactly once even when segments are retransmitted
// spuriously (duplicates discarded by the receiver).
func TestNoDuplicateDeliveryAccounting(t *testing.T) {
	eng := sim.NewEngine()
	rng := sim.NewRNG(9)
	rate := 10 * units.MbitPerSec
	db := netem.NewDumbbell(eng, netem.DumbbellConfig{
		Rate:   rate,
		Buffer: units.BDP(rate, 100*sim.Millisecond),
		RTT:    []sim.Time{20 * sim.Millisecond},
	})
	var recv *Receiver
	var send *Sender
	imp := netem.NewImpairment(eng, rng, netem.ImpairmentConfig{LossProb: 0.05},
		func(p packet.Packet) { recv.OnData(p) })
	db.SetEndpoints(imp.Send, func(p packet.Packet) { send.OnAck(p) })
	recv = NewReceiver(eng, 0, DefaultReceiverConfig(), db.SendAck)
	send = NewSender(eng, 0, Config{CCA: cca.NewReno(units.MSS), Output: db.SendData})
	send.Start(0)
	eng.Run(30 * sim.Second)

	st := send.Stats()
	// delivered (sender view) == una bytes + sacked-but-unacked bytes;
	// it can never exceed unique bytes sent.
	unique := units.ByteCount(send.window.Nxt()) * units.MSS
	if st.DeliveredBytes > unique {
		t.Fatalf("delivered %v exceeds unique bytes %v", st.DeliveredBytes, unique)
	}
	if st.Retransmissions == 0 {
		t.Fatal("no retransmissions at 5% loss")
	}
	// Receiver's in-order prefix can't exceed sender-claimed delivery.
	if got := recv.Stats().Delivered; got > st.DeliveredBytes+st.InFlight {
		t.Fatalf("receiver prefix %v > sender delivered %v + inflight", got, st.DeliveredBytes)
	}
}
