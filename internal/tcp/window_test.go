package tcp

import (
	"testing"
	"testing/quick"

	"ccatscale/internal/sim"
	"ccatscale/internal/units"
)

func TestWindowExtendAndPipe(t *testing.T) {
	w := newSendWindow(units.MSS)
	for i := int64(0); i < 5; i++ {
		if seg := w.ExtendOne(0); seg != i {
			t.Fatalf("ExtendOne = %d, want %d", seg, i)
		}
	}
	if w.Pipe() != 5*units.MSS {
		t.Fatalf("Pipe = %v, want 5 MSS", w.Pipe())
	}
	if w.InWindow() != 5 || w.Una() != 0 || w.Nxt() != 5 {
		t.Fatalf("window bounds wrong: una=%d nxt=%d", w.Una(), w.Nxt())
	}
}

func TestWindowAdvanceDelivers(t *testing.T) {
	w := newSendWindow(units.MSS)
	for i := 0; i < 10; i++ {
		w.ExtendOne(0)
	}
	got := w.Advance(4)
	if got != 4*units.MSS {
		t.Fatalf("Advance delivered %v, want 4 MSS", got)
	}
	if w.Pipe() != 6*units.MSS {
		t.Fatalf("Pipe = %v, want 6 MSS", w.Pipe())
	}
	if w.Advance(4) != 0 {
		t.Fatal("re-advance to same point delivered bytes")
	}
}

func TestWindowAdvanceBeyondNxtPanics(t *testing.T) {
	w := newSendWindow(units.MSS)
	w.ExtendOne(0)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on ACK beyond snd.nxt")
		}
	}()
	w.Advance(5)
}

func TestWindowSackAccounting(t *testing.T) {
	w := newSendWindow(units.MSS)
	for i := 0; i < 10; i++ {
		w.ExtendOne(0)
	}
	if got := w.Sack(5); got != units.MSS {
		t.Fatalf("first Sack = %v, want MSS", got)
	}
	if got := w.Sack(5); got != 0 {
		t.Fatalf("repeated Sack = %v, want 0", got)
	}
	if w.Pipe() != 9*units.MSS {
		t.Fatalf("Pipe = %v after one SACK", w.Pipe())
	}
	// Out-of-window SACKs are ignored.
	if w.Sack(-1) != 0 || w.Sack(100) != 0 {
		t.Fatal("out-of-window SACK delivered bytes")
	}
	// Cumulative ACK across SACKed segments does not double-count.
	w.Sack(0)
	if got := w.Advance(6); got != 4*units.MSS {
		t.Fatalf("Advance over mixed states delivered %v, want 4 MSS", got)
	}
}

func TestWindowFACKLossMarking(t *testing.T) {
	w := newSendWindow(units.MSS)
	for i := 0; i < 10; i++ {
		w.ExtendOne(0)
	}
	// Nothing SACKed yet: no marking possible.
	if lost := w.MarkLost(); lost != 0 {
		t.Fatalf("loss marking with no SACKs: %v", lost)
	}
	// One SACK beyond the hole proves it lost (zero reordering window
	// on a FIFO network).
	w.Sack(1)
	if lost := w.MarkLost(); lost != units.MSS {
		t.Fatalf("MarkLost = %v, want 1 MSS (segment 0)", lost)
	}
	w.Sack(2)
	w.Sack(3)
	if lost := w.MarkLost(); lost != 0 {
		t.Fatalf("re-marking found new losses: %v", lost)
	}
	if seg, ok := w.NextLost(); !ok || seg != 0 {
		t.Fatalf("NextLost = %d %v, want 0 true", seg, ok)
	}
	// Pipe: 10 sent − 3 sacked − 1 lost = 6 in flight.
	if w.Pipe() != 6*units.MSS {
		t.Fatalf("Pipe = %v, want 6 MSS", w.Pipe())
	}
}

func TestWindowStaleRtxDetection(t *testing.T) {
	w := newSendWindow(units.MSS)
	for i := 0; i < 6; i++ {
		w.ExtendOne(sim.Time(i))
	}
	// Segment 0 lost, retransmitted at t=10.
	w.Sack(1)
	w.MarkLost()
	seg, _ := w.NextLost()
	w.MarkRetransmitted(seg, 10)
	// A SACK for data sent before the retransmission proves nothing.
	w.Sack(2)
	if got := w.MarkStaleRtxLost(); got != 0 {
		t.Fatalf("rtx wrongly declared stale: %v", got)
	}
	// New data sent at t=20 and SACKed: the t=10 retransmission must
	// have been dropped (FIFO network).
	w.ExtendOne(20)
	w.Sack(6)
	if got := w.MarkStaleRtxLost(); got != units.MSS {
		t.Fatalf("stale rtx not detected: %v", got)
	}
	if seg, ok := w.NextLost(); !ok || seg != 0 {
		t.Fatalf("NextLost = %d %v, want segment 0 again", seg, ok)
	}
}

func TestWindowRetransmitLifecycle(t *testing.T) {
	w := newSendWindow(units.MSS)
	for i := 0; i < 8; i++ {
		w.ExtendOne(0)
	}
	w.Sack(3)
	w.Sack(4)
	w.Sack(5)
	w.MarkLost() // segments 0..2 lost
	if w.LostSegments() != 3 {
		t.Fatalf("LostSegments = %d, want 3", w.LostSegments())
	}
	pipeBefore := w.Pipe()
	seg, _ := w.NextLost()
	w.MarkRetransmitted(seg, 0)
	if w.Pipe() != pipeBefore+units.MSS {
		t.Fatal("retransmission did not raise pipe")
	}
	if w.LostSegments() != 2 {
		t.Fatalf("LostSegments after rtx = %d, want 2", w.LostSegments())
	}
	// Retransmitting a non-lost segment must panic.
	defer func() {
		if recover() == nil {
			t.Fatal("no panic retransmitting non-lost segment")
		}
	}()
	w.MarkRetransmitted(seg, 0)
}

func TestWindowSackCancelsPendingRetransmission(t *testing.T) {
	w := newSendWindow(units.MSS)
	for i := 0; i < 8; i++ {
		w.ExtendOne(0)
	}
	w.Sack(4)
	w.Sack(5)
	w.Sack(6)
	w.MarkLost() // 0..3 lost (highest=6, thresh 3 → ≤3)
	if w.LostSegments() != 4 {
		t.Fatalf("LostSegments = %d, want 4", w.LostSegments())
	}
	// A late SACK for a lost segment cancels its retransmission without
	// touching pipe (it was already deducted).
	pipe := w.Pipe()
	if got := w.Sack(2); got != units.MSS {
		t.Fatalf("late Sack = %v", got)
	}
	if w.Pipe() != pipe {
		t.Fatal("late SACK of lost segment changed pipe")
	}
	if w.LostSegments() != 3 {
		t.Fatalf("LostSegments = %d, want 3", w.LostSegments())
	}
}

func TestWindowMarkAllLost(t *testing.T) {
	w := newSendWindow(units.MSS)
	for i := 0; i < 10; i++ {
		w.ExtendOne(0)
	}
	w.Sack(5)
	lost := w.MarkAllLost()
	if lost != 9*units.MSS {
		t.Fatalf("MarkAllLost = %v, want 9 MSS (SACKed stays)", lost)
	}
	if w.Pipe() != 0 {
		t.Fatalf("Pipe after RTO = %v, want 0", w.Pipe())
	}
	if seg, ok := w.NextLost(); !ok || seg != 0 {
		t.Fatalf("NextLost after RTO = %d %v", seg, ok)
	}
}

func TestWindowRingGrowth(t *testing.T) {
	w := newSendWindow(units.MSS)
	// Push the window past the initial ring capacity with a moving base.
	for round := 0; round < 20; round++ {
		for i := 0; i < 100; i++ {
			w.ExtendOne(0)
		}
		w.Advance(w.Una() + 60)
	}
	if w.InWindow() != 20*40 {
		t.Fatalf("InWindow = %d, want 800", w.InWindow())
	}
	if w.Pipe() != units.ByteCount(800)*units.MSS {
		t.Fatalf("Pipe = %v", w.Pipe())
	}
}

// Property: pipe always equals MSS × (#Sent + #Rtx states), regardless
// of the operation sequence.
func TestWindowPipeInvariantProperty(t *testing.T) {
	type op struct {
		Kind byte
		Arg  uint8
	}
	f := func(ops []op) bool {
		w := newSendWindow(units.MSS)
		for _, o := range ops {
			switch o.Kind % 5 {
			case 0:
				if w.InWindow() < 200 {
					w.ExtendOne(0)
				}
			case 1:
				if w.InWindow() > 0 {
					w.Advance(w.Una() + 1 + int64(o.Arg)%w.InWindow())
				}
			case 2:
				if w.InWindow() > 0 {
					w.Sack(w.Una() + int64(o.Arg)%w.InWindow())
				}
			case 3:
				w.MarkLost()
			case 4:
				if seg, ok := w.NextLost(); ok {
					w.MarkRetransmitted(seg, 0)
				}
			}
			// Recompute pipe from scratch and compare.
			var want units.ByteCount
			lost := 0
			for seg := w.Una(); seg < w.Nxt(); seg++ {
				switch w.state(seg) {
				case segSent, segRtx:
					want += units.MSS
				case segLost:
					lost++
				}
			}
			if w.Pipe() != want || w.LostSegments() != lost {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
