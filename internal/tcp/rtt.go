// Package tcp implements the simulated TCP transport: a SACK-capable
// sender with fast retransmit/recovery, retransmission timeouts, pacing
// and delivery-rate sampling, and a delayed-ACK receiver. Congestion
// control is delegated to an internal/cca implementation, mirroring the
// kernel's split between the protocol machinery and the pluggable CCA
// module.
package tcp

import "ccatscale/internal/sim"

// RFC 6298 / Linux timer constants.
const (
	// MinRTO matches Linux's TCP_RTO_MIN (200 ms), the stack the paper
	// measures; the RFC's 1 s floor is long obsolete in practice.
	MinRTO = 200 * sim.Millisecond

	// MaxRTO matches TCP_RTO_MAX.
	MaxRTO = 60 * sim.Second

	// InitialRTO applies before the first RTT sample (RFC 6298 §2.1).
	InitialRTO = 1 * sim.Second
)

// rttEstimator maintains SRTT/RTTVAR per RFC 6298 and a lifetime
// minimum.
type rttEstimator struct {
	srtt    sim.Time
	rttvar  sim.Time
	minRTT  sim.Time
	latest  sim.Time
	samples uint64

	// sum supports mean-RTT reporting for the Mathis analysis.
	sum sim.Time
}

// Update folds in one RTT sample.
func (e *rttEstimator) Update(sample sim.Time) {
	if sample <= 0 {
		return
	}
	e.latest = sample
	e.samples++
	e.sum += sample
	if e.minRTT == 0 || sample < e.minRTT {
		e.minRTT = sample
	}
	if e.samples == 1 {
		e.srtt = sample
		e.rttvar = sample / 2
		return
	}
	// RTTVAR = 3/4·RTTVAR + 1/4·|SRTT − R'|; SRTT = 7/8·SRTT + 1/8·R'.
	diff := e.srtt - sample
	if diff < 0 {
		diff = -diff
	}
	e.rttvar = (3*e.rttvar + diff) / 4
	e.srtt = (7*e.srtt + sample) / 8
}

// RTO returns the current retransmission timeout, or InitialRTO before
// any sample. Following Linux's tcp_set_rto, the variance term is
// floored at MinRTO — RTO = SRTT + max(4·RTTVAR, MinRTO) — rather than
// clamping only the final value: on a deep-buffered path whose RTT sits
// far above 200 ms with little variance, a bare SRTT+4·RTTVAR leaves no
// margin for delayed-ACK stalls and queue excursions and fires streams
// of spurious timeouts.
func (e *rttEstimator) RTO() sim.Time {
	if e.samples == 0 {
		return InitialRTO
	}
	margin := 4 * e.rttvar
	if margin < MinRTO {
		margin = MinRTO
	}
	rto := e.srtt + margin
	if rto > MaxRTO {
		rto = MaxRTO
	}
	return rto
}

// SRTT returns the smoothed RTT (0 before any sample).
func (e *rttEstimator) SRTT() sim.Time { return e.srtt }

// Min returns the lifetime minimum RTT (0 before any sample).
func (e *rttEstimator) Min() sim.Time { return e.minRTT }

// Mean returns the arithmetic mean over all samples (0 before any).
func (e *rttEstimator) Mean() sim.Time {
	if e.samples == 0 {
		return 0
	}
	return e.sum / sim.Time(e.samples)
}

// Samples returns the number of samples folded in.
func (e *rttEstimator) Samples() uint64 { return e.samples }
