// Package padhye implements the PFTK TCP throughput model (Padhye,
// Firoiu, Towsley, Kurose, "Modeling TCP Throughput: A Simple Model and
// its Empirical Validation", SIGCOMM 1998) — the second throughput
// model the paper cites alongside Mathis et al. Where the Mathis model
// covers only the congestion-avoidance regime, PFTK adds the effect of
// retransmission timeouts, which dominate at high loss rates:
//
//	            	              1
//	B(p) ≈ ───────────────────────────────────────────────────
//	       RTT·√(2bp/3) + T₀·min(1, 3·√(3bp/8))·p·(1 + 32p²)
//
// in segments per second, with b ACKed-segments-per-ACK (2 under
// delayed ACKs) and T₀ the retransmission timeout.
package padhye

import "math"

// Params parameterizes the model.
type Params struct {
	// MSSBytes is the segment size.
	MSSBytes float64
	// RTTSeconds is the round-trip time.
	RTTSeconds float64
	// RTOSeconds is the retransmission timeout T₀; if 0, a typical
	// 4·RTT (floored at 200 ms, the Linux minimum) is used.
	RTOSeconds float64
	// AckedPerAck is b, the segments acknowledged per ACK (0 → 2,
	// delayed ACKs).
	AckedPerAck float64
}

func (p Params) withDefaults() Params {
	if p.AckedPerAck <= 0 {
		p.AckedPerAck = 2
	}
	if p.RTOSeconds <= 0 {
		p.RTOSeconds = math.Max(4*p.RTTSeconds, 0.2)
	}
	return p
}

// Throughput returns the PFTK-predicted throughput in bytes per second
// for loss-event probability lossProb. It returns 0 for degenerate
// inputs.
func Throughput(params Params, lossProb float64) float64 {
	if lossProb <= 0 || lossProb >= 1 || params.RTTSeconds <= 0 || params.MSSBytes <= 0 {
		return 0
	}
	params = params.withDefaults()
	p := lossProb
	b := params.AckedPerAck

	caTerm := params.RTTSeconds * math.Sqrt(2*b*p/3)
	toProb := math.Min(1, 3*math.Sqrt(3*b*p/8))
	toTerm := params.RTOSeconds * toProb * p * (1 + 32*p*p)

	segsPerSec := 1 / (caTerm + toTerm)
	return segsPerSec * params.MSSBytes
}

// MathisRegime returns the simplified model with the timeout term
// dropped — the Mathis-equivalent asymptote that PFTK converges to at
// low loss (with C = √(3/(2b))).
func MathisRegime(params Params, lossProb float64) float64 {
	if lossProb <= 0 || lossProb >= 1 || params.RTTSeconds <= 0 || params.MSSBytes <= 0 {
		return 0
	}
	params = params.withDefaults()
	return params.MSSBytes / (params.RTTSeconds * math.Sqrt(2*params.AckedPerAck*lossProb/3))
}

// CrossoverLoss estimates the loss probability beyond which the timeout
// term contributes more than frac of the total denominator (a measure
// of where the Mathis simplification stops being usable), found by
// bisection on [1e-6, 0.5].
func CrossoverLoss(params Params, frac float64) float64 {
	if frac <= 0 || frac >= 1 {
		return 0
	}
	params = params.withDefaults()
	ratio := func(p float64) float64 {
		caTerm := params.RTTSeconds * math.Sqrt(2*params.AckedPerAck*p/3)
		toProb := math.Min(1, 3*math.Sqrt(3*params.AckedPerAck*p/8))
		toTerm := params.RTOSeconds * toProb * p * (1 + 32*p*p)
		return toTerm / (caTerm + toTerm)
	}
	lo, hi := 1e-6, 0.5
	if ratio(lo) >= frac {
		return lo
	}
	if ratio(hi) <= frac {
		return hi
	}
	for i := 0; i < 80; i++ {
		mid := (lo + hi) / 2
		if ratio(mid) < frac {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2
}
