package padhye

import (
	"math"
	"testing"
	"testing/quick"
)

func params() Params {
	return Params{MSSBytes: 1448, RTTSeconds: 0.1, RTOSeconds: 0.4, AckedPerAck: 2}
}

func TestThroughputDegenerateInputs(t *testing.T) {
	p := params()
	if Throughput(p, 0) != 0 || Throughput(p, 1) != 0 || Throughput(p, -0.1) != 0 {
		t.Fatal("degenerate loss accepted")
	}
	if Throughput(Params{}, 0.01) != 0 {
		t.Fatal("zero params accepted")
	}
}

func TestThroughputMatchesHandComputation(t *testing.T) {
	// p = 0.01, b = 2, RTT = 0.1, T0 = 0.4:
	// caTerm = 0.1·√(0.04/3) = 0.0115470
	// toProb = min(1, 3·√(0.0075)) = 0.259808
	// toTerm = 0.4·0.259808·0.01·(1+0.0032) = 0.00104256
	// segs/s = 1/0.01258956 ≈ 79.43 → ×1448 ≈ 115,015 B/s
	got := Throughput(params(), 0.01)
	want := 1448 / (0.1*math.Sqrt(2*2*0.01/3) + 0.4*math.Min(1, 3*math.Sqrt(3*2*0.01/8))*0.01*(1+32*0.0001))
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("Throughput = %v, want %v", got, want)
	}
	if got < 100000 || got > 130000 {
		t.Fatalf("Throughput = %v, outside plausibility band", got)
	}
}

func TestMathisRegimeIsLowLossAsymptote(t *testing.T) {
	p := params()
	for _, loss := range []float64{1e-6, 1e-5} {
		full := Throughput(p, loss)
		mathis := MathisRegime(p, loss)
		if math.Abs(full-mathis)/mathis > 0.05 {
			t.Fatalf("at p=%v: full %v vs mathis %v diverge >5%%", loss, full, mathis)
		}
	}
	// At high loss the timeout term must reduce throughput well below
	// the Mathis regime.
	full := Throughput(p, 0.2)
	mathis := MathisRegime(p, 0.2)
	if full > 0.5*mathis {
		t.Fatalf("at p=0.2: full %v not ≪ mathis %v", full, mathis)
	}
}

func TestThroughputMonotoneDecreasingInLoss(t *testing.T) {
	p := params()
	prev := math.Inf(1)
	for loss := 0.0001; loss < 0.5; loss *= 1.5 {
		cur := Throughput(p, loss)
		if cur >= prev {
			t.Fatalf("throughput not decreasing at p=%v: %v >= %v", loss, cur, prev)
		}
		prev = cur
	}
}

func TestDefaults(t *testing.T) {
	p := Params{MSSBytes: 1448, RTTSeconds: 0.02}
	// b defaults to 2, RTO to max(4·RTT, 0.2) = 0.2.
	got := Throughput(p, 0.01)
	explicit := Throughput(Params{MSSBytes: 1448, RTTSeconds: 0.02, RTOSeconds: 0.2, AckedPerAck: 2}, 0.01)
	if got != explicit {
		t.Fatalf("defaults mismatch: %v vs %v", got, explicit)
	}
}

func TestCrossoverLoss(t *testing.T) {
	p := params()
	x := CrossoverLoss(p, 0.5)
	if x <= 0 || x >= 0.5 {
		t.Fatalf("crossover = %v", x)
	}
	// At the crossover the timeout share is ≈ frac.
	caTerm := p.RTTSeconds * math.Sqrt(2*p.AckedPerAck*x/3)
	toProb := math.Min(1, 3*math.Sqrt(3*p.AckedPerAck*x/8))
	toTerm := p.RTOSeconds * toProb * x * (1 + 32*x*x)
	share := toTerm / (caTerm + toTerm)
	if math.Abs(share-0.5) > 0.01 {
		t.Fatalf("share at crossover = %v, want 0.5", share)
	}
	if CrossoverLoss(p, 0) != 0 || CrossoverLoss(p, 1) != 0 {
		t.Fatal("degenerate frac accepted")
	}
}

// Property: throughput is positive and below the no-timeout bound for
// all valid inputs.
func TestThroughputBoundsProperty(t *testing.T) {
	f := func(rawLoss, rawRTT uint16) bool {
		loss := float64(rawLoss%999+1) / 10000
		rtt := float64(rawRTT%500+1) / 1000
		p := Params{MSSBytes: 1448, RTTSeconds: rtt}
		full := Throughput(p, loss)
		mathis := MathisRegime(p, loss)
		return full > 0 && full <= mathis+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
