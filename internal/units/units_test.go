package units

import (
	"testing"
	"testing/quick"

	"ccatscale/internal/sim"
)

func TestBandwidthString(t *testing.T) {
	cases := []struct {
		b    Bandwidth
		want string
	}{
		{10 * GbitPerSec, "10Gbps"},
		{100 * MbitPerSec, "100Mbps"},
		{25 * GbitPerSec, "25Gbps"},
		{512 * KbitPerSec, "512Kbps"},
		{999, "999bps"},
	}
	for _, c := range cases {
		if got := c.b.String(); got != c.want {
			t.Errorf("%d.String() = %q, want %q", int64(c.b), got, c.want)
		}
	}
}

func TestByteCountString(t *testing.T) {
	cases := []struct {
		c    ByteCount
		want string
	}{
		{375 * MB, "375MB"},
		{3 * MB, "3MB"},
		{2 * GB, "2GB"},
		{64 * KB, "64KB"},
		{1448, "1448B"},
	}
	for _, c := range cases {
		if got := c.c.String(); got != c.want {
			t.Errorf("String = %q, want %q", got, c.want)
		}
	}
}

func TestTransmissionTimeKnownValues(t *testing.T) {
	// 1448 bytes at 100 Mbps = 1448*8/1e8 s = 115.84 µs.
	got := (100 * MbitPerSec).TransmissionTime(MSS)
	want := sim.Time(115840)
	if got != want {
		t.Fatalf("TransmissionTime = %v, want %v", got, want)
	}
	// 1500 bytes at 10 Gbps = 1.2 µs.
	if got := (10 * GbitPerSec).TransmissionTime(1500); got != 1200 {
		t.Fatalf("TransmissionTime = %v, want 1200ns", got)
	}
	if got := (10 * GbitPerSec).TransmissionTime(0); got != 0 {
		t.Fatalf("TransmissionTime(0) = %v, want 0", got)
	}
}

func TestTransmissionTimeRoundsUp(t *testing.T) {
	// 1 byte at 3 bps: 8/3 s = 2.666...s must round up.
	got := Bandwidth(3).TransmissionTime(1)
	want := sim.Time((8*int64(sim.Second) + 2) / 3)
	if got != want {
		t.Fatalf("TransmissionTime = %v, want %v", got, want)
	}
}

func TestTransmissionTimePanicsOnZeroRate(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for zero bandwidth")
		}
	}()
	Bandwidth(0).TransmissionTime(1)
}

func TestBDPPaperSettings(t *testing.T) {
	// The paper: EdgeScale buffer 3 MB ≈ 1 BDP of 100 Mbps × 200 ms = 2.5 MB;
	// CoreScale buffer 375 MB ≈ 1.2 BDP of 10 Gbps × 200 ms = 250 MB.
	if got := BDP(100*MbitPerSec, 200*sim.Millisecond); got != 2500000 {
		t.Fatalf("edge BDP = %v, want 2.5MB", got)
	}
	if got := BDP(10*GbitPerSec, 200*sim.Millisecond); got != 250000000 {
		t.Fatalf("core BDP = %v, want 250MB", got)
	}
	if got := BDP(0, sim.Second); got != 0 {
		t.Fatalf("BDP with zero bandwidth = %v, want 0", got)
	}
}

func TestThroughputInvertsBytesIn(t *testing.T) {
	f := func(rateMbps uint16, secs uint8) bool {
		rate := Bandwidth(int64(rateMbps%2000)+1) * MbitPerSec
		d := sim.Time(int64(secs%30)+1) * sim.Second
		n := rate.BytesIn(d)
		back := Throughput(n, d)
		// Round-trip error bounded by one byte's worth of rate.
		diff := int64(rate) - int64(back)
		if diff < 0 {
			diff = -diff
		}
		return diff <= 8*int64(sim.Second)/int64(d)*int64(sim.Second)/int64(sim.Second)+8
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBytesInKnownValue(t *testing.T) {
	// 10 Gbps for 1 s = 1.25 GB.
	if got := (10 * GbitPerSec).BytesIn(sim.Second); got != ByteCount(1250000000) {
		t.Fatalf("BytesIn = %v", got)
	}
	if got := (10 * GbitPerSec).BytesIn(0); got != 0 {
		t.Fatalf("BytesIn(0) = %v, want 0", got)
	}
}

func TestRateIsRespectedOverManyPackets(t *testing.T) {
	// Transmitting k packets back-to-back must take at least the fluid
	// k*size*8/rate time (rounding up per packet can only make it longer).
	rate := 10 * GbitPerSec
	var total sim.Time
	const k = 10000
	for i := 0; i < k; i++ {
		total += rate.TransmissionTime(1500)
	}
	fluid := sim.Time(int64(k) * 1500 * 8 * int64(sim.Second) / int64(rate))
	if total < fluid {
		t.Fatalf("total serialization %v beats fluid bound %v: rate exceeded", total, fluid)
	}
	if total > fluid+k { // ≤1 ns rounding per packet
		t.Fatalf("rounding drift too large: total %v vs fluid %v", total, fluid)
	}
}

func TestPackets(t *testing.T) {
	cases := []struct {
		n    ByteCount
		want int64
	}{
		{0, 0}, {1, 1}, {MSS, 1}, {MSS + 1, 2}, {10 * MSS, 10}, {-5, 0},
	}
	for _, c := range cases {
		if got := Packets(c.n); got != c.want {
			t.Errorf("Packets(%d) = %d, want %d", c.n, got, c.want)
		}
	}
}

func TestBytesPerSec(t *testing.T) {
	if got := (8 * MbitPerSec).BytesPerSec(); got != 1e6 {
		t.Fatalf("BytesPerSec = %v, want 1e6", got)
	}
}
