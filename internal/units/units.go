// Package units provides the quantity vocabulary shared by the network
// substrate and experiment harness: bandwidths, byte counts, and the
// bandwidth-delay-product arithmetic used to size router buffers the way
// the paper does (≈1 BDP at a 200 ms worst-case RTT).
package units

import (
	"fmt"
	"math"
	"math/bits"

	"ccatscale/internal/sim"
)

// Bandwidth is a link or pacing rate in bits per second.
type Bandwidth int64

// Common rates. The paper's settings are 100 Mbps (EdgeScale bottleneck),
// 10 Gbps (CoreScale bottleneck) and 25 Gbps (edge links, never the
// bottleneck).
const (
	BitPerSec  Bandwidth = 1
	KbitPerSec           = 1000 * BitPerSec
	MbitPerSec           = 1000 * KbitPerSec
	GbitPerSec           = 1000 * MbitPerSec
)

// ByteCount is a number of bytes (queue occupancy, window sizes, buffer
// capacities).
type ByteCount int64

// Common sizes, decimal as in the paper's "3MB buffer" / "375MB buffer".
const (
	Byte ByteCount = 1
	KB             = 1000 * Byte
	MB             = 1000 * KB
	GB             = 1000 * MB
)

// MSS is the maximum segment size used throughout the paper and this
// reproduction: 1448 payload bytes (1500 MTU minus IP/TCP headers with
// timestamps).
const MSS ByteCount = 1448

// String renders the bandwidth with an adaptive unit, e.g. "10Gbps".
func (b Bandwidth) String() string {
	switch {
	case b >= GbitPerSec && b%GbitPerSec == 0:
		return fmt.Sprintf("%dGbps", b/GbitPerSec)
	case b >= MbitPerSec && b%MbitPerSec == 0:
		return fmt.Sprintf("%dMbps", b/MbitPerSec)
	case b >= KbitPerSec && b%KbitPerSec == 0:
		return fmt.Sprintf("%dKbps", b/KbitPerSec)
	default:
		return fmt.Sprintf("%dbps", int64(b))
	}
}

// String renders the byte count with an adaptive decimal unit.
func (c ByteCount) String() string {
	switch {
	case c >= GB && c%GB == 0:
		return fmt.Sprintf("%dGB", c/GB)
	case c >= MB && c%MB == 0:
		return fmt.Sprintf("%dMB", c/MB)
	case c >= KB && c%KB == 0:
		return fmt.Sprintf("%dKB", c/KB)
	default:
		return fmt.Sprintf("%dB", int64(c))
	}
}

// BitsPerSec returns the rate as a float for metric arithmetic.
func (b Bandwidth) BitsPerSec() float64 { return float64(b) }

// BytesPerSec returns the rate in bytes per second.
func (b Bandwidth) BytesPerSec() float64 { return float64(b) / 8 }

// TransmissionTime returns the serialization delay of n bytes at rate b,
// rounded up to the next nanosecond so back-to-back transmissions can
// never exceed the configured rate.
func (b Bandwidth) TransmissionTime(n ByteCount) sim.Time {
	if b <= 0 {
		panic("units: transmission time at non-positive bandwidth")
	}
	if n <= 0 {
		return 0
	}
	bits := int64(n) * 8
	// ceil(bits * 1e9 / b) without overflow for realistic inputs:
	// bits ≤ ~2^33 for a 1 GB burst, 1e9 multiplier pushes to 2^63 only
	// past ~9 GB, far above any single-packet or batch use here.
	return sim.Time((bits*int64(sim.Second) + int64(b) - 1) / int64(b))
}

// BytesIn returns the number of whole bytes transmitted at rate b during
// duration d. The product b·d overflows int64 at CoreScale rates (10 Gbps
// over one second is already 10^19 bit·ns), so the division is done in
// 128 bits.
func (b Bandwidth) BytesIn(d sim.Time) ByteCount {
	if d <= 0 || b <= 0 {
		return 0
	}
	hi, lo := bits.Mul64(uint64(b), uint64(d))
	q, _ := bits.Div64(hi, lo, 8*uint64(sim.Second))
	return ByteCount(q)
}

// BDP returns the bandwidth-delay product for rate b and round-trip time
// rtt, in bytes. This is the paper's buffer-sizing rule of thumb: the
// smallest drop-tail buffer that lets one NewReno flow keep the link
// saturated through a window halving.
func BDP(b Bandwidth, rtt sim.Time) ByteCount {
	if b <= 0 || rtt <= 0 {
		return 0
	}
	return ByteCount(int64(b) / 8 * int64(rtt) / int64(sim.Second))
}

// Throughput returns the average rate at which n bytes were moved during
// d. It is the reporting-side inverse of BytesIn. A multi-terabyte
// transfer over a long window overflows the naive int64 product, so the
// computation is 128-bit; a nonsensical input whose true rate exceeds
// int64 bits/sec saturates.
func Throughput(n ByteCount, d sim.Time) Bandwidth {
	if d <= 0 || n <= 0 {
		return 0
	}
	hi, lo := bits.Mul64(uint64(n), 8*uint64(sim.Second))
	if hi >= uint64(d) {
		return Bandwidth(math.MaxInt64)
	}
	q, _ := bits.Div64(hi, lo, uint64(d))
	if q > math.MaxInt64 {
		return Bandwidth(math.MaxInt64)
	}
	return Bandwidth(q)
}

// Packets returns how many MSS-sized segments cover n bytes, rounding up.
func Packets(n ByteCount) int64 {
	if n <= 0 {
		return 0
	}
	return (int64(n) + int64(MSS) - 1) / int64(MSS)
}
