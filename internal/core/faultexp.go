package core

import (
	"math"

	"ccatscale/internal/mathis"
	"ccatscale/internal/sim"
	"ccatscale/internal/units"
)

// This file is the experiment wiring over the fault-injection layer:
// two extension scenarios beyond the paper's clean testbed. The
// burst-loss sweep holds the mean loss rate fixed and varies how
// bursty its arrival is — the axis along which the Mathis model's
// independent-loss assumption fails (a burst of drops triggers one
// window halving, so throughput rises above the iid prediction as
// bursts lengthen, the mechanism behind the paper's Finding 1). The
// outage sweep flaps the link dark for configured windows and measures
// each CCA's recovery — the regime where loss-based and model-based
// algorithms diverge hardest (cf. the BBR evaluation literature).

// burstFlows is the flow count of the burst-loss sweep: few enough
// that the injected loss — not the bottleneck share — limits each
// flow, so the measured throughput tracks the loss model rather than
// the fair-share line.
const burstFlows = 8

// BurstMeanLoss is the stationary loss rate every burst-loss row
// injects; only the burst structure varies across rows.
const BurstMeanLoss = 0.02

// BurstLens are the mean burst lengths the sweep compares; length 1 is
// exactly independent Bernoulli loss, the model's home regime.
var BurstLens = []float64{1, 4, 16}

// BurstRow is one cell of the burst-loss extension table.
type BurstRow struct {
	Setting string
	// MeanLoss and BurstLen echo the injected channel parameters.
	MeanLoss float64
	BurstLen float64
	Flows    int

	// GoodputPerFlow is the mean per-flow goodput.
	GoodputPerFlow units.Bandwidth
	// PredictIID is the Mathis prediction MSS·√(3/2)/(RTT·√p) with p
	// the injected mean loss — the iid-model baseline.
	PredictIID units.Bandwidth
	// ModelRatio is measured/predicted: ≈1 at burst length 1, rising
	// above 1 as bursts lengthen and the iid assumption breaks.
	ModelRatio float64

	// BurstDrops counts channel drops; Halvings sums window halvings.
	BurstDrops uint64
	Halvings   uint64
	// DropsPerHalving is total drops (channel + bottleneck) over total
	// halvings — the Figure 3 quantity under injected bursts.
	DropsPerHalving float64
}

// BurstLossSweep runs the burst-loss extension for every mean burst
// length and returns one row per length.
func BurstLossSweep(s Setting, seed uint64, parallelism int) ([]BurstRow, error) {
	cfgs := make([]RunConfig, len(BurstLens))
	for i, blen := range BurstLens {
		cfg := s.Build(UniformFlows(burstFlows, "reno", DefaultRTT), WithSeed(Seed(seed+uint64(i))))
		cfg.BurstLoss = &BurstLossSpec{MeanLoss: BurstMeanLoss, MeanBurstLen: blen}
		cfgs[i] = cfg
	}
	results, err := s.runMany(cfgs, parallelism)
	if err != nil {
		return nil, err
	}
	rows := make([]BurstRow, len(results))
	for i, res := range results {
		rows[i] = burstAnalyze(s.Name, BurstLens[i], res)
	}
	return rows, nil
}

func burstAnalyze(setting string, blen float64, res RunResult) BurstRow {
	row := BurstRow{
		Setting:    setting,
		MeanLoss:   BurstMeanLoss,
		BurstLen:   blen,
		Flows:      len(res.Flows),
		BurstDrops: res.BurstDrops,
	}
	pred := mathis.Predict(math.Sqrt(1.5), mathis.Sample{
		P:          BurstMeanLoss,
		RTTSeconds: DefaultRTT.Seconds(),
		MSSBytes:   float64(res.Config.MSS),
	})
	row.PredictIID = units.Bandwidth(pred * 8)
	var drops, halvings float64
	for _, f := range res.Flows {
		row.GoodputPerFlow += f.Goodput
		row.Halvings += f.Halvings
		drops += float64(f.Drops)
		halvings += float64(f.Halvings)
	}
	row.GoodputPerFlow /= units.Bandwidth(len(res.Flows))
	drops += float64(res.BurstDrops)
	if halvings > 0 {
		row.DropsPerHalving = drops / halvings
	}
	if pred > 0 {
		row.ModelRatio = row.GoodputPerFlow.BytesPerSec() / pred
	}
	return row
}

// OutageDowns are the dark-window durations the outage sweep compares:
// below, at, and well above a retransmission timeout.
var OutageDowns = []sim.Time{200 * sim.Millisecond, sim.Second, 3 * sim.Second}

// OutageCCAs are the algorithms the outage sweep compares.
var OutageCCAs = []string{"reno", "cubic", "bbr"}

// outagePeriod spaces the flaps far enough apart that a flow can
// recover between them.
const outagePeriod = 10 * sim.Second

// OutageRow is one (CCA, down-time) cell of the outage extension.
type OutageRow struct {
	Setting string
	CCA     string
	Down    sim.Time
	Flaps   int

	// Goodput is aggregate goodput over the measurement window;
	// GoodputFrac is its fraction of the clean (no-outage) baseline for
	// the same CCA — the recovery cost of the flaps.
	Goodput     units.Bandwidth
	GoodputFrac float64
	Utilization float64
	// RTOs sums retransmission timeouts across flows: the loss-based
	// recovery path outages exercise.
	RTOs uint64
	// OutageDrops counts packets lost to the dark windows.
	OutageDrops uint64
	// JFI qualifies post-outage fairness: flaps resynchronize flows.
	JFI float64
}

// OutageSweep runs the link-flap extension: for every CCA and every
// down-time, n flows ride a bottleneck whose forward path goes dark
// periodically, plus one clean baseline per CCA for normalization.
// The returned rows are ordered CCA-major, down-time minor.
func OutageSweep(s Setting, seed uint64, parallelism int) ([]OutageRow, error) {
	n := s.FlowCounts[0]
	flaps := int(s.Duration / outagePeriod)
	if flaps < 1 {
		flaps = 1
	}
	var cfgs []RunConfig
	for ci, cca := range OutageCCAs {
		// Baseline first, then one run per down-time.
		base := s.Build(UniformFlows(n, cca, DefaultRTT), WithSeed(Seed(seed+uint64(100*ci))))
		cfgs = append(cfgs, base)
		for di, down := range OutageDowns {
			cfg := s.Build(UniformFlows(n, cca, DefaultRTT), WithSeed(Seed(seed+uint64(100*ci+di+1))))
			cfg.Outage = &OutageSpec{
				Start:  s.Warmup + outagePeriod/2,
				Down:   down,
				Period: outagePeriod,
				Count:  flaps,
			}
			cfgs = append(cfgs, cfg)
		}
	}
	results, err := s.runMany(cfgs, parallelism)
	if err != nil {
		return nil, err
	}
	var rows []OutageRow
	per := 1 + len(OutageDowns)
	for ci, cca := range OutageCCAs {
		clean := results[ci*per]
		for di, down := range OutageDowns {
			res := results[ci*per+di+1]
			row := OutageRow{
				Setting:     s.Name,
				CCA:         cca,
				Down:        down,
				Flaps:       flaps,
				Goodput:     res.AggregateGoodput,
				Utilization: res.Utilization,
				OutageDrops: res.OutageDrops,
				JFI:         res.JFI(),
			}
			for _, f := range res.Flows {
				row.RTOs += f.RTOs
			}
			if clean.AggregateGoodput > 0 {
				row.GoodputFrac = float64(res.AggregateGoodput) / float64(clean.AggregateGoodput)
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}
