package core

import (
	"reflect"
	"strings"
	"testing"

	"ccatscale/internal/cca"
	"ccatscale/internal/sim"
	"ccatscale/internal/units"
)

// tinySetting is a fast test regime: 50 Mbps, ≈1.2 BDP buffer at
// 200 ms, seconds-long windows.
func tinySetting() Setting {
	return Setting{
		Name:       "tiny",
		Rate:       50 * units.MbitPerSec,
		Buffer:     units.BDP(50*units.MbitPerSec, 200*sim.Millisecond) * 6 / 5,
		FlowCounts: []int{4, 8},
		Warmup:     5 * sim.Second,
		Duration:   20 * sim.Second,
		Stagger:    2 * sim.Second,
	}
}

func TestRunValidation(t *testing.T) {
	bad := []RunConfig{
		{},
		{Rate: units.MbitPerSec, Buffer: units.MB, Duration: sim.Second},
		{Rate: units.MbitPerSec, Buffer: units.MB, Duration: sim.Second,
			Flows: []FlowSpec{{CCA: "quic", RTT: sim.Millisecond}}},
		{Rate: units.MbitPerSec, Buffer: units.MB, Duration: sim.Second,
			Flows: []FlowSpec{{CCA: "reno", RTT: 0}}},
	}
	for i, cfg := range bad {
		if _, err := Run(cfg); err == nil {
			t.Errorf("config %d: expected error", i)
		}
	}
}

func TestRunRenoUtilizationAndFairness(t *testing.T) {
	s := tinySetting()
	// The deep (1.2 BDP @ 200 ms) buffer inflates the effective RTT to
	// ≈10× base, so AIMD convergence needs a few hundred rounds: give
	// the run a couple of virtual minutes, as the paper's own
	// convergence rule would.
	s.Duration = 2 * sim.Minute
	res, err := Run(s.Build(UniformFlows(8, "reno", DefaultRTT), WithSeed(Seed(1))))
	if err != nil {
		t.Fatal(err)
	}
	if res.Utilization < 0.85 {
		t.Fatalf("utilization = %v", res.Utilization)
	}
	if jfi := res.JFI(); jfi < 0.8 {
		t.Fatalf("8-reno JFI = %v", jfi)
	}
	if res.TotalDrops == 0 {
		t.Fatal("no drops at a saturated drop-tail bottleneck")
	}
	agg := float64(res.AggregateGoodput)
	if agg < 0.8*float64(s.Rate) || agg > float64(s.Rate) {
		t.Fatalf("aggregate goodput = %v on %v link", res.AggregateGoodput, s.Rate)
	}
	// Loss and halving rates must be populated and plausible.
	for i, f := range res.Flows {
		if f.SegmentsSent == 0 || f.SegmentsDelivered == 0 {
			t.Fatalf("flow %d: no traffic", i)
		}
		if f.Halvings == 0 {
			t.Fatalf("flow %d: no halvings despite drops", i)
		}
		if f.LossRate <= 0 || f.LossRate > 0.5 {
			t.Fatalf("flow %d: loss rate %v", i, f.LossRate)
		}
		if f.HalvingRate <= 0 || f.HalvingRate > f.LossRate*10 {
			t.Fatalf("flow %d: halving rate %v vs loss %v", i, f.HalvingRate, f.LossRate)
		}
		if f.MeanRTT < DefaultRTT {
			t.Fatalf("flow %d: mean RTT %v below base", i, f.MeanRTT)
		}
	}
}

// TestRunDeterminism requires bit-identical same-seed runs and
// seed-sensitive results for every registered CCA, not just the paper's
// measured three — the RNG split discipline must hold everywhere.
func TestRunDeterminism(t *testing.T) {
	for _, name := range cca.Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			s := tinySetting()
			s.Duration = 10 * sim.Second
			cfg := s.Build(UniformFlows(4, name, DefaultRTT), WithSeed(Seed(42)))
			a, err := Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			b, err := Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(a.Flows, b.Flows) || a.Events != b.Events {
				t.Fatal("same-seed runs differ")
			}
			cfg2 := cfg
			cfg2.Seed = 43
			c, err := Run(cfg2)
			if err != nil {
				t.Fatal(err)
			}
			if reflect.DeepEqual(a.Flows, c.Flows) {
				t.Fatal("different seeds produced identical flow results")
			}
		})
	}
}

// TestRunDeterminismUnperturbedByAudit pins the auditor's observer
// property: a strict-audited run must produce bit-identical results and
// event counts to an unaudited run of the same seed.
func TestRunDeterminismUnperturbedByAudit(t *testing.T) {
	s := tinySetting()
	s.Duration = 10 * sim.Second
	cfg := s.Build(MixedFlows(4, "cubic", "bbr", DefaultRTT), WithSeed(Seed(42)))
	plain, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Audit = "strict"
	audited, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plain.Flows, audited.Flows) || plain.Events != audited.Events {
		t.Fatal("strict auditing perturbed the simulation")
	}
	if audited.AuditViolations != 0 {
		t.Fatalf("clean run reported %d violations", audited.AuditViolations)
	}
}

func TestRunConvergenceEarlyStop(t *testing.T) {
	s := tinySetting()
	cfg := s.Build(UniformFlows(4, "reno", DefaultRTT), WithSeed(Seed(7)))
	cfg.Duration = 5 * sim.Minute // far longer than needed
	cfg.Converge = 5 * sim.Second
	cfg.ConvergeTolerance = 0.05
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("steady workload never converged")
	}
	if res.Window >= 5*sim.Minute {
		t.Fatalf("window = %v; early stop did not shorten the run", res.Window)
	}
}

func TestRunManyOrderAndParallel(t *testing.T) {
	s := tinySetting()
	s.Duration = 8 * sim.Second
	s.Warmup = 3 * sim.Second
	cfgs := []RunConfig{
		s.Build(UniformFlows(2, "reno", DefaultRTT), WithSeed(Seed(1))),
		s.Build(UniformFlows(4, "reno", DefaultRTT), WithSeed(Seed(2))),
		s.Build(UniformFlows(6, "reno", DefaultRTT), WithSeed(Seed(3))),
	}
	res, err := RunMany(cfgs, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range []int{2, 4, 6} {
		if len(res[i].Flows) != want {
			t.Fatalf("result %d has %d flows, want %d", i, len(res[i].Flows), want)
		}
	}
	// Parallel run must equal serial run (determinism preserved).
	serial, err := RunMany(cfgs, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := range res {
		if !reflect.DeepEqual(res[i].Flows, serial[i].Flows) {
			t.Fatalf("parallel result %d differs from serial", i)
		}
	}
}

func TestFlowBuilders(t *testing.T) {
	u := UniformFlows(3, "bbr", DefaultRTT)
	if len(u) != 3 || u[2].CCA != "bbr" {
		t.Fatalf("UniformFlows = %v", u)
	}
	m := MixedFlows(5, "cubic", "reno", DefaultRTT)
	cubic := 0
	for _, f := range m {
		if f.CCA == "cubic" {
			cubic++
		}
	}
	if cubic != 3 {
		t.Fatalf("MixedFlows cubic count = %d, want 3", cubic)
	}
	o := OneVersusFlows(10, "bbr", "reno", DefaultRTT)
	if o[0].CCA != "bbr" || len(o) != 10 || o[9].CCA != "reno" {
		t.Fatalf("OneVersusFlows = %v", o)
	}
}

func TestShareByCCA(t *testing.T) {
	r := RunResult{Flows: []FlowResult{
		{Spec: FlowSpec{CCA: "cubic"}, Goodput: 75},
		{Spec: FlowSpec{CCA: "reno"}, Goodput: 25},
	}}
	share := r.ShareByCCA()
	if share["cubic"] != 0.75 || share["reno"] != 0.25 {
		t.Fatalf("share = %v", share)
	}
}

func TestSettingPresets(t *testing.T) {
	e := EdgeScale()
	if e.Rate != 100*units.MbitPerSec || e.Buffer != 3*units.MB {
		t.Fatalf("EdgeScale = %+v", e)
	}
	c := CoreScale()
	if c.Rate != 10*units.GbitPerSec || c.Buffer != 375*units.MB {
		t.Fatalf("CoreScale = %+v", c)
	}
	if c.FlowCounts[2] != 5000 {
		t.Fatalf("CoreScale counts = %v", c.FlowCounts)
	}
	s := CoreScaleScaled(10)
	if s.Rate != units.GbitPerSec {
		t.Fatalf("scaled rate = %v", s.Rate)
	}
	if got := s.FlowCounts[0]; got != 100 {
		t.Fatalf("scaled counts = %v", s.FlowCounts)
	}
	// Per-flow bandwidth preserved: rate/flows identical to full scale.
	full := float64(c.Rate) / float64(c.FlowCounts[0])
	scaled := float64(s.Rate) / float64(s.FlowCounts[0])
	if full != scaled {
		t.Fatalf("per-flow bandwidth changed: %v vs %v", full, scaled)
	}
	// Buffer stays ≈1.5 BDP(200ms).
	wantBuf := units.BDP(s.Rate, 200*sim.Millisecond) * 3 / 2
	if s.Buffer != wantBuf {
		t.Fatalf("scaled buffer = %v, want %v", s.Buffer, wantBuf)
	}
}

// TestRunManyPartialFailure is the regression test for the old
// fail-fast RunMany: one bad config out of five must not discard the
// four good results, and the joined error must name the failing index.
func TestRunManyPartialFailure(t *testing.T) {
	s := tinySetting()
	s.Duration = 4 * sim.Second
	s.Warmup = 1 * sim.Second
	cfgs := []RunConfig{
		s.Build(UniformFlows(2, "reno", DefaultRTT), WithSeed(Seed(1))),
		s.Build(UniformFlows(2, "cubic", DefaultRTT), WithSeed(Seed(2))),
		s.Build(UniformFlows(2, "reno", DefaultRTT), WithSeed(Seed(3))),
		s.Build(UniformFlows(2, "reno", DefaultRTT), WithSeed(Seed(4))),
		s.Build(UniformFlows(2, "bbr", DefaultRTT), WithSeed(Seed(5))),
	}
	cfgs[3].Duration = -1 // invalid: fails validation inside Run

	res, err := RunMany(cfgs, 2)
	if err == nil {
		t.Fatal("RunMany returned nil error with a failing config")
	}
	if !strings.Contains(err.Error(), "config 3") {
		t.Fatalf("error does not name the failing index: %v", err)
	}
	if len(res) != len(cfgs) {
		t.Fatalf("got %d results for %d configs", len(res), len(cfgs))
	}
	for i, r := range res {
		if i == 3 {
			if len(r.Flows) != 0 {
				t.Fatalf("failed config %d produced flows", i)
			}
			continue
		}
		if len(r.Flows) != 2 {
			t.Fatalf("successful config %d has %d flows, want 2", i, len(r.Flows))
		}
	}
}
