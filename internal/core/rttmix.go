package core

import (
	"ccatscale/internal/metrics"
	"ccatscale/internal/sim"
)

// The paper evaluates only the same-RTT setting "as a simpler starting
// point" and cites the RTT-unfairness literature as adjacent work. This
// file adds that deferred axis: mixed-RTT intra-CCA sweeps measuring how
// a CCA divides bandwidth between flow classes with different base
// RTTs, at any of the paper's scales.

// RTTMixRow is one cell of a mixed-RTT fairness sweep.
type RTTMixRow struct {
	Setting   string
	FlowCount int
	CCA       string

	// ShortRTT/LongRTT are the two base RTTs (half the flows each).
	ShortRTT, LongRTT sim.Time

	// ShortShare is the aggregate goodput fraction of the short-RTT
	// half. 0.5 means RTT-fair; AIMD theory predicts the short-RTT
	// class takes more (throughput ∝ 1/RTT at equal loss → share up to
	// RTT ratio/(1+ratio)).
	ShortShare float64

	// PerClassJFI is Jain's index computed within each class
	// (short, long) — distinguishing inter-class bias from intra-class
	// dispersion.
	ShortJFI, LongJFI float64

	Utilization float64
	Converged   bool
}

// RTTMixFlows builds n flows of one CCA, alternating between two base
// RTTs (even indices short, odd long).
func RTTMixFlows(n int, ccaName string, short, long sim.Time) []FlowSpec {
	out := make([]FlowSpec, n)
	for i := range out {
		if i%2 == 0 {
			out[i] = FlowSpec{CCA: ccaName, RTT: short}
		} else {
			out[i] = FlowSpec{CCA: ccaName, RTT: long}
		}
	}
	return out
}

// RTTMixAnalyze computes a row from a completed mixed-RTT run.
func RTTMixAnalyze(setting string, ccaName string, short, long sim.Time, res RunResult) RTTMixRow {
	row := RTTMixRow{
		Setting:     setting,
		FlowCount:   len(res.Flows),
		CCA:         ccaName,
		ShortRTT:    short,
		LongRTT:     long,
		Utilization: res.Utilization,
		Converged:   res.Converged,
	}
	var shortG, longG []float64
	for _, f := range res.Flows {
		g := float64(f.Goodput)
		if f.Spec.RTT == short {
			shortG = append(shortG, g)
		} else {
			longG = append(longG, g)
		}
	}
	total := metrics.Sum(shortG) + metrics.Sum(longG)
	row.ShortShare = metrics.Share(metrics.Sum(shortG), total)
	row.ShortJFI = metrics.JFI(shortG)
	row.LongJFI = metrics.JFI(longG)
	return row
}

// RTTMixSweep runs the mixed-RTT experiment for one CCA across the
// setting's flow counts with the given RTT pair.
func RTTMixSweep(s Setting, ccaName string, short, long sim.Time, seed uint64, parallelism int) ([]RTTMixRow, error) {
	cfgs := make([]RunConfig, len(s.FlowCounts))
	for i, n := range s.FlowCounts {
		cfgs[i] = s.Build(RTTMixFlows(n, ccaName, short, long), WithSeed(Seed(seed+uint64(i))))
	}
	results, err := s.runMany(cfgs, parallelism)
	if err != nil {
		return nil, err
	}
	rows := make([]RTTMixRow, len(results))
	for i, res := range results {
		rows[i] = RTTMixAnalyze(s.Name, ccaName, short, long, res)
	}
	return rows, nil
}
