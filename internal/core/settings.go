package core

import (
	"context"
	"fmt"
	"time"

	"ccatscale/internal/budget"
	"ccatscale/internal/netem"
	"ccatscale/internal/sim"
	"ccatscale/internal/telemetry"
	"ccatscale/internal/units"
)

// Setting is one of the paper's two evaluation regimes (§3.1), plus the
// run-length parameters the methodology prescribes.
type Setting struct {
	// Name identifies the regime ("EdgeScale", "CoreScale", …).
	Name string
	// Rate is the bottleneck bandwidth.
	Rate units.Bandwidth
	// Buffer is the drop-tail capacity (≈1 BDP at 200 ms).
	Buffer units.ByteCount
	// FlowCounts are the x-axis points of the figures.
	FlowCounts []int
	// Warmup is the excluded start-up period.
	Warmup sim.Time
	// Duration is the measurement window after warm-up.
	Duration sim.Time
	// Stagger is the random start window.
	Stagger sim.Time
	// Converge, when positive, enables the paper's early-stop rule for
	// every run of the setting: stop once aggregate goodput changes
	// less than 1 % across consecutive windows of this length. Duration
	// then acts as the maximum run length, like the paper's 3-hour cap.
	Converge sim.Time
	// AQM overrides the bottleneck discipline for every run of the
	// setting ("" = drop-tail, the paper's configuration).
	AQM string
	// Topology replaces the dumbbell with an explicit link graph for
	// every run of the setting (nil = dumbbell built from Rate/Buffer).
	// See RunConfig.Topology.
	Topology *netem.TopologySpec `json:",omitempty"`
	// ECN enables RFC 3168 marking end to end for every run of the
	// setting (dumbbell only; topology links carry their own ECN flag).
	ECN bool `json:",omitempty"`
	// ECNMarkBytes overrides the dumbbell's drop-tail CE-marking
	// threshold (0 = Buffer/4; ignored without ECN).
	ECNMarkBytes units.ByteCount `json:",omitempty"`
	// BurstLoss applies Gilbert–Elliott burst loss to every run of the
	// setting (nil = off).
	BurstLoss *BurstLossSpec
	// Outage applies a link outage schedule to every run of the setting
	// (nil = none).
	Outage *OutageSpec
	// WallLimit bounds each run's wall-clock time (0 = unlimited).
	WallLimit time.Duration
	// StallEvents enables the virtual-time stall guard per run
	// (0 = disabled).
	StallEvents uint64
	// FaultPanicAt, when positive, injects a panic into every run of
	// the setting at this virtual time — the supervisor drill behind
	// reproduce -panicjob.
	FaultPanicAt sim.Time
	// Audit selects the invariant-auditing policy for every run of the
	// setting ("", "off", "warn", or "strict").
	Audit string
	// AuditDrillAt, when positive, corrupts the bottleneck queue
	// accounting in every run at this virtual time — the auditor drill
	// behind -audit-drill (requires a non-off Audit policy).
	AuditDrillAt sim.Time
	// Budget bounds every run of the setting (nil = unlimited); see
	// RunConfig.Budget.
	Budget *budget.Budget
	// Fidelity degrades every run of the setting to the given tier via
	// DegradeTier (0 = full fidelity). Batch drivers bump it when
	// retrying a sweep whose full-fidelity attempt breached its budget.
	Fidelity int
	// Retries is the reduced-fidelity retry allowance every sweep of the
	// setting passes to RunManyCtx (0 = fail or reject on first breach).
	Retries int
	// Telemetry attaches a collector to every run built from the setting
	// (nil = off). Like RunConfig.Collector it is a live attachment, not
	// part of the experiment's identity, and is excluded from
	// serialization.
	Telemetry telemetry.Collector `json:"-"`
	// Ctx, when non-nil, is the context every sweep of the setting runs
	// under: cancellation stops queued configs and per-job deadlines
	// propagate into the engine's wall-clock guard. Batch drivers set it
	// per job (lease loss, worker shutdown); nil means background. A
	// live attachment like Telemetry, excluded from serialization.
	Ctx context.Context `json:"-"`
	// UsageSink routes every run's resource usage to this setting's own
	// receiver instead of the process-global SetUsageSink — see
	// RunConfig.UsageSink. A live attachment, excluded from
	// serialization.
	UsageSink func(budget.Usage) `json:"-"`
}

// RTTs are the three base round-trip times every fairness figure sweeps.
var RTTs = []sim.Time{20 * sim.Millisecond, 100 * sim.Millisecond, 200 * sim.Millisecond}

// DefaultRTT is the RTT of the Mathis experiments (§4: "all flows run
// NewReno and have a 20ms RTT").
const DefaultRTT = 20 * sim.Millisecond

// EdgeScale is the paper's edge-link regime: 100 Mbps, 3 MB buffer,
// tens of flows. Run lengths are scaled from the paper's hours to tens
// of virtual seconds; the paper's own convergence criterion shows the
// metrics stabilize far earlier than its conservative 3-hour cap.
func EdgeScale() Setting {
	return Setting{
		Name:       "EdgeScale",
		Rate:       100 * units.MbitPerSec,
		Buffer:     3 * units.MB,
		FlowCounts: []int{10, 30, 50},
		Warmup:     15 * sim.Second,
		Duration:   60 * sim.Second,
		Stagger:    5 * sim.Second,
	}
}

// CoreScale is the paper's at-scale regime at full fidelity: 10 Gbps,
// 375 MB buffer, thousands of flows. A full-figure sweep at this
// setting processes billions of simulator events; use CoreScaleScaled
// for interactive work and reserve this for --full runs.
func CoreScale() Setting {
	return Setting{
		Name:       "CoreScale",
		Rate:       10 * units.GbitPerSec,
		Buffer:     375 * units.MB,
		FlowCounts: []int{1000, 3000, 5000},
		Warmup:     30 * sim.Second,
		Duration:   120 * sim.Second,
		Stagger:    10 * sim.Second,
	}
}

// CoreScaleScaled shrinks CoreScale by the given divisor while holding
// the two ratios that drive the at-scale phenomena: per-flow bandwidth
// (2 Mbps/flow) and buffer-to-BDP (≈1 BDP at 200 ms). divisor 10 gives
// 1 Gbps with 100–500 flows; divisor 50 gives 200 Mbps with 20–100
// flows (the benchmark tier).
func CoreScaleScaled(divisor int) Setting {
	if divisor < 1 {
		divisor = 1
	}
	s := CoreScale()
	s.Name = fmt.Sprintf("CoreScale/%d", divisor)
	s.Rate = units.Bandwidth(int64(s.Rate) / int64(divisor))
	s.Buffer = units.BDP(s.Rate, 200*sim.Millisecond) * 3 / 2 // paper: 375MB = 1.5×BDP(200ms)
	for i, n := range s.FlowCounts {
		s.FlowCounts[i] = n / divisor
	}
	s.Warmup = 15 * sim.Second
	s.Duration = 60 * sim.Second
	s.Stagger = 5 * sim.Second
	return s
}

// Seed is a typed simulation seed. It exists so the options-based
// config path cannot transpose a seed with a flow count or any other
// bare integer: WithSeed(Seed(42)) reads as what it is at every call
// site, and nothing else converts to it implicitly.
type Seed uint64

// ConfigOption customizes a RunConfig built by Setting.Build.
type ConfigOption func(*RunConfig)

// WithSeed sets the run's seed.
func WithSeed(seed Seed) ConfigOption {
	return func(c *RunConfig) { c.Seed = uint64(seed) }
}

// WithRunCollector attaches a telemetry collector to the built config,
// overriding the setting's Telemetry attachment.
func WithRunCollector(coll telemetry.Collector) ConfigOption {
	return func(c *RunConfig) { c.Collector = coll }
}

// Build constructs a RunConfig for this setting with the given flows,
// customized by options (seed, telemetry, …). A non-zero Fidelity
// degrades the config through DegradeTier before it is returned.
func (s Setting) Build(flows []FlowSpec, opts ...ConfigOption) RunConfig {
	cfg := RunConfig{
		Rate:         s.Rate,
		Buffer:       s.Buffer,
		Flows:        flows,
		Warmup:       s.Warmup,
		Duration:     s.Duration,
		Stagger:      s.Stagger,
		Converge:     s.Converge,
		AQM:          s.AQM,
		Topology:     s.Topology,
		ECN:          s.ECN,
		ECNMarkBytes: s.ECNMarkBytes,
		BurstLoss:    s.BurstLoss,
		Outage:       s.Outage,
		WallLimit:    s.WallLimit,
		StallEvents:  s.StallEvents,
		FaultPanicAt: s.FaultPanicAt,
		Audit:        s.Audit,
		AuditDrillAt: s.AuditDrillAt,
		Budget:       s.Budget,
		Collector:    s.Telemetry,
		UsageSink:    s.UsageSink,
	}
	for _, opt := range opts {
		opt(&cfg)
	}
	if s.Fidelity > 0 {
		cfg = DegradeTier(cfg, s.Fidelity)
	}
	return cfg
}

// Config builds a RunConfig for this setting with the given flows and
// seed.
//
// Deprecated: use Build with WithSeed — the positional uint64 here is
// transposable with flow counts at call sites.
func (s Setting) Config(flows []FlowSpec, seed uint64) RunConfig {
	return s.Build(flows, WithSeed(Seed(seed)))
}
