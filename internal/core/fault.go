package core

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"ccatscale/internal/netem"
	"ccatscale/internal/sim"
)

// This file defines the fault-injection surface of a run: burst loss
// and link outages, the two impairment regimes the paper's clean
// testbed excludes and under which its throughput-model findings are
// expected to degrade. Both are plain-value specs so they serialize
// into failure records and round-trip through command-line flags.

// BurstLossSpec configures Gilbert–Elliott burst loss on the forward
// path in the two-parameter simple-Gilbert form: a target long-run loss
// rate delivered in bursts of a given mean length. MeanBurstLen = 1
// degenerates to independent Bernoulli loss (exactly RandomLoss).
type BurstLossSpec struct {
	// MeanLoss is the stationary drop probability in [0, 1).
	MeanLoss float64 `json:"meanLoss"`
	// MeanBurstLen is the mean number of consecutive drops per loss
	// episode, ≥ 1.
	MeanBurstLen float64 `json:"meanBurstLen"`
}

// String renders the spec in the ccatscale -burst flag syntax
// ("0.005,8").
func (s *BurstLossSpec) String() string {
	return fmt.Sprintf("%g,%g", s.MeanLoss, s.MeanBurstLen)
}

func (s *BurstLossSpec) validate() error {
	if s.MeanLoss < 0 || s.MeanLoss >= 1 {
		return fmt.Errorf("core: burst mean loss %v outside [0, 1)", s.MeanLoss)
	}
	if s.MeanBurstLen < 1 {
		return fmt.Errorf("core: burst mean length %v below 1 packet", s.MeanBurstLen)
	}
	return nil
}

// gilbert converts the spec to the netem channel configuration.
func (s *BurstLossSpec) gilbert() netem.GilbertElliottConfig {
	return netem.SimpleGilbert(s.MeanLoss, s.MeanBurstLen)
}

// ParseBurstLoss parses the -burst flag syntax "meanLoss,meanBurstLen".
func ParseBurstLoss(text string) (*BurstLossSpec, error) {
	parts := strings.Split(text, ",")
	if len(parts) != 2 {
		return nil, fmt.Errorf("core: burst spec %q, want \"meanLoss,meanBurstLen\" (e.g. \"0.005,8\")", text)
	}
	loss, err := strconv.ParseFloat(strings.TrimSpace(parts[0]), 64)
	if err != nil {
		return nil, fmt.Errorf("core: burst mean loss: %w", err)
	}
	blen, err := strconv.ParseFloat(strings.TrimSpace(parts[1]), 64)
	if err != nil {
		return nil, fmt.Errorf("core: burst mean length: %w", err)
	}
	spec := &BurstLossSpec{MeanLoss: loss, MeanBurstLen: blen}
	if err := spec.validate(); err != nil {
		return nil, err
	}
	return spec, nil
}

// OutageSpec schedules deterministic link outages (flaps) on the
// forward path: Count dark windows of length Down, the first at Start,
// repeating every Period. The schedule is configuration, not
// randomness, so runs remain bit-identical under a fixed seed.
type OutageSpec struct {
	// Start is the first outage's start time.
	Start sim.Time `json:"startNs"`
	// Down is each outage's duration.
	Down sim.Time `json:"downNs"`
	// Period is the flap period (0 with Count 1 = a single outage).
	Period sim.Time `json:"periodNs"`
	// Count is the number of outages (≥ 1).
	Count int `json:"count"`
	// Hold parks in-flight packets and releases them when the link
	// returns instead of dropping them.
	Hold bool `json:"hold,omitempty"`
}

// String renders the spec in the ccatscale -outage flag syntax
// ("start,down,period,count[,hold]"), e.g. "2s,1s,10s,3".
func (s *OutageSpec) String() string {
	out := fmt.Sprintf("%v,%v,%v,%d", s.Start, s.Down, s.Period, s.Count)
	if s.Hold {
		out += ",hold"
	}
	return out
}

func (s *OutageSpec) validate() error {
	if s.Start < 0 {
		return fmt.Errorf("core: outage start %v negative", s.Start)
	}
	if s.Down <= 0 {
		return fmt.Errorf("core: outage down-time %v not positive", s.Down)
	}
	if s.Count < 1 {
		return fmt.Errorf("core: outage count %d below 1", s.Count)
	}
	if s.Count > 1 && s.Period < s.Down {
		return fmt.Errorf("core: outage period %v shorter than down-time %v: windows overlap", s.Period, s.Down)
	}
	return nil
}

// windows expands the spec into the netem schedule.
func (s *OutageSpec) windows() []netem.OutageWindow {
	return netem.Flaps(s.Start, s.Down, s.Period, s.Count)
}

// ParseOutage parses the -outage flag syntax
// "start,down,period,count[,hold]".
func ParseOutage(text string) (*OutageSpec, error) {
	parts := strings.Split(text, ",")
	if len(parts) < 4 || len(parts) > 5 {
		return nil, fmt.Errorf("core: outage spec %q, want \"start,down,period,count[,hold]\" (e.g. \"2s,1s,10s,3\")", text)
	}
	durs := make([]sim.Time, 3)
	for i, name := range []string{"start", "down", "period"} {
		d, err := time.ParseDuration(strings.TrimSpace(parts[i]))
		if err != nil {
			return nil, fmt.Errorf("core: outage %s: %w", name, err)
		}
		durs[i] = sim.Duration(d)
	}
	count, err := strconv.Atoi(strings.TrimSpace(parts[3]))
	if err != nil {
		return nil, fmt.Errorf("core: outage count: %w", err)
	}
	spec := &OutageSpec{Start: durs[0], Down: durs[1], Period: durs[2], Count: count}
	if len(parts) == 5 {
		switch p := strings.TrimSpace(parts[4]); p {
		case "hold":
			spec.Hold = true
		case "drop", "":
		default:
			return nil, fmt.Errorf("core: outage policy %q, want \"drop\" or \"hold\"", p)
		}
	}
	if err := spec.validate(); err != nil {
		return nil, err
	}
	return spec, nil
}
