package core

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"time"

	"ccatscale/internal/audit"
	"ccatscale/internal/budget"
	"ccatscale/internal/sim"
)

// RunError is the structured failure record of the run supervisor.
// Every invariant panic inside the simulation stack and every watchdog
// stop is converted into one of these, carrying enough context — seed,
// full config snapshot, virtual time, event count — to replay the
// failing run in one command. It is JSON-serializable so batch drivers
// (cmd/reproduce) can checkpoint failures to disk next to the results
// they did not produce.
type RunError struct {
	// Reason classifies the failure: "panic", "invariant violation",
	// "wall-clock limit exceeded", or "virtual-time stall".
	Reason string `json:"reason"`
	// Seed is the run's RNG seed.
	Seed uint64 `json:"seed"`
	// VirtualTime is the simulation clock at the moment of failure.
	VirtualTime sim.Time `json:"virtualTimeNs"`
	// Events is the number of simulator events processed before the
	// failure.
	Events uint64 `json:"events"`
	// Wall is the wall-clock duration the run had consumed.
	Wall time.Duration `json:"wallNs"`
	// PanicMsg is the panic value's string form (empty for watchdog
	// stops).
	PanicMsg string `json:"panic,omitempty"`
	// Stack is the goroutine stack at the panic site (empty for
	// watchdog stops).
	Stack string `json:"stack,omitempty"`
	// Violation is the structured invariant violation when Reason is
	// "invariant violation" (the strict audit policy failed the run).
	Violation *audit.InvariantViolation `json:"violation,omitempty"`
	// Budget is the structured breach when Reason is "budget breach": the
	// resource kind, the limit, the observed value, and (for in-flight
	// breaches) a checkpoint of what completed before enforcement
	// stopped the run.
	Budget *budget.BudgetError `json:"budget,omitempty"`
	// Config is the complete configuration of the failed run; replaying
	// it with the same seed reproduces the failure bit-for-bit.
	Config RunConfig `json:"config"`
}

// Unwrap exposes the structured budget breach (when there is one) to
// errors.As, so callers can match *budget.BudgetError without knowing
// it arrived wrapped in a RunError.
func (e *RunError) Unwrap() error {
	if e.Budget != nil {
		return e.Budget
	}
	return nil
}

// Error summarizes the failure with its replay context on one line.
func (e *RunError) Error() string {
	var b strings.Builder
	fmt.Fprintf(&b, "core: run failed: %s", e.Reason)
	if e.PanicMsg != "" {
		fmt.Fprintf(&b, ": %s", e.PanicMsg)
	}
	if e.Budget != nil {
		fmt.Fprintf(&b, ": %s", e.Budget.Error())
	}
	fmt.Fprintf(&b, " [seed=%d vt=%v events=%d flows=%s]",
		e.Seed, e.VirtualTime, e.Events, flowsSummary(e.Config.Flows))
	fmt.Fprintf(&b, "; replay: %s", e.ReplayCommand())
	return b.String()
}

// flowsSummary renders a compact count-by-CCA description, e.g.
// "100 (50 cubic, 50 reno)".
func flowsSummary(flows []FlowSpec) string {
	counts := map[string]int{}
	for _, f := range flows {
		counts[f.CCA]++
	}
	if len(counts) <= 1 {
		for cca := range counts {
			return fmt.Sprintf("%d %s", len(flows), cca)
		}
		return "0"
	}
	names := make([]string, 0, len(counts))
	for cca := range counts {
		names = append(names, cca)
	}
	sort.Strings(names)
	parts := make([]string, len(names))
	for i, cca := range names {
		parts[i] = fmt.Sprintf("%d %s", counts[cca], cca)
	}
	return fmt.Sprintf("%d (%s)", len(flows), strings.Join(parts, ", "))
}

// FlowsSpec renders flows in the ccatscale -flows syntax
// ("4xbbr@20ms,4xcubic@100ms"), grouping consecutive identical specs.
// The rendering is exact: parsing it back yields the same flow list in
// the same order.
func FlowsSpec(flows []FlowSpec) string {
	var b strings.Builder
	for i := 0; i < len(flows); {
		j := i
		for j < len(flows) && flows[j] == flows[i] {
			j++
		}
		if b.Len() > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%dx%s@%v", j-i, flows[i].CCA, flows[i].RTT)
		i = j
	}
	return b.String()
}

// maxReplayGroups bounds the -flows form of ReplayCommand: interleaved
// mixes at scale group poorly (5000 alternating flows are 5000 groups),
// and those runs replay from the serialized failure record instead.
const maxReplayGroups = 8

// ReplayCommand returns a one-line command that reproduces the failing
// run. Compact configurations replay through explicit ccatscale flags;
// configurations that do not fit a command line (large interleaved flow
// mixes) replay from the JSON failure record written next to the
// sweep's results ("ccatscale replay -in <job>.failed.json").
func (e *RunError) ReplayCommand() string {
	cfg := e.Config
	groups := 0
	for i := 0; i < len(cfg.Flows); {
		j := i
		for j < len(cfg.Flows) && cfg.Flows[j] == cfg.Flows[i] {
			j++
		}
		groups++
		i = j
	}
	if groups > maxReplayGroups {
		return "ccatscale replay -in <job>.failed.json"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "ccatscale run -flows %s -rate-bps %d -buffer-bytes %d -seed %d",
		FlowsSpec(cfg.Flows), int64(cfg.Rate), int64(cfg.Buffer), e.Seed)
	if cfg.Warmup > 0 {
		fmt.Fprintf(&b, " -warmup %v", cfg.Warmup)
	}
	if cfg.Duration > 0 {
		fmt.Fprintf(&b, " -duration %v", cfg.Duration)
	}
	if cfg.Stagger > 0 {
		fmt.Fprintf(&b, " -stagger %v", cfg.Stagger)
	}
	if cfg.Converge > 0 {
		fmt.Fprintf(&b, " -converge %v", cfg.Converge)
	}
	if cfg.AQM != "" {
		fmt.Fprintf(&b, " -aqm %s", cfg.AQM)
	}
	if cfg.BurstLoss != nil {
		fmt.Fprintf(&b, " -burst %s", cfg.BurstLoss)
	}
	if cfg.Outage != nil {
		fmt.Fprintf(&b, " -outage %s", cfg.Outage)
	}
	if cfg.FaultPanicAt > 0 {
		fmt.Fprintf(&b, " -panic-at %v", cfg.FaultPanicAt)
	}
	if cfg.Audit != "" && cfg.Audit != "off" {
		fmt.Fprintf(&b, " -audit %s", cfg.Audit)
	}
	if cfg.AuditDrillAt > 0 {
		fmt.Fprintf(&b, " -audit-drill %v", cfg.AuditDrillAt)
	}
	return b.String()
}

// WriteJSON serializes the failure record (indented, stable field
// order) for checkpointing next to sweep results.
func (e *RunError) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(e)
}

// ReadRunError deserializes a failure record written by WriteJSON.
func ReadRunError(r io.Reader) (*RunError, error) {
	var e RunError
	if err := json.NewDecoder(r).Decode(&e); err != nil {
		return nil, fmt.Errorf("core: decoding failure record: %w", err)
	}
	return &e, nil
}
