package core

import (
	"context"
	"errors"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"ccatscale/internal/budget"
	"ccatscale/internal/sim"
	"ccatscale/internal/telemetry"
	"ccatscale/internal/units"
)

// countingCollector tallies events by kind, safely across parallel runs.
type countingCollector struct {
	mu     sync.Mutex
	counts map[telemetry.Kind]int
	events []telemetry.Event
}

func newCountingCollector() *countingCollector {
	return &countingCollector{counts: map[telemetry.Kind]int{}}
}

func (c *countingCollector) Emit(ev telemetry.Event) {
	c.mu.Lock()
	c.counts[ev.Kind]++
	c.events = append(c.events, ev)
	c.mu.Unlock()
}

func telemetryTestConfig(coll telemetry.Collector) RunConfig {
	return RunConfig{
		Rate:      50 * units.MbitPerSec,
		Buffer:    units.BDP(50*units.MbitPerSec, 40*sim.Millisecond),
		Flows:     UniformFlows(4, "reno", 20*sim.Millisecond),
		Warmup:    2 * sim.Second,
		Duration:  8 * sim.Second,
		Stagger:   sim.Second,
		Seed:      7,
		Collector: coll,
	}
}

// TestTelemetryDoesNotPerturbRun is the package-level statement of the
// observability-never-perturbs guarantee: the full RunResult must be
// identical with and without a live collector. cmd/fprint re-verifies
// this across CCAs and impairments at the CLI level.
func TestTelemetryDoesNotPerturbRun(t *testing.T) {
	plain, err := Run(telemetryTestConfig(nil))
	if err != nil {
		t.Fatal(err)
	}
	observed, err := Run(telemetryTestConfig(newCountingCollector()))
	if err != nil {
		t.Fatal(err)
	}
	// The echoed config carries the collector itself and usage carries
	// wall-clock time; neither is simulation outcome.
	plain.Config.Collector, observed.Config.Collector = nil, nil
	plain.Usage.Wall, observed.Usage.Wall = 0, 0
	if !reflect.DeepEqual(plain, observed) {
		t.Fatalf("attaching a collector changed the result:\nplain:    %+v\nobserved: %+v", plain, observed)
	}
}

func TestTelemetryEventAccounting(t *testing.T) {
	coll := newCountingCollector()
	res, err := Run(telemetryTestConfig(coll))
	if err != nil {
		t.Fatal(err)
	}
	n := len(res.Flows)
	if got := coll.counts[telemetry.KindRunStart]; got != 1 {
		t.Errorf("run-start events = %d, want 1", got)
	}
	if got := coll.counts[telemetry.KindRunEnd]; got != 1 {
		t.Errorf("run-end events = %d, want 1", got)
	}
	if got := coll.counts[telemetry.KindFlowStart]; got != n {
		t.Errorf("flow-start events = %d, want %d", got, n)
	}
	if got := coll.counts[telemetry.KindFlowEnd]; got != n {
		t.Errorf("flow-end events = %d, want %d", got, n)
	}
	// Flow stats count episodes inside the measurement window; telemetry
	// sees the whole run including warmup, so it can only report more.
	var episodes int
	for _, f := range res.Flows {
		episodes += int(f.FastRecoveries + f.RTOs)
	}
	if got := coll.counts[telemetry.KindLoss]; got < episodes {
		t.Errorf("loss events = %d, want at least window FastRecoveries+RTOs = %d", got, episodes)
	}
	if episodes == 0 {
		t.Error("test regime produced no loss episodes; accounting not exercised")
	}
	if fr := coll.counts[telemetry.KindRecoveryExit]; fr == 0 {
		t.Error("no recovery-exit events emitted")
	}
	// Sampling shares the interrupt hook, which must have fired over an
	// 8-virtual-second run.
	if got := coll.counts[telemetry.KindEngineSample]; got == 0 {
		t.Error("no engine samples emitted")
	}
	if got := coll.counts[telemetry.KindQueueWatermark]; got == 0 {
		t.Error("no queue watermark emitted despite a lossy run")
	}
}

func TestTelemetryBBRStateTransitions(t *testing.T) {
	cfg := telemetryTestConfig(nil)
	cfg.Flows = UniformFlows(2, "bbr", 20*sim.Millisecond)
	coll := newCountingCollector()
	cfg.Collector = coll
	if _, err := Run(cfg); err != nil {
		t.Fatal(err)
	}
	if got := coll.counts[telemetry.KindCCAState]; got == 0 {
		t.Fatal("BBR run emitted no state transitions")
	}
	for _, ev := range coll.events {
		if ev.Kind != telemetry.KindCCAState {
			continue
		}
		if ev.Prev == "" || ev.Label == "" || ev.Prev == ev.Label {
			t.Fatalf("malformed transition event: %+v", ev)
		}
		if ev.CCA != "bbr" {
			t.Fatalf("transition from unexpected CCA: %+v", ev)
		}
	}
}

func TestRunCtxCancellation(t *testing.T) {
	ctx, cancel := context.WithCancelCause(context.Background())
	cancel(errors.New("test deadline"))
	cfg := telemetryTestConfig(nil)
	cfg.Duration = 2 * sim.Minute
	_, err := RunCtx(ctx, cfg)
	if err == nil {
		t.Fatal("expected a cancellation error")
	}
	var re *RunError
	if !errors.As(err, &re) {
		t.Fatalf("cancellation should surface as *RunError, got %T: %v", err, err)
	}
	if !strings.Contains(err.Error(), "run canceled") || !strings.Contains(err.Error(), "test deadline") {
		t.Fatalf("error should name the cancellation cause: %v", err)
	}
}

// TestRunCtxDeadlineBecomesWallLimit: a context deadline clamps the
// wall-clock watchdog under it, so the stop surfaces as the replayable,
// retryable "wall-clock" RunError (the degradation ladder's trigger)
// rather than an opaque cancellation, and the run returns with margin
// left before the deadline for the caller to commit the outcome.
func TestRunCtxDeadlineBecomesWallLimit(t *testing.T) {
	cfg := telemetryTestConfig(nil)
	cfg.Duration = 10 * sim.Minute // far more virtual work than 300ms of wall
	deadline := 300 * time.Millisecond
	ctx, cancel := context.WithTimeout(context.Background(), deadline)
	defer cancel()
	start := time.Now()
	_, err := RunCtx(ctx, cfg)
	elapsed := time.Since(start)
	var re *RunError
	if !errors.As(err, &re) {
		t.Fatalf("deadline stop should surface as *RunError, got %T: %v", err, err)
	}
	if !strings.HasPrefix(re.Reason, "wall-clock") {
		t.Fatalf("reason = %q, want wall-clock watchdog (not ctx cancellation)", re.Reason)
	}
	if elapsed >= deadline+200*time.Millisecond {
		t.Fatalf("run returned %v after a %v deadline", elapsed, deadline)
	}
	// An explicit tighter WallLimit still wins over a looser deadline.
	cfg2 := telemetryTestConfig(nil)
	cfg2.Duration = 10 * sim.Minute
	cfg2.WallLimit = 50 * time.Millisecond
	ctx2, cancel2 := context.WithTimeout(context.Background(), time.Hour)
	defer cancel2()
	_, err = RunCtx(ctx2, cfg2)
	if !errors.As(err, &re) || !strings.Contains(re.Reason, "50ms") {
		t.Fatalf("tighter WallLimit should fire unchanged, got %v", err)
	}
}

func TestSweepEmitsAdmissionDegradation(t *testing.T) {
	coll := newCountingCollector()
	cfg := telemetryTestConfig(nil)
	// Price the budget between the tier-1 and tier-0 estimates, so
	// admission must degrade exactly once before the config fits.
	est0 := EstimateConfig(cfg).Events
	est1 := EstimateConfig(DegradeTier(cfg, 1)).Events
	if est1 >= est0 {
		t.Skipf("tier 1 does not shrink the estimate (%d vs %d)", est1, est0)
	}
	res, err := RunManyCtx(context.Background(), []RunConfig{cfg}, SweepOptions{
		Collector: coll,
		Budget:    &budget.Budget{Events: est1},
		Retries:   3,
	})
	if err != nil {
		var be *budget.BudgetError
		if errors.As(err, &be) {
			t.Fatalf("config should have been admitted at tier 1, got %v", be)
		}
		t.Fatal(err)
	}
	if len(res) != 1 {
		t.Fatalf("got %d results, want 1", len(res))
	}
	if got := coll.counts[telemetry.KindDegraded]; got == 0 {
		t.Error("no degraded event emitted for an over-budget admission")
	}
}
