package core

import (
	"bytes"
	"errors"
	"strings"
	"testing"
	"time"

	"ccatscale/internal/sim"
	"ccatscale/internal/units"
)

// smallConfig is a seconds-long two-flow run for supervisor tests.
func smallConfig(seed uint64) RunConfig {
	return RunConfig{
		Rate:     20 * units.MbitPerSec,
		Buffer:   256 * units.KB,
		Flows:    UniformFlows(2, "reno", 20*sim.Millisecond),
		Warmup:   sim.Second,
		Duration: 3 * sim.Second,
		Stagger:  100 * sim.Millisecond,
		Seed:     seed,
	}
}

func TestInjectedPanicBecomesRunError(t *testing.T) {
	cfg := smallConfig(7)
	cfg.FaultPanicAt = 500 * sim.Millisecond
	_, err := Run(cfg)
	if err == nil {
		t.Fatal("injected panic produced no error")
	}
	var re *RunError
	if !errors.As(err, &re) {
		t.Fatalf("error type %T, want *RunError", err)
	}
	if re.Reason != "panic" {
		t.Fatalf("reason = %q, want panic", re.Reason)
	}
	if re.Seed != 7 {
		t.Fatalf("seed = %d, want 7", re.Seed)
	}
	if re.VirtualTime != 500*sim.Millisecond {
		t.Fatalf("virtual time = %v, want 500ms", re.VirtualTime)
	}
	if re.Events == 0 {
		t.Fatal("event count not captured")
	}
	if !strings.Contains(re.PanicMsg, "injected fault") {
		t.Fatalf("panic message %q lacks the injected marker", re.PanicMsg)
	}
	if re.Stack == "" {
		t.Fatal("stack not captured")
	}
	if len(re.Config.Flows) != 2 {
		t.Fatalf("config snapshot has %d flows, want 2", len(re.Config.Flows))
	}
	msg := re.Error()
	for _, want := range []string{"seed=7", "vt=500ms", "replay:", "2 reno"} {
		if !strings.Contains(msg, want) {
			t.Fatalf("Error() = %q lacks %q", msg, want)
		}
	}
}

func TestRunErrorJSONRoundTrip(t *testing.T) {
	cfg := smallConfig(9)
	cfg.BurstLoss = &BurstLossSpec{MeanLoss: 0.01, MeanBurstLen: 4}
	cfg.Outage = &OutageSpec{Start: sim.Second, Down: 100 * sim.Millisecond, Period: sim.Second, Count: 2}
	cfg.FaultPanicAt = 200 * sim.Millisecond
	_, err := Run(cfg)
	var re *RunError
	if !errors.As(err, &re) {
		t.Fatalf("error type %T, want *RunError", err)
	}
	var buf bytes.Buffer
	if err := re.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadRunError(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Seed != re.Seed || got.VirtualTime != re.VirtualTime || got.Reason != re.Reason {
		t.Fatalf("round trip mutated header: %+v vs %+v", got, re)
	}
	if got.Config.BurstLoss == nil || *got.Config.BurstLoss != *re.Config.BurstLoss {
		t.Fatal("round trip lost the burst-loss spec")
	}
	if got.Config.Outage == nil || *got.Config.Outage != *re.Config.Outage {
		t.Fatal("round trip lost the outage spec")
	}
	// The round-tripped config must reproduce the failure exactly.
	_, err = Run(got.Config)
	var re2 *RunError
	if !errors.As(err, &re2) {
		t.Fatalf("replayed config error type %T, want *RunError", err)
	}
	if re2.VirtualTime != re.VirtualTime || re2.Events != re.Events {
		t.Fatalf("replay diverged: vt %v/%v events %d/%d",
			re2.VirtualTime, re.VirtualTime, re2.Events, re.Events)
	}
}

func TestWallClockWatchdog(t *testing.T) {
	cfg := smallConfig(3)
	cfg.WallLimit = time.Nanosecond // exceeded at the first check
	cfg.StallEvents = 1 << 20       // irrelevant; high threshold
	_, err := Run(cfg)
	var re *RunError
	if !errors.As(err, &re) {
		t.Fatalf("error = %v (%T), want *RunError", err, err)
	}
	if !strings.Contains(re.Reason, "wall-clock limit") {
		t.Fatalf("reason = %q, want wall-clock limit", re.Reason)
	}
	if re.Seed != 3 || re.Events == 0 {
		t.Fatalf("context not captured: seed=%d events=%d", re.Seed, re.Events)
	}
}

func TestWatchdogOffByDefault(t *testing.T) {
	res, err := Run(smallConfig(5))
	if err != nil {
		t.Fatal(err)
	}
	if res.AggregateGoodput <= 0 {
		t.Fatal("run produced no goodput")
	}
}

func TestBurstLossRunDeterministicAndCounted(t *testing.T) {
	run := func() RunResult {
		cfg := smallConfig(11)
		cfg.BurstLoss = &BurstLossSpec{MeanLoss: 0.01, MeanBurstLen: 5}
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.BurstDrops == 0 {
		t.Fatal("burst loss configured but no burst drops counted")
	}
	if a.BurstDrops != b.BurstDrops || a.AggregateGoodput != b.AggregateGoodput || a.Events != b.Events {
		t.Fatalf("same seed diverged: drops %d/%d goodput %v/%v events %d/%d",
			a.BurstDrops, b.BurstDrops, a.AggregateGoodput, b.AggregateGoodput, a.Events, b.Events)
	}
}

func TestOutageRunDeterministicAndCounted(t *testing.T) {
	run := func() RunResult {
		cfg := smallConfig(13)
		cfg.Outage = &OutageSpec{Start: 1500 * sim.Millisecond, Down: 200 * sim.Millisecond, Period: sim.Second, Count: 2}
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.OutageDrops == 0 {
		t.Fatal("outages configured but no outage drops counted")
	}
	if a.OutageDrops != b.OutageDrops || a.AggregateGoodput != b.AggregateGoodput {
		t.Fatalf("same seed diverged: drops %d/%d goodput %v/%v",
			a.OutageDrops, b.OutageDrops, a.AggregateGoodput, b.AggregateGoodput)
	}
	// The dark windows must cost throughput relative to a clean run.
	clean, err := Run(smallConfig(13))
	if err != nil {
		t.Fatal(err)
	}
	if a.AggregateGoodput >= clean.AggregateGoodput {
		t.Fatalf("outage run goodput %v not below clean run %v", a.AggregateGoodput, clean.AggregateGoodput)
	}
}

func TestFlowsSpecGrouping(t *testing.T) {
	flows := append(UniformFlows(3, "reno", 20*sim.Millisecond),
		UniformFlows(2, "bbr", 100*sim.Millisecond)...)
	if got, want := FlowsSpec(flows), "3xreno@20ms,2xbbr@100ms"; got != want {
		t.Fatalf("FlowsSpec = %q, want %q", got, want)
	}
	if got := FlowsSpec(nil); got != "" {
		t.Fatalf("FlowsSpec(nil) = %q, want empty", got)
	}
}

func TestReplayCommandCompactAndFallback(t *testing.T) {
	re := &RunError{Seed: 7, Config: smallConfig(7)}
	cmd := re.ReplayCommand()
	for _, want := range []string{"ccatscale run", "-flows 2xreno@20ms", "-seed 7", "-rate-bps 20000000", "-warmup 1s"} {
		if !strings.Contains(cmd, want) {
			t.Fatalf("replay command %q lacks %q", cmd, want)
		}
	}
	// An interleaved mix at scale cannot ride a flag; the command points
	// at the serialized failure record instead.
	big := smallConfig(7)
	big.Flows = MixedFlows(40, "bbr", "reno", 20*sim.Millisecond)
	reBig := &RunError{Seed: 7, Config: big}
	if !strings.Contains(reBig.ReplayCommand(), "replay -in") {
		t.Fatalf("large-config replay command %q should use the failure record", reBig.ReplayCommand())
	}
}

func TestParseBurstLossAndOutageRoundTrip(t *testing.T) {
	b, err := ParseBurstLoss("0.005,8")
	if err != nil {
		t.Fatal(err)
	}
	if b.MeanLoss != 0.005 || b.MeanBurstLen != 8 {
		t.Fatalf("parsed %+v", b)
	}
	if b2, err := ParseBurstLoss(b.String()); err != nil || *b2 != *b {
		t.Fatalf("burst round trip: %+v, %v", b2, err)
	}
	o, err := ParseOutage("2s,500ms,10s,3,hold")
	if err != nil {
		t.Fatal(err)
	}
	want := OutageSpec{Start: 2 * sim.Second, Down: 500 * sim.Millisecond, Period: 10 * sim.Second, Count: 3, Hold: true}
	if *o != want {
		t.Fatalf("parsed %+v, want %+v", o, want)
	}
	if o2, err := ParseOutage(o.String()); err != nil || *o2 != *o {
		t.Fatalf("outage round trip: %+v, %v", o2, err)
	}
	for _, bad := range []string{"", "0.5", "1,4", "0.1,0", "x,y"} {
		if _, err := ParseBurstLoss(bad); err == nil {
			t.Errorf("ParseBurstLoss(%q): no error", bad)
		}
	}
	for _, bad := range []string{"", "1s", "1s,0s,1s,2", "1s,2s,1s,2", "1s,1s,2s,0", "1s,1s,2s,2,maybe"} {
		if _, err := ParseOutage(bad); err == nil {
			t.Errorf("ParseOutage(%q): no error", bad)
		}
	}
}
