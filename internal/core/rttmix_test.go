package core

import (
	"testing"

	"ccatscale/internal/sim"
	"ccatscale/internal/units"
)

func TestRTTMixFlowsAlternate(t *testing.T) {
	flows := RTTMixFlows(5, "reno", 20*sim.Millisecond, 100*sim.Millisecond)
	if len(flows) != 5 {
		t.Fatalf("len = %d", len(flows))
	}
	for i, f := range flows {
		want := 20 * sim.Millisecond
		if i%2 == 1 {
			want = 100 * sim.Millisecond
		}
		if f.RTT != want || f.CCA != "reno" {
			t.Fatalf("flow %d = %+v", i, f)
		}
	}
}

func TestRTTMixAnalyze(t *testing.T) {
	short, long := 20*sim.Millisecond, 100*sim.Millisecond
	res := RunResult{
		Utilization: 0.95,
		Flows: []FlowResult{
			{Spec: FlowSpec{CCA: "reno", RTT: short}, Goodput: 60},
			{Spec: FlowSpec{CCA: "reno", RTT: long}, Goodput: 20},
			{Spec: FlowSpec{CCA: "reno", RTT: short}, Goodput: 60},
			{Spec: FlowSpec{CCA: "reno", RTT: long}, Goodput: 20},
		},
	}
	row := RTTMixAnalyze("x", "reno", short, long, res)
	if row.ShortShare != 0.75 {
		t.Fatalf("ShortShare = %v, want 0.75", row.ShortShare)
	}
	if row.ShortJFI != 1 || row.LongJFI != 1 {
		t.Fatalf("per-class JFI = %v/%v", row.ShortJFI, row.LongJFI)
	}
	if row.FlowCount != 4 || row.Utilization != 0.95 {
		t.Fatalf("row = %+v", row)
	}
}

func TestRTTMixSweepRenoShortRTTAdvantage(t *testing.T) {
	// The classic AIMD RTT bias: the short-RTT class must out-earn the
	// long-RTT class at a shared drop-tail bottleneck.
	s := Setting{
		Name:       "rttmix-test",
		Rate:       50 * units.MbitPerSec,
		Buffer:     units.BDP(50*units.MbitPerSec, 200*sim.Millisecond),
		FlowCounts: []int{8},
		Warmup:     10 * sim.Second,
		Duration:   60 * sim.Second,
		Stagger:    2 * sim.Second,
	}
	rows, err := RTTMixSweep(s, "reno", 20*sim.Millisecond, 100*sim.Millisecond, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	row := rows[0]
	if row.ShortShare <= 0.55 {
		t.Fatalf("short-RTT share = %v; expected a clear RTT advantage", row.ShortShare)
	}
	if row.ShortShare >= 0.99 {
		t.Fatalf("short-RTT share = %v; long-RTT flows fully starved", row.ShortShare)
	}
}

func TestRunSeriesSampling(t *testing.T) {
	cfg := RunConfig{
		Rate:           20 * units.MbitPerSec,
		Buffer:         units.BDP(20*units.MbitPerSec, 200*sim.Millisecond),
		Flows:          MixedFlows(4, "cubic", "reno", 20*sim.Millisecond),
		Warmup:         2 * sim.Second,
		Duration:       10 * sim.Second,
		Seed:           1,
		SeriesInterval: sim.Second,
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.SeriesNames) != 2 {
		t.Fatalf("SeriesNames = %v", res.SeriesNames)
	}
	if len(res.Series) < 10 {
		t.Fatalf("series points = %d", len(res.Series))
	}
	// Aggregate series rate in steady state ≈ link rate.
	last := res.Series[len(res.Series)-1]
	total := float64(last.Rates[0] + last.Rates[1])
	if total < 0.7*float64(cfg.Rate) {
		t.Fatalf("series total = %v on %v link", total, cfg.Rate)
	}
}
