package core

import (
	"fmt"
	"math"

	"ccatscale/internal/cca"
	"ccatscale/internal/metrics"
	"ccatscale/internal/netem"
	"ccatscale/internal/packet"
	"ccatscale/internal/sim"
	"ccatscale/internal/tcp"
	"ccatscale/internal/trace"
	"ccatscale/internal/units"
)

// The paper's Limitations section names "arrival and departures of new
// flows" among the real-Internet dynamics its fixed-population design
// deliberately excludes. This file adds that axis: finite transfers
// arriving as a Poisson process, measured by flow completion time — the
// workload model of the datacenter literature applied to the paper's
// wide-area bottleneck.

// ChurnConfig describes a flow-churn experiment.
type ChurnConfig struct {
	// Rate is the bottleneck bandwidth.
	Rate units.Bandwidth
	// Buffer is the bottleneck queue capacity.
	Buffer units.ByteCount
	// CCA is the algorithm every transfer uses.
	CCA string
	// RTT is the base round-trip time of every flow.
	RTT sim.Time
	// ArrivalRate is the Poisson arrival intensity in flows/second.
	ArrivalRate float64
	// TransferBytes is each flow's size (a fixed size keeps the offered
	// load interpretable; mixes are built by running sweeps).
	TransferBytes units.ByteCount
	// Duration is the arrival window; the run continues afterwards
	// until in-flight transfers finish or DrainTimeout passes.
	Duration sim.Time
	// DrainTimeout caps the post-arrival drain (default 30 s).
	DrainTimeout sim.Time
	// MaxFlows bounds concurrently tracked flows (arrivals beyond the
	// bound are dropped and counted; default 4096).
	MaxFlows int
	// Seed drives arrivals and CCA randomness.
	Seed uint64
	// AQM selects the bottleneck discipline ("" = drop-tail).
	AQM string
	// Background adds long-lived (infinite) flows sharing the
	// bottleneck for the whole run — the classic mice-vs-elephants
	// scenario: under drop-tail the elephants pin the buffer and every
	// short transfer pays the standing-queue delay.
	Background []FlowSpec
}

func (c *ChurnConfig) withDefaults() ChurnConfig {
	out := *c
	if out.DrainTimeout <= 0 {
		out.DrainTimeout = 30 * sim.Second
	}
	if out.MaxFlows <= 0 {
		out.MaxFlows = 4096
	}
	return out
}

func (c *ChurnConfig) validate() error {
	if c.Rate <= 0 || c.Buffer <= 0 || c.RTT <= 0 || c.Duration <= 0 {
		return fmt.Errorf("core: churn config with non-positive parameters")
	}
	if c.ArrivalRate <= 0 {
		return fmt.Errorf("core: churn needs a positive arrival rate")
	}
	for i, f := range c.Background {
		if f.RTT <= 0 {
			return fmt.Errorf("core: background flow %d has non-positive RTT", i)
		}
	}
	if c.TransferBytes <= 0 {
		return fmt.Errorf("core: churn needs a positive transfer size")
	}
	if _, ok := cca.ByName(c.CCA); !ok {
		return fmt.Errorf("core: unknown CCA %q", c.CCA)
	}
	return nil
}

// OfferedLoad returns the configured load as a fraction of bottleneck
// capacity (goodput basis).
func (c ChurnConfig) OfferedLoad() float64 {
	return c.ArrivalRate * float64(c.TransferBytes) * 8 / float64(c.Rate)
}

// ChurnResult summarizes a churn run.
type ChurnResult struct {
	Config ChurnConfig

	// Arrivals counts flows that arrived in the window; Rejected those
	// dropped at the MaxFlows bound; Completed those fully acknowledged
	// before the drain deadline.
	Arrivals  int
	Rejected  int
	Completed int

	// FCTs holds completion times in seconds for completed flows.
	FCTs []float64
	// MeanFCT/P50/P95/P99 summarize FCTs (0 when none completed).
	MeanFCT, P50FCT, P95FCT, P99FCT float64

	// Utilization is the bottleneck busy fraction over the whole run.
	Utilization float64
	// Drops counts bottleneck drops.
	Drops uint64
}

// RunChurn executes one churn experiment.
func RunChurn(cfg ChurnConfig) (ChurnResult, error) {
	if err := cfg.validate(); err != nil {
		return ChurnResult{}, err
	}
	cfg = cfg.withDefaults()

	eng := sim.NewEngine()
	rng := sim.NewRNG(cfg.Seed)
	qlog := trace.NewQueueLog(1)

	nBG := len(cfg.Background)
	rtts := make([]sim.Time, cfg.MaxFlows+nBG)
	for i := 0; i < cfg.MaxFlows; i++ {
		rtts[i] = cfg.RTT
	}
	for i, f := range cfg.Background {
		rtts[cfg.MaxFlows+i] = f.RTT
	}
	discipline := netem.DropTail
	if cfg.AQM == "codel" {
		discipline = netem.CoDel
	}
	db := netem.NewDumbbell(eng, netem.DumbbellConfig{
		Rate:       cfg.Rate,
		Buffer:     cfg.Buffer,
		RTT:        rtts,
		OnDrop:     qlog.OnDrop,
		Discipline: discipline,
	})

	senders := make([]*tcp.Sender, cfg.MaxFlows+nBG)
	receivers := make([]*tcp.Receiver, cfg.MaxFlows+nBG)
	db.SetEndpoints(
		func(p packet.Packet) {
			if r := receivers[p.Flow]; r != nil {
				r.OnData(p)
			}
		},
		func(p packet.Packet) {
			if s := senders[p.Flow]; s != nil {
				s.OnAck(p)
			}
		},
	)

	res := ChurnResult{Config: cfg}
	factory, _ := cca.ByName(cfg.CCA)

	// Long-lived background flows occupy the slots above MaxFlows.
	for i, f := range cfg.Background {
		bgFactory, ok := cca.ByName(f.CCA)
		if !ok {
			return ChurnResult{}, fmt.Errorf("core: unknown background CCA %q", f.CCA)
		}
		slot := int32(cfg.MaxFlows + i)
		receivers[slot] = tcp.NewReceiver(eng, slot, tcp.DefaultReceiverConfig(), db.SendAck)
		senders[slot] = tcp.NewSender(eng, slot, tcp.Config{
			CCA:    bgFactory(units.MSS, rng.Split()),
			Output: db.SendData,
		})
		senders[slot].Start(0)
	}

	// Slot reuse: completed flows free their slot for later arrivals,
	// after a TIME_WAIT-style quarantine long enough for every stale
	// packet of the previous incarnation (queued data, returning ACKs)
	// to leave the network — otherwise a new flow would process the old
	// flow's sequence space.
	timeWait := 4 * (cfg.RTT + cfg.Rate.TransmissionTime(cfg.Buffer))
	free := make([]int32, 0, cfg.MaxFlows)
	for i := cfg.MaxFlows - 1; i >= 0; i-- {
		free = append(free, int32(i))
	}

	var schedule func()
	arrive := func() {
		res.Arrivals++
		if len(free) == 0 {
			res.Rejected++
			return
		}
		slot := free[len(free)-1]
		free = free[:len(free)-1]
		start := eng.Now()
		ctrl := factory(units.MSS, rng.Split())
		receivers[slot] = tcp.NewReceiver(eng, slot, tcp.DefaultReceiverConfig(), db.SendAck)
		senders[slot] = tcp.NewSender(eng, slot, tcp.Config{
			CCA:           ctrl,
			Output:        db.SendData,
			TransferBytes: cfg.TransferBytes,
			OnComplete: func() {
				res.Completed++
				res.FCTs = append(res.FCTs, (eng.Now() - start).Seconds())
				senders[slot] = nil
				receivers[slot] = nil
				eng.After(timeWait, func() { free = append(free, slot) })
			},
		})
		senders[slot].Start(eng.Now())
	}
	// Poisson arrivals over the window.
	schedule = func() {
		if eng.Now() >= cfg.Duration {
			return
		}
		arrive()
		gap := sim.Time(-math.Log(1-rng.Float64()) / cfg.ArrivalRate * float64(sim.Second))
		if gap < sim.Microsecond {
			gap = sim.Microsecond
		}
		eng.After(gap, schedule)
	}
	eng.Schedule(0, schedule)

	eng.Run(cfg.Duration + cfg.DrainTimeout)

	res.Utilization = db.Port().Utilization()
	res.Drops = qlog.Total()
	if len(res.FCTs) > 0 {
		res.MeanFCT = metrics.Mean(res.FCTs)
		res.P50FCT = metrics.Median(res.FCTs)
		res.P95FCT = metrics.Quantile(res.FCTs, 0.95)
		res.P99FCT = metrics.Quantile(res.FCTs, 0.99)
	}
	return res, nil
}
