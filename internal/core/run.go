// Package core is the paper's contribution rebuilt as a library: the
// at-scale congestion-control evaluation harness. It wires the netem
// substrate, tcp transport, and cca algorithms into the dumbbell
// methodology of §3.2 — N infinite flows with staggered starts over one
// drop-tail bottleneck, a warm-up exclusion window, an optional
// convergence-based early stop — and computes every metric the paper's
// tables and figures report.
package core

import (
	"context"
	"fmt"
	"runtime"
	"runtime/debug"
	"sort"
	"time"

	"ccatscale/internal/audit"
	"ccatscale/internal/budget"
	"ccatscale/internal/cca"
	"ccatscale/internal/metrics"
	"ccatscale/internal/netem"
	"ccatscale/internal/packet"
	"ccatscale/internal/sim"
	"ccatscale/internal/tcp"
	"ccatscale/internal/telemetry"
	"ccatscale/internal/trace"
	"ccatscale/internal/units"
)

// FlowSpec describes one flow of a run.
type FlowSpec struct {
	// CCA is the congestion control algorithm name ("reno", "cubic",
	// "bbr").
	CCA string
	// RTT is the flow's base round-trip time.
	RTT sim.Time
}

// RunConfig describes one experiment run.
type RunConfig struct {
	// Rate is the bottleneck bandwidth.
	Rate units.Bandwidth
	// Buffer is the drop-tail queue capacity.
	Buffer units.ByteCount
	// Flows lists every flow.
	Flows []FlowSpec
	// Warmup is excluded from all metrics (the paper ignores the first
	// five minutes).
	Warmup sim.Time
	// Duration is the measurement window after warm-up.
	Duration sim.Time
	// Stagger is the start-time window: each flow begins at a uniform
	// random offset in [0, Stagger) (the paper uses 0–2 minutes).
	Stagger sim.Time
	// Seed drives all randomness; equal seeds reproduce runs exactly.
	Seed uint64
	// MSS defaults to units.MSS when zero.
	MSS units.ByteCount
	// DelAckDelay is the delayed-ACK timeout; 0 picks the default
	// (tcp.DelayedAckTimeout); negative disables delayed ACKs.
	DelAckDelay sim.Time
	// GROWindow is the receive-offload coalescing gap; 0 picks the
	// default (tcp.GROWindow, modeling the testbed's GRO + interrupt
	// coalescing); negative disables receive offload.
	GROWindow sim.Time
	// RandomLoss applies independent per-packet loss on the forward
	// path (netem-style). The paper's runs use 0 ("there is no random
	// loss"); calibration experiments use it to validate the Mathis
	// constant under the model's own independent-loss assumption.
	RandomLoss float64
	// Jitter adds uniform random delay in [0, Jitter) per data packet
	// on the forward path (netem-style).
	Jitter sim.Time
	// BurstLoss applies Gilbert–Elliott burst loss on the forward path
	// (nil = off). Unlike RandomLoss, drops arrive in correlated bursts
	// — the regime where the independent-loss throughput models break.
	BurstLoss *BurstLossSpec
	// Outage schedules deterministic link outages on the forward path
	// (nil = none).
	Outage *OutageSpec
	// FaultPanicAt, when positive, deliberately panics inside the event
	// loop at this virtual time. It exists to drill the run supervisor
	// end to end (tests, and reproduce -panicjob): the panic must
	// surface as a *RunError, not a crashed process.
	FaultPanicAt sim.Time
	// WallLimit bounds the run's wall-clock time; when exceeded the
	// supervisor stops the engine and returns a *RunError (0 = off).
	WallLimit time.Duration
	// StallEvents stops the run with a *RunError when the virtual clock
	// fails to advance across this many consecutive events — a livelock
	// guard for zero-delay event loops (0 = off).
	StallEvents uint64
	// Converge, when positive, enables the paper's early-stop rule:
	// the run ends once aggregate goodput changes by less than
	// ConvergeTolerance across consecutive windows of this length.
	Converge sim.Time
	// ConvergeTolerance defaults to 0.01 (1 %).
	ConvergeTolerance float64
	// MaxDropTimestamps bounds the retained drop-time list for
	// burstiness (0 = keep all).
	MaxDropTimestamps int
	// SeriesInterval, when positive, samples per-CCA aggregate goodput
	// at this period; the series is retained in RunResult.Series.
	SeriesInterval sim.Time
	// AQM selects the bottleneck discipline ("" or "droptail" = the
	// paper's drop-tail; "codel" = RFC 8289 CoDel, an extension axis).
	AQM string
	// Topology, when non-nil, replaces the dumbbell with a declared
	// multi-bottleneck graph: per-link rates, delays, buffers,
	// disciplines, and impairments, with flow f routed over
	// Topology.Paths[f] (so len(Paths) must equal len(Flows)). Rate,
	// Buffer, and AQM are ignored — every link declares its own — while
	// per-flow base RTTs still come from Flows, the residual after the
	// forward propagation delays riding the ACK return path.
	Topology *netem.TopologySpec `json:",omitempty"`
	// ECN enables RFC 3168 end-to-end negotiation: senders mark new
	// data ECT, marking queues set CE instead of (or ahead of)
	// dropping, receivers echo ECE, and senders reduce once per window
	// of data. On the dumbbell it also arms CE marking at the
	// bottleneck; topology links arm marking individually via
	// LinkSpec.ECN.
	ECN bool `json:",omitempty"`
	// ECNMarkBytes overrides the dumbbell's drop-tail CE-marking
	// threshold in wire bytes (0 = a quarter of the buffer; ignored by
	// CoDel, whose control law decides when to mark).
	ECNMarkBytes units.ByteCount `json:",omitempty"`
	// Audit selects the invariant-auditing policy: "" or "off" disables
	// it, "warn" counts violations and reports them in the result,
	// "strict" fails the run at the first violation with a structured,
	// replayable *RunError.
	Audit string
	// AuditDrillAt, when positive, deliberately corrupts one bottleneck
	// queue byte-decrement at this virtual time — a seeded accounting
	// bug the conservation ledger must catch. It requires a non-off
	// Audit policy and exists to drill the auditor end to end.
	AuditDrillAt sim.Time
	// Budget bounds the run's resource consumption (nil = unlimited).
	// Breaches stop the run via the engine's interrupt hook and surface
	// as a *RunError whose Budget field carries the structured breach
	// and a checkpoint of what completed. A nil Budget leaves the run's
	// hot path exactly as it was: budget-free runs stay bit-identical.
	Budget *budget.Budget
	// Fidelity is the degradation tier this config runs at (0 = full
	// fidelity). It is set by DegradeTier, never by hand, and is carried
	// into RunResult.Usage so reduced-fidelity results are marked.
	Fidelity int
	// Collector receives the run's telemetry events (nil = off, the
	// default). Telemetry only observes: it adds no engine events and
	// consumes no randomness, so an instrumented run stays bit-identical
	// to an uninstrumented one — cmd/fprint verifies this. The field is
	// excluded from serialization: a collector is a live attachment, not
	// part of the experiment's identity.
	Collector telemetry.Collector `json:"-"`
	// UsageSink, when non-nil, receives this run's resource usage
	// instead of the process-global sink installed via SetUsageSink.
	// Concurrent workers in one process each attach their own sink so
	// usage attributes to the job that incurred it rather than to
	// whichever job happened to own the global at the time. Like
	// Collector it is a live attachment, not part of the experiment's
	// identity, and is excluded from serialization.
	UsageSink func(budget.Usage) `json:"-"`
}

func (c *RunConfig) withDefaults() RunConfig {
	out := *c
	if out.MSS <= 0 {
		out.MSS = units.MSS
	}
	if out.DelAckDelay == 0 {
		out.DelAckDelay = tcp.DelayedAckTimeout
	}
	if out.DelAckDelay < 0 {
		out.DelAckDelay = 0
	}
	if out.GROWindow == 0 {
		out.GROWindow = tcp.GROWindow
	}
	if out.GROWindow < 0 {
		out.GROWindow = 0
	}
	if out.ConvergeTolerance <= 0 {
		out.ConvergeTolerance = 0.01
	}
	return out
}

func (c *RunConfig) validate() error {
	// The netem layer owns the topology validation (zero/negative rate,
	// degenerate queue capacity, bad RTTs) so the same descriptive
	// errors surface whether a dumbbell is built through core or
	// directly.
	rtts := make([]sim.Time, len(c.Flows))
	for i, f := range c.Flows {
		rtts[i] = f.RTT
	}
	if c.Topology != nil {
		if len(c.Topology.Paths) != len(c.Flows) {
			return fmt.Errorf("core: topology declares %d flow paths but config has %d flows",
				len(c.Topology.Paths), len(c.Flows))
		}
		if err := (netem.TopologyConfig{Spec: *c.Topology, RTT: rtts}).Validate(); err != nil {
			return err
		}
	} else if err := (netem.DumbbellConfig{Rate: c.Rate, Buffer: c.Buffer, RTT: rtts}).Validate(); err != nil {
		return err
	}
	if c.ECNMarkBytes < 0 {
		return fmt.Errorf("core: negative ECN marking threshold")
	}
	if c.Duration <= 0 {
		return fmt.Errorf("core: non-positive duration")
	}
	if _, err := audit.ParsePolicy(c.Audit); err != nil {
		return err
	}
	if c.AuditDrillAt < 0 {
		return fmt.Errorf("core: negative audit-drill time")
	}
	if c.AuditDrillAt > 0 {
		if p, _ := audit.ParsePolicy(c.Audit); p == audit.PolicyOff {
			return fmt.Errorf("core: audit drill requires -audit warn or strict (the drill corrupts queue accounting; without the auditor it would silently poison results)")
		}
	}
	switch c.AQM {
	case "", "droptail", "codel":
	default:
		return fmt.Errorf("core: unknown AQM %q", c.AQM)
	}
	if c.BurstLoss != nil {
		if err := c.BurstLoss.validate(); err != nil {
			return err
		}
	}
	if c.Outage != nil {
		if err := c.Outage.validate(); err != nil {
			return err
		}
	}
	if c.FaultPanicAt < 0 {
		return fmt.Errorf("core: negative fault-injection time")
	}
	for i, f := range c.Flows {
		if f.RTT <= 0 {
			return fmt.Errorf("core: flow %d has non-positive RTT", i)
		}
		if _, ok := cca.ByName(f.CCA); !ok {
			return fmt.Errorf("core: flow %d has unknown CCA %q", i, f.CCA)
		}
	}
	return nil
}

// FlowResult holds one flow's measurement-window metrics.
type FlowResult struct {
	Spec FlowSpec

	// GoodputBps is in-order delivered bytes per second over the
	// window, in bits/sec.
	Goodput units.Bandwidth

	// SegmentsSent counts transmissions (including retransmissions)
	// during the window.
	SegmentsSent uint64
	// SegmentsDelivered counts segments first delivered during the
	// window.
	SegmentsDelivered uint64
	// Drops counts this flow's bottleneck tail drops during the window.
	Drops uint64
	// Halvings counts multiplicative-decrease episodes (fast recoveries
	// + RTOs) during the window — the tcpprobe-derived quantity.
	Halvings uint64
	// FastRecoveries and RTOs break Halvings down by trigger.
	FastRecoveries uint64
	RTOs           uint64
	// Retransmissions during the window.
	Retransmissions uint64

	// LossRate is Drops / SegmentsSent (the network-measured p).
	LossRate float64
	// HalvingRate is Halvings / SegmentsDelivered (the end-host p).
	HalvingRate float64

	// MeanRTT and MinRTT summarize the flow's window RTT samples.
	MeanRTT sim.Time
	MinRTT  sim.Time

	// ECNResponses counts window reductions taken in response to ECE
	// echoes during the window (0 without ECN) — congestion events that
	// cost no retransmission, so they are not part of Halvings.
	ECNResponses uint64 `json:",omitempty"`
}

// RunResult aggregates one run.
type RunResult struct {
	Config RunConfig
	Flows  []FlowResult

	// Window is the realized measurement window (shorter than
	// Config.Duration when the convergence rule stopped the run).
	Window sim.Time
	// Converged reports whether the early-stop rule fired.
	Converged bool

	// AggregateGoodput sums flow goodputs.
	AggregateGoodput units.Bandwidth
	// Utilization is bottleneck busy fraction over the whole run.
	Utilization float64
	// TotalDrops over the window (bottleneck tail drops).
	TotalDrops uint64
	// RandomDrops counts netem-style forward-path losses over the
	// whole run (0 unless RandomLoss is configured).
	RandomDrops uint64
	// BurstDrops counts Gilbert–Elliott forward-path losses over the
	// whole run (0 unless BurstLoss is configured).
	BurstDrops uint64
	// OutageDrops counts packets lost to link outages over the whole
	// run (0 unless Outage is configured with the drop policy).
	OutageDrops uint64
	// DropBurstiness is the Goh–Barabási score over window drop times.
	DropBurstiness float64
	// Events is the number of simulator events processed (for
	// performance reporting).
	Events uint64

	// CEMarks counts CE marks made across the fabric over the whole run
	// (0 without ECN).
	CEMarks uint64 `json:",omitempty"`
	// Links reports per-link counters for topology runs, in declaration
	// order (nil for the classic dumbbell, whose single bottleneck is
	// reported by the top-level fields).
	Links []netem.LinkStat `json:",omitempty"`

	// AuditViolations counts invariant violations observed under the
	// "warn" audit policy (under "strict" the first violation fails the
	// run instead, so a successful strict result always reports 0).
	AuditViolations uint64
	// AuditViolationSample holds the first few recorded violations when
	// AuditViolations > 0.
	AuditViolationSample []audit.InvariantViolation

	// SeriesNames and Series hold the per-CCA goodput time series when
	// SeriesInterval was configured.
	SeriesNames []string
	Series      []trace.SeriesPoint

	// Usage records the resources the run actually consumed — the
	// observability side of budget governance, and the ground truth the
	// footprint estimator is calibrated against. Always populated;
	// PeakHeapBytes stays 0 unless a heap budget enabled sampling.
	Usage budget.Usage
}

// flowSnap captures the per-flow counters at the warm-up boundary.
type flowSnap struct {
	delivered   units.ByteCount
	sent        uint64
	retrans     uint64
	recoveries  uint64
	rtos        uint64
	drops       uint64
	rttSum      sim.Time
	rttCount    uint64
	deliveredTx units.ByteCount // sender-side delivered counter
	ecnResps    uint64
}

// Run executes one experiment under the run supervisor and returns its
// results. Invariant panics anywhere in the simulation stack and
// watchdog stops (WallLimit, StallEvents) surface as a *RunError
// carrying the seed, config snapshot, virtual time, and event count —
// enough to replay the failure in one command — rather than crashing
// the process.
func Run(cfg RunConfig) (RunResult, error) {
	return RunCtx(context.Background(), cfg)
}

// fidelityLabel renders a degradation tier for telemetry.
func fidelityLabel(tier int) string {
	switch tier {
	case 0:
		return "full"
	case 1:
		return "tier-1"
	case 2:
		return "tier-2"
	case 3:
		return "tier-3"
	}
	return fmt.Sprintf("tier-%d", tier)
}

// RunCtx is Run with cooperative cancellation: ctx is polled from the
// engine's interrupt hook (the same supervisor channel the watchdogs
// and budgets use), so cancellation stops the run within one interrupt
// interval and surfaces as a *RunError. A background context adds no
// hook and changes nothing.
func RunCtx(ctx context.Context, cfg RunConfig) (res RunResult, err error) {
	if err := cfg.validate(); err != nil {
		return RunResult{}, err
	}
	cfg = cfg.withDefaults()

	// A context deadline is a harder promise than WallLimit: the caller
	// (a server's per-job deadline, a batch driver's shutdown grace)
	// needs the run stopped AND its outcome committed before it expires.
	// The interrupt hook checks ctx before WallLimit, so a ctx-done stop
	// surfaces as a non-retryable cancellation; clamping WallLimit just
	// under the deadline makes the wall-clock watchdog win the race
	// instead, which surfaces as a replayable, degradable "wall-clock"
	// RunError and leaves the 5% margin for the commit.
	if dl, ok := ctx.Deadline(); ok {
		if rem := time.Until(dl); rem > 0 {
			clamped := rem - rem/20
			if cfg.WallLimit <= 0 || clamped < cfg.WallLimit {
				cfg.WallLimit = clamped
			}
		}
	}

	// The horizon cap is decidable before anything runs, so it rejects at
	// admission even when Run is called directly (not through RunManyCtx).
	if b := cfg.Budget; !b.Unlimited() && b.Horizon > 0 && cfg.Warmup+cfg.Duration > b.Horizon {
		return RunResult{}, &RunError{
			Reason: "budget breach",
			Seed:   cfg.Seed,
			Config: cfg,
			Budget: &budget.BudgetError{
				Kind: budget.KindHorizon, Stage: budget.StageAdmission,
				Limit: int64(b.Horizon), Observed: int64(cfg.Warmup + cfg.Duration),
				Detail: "virtual end time (warm-up + duration)",
			},
		}
	}

	eng := sim.NewEngine()
	rng := sim.NewRNG(cfg.Seed)

	coll := cfg.Collector
	if coll != nil {
		coll.Emit(telemetry.Event{
			Kind: telemetry.KindRunStart, Flow: -1,
			Label: fidelityLabel(cfg.Fidelity),
			A:     int64(len(cfg.Flows)), B: int64(cfg.Seed),
		})
	}
	done := ctx.Done()

	// The invariant auditor (nil when the policy is off). It observes
	// the run — every hook below is read-only with respect to simulation
	// state — so enabling it never perturbs the deterministic trace.
	pol, _ := audit.ParsePolicy(cfg.Audit)
	aud := audit.New(pol, eng.Now)
	if aud != nil {
		eng.SetAudit(func(check, detail string) {
			aud.Reportf(check, -1, "%s", detail)
		})
	}

	wallStart := time.Now()
	defer func() {
		if r := recover(); r != nil {
			res = RunResult{}
			re := &RunError{
				Reason:      "panic",
				Seed:        cfg.Seed,
				VirtualTime: eng.Now(),
				Events:      eng.Processed(),
				Wall:        time.Since(wallStart),
				PanicMsg:    fmt.Sprint(r),
				Stack:       string(debug.Stack()),
				Config:      cfg,
			}
			if v, ok := r.(*audit.InvariantViolation); ok {
				// A strict-policy audit failure: keep the structured
				// violation so batch drivers can report which check
				// fired and where without parsing the panic string.
				re.Reason = "invariant violation"
				re.Violation = v
			}
			err = re
		}
	}()

	if cfg.FaultPanicAt > 0 {
		eng.Schedule(cfg.FaultPanicAt, func() {
			panic(fmt.Sprintf("core: injected fault at %v (FaultPanicAt)", cfg.FaultPanicAt))
		})
	}

	qlog := trace.NewQueueLog(cfg.MaxDropTimestamps)
	qlog.SetWindowStart(cfg.Warmup)

	rtts := make([]sim.Time, len(cfg.Flows))
	for i, f := range cfg.Flows {
		rtts[i] = f.RTT
	}
	// The fabric: the paper's dumbbell, or — when a topology is declared
	// — the general multi-bottleneck graph. The dumbbell branch is built
	// exactly as before (same constructor, same RNG consumption), so
	// dumbbell runs stay bit-identical to earlier releases.
	//
	// The transport negotiates ECN whenever anything in the fabric can
	// mark: queues only ever mark ECT traffic, so a topology with an
	// ECN link but non-ECT senders would silently never mark.
	ecn := cfg.ECN
	var fab netem.Fabric
	if cfg.Topology != nil {
		for _, l := range cfg.Topology.Links {
			if l.ECN {
				ecn = true
				break
			}
		}
		fab = netem.NewTopology(eng, rng.Split(), netem.TopologyConfig{
			Spec:   *cfg.Topology,
			RTT:    rtts,
			OnDrop: qlog.OnDrop,
			Audit:  aud,
		})
	} else {
		discipline := netem.DropTail
		if cfg.AQM == "codel" {
			discipline = netem.CoDel
		}
		fab = netem.NewDumbbell(eng, netem.DumbbellConfig{
			Rate:         cfg.Rate,
			Buffer:       cfg.Buffer,
			RTT:          rtts,
			OnDrop:       qlog.OnDrop,
			Discipline:   discipline,
			ECN:          cfg.ECN,
			ECNMarkBytes: cfg.ECNMarkBytes,
			Audit:        aud,
		})
	}
	if cfg.AuditDrillAt > 0 {
		// The seeded accounting bug: corrupt the queue's byte counter at
		// the requested time. The conservation ledger must catch it on
		// the next queue operation.
		eng.Schedule(cfg.AuditDrillAt, func() { fab.DrillCorruptQueue() })
	}

	// End-to-end ledger terms (forward data path only; ACKs ride the
	// uncongested reverse path and never enter the bottleneck).
	var injectedWire, arrivedWire units.ByteCount
	output := fab.SendData
	if aud != nil {
		output = func(p packet.Packet) {
			injectedWire += p.WireBytes()
			fab.SendData(p)
		}
	}

	senders := make([]*tcp.Sender, len(cfg.Flows))
	receivers := make([]*tcp.Receiver, len(cfg.Flows))
	for i, f := range cfg.Flows {
		factory, _ := cca.ByName(f.CCA)
		ctrl := factory(cfg.MSS, rng.Split())
		// Telemetry observes outermost so the audit wrapper keeps its
		// direct view of the controller's checking interfaces; the
		// observer walks the Unwrap chain to find the state machine.
		wrapped := telemetry.WrapCCA(audit.WrapCCA(ctrl, cfg.MSS, int32(i), aud), int32(i), coll)
		senders[i] = tcp.NewSender(eng, int32(i), tcp.Config{
			MSS:       cfg.MSS,
			CCA:       wrapped,
			Output:    output,
			ECN:       ecn,
			Audit:     aud,
			Telemetry: coll,
		})
		receivers[i] = tcp.NewReceiver(eng, int32(i), tcp.ReceiverConfig{
			DelAckDelay: cfg.DelAckDelay,
			GROWindow:   cfg.GROWindow,
			Audit:       aud,
		}, fab.SendAck)
	}
	// Forward-path impairment chain, innermost first: the receiver,
	// then netem-style iid loss/jitter, then Gilbert–Elliott burst
	// loss, then the link outage schedule outermost (a dark link is
	// dark for everything behind it).
	toReceiver := func(p packet.Packet) { receivers[p.Flow].OnData(p) }
	if aud != nil {
		inner := toReceiver
		toReceiver = func(p packet.Packet) {
			arrivedWire += p.WireBytes()
			inner(p)
		}
	}
	var randomDrops, burstDrops, outageDrops uint64
	var imp *netem.Impairment
	var ge *netem.GilbertElliott
	var outg *netem.Outage
	if cfg.RandomLoss > 0 || cfg.Jitter > 0 {
		imp = netem.NewImpairment(eng, rng.Split(), netem.ImpairmentConfig{
			LossProb: cfg.RandomLoss,
			Jitter:   cfg.Jitter,
			OnDrop:   func(sim.Time, packet.Packet) { randomDrops++ },
		}, toReceiver)
		toReceiver = imp.Send
	}
	if cfg.BurstLoss != nil {
		geCfg := cfg.BurstLoss.gilbert()
		geCfg.OnDrop = func(sim.Time, packet.Packet) { burstDrops++ }
		ge = netem.NewGilbertElliott(eng, rng.Split(), geCfg, toReceiver)
		toReceiver = ge.Send
	}
	if cfg.Outage != nil {
		policy := netem.OutageDrop
		if cfg.Outage.Hold {
			policy = netem.OutageHold
		}
		outg = netem.NewOutage(eng, netem.OutageConfig{
			Windows:   cfg.Outage.windows(),
			Policy:    policy,
			OnDrop:    func(sim.Time, packet.Packet) { outageDrops++ },
			Telemetry: coll,
		}, toReceiver)
		toReceiver = outg.Send
	}
	fab.SetEndpoints(
		toReceiver,
		func(p packet.Packet) { senders[p.Flow].OnAck(p) },
	)
	for _, s := range senders {
		s.Start(rng.Dur(cfg.Stagger))
	}

	// Optional per-CCA goodput time series. The sample buffer is reused
	// across ticks (the series copies what it retains) and the retained
	// points are preallocated from the horizon, so sampling stays off
	// the allocator for the whole run.
	var series *trace.ThroughputSeries
	var seriesNames []string
	if cfg.SeriesInterval > 0 {
		seen := map[string]int{}
		for _, f := range cfg.Flows {
			if _, ok := seen[f.CCA]; !ok {
				seen[f.CCA] = len(seriesNames)
				seriesNames = append(seriesNames, f.CCA)
			}
		}
		sample := make([]units.ByteCount, len(seriesNames))
		series = trace.NewThroughputSeries(eng, cfg.SeriesInterval, seriesNames,
			func() []units.ByteCount {
				for i := range sample {
					sample[i] = 0
				}
				for i, f := range cfg.Flows {
					sample[seen[f.CCA]] += receivers[i].Stats().Delivered
				}
				return sample
			}, true, nil)
		series.Preallocate(cfg.Warmup + cfg.Duration)
		// Under a trace-point budget the series degrades gracefully
		// instead of breaching: its share of the cap — what remains
		// after reserving the bounded drop log — triggers adaptive
		// decimation, and the factor is reported in Usage.MaxDecimation.
		// An unbounded drop log reserves nothing; if drops alone exceed
		// the budget, the in-flight check correctly breaches.
		if b := cfg.Budget; !b.Unlimited() && b.TracePoints > 0 {
			maxPts := (int(b.TracePoints) - cfg.MaxDropTimestamps) / max(len(seriesNames), 1)
			if maxPts < 4 {
				maxPts = 4
			}
			series.SetMaxPoints(maxPts)
		}
		series.Start(0)
	}

	// Warm-up boundary snapshot.
	snaps := make([]flowSnap, len(cfg.Flows))
	eng.Schedule(cfg.Warmup, func() {
		for i := range cfg.Flows {
			snaps[i] = snapshot(senders[i], receivers[i], qlog, int32(i))
		}
	})

	// Convergence early stop on aggregate goodput.
	end := cfg.Warmup + cfg.Duration
	converged := false
	if cfg.Converge > 0 {
		var prevRate float64
		var prevDelivered units.ByteCount
		var check func()
		check = func() {
			var total units.ByteCount
			for _, r := range receivers {
				total += r.Stats().Delivered
			}
			rate := float64(total-prevDelivered) / cfg.Converge.Seconds()
			if prevRate > 0 {
				diff := rate - prevRate
				if diff < 0 {
					diff = -diff
				}
				if diff/prevRate < cfg.ConvergeTolerance {
					converged = true
					eng.Stop()
					return
				}
			}
			prevRate = rate
			prevDelivered = total
			if eng.Now()+cfg.Converge <= end {
				eng.After(cfg.Converge, check)
			}
		}
		eng.Schedule(cfg.Warmup+cfg.Converge, check)
	}

	// Watchdogs, budget enforcement, cancellation, and telemetry
	// sampling share the engine's interrupt hook: a wall-clock limit, a
	// virtual-time progress guard, ctx polling, and — when a budget is
	// set — periodic in-flight resource checks that convert breaches
	// into replayable errors carrying a checkpoint. The hook is
	// installed only when something is configured, so an unbudgeted,
	// unguarded, uninstrumented run keeps an untouched hot path.
	bud := cfg.Budget
	var watchdogReason string
	var breach *budget.BudgetError
	var peakEventCap int
	var peakHeap int64
	if cfg.WallLimit > 0 || cfg.StallEvents > 0 || !bud.Unlimited() || coll != nil || done != nil {
		const wallCheckEvery = 1 << 13
		every := uint64(wallCheckEvery)
		if cfg.StallEvents > 0 && cfg.StallEvents < every {
			every = cfg.StallEvents
		}
		lastNow := sim.Time(-1)
		var lastAdvance uint64
		var ticks uint64
		var mem runtime.MemStats
		stopBudget := func(kind budget.Kind, limit, observed int64, detail string) {
			watchdogReason = "budget breach"
			breach = &budget.BudgetError{
				Kind: kind, Stage: budget.StageInFlight,
				Limit: limit, Observed: observed, Detail: detail,
				Checkpoint: &budget.Checkpoint{
					VirtualTime: eng.Now(),
					Events:      eng.Processed(),
					Wall:        time.Since(wallStart),
				},
			}
			eng.Stop()
		}
		// Telemetry sampling state: the queue high-water mark is emitted
		// on every new peak, engine progress about once per virtual
		// second. Both are pure observations of already-committed state.
		var occ netem.OccupancyStats
		if coll != nil {
			occ, _ = fab.Port().Queue().(netem.OccupancyStats)
		}
		var lastPeakBytes units.ByteCount
		var nextSample sim.Time
		eng.SetInterrupt(every, func() {
			if coll != nil {
				if occ != nil {
					if peak := occ.MaxBytes(); peak > lastPeakBytes {
						lastPeakBytes = peak
						coll.Emit(telemetry.Event{
							Time: eng.Now(), Kind: telemetry.KindQueueWatermark,
							Flow: -1, A: int64(peak), B: int64(occ.MaxLen()),
						})
					}
				}
				if now := eng.Now(); now >= nextSample {
					nextSample = now + sim.Second
					coll.Emit(telemetry.Event{
						Time: now, Kind: telemetry.KindEngineSample,
						Flow: -1, A: int64(eng.Processed()), B: int64(eng.Len()),
					})
				}
			}
			if watchdogReason != "" {
				return
			}
			if done != nil {
				select {
				case <-done:
					watchdogReason = fmt.Sprintf("run canceled: %v", context.Cause(ctx))
					eng.Stop()
					return
				default:
				}
			}
			if cfg.WallLimit > 0 && time.Since(wallStart) > cfg.WallLimit {
				watchdogReason = fmt.Sprintf("wall-clock limit exceeded (%v)", cfg.WallLimit)
				eng.Stop()
				return
			}
			if cfg.StallEvents > 0 {
				if eng.Now() > lastNow {
					lastNow = eng.Now()
					lastAdvance = eng.Processed()
				} else if eng.Processed()-lastAdvance >= cfg.StallEvents {
					watchdogReason = fmt.Sprintf("virtual-time stall (%d events at %v)",
						eng.Processed()-lastAdvance, eng.Now())
					eng.Stop()
					return
				}
			}
			if bud.Unlimited() {
				return
			}
			ticks++
			if c := eng.Cap(); c > peakEventCap {
				peakEventCap = c
			}
			if bud.Events > 0 && int64(eng.Cap()) > bud.Events {
				stopBudget(budget.KindEvents, bud.Events, int64(eng.Cap()),
					"live events + lazily-cancelled heap capacity")
				return
			}
			if bud.Wall > 0 && time.Since(wallStart) > bud.Wall {
				stopBudget(budget.KindWallClock, int64(bud.Wall), int64(time.Since(wallStart)), "")
				return
			}
			if bud.TracePoints > 0 {
				pts := int64(qlog.TimesLen())
				if series != nil {
					pts += int64(len(series.Points()) * len(seriesNames))
				}
				if pts > bud.TracePoints {
					stopBudget(budget.KindTracePoints, bud.TracePoints, pts,
						"retained series samples + drop timestamps")
					return
				}
			}
			// ReadMemStats stops the world, so the heap ceiling is
			// sampled at a fraction of the interrupt cadence. The check
			// is process-wide: under a parallel sweep it is a shared
			// ceiling, and whichever run observes the breach stops first.
			if bud.HeapBytes > 0 && ticks%16 == 1 {
				runtime.ReadMemStats(&mem)
				if h := int64(mem.HeapAlloc); h > peakHeap {
					peakHeap = h
				}
				if int64(mem.HeapAlloc) > bud.HeapBytes {
					stopBudget(budget.KindHeapBytes, bud.HeapBytes, int64(mem.HeapAlloc),
						"sampled process heap (shared across parallel runs)")
				}
			}
		})
	}

	stopAt := eng.Run(end)
	if aud != nil && watchdogReason == "" {
		checkEndToEnd(aud, injectedWire, arrivedWire, fab, imp, ge, outg)
	}
	if watchdogReason != "" {
		return RunResult{}, &RunError{
			Reason:      watchdogReason,
			Seed:        cfg.Seed,
			VirtualTime: eng.Now(),
			Events:      eng.Processed(),
			Wall:        time.Since(wallStart),
			Budget:      breach,
			Config:      cfg,
		}
	}
	window := stopAt - cfg.Warmup
	if window <= 0 {
		return RunResult{}, fmt.Errorf("core: run ended before warm-up completed")
	}

	res = RunResult{
		Config:      cfg,
		Window:      window,
		Converged:   converged,
		Utilization: fab.Port().Utilization(),
		Events:      eng.Processed(),
	}
	for i := range cfg.Flows {
		fr := flowResult(cfg, senders[i], receivers[i], qlog, int32(i), snaps[i], window)
		res.Flows = append(res.Flows, fr)
		res.AggregateGoodput += fr.Goodput
		res.TotalDrops += fr.Drops
		if coll != nil {
			coll.Emit(telemetry.Event{
				Time: stopAt, Kind: telemetry.KindFlowEnd,
				Flow: int32(i), CCA: fr.Spec.CCA,
				A: int64(fr.Goodput), B: int64(fr.Drops),
			})
		}
	}
	res.DropBurstiness = metrics.Burstiness(qlog.TimesSeconds())
	res.RandomDrops = randomDrops
	res.BurstDrops = burstDrops
	res.OutageDrops = outageDrops
	if series != nil {
		res.SeriesNames = seriesNames
		res.Series = series.Points()
	}
	if aud != nil {
		res.AuditViolations = aud.Total()
		res.AuditViolationSample = aud.Violations()
	}
	res.Usage = budget.Usage{
		Runs:          1,
		Events:        eng.Processed(),
		PeakEventCap:  int64(max(peakEventCap, eng.Cap())),
		TracePoints:   int64(qlog.TimesLen()),
		PeakHeapBytes: peakHeap,
		Wall:          time.Since(wallStart),
		MaxFidelity:   cfg.Fidelity,
		MaxDecimation: 1,
	}
	if series != nil {
		res.Usage.TracePoints += int64(len(series.Points()) * len(seriesNames))
		res.Usage.MaxDecimation = series.Decimation()
	}
	if st, ok := fab.Port().Queue().(netem.OccupancyStats); ok {
		res.Usage.PeakQueueBytes = int64(st.MaxBytes())
		res.Usage.PeakQueuePackets = int64(st.MaxLen())
	}
	// Per-link counters: every fabric reports them; the result retains
	// the list for topology runs (the dumbbell's single bottleneck is
	// already covered by the top-level fields) and the fabric-wide CE
	// mark count either way.
	linkStats := fab.LinkStats()
	for _, l := range linkStats {
		res.CEMarks += l.CEMarks
	}
	if cfg.Topology != nil {
		res.Links = linkStats
	}
	if coll != nil {
		coll.Emit(telemetry.Event{
			Time: stopAt, Kind: telemetry.KindRunEnd, Flow: -1,
			A: int64(eng.Processed()), B: int64(res.AggregateGoodput),
		})
	}
	if cfg.UsageSink != nil {
		cfg.UsageSink(res.Usage)
	} else {
		reportUsage(res.Usage)
	}
	return res, nil
}

// checkEndToEnd verifies the end-of-run byte-conservation ledgers for
// the forward data path. The byte ledger: every wire byte the senders
// injected is accounted for as arrived at a receiver, dropped inside
// the fabric (queues, AQM, per-link impairment), still inside it
// (queued, serializing, or in propagation flight), parked in a jitter
// timer, or held by an outage in hold mode. The ECN ledger: every wire
// byte CE-marked by a fabric queue is delivered, dropped after
// marking, or still inside the fabric — marks never vanish and never
// multiply.
func checkEndToEnd(aud *audit.Auditor, injected, arrived units.ByteCount, fab netem.Fabric, imp *netem.Impairment, ge *netem.GilbertElliott, outg *netem.Outage) {
	inNetwork := fab.InNetworkBytes()
	impaired := units.ByteCount(0)
	if imp != nil {
		impaired += imp.DropBytes() + imp.ParkedBytes()
	}
	if ge != nil {
		impaired += ge.DropBytes()
	}
	if outg != nil {
		impaired += outg.DropBytes() + outg.HeldBytes()
	}
	accounted := arrived + fab.DropWire() + inNetwork + impaired
	if injected != accounted {
		aud.Reportf("netem/end-to-end-conservation", -1,
			"at run end: injected %d wire bytes != arrived %d + fabric dropped %d + in network %d + impaired %d (missing %d)",
			injected, arrived, fab.DropWire(), inNetwork, impaired,
			int64(injected)-int64(accounted))
	}
	marked, delivered, dropped, ceInNetwork := fab.ECNLedger()
	ceAccounted := delivered + dropped + ceInNetwork
	if marked != ceAccounted {
		aud.Reportf("netem/ecn-conservation", -1,
			"at run end: CE-marked %d wire bytes != delivered %d + dropped after mark %d + in network %d (missing %d)",
			marked, delivered, dropped, ceInNetwork,
			int64(marked)-int64(ceAccounted))
	}
}

func snapshot(s *tcp.Sender, r *tcp.Receiver, qlog *trace.QueueLog, flow int32) flowSnap {
	st := s.Stats()
	return flowSnap{
		delivered:   r.Stats().Delivered,
		sent:        st.SegmentsSent,
		retrans:     st.Retransmissions,
		recoveries:  st.FastRecoveries,
		rtos:        st.RTOs,
		drops:       qlog.Flow(flow),
		rttSum:      st.MeanRTT * sim.Time(st.RTTSamples),
		rttCount:    st.RTTSamples,
		deliveredTx: st.DeliveredBytes,
		ecnResps:    st.ECNResponses,
	}
}

func flowResult(cfg RunConfig, s *tcp.Sender, r *tcp.Receiver, qlog *trace.QueueLog, flow int32, snap flowSnap, window sim.Time) FlowResult {
	st := s.Stats()
	fr := FlowResult{
		Spec:            cfg.Flows[flow],
		SegmentsSent:    st.SegmentsSent - snap.sent,
		Retransmissions: st.Retransmissions - snap.retrans,
		FastRecoveries:  st.FastRecoveries - snap.recoveries,
		RTOs:            st.RTOs - snap.rtos,
		Drops:           qlog.Flow(flow) - snap.drops,
		MinRTT:          st.MinRTT,
		ECNResponses:    st.ECNResponses - snap.ecnResps,
	}
	fr.Halvings = fr.FastRecoveries + fr.RTOs
	deliveredWindow := r.Stats().Delivered - snap.delivered
	fr.Goodput = units.Throughput(deliveredWindow, window)
	deliveredTxWindow := st.DeliveredBytes - snap.deliveredTx
	fr.SegmentsDelivered = uint64(deliveredTxWindow / cfg.MSS)
	if fr.SegmentsSent > 0 {
		fr.LossRate = float64(fr.Drops) / float64(fr.SegmentsSent)
	}
	if fr.SegmentsDelivered > 0 {
		fr.HalvingRate = float64(fr.Halvings) / float64(fr.SegmentsDelivered)
	}
	if n := st.RTTSamples - snap.rttCount; n > 0 {
		fr.MeanRTT = (st.MeanRTT*sim.Time(st.RTTSamples) - snap.rttSum) / sim.Time(n)
	}
	return fr
}

// Goodputs extracts per-flow goodputs as floats (for JFI and shares).
func (r RunResult) Goodputs() []float64 {
	out := make([]float64, len(r.Flows))
	for i, f := range r.Flows {
		out[i] = float64(f.Goodput)
	}
	return out
}

// JFI returns Jain's Fairness Index over the run's per-flow goodputs.
func (r RunResult) JFI() float64 { return metrics.JFI(r.Goodputs()) }

// ShareByCCA returns each CCA's fraction of aggregate goodput.
func (r RunResult) ShareByCCA() map[string]float64 {
	totals := map[string]float64{}
	var sum float64
	for _, f := range r.Flows {
		totals[f.Spec.CCA] += float64(f.Goodput)
		sum += float64(f.Goodput)
	}
	if sum == 0 {
		return totals
	}
	for k := range totals {
		totals[k] /= sum
	}
	return totals
}

// UniformFlows builds n flows of the same CCA and RTT.
func UniformFlows(n int, ccaName string, rtt sim.Time) []FlowSpec {
	out := make([]FlowSpec, n)
	for i := range out {
		out[i] = FlowSpec{CCA: ccaName, RTT: rtt}
	}
	return out
}

// MixedFlows builds a 50/50 interleaved mix of two CCAs at one RTT
// (odd totals give the extra flow to the first CCA).
func MixedFlows(n int, ccaA, ccaB string, rtt sim.Time) []FlowSpec {
	out := make([]FlowSpec, n)
	for i := range out {
		if i%2 == 0 {
			out[i] = FlowSpec{CCA: ccaA, RTT: rtt}
		} else {
			out[i] = FlowSpec{CCA: ccaB, RTT: rtt}
		}
	}
	return out
}

// OneVersusFlows builds one flow of loner plus n−1 flows of crowd.
func OneVersusFlows(n int, loner, crowd string, rtt sim.Time) []FlowSpec {
	out := make([]FlowSpec, 0, n)
	out = append(out, FlowSpec{CCA: loner, RTT: rtt})
	for i := 1; i < n; i++ {
		out = append(out, FlowSpec{CCA: crowd, RTT: rtt})
	}
	return out
}

// SortedGoodputs returns the per-flow goodputs in ascending order
// (useful for distribution reporting).
func (r RunResult) SortedGoodputs() []float64 {
	g := r.Goodputs()
	sort.Float64s(g)
	return g
}
