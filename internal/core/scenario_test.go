package core

import (
	"reflect"
	"strings"
	"testing"

	"ccatscale/internal/schema"
	"ccatscale/internal/sim"
	"ccatscale/internal/units"
)

// parkingLotDoc mirrors examples/scenarios/parkinglot.json in miniature:
// two bottlenecks in series, ECN at both, mixed CCAs entering at
// different hops, strict audit.
func parkingLotDoc() *schema.Scenario {
	return &schema.Scenario{
		JobSpec: schema.JobSpec{
			Name: "parkinglot-test",
			Seed: 42,
			Topology: &schema.TopologyDoc{
				Nodes: []string{"a", "b", "c"},
				Links: []schema.LinkDoc{
					{Name: "ab", From: "a", To: "b", RateMbps: 50, DelayMs: 5, BufferBytes: 262144, ECN: true},
					{Name: "bc", From: "b", To: "c", RateMbps: 40, DelayMs: 5, BufferBytes: 196608, ECN: true},
				},
			},
			Flows: []schema.FlowGroup{
				{CCA: "cubic", RTTMs: 40, Count: 2, Path: []string{"ab", "bc"}},
				{CCA: "bbr2", RTTMs: 20, Count: 1, Path: []string{"bc"}},
			},
			WarmupS:   2,
			DurationS: 8,
			StaggerS:  1,
		},
		Audit: "strict",
	}
}

// TestDumbbellScenarioBitIdentity is the compatibility-layer acceptance
// check in-process (cmd/fprint -viascenario is the CI form): a dumbbell
// expressed as a scenario document and compiled through Encode →
// ParseScenario → ScenarioBuilder must produce bit-identical results to
// the directly constructed RunConfig — same events, same flow stats,
// same series.
func TestDumbbellScenarioBitIdentity(t *testing.T) {
	direct := RunConfig{
		Rate:           50 * units.MbitPerSec,
		Buffer:         units.BDP(50*units.MbitPerSec, 40*sim.Millisecond),
		Flows:          UniformFlows(4, "cubic", 20*sim.Millisecond),
		Warmup:         2 * sim.Second,
		Duration:       8 * sim.Second,
		Stagger:        sim.Second,
		Seed:           7,
		SeriesInterval: 500 * sim.Millisecond,
	}
	doc := &schema.Scenario{
		JobSpec: schema.JobSpec{
			Name:        "dumbbell",
			Seed:        7,
			RateMbps:    float64(direct.Rate) / float64(units.MbitPerSec),
			BufferBytes: int64(direct.Buffer),
			Flows:       []schema.FlowGroup{{CCA: "cubic", RTTMs: 20, Count: 4}},
			WarmupS:     2,
			DurationS:   8,
			StaggerS:    1,
		},
		SeriesIntervalS: 0.5,
	}
	data, err := doc.Encode()
	if err != nil {
		t.Fatal(err)
	}
	parsed, err := schema.ParseScenario(data)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewScenarioBuilder(parsed)
	if err != nil {
		t.Fatal(err)
	}
	compiled := b.RunConfig()

	want, err := Run(direct)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Run(compiled)
	if err != nil {
		t.Fatal(err)
	}
	if want.Events != got.Events {
		t.Fatalf("event counts differ: direct %d, scenario %d", want.Events, got.Events)
	}
	if !reflect.DeepEqual(want.Flows, got.Flows) {
		t.Fatal("per-flow results differ between direct and scenario-compiled configs")
	}
	if !reflect.DeepEqual(want.Series, got.Series) {
		t.Fatal("goodput series differ between direct and scenario-compiled configs")
	}
}

// TestDumbbellECNStrictAudit turns on end-to-end ECN over the dumbbell
// under the strict auditor: the run must complete with the CE ledger
// closed (any leak fails the run), marks must actually happen in a
// buffer-limited setting, and the senders must respond to the echoes.
func TestDumbbellECNStrictAudit(t *testing.T) {
	s := tinySetting()
	s.Warmup = 2 * sim.Second
	s.Duration = 8 * sim.Second
	s.ECN = true
	cfg := s.Build(UniformFlows(4, "cubic", DefaultRTT), WithSeed(3))
	cfg.Audit = "strict"
	res, err := Run(cfg)
	if err != nil {
		t.Fatalf("strict ECN run failed: %v", err)
	}
	if res.CEMarks == 0 {
		t.Fatal("ECN enabled but the bottleneck never marked")
	}
	var responses uint64
	for _, f := range res.Flows {
		responses += f.ECNResponses
	}
	if responses == 0 {
		t.Fatal("CE marks were made but no sender ever reduced for an ECE echo")
	}
	if res.AuditViolations != 0 {
		t.Fatalf("strict run recorded %d violations", res.AuditViolations)
	}
}

// TestECNAuditBitIdentity mirrors the auditor-is-an-observer guarantee
// on the ECN path: an ECN run with the auditor strict must be
// bit-identical to the same run unaudited — the CE ledger consumes no
// randomness and perturbs no flow statistic.
func TestECNAuditBitIdentity(t *testing.T) {
	build := func(audit string) RunConfig {
		s := tinySetting()
		s.Warmup = 2 * sim.Second
		s.Duration = 8 * sim.Second
		s.ECN = true
		cfg := s.Build(MixedFlows(4, "cubic", "bbr2", DefaultRTT), WithSeed(11))
		cfg.Audit = audit
		return cfg
	}
	plain, err := Run(build(""))
	if err != nil {
		t.Fatal(err)
	}
	strict, err := Run(build("strict"))
	if err != nil {
		t.Fatal(err)
	}
	if plain.Events != strict.Events || plain.CEMarks != strict.CEMarks {
		t.Fatalf("audit perturbed the run: events %d/%d CE %d/%d",
			plain.Events, strict.Events, plain.CEMarks, strict.CEMarks)
	}
	if !reflect.DeepEqual(plain.Flows, strict.Flows) {
		t.Fatal("strict auditing perturbed ECN flow results")
	}
}

// TestParkingLotStrictAudit is the multi-bottleneck acceptance run: a
// two-bottleneck parking lot with ECN at both hops, under the strict
// auditor — so the per-link port-conservation checks, the fabric-wide
// byte equation, and the CE ledger all must close on a topology where
// flows enter at different nodes.
func TestParkingLotStrictAudit(t *testing.T) {
	b, err := NewScenarioBuilder(parkingLotDoc())
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(b.RunConfig())
	if err != nil {
		t.Fatalf("strict parking-lot run failed: %v", err)
	}
	if res.AuditViolations != 0 {
		t.Fatalf("strict run recorded %d violations", res.AuditViolations)
	}
	if len(res.Flows) != 3 {
		t.Fatalf("flattened %d flows, want 3", len(res.Flows))
	}
	if len(res.Links) != 2 || res.Links[0].Name != "ab" || res.Links[1].Name != "bc" {
		t.Fatalf("per-link stats missing or misordered: %+v", res.Links)
	}
	for _, l := range res.Links {
		if l.TxPackets == 0 {
			t.Fatalf("link %s carried no traffic", l.Name)
		}
	}
	if res.CEMarks == 0 {
		t.Fatal("two ECN bottlenecks never marked under load")
	}
	for i, f := range res.Flows {
		if f.Goodput <= 0 {
			t.Fatalf("flow %d (%s) made no progress", i, f.Spec.CCA)
		}
	}
}

// TestCompileSpecTopologyErrors covers the compile-time half of
// validation — what the structural schema checks cannot see: unknown
// AQM names, and graph-level defects (unreachable nodes) surfaced from
// the netem constructor with the scenario name attached.
func TestCompileSpecTopologyErrors(t *testing.T) {
	t.Run("unknown aqm", func(t *testing.T) {
		doc := parkingLotDoc()
		doc.Topology.Links[0].AQM = "red"
		_, _, err := CompileSpec(doc.JobSpec)
		if err == nil || !strings.Contains(err.Error(), `unknown AQM "red"`) {
			t.Fatalf("err = %v", err)
		}
	})
	t.Run("unreachable node", func(t *testing.T) {
		doc := parkingLotDoc()
		doc.Topology.Nodes = append(doc.Topology.Nodes, "orphan")
		_, _, err := CompileSpec(doc.JobSpec)
		if err == nil || !strings.Contains(err.Error(), "unreachable") {
			t.Fatalf("err = %v", err)
		}
		if !strings.Contains(err.Error(), doc.Name) {
			t.Fatalf("error %q does not name the scenario", err)
		}
	})
	t.Run("dumbbell fields zeroed", func(t *testing.T) {
		s, flows, err := CompileSpec(parkingLotDoc().JobSpec)
		if err != nil {
			t.Fatal(err)
		}
		if s.Rate != 0 || s.Buffer != 0 || s.AQM != "" || s.ECN || s.ECNMarkBytes != 0 {
			t.Fatalf("dumbbell fields leaked into a topology setting: %+v", s)
		}
		if s.Topology == nil || len(s.Topology.Links) != 2 {
			t.Fatalf("topology not compiled: %+v", s.Topology)
		}
		if len(flows) != 3 {
			t.Fatalf("flattened %d flows, want 3", len(flows))
		}
		// Paths follow the flattening: two group-0 flows over both links,
		// one group-1 flow over bc only.
		want := [][]int{{0, 1}, {0, 1}, {1}}
		if !reflect.DeepEqual(s.Topology.Paths, want) {
			t.Fatalf("paths = %v, want %v", s.Topology.Paths, want)
		}
	})
}
