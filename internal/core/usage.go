package core

import (
	"sync"

	"ccatscale/internal/budget"
)

// The usage sink lets batch drivers observe per-run resource
// consumption without threading a collector through every sweep
// signature: cmd/reproduce installs one around each job and merges what
// arrives into the job's manifest record. The sink only observes — it
// receives a copy of the usage a run already computed — so installing
// one never perturbs results.
var (
	usageMu   sync.Mutex
	usageSink func(budget.Usage)
)

// SetUsageSink installs fn to receive every completed run's resource
// usage (nil removes it). fn may be called concurrently from parallel
// runs and must be safe for that; it is called under no lock of the
// run's own state.
func SetUsageSink(fn func(budget.Usage)) {
	usageMu.Lock()
	usageSink = fn
	usageMu.Unlock()
}

func reportUsage(u budget.Usage) {
	usageMu.Lock()
	fn := usageSink
	usageMu.Unlock()
	if fn != nil {
		fn(u)
	}
}
