package core

import (
	"testing"

	"ccatscale/internal/sim"
	"ccatscale/internal/units"
)

func churnBase() ChurnConfig {
	return ChurnConfig{
		Rate:          50 * units.MbitPerSec,
		Buffer:        units.BDP(50*units.MbitPerSec, 200*sim.Millisecond),
		CCA:           "reno",
		RTT:           20 * sim.Millisecond,
		TransferBytes: 500 * units.KB,
		Duration:      30 * sim.Second,
		Seed:          3,
	}
}

func TestChurnValidation(t *testing.T) {
	bad := churnBase()
	bad.ArrivalRate = 0
	if _, err := RunChurn(bad); err == nil {
		t.Fatal("zero arrival rate accepted")
	}
	bad = churnBase()
	bad.ArrivalRate = 1
	bad.CCA = "quic"
	if _, err := RunChurn(bad); err == nil {
		t.Fatal("unknown CCA accepted")
	}
	bad = churnBase()
	bad.ArrivalRate = 1
	bad.TransferBytes = 0
	if _, err := RunChurn(bad); err == nil {
		t.Fatal("zero size accepted")
	}
}

func TestChurnOfferedLoad(t *testing.T) {
	cfg := churnBase()
	cfg.ArrivalRate = 6.25 // 6.25 × 500 KB × 8 = 25 Mbps on a 50 Mbps link
	if got := cfg.OfferedLoad(); got != 0.5 {
		t.Fatalf("OfferedLoad = %v, want 0.5", got)
	}
}

func TestChurnModerateLoadCompletesEverything(t *testing.T) {
	cfg := churnBase()
	cfg.ArrivalRate = 6.25 // 50 % load
	res, err := RunChurn(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Arrivals < 100 {
		t.Fatalf("arrivals = %d; Poisson process not running", res.Arrivals)
	}
	if res.Rejected != 0 {
		t.Fatalf("rejected = %d at moderate load", res.Rejected)
	}
	if res.Completed != res.Arrivals {
		t.Fatalf("completed %d of %d at 50%% load", res.Completed, res.Arrivals)
	}
	// The floor on FCT: size/rate + ~2 RTT handshake-less ramp. 500 KB
	// needs several slow-start rounds at 20 ms: ≥ 0.1 s realistically.
	if res.P50FCT < 0.08 || res.P50FCT > 5 {
		t.Fatalf("P50 FCT = %v s", res.P50FCT)
	}
	if res.P99FCT < res.P50FCT {
		t.Fatalf("P99 %v < P50 %v", res.P99FCT, res.P50FCT)
	}
}

func TestChurnOverloadDegrades(t *testing.T) {
	light := churnBase()
	light.ArrivalRate = 5 // 40 %
	heavy := churnBase()
	heavy.ArrivalRate = 15 // 120 %
	lr, err := RunChurn(light)
	if err != nil {
		t.Fatal(err)
	}
	hr, err := RunChurn(heavy)
	if err != nil {
		t.Fatal(err)
	}
	if hr.P95FCT <= lr.P95FCT {
		t.Fatalf("overload P95 FCT %v not above light-load %v", hr.P95FCT, lr.P95FCT)
	}
	if hr.Drops == 0 {
		t.Fatal("no drops at 120% offered load")
	}
	// Utilization (averaged over arrivals + mostly idle drain) must
	// clearly exceed the light-load case.
	if hr.Utilization <= lr.Utilization {
		t.Fatalf("overload utilization %v not above light-load %v", hr.Utilization, lr.Utilization)
	}
}

func TestChurnSlotReuse(t *testing.T) {
	cfg := churnBase()
	cfg.ArrivalRate = 6.25
	cfg.MaxFlows = 32 // small pool forces reuse
	res, err := RunChurn(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Arrivals <= cfg.MaxFlows {
		t.Fatalf("arrivals = %d; test needs more than MaxFlows", res.Arrivals)
	}
	if res.Completed < res.Arrivals-res.Rejected {
		t.Fatalf("completed %d < admitted %d", res.Completed, res.Arrivals-res.Rejected)
	}
}

func TestChurnDeterminism(t *testing.T) {
	cfg := churnBase()
	cfg.ArrivalRate = 6.25
	cfg.Duration = 10 * sim.Second
	a, err := RunChurn(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunChurn(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Arrivals != b.Arrivals || a.Completed != b.Completed || a.MeanFCT != b.MeanFCT {
		t.Fatal("same-seed churn runs differ")
	}
}

func TestChurnBackgroundElephantsInflateFCT(t *testing.T) {
	base := churnBase()
	base.ArrivalRate = 2
	base.Duration = 20 * sim.Second
	clean, err := RunChurn(base)
	if err != nil {
		t.Fatal(err)
	}
	bloated := base
	bloated.Background = UniformFlows(4, "cubic", 20*sim.Millisecond)
	br, err := RunChurn(bloated)
	if err != nil {
		t.Fatal(err)
	}
	// Elephants pin the drop-tail buffer: mice FCT must rise sharply.
	if br.P50FCT < 2*clean.P50FCT {
		t.Fatalf("elephants did not inflate FCT: %v vs clean %v", br.P50FCT, clean.P50FCT)
	}
	// CoDel removes the standing queue and most of the penalty.
	codel := bloated
	codel.AQM = "codel"
	cr, err := RunChurn(codel)
	if err != nil {
		t.Fatal(err)
	}
	if cr.P50FCT > br.P50FCT/2 {
		t.Fatalf("CoDel FCT %v not well below drop-tail %v", cr.P50FCT, br.P50FCT)
	}
	// Background slots must not corrupt validation.
	bad := bloated
	bad.Background = []FlowSpec{{CCA: "cubic", RTT: 0}}
	if _, err := RunChurn(bad); err == nil {
		t.Fatal("zero-RTT background flow accepted")
	}
}
