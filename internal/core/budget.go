package core

import (
	"ccatscale/internal/budget"
	"ccatscale/internal/netem"
	"ccatscale/internal/packet"
	"ccatscale/internal/sim"
	"ccatscale/internal/units"
)

// DefaultDropTimestampCap is the drop-timestamp retention a degraded
// run falls back to when the original configuration kept every
// timestamp: large enough that burstiness scores stay statistically
// meaningful, small enough to bound the dominant trace allocation.
const DefaultDropTimestampCap = 1 << 20

// minDropTimestampCap floors degradation: below a few thousand samples
// the Goh–Barabási burstiness estimate is noise, so further tiers stop
// shrinking the drop log and shed cost elsewhere.
const minDropTimestampCap = 4096

// minDegradedDuration floors measurement-window shrinking so a maximally
// degraded run still measures something.
const minDegradedDuration = sim.Second

// EstimateConfig adapts a RunConfig into the footprint model's input and
// returns the predicted cost. It applies the same defaults Run would
// (MSS, implied queue sizing) so admission control judges the
// configuration that would actually execute.
func EstimateConfig(cfg RunConfig) budget.Footprint {
	c := cfg.withDefaults()
	var maxRTT sim.Time
	ccas := map[string]bool{}
	for _, f := range c.Flows {
		if f.RTT > maxRTT {
			maxRTT = f.RTT
		}
		ccas[f.CCA] = true
	}
	width := 0
	if c.SeriesInterval > 0 {
		width = len(ccas)
	}
	rate, buffer := c.Rate, c.Buffer
	var slots int64
	if c.Topology != nil {
		// A topology run's event cost is governed by its slowest link
		// (the primary bottleneck paces every path through it), while
		// memory scales with the sum of all queues: each link owns a
		// ring sized for its own buffer.
		rate, _ = c.Topology.MinRate()
		buffer = 0
		for _, l := range c.Topology.Links {
			buffer += l.Buffer
			slots += int64(netem.RingSlotsFor(l.Buffer))
		}
	} else if c.Buffer > 0 {
		slots = int64(netem.RingSlotsFor(c.Buffer))
	}
	return budget.Estimate(budget.Input{
		Flows:             len(c.Flows),
		RateBps:           int64(rate),
		BufferBytes:       int64(buffer),
		BDPBytes:          int64(units.BDP(rate, maxRTT)),
		FrameBytes:        int64(c.MSS + packet.HeaderBytes),
		SegmentBytes:      int64(c.MSS),
		QueueSlots:        slots,
		QueueSlotBytes:    packet.StructBytes,
		Horizon:           c.Warmup + c.Duration,
		SeriesInterval:    c.SeriesInterval,
		SeriesWidth:       width,
		MaxDropTimestamps: int64(c.MaxDropTimestamps),
	})
}

// DegradeTier returns cfg degraded to the given fidelity tier, the
// reduced-fidelity retry ladder after a budget breach. Each tier above
// the config's current one coarsens the throughput series (interval
// doubles), halves the retained drop-timestamp cap (bounding it first if
// it was unbounded), and from tier 2 on halves the measurement window.
// The tier is recorded in the returned config's Fidelity field, and
// flows through RunResult.Usage.MaxFidelity, so degraded results are
// always marked. Degradation is deterministic: the same (cfg, tier)
// always yields the same config, and a degraded run is itself exactly
// reproducible from its config snapshot.
func DegradeTier(cfg RunConfig, tier int) RunConfig {
	if tier <= cfg.Fidelity {
		return cfg
	}
	out := cfg
	for step := cfg.Fidelity + 1; step <= tier; step++ {
		if out.SeriesInterval > 0 {
			out.SeriesInterval *= 2
		}
		if out.MaxDropTimestamps == 0 {
			out.MaxDropTimestamps = DefaultDropTimestampCap
		}
		if out.MaxDropTimestamps > minDropTimestampCap {
			out.MaxDropTimestamps /= 2
			if out.MaxDropTimestamps < minDropTimestampCap {
				out.MaxDropTimestamps = minDropTimestampCap
			}
		}
		if step >= 2 && out.Duration/2 >= minDegradedDuration {
			out.Duration /= 2
		}
	}
	out.Fidelity = tier
	return out
}
