package core

import (
	"context"
	"errors"
	"reflect"
	"testing"
	"time"

	"ccatscale/internal/budget"
	"ccatscale/internal/sim"
	"ccatscale/internal/units"
)

// budgetTestConfig is a small run that drops packets early (tiny
// buffer), so every budget knob has something to catch.
func budgetTestConfig() RunConfig {
	return RunConfig{
		Rate:     50 * units.MbitPerSec,
		Buffer:   20 * units.KB,
		Flows:    UniformFlows(4, "reno", 20*sim.Millisecond),
		Warmup:   sim.Second,
		Duration: 5 * sim.Second,
		Stagger:  100 * sim.Millisecond,
		Seed:     1,
	}
}

// TestBudgetBreachPerKind drives one oversized run under each budget
// knob and asserts the structured failure: a *RunError wrapping a
// *budget.BudgetError with the right kind, limit < observed, and a
// checkpoint exactly when enforcement was in-flight.
func TestBudgetBreachPerKind(t *testing.T) {
	cases := []struct {
		name   string
		budget budget.Budget
		kind   budget.Kind
		stage  string
	}{
		{"heap", budget.Budget{HeapBytes: 1}, budget.KindHeapBytes, budget.StageInFlight},
		{"events", budget.Budget{Events: 1}, budget.KindEvents, budget.StageInFlight},
		{"trace", budget.Budget{TracePoints: 1}, budget.KindTracePoints, budget.StageInFlight},
		{"wall", budget.Budget{Wall: time.Nanosecond}, budget.KindWallClock, budget.StageInFlight},
		{"horizon", budget.Budget{Horizon: sim.Second}, budget.KindHorizon, budget.StageAdmission},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := budgetTestConfig()
			cfg.Budget = &tc.budget
			_, err := Run(cfg)
			if err == nil {
				t.Fatal("run under a tiny budget succeeded")
			}
			var re *RunError
			if !errors.As(err, &re) {
				t.Fatalf("error is not a *RunError: %v", err)
			}
			if re.Reason != "budget breach" {
				t.Fatalf("reason = %q, want \"budget breach\"", re.Reason)
			}
			var be *budget.BudgetError
			if !errors.As(err, &be) {
				t.Fatalf("error does not unwrap to *budget.BudgetError: %v", err)
			}
			if be.Kind != tc.kind {
				t.Fatalf("kind = %q, want %q", be.Kind, tc.kind)
			}
			if be.Stage != tc.stage {
				t.Fatalf("stage = %q, want %q", be.Stage, tc.stage)
			}
			if be.Observed <= be.Limit {
				t.Fatalf("observed %d not above limit %d", be.Observed, be.Limit)
			}
			if tc.stage == budget.StageInFlight && be.Checkpoint == nil {
				t.Fatal("in-flight breach carries no checkpoint")
			}
			if tc.stage == budget.StageAdmission && be.Checkpoint != nil {
				t.Fatal("admission breach carries a checkpoint")
			}
			// The failure must be replayable: the config snapshot holds
			// the budget that caused it.
			if re.Config.Budget == nil {
				t.Fatal("RunError.Config lost the budget")
			}
		})
	}
}

// TestTraceBudgetOnlyDropLogBreaches: an unbounded drop log breaches a
// small trace budget; the same budget with a bounded log (below the
// cap) completes because the series decimates instead of growing.
func TestTraceBudgetDegradesSeries(t *testing.T) {
	cfg := budgetTestConfig()
	cfg.MaxDropTimestamps = 100
	cfg.SeriesInterval = 10 * sim.Millisecond // 600 raw samples over 6s
	cfg.Budget = &budget.Budget{TracePoints: 200}
	res, err := Run(cfg)
	if err != nil {
		t.Fatalf("budgeted run failed: %v", err)
	}
	if res.Usage.MaxDecimation <= 1 {
		t.Fatalf("decimation = %d, want > 1 (series must have degraded)", res.Usage.MaxDecimation)
	}
	if !res.Usage.Degraded() {
		t.Fatal("usage does not report degradation")
	}
	if res.Usage.TracePoints > 200+int64(cfg.MaxDropTimestamps) {
		t.Fatalf("retained %d trace points under a 200-point series share", res.Usage.TracePoints)
	}
}

// TestRunManyCtxAdmission: a sweep with one impossible config completes
// the others and reports the rejection as a structured admission error.
func TestRunManyCtxAdmission(t *testing.T) {
	small := budgetTestConfig()
	huge := CoreScale().Build(UniformFlows(5000, "reno", 200*sim.Millisecond), WithSeed(Seed(1)))
	results, err := RunManyCtx(context.Background(), []RunConfig{huge, small},
		SweepOptions{Parallelism: 2, Budget: &budget.Budget{HeapBytes: 256 << 20}})
	if err == nil {
		t.Fatal("sweep with an over-budget config returned nil error")
	}
	var be *budget.BudgetError
	if !errors.As(err, &be) {
		t.Fatalf("sweep error does not unwrap to *budget.BudgetError: %v", err)
	}
	if be.Stage != budget.StageAdmission || be.Kind != budget.KindHeapBytes {
		t.Fatalf("breach = %s/%s, want admission/heap-bytes", be.Stage, be.Kind)
	}
	if results[0].Events != 0 {
		t.Fatal("rejected config ran anyway")
	}
	if results[1].AggregateGoodput <= 0 {
		t.Fatal("sibling config did not complete")
	}
}

// TestRunManyCtxCancel: a pre-cancelled context skips every queued
// config, tagging each with its index and ctx.Err().
func TestRunManyCtxCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	cfgs := []RunConfig{budgetTestConfig(), budgetTestConfig()}
	results, err := RunManyCtx(ctx, cfgs, SweepOptions{Parallelism: 1})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error does not wrap context.Canceled: %v", err)
	}
	for i, r := range results {
		if r.Events != 0 {
			t.Fatalf("config %d ran despite cancelled context", i)
		}
	}
}

// TestRetryDegradesToFit: a horizon budget the full-fidelity config
// exceeds is satisfied two degradation tiers down (tier 2 halves the
// measurement window), so a sweep with retries recovers a result where
// a single attempt fails — and the result is marked degraded.
func TestRetryDegradesToFit(t *testing.T) {
	cfg := budgetTestConfig() // horizon 6s
	cfg.Budget = &budget.Budget{Horizon: 4 * sim.Second}
	if _, err := Run(cfg); err == nil {
		t.Fatal("full-fidelity run fit a horizon it must exceed")
	}
	if _, err := RunManyCtx(context.Background(), []RunConfig{cfg},
		SweepOptions{Parallelism: 1}); err == nil {
		t.Fatal("sweep without retries admitted an over-horizon config")
	}
	results, err := RunManyCtx(context.Background(), []RunConfig{cfg},
		SweepOptions{Parallelism: 1, Retries: 2, RetryBackoff: time.Millisecond})
	if err != nil {
		t.Fatalf("sweep with retries failed: %v", err)
	}
	res := results[0]
	if res.Usage.MaxFidelity != 2 {
		t.Fatalf("fidelity = %d, want 2", res.Usage.MaxFidelity)
	}
	if !res.Usage.Degraded() {
		t.Fatal("degraded result not marked")
	}
	if got := res.Config.Warmup + res.Config.Duration; got > 4*sim.Second {
		t.Fatalf("degraded horizon %v still above budget", got)
	}
	if res.AggregateGoodput <= 0 {
		t.Fatal("degraded run produced no goodput")
	}
}

// TestBudgetFreeDeterminism: a run under a generous budget is virtually
// identical to a budget-free run — enforcement only observes. Wall
// clock and usage differ; every simulation-derived field must not.
func TestBudgetFreeDeterminism(t *testing.T) {
	cfg := budgetTestConfig()
	cfg.SeriesInterval = 100 * sim.Millisecond
	free, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Budget = &budget.Budget{
		HeapBytes:   1 << 40,
		Events:      1 << 40,
		TracePoints: 1 << 40,
		Wall:        time.Hour,
		Horizon:     3600 * sim.Second,
	}
	budgeted, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if free.Events != budgeted.Events {
		t.Fatalf("events differ: %d vs %d", free.Events, budgeted.Events)
	}
	if !reflect.DeepEqual(free.Flows, budgeted.Flows) {
		t.Fatal("per-flow results differ under a generous budget")
	}
	if !reflect.DeepEqual(free.Series, budgeted.Series) {
		t.Fatal("series differ under a generous budget")
	}
	if free.AggregateGoodput != budgeted.AggregateGoodput ||
		free.TotalDrops != budgeted.TotalDrops ||
		free.DropBurstiness != budgeted.DropBurstiness {
		t.Fatal("aggregate metrics differ under a generous budget")
	}
}

// TestDegradeTierLadder pins the deterministic degradation schedule.
func TestDegradeTierLadder(t *testing.T) {
	cfg := budgetTestConfig()
	cfg.SeriesInterval = 100 * sim.Millisecond

	t1 := DegradeTier(cfg, 1)
	if t1.Fidelity != 1 {
		t.Fatalf("fidelity = %d, want 1", t1.Fidelity)
	}
	if t1.SeriesInterval != 200*sim.Millisecond {
		t.Fatalf("tier 1 interval = %v, want doubled", t1.SeriesInterval)
	}
	if t1.MaxDropTimestamps != DefaultDropTimestampCap/2 {
		t.Fatalf("tier 1 drop cap = %d, want %d", t1.MaxDropTimestamps, DefaultDropTimestampCap/2)
	}
	if t1.Duration != cfg.Duration {
		t.Fatal("tier 1 must not shrink the measurement window")
	}

	t2 := DegradeTier(t1, 2)
	if t2.Duration != cfg.Duration/2 {
		t.Fatalf("tier 2 duration = %v, want halved", t2.Duration)
	}
	// Stepwise and direct degradation agree.
	if direct := DegradeTier(cfg, 2); !reflect.DeepEqual(direct, t2) {
		t.Fatalf("DegradeTier(cfg,2) = %+v, stepwise = %+v", direct, t2)
	}
	// Degrading to a lower tier is a no-op.
	if back := DegradeTier(t2, 1); !reflect.DeepEqual(back, t2) {
		t.Fatal("degrading to a lower tier changed the config")
	}
	// The floor holds under deep degradation.
	deep := DegradeTier(cfg, 12)
	if deep.MaxDropTimestamps < minDropTimestampCap {
		t.Fatalf("drop cap %d below floor", deep.MaxDropTimestamps)
	}
	if deep.Duration < minDegradedDuration {
		t.Fatalf("duration %v below floor", deep.Duration)
	}
}

// TestEstimateConfigScales: the estimator must separate the paper's
// regimes by an order of magnitude — that is all admission needs.
func TestEstimateConfigScales(t *testing.T) {
	edge := EdgeScale().Build(UniformFlows(50, "reno", 20*sim.Millisecond), WithSeed(Seed(1)))
	c := CoreScale()
	coreCfg := c.Build(UniformFlows(5000, "reno", 200*sim.Millisecond), WithSeed(Seed(1)))
	fe, fc := EstimateConfig(edge), EstimateConfig(coreCfg)
	if fc.HeapBytes < 4*fe.HeapBytes {
		t.Fatalf("CoreScale heap %d not well above EdgeScale %d", fc.HeapBytes, fe.HeapBytes)
	}
	if fc.Processed < 4*fe.Processed {
		t.Fatalf("CoreScale events %d not well above EdgeScale %d", fc.Processed, fe.Processed)
	}
	if fe.HeapBytes <= 0 || fe.Wall <= 0 {
		t.Fatal("estimate returned non-positive cost")
	}
}
