package core

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"time"

	"ccatscale/internal/budget"
	"ccatscale/internal/sim"
	"ccatscale/internal/telemetry"
)

// SweepOptions tunes RunManyCtx beyond plain parallelism.
type SweepOptions struct {
	// Parallelism bounds concurrent runs (≤0 = 1).
	Parallelism int
	// Retries is the number of reduced-fidelity retry attempts after a
	// retryable failure (budget breach or wall-clock stop). Each retry
	// degrades the config one fidelity tier via DegradeTier and waits an
	// exponential backoff first.
	Retries int
	// RetryBackoff is the base backoff before the first retry; it doubles
	// per attempt, plus deterministic jitter seeded from the config index
	// (0 = a small default).
	RetryBackoff time.Duration
	// Budget applies to every config that does not declare its own.
	Budget *budget.Budget
	// Collector applies to every config that does not declare its own;
	// it also receives the sweep's governance events (admission and
	// retry fidelity degradations, as KindDegraded).
	Collector telemetry.Collector
}

// defaultRetryBackoff keeps retry storms apart without stalling tests.
const defaultRetryBackoff = 50 * time.Millisecond

// RunMany executes several runs concurrently (each run is internally
// single-threaded and deterministic) and returns results in input
// order.
//
// Failures do not discard completed work: the returned slice always has
// one entry per config, holding the result for every run that
// succeeded (and the zero RunResult where one failed), and the error
// joins every failure via errors.Join, each tagged with its config
// index. The semaphore is taken before each goroutine is spawned, so a
// 10k-config sweep keeps at most parallelism goroutines in flight
// instead of materializing all 10k up front.
func RunMany(cfgs []RunConfig, parallelism int) ([]RunResult, error) {
	return RunManyCtx(context.Background(), cfgs, SweepOptions{Parallelism: parallelism})
}

// RunManyCtx is RunMany with governance: context cancellation stops
// queued configs (each skipped config's error is its ctx.Err, tagged
// with the config index; already-running simulations finish), a sweep
// budget gates admission (configs whose estimated footprint exceeds it
// are rejected with a structured *budget.BudgetError instead of running
// and OOMing siblings), and retryable failures re-run at reduced
// fidelity tiers with exponential backoff.
func RunManyCtx(ctx context.Context, cfgs []RunConfig, opt SweepOptions) ([]RunResult, error) {
	parallelism := opt.Parallelism
	if parallelism <= 0 {
		parallelism = 1
	}
	backoff := opt.RetryBackoff
	if backoff <= 0 {
		backoff = defaultRetryBackoff
	}
	results := make([]RunResult, len(cfgs))
	errs := make([]error, len(cfgs))
	sem := make(chan struct{}, parallelism)
	var wg sync.WaitGroup
	for i := range cfgs {
		cfg := cfgs[i]
		if cfg.Budget == nil {
			cfg.Budget = opt.Budget
		}
		if cfg.Collector == nil {
			cfg.Collector = opt.Collector
		}
		// Admission control: price the config before committing a slot.
		// When retries permit, an over-budget config is degraded tier by
		// tier until the estimate fits — backpressure by reduced
		// fidelity instead of outright rejection.
		if !cfg.Budget.Unlimited() {
			admitted := cfg.Fidelity
			berr := EstimateConfig(cfg).Check(cfg.Budget, cfg.Warmup+cfg.Duration)
			for r := 0; berr != nil && r < opt.Retries; r++ {
				cfg = DegradeTier(cfg, cfg.Fidelity+1)
				berr = EstimateConfig(cfg).Check(cfg.Budget, cfg.Warmup+cfg.Duration)
			}
			if berr != nil {
				errs[i] = fmt.Errorf("config %d: %w", i, berr)
				continue
			}
			if cfg.Fidelity > admitted && cfg.Collector != nil {
				cfg.Collector.Emit(telemetry.Event{
					Kind: telemetry.KindDegraded, Flow: -1,
					Label: "admission", A: int64(cfg.Fidelity), B: int64(i),
				})
			}
		}
		// Checked separately from the select below: with a full semaphore
		// and a cancelled context both cases would be ready and the
		// choice random.
		if err := ctx.Err(); err != nil {
			errs[i] = fmt.Errorf("config %d: %w", i, err)
			continue
		}
		select {
		case <-ctx.Done():
			errs[i] = fmt.Errorf("config %d: %w", i, ctx.Err())
			continue
		case sem <- struct{}{}: // bound spawned goroutines, not just running ones
		}
		wg.Add(1)
		go func(i int, cfg RunConfig) {
			defer wg.Done()
			defer func() { <-sem }()
			res, err := runWithRetry(ctx, i, cfg, opt.Retries, backoff)
			results[i] = res
			if err != nil {
				errs[i] = fmt.Errorf("config %d: %w", i, err)
			}
		}(i, cfg)
	}
	wg.Wait()
	return results, errors.Join(errs...)
}

// runMany is the sweep-internal entry point: it forwards the setting's
// retry allowance so every figure sweep inherits governance (admission
// degradation and reduced-fidelity retries) without changing its
// signature. Budgets already ride on each RunConfig via Setting.Config.
func (s Setting) runMany(cfgs []RunConfig, parallelism int) ([]RunResult, error) {
	ctx := s.Ctx
	if ctx == nil {
		ctx = context.Background()
	}
	return RunManyCtx(ctx, cfgs, SweepOptions{
		Parallelism: parallelism,
		Retries:     s.Retries,
	})
}

// runWithRetry executes one config, retrying retryable failures at
// progressively degraded fidelity tiers. Backoff uses full jitter
// (uniform in [0, base<<attempt)) derived from the config's own seed,
// so the schedule is reproducible run to run, yet two configs whose
// first retries collide in time draw independent waits and do not
// re-collide attempt after attempt the way stepped exponential backoff
// would.
func runWithRetry(ctx context.Context, idx int, cfg RunConfig, retries int, backoff time.Duration) (RunResult, error) {
	usage := budget.Usage{}
	for attempt := 0; ; attempt++ {
		res, err := RunCtx(ctx, cfg)
		if err == nil {
			if usage.Runs > 0 { // fold failed attempts' cost into the result
				usage.Merge(res.Usage)
				res.Usage = usage
			}
			return res, nil
		}
		if attempt >= retries || !retryable(err) || ctx.Err() != nil {
			return res, err
		}
		var re *RunError
		if errors.As(err, &re) {
			usage.Merge(budget.Usage{Events: re.Events, Wall: re.Wall})
		}
		timer := time.NewTimer(retryDelay(cfg.Seed, idx, attempt, backoff))
		select {
		case <-ctx.Done():
			timer.Stop()
			return res, err
		case <-timer.C:
		}
		cfg = DegradeTier(cfg, cfg.Fidelity+1)
		if cfg.Collector != nil {
			cfg.Collector.Emit(telemetry.Event{
				Kind: telemetry.KindDegraded, Flow: -1,
				Label: "retry", A: int64(cfg.Fidelity), B: int64(idx),
			})
		}
	}
}

// retryDelay computes the wait before retry attempt (0-based) of the
// config at idx in its sweep. Full jitter: a fresh RNG keyed by the
// config's simulation seed, its sweep position, and the attempt number
// draws uniformly from [0, backoff<<attempt), so the schedule is
// deterministic per config yet decorrelated across configs — the
// property TestRetryDelayDecorrelatesCollidingConfigs pins down.
func retryDelay(seed uint64, idx, attempt int, backoff time.Duration) time.Duration {
	shift := uint(attempt)
	if shift > 20 { // cap the window (~50ms<<20 ≈ 15 h); avoids overflow too
		shift = 20
	}
	ceil := int64(backoff) << shift
	if ceil <= 0 {
		return 0
	}
	rng := sim.NewRNG(0x9e3779b97f4a7c15 ^ seed ^ uint64(idx)<<32 ^ uint64(attempt)<<56)
	return time.Duration(rng.Int63n(ceil))
}

// retryable reports whether a failure is worth a reduced-fidelity
// retry: budget breaches and wall-clock watchdog stops are (less
// retained state or a shorter window can fit), panics and invariant
// violations are not (replaying a deterministic bug at lower fidelity
// just hides it).
func retryable(err error) bool {
	var re *RunError
	if !errors.As(err, &re) {
		return false
	}
	return re.Budget != nil || strings.HasPrefix(re.Reason, "wall-clock")
}
