package core

import (
	"bytes"
	"errors"
	"reflect"
	"strings"
	"testing"

	"ccatscale/internal/sim"
	"ccatscale/internal/units"
)

// auditedTinyConfig is a fast strict-audited run configuration.
func auditedTinyConfig(seed uint64) RunConfig {
	s := tinySetting()
	s.Warmup = 2 * sim.Second
	s.Duration = 8 * sim.Second
	cfg := s.Build(UniformFlows(4, "cubic", DefaultRTT), WithSeed(Seed(seed)))
	cfg.Audit = "strict"
	return cfg
}

func TestValidationErrorsAreDescriptive(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*RunConfig)
		want string
	}{
		{"zero rate", func(c *RunConfig) { c.Rate = 0 }, "rate must be positive"},
		{"negative rate", func(c *RunConfig) { c.Rate = -units.MbitPerSec }, "rate must be positive"},
		{"zero buffer", func(c *RunConfig) { c.Buffer = 0 }, "queue capacity must be positive"},
		{"sub-frame buffer", func(c *RunConfig) { c.Buffer = 100 }, "cannot hold one full-size frame"},
		{"no flows", func(c *RunConfig) { c.Flows = nil }, "no flows"},
		{"bad RTT", func(c *RunConfig) { c.Flows[0].RTT = -sim.Second }, "non-positive base RTT"},
		{"bad policy", func(c *RunConfig) { c.Audit = "paranoid" }, "unknown policy"},
		{"drill without audit", func(c *RunConfig) { c.Audit = ""; c.AuditDrillAt = sim.Second }, "audit drill requires"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := auditedTinyConfig(1)
			tc.mut(&cfg)
			_, err := Run(cfg)
			if err == nil {
				t.Fatal("expected a validation error")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

// TestAuditDrillCaughtStrict is the acceptance drill: a corrupted queue
// byte-decrement must fail a strict run with a structured conservation
// violation whose replay command carries the audit flags.
func TestAuditDrillCaughtStrict(t *testing.T) {
	cfg := auditedTinyConfig(1)
	cfg.AuditDrillAt = 3 * sim.Second
	_, err := Run(cfg)
	if err == nil {
		t.Fatal("strict run with corrupted queue accounting succeeded")
	}
	var re *RunError
	if !errors.As(err, &re) {
		t.Fatalf("error is %T, want *RunError", err)
	}
	if re.Reason != "invariant violation" {
		t.Fatalf("Reason = %q", re.Reason)
	}
	if re.Violation == nil {
		t.Fatal("RunError carries no structured violation")
	}
	if !strings.HasPrefix(re.Violation.Check, "netem/") {
		t.Fatalf("violation %q not attributed to the netem ledger", re.Violation.Check)
	}
	if re.Violation.Time < cfg.AuditDrillAt {
		t.Fatalf("violation at %v, before the drill at %v", re.Violation.Time, cfg.AuditDrillAt)
	}
	cmd := re.ReplayCommand()
	for _, want := range []string{"-audit strict", "-audit-drill"} {
		if !strings.Contains(cmd, want) {
			t.Fatalf("replay command %q lacks %q", cmd, want)
		}
	}
}

// TestAuditDrillWarnCountsAndContinues checks the warn policy: the same
// corruption is counted (with a retained sample) but the run completes.
func TestAuditDrillWarnCountsAndContinues(t *testing.T) {
	cfg := auditedTinyConfig(1)
	cfg.Audit = "warn"
	cfg.AuditDrillAt = 3 * sim.Second
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.AuditViolations == 0 {
		t.Fatal("warn run reported no violations despite the drill")
	}
	if len(res.AuditViolationSample) == 0 {
		t.Fatal("no violation sample retained")
	}
	if got := res.AuditViolationSample[0].Check; !strings.HasPrefix(got, "netem/") {
		t.Fatalf("first violation %q not from the netem ledger", got)
	}
}

// TestInvariantFailureReplayRoundTrip serializes a strict audit failure
// through the JSON failure record and re-runs the decoded config: the
// replay must reproduce the identical violation — same check, same
// virtual time, same seed, same event count.
func TestInvariantFailureReplayRoundTrip(t *testing.T) {
	cfg := auditedTinyConfig(9)
	cfg.AuditDrillAt = 3 * sim.Second
	_, err := Run(cfg)
	var re *RunError
	if !errors.As(err, &re) {
		t.Fatalf("error is %T, want *RunError", err)
	}

	var buf bytes.Buffer
	if err := re.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	decoded, err := ReadRunError(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if decoded.Violation == nil || *decoded.Violation != *re.Violation {
		t.Fatalf("violation did not survive JSON: %+v vs %+v", decoded.Violation, re.Violation)
	}

	_, err = Run(decoded.Config)
	var replay *RunError
	if !errors.As(err, &replay) {
		t.Fatalf("replay error is %T, want *RunError", err)
	}
	if replay.Violation == nil || *replay.Violation != *re.Violation {
		t.Fatalf("replay violation differs: %+v vs %+v", replay.Violation, re.Violation)
	}
	if replay.Seed != re.Seed || replay.VirtualTime != re.VirtualTime || replay.Events != re.Events {
		t.Fatalf("replay context differs: seed %d/%d vt %v/%v events %d/%d",
			replay.Seed, re.Seed, replay.VirtualTime, re.VirtualTime, replay.Events, re.Events)
	}
}

// TestAuditCleanAcrossConfigurations runs the strict auditor over the
// harness's impairment axes — CoDel, iid loss, jitter, burst loss,
// outages (drop and hold), mixed CCAs — and requires a clean pass: the
// conservation ledgers must account for every path a byte can take.
func TestAuditCleanAcrossConfigurations(t *testing.T) {
	mut := []struct {
		name string
		mut  func(*RunConfig)
	}{
		{"codel", func(c *RunConfig) { c.AQM = "codel" }},
		{"iid loss", func(c *RunConfig) { c.RandomLoss = 0.01 }},
		{"jitter", func(c *RunConfig) { c.Jitter = 2 * sim.Millisecond }},
		{"burst loss", func(c *RunConfig) { c.BurstLoss = &BurstLossSpec{MeanLoss: 0.005, MeanBurstLen: 4} }},
		{"outage drop", func(c *RunConfig) {
			c.Outage = &OutageSpec{Start: 3 * sim.Second, Down: 200 * sim.Millisecond, Period: 2 * sim.Second, Count: 2}
		}},
		{"outage hold", func(c *RunConfig) {
			c.Outage = &OutageSpec{Start: 3 * sim.Second, Down: 200 * sim.Millisecond, Period: 2 * sim.Second, Count: 2, Hold: true}
		}},
		{"mixed ccas", func(c *RunConfig) { c.Flows = MixedFlows(6, "bbr2", "vegas", DefaultRTT) }},
		{"burst loss + outage drop", func(c *RunConfig) {
			c.BurstLoss = &BurstLossSpec{MeanLoss: 0.005, MeanBurstLen: 4}
			c.Outage = &OutageSpec{Start: 3 * sim.Second, Down: 200 * sim.Millisecond, Period: 2 * sim.Second, Count: 2}
		}},
		{"burst loss + outage hold + iid", func(c *RunConfig) {
			c.RandomLoss = 0.005
			c.BurstLoss = &BurstLossSpec{MeanLoss: 0.005, MeanBurstLen: 4}
			c.Outage = &OutageSpec{Start: 3 * sim.Second, Down: 200 * sim.Millisecond, Period: 2 * sim.Second, Count: 2, Hold: true}
		}},
	}
	for _, tc := range mut {
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			cfg := auditedTinyConfig(3)
			tc.mut(&cfg)
			if _, err := Run(cfg); err != nil {
				t.Fatalf("strict-audited run failed: %v", err)
			}
		})
	}
}

// TestComposedImpairmentsAuditBitIdentity runs the fully composed
// impairment chain — iid loss, Gilbert–Elliott burst loss, and link
// outages together — with the auditor off and with it strict, and
// requires bit-identical results. The auditor is an observer: turning
// it on must not consume randomness, reorder events, or perturb a
// single flow statistic, even with every forward-path impairment
// stacked.
func TestComposedImpairmentsAuditBitIdentity(t *testing.T) {
	compose := func(audit string) RunConfig {
		cfg := auditedTinyConfig(17)
		cfg.Audit = audit
		cfg.RandomLoss = 0.005
		cfg.BurstLoss = &BurstLossSpec{MeanLoss: 0.01, MeanBurstLen: 4}
		cfg.Outage = &OutageSpec{Start: 3 * sim.Second, Down: 200 * sim.Millisecond, Period: 2 * sim.Second, Count: 2, Hold: true}
		return cfg
	}
	plain, err := Run(compose(""))
	if err != nil {
		t.Fatal(err)
	}
	strict, err := Run(compose("strict"))
	if err != nil {
		t.Fatalf("strict composed run failed: %v", err)
	}
	if !reflect.DeepEqual(plain.Flows, strict.Flows) {
		t.Fatal("strict auditing perturbed the composed run's flow results")
	}
	if plain.Events != strict.Events {
		t.Fatalf("event counts differ: plain %d, strict %d", plain.Events, strict.Events)
	}
	if plain.BurstDrops != strict.BurstDrops || plain.OutageDrops != strict.OutageDrops {
		t.Fatalf("drop ledgers differ: burst %d/%d outage %d/%d",
			plain.BurstDrops, strict.BurstDrops, plain.OutageDrops, strict.OutageDrops)
	}
	if strict.AuditViolations != 0 {
		t.Fatalf("composed chain raised %d audit violations", strict.AuditViolations)
	}
}
