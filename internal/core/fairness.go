package core

import (
	"ccatscale/internal/sim"
)

// FairnessRow is one (flow count, RTT) cell of the fairness figures.
type FairnessRow struct {
	Setting   string
	FlowCount int
	RTT       sim.Time

	// JFI is Jain's Fairness Index over per-flow goodputs (intra-CCA
	// figures: Finding 4 and Figure 4).
	JFI float64

	// Share maps CCA name → fraction of aggregate goodput (inter-CCA
	// figures 5–8). Empty for single-CCA runs… it is populated there
	// too, trivially with one entry of 1.
	Share map[string]float64

	// Utilization and Converged qualify the run.
	Utilization float64
	Converged   bool
}

// IntraCCASweep runs the intra-CCA fairness experiment (all flows one
// CCA, same RTT) across the setting's flow counts and the given RTTs
// (Figure 4 for BBR; Finding 4 for NewReno/Cubic).
func IntraCCASweep(s Setting, ccaName string, rtts []sim.Time, seed uint64, parallelism int) ([]FairnessRow, error) {
	var cfgs []RunConfig
	var meta []FairnessRow
	for _, rtt := range rtts {
		for _, n := range s.FlowCounts {
			cfgs = append(cfgs, s.Build(UniformFlows(n, ccaName, rtt), WithSeed(Seed(seed+uint64(len(cfgs))))))
			meta = append(meta, FairnessRow{Setting: s.Name, FlowCount: n, RTT: rtt})
		}
	}
	results, err := s.runMany(cfgs, parallelism)
	if err != nil {
		return nil, err
	}
	for i, res := range results {
		meta[i].JFI = res.JFI()
		meta[i].Share = res.ShareByCCA()
		meta[i].Utilization = res.Utilization
		meta[i].Converged = res.Converged
	}
	return meta, nil
}

// InterCCAMode selects the competition pattern of an inter-CCA sweep.
type InterCCAMode int

const (
	// EqualSplit runs a 50/50 mix of the two CCAs (Figures 5 and 8).
	EqualSplit InterCCAMode = iota
	// OneVersusMany runs a single flow of CCA A against n−1 flows of
	// CCA B (Figures 6 and 7).
	OneVersusMany
)

// InterCCASweep runs an inter-CCA fairness experiment across the
// setting's flow counts and the given RTTs. ccaA is the "measured" CCA
// whose share the figures plot (Cubic in Fig 5, BBR elsewhere).
func InterCCASweep(s Setting, mode InterCCAMode, ccaA, ccaB string, rtts []sim.Time, seed uint64, parallelism int) ([]FairnessRow, error) {
	var cfgs []RunConfig
	var meta []FairnessRow
	for _, rtt := range rtts {
		for _, n := range s.FlowCounts {
			var flows []FlowSpec
			switch mode {
			case EqualSplit:
				flows = MixedFlows(n, ccaA, ccaB, rtt)
			case OneVersusMany:
				flows = OneVersusFlows(n, ccaA, ccaB, rtt)
			}
			cfgs = append(cfgs, s.Build(flows, WithSeed(Seed(seed+uint64(len(cfgs))))))
			meta = append(meta, FairnessRow{Setting: s.Name, FlowCount: n, RTT: rtt})
		}
	}
	results, err := s.runMany(cfgs, parallelism)
	if err != nil {
		return nil, err
	}
	for i, res := range results {
		meta[i].JFI = res.JFI()
		meta[i].Share = res.ShareByCCA()
		meta[i].Utilization = res.Utilization
		meta[i].Converged = res.Converged
	}
	return meta, nil
}
