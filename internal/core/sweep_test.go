package core

import (
	"testing"
	"time"

	"ccatscale/internal/mathis"
	"ccatscale/internal/sim"
	"ccatscale/internal/units"
)

func sweepSetting() Setting {
	return Setting{
		Name:       "sweep-test",
		Rate:       50 * units.MbitPerSec,
		Buffer:     units.BDP(50*units.MbitPerSec, 200*sim.Millisecond) * 6 / 5,
		FlowCounts: []int{4, 8},
		Warmup:     5 * sim.Second,
		Duration:   25 * sim.Second,
		Stagger:    2 * sim.Second,
	}
}

func TestMathisSweepProducesRows(t *testing.T) {
	rows, err := MathisSweep(sweepSetting(), 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(rows))
	}
	for _, r := range rows {
		if r.Setting != "sweep-test" {
			t.Fatalf("setting = %q", r.Setting)
		}
		if r.CLoss <= 0 || r.CHalve <= 0 {
			t.Fatalf("degenerate constants: %+v", r)
		}
		if r.CLoss > 10 || r.CHalve > 10 {
			t.Fatalf("implausible constants: %+v", r)
		}
		if r.MedianErrHalve < 0 || r.MedianErrHalve > 1 {
			t.Fatalf("halving error out of range: %+v", r)
		}
		if r.LossToHalvingRatio <= 0 {
			t.Fatalf("no loss:halving ratio: %+v", r)
		}
		if r.Utilization < 0.8 {
			t.Fatalf("low utilization: %+v", r)
		}
	}
}

func TestMathisAnalyzeEmptyRun(t *testing.T) {
	// A result with no usable flows must not panic and yields zeroes.
	row := MathisAnalyze("x", 0, RunResult{Config: RunConfig{MSS: units.MSS}})
	if row.CLoss != 0 || row.CHalve != 0 || row.LossToHalvingRatio != 0 {
		t.Fatalf("row = %+v, want zeroes", row)
	}
}

func TestIntraCCASweepShape(t *testing.T) {
	s := sweepSetting()
	rtts := []sim.Time{20 * sim.Millisecond, 100 * sim.Millisecond}
	rows, err := IntraCCASweep(s, "reno", rtts, 1, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(rtts)*len(s.FlowCounts) {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.JFI <= 0 || r.JFI > 1 {
			t.Fatalf("JFI out of range: %+v", r)
		}
		if r.Share["reno"] < 0.999 {
			t.Fatalf("single-CCA share = %v", r.Share)
		}
	}
}

func TestInterCCASweepModes(t *testing.T) {
	s := sweepSetting()
	s.FlowCounts = []int{6}
	rtts := []sim.Time{20 * sim.Millisecond}

	eq, err := InterCCASweep(s, EqualSplit, "cubic", "reno", rtts, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if got := eq[0].Share["cubic"] + eq[0].Share["reno"]; got < 0.999 {
		t.Fatalf("shares sum = %v", got)
	}

	// BBR's model needs time to recover from the startup-phase collapse
	// (its min-RTT glimpse of the empty queue caps the window until the
	// 10 s filter expires), so the one-vs-many check uses a longer
	// window than the quick sweeps above.
	s.Duration = 90 * sim.Second
	ovm, err := InterCCASweep(s, OneVersusMany, "bbr", "reno", rtts, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if ovm[0].Share["bbr"] <= 0 {
		t.Fatalf("loner got nothing: %v", ovm[0].Share)
	}
	// One BBR flow among six: its share must exceed the 1/6 fair share
	// (the paper's Finding 6 direction) in this deep-buffer setting.
	if ovm[0].Share["bbr"] < 1.0/6 {
		t.Fatalf("bbr share %v below fair share", ovm[0].Share["bbr"])
	}
}

func TestCrossSettingAnalysis(t *testing.T) {
	s := sweepSetting()
	edgeRes, err := Run(s.Build(UniformFlows(8, "reno", DefaultRTT), WithSeed(Seed(1))))
	if err != nil {
		t.Fatal(err)
	}
	coreRes, err := Run(s.Build(UniformFlows(4, "reno", DefaultRTT), WithSeed(Seed(2))))
	if err != nil {
		t.Fatal(err)
	}
	rows := CrossSettingAnalysis(edgeRes, []RunResult{coreRes}, []int{4})
	if len(rows) != 1 {
		t.Fatalf("rows = %d", len(rows))
	}
	r := rows[0]
	if r.EdgeCLoss <= 0 || r.EdgeCHalve <= 0 {
		t.Fatalf("edge constants missing: %+v", r)
	}
	if r.ErrLossEdgeC < 0 || r.ErrHalveEdgeC < 0 {
		t.Fatalf("negative errors: %+v", r)
	}
}

func TestMedianFlowRTT(t *testing.T) {
	res := RunResult{Flows: []FlowResult{
		{MeanRTT: 100 * sim.Millisecond},
		{MeanRTT: 300 * sim.Millisecond},
		{MeanRTT: 200 * sim.Millisecond},
		{MeanRTT: 0}, // skipped
	}}
	if got := MedianFlowRTT(res); got != 0.2 {
		t.Fatalf("MedianFlowRTT = %v", got)
	}
}

func TestScaleRTT(t *testing.T) {
	if got := ScaleRTT(20*sim.Millisecond, 2.5); got != 50*sim.Millisecond {
		t.Fatalf("ScaleRTT = %v", got)
	}
}

func TestMathisSamplesRespectInterpretation(t *testing.T) {
	res := RunResult{
		Config: RunConfig{MSS: units.MSS},
		Flows: []FlowResult{{
			Goodput:     8 * units.MbitPerSec,
			LossRate:    0.01,
			HalvingRate: 0.002,
			MeanRTT:     50 * sim.Millisecond,
		}},
	}
	loss := mathisSamples(res, false)
	halve := mathisSamples(res, true)
	if len(loss) != 1 || len(halve) != 1 {
		t.Fatal("sample extraction failed")
	}
	if loss[0].P != 0.01 || halve[0].P != 0.002 {
		t.Fatalf("p mixup: %v vs %v", loss[0].P, halve[0].P)
	}
	// Degenerate flows are skipped.
	res.Flows[0].LossRate = 0
	if len(mathisSamples(res, false)) != 0 {
		t.Fatal("zero-p sample not skipped")
	}
	_ = mathis.Sample{}
}

// TestRetryDelayDecorrelatesCollidingConfigs pins the full-jitter
// property the retry ladder depends on: when many configs hit a
// retryable failure at the same instant (a shared budget breach, a
// machine stall), their backoff draws must not march in lockstep —
// stepped exponential backoff would have every config sleep the same
// schedule and re-collide on every attempt.
func TestRetryDelayDecorrelatesCollidingConfigs(t *testing.T) {
	const backoff = 50 * time.Millisecond
	// Determinism: the schedule is a pure function of (seed, idx, attempt).
	if a, b := retryDelay(42, 3, 2, backoff), retryDelay(42, 3, 2, backoff); a != b {
		t.Fatalf("retryDelay not deterministic: %v vs %v", a, b)
	}
	for attempt := 0; attempt < 4; attempt++ {
		ceil := backoff << uint(attempt)
		seen := map[time.Duration]int{}
		for idx := 0; idx < 32; idx++ {
			d := retryDelay(uint64(1000+idx), idx, attempt, backoff)
			if d < 0 || d >= ceil {
				t.Fatalf("attempt %d idx %d: delay %v outside [0, %v)", attempt, idx, d, ceil)
			}
			seen[d]++
		}
		// 32 colliding configs must spread out: full jitter over a window
		// of ≥50ms in nanoseconds makes even one duplicate astronomically
		// unlikely, so tolerate at most one as a flake guard.
		if len(seen) < 31 {
			t.Fatalf("attempt %d: only %d distinct delays across 32 configs — retries synchronize", attempt, len(seen))
		}
	}
	// Different simulation seeds at the same sweep position must not
	// share a schedule either (the old ladder keyed on idx alone).
	if retryDelay(1, 0, 1, backoff) == retryDelay(2, 0, 1, backoff) {
		t.Fatal("configs differing only in seed share a retry schedule")
	}
	// Degenerate windows collapse to an immediate retry, not a panic.
	if d := retryDelay(7, 0, 0, 0); d != 0 {
		t.Fatalf("zero backoff: %v", d)
	}
}
