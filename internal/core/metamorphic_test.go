package core

import (
	"math"
	"reflect"
	"testing"

	"ccatscale/internal/sim"
	"ccatscale/internal/units"
)

// Metamorphic tests: transformations of a run whose effect on the
// metrics is known a priori. All runs execute under the strict auditor,
// so every simulated byte is also conservation-checked along the way.

// TestMetamorphicScaleInvariance scales flow count, bottleneck rate, and
// buffer together: the per-flow share of one flow is unchanged by the
// transformation (the paper's own CoreScaleScaled rests on exactly this
// property). The runs are stochastic (staggered starts, different RNG
// streams), so the comparison is distributional: mean per-flow goodput
// and aggregate utilization within a tolerance, not bit equality.
func TestMetamorphicScaleInvariance(t *testing.T) {
	base := RunConfig{
		Rate:     40 * units.MbitPerSec,
		Buffer:   units.BDP(40*units.MbitPerSec, 200*sim.Millisecond) * 6 / 5,
		Flows:    UniformFlows(4, "cubic", DefaultRTT),
		Warmup:   5 * sim.Second,
		Duration: 30 * sim.Second,
		Stagger:  2 * sim.Second,
		Seed:     11,
		Audit:    "strict",
	}
	scaled := base
	scaled.Rate = 2 * base.Rate
	scaled.Buffer = 2 * base.Buffer
	scaled.Flows = UniformFlows(8, "cubic", DefaultRTT)

	a, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(scaled)
	if err != nil {
		t.Fatal(err)
	}
	perFlowA := float64(a.AggregateGoodput) / float64(len(a.Flows))
	perFlowB := float64(b.AggregateGoodput) / float64(len(b.Flows))
	if r := perFlowB / perFlowA; r < 0.85 || r > 1.15 {
		t.Fatalf("per-flow goodput not scale-invariant: %v vs %v (ratio %.3f)",
			perFlowA, perFlowB, r)
	}
	if d := math.Abs(a.Utilization - b.Utilization); d > 0.05 {
		t.Fatalf("utilization diverged under scaling: %.3f vs %.3f", a.Utilization, b.Utilization)
	}
}

// TestMetamorphicStartOrderPermutation permutes the flow start order of
// a mixed-CCA run (interleaved vs blocked). The flow multiset is
// unchanged, so the aggregate behavior — utilization, per-CCA share —
// must be preserved within stochastic tolerance; only the identity of
// which flow got which stagger slot may differ. Single seeds are noisy
// at 8 flows, so each side is averaged over several seeds before the
// comparison — the metamorphic claim is about the distribution, not one
// draw.
func TestMetamorphicStartOrderPermutation(t *testing.T) {
	// Cubic-vs-reno shares converge slowly (the cubic advantage builds
	// over epochs), so the horizon must be long enough that both
	// orderings have reached the steady share before comparing.
	s := tinySetting()
	s.Warmup = 10 * sim.Second
	s.Duration = 90 * sim.Second
	seeds := []uint64{5, 6, 7}

	average := func(flows []FlowSpec) (goodput, share float64) {
		for _, seed := range seeds {
			cfg := s.Build(flows, WithSeed(Seed(seed)))
			cfg.Audit = "strict"
			res, err := Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			goodput += float64(res.AggregateGoodput)
			share += res.ShareByCCA()["cubic"]
		}
		n := float64(len(seeds))
		return goodput / n, share / n
	}

	interleaved := MixedFlows(8, "cubic", "reno", DefaultRTT)
	blocked := append(UniformFlows(4, "cubic", DefaultRTT), UniformFlows(4, "reno", DefaultRTT)...)
	goodA, shareA := average(interleaved)
	goodB, shareB := average(blocked)

	if r := goodB / goodA; r < 0.95 || r > 1.05 {
		t.Fatalf("aggregate goodput changed under start-order permutation: ratio %.3f", r)
	}
	if d := math.Abs(shareA - shareB); d > 0.12 {
		t.Fatalf("mean cubic share moved %.3f under start-order permutation (%.3f vs %.3f)",
			d, shareA, shareB)
	}
}

// TestMetamorphicHorizonPrefix extends the measurement horizon: because
// nothing in the simulation depends on the end time, the longer run's
// goodput time series must carry the shorter run's series as a
// bit-identical prefix. This is an exact (non-statistical) metamorphic
// property and a sharp regression detector for any end-time leakage
// into the event stream.
func TestMetamorphicHorizonPrefix(t *testing.T) {
	s := tinySetting()
	s.Warmup = 2 * sim.Second
	short := s.Build(MixedFlows(4, "cubic", "bbr", DefaultRTT), WithSeed(Seed(17)))
	short.Duration = 8 * sim.Second
	short.SeriesInterval = sim.Second
	short.Audit = "strict"
	long := short
	long.Duration = 16 * sim.Second

	a, err := Run(short)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(long)
	if err != nil {
		t.Fatal(err)
	}
	if len(b.Series) <= len(a.Series) {
		t.Fatalf("longer run has no longer series: %d vs %d", len(b.Series), len(a.Series))
	}
	if !reflect.DeepEqual(a.Series, b.Series[:len(a.Series)]) {
		t.Fatal("shorter run's series is not a bit-identical prefix of the longer run's")
	}
}
