package core

import (
	"fmt"

	"ccatscale/internal/netem"
	"ccatscale/internal/schema"
	"ccatscale/internal/sim"
	"ccatscale/internal/units"
)

// CompileSpec converts a scenario job spec — the plain-data shape
// ccserve admits and scenario files carry — into the simulator's terms:
// a Setting plus the flattened flow list. It validates the spec first
// and, for topology jobs, compiles and validates the link graph, so
// unreachable nodes and zero-capacity links fail here with the
// constructor's descriptive error rather than at run time.
//
// Both front ends (cmd/reproduce -scenario and ccserve) compile through
// this one function, which is what keeps a scenario's identity stable:
// the same document always yields the same Setting, hence the same
// config hash and result key.
func CompileSpec(spec schema.JobSpec) (Setting, []FlowSpec, error) {
	if err := spec.Validate(); err != nil {
		return Setting{}, nil, err
	}
	s := Setting{
		Name:         spec.Name,
		Rate:         units.Bandwidth(spec.RateMbps * float64(units.MbitPerSec)),
		Buffer:       units.ByteCount(spec.BufferBytes),
		Warmup:       sim.Time(spec.WarmupS * float64(sim.Second)),
		Duration:     sim.Time(spec.DurationS * float64(sim.Second)),
		Stagger:      sim.Time(spec.StaggerS * float64(sim.Second)),
		AQM:          spec.AQM,
		ECN:          spec.ECN,
		ECNMarkBytes: units.ByteCount(spec.ECNMarkBytes),
	}
	var flows []FlowSpec
	for _, g := range spec.Flows {
		rtt := sim.Time(g.RTTMs * float64(sim.Millisecond))
		for i := 0; i < g.Count; i++ {
			flows = append(flows, FlowSpec{CCA: g.CCA, RTT: rtt})
		}
	}
	if spec.Topology != nil {
		ts, err := compileTopology(spec)
		if err != nil {
			return Setting{}, nil, fmt.Errorf("core: scenario %s: %w", spec.Name, err)
		}
		s.Topology = ts
		// Every link declares its own rate, buffer, and discipline; the
		// dumbbell fields stay zero so they cannot leak into the config
		// hash or mislead a reader of the serialized setting.
		s.Rate, s.Buffer, s.AQM = 0, 0, ""
		s.ECN, s.ECNMarkBytes = false, 0
	}
	return s, flows, nil
}

// compileTopology lowers the document's link graph into a simulator
// TopologySpec: named links become indexed LinkSpecs in declaration
// order, and each flow group's named path becomes one index path per
// flattened flow. The resulting spec is validated in full (chaining,
// reachability, capacities) before it is returned.
func compileTopology(spec schema.JobSpec) (*netem.TopologySpec, error) {
	doc := spec.Topology
	ts := &netem.TopologySpec{Nodes: append([]string(nil), doc.Nodes...)}
	index := make(map[string]int, len(doc.Links))
	for i, l := range doc.Links {
		var disc netem.AQM
		switch l.AQM {
		case "", "droptail":
			disc = netem.DropTail
		case "codel":
			disc = netem.CoDel
		default:
			return nil, fmt.Errorf("link %q: unknown AQM %q", l.Name, l.AQM)
		}
		index[l.Name] = i
		ts.Links = append(ts.Links, netem.LinkSpec{
			Name:         l.Name,
			From:         l.From,
			To:           l.To,
			Rate:         units.Bandwidth(l.RateMbps * float64(units.MbitPerSec)),
			Delay:        sim.Time(l.DelayMs * float64(sim.Millisecond)),
			Buffer:       units.ByteCount(l.BufferBytes),
			Discipline:   disc,
			ECN:          l.ECN,
			ECNMarkBytes: units.ByteCount(l.ECNMarkBytes),
			LossRate:     l.LossRate,
		})
	}
	for _, g := range spec.Flows {
		path := make([]int, len(g.Path))
		for k, name := range g.Path {
			i, ok := index[name]
			if !ok {
				return nil, fmt.Errorf("path references undeclared link %q", name)
			}
			path[k] = i
		}
		for i := 0; i < g.Count; i++ {
			ts.Paths = append(ts.Paths, path)
		}
	}
	if err := ts.Validate(); err != nil {
		return nil, err
	}
	return ts, nil
}

// ScenarioBuilder compiles one parsed scenario document into runnable
// configuration. Build it once per document with NewScenarioBuilder;
// the accessors then hand the same compiled Setting and flows to
// whichever front end is driving — reproduce builds a RunConfig
// directly, ccserve keys and estimates off the Setting.
type ScenarioBuilder struct {
	scn     *schema.Scenario
	setting Setting
	flows   []FlowSpec
}

// NewScenarioBuilder compiles scn, surfacing every validation and
// graph error at construction.
func NewScenarioBuilder(scn *schema.Scenario) (*ScenarioBuilder, error) {
	if err := scn.Validate(); err != nil {
		return nil, err
	}
	setting, flows, err := CompileSpec(scn.JobSpec)
	if err != nil {
		return nil, err
	}
	setting.Audit = scn.Audit
	return &ScenarioBuilder{scn: scn, setting: setting, flows: flows}, nil
}

// Setting returns the compiled setting.
func (b *ScenarioBuilder) Setting() Setting { return b.setting }

// Flows returns a copy of the compiled flow list.
func (b *ScenarioBuilder) Flows() []FlowSpec {
	return append([]FlowSpec(nil), b.flows...)
}

// Seed returns the document's seed.
func (b *ScenarioBuilder) Seed() Seed { return Seed(b.scn.Seed) }

// RunConfig builds the scenario's RunConfig: the compiled setting and
// flows, the document's seed and series interval, then any options —
// so WithSeed in opts overrides the document for seed sweeps.
func (b *ScenarioBuilder) RunConfig(opts ...ConfigOption) RunConfig {
	base := []ConfigOption{WithSeed(Seed(b.scn.Seed))}
	if b.scn.SeriesIntervalS > 0 {
		iv := sim.Time(b.scn.SeriesIntervalS * float64(sim.Second))
		base = append(base, func(c *RunConfig) { c.SeriesInterval = iv })
	}
	return b.setting.Build(b.flows, append(base, opts...)...)
}
