package core

import (
	"testing"

	"ccatscale/internal/sim"
	"ccatscale/internal/units"
)

// faultSetting is a small, fast regime for the fault-injection sweeps:
// enough bandwidth that the injected loss, not the bottleneck share,
// limits each of the 8 burst-sweep flows.
func faultSetting() Setting {
	return Setting{
		Name:       "FaultTest",
		Rate:       100 * units.MbitPerSec,
		Buffer:     512 * units.KB,
		FlowCounts: []int{4},
		Warmup:     sim.Second,
		Duration:   8 * sim.Second,
		Stagger:    500 * sim.Millisecond,
	}
}

func TestBurstLossSweepModelBreakdown(t *testing.T) {
	rows, err := BurstLossSweep(faultSetting(), 21, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(BurstLens) {
		t.Fatalf("%d rows, want %d", len(rows), len(BurstLens))
	}
	for _, r := range rows {
		if r.BurstDrops == 0 {
			t.Fatalf("burst len %v: no channel drops", r.BurstLen)
		}
		if r.GoodputPerFlow <= 0 || r.PredictIID <= 0 {
			t.Fatalf("burst len %v: degenerate goodput %v / prediction %v", r.BurstLen, r.GoodputPerFlow, r.PredictIID)
		}
	}
	// In the model's home regime (iid loss) the prediction is in the
	// right ballpark…
	if rows[0].ModelRatio < 0.4 || rows[0].ModelRatio > 2.5 {
		t.Fatalf("iid model ratio = %v, want ≈1", rows[0].ModelRatio)
	}
	// …and lengthening bursts at the same mean loss pushes measured
	// throughput above what the iid model predicts (one halving per
	// burst instead of one per drop).
	if last, first := rows[len(rows)-1].ModelRatio, rows[0].ModelRatio; last <= first {
		t.Fatalf("model ratio did not grow with burst length: %v (len %v) vs %v (len 1)",
			last, rows[len(rows)-1].BurstLen, first)
	}
	// Drops per halving grows with burst length too (Figure 3's
	// mechanism, injected rather than emergent).
	if rows[len(rows)-1].DropsPerHalving <= rows[0].DropsPerHalving {
		t.Fatalf("drops/halving did not grow with burst length: %v vs %v",
			rows[len(rows)-1].DropsPerHalving, rows[0].DropsPerHalving)
	}
}

func TestBurstLossSweepDeterministic(t *testing.T) {
	a, err := BurstLossSweep(faultSetting(), 5, 2)
	if err != nil {
		t.Fatal(err)
	}
	b, err := BurstLossSweep(faultSetting(), 5, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("row %d diverged under the same seed:\n%+v\n%+v", i, a[i], b[i])
		}
	}
}

func TestOutageSweepRecovery(t *testing.T) {
	rows, err := OutageSweep(faultSetting(), 31, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(OutageCCAs)*len(OutageDowns) {
		t.Fatalf("%d rows, want %d", len(rows), len(OutageCCAs)*len(OutageDowns))
	}
	for _, r := range rows {
		if r.OutageDrops == 0 {
			t.Fatalf("%s down=%v: no outage drops", r.CCA, r.Down)
		}
		if r.GoodputFrac <= 0 || r.GoodputFrac > 1.05 {
			t.Fatalf("%s down=%v: goodput fraction %v outside (0, 1]", r.CCA, r.Down, r.GoodputFrac)
		}
		if r.JFI <= 0 || r.JFI > 1 {
			t.Fatalf("%s down=%v: JFI %v", r.CCA, r.Down, r.JFI)
		}
	}
	// A 3 s blackout must cost visibly more goodput than a 200 ms blip
	// for the same CCA.
	byKey := map[string]OutageRow{}
	for _, r := range rows {
		byKey[r.CCA+r.Down.String()] = r
	}
	for _, cca := range OutageCCAs {
		short := byKey[cca+OutageDowns[0].String()]
		long := byKey[cca+OutageDowns[len(OutageDowns)-1].String()]
		if long.GoodputFrac >= short.GoodputFrac {
			t.Fatalf("%s: %v outage (frac %v) not worse than %v (frac %v)",
				cca, long.Down, long.GoodputFrac, short.Down, short.GoodputFrac)
		}
		if long.RTOs == 0 {
			t.Fatalf("%s: a %v blackout produced no RTOs", cca, long.Down)
		}
	}
}
