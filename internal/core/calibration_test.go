package core

import (
	"math"
	"testing"

	"ccatscale/internal/mathis"
	"ccatscale/internal/padhye"
	"ccatscale/internal/sim"
	"ccatscale/internal/units"
)

// TestMathisCalibrationUnderBernoulliLoss validates the whole stack
// against the Mathis model in the regime the model was derived for:
// a single NewReno flow, independent random loss, no queueing. The
// classic constant for delayed-ACK NewReno is C = √(3/(2b)) ≈ 0.87
// (b = 2); with stretch ACKs and byte counting implementations land
// between ≈0.7 and ≈1.3. This is the calibration anchor for all the §4
// experiments.
func TestMathisCalibrationUnderBernoulliLoss(t *testing.T) {
	const lossProb = 0.005
	rtt := 40 * sim.Millisecond
	cfg := RunConfig{
		Rate:       100 * units.MbitPerSec, // never the bottleneck
		Buffer:     10 * units.MB,
		Flows:      []FlowSpec{{CCA: "reno", RTT: rtt}},
		Warmup:     10 * sim.Second,
		Duration:   120 * sim.Second,
		Seed:       3,
		RandomLoss: lossProb,
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	f := res.Flows[0]
	if res.RandomDrops == 0 {
		t.Fatal("no random drops despite configured loss")
	}
	if res.Utilization > 0.9 {
		t.Fatalf("link saturated (util %v): calibration needs loss-limited flow", res.Utilization)
	}
	// The flow must be loss-limited well below line rate.
	measured := f.Goodput.BytesPerSec()
	sample := mathis.Sample{P: lossProb, RTTSeconds: f.MeanRTT.Seconds(), MSSBytes: float64(units.MSS)}
	implThroughput := func(c float64) float64 { return mathis.Predict(c, sample) }
	cLow, cHigh := implThroughput(0.6), implThroughput(1.6)
	if measured < cLow || measured > cHigh {
		t.Fatalf("measured %v outside Mathis band [%v, %v] (C in [0.6, 1.6]); implied C = %v",
			measured, cLow, cHigh, measured/implThroughput(1))
	}
	// PFTK with the same parameters should also be within a factor ~2
	// at this low loss.
	pftk := padhye.Throughput(padhye.Params{
		MSSBytes:   float64(units.MSS),
		RTTSeconds: f.MeanRTT.Seconds(),
	}, lossProb)
	ratio := measured / pftk
	if ratio < 0.5 || ratio > 3 {
		t.Fatalf("measured/PFTK = %v, want within [0.5, 3]", ratio)
	}
	_ = math.Sqrt // doc anchor
}

// TestJitterDoesNotBreakTransport checks the transport tolerates mild
// netem jitter (sub-reordering-threshold) without collapse.
func TestJitterDoesNotBreakTransport(t *testing.T) {
	cfg := RunConfig{
		Rate:     20 * units.MbitPerSec,
		Buffer:   units.BDP(20*units.MbitPerSec, 200*sim.Millisecond),
		Flows:    []FlowSpec{{CCA: "reno", RTT: 20 * sim.Millisecond}},
		Warmup:   5 * sim.Second,
		Duration: 20 * sim.Second,
		Seed:     1,
		Jitter:   200 * sim.Microsecond,
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if float64(res.AggregateGoodput) < 0.7*float64(cfg.Rate) {
		t.Fatalf("goodput %v collapsed under mild jitter", res.AggregateGoodput)
	}
}

// TestVegasStarvedByReno checks the classic result that motivates the
// paper's CCA selection: delay-based Vegas backs off as loss-based
// flows fill the queue, ending far below its fair share.
func TestVegasStarvedByReno(t *testing.T) {
	rate := 50 * units.MbitPerSec
	cfg := RunConfig{
		Rate:     rate,
		Buffer:   units.BDP(rate, 200*sim.Millisecond),
		Flows:    append(UniformFlows(2, "vegas", 20*sim.Millisecond), UniformFlows(2, "reno", 20*sim.Millisecond)...),
		Warmup:   10 * sim.Second,
		Duration: 40 * sim.Second,
		Seed:     5,
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	share := res.ShareByCCA()
	if share["vegas"] > 0.25 {
		t.Fatalf("vegas share = %v; expected starvation below fair share (0.5)", share["vegas"])
	}
	if share["reno"] < 0.7 {
		t.Fatalf("reno share = %v", share["reno"])
	}
}

// TestBBR2SingleFlowKeepsLowQueue checks the v2 design goals on a
// clean link: full utilization with a small standing queue.
func TestBBR2SingleFlowKeepsLowQueue(t *testing.T) {
	rate := 50 * units.MbitPerSec
	rtt := 20 * sim.Millisecond
	cfg := RunConfig{
		Rate:     rate,
		Buffer:   units.BDP(rate, 200*sim.Millisecond),
		Flows:    UniformFlows(1, "bbr2", rtt),
		Warmup:   5 * sim.Second,
		Duration: 30 * sim.Second,
		Seed:     1,
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if float64(res.AggregateGoodput) < 0.75*float64(rate) {
		t.Fatalf("bbr2 goodput = %v on %v link", res.AggregateGoodput, rate)
	}
	if res.Flows[0].MeanRTT > 4*rtt {
		t.Fatalf("bbr2 standing queue too deep: meanRTT %v", res.Flows[0].MeanRTT)
	}
}

// TestBBR2GentlerThanBBR1VersusReno compares the two generations in
// the same competition: v2's loss response must leave NewReno a larger
// share than v1 does.
func TestBBR2GentlerThanBBR1VersusReno(t *testing.T) {
	rate := 50 * units.MbitPerSec
	base := RunConfig{
		Rate:     rate,
		Buffer:   units.BDP(rate, 200*sim.Millisecond) * 3 / 2,
		Warmup:   10 * sim.Second,
		Duration: 60 * sim.Second,
		Seed:     3,
	}
	v1 := base
	v1.Flows = append(UniformFlows(2, "bbr", 20*sim.Millisecond), UniformFlows(2, "reno", 20*sim.Millisecond)...)
	v2 := base
	v2.Flows = append(UniformFlows(2, "bbr2", 20*sim.Millisecond), UniformFlows(2, "reno", 20*sim.Millisecond)...)
	r1, err := Run(v1)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Run(v2)
	if err != nil {
		t.Fatal(err)
	}
	renoV1 := r1.ShareByCCA()["reno"]
	renoV2 := r2.ShareByCCA()["reno"]
	if renoV2 <= renoV1 {
		t.Fatalf("reno share vs bbr2 (%v) not above vs bbr1 (%v)", renoV2, renoV1)
	}
}

// TestCoDelRemovesStandingQueue runs the AQM extension end-to-end: a
// saturating NewReno flow over a CoDel bottleneck keeps its RTT near
// the base RTT (no bufferbloat), where the paper's drop-tail pins the
// deep buffer full.
func TestCoDelRemovesStandingQueue(t *testing.T) {
	rate := 20 * units.MbitPerSec
	rtt := 20 * sim.Millisecond
	base := RunConfig{
		Rate:     rate,
		Buffer:   units.BDP(rate, 200*sim.Millisecond),
		Flows:    UniformFlows(2, "reno", rtt),
		Warmup:   5 * sim.Second,
		Duration: 30 * sim.Second,
		Seed:     1,
	}
	codel := base
	codel.AQM = "codel"
	dt, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	cd, err := Run(codel)
	if err != nil {
		t.Fatal(err)
	}
	if dt.Flows[0].MeanRTT < 3*rtt {
		t.Fatalf("drop-tail meanRTT %v shows no bufferbloat baseline", dt.Flows[0].MeanRTT)
	}
	if cd.Flows[0].MeanRTT > 2*rtt {
		t.Fatalf("CoDel meanRTT %v: standing queue not controlled", cd.Flows[0].MeanRTT)
	}
	// Throughput must not collapse under AQM.
	if float64(cd.AggregateGoodput) < 0.7*float64(rate) {
		t.Fatalf("CoDel goodput %v", cd.AggregateGoodput)
	}
}

// TestUnknownAQMRejected covers config validation.
func TestUnknownAQMRejected(t *testing.T) {
	cfg := RunConfig{
		Rate: units.MbitPerSec, Buffer: units.MB, Duration: sim.Second,
		Flows: UniformFlows(1, "reno", sim.Millisecond), AQM: "red",
	}
	if _, err := Run(cfg); err == nil {
		t.Fatal("unknown AQM accepted")
	}
}
