package core

import (
	"ccatscale/internal/mathis"
	"ccatscale/internal/metrics"
	"ccatscale/internal/sim"
)

// MathisRow is one (setting, flow count) cell of the paper's §4
// analysis: the fitted constants of Table 1, the prediction errors of
// Figure 2, the loss-to-halving ratio of Figure 3, and the drop
// burstiness score that corroborates Finding 3.
type MathisRow struct {
	Setting   string
	FlowCount int

	// CLoss / CHalve are the least-squares Mathis constants using the
	// packet loss rate / the CWND halving rate for p (Table 1).
	CLoss  float64
	CHalve float64

	// MedianErrLoss / MedianErrHalve are the median relative prediction
	// errors at the respective fitted constants (Figure 2).
	MedianErrLoss  float64
	MedianErrHalve float64

	// LossToHalvingRatio is aggregate drops over aggregate halvings
	// (Figure 3).
	LossToHalvingRatio float64

	// DropBurstiness is the Goh–Barabási score of bottleneck drop times
	// (§4: ≈0.2 edge, ≈0.35 core).
	DropBurstiness float64

	// Utilization and Converged qualify the run.
	Utilization float64
	Converged   bool
}

// mathisSamples converts flow results into model samples under the
// chosen p interpretation.
func mathisSamples(res RunResult, useHalvingRate bool) []mathis.Sample {
	var out []mathis.Sample
	for _, f := range res.Flows {
		p := f.LossRate
		if useHalvingRate {
			p = f.HalvingRate
		}
		if p <= 0 || f.MeanRTT <= 0 {
			continue
		}
		out = append(out, mathis.Sample{
			ThroughputBps: f.Goodput.BytesPerSec(),
			P:             p,
			RTTSeconds:    f.MeanRTT.Seconds(),
			MSSBytes:      float64(res.Config.MSS),
		})
	}
	return out
}

// MathisAnalyze computes a MathisRow from a completed all-NewReno run.
func MathisAnalyze(setting string, flowCount int, res RunResult) MathisRow {
	row := MathisRow{
		Setting:        setting,
		FlowCount:      flowCount,
		DropBurstiness: res.DropBurstiness,
		Utilization:    res.Utilization,
		Converged:      res.Converged,
	}
	if fit, err := mathis.FitAndEvaluate(mathisSamples(res, false)); err == nil {
		row.CLoss = fit.C
		row.MedianErrLoss = fit.MedianErr
	}
	if fit, err := mathis.FitAndEvaluate(mathisSamples(res, true)); err == nil {
		row.CHalve = fit.C
		row.MedianErrHalve = fit.MedianErr
	}
	var drops, halvings float64
	for _, f := range res.Flows {
		drops += float64(f.Drops)
		halvings += float64(f.Halvings)
	}
	if halvings > 0 {
		row.LossToHalvingRatio = drops / halvings
	}
	return row
}

// MathisSweep runs the §4 experiment (all NewReno, 20 ms RTT) for every
// flow count of the setting and returns one row per count.
func MathisSweep(s Setting, seed uint64, parallelism int) ([]MathisRow, error) {
	cfgs := make([]RunConfig, len(s.FlowCounts))
	for i, n := range s.FlowCounts {
		cfg := s.Build(UniformFlows(n, "reno", DefaultRTT), WithSeed(Seed(seed+uint64(i))))
		// Cap drop retention for the burstiness analysis — unless the
		// setting's fidelity tier already degraded the cap below this.
		if cfg.MaxDropTimestamps == 0 {
			cfg.MaxDropTimestamps = DefaultDropTimestampCap
		}
		cfgs[i] = cfg
	}
	results, err := s.runMany(cfgs, parallelism)
	if err != nil {
		return nil, err
	}
	rows := make([]MathisRow, len(results))
	for i, res := range results {
		rows[i] = MathisAnalyze(s.Name, s.FlowCounts[i], res)
	}
	return rows, nil
}

// CrossSettingErrors evaluates Figure 2's headline comparison the way
// the paper frames it: how well does a constant fitted in one place
// predict throughput elsewhere? It fits C per interpretation on the
// EdgeScale rows' samples and reports median errors on each CoreScale
// run. (Within-setting errors are already in each MathisRow.)
type CrossSettingErrors struct {
	FlowCount      int
	ErrLossEdgeC   float64 // CoreScale error using the EdgeScale loss-rate C
	ErrHalveEdgeC  float64 // CoreScale error using the EdgeScale halving-rate C
	EdgeCLoss      float64
	EdgeCHalve     float64
	MedianErrLossC float64 // CoreScale error with its own refit (= MathisRow value)
}

// CrossSettingAnalysis fits constants on an EdgeScale run and evaluates
// them on each CoreScale run.
func CrossSettingAnalysis(edge RunResult, core []RunResult, coreCounts []int) []CrossSettingErrors {
	var cLossEdge, cHalveEdge float64
	if fit, err := mathis.FitAndEvaluate(mathisSamples(edge, false)); err == nil {
		cLossEdge = fit.C
	}
	if fit, err := mathis.FitAndEvaluate(mathisSamples(edge, true)); err == nil {
		cHalveEdge = fit.C
	}
	out := make([]CrossSettingErrors, len(core))
	for i, res := range core {
		e := CrossSettingErrors{
			FlowCount:  coreCounts[i],
			EdgeCLoss:  cLossEdge,
			EdgeCHalve: cHalveEdge,
		}
		e.ErrLossEdgeC = mathis.MedianError(cLossEdge, mathisSamples(res, false))
		e.ErrHalveEdgeC = mathis.MedianError(cHalveEdge, mathisSamples(res, true))
		if fit, err := mathis.FitAndEvaluate(mathisSamples(res, false)); err == nil {
			e.MedianErrLossC = fit.MedianErr
		}
		out[i] = e
	}
	return out
}

// MedianFlowRTT returns the median of per-flow mean RTTs in seconds
// (diagnostic for the Mathis analysis).
func MedianFlowRTT(res RunResult) float64 {
	var rtts []float64
	for _, f := range res.Flows {
		if f.MeanRTT > 0 {
			rtts = append(rtts, f.MeanRTT.Seconds())
		}
	}
	return metrics.Median(rtts)
}

// ScaleRTT converts the paper's 20 ms default to another value for
// sensitivity sweeps.
func ScaleRTT(base sim.Time, factor float64) sim.Time {
	return sim.Time(float64(base) * factor)
}
