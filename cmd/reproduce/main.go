// Command reproduce regenerates every table and figure of the paper in
// one invocation, writing one text file per result into an output
// directory (default ./results). It is the driver behind
// EXPERIMENTS.md.
//
//	reproduce [-out DIR] [-scale N] [-seed N] [-quick]
//
// -quick shrinks windows and flow counts for a minutes-long smoke pass;
// the default tier is EdgeScale plus CoreScale/N (1 Gbps at N=10).
// Paper-literal scale (10 Gbps, 5000 flows) remains available through
// `ccatscale <fig> -full`, budgeted in CPU-days.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"time"

	"ccatscale/internal/core"
	"ccatscale/internal/report"
	"ccatscale/internal/sim"
	"ccatscale/internal/units"
)

func main() {
	out := flag.String("out", "results", "output directory")
	scale := flag.Int("scale", 10, "CoreScale divisor")
	seed := flag.Uint64("seed", 7, "experiment seed")
	quick := flag.Bool("quick", false, "shrink windows and flow counts for a fast pass")
	parallel := flag.Int("parallel", runtime.GOMAXPROCS(0), "concurrent runs")
	flag.Parse()

	if err := os.MkdirAll(*out, 0o755); err != nil {
		fatal(err)
	}

	edge := core.EdgeScale()
	corePaper := core.CoreScaleScaled(*scale)
	if *quick {
		edge.Warmup, edge.Duration, edge.Stagger = 5*sim.Second, 20*sim.Second, 2*sim.Second
		corePaper = core.CoreScaleScaled(*scale * 5)
		corePaper.Warmup, corePaper.Duration, corePaper.Stagger = 5*sim.Second, 20*sim.Second, 2*sim.Second
	}

	type job struct {
		name string
		run  func() (*report.Table, error)
	}
	mathisTables := func(s core.Setting, label string) []job {
		return []job{
			{"table1_" + label, func() (*report.Table, error) { return mathisTable(s, *seed, *parallel, table1View) }},
			{"fig2_" + label, func() (*report.Table, error) { return mathisTable(s, *seed, *parallel, fig2View) }},
			{"fig3_" + label, func() (*report.Table, error) { return mathisTable(s, *seed, *parallel, fig3View) }},
			{"burstiness_" + label, func() (*report.Table, error) { return mathisTable(s, *seed, *parallel, burstView) }},
		}
	}
	var jobs []job
	jobs = append(jobs, mathisTables(edge, "edge")...)
	jobs = append(jobs, mathisTables(corePaper, "core")...)
	jobs = append(jobs,
		job{"finding4_reno_core", func() (*report.Table, error) {
			return intraTable(corePaper, "reno", *seed, *parallel)
		}},
		job{"finding4_cubic_core", func() (*report.Table, error) {
			return intraTable(corePaper, "cubic", *seed, *parallel)
		}},
		job{"fig4_edge", func() (*report.Table, error) { return intraTable(edge, "bbr", *seed, *parallel) }},
		job{"fig4_core", func() (*report.Table, error) { return intraTable(corePaper, "bbr", *seed, *parallel) }},
		job{"fig5_core", func() (*report.Table, error) {
			return interTable(corePaper, core.EqualSplit, "cubic", "reno", *seed, *parallel)
		}},
		job{"fig6_core", func() (*report.Table, error) {
			return interTable(corePaper, core.OneVersusMany, "bbr", "reno", *seed, *parallel)
		}},
		job{"fig7_core", func() (*report.Table, error) {
			return interTable(corePaper, core.OneVersusMany, "bbr", "cubic", *seed, *parallel)
		}},
		job{"fig8_reno_core", func() (*report.Table, error) {
			return interTable(corePaper, core.EqualSplit, "bbr", "reno", *seed, *parallel)
		}},
		job{"fig8_cubic_core", func() (*report.Table, error) {
			return interTable(corePaper, core.EqualSplit, "bbr", "cubic", *seed, *parallel)
		}},
		job{"ext_rttmix_reno_core", func() (*report.Table, error) {
			return rttmixTable(corePaper, "reno", *seed, *parallel)
		}},
		job{"ext_churn_core", func() (*report.Table, error) {
			return churnTable(corePaper, *seed)
		}},
	)

	for _, j := range jobs {
		start := time.Now()
		tab, err := j.run()
		if err != nil {
			fatal(fmt.Errorf("%s: %w", j.name, err))
		}
		path := filepath.Join(*out, j.name+".txt")
		f, err := os.Create(path)
		if err != nil {
			fatal(err)
		}
		if err := tab.WriteText(f); err != nil {
			fatal(err)
		}
		fmt.Fprintf(f, "\n[seed %d, wall %s]\n", *seed, time.Since(start).Round(time.Millisecond))
		f.Close()
		fmt.Printf("%-24s %8s  → %s\n", j.name, time.Since(start).Round(time.Second), path)
	}
}

type mathisView int

const (
	table1View mathisView = iota
	fig2View
	fig3View
	burstView
)

func mathisTable(s core.Setting, seed uint64, parallel int, view mathisView) (*report.Table, error) {
	rows, err := core.MathisSweep(s, seed, parallel)
	if err != nil {
		return nil, err
	}
	var tab *report.Table
	switch view {
	case table1View:
		tab = report.NewTable("Table 1: Mathis constant C", "setting", "flows", "C(loss)", "C(halving)")
		for _, r := range rows {
			tab.AddRow(r.Setting, r.FlowCount, r.CLoss, r.CHalve)
		}
	case fig2View:
		tab = report.NewTable("Figure 2: median prediction error (%)", "setting", "flows", "err(loss)%", "err(halving)%")
		for _, r := range rows {
			tab.AddRow(r.Setting, r.FlowCount, r.MedianErrLoss*100, r.MedianErrHalve*100)
		}
	case fig3View:
		tab = report.NewTable("Figure 3: loss-to-halving ratio", "setting", "flows", "ratio")
		for _, r := range rows {
			tab.AddRow(r.Setting, r.FlowCount, r.LossToHalvingRatio)
		}
	case burstView:
		tab = report.NewTable("Drop burstiness (Goh–Barabási)", "setting", "flows", "burstiness")
		for _, r := range rows {
			tab.AddRow(r.Setting, r.FlowCount, r.DropBurstiness)
		}
	}
	return tab, nil
}

func intraTable(s core.Setting, cca string, seed uint64, parallel int) (*report.Table, error) {
	rows, err := core.IntraCCASweep(s, cca, core.RTTs, seed, parallel)
	if err != nil {
		return nil, err
	}
	tab := report.NewTable("Intra-CCA fairness: "+cca, "setting", "rtt", "flows", "JFI")
	for _, r := range rows {
		tab.AddRow(r.Setting, r.RTT.String(), r.FlowCount, r.JFI)
	}
	return tab, nil
}

func interTable(s core.Setting, mode core.InterCCAMode, a, b string, seed uint64, parallel int) (*report.Table, error) {
	rows, err := core.InterCCASweep(s, mode, a, b, core.RTTs, seed, parallel)
	if err != nil {
		return nil, err
	}
	tab := report.NewTable(fmt.Sprintf("Inter-CCA: %s vs %s", a, b), "setting", "rtt", "flows", a+" share %")
	for _, r := range rows {
		tab.AddRow(r.Setting, r.RTT.String(), r.FlowCount, r.Share[a]*100)
	}
	return tab, nil
}

func rttmixTable(s core.Setting, cca string, seed uint64, parallel int) (*report.Table, error) {
	rows, err := core.RTTMixSweep(s, cca, 20*sim.Millisecond, 100*sim.Millisecond, seed, parallel)
	if err != nil {
		return nil, err
	}
	tab := report.NewTable("Extension: mixed-RTT fairness "+cca, "setting", "flows", "short share %", "JFI(short)", "JFI(long)")
	for _, r := range rows {
		tab.AddRow(r.Setting, r.FlowCount, r.ShortShare*100, r.ShortJFI, r.LongJFI)
	}
	return tab, nil
}

func churnTable(s core.Setting, seed uint64) (*report.Table, error) {
	tab := report.NewTable("Extension: Poisson flow churn (500 KB transfers)",
		"load", "arrivals", "completed", "p50FCT_s", "p95FCT_s", "p99FCT_s")
	size := 500 * units.KB
	for _, load := range []float64{0.3, 0.6, 0.9} {
		res, err := core.RunChurn(core.ChurnConfig{
			Rate:          s.Rate,
			Buffer:        s.Buffer,
			CCA:           "reno",
			RTT:           core.DefaultRTT,
			TransferBytes: size,
			ArrivalRate:   load * float64(s.Rate) / (float64(size) * 8),
			Duration:      s.Duration,
			Seed:          seed,
		})
		if err != nil {
			return nil, err
		}
		tab.AddRow(fmt.Sprintf("%.0f%%", load*100), res.Arrivals, res.Completed,
			res.P50FCT, res.P95FCT, res.P99FCT)
	}
	return tab, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "reproduce:", err)
	os.Exit(1)
}
