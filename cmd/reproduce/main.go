// Command reproduce regenerates every table and figure of the paper in
// one invocation, writing one text file per result into an output
// directory (default ./results). It is the driver behind
// EXPERIMENTS.md.
//
//	reproduce [-out DIR] [-scale N] [-seed N] [-quick] [-resume] [-only RE] [-audit strict]
//	          [-scenario file.json] [-mem-budget 512M] [-event-budget N] [-retries N]
//	          [-progress] [-telemetry out.jsonl] [-pprof localhost:6060]
//
// -quick shrinks windows and flow counts for a minutes-long smoke pass;
// the default tier is EdgeScale plus CoreScale/N (1 Gbps at N=10).
// Paper-literal scale (10 Gbps, 5000 flows) remains available through
// `ccatscale <fig> -full`, budgeted in CPU-days.
//
// Three observation surfaces are opt-in and never perturb results:
// -progress prints a live status line (jobs done/running, estimator
// ETA, fidelity tier) to stderr; -telemetry streams every run's
// lifecycle events as JSONL (summarize with `tracestat -telemetry`,
// validate with `fprint -check`); -pprof serves net/http/pprof plus a
// /metricsz JSON snapshot of the telemetry registry. Each table is
// also written as a versioned .json document beside its .txt form.
//
// The sweep is fail-safe: a job that errors (or panics) is recorded in
// the output directory's manifest.json — with a replayable
// <job>.failed.json when the failure is a core.RunError — and the
// remaining jobs still run. A later invocation with -resume re-executes
// only the jobs that have not completed.
//
// The sweep is also crash-safe. Every job's outcome is committed to an
// fsync-per-record write-ahead journal (journal-<owner>.jsonl) and its
// result table to a content-addressed store (store/<job>-<seed>-<hash>.rec,
// CRC-framed, written tmp→fsync→rename→dirsync) before the manifest — a
// derived view — is updated. A sweep killed at any instant, kill -9
// included, resumes to its exact pre-crash frontier: committed jobs are
// served from the store without recomputation, the one in flight
// re-runs, and duplicate commits after a worker race are no-ops because
// the simulations are deterministic and the store is idempotent. Jobs
// are claimed through heartbeat leases (-lease-ttl), so several
// `reproduce -resume` processes pointed at one -out directory shard the
// sweep between them, and -workers runs that many claim loops inside
// one process. A worker that loses its lease to takeover has its job's
// context cancelled mid-run.
//
// -mem-budget and -event-budget bound every run's footprint: a job the
// estimator prices over budget is recorded as "rejected" (not failed —
// the sweep still exits zero) and a later -resume retries it one
// fidelity tier lower. -retries lets admission degrade a config in the
// same invocation instead. Per-job peak resource usage is recorded in
// manifest.json, and reduced-fidelity output is marked both there and
// in the table itself.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"regexp"
	"runtime"
	"runtime/debug"
	"runtime/pprof"
	"strconv"
	"strings"
	"sync"
	"time"

	"ccatscale/internal/budget"
	"ccatscale/internal/core"
	"ccatscale/internal/report"
	"ccatscale/internal/sim"
	"ccatscale/internal/store"
	"ccatscale/internal/telemetry"
	"ccatscale/internal/units"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// job is one table of the sweep. Each job carries its own Setting copy
// so per-job overrides (the -panicjob fault drill) cannot leak into
// other jobs.
type job struct {
	name    string
	setting core.Setting
	run     func(core.Setting) (*report.Table, error)
}

func run(argv []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("reproduce", flag.ContinueOnError)
	fs.SetOutput(stderr)
	out := fs.String("out", "results", "output directory")
	scale := fs.Int("scale", 10, "CoreScale divisor")
	seed := fs.Uint64("seed", 7, "experiment seed")
	quick := fs.Bool("quick", false, "shrink windows and flow counts for a fast pass")
	parallel := fs.Int("parallel", runtime.GOMAXPROCS(0), "concurrent runs")
	resume := fs.Bool("resume", false, "skip jobs already completed per the output directory's manifest")
	only := fs.String("only", "", "regexp restricting which jobs run")
	scenarioPath := fs.String("scenario", "", "run one scenario document (versioned JSON; see DESIGN.md) instead of the paper sweep")
	panicJob := fs.String("panicjob", "", "inject a mid-run panic into the named job (supervisor drill)")
	wallLimit := fs.Duration("runwall", 0, "wall-clock limit per simulation run (0 = unlimited)")
	auditPol := fs.String("audit", "", "invariant auditing for every run: off (default), warn, or strict")
	memBudget := fs.String("mem-budget", "", "per-run heap budget, e.g. 512M or 2G (empty = unlimited)")
	eventBudget := fs.Int64("event-budget", 0, "per-run event-object budget (0 = unlimited)")
	retries := fs.Int("retries", 0, "reduced-fidelity retries for over-budget runs")
	force := fs.Bool("force", false, "resume even when the manifest's job set no longer matches")
	cpuProfile := fs.String("cpuprofile", "", "write a CPU profile of the sweep to this file (go tool pprof)")
	memProfile := fs.String("memprofile", "", "write a heap profile at sweep end to this file (go tool pprof)")
	progress := fs.Bool("progress", false, "print a live sweep status line to stderr (jobs done/running/rejected, estimator ETA, fidelity tier)")
	telemetryOut := fs.String("telemetry", "", "write a telemetry JSONL stream of every run to this file (analyze with tracestat -telemetry)")
	pprofAddr := fs.String("pprof", "", "serve net/http/pprof and a /metricsz telemetry snapshot on this address (e.g. localhost:6060)")
	workers := fs.Int("workers", 1, "concurrent lease-claiming worker loops in this process (start more `reproduce -resume` processes on the same -out to shard across processes)")
	leaseTTL := fs.Duration("lease-ttl", 30*time.Second, "job lease staleness deadline: a claim whose heartbeat is older may be taken over by another worker")
	leaseHeartbeat := fs.Duration("lease-heartbeat", 0, "lease refresh interval (0 = ttl/6); must be under a third of -lease-ttl")
	if err := fs.Parse(argv); err != nil {
		return 2
	}
	if *workers < 1 {
		fmt.Fprintln(stderr, "reproduce: -workers must be at least 1")
		return 2
	}
	if *leaseTTL <= 0 {
		fmt.Fprintln(stderr, "reproduce: -lease-ttl must be positive")
		return 2
	}
	if *leaseHeartbeat == 0 {
		*leaseHeartbeat = store.DefaultHeartbeat(*leaseTTL)
	}
	if err := store.ValidateHeartbeat(*leaseHeartbeat, *leaseTTL); err != nil {
		fmt.Fprintln(stderr, "reproduce:", err)
		return 2
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintln(stderr, "reproduce:", err)
			return 1
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			fmt.Fprintln(stderr, "reproduce:", err)
			return 1
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintln(stderr, "reproduce:", err)
				return
			}
			defer f.Close()
			runtime.GC() // settle the heap so the profile shows retained allocations
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(stderr, "reproduce:", err)
			}
		}()
	}

	var onlyRE *regexp.Regexp
	if *only != "" {
		re, err := regexp.Compile(*only)
		if err != nil {
			fmt.Fprintf(stderr, "reproduce: bad -only pattern: %v\n", err)
			return 2
		}
		onlyRE = re
	}

	// All durable sweep state — manifest, journal, store, leases — goes
	// through one FS seam so the chaos build can crash the process at
	// any syscall boundary of the protocol.
	fsys := sweepFS()
	if err := fsys.MkdirAll(*out, 0o755); err != nil {
		fmt.Fprintln(stderr, "reproduce:", err)
		return 1
	}

	man, err := loadManifestFS(fsys, *out)
	if err != nil {
		fmt.Fprintln(stderr, "reproduce:", err)
		return 1
	}

	var runBudget *budget.Budget
	if *memBudget != "" || *eventBudget > 0 {
		heapBytes := int64(0)
		if *memBudget != "" {
			heapBytes, err = parseByteSize(*memBudget)
			if err != nil {
				fmt.Fprintf(stderr, "reproduce: bad -mem-budget: %v\n", err)
				return 2
			}
		}
		runBudget = &budget.Budget{HeapBytes: heapBytes, Events: *eventBudget}
	}

	edge := core.EdgeScale()
	corePaper := core.CoreScaleScaled(*scale)
	if *quick {
		edge.Warmup, edge.Duration, edge.Stagger = 5*sim.Second, 20*sim.Second, 2*sim.Second
		corePaper = core.CoreScaleScaled(*scale * 5)
		corePaper.Warmup, corePaper.Duration, corePaper.Stagger = 5*sim.Second, 20*sim.Second, 2*sim.Second
	}
	edge.WallLimit = *wallLimit
	corePaper.WallLimit = *wallLimit
	edge.Audit = *auditPol
	corePaper.Audit = *auditPol
	edge.Budget = runBudget
	corePaper.Budget = runBudget
	edge.Retries = *retries
	corePaper.Retries = *retries

	mathisTables := func(s core.Setting, label string) []job {
		mk := func(view mathisView) func(core.Setting) (*report.Table, error) {
			return func(s core.Setting) (*report.Table, error) {
				return mathisTable(s, *seed, *parallel, view)
			}
		}
		return []job{
			{"table1_" + label, s, mk(table1View)},
			{"fig2_" + label, s, mk(fig2View)},
			{"fig3_" + label, s, mk(fig3View)},
			{"burstiness_" + label, s, mk(burstView)},
		}
	}
	var jobs []job
	jobs = append(jobs, mathisTables(edge, "edge")...)
	jobs = append(jobs, mathisTables(corePaper, "core")...)
	jobs = append(jobs,
		job{"finding4_reno_core", corePaper, func(s core.Setting) (*report.Table, error) {
			return intraTable(s, "reno", *seed, *parallel)
		}},
		job{"finding4_cubic_core", corePaper, func(s core.Setting) (*report.Table, error) {
			return intraTable(s, "cubic", *seed, *parallel)
		}},
		job{"fig4_edge", edge, func(s core.Setting) (*report.Table, error) {
			return intraTable(s, "bbr", *seed, *parallel)
		}},
		job{"fig4_core", corePaper, func(s core.Setting) (*report.Table, error) {
			return intraTable(s, "bbr", *seed, *parallel)
		}},
		job{"fig5_core", corePaper, func(s core.Setting) (*report.Table, error) {
			return interTable(s, core.EqualSplit, "cubic", "reno", *seed, *parallel)
		}},
		job{"fig6_core", corePaper, func(s core.Setting) (*report.Table, error) {
			return interTable(s, core.OneVersusMany, "bbr", "reno", *seed, *parallel)
		}},
		job{"fig7_core", corePaper, func(s core.Setting) (*report.Table, error) {
			return interTable(s, core.OneVersusMany, "bbr", "cubic", *seed, *parallel)
		}},
		job{"fig8_reno_core", corePaper, func(s core.Setting) (*report.Table, error) {
			return interTable(s, core.EqualSplit, "bbr", "reno", *seed, *parallel)
		}},
		job{"fig8_cubic_core", corePaper, func(s core.Setting) (*report.Table, error) {
			return interTable(s, core.EqualSplit, "bbr", "cubic", *seed, *parallel)
		}},
		job{"ext_rttmix_reno_core", corePaper, func(s core.Setting) (*report.Table, error) {
			return rttmixTable(s, "reno", *seed, *parallel)
		}},
		job{"ext_burstloss_core", corePaper, func(s core.Setting) (*report.Table, error) {
			return burstTable(s, *seed, *parallel)
		}},
		job{"ext_outage_core", corePaper, func(s core.Setting) (*report.Table, error) {
			return outageTable(s, *seed, *parallel)
		}},
		job{"ext_churn_core", corePaper, func(s core.Setting) (*report.Table, error) {
			return churnTable(s, *seed)
		}},
	)

	if *scenarioPath != "" {
		sj, scnSeed, err := loadScenarioJob(*scenarioPath)
		if err != nil {
			fmt.Fprintln(stderr, "reproduce:", err)
			return 2
		}
		// Governance flags overlay the document like any other job; the
		// document's own audit policy stands unless -audit is given.
		sj.setting.WallLimit = *wallLimit
		if *auditPol != "" {
			sj.setting.Audit = *auditPol
		}
		sj.setting.Budget = runBudget
		sj.setting.Retries = *retries
		jobs = []job{sj}
		// The document's seed is the run's seed: keys, the manifest, and
		// table footers all record what actually ran.
		*seed = scnSeed
	}

	hash := configHash(*seed, *scale, *quick, jobs)
	keys := make(map[string]string, len(jobs))
	for _, j := range jobs {
		keys[j.name] = jobKey(j.name, *seed, j.setting)
	}

	// Durable sweep state. The journal is the record: replaying every
	// segment rebuilds the per-job frontier (derived) exactly as it was
	// before any crash, and the manifest becomes a derived view of it.
	// Outcome records are admitted only when their content key matches
	// this binary's job definitions, so leftovers from an older
	// experiment in the same directory cannot masquerade as progress.
	owner := fmt.Sprintf("%s-%d", hostname(), os.Getpid())
	st, err := store.OpenFS(filepath.Join(*out, "store"), fsys)
	if err != nil {
		fmt.Fprintln(stderr, "reproduce:", err)
		return 1
	}
	derived := map[string]*jobRecord{}
	var lastBegin *beginDetail
	jnl, _, err := store.OpenJournalSet(fsys, *out, owner, func(r store.JournalRecord) error {
		switch r.Op {
		case store.OpBegin:
			var bd beginDetail
			if json.Unmarshal(r.Detail, &bd) == nil {
				lastBegin = &bd
			}
		case store.OpDone, store.OpCached, store.OpFailed, store.OpRejected:
			if keys[r.Job] == "" || r.Key != keys[r.Job] {
				return nil
			}
			var rec jobRecord
			if json.Unmarshal(r.Detail, &rec) != nil || rec.Status == "" {
				return nil
			}
			if better(derived[r.Job], &rec) {
				derived[r.Job] = &rec
			}
		}
		return nil
	})
	if err != nil {
		fmt.Fprintln(stderr, "reproduce:", err)
		return 1
	}
	defer jnl.Close()
	leases, err := store.NewLeasesFS(fsys, *out, owner, *leaseTTL)
	if err != nil {
		fmt.Fprintln(stderr, "reproduce:", err)
		return 1
	}

	if *resume && man == nil && lastBegin != nil {
		// The manifest was lost or quarantined as corrupt: rebuild the
		// view from the journal's begin record and replayed outcomes.
		man = newManifest(lastBegin.Seed, lastBegin.Scale, lastBegin.Quick, lastBegin.ConfigHash)
	}
	if *resume && man != nil {
		if err := man.compatible(*seed, *scale, *quick, hash); err != nil {
			if !*force {
				fmt.Fprintln(stderr, "reproduce:", err)
				return 1
			}
			fmt.Fprintf(stderr, "reproduce: -force: resuming anyway (%v)\n", err)
			man.Version = manifestVersion
			man.ConfigHash = hash
		}
	}
	if !*resume || man == nil {
		man = newManifest(*seed, *scale, *quick, hash)
	}
	if *resume {
		// The journal outlives any manifest write: overlay its frontier.
		for name, rec := range derived {
			man.Jobs[name] = rec
		}
	}

	bd, _ := json.Marshal(beginDetail{Seed: *seed, Scale: *scale, Quick: *quick, ConfigHash: hash})
	if err := jnl.Append(store.JournalRecord{Op: store.OpBegin, Owner: owner, Detail: bd}); err != nil {
		fmt.Fprintln(stderr, "reproduce:", err)
		return 1
	}

	// Live telemetry surfaces: a JSONL stream file, a metrics registry
	// behind -pprof's /metricsz, and the -progress status line. All are
	// observation-only — runs stay bit-identical with them attached.
	var stream *telemetry.Stream
	var streamFile *os.File
	var regColl telemetry.Collector
	reg := telemetry.NewRegistry()
	if *telemetryOut != "" {
		f, err := os.Create(*telemetryOut)
		if err != nil {
			fmt.Fprintln(stderr, "reproduce:", err)
			return 1
		}
		stream, err = telemetry.NewStream(f, "reproduce seed="+strconv.FormatUint(*seed, 10))
		if err != nil {
			f.Close()
			fmt.Fprintln(stderr, "reproduce:", err)
			return 1
		}
		streamFile = f
	}
	if *pprofAddr != "" {
		regColl = reg.Instrument()
		addr, stopDebug, err := startDebugServer(*pprofAddr, reg)
		if err != nil {
			fmt.Fprintln(stderr, "reproduce:", err)
			return 1
		}
		defer stopDebug()
		fmt.Fprintf(stderr, "reproduce: debug server on http://%s (/debug/pprof/, /metricsz)\n", addr)
	}

	toRun := make([]job, 0, len(jobs))
	for _, j := range jobs {
		if onlyRE != nil && !onlyRE.MatchString(j.name) {
			continue
		}
		toRun = append(toRun, j)
	}
	var pt *progressTracker
	if *progress {
		pt = newProgressTracker(stderr, toRun)
		defer pt.finish()
	}

	// The claim loop. mu guards everything the workers share: the
	// manifest, the journal (single writer per segment), the counters,
	// and the output writers.
	var (
		mu       sync.Mutex
		injected bool
		failed   []string
		rejected []string
		held     []string
		ran      int
		fatalErr error
	)
	commit := func(j job, key string, op string, rec *jobRecord) {
		detail, _ := json.Marshal(rec)
		if err := jnl.Append(store.JournalRecord{Op: op, Job: j.name, Key: key, Owner: owner, Detail: detail}); err != nil && fatalErr == nil {
			fatalErr = err
		}
		man.Jobs[j.name] = rec
		if err := man.saveFS(fsys, *out); err != nil && fatalErr == nil {
			fatalErr = err
		}
	}
	doJob := func(j job) {
		mu.Lock()
		if fatalErr != nil {
			mu.Unlock()
			return
		}
		if *resume && man.done(*out, j.name) {
			fmt.Fprintf(stdout, "%-24s %8s  (already done, skipped)\n", j.name, "resume")
			if pt != nil {
				pt.jobEnded(j.name, "done")
			}
			mu.Unlock()
			return
		}
		if *resume {
			// A rejected job resumes one fidelity tier lower: less
			// retained state, a shorter window from tier 2 — the
			// degraded estimate may now fit the same budget.
			if prev, ok := man.Jobs[j.name]; ok && prev.Status == "rejected" {
				j.setting.Fidelity = prev.Fidelity + 1
				fmt.Fprintf(stdout, "%-24s retrying at reduced fidelity tier %d\n",
					j.name, j.setting.Fidelity)
			}
		}
		if *panicJob == j.name {
			// Fire inside the warm-up of every run of this job: early
			// enough to fail fast, late enough that the simulation is
			// genuinely under way when the supervisor catches it.
			j.setting.FaultPanicAt = sim.Second
			injected = true
		}
		mu.Unlock()

		key := keys[j.name]
		// Serve a committed result from the content-addressed store: the
		// simulations are deterministic, so identical bytes come back
		// without recomputation — this is what makes a crashed sweep's
		// resume converge on the uninterrupted sweep's exact outputs.
		if *resume && *panicJob != j.name && st.Has(key) {
			if rec, err := serveCached(fsys, st, *out, j.name, key, *seed); err == nil {
				mu.Lock()
				commit(j, key, store.OpCached, rec)
				fmt.Fprintf(stdout, "%-24s %8s  → %s  (cached)\n",
					j.name, "store", filepath.Join(*out, rec.File))
				if pt != nil {
					pt.jobEnded(j.name, "done")
				}
				mu.Unlock()
				return
			}
			// A record that fails to serve (quarantined as corrupt mid-read,
			// view write failed) falls through to honest recomputation.
		}

		lease, err := leases.Acquire(j.name)
		if errors.Is(err, store.ErrLeaseHeld) {
			mu.Lock()
			held = append(held, j.name)
			fmt.Fprintf(stdout, "%-24s %8s  (%v)\n", j.name, "lease", err)
			if pt != nil {
				pt.jobEnded(j.name, "held")
			}
			mu.Unlock()
			return
		}
		mu.Lock()
		if err == nil {
			err = jnl.Append(store.JournalRecord{Op: store.OpIntent, Job: j.name, Key: key, Owner: owner})
		}
		if err != nil {
			if fatalErr == nil {
				fatalErr = err
			}
			mu.Unlock()
			return
		}
		if stream != nil || regColl != nil {
			var sc telemetry.Collector
			if stream != nil {
				sc = stream.Collector(j.name)
			}
			j.setting.Telemetry = telemetry.Multi(sc, regColl)
		}
		if pt != nil {
			pt.jobStarted(j.name, j.setting.Fidelity)
		}
		ran++
		mu.Unlock()

		// Heartbeat until the job ends; lose the lease (this process
		// stalled past the TTL and another worker took the job) and the
		// job's context is cancelled so its remaining runs stop.
		jobCtx, cancelJob := context.WithCancel(context.Background())
		hbStop := make(chan struct{})
		var hbDone sync.WaitGroup
		hbDone.Add(1)
		go func() {
			defer hbDone.Done()
			tick := time.NewTicker(*leaseHeartbeat)
			defer tick.Stop()
			for {
				select {
				case <-hbStop:
					return
				case <-tick.C:
					if lease.Heartbeat() != nil || !lease.Confirm() {
						cancelJob()
						return
					}
				}
			}
		}()
		j.setting.Ctx = jobCtx

		start := time.Now()
		// Collect per-run resource usage for the job's manifest record.
		// The sink is per-job (not the process global), so concurrent
		// workers attribute usage to the job that incurred it.
		var usageMu sync.Mutex
		var jobUsage budget.Usage
		j.setting.UsageSink = func(u budget.Usage) {
			usageMu.Lock()
			jobUsage.Merge(u)
			usageMu.Unlock()
		}
		tab, err := runJob(j)
		close(hbStop)
		hbDone.Wait()
		cancelJob()

		fileName := j.name + ".txt"
		jsonName := j.name + ".json"
		if err == nil {
			if jobUsage.Degraded() {
				tab.AddNote("reduced fidelity: tier %d, series decimation %d× (budget governance)",
					jobUsage.MaxFidelity, jobUsage.MaxDecimation)
			}
			// Commit order is the durability contract: the canonical JSON
			// result enters the content-addressed store first (idempotent —
			// a duplicate worker's commit is a no-op), then the derived
			// views (.json verbatim, .txt rendered with its volatile wall
			// footer), then journal outcome and manifest.
			var buf bytes.Buffer
			err = tab.WriteJSON(&buf)
			if err == nil {
				err = st.Put(key, buf.Bytes())
			}
			if err == nil {
				err = store.WriteFileAtomicFS(fsys, filepath.Join(*out, jsonName), buf.Bytes())
			}
			if err == nil {
				err = writeTable(filepath.Join(*out, fileName), tab, *seed, start, jobUsage.Degraded())
			}
		}
		wall := time.Since(start)
		rec := &jobRecord{Wall: wall.Round(time.Millisecond).String()}
		if jobUsage.Runs > 0 {
			u := jobUsage
			rec.Usage = &u
			rec.Degraded = u.Degraded()
			rec.Fidelity = u.MaxFidelity
		}
		op := store.OpDone
		var be *budget.BudgetError
		mu.Lock()
		switch {
		case err != nil && errors.As(err, &be) && be.Stage == budget.StageAdmission:
			// Admission control refused the job's predicted footprint:
			// nothing ran, siblings continue, and the sweep still exits
			// zero — a rejection is governance working, not a failure.
			op = store.OpRejected
			rec.Status = "rejected"
			rec.Error = err.Error()
			rec.Fidelity = j.setting.Fidelity
			rejected = append(rejected, j.name)
			fmt.Fprintf(stdout, "%-24s %8s  REJECTED (over budget): %v\n",
				j.name, wall.Round(time.Second), be)
		case err != nil:
			op = store.OpFailed
			rec.Status = "failed"
			rec.Error = err.Error()
			var re *core.RunError
			if errors.As(err, &re) {
				ff := j.name + ".failed.json"
				if werr := writeFailure(filepath.Join(*out, ff), re); werr != nil {
					fmt.Fprintf(stderr, "reproduce: %s: writing failure record: %v\n", j.name, werr)
				} else {
					rec.FailureFile = ff
				}
			}
			failed = append(failed, j.name)
			fmt.Fprintf(stderr, "reproduce: %-24s FAILED after %s: %v\n",
				j.name, wall.Round(time.Second), err)
		default:
			rec.Status = "done"
			rec.File = fileName
			rec.JSON = jsonName
			marker := ""
			if rec.Degraded {
				marker = "  (degraded)"
			}
			fmt.Fprintf(stdout, "%-24s %8s  → %s%s\n",
				j.name, wall.Round(time.Second), filepath.Join(*out, fileName), marker)
		}
		if pt != nil {
			pt.jobEnded(j.name, rec.Status)
		}
		commit(j, key, op, rec)
		mu.Unlock()
		lease.Release()
	}

	jobCh := make(chan job)
	var wg sync.WaitGroup
	for w := 0; w < *workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobCh {
				doJob(j)
			}
		}()
	}
	for _, j := range toRun {
		jobCh <- j
	}
	close(jobCh)
	wg.Wait()
	if fatalErr != nil {
		fmt.Fprintln(stderr, "reproduce:", fatalErr)
		return 1
	}

	if stream != nil {
		err := stream.Flush()
		if cerr := streamFile.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			fmt.Fprintf(stderr, "reproduce: telemetry stream: %v\n", err)
			return 1
		}
		fmt.Fprintf(stderr, "reproduce: telemetry written to %s\n", *telemetryOut)
	}

	if *panicJob != "" && !injected {
		fmt.Fprintf(stderr, "reproduce: -panicjob %q matched no job that ran\n", *panicJob)
		return 2
	}
	if len(held) > 0 {
		fmt.Fprintf(stdout, "reproduce: %d jobs claimed by other workers: %s\n",
			len(held), strings.Join(held, ", "))
	}
	if len(rejected) > 0 {
		fmt.Fprintf(stdout, "reproduce: %d of %d jobs rejected over budget: %s\n",
			len(rejected), ran, strings.Join(rejected, ", "))
		fmt.Fprintf(stdout, "reproduce: rerun with -out %s -resume to retry them at reduced fidelity\n", *out)
	}
	if len(failed) > 0 {
		fmt.Fprintf(stderr, "reproduce: %d of %d jobs failed: %s\n",
			len(failed), ran, strings.Join(failed, ", "))
		fmt.Fprintf(stderr, "reproduce: retry just those with -out %s -resume\n", *out)
		return 1
	}
	return 0
}

// parseByteSize parses "512M"-style sizes (K/M/G suffixes, powers of
// 1024; a bare number is bytes).
func parseByteSize(s string) (int64, error) {
	mult := int64(1)
	num := s
	if n := len(s); n > 0 {
		switch s[n-1] {
		case 'k', 'K':
			mult, num = 1<<10, s[:n-1]
		case 'm', 'M':
			mult, num = 1<<20, s[:n-1]
		case 'g', 'G':
			mult, num = 1<<30, s[:n-1]
		}
	}
	v, err := strconv.ParseInt(strings.TrimSpace(num), 10, 64)
	if err != nil || v <= 0 {
		return 0, fmt.Errorf("%q is not a positive size (use e.g. 512M, 2G)", s)
	}
	return v * mult, nil
}

// runJob executes one job with a panic net of its own. core.Run already
// converts simulation panics into *core.RunError; this backstop covers
// the table-building code outside the supervisor, so no single job can
// take down the sweep.
func runJob(j job) (tab *report.Table, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("panic outside supervisor: %v\n%s", r, debug.Stack())
		}
	}()
	tab, err = j.run(j.setting)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", j.name, err)
	}
	return tab, nil
}

// writeTable writes one result file, checking every step — a partially
// written table is removed rather than left for -resume to trust.
func writeTable(path string, tab *report.Table, seed uint64, start time.Time, degraded bool) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	err = tab.WriteText(f)
	if err == nil {
		marker := ""
		if degraded {
			marker = ", degraded"
		}
		_, err = fmt.Fprintf(f, "\n[seed %d, wall %s%s]\n", seed,
			time.Since(start).Round(time.Millisecond), marker)
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(path)
		return fmt.Errorf("writing %s: %w", path, err)
	}
	return nil
}

// serveCached materializes a job's output files from its committed
// store record instead of recomputing: the stored payload is the
// canonical JSON table, written back verbatim as the .json view and
// re-rendered as the .txt view. Any error (the record turned out
// corrupt and was quarantined, a view failed to write) sends the caller
// back to honest recomputation.
func serveCached(fsys store.FS, st *store.Store, out, name, key string, seed uint64) (*jobRecord, error) {
	start := time.Now()
	payload, err := st.Get(key)
	if err != nil {
		return nil, err
	}
	tab, err := report.ReadJSON(bytes.NewReader(payload))
	if err != nil {
		return nil, err
	}
	degraded := false
	for _, n := range tab.Notes {
		if strings.Contains(n, "reduced fidelity") {
			degraded = true
		}
	}
	jsonName := name + ".json"
	fileName := name + ".txt"
	if err := store.WriteFileAtomicFS(fsys, filepath.Join(out, jsonName), payload); err != nil {
		return nil, err
	}
	if err := writeTable(filepath.Join(out, fileName), tab, seed, start, degraded); err != nil {
		return nil, err
	}
	return &jobRecord{
		Status: "done", File: fileName, JSON: jsonName,
		Wall:   time.Since(start).Round(time.Millisecond).String(),
		Cached: true, Degraded: degraded,
	}, nil
}

// better reports whether cand should replace cur in the journal-derived
// job frontier. Outcomes rank done > rejected > failed — a job that
// eventually committed stays committed no matter what earlier attempts
// (possibly in other workers' segments, replayed in arbitrary relative
// order) recorded — and within a rank the later record wins.
func better(cur, cand *jobRecord) bool {
	if cur == nil {
		return true
	}
	rank := func(s string) int {
		switch s {
		case "done":
			return 3
		case "rejected":
			return 2
		default:
			return 1
		}
	}
	return rank(cand.Status) >= rank(cur.Status)
}

// hostname names this machine for lease ownership and journal segment
// names, degrading to a constant when the kernel will not say.
func hostname() string {
	h, err := os.Hostname()
	if err != nil || h == "" {
		return "host"
	}
	return h
}

// writeFailure serializes a RunError next to the results so the failed
// run can be replayed with `ccatscale replay -in <file>`.
func writeFailure(path string, re *core.RunError) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	err = re.WriteJSON(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(path)
	}
	return err
}

type mathisView int

const (
	table1View mathisView = iota
	fig2View
	fig3View
	burstView
)

func mathisTable(s core.Setting, seed uint64, parallel int, view mathisView) (*report.Table, error) {
	rows, err := core.MathisSweep(s, seed, parallel)
	if err != nil {
		return nil, err
	}
	var tab *report.Table
	switch view {
	case table1View:
		tab = report.NewTable("Table 1: Mathis constant C", "setting", "flows", "C(loss)", "C(halving)")
		for _, r := range rows {
			tab.AddRow(r.Setting, r.FlowCount, r.CLoss, r.CHalve)
		}
	case fig2View:
		tab = report.NewTable("Figure 2: median prediction error (%)", "setting", "flows", "err(loss)%", "err(halving)%")
		for _, r := range rows {
			tab.AddRow(r.Setting, r.FlowCount, r.MedianErrLoss*100, r.MedianErrHalve*100)
		}
	case fig3View:
		tab = report.NewTable("Figure 3: loss-to-halving ratio", "setting", "flows", "ratio")
		for _, r := range rows {
			tab.AddRow(r.Setting, r.FlowCount, r.LossToHalvingRatio)
		}
	case burstView:
		tab = report.NewTable("Drop burstiness (Goh–Barabási)", "setting", "flows", "burstiness")
		for _, r := range rows {
			tab.AddRow(r.Setting, r.FlowCount, r.DropBurstiness)
		}
	}
	return tab, nil
}

func intraTable(s core.Setting, cca string, seed uint64, parallel int) (*report.Table, error) {
	rows, err := core.IntraCCASweep(s, cca, core.RTTs, seed, parallel)
	if err != nil {
		return nil, err
	}
	tab := report.NewTable("Intra-CCA fairness: "+cca, "setting", "rtt", "flows", "JFI")
	for _, r := range rows {
		tab.AddRow(r.Setting, r.RTT.String(), r.FlowCount, r.JFI)
	}
	return tab, nil
}

func interTable(s core.Setting, mode core.InterCCAMode, a, b string, seed uint64, parallel int) (*report.Table, error) {
	rows, err := core.InterCCASweep(s, mode, a, b, core.RTTs, seed, parallel)
	if err != nil {
		return nil, err
	}
	tab := report.NewTable(fmt.Sprintf("Inter-CCA: %s vs %s", a, b), "setting", "rtt", "flows", a+" share %")
	for _, r := range rows {
		tab.AddRow(r.Setting, r.RTT.String(), r.FlowCount, r.Share[a]*100)
	}
	return tab, nil
}

func rttmixTable(s core.Setting, cca string, seed uint64, parallel int) (*report.Table, error) {
	rows, err := core.RTTMixSweep(s, cca, 20*sim.Millisecond, 100*sim.Millisecond, seed, parallel)
	if err != nil {
		return nil, err
	}
	tab := report.NewTable("Extension: mixed-RTT fairness "+cca, "setting", "flows", "short share %", "JFI(short)", "JFI(long)")
	for _, r := range rows {
		tab.AddRow(r.Setting, r.FlowCount, r.ShortShare*100, r.ShortJFI, r.LongJFI)
	}
	return tab, nil
}

func burstTable(s core.Setting, seed uint64, parallel int) (*report.Table, error) {
	rows, err := core.BurstLossSweep(s, seed, parallel)
	if err != nil {
		return nil, err
	}
	tab := report.NewTable(
		fmt.Sprintf("Extension: Gilbert–Elliott burst loss (mean loss %.1f%%) vs iid Mathis prediction",
			core.BurstMeanLoss*100),
		"setting", "burst len", "goodput/flow", "iid predict", "measured/model", "drops/halving", "burst drops")
	for _, r := range rows {
		tab.AddRow(r.Setting, r.BurstLen, r.GoodputPerFlow.String(), r.PredictIID.String(),
			r.ModelRatio, r.DropsPerHalving, r.BurstDrops)
	}
	return tab, nil
}

func outageTable(s core.Setting, seed uint64, parallel int) (*report.Table, error) {
	rows, err := core.OutageSweep(s, seed, parallel)
	if err != nil {
		return nil, err
	}
	tab := report.NewTable(
		"Extension: link outages (goodput relative to a clean run of the same CCA)",
		"setting", "cca", "down", "flaps", "goodput", "vs clean %", "RTOs", "outage drops", "JFI")
	for _, r := range rows {
		tab.AddRow(r.Setting, r.CCA, r.Down.String(), r.Flaps, r.Goodput.String(),
			r.GoodputFrac*100, r.RTOs, r.OutageDrops, r.JFI)
	}
	return tab, nil
}

func churnTable(s core.Setting, seed uint64) (*report.Table, error) {
	tab := report.NewTable("Extension: Poisson flow churn (500 KB transfers)",
		"load", "arrivals", "completed", "p50FCT_s", "p95FCT_s", "p99FCT_s")
	size := 500 * units.KB
	for _, load := range []float64{0.3, 0.6, 0.9} {
		res, err := core.RunChurn(core.ChurnConfig{
			Rate:          s.Rate,
			Buffer:        s.Buffer,
			CCA:           "reno",
			RTT:           core.DefaultRTT,
			TransferBytes: size,
			ArrivalRate:   load * float64(s.Rate) / (float64(size) * 8),
			Duration:      s.Duration,
			Seed:          seed,
		})
		if err != nil {
			return nil, err
		}
		tab.AddRow(fmt.Sprintf("%.0f%%", load*100), res.Arrivals, res.Completed,
			res.P50FCT, res.P95FCT, res.P99FCT)
	}
	return tab, nil
}
