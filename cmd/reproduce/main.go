// Command reproduce regenerates every table and figure of the paper in
// one invocation, writing one text file per result into an output
// directory (default ./results). It is the driver behind
// EXPERIMENTS.md.
//
//	reproduce [-out DIR] [-scale N] [-seed N] [-quick] [-resume] [-only RE] [-audit strict]
//	          [-mem-budget 512M] [-event-budget N] [-retries N]
//	          [-progress] [-telemetry out.jsonl] [-pprof localhost:6060]
//
// -quick shrinks windows and flow counts for a minutes-long smoke pass;
// the default tier is EdgeScale plus CoreScale/N (1 Gbps at N=10).
// Paper-literal scale (10 Gbps, 5000 flows) remains available through
// `ccatscale <fig> -full`, budgeted in CPU-days.
//
// Three observation surfaces are opt-in and never perturb results:
// -progress prints a live status line (jobs done/running, estimator
// ETA, fidelity tier) to stderr; -telemetry streams every run's
// lifecycle events as JSONL (summarize with `tracestat -telemetry`,
// validate with `fprint -check`); -pprof serves net/http/pprof plus a
// /metricsz JSON snapshot of the telemetry registry. Each table is
// also written as a versioned .json document beside its .txt form.
//
// The sweep is fail-safe: a job that errors (or panics) is recorded in
// the output directory's manifest.json — with a replayable
// <job>.failed.json when the failure is a core.RunError — and the
// remaining jobs still run. A later invocation with -resume re-executes
// only the jobs that have not completed.
//
// -mem-budget and -event-budget bound every run's footprint: a job the
// estimator prices over budget is recorded as "rejected" (not failed —
// the sweep still exits zero) and a later -resume retries it one
// fidelity tier lower. -retries lets admission degrade a config in the
// same invocation instead. Per-job peak resource usage is recorded in
// manifest.json, and reduced-fidelity output is marked both there and
// in the table itself.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"regexp"
	"runtime"
	"runtime/debug"
	"runtime/pprof"
	"strconv"
	"strings"
	"sync"
	"time"

	"ccatscale/internal/budget"
	"ccatscale/internal/core"
	"ccatscale/internal/report"
	"ccatscale/internal/sim"
	"ccatscale/internal/telemetry"
	"ccatscale/internal/units"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// job is one table of the sweep. Each job carries its own Setting copy
// so per-job overrides (the -panicjob fault drill) cannot leak into
// other jobs.
type job struct {
	name    string
	setting core.Setting
	run     func(core.Setting) (*report.Table, error)
}

func run(argv []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("reproduce", flag.ContinueOnError)
	fs.SetOutput(stderr)
	out := fs.String("out", "results", "output directory")
	scale := fs.Int("scale", 10, "CoreScale divisor")
	seed := fs.Uint64("seed", 7, "experiment seed")
	quick := fs.Bool("quick", false, "shrink windows and flow counts for a fast pass")
	parallel := fs.Int("parallel", runtime.GOMAXPROCS(0), "concurrent runs")
	resume := fs.Bool("resume", false, "skip jobs already completed per the output directory's manifest")
	only := fs.String("only", "", "regexp restricting which jobs run")
	panicJob := fs.String("panicjob", "", "inject a mid-run panic into the named job (supervisor drill)")
	wallLimit := fs.Duration("runwall", 0, "wall-clock limit per simulation run (0 = unlimited)")
	auditPol := fs.String("audit", "", "invariant auditing for every run: off (default), warn, or strict")
	memBudget := fs.String("mem-budget", "", "per-run heap budget, e.g. 512M or 2G (empty = unlimited)")
	eventBudget := fs.Int64("event-budget", 0, "per-run event-object budget (0 = unlimited)")
	retries := fs.Int("retries", 0, "reduced-fidelity retries for over-budget runs")
	force := fs.Bool("force", false, "resume even when the manifest's job set no longer matches")
	cpuProfile := fs.String("cpuprofile", "", "write a CPU profile of the sweep to this file (go tool pprof)")
	memProfile := fs.String("memprofile", "", "write a heap profile at sweep end to this file (go tool pprof)")
	progress := fs.Bool("progress", false, "print a live sweep status line to stderr (jobs done/running/rejected, estimator ETA, fidelity tier)")
	telemetryOut := fs.String("telemetry", "", "write a telemetry JSONL stream of every run to this file (analyze with tracestat -telemetry)")
	pprofAddr := fs.String("pprof", "", "serve net/http/pprof and a /metricsz telemetry snapshot on this address (e.g. localhost:6060)")
	if err := fs.Parse(argv); err != nil {
		return 2
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintln(stderr, "reproduce:", err)
			return 1
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			fmt.Fprintln(stderr, "reproduce:", err)
			return 1
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintln(stderr, "reproduce:", err)
				return
			}
			defer f.Close()
			runtime.GC() // settle the heap so the profile shows retained allocations
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(stderr, "reproduce:", err)
			}
		}()
	}

	var onlyRE *regexp.Regexp
	if *only != "" {
		re, err := regexp.Compile(*only)
		if err != nil {
			fmt.Fprintf(stderr, "reproduce: bad -only pattern: %v\n", err)
			return 2
		}
		onlyRE = re
	}

	if err := os.MkdirAll(*out, 0o755); err != nil {
		fmt.Fprintln(stderr, "reproduce:", err)
		return 1
	}

	man, err := loadManifest(*out)
	if err != nil {
		fmt.Fprintln(stderr, "reproduce:", err)
		return 1
	}

	var runBudget *budget.Budget
	if *memBudget != "" || *eventBudget > 0 {
		heapBytes := int64(0)
		if *memBudget != "" {
			heapBytes, err = parseByteSize(*memBudget)
			if err != nil {
				fmt.Fprintf(stderr, "reproduce: bad -mem-budget: %v\n", err)
				return 2
			}
		}
		runBudget = &budget.Budget{HeapBytes: heapBytes, Events: *eventBudget}
	}

	edge := core.EdgeScale()
	corePaper := core.CoreScaleScaled(*scale)
	if *quick {
		edge.Warmup, edge.Duration, edge.Stagger = 5*sim.Second, 20*sim.Second, 2*sim.Second
		corePaper = core.CoreScaleScaled(*scale * 5)
		corePaper.Warmup, corePaper.Duration, corePaper.Stagger = 5*sim.Second, 20*sim.Second, 2*sim.Second
	}
	edge.WallLimit = *wallLimit
	corePaper.WallLimit = *wallLimit
	edge.Audit = *auditPol
	corePaper.Audit = *auditPol
	edge.Budget = runBudget
	corePaper.Budget = runBudget
	edge.Retries = *retries
	corePaper.Retries = *retries

	mathisTables := func(s core.Setting, label string) []job {
		mk := func(view mathisView) func(core.Setting) (*report.Table, error) {
			return func(s core.Setting) (*report.Table, error) {
				return mathisTable(s, *seed, *parallel, view)
			}
		}
		return []job{
			{"table1_" + label, s, mk(table1View)},
			{"fig2_" + label, s, mk(fig2View)},
			{"fig3_" + label, s, mk(fig3View)},
			{"burstiness_" + label, s, mk(burstView)},
		}
	}
	var jobs []job
	jobs = append(jobs, mathisTables(edge, "edge")...)
	jobs = append(jobs, mathisTables(corePaper, "core")...)
	jobs = append(jobs,
		job{"finding4_reno_core", corePaper, func(s core.Setting) (*report.Table, error) {
			return intraTable(s, "reno", *seed, *parallel)
		}},
		job{"finding4_cubic_core", corePaper, func(s core.Setting) (*report.Table, error) {
			return intraTable(s, "cubic", *seed, *parallel)
		}},
		job{"fig4_edge", edge, func(s core.Setting) (*report.Table, error) {
			return intraTable(s, "bbr", *seed, *parallel)
		}},
		job{"fig4_core", corePaper, func(s core.Setting) (*report.Table, error) {
			return intraTable(s, "bbr", *seed, *parallel)
		}},
		job{"fig5_core", corePaper, func(s core.Setting) (*report.Table, error) {
			return interTable(s, core.EqualSplit, "cubic", "reno", *seed, *parallel)
		}},
		job{"fig6_core", corePaper, func(s core.Setting) (*report.Table, error) {
			return interTable(s, core.OneVersusMany, "bbr", "reno", *seed, *parallel)
		}},
		job{"fig7_core", corePaper, func(s core.Setting) (*report.Table, error) {
			return interTable(s, core.OneVersusMany, "bbr", "cubic", *seed, *parallel)
		}},
		job{"fig8_reno_core", corePaper, func(s core.Setting) (*report.Table, error) {
			return interTable(s, core.EqualSplit, "bbr", "reno", *seed, *parallel)
		}},
		job{"fig8_cubic_core", corePaper, func(s core.Setting) (*report.Table, error) {
			return interTable(s, core.EqualSplit, "bbr", "cubic", *seed, *parallel)
		}},
		job{"ext_rttmix_reno_core", corePaper, func(s core.Setting) (*report.Table, error) {
			return rttmixTable(s, "reno", *seed, *parallel)
		}},
		job{"ext_burstloss_core", corePaper, func(s core.Setting) (*report.Table, error) {
			return burstTable(s, *seed, *parallel)
		}},
		job{"ext_outage_core", corePaper, func(s core.Setting) (*report.Table, error) {
			return outageTable(s, *seed, *parallel)
		}},
		job{"ext_churn_core", corePaper, func(s core.Setting) (*report.Table, error) {
			return churnTable(s, *seed)
		}},
	)

	hash := configHash(*seed, *scale, *quick, jobs)
	if *resume && man != nil {
		if err := man.compatible(*seed, *scale, *quick, hash); err != nil {
			if !*force {
				fmt.Fprintln(stderr, "reproduce:", err)
				return 1
			}
			fmt.Fprintf(stderr, "reproduce: -force: resuming anyway (%v)\n", err)
			man.Version = manifestVersion
			man.ConfigHash = hash
		}
	}
	if !*resume || man == nil {
		man = newManifest(*seed, *scale, *quick, hash)
	}

	// Live telemetry surfaces: a JSONL stream file, a metrics registry
	// behind -pprof's /metricsz, and the -progress status line. All are
	// observation-only — runs stay bit-identical with them attached.
	var stream *telemetry.Stream
	var streamFile *os.File
	var regColl telemetry.Collector
	reg := telemetry.NewRegistry()
	if *telemetryOut != "" {
		f, err := os.Create(*telemetryOut)
		if err != nil {
			fmt.Fprintln(stderr, "reproduce:", err)
			return 1
		}
		stream, err = telemetry.NewStream(f, "reproduce seed="+strconv.FormatUint(*seed, 10))
		if err != nil {
			f.Close()
			fmt.Fprintln(stderr, "reproduce:", err)
			return 1
		}
		streamFile = f
	}
	if *pprofAddr != "" {
		regColl = reg.Instrument()
		addr, err := startDebugServer(*pprofAddr, reg)
		if err != nil {
			fmt.Fprintln(stderr, "reproduce:", err)
			return 1
		}
		fmt.Fprintf(stderr, "reproduce: debug server on http://%s (/debug/pprof/, /metricsz)\n", addr)
	}

	toRun := make([]job, 0, len(jobs))
	for _, j := range jobs {
		if onlyRE != nil && !onlyRE.MatchString(j.name) {
			continue
		}
		toRun = append(toRun, j)
	}
	var pt *progressTracker
	if *progress {
		pt = newProgressTracker(stderr, toRun)
		defer pt.finish()
	}

	injected := false
	var failed, rejected []string
	ran := 0
	for _, j := range toRun {
		if *resume && man.done(*out, j.name) {
			fmt.Fprintf(stdout, "%-24s %8s  (already done, skipped)\n", j.name, "resume")
			if pt != nil {
				pt.jobEnded(j.name, "done")
			}
			continue
		}
		if *resume {
			// A rejected job resumes one fidelity tier lower: less
			// retained state, a shorter window from tier 2 — the
			// degraded estimate may now fit the same budget.
			if prev, ok := man.Jobs[j.name]; ok && prev.Status == "rejected" {
				j.setting.Fidelity = prev.Fidelity + 1
				fmt.Fprintf(stdout, "%-24s retrying at reduced fidelity tier %d\n",
					j.name, j.setting.Fidelity)
			}
		}
		if *panicJob == j.name {
			// Fire inside the warm-up of every run of this job: early
			// enough to fail fast, late enough that the simulation is
			// genuinely under way when the supervisor catches it.
			j.setting.FaultPanicAt = sim.Second
			injected = true
		}
		if stream != nil || regColl != nil {
			var sc telemetry.Collector
			if stream != nil {
				sc = stream.Collector(j.name)
			}
			j.setting.Telemetry = telemetry.Multi(sc, regColl)
		}
		if pt != nil {
			pt.jobStarted(j.name, j.setting.Fidelity)
		}
		ran++
		start := time.Now()
		// Collect per-run resource usage for the job's manifest record.
		var usageMu sync.Mutex
		var jobUsage budget.Usage
		core.SetUsageSink(func(u budget.Usage) {
			usageMu.Lock()
			jobUsage.Merge(u)
			usageMu.Unlock()
		})
		tab, err := runJob(j)
		core.SetUsageSink(nil)
		fileName := j.name + ".txt"
		jsonName := j.name + ".json"
		if err == nil {
			if jobUsage.Degraded() {
				tab.AddNote("reduced fidelity: tier %d, series decimation %d× (budget governance)",
					jobUsage.MaxFidelity, jobUsage.MaxDecimation)
			}
			err = writeTable(filepath.Join(*out, fileName), tab, *seed, start, jobUsage.Degraded())
			if err == nil {
				err = writeJSONTable(filepath.Join(*out, jsonName), tab)
			}
		}
		wall := time.Since(start)
		rec := &jobRecord{Wall: wall.Round(time.Millisecond).String()}
		if jobUsage.Runs > 0 {
			u := jobUsage
			rec.Usage = &u
			rec.Degraded = u.Degraded()
			rec.Fidelity = u.MaxFidelity
		}
		var be *budget.BudgetError
		switch {
		case err != nil && errors.As(err, &be) && be.Stage == budget.StageAdmission:
			// Admission control refused the job's predicted footprint:
			// nothing ran, siblings continue, and the sweep still exits
			// zero — a rejection is governance working, not a failure.
			rec.Status = "rejected"
			rec.Error = err.Error()
			rec.Fidelity = j.setting.Fidelity
			rejected = append(rejected, j.name)
			fmt.Fprintf(stdout, "%-24s %8s  REJECTED (over budget): %v\n",
				j.name, wall.Round(time.Second), be)
		case err != nil:
			rec.Status = "failed"
			rec.Error = err.Error()
			var re *core.RunError
			if errors.As(err, &re) {
				ff := j.name + ".failed.json"
				if werr := writeFailure(filepath.Join(*out, ff), re); werr != nil {
					fmt.Fprintf(stderr, "reproduce: %s: writing failure record: %v\n", j.name, werr)
				} else {
					rec.FailureFile = ff
				}
			}
			failed = append(failed, j.name)
			fmt.Fprintf(stderr, "reproduce: %-24s FAILED after %s: %v\n",
				j.name, wall.Round(time.Second), err)
		default:
			rec.Status = "done"
			rec.File = fileName
			rec.JSON = jsonName
			marker := ""
			if rec.Degraded {
				marker = "  (degraded)"
			}
			fmt.Fprintf(stdout, "%-24s %8s  → %s%s\n",
				j.name, wall.Round(time.Second), filepath.Join(*out, fileName), marker)
		}
		if pt != nil {
			pt.jobEnded(j.name, rec.Status)
		}
		man.Jobs[j.name] = rec
		if err := man.save(*out); err != nil {
			fmt.Fprintln(stderr, "reproduce:", err)
			return 1
		}
	}

	if stream != nil {
		err := stream.Flush()
		if cerr := streamFile.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			fmt.Fprintf(stderr, "reproduce: telemetry stream: %v\n", err)
			return 1
		}
		fmt.Fprintf(stderr, "reproduce: telemetry written to %s\n", *telemetryOut)
	}

	if *panicJob != "" && !injected {
		fmt.Fprintf(stderr, "reproduce: -panicjob %q matched no job that ran\n", *panicJob)
		return 2
	}
	if len(rejected) > 0 {
		fmt.Fprintf(stdout, "reproduce: %d of %d jobs rejected over budget: %s\n",
			len(rejected), ran, strings.Join(rejected, ", "))
		fmt.Fprintf(stdout, "reproduce: rerun with -out %s -resume to retry them at reduced fidelity\n", *out)
	}
	if len(failed) > 0 {
		fmt.Fprintf(stderr, "reproduce: %d of %d jobs failed: %s\n",
			len(failed), ran, strings.Join(failed, ", "))
		fmt.Fprintf(stderr, "reproduce: retry just those with -out %s -resume\n", *out)
		return 1
	}
	return 0
}

// parseByteSize parses "512M"-style sizes (K/M/G suffixes, powers of
// 1024; a bare number is bytes).
func parseByteSize(s string) (int64, error) {
	mult := int64(1)
	num := s
	if n := len(s); n > 0 {
		switch s[n-1] {
		case 'k', 'K':
			mult, num = 1<<10, s[:n-1]
		case 'm', 'M':
			mult, num = 1<<20, s[:n-1]
		case 'g', 'G':
			mult, num = 1<<30, s[:n-1]
		}
	}
	v, err := strconv.ParseInt(strings.TrimSpace(num), 10, 64)
	if err != nil || v <= 0 {
		return 0, fmt.Errorf("%q is not a positive size (use e.g. 512M, 2G)", s)
	}
	return v * mult, nil
}

// runJob executes one job with a panic net of its own. core.Run already
// converts simulation panics into *core.RunError; this backstop covers
// the table-building code outside the supervisor, so no single job can
// take down the sweep.
func runJob(j job) (tab *report.Table, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("panic outside supervisor: %v\n%s", r, debug.Stack())
		}
	}()
	tab, err = j.run(j.setting)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", j.name, err)
	}
	return tab, nil
}

// writeTable writes one result file, checking every step — a partially
// written table is removed rather than left for -resume to trust.
func writeTable(path string, tab *report.Table, seed uint64, start time.Time, degraded bool) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	err = tab.WriteText(f)
	if err == nil {
		marker := ""
		if degraded {
			marker = ", degraded"
		}
		_, err = fmt.Fprintf(f, "\n[seed %d, wall %s%s]\n", seed,
			time.Since(start).Round(time.Millisecond), marker)
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(path)
		return fmt.Errorf("writing %s: %w", path, err)
	}
	return nil
}

// writeJSONTable writes the versioned JSON rendering of a table beside
// its text form, with the same remove-on-error discipline. The JSON
// carries schema_version so downstream consumers (fprint -check) can
// gate on the result schema's major version.
func writeJSONTable(path string, tab *report.Table) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	err = tab.WriteJSON(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(path)
		return fmt.Errorf("writing %s: %w", path, err)
	}
	return nil
}

// writeFailure serializes a RunError next to the results so the failed
// run can be replayed with `ccatscale replay -in <file>`.
func writeFailure(path string, re *core.RunError) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	err = re.WriteJSON(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(path)
	}
	return err
}

type mathisView int

const (
	table1View mathisView = iota
	fig2View
	fig3View
	burstView
)

func mathisTable(s core.Setting, seed uint64, parallel int, view mathisView) (*report.Table, error) {
	rows, err := core.MathisSweep(s, seed, parallel)
	if err != nil {
		return nil, err
	}
	var tab *report.Table
	switch view {
	case table1View:
		tab = report.NewTable("Table 1: Mathis constant C", "setting", "flows", "C(loss)", "C(halving)")
		for _, r := range rows {
			tab.AddRow(r.Setting, r.FlowCount, r.CLoss, r.CHalve)
		}
	case fig2View:
		tab = report.NewTable("Figure 2: median prediction error (%)", "setting", "flows", "err(loss)%", "err(halving)%")
		for _, r := range rows {
			tab.AddRow(r.Setting, r.FlowCount, r.MedianErrLoss*100, r.MedianErrHalve*100)
		}
	case fig3View:
		tab = report.NewTable("Figure 3: loss-to-halving ratio", "setting", "flows", "ratio")
		for _, r := range rows {
			tab.AddRow(r.Setting, r.FlowCount, r.LossToHalvingRatio)
		}
	case burstView:
		tab = report.NewTable("Drop burstiness (Goh–Barabási)", "setting", "flows", "burstiness")
		for _, r := range rows {
			tab.AddRow(r.Setting, r.FlowCount, r.DropBurstiness)
		}
	}
	return tab, nil
}

func intraTable(s core.Setting, cca string, seed uint64, parallel int) (*report.Table, error) {
	rows, err := core.IntraCCASweep(s, cca, core.RTTs, seed, parallel)
	if err != nil {
		return nil, err
	}
	tab := report.NewTable("Intra-CCA fairness: "+cca, "setting", "rtt", "flows", "JFI")
	for _, r := range rows {
		tab.AddRow(r.Setting, r.RTT.String(), r.FlowCount, r.JFI)
	}
	return tab, nil
}

func interTable(s core.Setting, mode core.InterCCAMode, a, b string, seed uint64, parallel int) (*report.Table, error) {
	rows, err := core.InterCCASweep(s, mode, a, b, core.RTTs, seed, parallel)
	if err != nil {
		return nil, err
	}
	tab := report.NewTable(fmt.Sprintf("Inter-CCA: %s vs %s", a, b), "setting", "rtt", "flows", a+" share %")
	for _, r := range rows {
		tab.AddRow(r.Setting, r.RTT.String(), r.FlowCount, r.Share[a]*100)
	}
	return tab, nil
}

func rttmixTable(s core.Setting, cca string, seed uint64, parallel int) (*report.Table, error) {
	rows, err := core.RTTMixSweep(s, cca, 20*sim.Millisecond, 100*sim.Millisecond, seed, parallel)
	if err != nil {
		return nil, err
	}
	tab := report.NewTable("Extension: mixed-RTT fairness "+cca, "setting", "flows", "short share %", "JFI(short)", "JFI(long)")
	for _, r := range rows {
		tab.AddRow(r.Setting, r.FlowCount, r.ShortShare*100, r.ShortJFI, r.LongJFI)
	}
	return tab, nil
}

func burstTable(s core.Setting, seed uint64, parallel int) (*report.Table, error) {
	rows, err := core.BurstLossSweep(s, seed, parallel)
	if err != nil {
		return nil, err
	}
	tab := report.NewTable(
		fmt.Sprintf("Extension: Gilbert–Elliott burst loss (mean loss %.1f%%) vs iid Mathis prediction",
			core.BurstMeanLoss*100),
		"setting", "burst len", "goodput/flow", "iid predict", "measured/model", "drops/halving", "burst drops")
	for _, r := range rows {
		tab.AddRow(r.Setting, r.BurstLen, r.GoodputPerFlow.String(), r.PredictIID.String(),
			r.ModelRatio, r.DropsPerHalving, r.BurstDrops)
	}
	return tab, nil
}

func outageTable(s core.Setting, seed uint64, parallel int) (*report.Table, error) {
	rows, err := core.OutageSweep(s, seed, parallel)
	if err != nil {
		return nil, err
	}
	tab := report.NewTable(
		"Extension: link outages (goodput relative to a clean run of the same CCA)",
		"setting", "cca", "down", "flaps", "goodput", "vs clean %", "RTOs", "outage drops", "JFI")
	for _, r := range rows {
		tab.AddRow(r.Setting, r.CCA, r.Down.String(), r.Flaps, r.Goodput.String(),
			r.GoodputFrac*100, r.RTOs, r.OutageDrops, r.JFI)
	}
	return tab, nil
}

func churnTable(s core.Setting, seed uint64) (*report.Table, error) {
	tab := report.NewTable("Extension: Poisson flow churn (500 KB transfers)",
		"load", "arrivals", "completed", "p50FCT_s", "p95FCT_s", "p99FCT_s")
	size := 500 * units.KB
	for _, load := range []float64{0.3, 0.6, 0.9} {
		res, err := core.RunChurn(core.ChurnConfig{
			Rate:          s.Rate,
			Buffer:        s.Buffer,
			CCA:           "reno",
			RTT:           core.DefaultRTT,
			TransferBytes: size,
			ArrivalRate:   load * float64(s.Rate) / (float64(size) * 8),
			Duration:      s.Duration,
			Seed:          seed,
		})
		if err != nil {
			return nil, err
		}
		tab.AddRow(fmt.Sprintf("%.0f%%", load*100), res.Arrivals, res.Completed,
			res.P50FCT, res.P95FCT, res.P99FCT)
	}
	return tab, nil
}
