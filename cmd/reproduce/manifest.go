package main

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
)

// manifestFile is the checkpoint the sweep keeps in its output
// directory: which jobs completed, which failed and why. -resume reads
// it to skip finished tables and re-execute only the rest.
const manifestFile = "manifest.json"

// manifest records a sweep's parameters and per-job outcomes. The
// parameters are part of the record because resuming under a different
// seed or scale would silently mix incompatible tables.
type manifest struct {
	Version int             `json:"version"`
	Seed    uint64          `json:"seed"`
	Scale   int             `json:"scale"`
	Quick   bool            `json:"quick"`
	Jobs    map[string]*jobRecord `json:"jobs"`
}

// jobRecord is one job's outcome.
type jobRecord struct {
	// Status is "done" or "failed".
	Status string `json:"status"`
	// File is the output table, relative to the output directory.
	File string `json:"file,omitempty"`
	// Wall is the job's wall-clock duration.
	Wall string `json:"wall,omitempty"`
	// Error holds the failure summary for failed jobs.
	Error string `json:"error,omitempty"`
	// FailureFile points at the serialized RunError (replayable via
	// `ccatscale replay -in`), relative to the output directory.
	FailureFile string `json:"failureFile,omitempty"`
}

func newManifest(seed uint64, scale int, quick bool) *manifest {
	return &manifest{
		Version: 1,
		Seed:    seed,
		Scale:   scale,
		Quick:   quick,
		Jobs:    map[string]*jobRecord{},
	}
}

// loadManifest reads the checkpoint from dir. A missing file returns
// (nil, nil): nothing to resume.
func loadManifest(dir string) (*manifest, error) {
	data, err := os.ReadFile(filepath.Join(dir, manifestFile))
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	var m manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("corrupt %s: %w", manifestFile, err)
	}
	if m.Jobs == nil {
		m.Jobs = map[string]*jobRecord{}
	}
	return &m, nil
}

// compatible reports whether a resume under the given parameters can
// reuse this manifest's completed jobs.
func (m *manifest) compatible(seed uint64, scale int, quick bool) error {
	if m.Seed != seed || m.Scale != scale || m.Quick != quick {
		return fmt.Errorf("manifest was written by -seed %d -scale %d -quick=%v; "+
			"resuming with -seed %d -scale %d -quick=%v would mix incompatible tables "+
			"(use a fresh -out directory or matching flags)",
			m.Seed, m.Scale, m.Quick, seed, scale, quick)
	}
	return nil
}

// done reports whether the named job completed and its output file is
// still present in dir.
func (m *manifest) done(dir, name string) bool {
	rec, ok := m.Jobs[name]
	if !ok || rec.Status != "done" || rec.File == "" {
		return false
	}
	_, err := os.Stat(filepath.Join(dir, rec.File))
	return err == nil
}

// save checkpoints the manifest atomically (temp file + rename), so a
// sweep killed mid-write never leaves a corrupt checkpoint behind.
func (m *manifest) save(dir string) error {
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return err
	}
	tmp, err := os.CreateTemp(dir, manifestFile+".tmp*")
	if err != nil {
		return err
	}
	_, werr := tmp.Write(append(data, '\n'))
	cerr := tmp.Close()
	if werr != nil || cerr != nil {
		os.Remove(tmp.Name())
		if werr != nil {
			return werr
		}
		return cerr
	}
	return os.Rename(tmp.Name(), filepath.Join(dir, manifestFile))
}
