package main

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"ccatscale/internal/budget"
	"ccatscale/internal/core"
	"ccatscale/internal/schema"
	"ccatscale/internal/store"
)

// manifestFile is the checkpoint the sweep keeps in its output
// directory: which jobs completed, which failed and why. -resume reads
// it to skip finished tables and re-execute only the rest.
const manifestFile = "manifest.json"

// manifestVersion is bumped when the record's meaning changes; version
// 2 added ConfigHash and per-job resource usage, version 3 the shared
// result schema_version and per-job JSON tables.
const manifestVersion = 3

// manifest records a sweep's parameters and per-job outcomes. The
// parameters are part of the record because resuming under a different
// seed or scale would silently mix incompatible tables.
type manifest struct {
	Version int `json:"version"`
	// SchemaVersion is the shared result schema (internal/schema) the
	// sweep's JSON tables and telemetry streams were written under.
	SchemaVersion string `json:"schema_version"`
	Seed          uint64 `json:"seed"`
	Scale         int    `json:"scale"`
	Quick         bool   `json:"quick"`
	// ConfigHash fingerprints the experiment-defining job list (names
	// and settings, with governance knobs zeroed). -resume refuses a
	// manifest whose hash no longer matches the jobs this binary would
	// run — the job set changed under it — unless -force overrides.
	ConfigHash string                `json:"configHash,omitempty"`
	Jobs       map[string]*jobRecord `json:"jobs"`
}

// jobRecord is one job's outcome.
type jobRecord struct {
	// Status is "done", "failed", or "rejected" (admission control
	// refused the job's footprint; nothing ran, -resume retries it one
	// fidelity tier lower).
	Status string `json:"status"`
	// File is the output table, relative to the output directory.
	File string `json:"file,omitempty"`
	// JSON is the table's versioned JSON rendering, relative to the
	// output directory.
	JSON string `json:"json,omitempty"`
	// Wall is the job's wall-clock duration.
	Wall string `json:"wall,omitempty"`
	// Error holds the failure summary for failed and rejected jobs.
	Error string `json:"error,omitempty"`
	// FailureFile points at the serialized RunError (replayable via
	// `ccatscale replay -in`), relative to the output directory.
	FailureFile string `json:"failureFile,omitempty"`
	// Usage aggregates the resources the job's runs actually consumed.
	Usage *budget.Usage `json:"usage,omitempty"`
	// Degraded marks a job whose output is reduced-fidelity (a
	// degradation tier ran, or a series was decimated).
	Degraded bool `json:"degraded,omitempty"`
	// Fidelity is the degradation tier the job ran (or was rejected) at.
	Fidelity int `json:"fidelity,omitempty"`
	// Cached marks a job served from the content-addressed store without
	// recomputation — the counter the exactly-once CI smoke asserts on.
	Cached bool `json:"cached,omitempty"`
}

func newManifest(seed uint64, scale int, quick bool, configHash string) *manifest {
	return &manifest{
		Version:       manifestVersion,
		SchemaVersion: schema.Version,
		Seed:          seed,
		Scale:         scale,
		Quick:         quick,
		ConfigHash:    configHash,
		Jobs:          map[string]*jobRecord{},
	}
}

// loadManifest reads the checkpoint from dir. A missing file returns
// (nil, nil): nothing to resume. A corrupt file is quarantined to
// manifest.json.corrupt and also returns (nil, nil) — the manifest is a
// derived view now; the caller rebuilds it from the write-ahead journal,
// which is the durable record.
func loadManifest(dir string) (*manifest, error) {
	return loadManifestFS(store.OSFS(), dir)
}

// loadManifestFS is loadManifest on an explicit FS (the chaos harness
// substitutes one).
func loadManifestFS(fs store.FS, dir string) (*manifest, error) {
	path := filepath.Join(dir, manifestFile)
	data, err := fs.ReadFile(path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	var m manifest
	if err := json.Unmarshal(data, &m); err != nil {
		if rerr := fs.Rename(path, path+".corrupt"); rerr != nil && !os.IsNotExist(rerr) {
			return nil, fmt.Errorf("corrupt %s (%v) and quarantine failed: %v", manifestFile, err, rerr)
		}
		if serr := fs.SyncDir(dir); serr != nil {
			return nil, serr
		}
		return nil, nil
	}
	if m.Jobs == nil {
		m.Jobs = map[string]*jobRecord{}
	}
	return &m, nil
}

// compatible reports whether a resume under the given parameters can
// reuse this manifest's completed jobs.
func (m *manifest) compatible(seed uint64, scale int, quick bool, configHash string) error {
	if m.Seed != seed || m.Scale != scale || m.Quick != quick {
		return fmt.Errorf("manifest was written by -seed %d -scale %d -quick=%v; "+
			"resuming with -seed %d -scale %d -quick=%v would mix incompatible tables "+
			"(use a fresh -out directory or matching flags)",
			m.Seed, m.Scale, m.Quick, seed, scale, quick)
	}
	if m.ConfigHash != configHash {
		return fmt.Errorf("manifest is stale: its job set (hash %.12s) does not match "+
			"this binary's (hash %.12s) — the experiment definitions changed; "+
			"rerun into a fresh -out directory or pass -force to resume anyway",
			m.ConfigHash, configHash)
	}
	return nil
}

// done reports whether the named job completed and its output file is
// still present in dir.
func (m *manifest) done(dir, name string) bool {
	rec, ok := m.Jobs[name]
	if !ok || rec.Status != "done" || rec.File == "" {
		return false
	}
	_, err := os.Stat(filepath.Join(dir, rec.File))
	return err == nil
}

// save checkpoints the manifest with the store's full atomic-commit
// protocol — temp file, fsync, rename, directory fsync — so a sweep
// killed at any syscall boundary leaves either the old checkpoint or
// the new one, both durable, never a torn mix.
func (m *manifest) save(dir string) error {
	return m.saveFS(store.OSFS(), dir)
}

// saveFS is save on an explicit FS.
func (m *manifest) saveFS(fs store.FS, dir string) error {
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return err
	}
	return store.WriteFileAtomicFS(fs, filepath.Join(dir, manifestFile), append(data, '\n'))
}

// configHash fingerprints the experiment the job list defines: names
// plus each job's setting with the governance knobs (budget, retries,
// wall limit, fidelity) zeroed, so changing -mem-budget or -retries
// between a run and its resume does not read as a different experiment,
// while changing seeds, scales, windows, or the job set itself does.
func configHash(seed uint64, scale int, quick bool, jobs []job) string {
	type hashJob struct {
		Name    string
		Setting core.Setting
	}
	hj := make([]hashJob, len(jobs))
	for i, j := range jobs {
		s := j.setting
		s.Budget = nil
		s.Retries = 0
		s.Fidelity = 0
		s.WallLimit = 0
		// Telemetry is json:"-" so marshal skips it; zero it anyway so
		// the hash's inputs are visibly observation-free.
		s.Telemetry = nil
		hj[i] = hashJob{Name: j.name, Setting: s}
	}
	data, err := json.Marshal(struct {
		Seed  uint64
		Scale int
		Quick bool
		Jobs  []hashJob
	}{seed, scale, quick, hj})
	if err != nil {
		// Settings are plain data; marshal cannot fail. Guard anyway.
		return fmt.Sprintf("unhashable: %v", err)
	}
	return fmt.Sprintf("%x", sha256.Sum256(data))
}

// jobKey is the content address of one job's result in the sweep's
// store: the job name and seed in the clear (for humans listing the
// store directory) plus a hash of the governance-zeroed setting, so the
// same experiment always commits to the same key — the idempotence that
// makes duplicate execution after a lease takeover harmless — while any
// change to what the job measures moves it to a fresh key.
func jobKey(name string, seed uint64, s core.Setting) string {
	s.Budget = nil
	s.Retries = 0
	s.Fidelity = 0
	s.WallLimit = 0
	s.Telemetry = nil
	s.Ctx = nil
	s.UsageSink = nil
	data, err := json.Marshal(struct {
		Name    string
		Seed    uint64
		Setting core.Setting
	}{name, seed, s})
	if err != nil {
		data = []byte(name)
	}
	sum := sha256.Sum256(data)
	return fmt.Sprintf("%s-%d-%x", name, seed, sum[:8])
}

// beginDetail is the payload of a journal "begin" record: the sweep
// parameters, durable before any job runs, so resume compatibility can
// be checked even when the manifest (a derived view) is lost or
// quarantined.
type beginDetail struct {
	Seed       uint64 `json:"seed"`
	Scale      int    `json:"scale"`
	Quick      bool   `json:"quick"`
	ConfigHash string `json:"configHash"`
}
