package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
	"time"

	"ccatscale/internal/budget"
	"ccatscale/internal/core"
	"ccatscale/internal/report"
	"ccatscale/internal/sim"
	"ccatscale/internal/store"
	"ccatscale/internal/units"
)

// testSetting is a deliberately tiny regime so the regression tests
// stay in the seconds range.
func testSetting() core.Setting {
	return core.Setting{
		Name:       "ReproduceTest",
		Rate:       20 * units.MbitPerSec,
		Buffer:     256 * units.KB,
		FlowCounts: []int{2},
		Warmup:     sim.Second,
		Duration:   3 * sim.Second,
		Stagger:    100 * sim.Millisecond,
	}
}

// TestMathisTableDeterministic is the repeatability regression: the
// same seed must yield byte-identical table text, or every "reproduce"
// claim in EXPERIMENTS.md is void.
func TestMathisTableDeterministic(t *testing.T) {
	render := func() string {
		tab, err := mathisTable(testSetting(), 17, 2, table1View)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := tab.WriteText(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	a, b := render(), render()
	if a != b {
		t.Fatalf("same seed, different table text:\n--- first\n%s--- second\n%s", a, b)
	}
	if !strings.Contains(a, "ReproduceTest") {
		t.Fatalf("table text missing setting name:\n%s", a)
	}
}

func TestManifestRoundTrip(t *testing.T) {
	dir := t.TempDir()
	m := newManifest(7, 10, true, "cafe")
	m.Jobs["fig4_edge"] = &jobRecord{Status: "done", File: "fig4_edge.txt", Wall: "1s"}
	m.Jobs["fig5_core"] = &jobRecord{Status: "failed", Error: "boom", FailureFile: "fig5_core.failed.json"}
	if err := m.save(dir); err != nil {
		t.Fatal(err)
	}
	got, err := loadManifest(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got == nil {
		t.Fatal("saved manifest not found")
	}
	if got.Seed != 7 || got.Scale != 10 || !got.Quick || got.ConfigHash != "cafe" {
		t.Fatalf("parameters did not round-trip: %+v", got)
	}
	if rec := got.Jobs["fig5_core"]; rec == nil || rec.Status != "failed" || rec.Error != "boom" {
		t.Fatalf("failed job record did not round-trip: %+v", rec)
	}

	// done() requires both the manifest entry and the output file.
	if m.done(dir, "fig4_edge") {
		t.Fatal("done with no output file on disk")
	}
	if err := os.WriteFile(filepath.Join(dir, "fig4_edge.txt"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if !m.done(dir, "fig4_edge") {
		t.Fatal("not done despite record + file")
	}
	if m.done(dir, "fig5_core") {
		t.Fatal("failed job reported done")
	}
	if m.done(dir, "no_such_job") {
		t.Fatal("unknown job reported done")
	}
}

func TestManifestAbsent(t *testing.T) {
	m, err := loadManifest(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if m != nil {
		t.Fatalf("manifest from empty dir: %+v", m)
	}
}

func TestManifestCompatible(t *testing.T) {
	m := newManifest(7, 10, false, "cafe")
	if err := m.compatible(7, 10, false, "cafe"); err != nil {
		t.Fatalf("matching params rejected: %v", err)
	}
	for _, tc := range []struct {
		seed  uint64
		scale int
		quick bool
	}{
		{8, 10, false}, {7, 20, false}, {7, 10, true},
	} {
		if err := m.compatible(tc.seed, tc.scale, tc.quick, "cafe"); err == nil {
			t.Fatalf("mismatched params %+v accepted", tc)
		}
	}
	// A changed job set (same sweep parameters) is stale, not
	// incompatible: the message steers to a fresh directory or -force.
	err := m.compatible(7, 10, false, "beef")
	if err == nil || !strings.Contains(err.Error(), "manifest is stale") {
		t.Fatalf("stale hash error = %v, want 'manifest is stale'", err)
	}
}

// TestConfigHashIgnoresGovernance: budget/retry/fidelity knobs steer how
// an experiment executes, not what it measures — changing them between a
// run and its resume must not invalidate the manifest.
func TestConfigHashIgnoresGovernance(t *testing.T) {
	s := testSetting()
	jobs := []job{{name: "j", setting: s}}
	base := configHash(7, 10, false, jobs)

	s2 := s
	s2.Budget = &budget.Budget{HeapBytes: 1 << 30}
	s2.Retries = 3
	s2.Fidelity = 2
	s2.WallLimit = time.Minute
	if h := configHash(7, 10, false, []job{{name: "j", setting: s2}}); h != base {
		t.Fatal("governance knobs changed the config hash")
	}

	s3 := s
	s3.Duration *= 2
	if h := configHash(7, 10, false, []job{{name: "j", setting: s3}}); h == base {
		t.Fatal("changed duration did not change the config hash")
	}
	if h := configHash(8, 10, false, jobs); h == base {
		t.Fatal("changed seed did not change the config hash")
	}
	if h := configHash(7, 10, false, []job{{name: "k", setting: s}}); h == base {
		t.Fatal("renamed job did not change the config hash")
	}
}

// TestRunIsolationAndResume is the acceptance drill: a job with an
// injected panic fails with a replayable record, the other selected job
// still completes, the sweep exits nonzero — and a -resume re-executes
// only the failed job.
func TestRunIsolationAndResume(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real sweeps")
	}
	dir := t.TempDir()
	base := []string{
		"-out", dir, "-quick", "-scale", "50", "-seed", "11", "-parallel", "4",
		"-only", "^ext_(burstloss|churn)_core$",
	}
	var stdout, stderr bytes.Buffer
	code := run(append(base, "-panicjob", "ext_burstloss_core"), &stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit = %d, want 1\nstdout:\n%s\nstderr:\n%s", code, &stdout, &stderr)
	}
	if !strings.Contains(stderr.String(), "ext_burstloss_core") || !strings.Contains(stderr.String(), "FAILED") {
		t.Fatalf("stderr missing failure report:\n%s", &stderr)
	}
	if !strings.Contains(stdout.String(), "ext_churn_core") {
		t.Fatalf("healthy job did not run:\n%s", &stdout)
	}
	if _, err := os.Stat(filepath.Join(dir, "ext_churn_core.txt")); err != nil {
		t.Fatalf("healthy job output missing: %v", err)
	}

	m, err := loadManifest(dir)
	if err != nil || m == nil {
		t.Fatalf("manifest after failure: %v, %v", m, err)
	}
	if rec := m.Jobs["ext_churn_core"]; rec == nil || rec.Status != "done" {
		t.Fatalf("churn record: %+v", rec)
	}
	rec := m.Jobs["ext_burstloss_core"]
	if rec == nil || rec.Status != "failed" || rec.FailureFile == "" {
		t.Fatalf("burstloss record: %+v", rec)
	}

	// The failure record must carry enough to replay: reason, seed,
	// virtual time of the injected fault, and the config.
	f, err := os.Open(filepath.Join(dir, rec.FailureFile))
	if err != nil {
		t.Fatal(err)
	}
	re, err := core.ReadRunError(f)
	f.Close()
	if err != nil {
		t.Fatal(err)
	}
	if re.Reason != "panic" || !strings.Contains(re.PanicMsg, "injected fault") {
		t.Fatalf("failure record reason/panic: %q / %q", re.Reason, re.PanicMsg)
	}
	if re.VirtualTime != sim.Second {
		t.Fatalf("failure virtual time = %v, want %v", re.VirtualTime, sim.Second)
	}
	if re.Config.Seed == 0 || len(re.Config.Flows) == 0 {
		t.Fatalf("failure record config incomplete: %+v", re.Config)
	}
	if re.ReplayCommand() == "" {
		t.Fatal("failure record has no replay command")
	}

	// Resume without the fault: only the failed job re-executes.
	stdout.Reset()
	stderr.Reset()
	code = run(append(base, "-resume"), &stdout, &stderr)
	if code != 0 {
		t.Fatalf("resume exit = %d\nstdout:\n%s\nstderr:\n%s", code, &stdout, &stderr)
	}
	if !strings.Contains(stdout.String(), "ext_churn_core") || !strings.Contains(stdout.String(), "skipped") {
		t.Fatalf("resume did not skip the completed job:\n%s", &stdout)
	}
	if !strings.Contains(stdout.String(), filepath.Join(dir, "ext_burstloss_core.txt")) {
		t.Fatalf("resume did not re-execute the failed job:\n%s", &stdout)
	}
	m, err = loadManifest(dir)
	if err != nil || m == nil {
		t.Fatalf("manifest after resume: %v, %v", m, err)
	}
	if rec := m.Jobs["ext_burstloss_core"]; rec == nil || rec.Status != "done" || rec.Error != "" {
		t.Fatalf("burstloss record after resume: %+v", rec)
	}
	// Manifest is valid JSON on disk (atomic save).
	data, err := os.ReadFile(filepath.Join(dir, manifestFile))
	if err != nil {
		t.Fatal(err)
	}
	var raw map[string]any
	if err := json.Unmarshal(data, &raw); err != nil {
		t.Fatalf("manifest not valid JSON: %v", err)
	}
}

// TestResumeRefusesMismatchedParams guards against silently mixing
// tables from different seeds or scales in one output directory.
func TestResumeRefusesMismatchedParams(t *testing.T) {
	dir := t.TempDir()
	m := newManifest(11, 50, true, "cafe")
	if err := m.save(dir); err != nil {
		t.Fatal(err)
	}
	var stdout, stderr bytes.Buffer
	code := run([]string{"-out", dir, "-resume", "-quick", "-scale", "50", "-seed", "12",
		"-only", "^none$"}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit = %d, want 1\nstderr:\n%s", code, &stderr)
	}
	if !strings.Contains(stderr.String(), "incompatible") {
		t.Fatalf("stderr missing mismatch explanation:\n%s", &stderr)
	}
}

// quickEdge mirrors the -quick overrides run() applies to EdgeScale, so
// the budget tests can price exactly the configs the sweep will submit.
func quickEdge() core.Setting {
	s := core.EdgeScale()
	s.Warmup, s.Duration, s.Stagger = 5*sim.Second, 20*sim.Second, 2*sim.Second
	return s
}

// mathisHeapEstimate prices one MathisSweep run of the setting at the
// given fidelity tier, mirroring the sweep's config construction (the
// drop-timestamp cap is the only knob it sets beyond the setting).
func mathisHeapEstimate(s core.Setting, flows, tier int) int64 {
	cfg := s.Build(core.UniformFlows(flows, "reno", core.DefaultRTT), core.WithSeed(core.Seed(11)))
	cfg.MaxDropTimestamps = 1 << 20
	if tier > 0 {
		cfg = core.DegradeTier(cfg, tier)
	}
	return core.EstimateConfig(cfg).HeapBytes
}

// TestBudgetRejectionAndResume is the governance acceptance drill: under
// a heap budget every table1_edge config is priced over, the job is
// recorded as rejected — not failed, the sweep still exits zero — the
// sibling job completes, and a -resume retries the rejected job one
// fidelity tier lower, where it fits, runs, and is marked degraded.
func TestBudgetRejectionAndResume(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real sweeps")
	}
	// Pick the budget just under the cheapest full-fidelity edge config,
	// so admission rejects all of them without running anything — and
	// verify tier 1 degradation brings the dearest one back under it.
	edge := quickEdge()
	min0, max1 := int64(0), int64(0)
	for _, n := range edge.FlowCounts {
		if e := mathisHeapEstimate(edge, n, 0); min0 == 0 || e < min0 {
			min0 = e
		}
		if e := mathisHeapEstimate(edge, n, 1); e > max1 {
			max1 = e
		}
	}
	threshold := min0 - 128<<10
	if max1 >= threshold {
		t.Fatalf("estimator no longer separates tiers: tier1 max %d >= threshold %d", max1, threshold)
	}

	dir := t.TempDir()
	base := []string{
		"-out", dir, "-quick", "-scale", "100", "-seed", "11", "-parallel", "2",
		"-only", "^(table1_edge|ext_churn_core)$",
		"-mem-budget", fmt.Sprint(threshold),
	}
	var stdout, stderr bytes.Buffer
	code := run(base, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit = %d, want 0 (rejection is governance, not failure)\nstdout:\n%s\nstderr:\n%s",
			code, &stdout, &stderr)
	}
	if !strings.Contains(stdout.String(), "REJECTED (over budget)") {
		t.Fatalf("stdout missing rejection report:\n%s", &stdout)
	}
	if !strings.Contains(stdout.String(), "-resume to retry them at reduced fidelity") {
		t.Fatalf("stdout missing resume hint:\n%s", &stdout)
	}
	if _, err := os.Stat(filepath.Join(dir, "ext_churn_core.txt")); err != nil {
		t.Fatalf("sibling job output missing: %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, "table1_edge.txt")); err == nil {
		t.Fatal("rejected job left an output table")
	}

	m, err := loadManifest(dir)
	if err != nil || m == nil {
		t.Fatalf("manifest after rejection: %v, %v", m, err)
	}
	if rec := m.Jobs["ext_churn_core"]; rec == nil || rec.Status != "done" {
		t.Fatalf("sibling record: %+v", rec)
	}
	rec := m.Jobs["table1_edge"]
	if rec == nil || rec.Status != "rejected" || rec.Fidelity != 0 {
		t.Fatalf("rejected record: %+v", rec)
	}
	if !strings.Contains(rec.Error, string(budget.KindHeapBytes)) ||
		!strings.Contains(rec.Error, budget.StageAdmission) {
		t.Fatalf("rejection error not structured: %q", rec.Error)
	}
	// The raw manifest is greppable for rejections (the CI smoke relies
	// on this).
	data, err := os.ReadFile(filepath.Join(dir, manifestFile))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"status": "rejected"`) {
		t.Fatalf("manifest JSON missing rejected status:\n%s", data)
	}

	// Resume: the rejected job retries one fidelity tier lower and fits.
	runtime.GC() // settle test-process garbage under the in-flight heap check
	stdout.Reset()
	stderr.Reset()
	code = run(append(base, "-resume"), &stdout, &stderr)
	if code != 0 {
		t.Fatalf("resume exit = %d\nstdout:\n%s\nstderr:\n%s", code, &stdout, &stderr)
	}
	if !strings.Contains(stdout.String(), "retrying at reduced fidelity tier 1") {
		t.Fatalf("resume did not announce the fidelity retry:\n%s", &stdout)
	}
	if !strings.Contains(stdout.String(), "(degraded)") {
		t.Fatalf("resume did not mark the degraded result:\n%s", &stdout)
	}
	m, err = loadManifest(dir)
	if err != nil || m == nil {
		t.Fatalf("manifest after resume: %v, %v", m, err)
	}
	rec = m.Jobs["table1_edge"]
	if rec == nil || rec.Status != "done" || !rec.Degraded || rec.Fidelity != 1 {
		t.Fatalf("resumed record: %+v", rec)
	}
	if rec.Usage == nil || rec.Usage.Runs != len(edge.FlowCounts) || rec.Usage.Events == 0 {
		t.Fatalf("resumed record usage: %+v", rec.Usage)
	}
	table, err := os.ReadFile(filepath.Join(dir, "table1_edge.txt"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(table), "note: reduced fidelity: tier 1") ||
		!strings.Contains(string(table), ", degraded]") {
		t.Fatalf("degraded table not marked:\n%s", table)
	}
}

// TestResumeRefusesStaleJobSet: same sweep parameters, different job-set
// hash — the experiment definitions changed under the output directory.
func TestResumeRefusesStaleJobSet(t *testing.T) {
	dir := t.TempDir()
	m := newManifest(11, 50, true, "0000dead")
	if err := m.save(dir); err != nil {
		t.Fatal(err)
	}
	args := []string{"-out", dir, "-resume", "-quick", "-scale", "50", "-seed", "11",
		"-only", "^none$"}
	var stdout, stderr bytes.Buffer
	code := run(args, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit = %d, want 1\nstderr:\n%s", code, &stderr)
	}
	if !strings.Contains(stderr.String(), "manifest is stale") {
		t.Fatalf("stderr missing staleness explanation:\n%s", &stderr)
	}
	// -force overrides the staleness check.
	stdout.Reset()
	stderr.Reset()
	code = run(append(args, "-force"), &stdout, &stderr)
	if code != 0 {
		t.Fatalf("-force exit = %d\nstderr:\n%s", code, &stderr)
	}
	if !strings.Contains(stderr.String(), "resuming anyway") {
		t.Fatalf("stderr missing -force acknowledgement:\n%s", &stderr)
	}
}

func TestParseByteSize(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want int64
	}{
		{"512", 512}, {"4k", 4 << 10}, {"512M", 512 << 20}, {"2G", 2 << 30},
	} {
		got, err := parseByteSize(tc.in)
		if err != nil || got != tc.want {
			t.Fatalf("parseByteSize(%q) = %d, %v; want %d", tc.in, got, err, tc.want)
		}
	}
	for _, bad := range []string{"", "-1", "0", "12parsecs", "G"} {
		if _, err := parseByteSize(bad); err == nil {
			t.Fatalf("parseByteSize(%q) accepted", bad)
		}
	}
}

func TestBadFlags(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-only", "("}, &stdout, &stderr); code != 2 {
		t.Fatalf("bad -only exit = %d, want 2", code)
	}
	stderr.Reset()
	if code := run([]string{"-no-such-flag"}, &stdout, &stderr); code != 2 {
		t.Fatalf("bad flag exit = %d, want 2", code)
	}
	stderr.Reset()
	if code := run([]string{"-out", t.TempDir(), "-mem-budget", "12parsecs"}, &stdout, &stderr); code != 2 {
		t.Fatalf("bad -mem-budget exit = %d, want 2\nstderr:\n%s", code, &stderr)
	}
	// -panicjob that matches nothing is a usage error, not a silent
	// no-op drill.
	stderr.Reset()
	dir := t.TempDir()
	if code := run([]string{"-out", dir, "-only", "^none$", "-panicjob", "typo_job"}, &stdout, &stderr); code != 2 {
		t.Fatalf("unmatched -panicjob exit = %d, want 2\nstderr:\n%s", code, &stderr)
	}
	if !strings.Contains(stderr.String(), "typo_job") {
		t.Fatalf("stderr does not name the unmatched job:\n%s", &stderr)
	}
	// A heartbeat at or above a third of the TTL is a takeover hazard
	// and is rejected up front, not discovered mid-sweep.
	stderr.Reset()
	if code := run([]string{"-out", t.TempDir(), "-lease-ttl", "9s", "-lease-heartbeat", "3s"}, &stdout, &stderr); code != 2 {
		t.Fatalf("heartbeat ≥ ttl/3 exit = %d, want 2\nstderr:\n%s", code, &stderr)
	}
	if !strings.Contains(stderr.String(), "heartbeat") {
		t.Fatalf("stderr does not explain the heartbeat rejection:\n%s", &stderr)
	}
}

func TestWriteTableChecksErrors(t *testing.T) {
	dir := t.TempDir()
	tab := report.NewTable("stub", "a", "b")
	tab.AddRow(1, 2)
	// Happy path writes the footer and closes cleanly.
	path := filepath.Join(dir, "ok.txt")
	if err := writeTable(path, tab, 7, time.Now(), false); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "[seed 7, wall ") {
		t.Fatalf("footer missing:\n%s", data)
	}
	if strings.Contains(string(data), "degraded") {
		t.Fatalf("full-fidelity table carries a degraded marker:\n%s", data)
	}
	// A degraded table says so in its footer.
	dpath := filepath.Join(dir, "degraded.txt")
	if err := writeTable(dpath, tab, 7, time.Now(), true); err != nil {
		t.Fatal(err)
	}
	data, err = os.ReadFile(dpath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), ", degraded]") {
		t.Fatalf("degraded footer missing:\n%s", data)
	}
	// Unwritable path fails loudly instead of being dropped.
	if err := writeTable(filepath.Join(dir, "no/such/dir/x.txt"), tab, 7, time.Now(), false); err == nil {
		t.Fatal("writeTable to missing directory succeeded")
	}
}

// TestStoreCacheAndManifestRecovery: after a sweep commits a job to the
// content-addressed store, a resume whose derived views are gone — the
// output files deleted, the manifest overwritten with garbage — must
// quarantine the corrupt manifest, rebuild its state from the
// write-ahead journal, and serve the job's bytes back from the store
// without recomputing anything.
func TestStoreCacheAndManifestRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real sweeps")
	}
	dir := t.TempDir()
	base := []string{
		"-out", dir, "-quick", "-scale", "50", "-seed", "11", "-parallel", "4",
		"-only", "^ext_churn_core$",
	}
	var stdout, stderr bytes.Buffer
	if code := run(base, &stdout, &stderr); code != 0 {
		t.Fatalf("exit = %d\nstdout:\n%s\nstderr:\n%s", code, &stdout, &stderr)
	}
	st, err := store.Open(filepath.Join(dir, "store"))
	if err != nil {
		t.Fatal(err)
	}
	skeys, err := st.Keys()
	if err != nil || len(skeys) != 1 {
		t.Fatalf("store keys after sweep: %v, %v", skeys, err)
	}
	want, err := os.ReadFile(filepath.Join(dir, "ext_churn_core.json"))
	if err != nil {
		t.Fatal(err)
	}

	// Scorch the derived views: outputs gone, manifest torn mid-write.
	for _, f := range []string{"ext_churn_core.txt", "ext_churn_core.json"} {
		if err := os.Remove(filepath.Join(dir, f)); err != nil {
			t.Fatal(err)
		}
	}
	if err := os.WriteFile(filepath.Join(dir, manifestFile), []byte(`{"version": 3, "jo`), 0o644); err != nil {
		t.Fatal(err)
	}

	stdout.Reset()
	stderr.Reset()
	if code := run(append(base, "-resume"), &stdout, &stderr); code != 0 {
		t.Fatalf("resume exit = %d\nstdout:\n%s\nstderr:\n%s", code, &stdout, &stderr)
	}
	if !strings.Contains(stdout.String(), "(cached)") {
		t.Fatalf("resume recomputed instead of serving the store:\n%s", &stdout)
	}
	if _, err := os.Stat(filepath.Join(dir, manifestFile+".corrupt")); err != nil {
		t.Fatalf("corrupt manifest not quarantined: %v", err)
	}
	got, err := os.ReadFile(filepath.Join(dir, "ext_churn_core.json"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("restored JSON differs from the original:\n--- want\n%s--- got\n%s", want, got)
	}
	m, err := loadManifest(dir)
	if err != nil || m == nil {
		t.Fatalf("rebuilt manifest: %v, %v", m, err)
	}
	if m.Seed != 11 || m.Scale != 50 || !m.Quick {
		t.Fatalf("rebuilt manifest lost the sweep parameters: %+v", m)
	}
	rec := m.Jobs["ext_churn_core"]
	if rec == nil || rec.Status != "done" || !rec.Cached {
		t.Fatalf("rebuilt record not marked cached: %+v", rec)
	}
}

// TestLeaseHeldSkipsJob: a job freshly claimed by another live worker is
// left to it — the sweep reports the job as claimed, runs nothing for
// it, and still exits zero. This is the multi-process sharding contract.
func TestLeaseHeldSkipsJob(t *testing.T) {
	dir := t.TempDir()
	ls, err := store.NewLeases(dir, "other-host-999", time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ls.Acquire("ext_churn_core"); err != nil {
		t.Fatal(err)
	}
	var stdout, stderr bytes.Buffer
	code := run([]string{
		"-out", dir, "-quick", "-scale", "50", "-seed", "11",
		"-only", "^ext_churn_core$",
	}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit = %d\nstdout:\n%s\nstderr:\n%s", code, &stdout, &stderr)
	}
	if !strings.Contains(stdout.String(), "claimed by other workers") {
		t.Fatalf("stdout missing lease-held report:\n%s", &stdout)
	}
	if _, err := os.Stat(filepath.Join(dir, "ext_churn_core.txt")); err == nil {
		t.Fatal("job ran despite a live foreign lease")
	}
}

// TestWorkersRunJobs: -workers 2 drains the sweep through two claim
// loops; every job completes exactly once and the journal holds one
// intent per executed job.
func TestWorkersRunJobs(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real sweeps")
	}
	dir := t.TempDir()
	var stdout, stderr bytes.Buffer
	code := run([]string{
		"-out", dir, "-quick", "-scale", "50", "-seed", "11", "-parallel", "2",
		"-workers", "2", "-only", "^ext_(burstloss|churn)_core$",
	}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit = %d\nstdout:\n%s\nstderr:\n%s", code, &stdout, &stderr)
	}
	m, err := loadManifest(dir)
	if err != nil || m == nil {
		t.Fatalf("manifest: %v, %v", m, err)
	}
	intents := map[string]int{}
	if _, _, err := store.OpenJournalSet(store.OSFS(), dir, "test-reader", func(r store.JournalRecord) error {
		if r.Op == store.OpIntent {
			intents[r.Job]++
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"ext_burstloss_core", "ext_churn_core"} {
		if rec := m.Jobs[name]; rec == nil || rec.Status != "done" {
			t.Fatalf("%s record: %+v", name, rec)
		}
		if _, err := os.Stat(filepath.Join(dir, name+".txt")); err != nil {
			t.Fatalf("%s output: %v", name, err)
		}
		if intents[name] != 1 {
			t.Fatalf("%s journaled %d intents, want 1", name, intents[name])
		}
	}
}
