package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"ccatscale/internal/core"
	"ccatscale/internal/report"
	"ccatscale/internal/sim"
	"ccatscale/internal/units"
)

// testSetting is a deliberately tiny regime so the regression tests
// stay in the seconds range.
func testSetting() core.Setting {
	return core.Setting{
		Name:       "ReproduceTest",
		Rate:       20 * units.MbitPerSec,
		Buffer:     256 * units.KB,
		FlowCounts: []int{2},
		Warmup:     sim.Second,
		Duration:   3 * sim.Second,
		Stagger:    100 * sim.Millisecond,
	}
}

// TestMathisTableDeterministic is the repeatability regression: the
// same seed must yield byte-identical table text, or every "reproduce"
// claim in EXPERIMENTS.md is void.
func TestMathisTableDeterministic(t *testing.T) {
	render := func() string {
		tab, err := mathisTable(testSetting(), 17, 2, table1View)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := tab.WriteText(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	a, b := render(), render()
	if a != b {
		t.Fatalf("same seed, different table text:\n--- first\n%s--- second\n%s", a, b)
	}
	if !strings.Contains(a, "ReproduceTest") {
		t.Fatalf("table text missing setting name:\n%s", a)
	}
}

func TestManifestRoundTrip(t *testing.T) {
	dir := t.TempDir()
	m := newManifest(7, 10, true)
	m.Jobs["fig4_edge"] = &jobRecord{Status: "done", File: "fig4_edge.txt", Wall: "1s"}
	m.Jobs["fig5_core"] = &jobRecord{Status: "failed", Error: "boom", FailureFile: "fig5_core.failed.json"}
	if err := m.save(dir); err != nil {
		t.Fatal(err)
	}
	got, err := loadManifest(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got == nil {
		t.Fatal("saved manifest not found")
	}
	if got.Seed != 7 || got.Scale != 10 || !got.Quick {
		t.Fatalf("parameters did not round-trip: %+v", got)
	}
	if rec := got.Jobs["fig5_core"]; rec == nil || rec.Status != "failed" || rec.Error != "boom" {
		t.Fatalf("failed job record did not round-trip: %+v", rec)
	}

	// done() requires both the manifest entry and the output file.
	if m.done(dir, "fig4_edge") {
		t.Fatal("done with no output file on disk")
	}
	if err := os.WriteFile(filepath.Join(dir, "fig4_edge.txt"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if !m.done(dir, "fig4_edge") {
		t.Fatal("not done despite record + file")
	}
	if m.done(dir, "fig5_core") {
		t.Fatal("failed job reported done")
	}
	if m.done(dir, "no_such_job") {
		t.Fatal("unknown job reported done")
	}
}

func TestManifestAbsent(t *testing.T) {
	m, err := loadManifest(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if m != nil {
		t.Fatalf("manifest from empty dir: %+v", m)
	}
}

func TestManifestCompatible(t *testing.T) {
	m := newManifest(7, 10, false)
	if err := m.compatible(7, 10, false); err != nil {
		t.Fatalf("matching params rejected: %v", err)
	}
	for _, tc := range []struct{ seed uint64; scale int; quick bool }{
		{8, 10, false}, {7, 20, false}, {7, 10, true},
	} {
		if err := m.compatible(tc.seed, tc.scale, tc.quick); err == nil {
			t.Fatalf("mismatched params %+v accepted", tc)
		}
	}
}

// TestRunIsolationAndResume is the acceptance drill: a job with an
// injected panic fails with a replayable record, the other selected job
// still completes, the sweep exits nonzero — and a -resume re-executes
// only the failed job.
func TestRunIsolationAndResume(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real sweeps")
	}
	dir := t.TempDir()
	base := []string{
		"-out", dir, "-quick", "-scale", "50", "-seed", "11", "-parallel", "4",
		"-only", "^ext_(burstloss|churn)_core$",
	}
	var stdout, stderr bytes.Buffer
	code := run(append(base, "-panicjob", "ext_burstloss_core"), &stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit = %d, want 1\nstdout:\n%s\nstderr:\n%s", code, &stdout, &stderr)
	}
	if !strings.Contains(stderr.String(), "ext_burstloss_core") || !strings.Contains(stderr.String(), "FAILED") {
		t.Fatalf("stderr missing failure report:\n%s", &stderr)
	}
	if !strings.Contains(stdout.String(), "ext_churn_core") {
		t.Fatalf("healthy job did not run:\n%s", &stdout)
	}
	if _, err := os.Stat(filepath.Join(dir, "ext_churn_core.txt")); err != nil {
		t.Fatalf("healthy job output missing: %v", err)
	}

	m, err := loadManifest(dir)
	if err != nil || m == nil {
		t.Fatalf("manifest after failure: %v, %v", m, err)
	}
	if rec := m.Jobs["ext_churn_core"]; rec == nil || rec.Status != "done" {
		t.Fatalf("churn record: %+v", rec)
	}
	rec := m.Jobs["ext_burstloss_core"]
	if rec == nil || rec.Status != "failed" || rec.FailureFile == "" {
		t.Fatalf("burstloss record: %+v", rec)
	}

	// The failure record must carry enough to replay: reason, seed,
	// virtual time of the injected fault, and the config.
	f, err := os.Open(filepath.Join(dir, rec.FailureFile))
	if err != nil {
		t.Fatal(err)
	}
	re, err := core.ReadRunError(f)
	f.Close()
	if err != nil {
		t.Fatal(err)
	}
	if re.Reason != "panic" || !strings.Contains(re.PanicMsg, "injected fault") {
		t.Fatalf("failure record reason/panic: %q / %q", re.Reason, re.PanicMsg)
	}
	if re.VirtualTime != sim.Second {
		t.Fatalf("failure virtual time = %v, want %v", re.VirtualTime, sim.Second)
	}
	if re.Config.Seed == 0 || len(re.Config.Flows) == 0 {
		t.Fatalf("failure record config incomplete: %+v", re.Config)
	}
	if re.ReplayCommand() == "" {
		t.Fatal("failure record has no replay command")
	}

	// Resume without the fault: only the failed job re-executes.
	stdout.Reset()
	stderr.Reset()
	code = run(append(base, "-resume"), &stdout, &stderr)
	if code != 0 {
		t.Fatalf("resume exit = %d\nstdout:\n%s\nstderr:\n%s", code, &stdout, &stderr)
	}
	if !strings.Contains(stdout.String(), "ext_churn_core") || !strings.Contains(stdout.String(), "skipped") {
		t.Fatalf("resume did not skip the completed job:\n%s", &stdout)
	}
	if !strings.Contains(stdout.String(), filepath.Join(dir, "ext_burstloss_core.txt")) {
		t.Fatalf("resume did not re-execute the failed job:\n%s", &stdout)
	}
	m, err = loadManifest(dir)
	if err != nil || m == nil {
		t.Fatalf("manifest after resume: %v, %v", m, err)
	}
	if rec := m.Jobs["ext_burstloss_core"]; rec == nil || rec.Status != "done" || rec.Error != "" {
		t.Fatalf("burstloss record after resume: %+v", rec)
	}
	// Manifest is valid JSON on disk (atomic save).
	data, err := os.ReadFile(filepath.Join(dir, manifestFile))
	if err != nil {
		t.Fatal(err)
	}
	var raw map[string]any
	if err := json.Unmarshal(data, &raw); err != nil {
		t.Fatalf("manifest not valid JSON: %v", err)
	}
}

// TestResumeRefusesMismatchedParams guards against silently mixing
// tables from different seeds or scales in one output directory.
func TestResumeRefusesMismatchedParams(t *testing.T) {
	dir := t.TempDir()
	m := newManifest(11, 50, true)
	if err := m.save(dir); err != nil {
		t.Fatal(err)
	}
	var stdout, stderr bytes.Buffer
	code := run([]string{"-out", dir, "-resume", "-quick", "-scale", "50", "-seed", "12",
		"-only", "^none$"}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit = %d, want 1\nstderr:\n%s", code, &stderr)
	}
	if !strings.Contains(stderr.String(), "incompatible") {
		t.Fatalf("stderr missing mismatch explanation:\n%s", &stderr)
	}
}

func TestBadFlags(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-only", "("}, &stdout, &stderr); code != 2 {
		t.Fatalf("bad -only exit = %d, want 2", code)
	}
	stderr.Reset()
	if code := run([]string{"-no-such-flag"}, &stdout, &stderr); code != 2 {
		t.Fatalf("bad flag exit = %d, want 2", code)
	}
	// -panicjob that matches nothing is a usage error, not a silent
	// no-op drill.
	stderr.Reset()
	dir := t.TempDir()
	if code := run([]string{"-out", dir, "-only", "^none$", "-panicjob", "typo_job"}, &stdout, &stderr); code != 2 {
		t.Fatalf("unmatched -panicjob exit = %d, want 2\nstderr:\n%s", code, &stderr)
	}
	if !strings.Contains(stderr.String(), "typo_job") {
		t.Fatalf("stderr does not name the unmatched job:\n%s", &stderr)
	}
}

func TestWriteTableChecksErrors(t *testing.T) {
	dir := t.TempDir()
	tab := report.NewTable("stub", "a", "b")
	tab.AddRow(1, 2)
	// Happy path writes the footer and closes cleanly.
	path := filepath.Join(dir, "ok.txt")
	if err := writeTable(path, tab, 7, time.Now()); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "[seed 7, wall ") {
		t.Fatalf("footer missing:\n%s", data)
	}
	// Unwritable path fails loudly instead of being dropped.
	if err := writeTable(filepath.Join(dir, "no/such/dir/x.txt"), tab, 7, time.Now()); err == nil {
		t.Fatal("writeTable to missing directory succeeded")
	}
}
