//go:build chaos

package main

import (
	"fmt"
	"os"
	"strconv"

	"ccatscale/internal/store"
	"ccatscale/internal/store/chaostest"
)

// sweepFS, in the chaos build, wraps the real filesystem with the
// crash-injection harness. Two environment variables schedule the
// crash:
//
//	CCATSCALE_CHAOS_KILL=N  die at the Nth syscall boundary of the
//	                        durability protocol (0 or unset = never)
//	CCATSCALE_CHAOS_TORN=N  persist only N bytes of the write in
//	                        flight when the kill lands on a write
//	                        (-1 = the whole write; default 0)
//
// The kill is a real os.Exit(137) — the same observable behavior as
// kill -9 — so the CI smoke can crash a live sweep at a seeded point,
// resume it, and prove the recovered output byte-identical to an
// uninterrupted run.
func sweepFS() store.FS {
	kill, err := parseChaosEnv("CCATSCALE_CHAOS_KILL", 0)
	if err != nil {
		fmt.Fprintln(os.Stderr, "reproduce:", err)
		os.Exit(2)
	}
	torn, err := parseChaosEnv("CCATSCALE_CHAOS_TORN", 0)
	if err != nil {
		fmt.Fprintln(os.Stderr, "reproduce:", err)
		os.Exit(2)
	}
	if kill == 0 {
		return store.OSFS()
	}
	return chaostest.Wrap(store.OSFS(), chaostest.Plan{
		KillAt:    uint64(kill),
		TornBytes: int(torn),
		OnKill: func() {
			fmt.Fprintf(os.Stderr, "reproduce: chaos kill at syscall boundary %d\n", kill)
			os.Exit(137)
		},
	})
}

func parseChaosEnv(name string, def int64) (int64, error) {
	v := os.Getenv(name)
	if v == "" {
		return def, nil
	}
	n, err := strconv.ParseInt(v, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("bad %s=%q: %v", name, v, err)
	}
	return n, nil
}
