package main

import (
	"context"
	"encoding/json"
	"net"
	"net/http"
	"net/http/pprof"
	"time"

	"ccatscale/internal/telemetry"
)

// startDebugServer serves net/http/pprof and a /metricsz JSON snapshot
// of the telemetry registry on addr (e.g. "localhost:6060"). It returns
// the bound address — addr may use port 0 for an ephemeral port — and a
// shutdown function the caller must invoke on exit: a graceful Shutdown
// lets an in-flight /metricsz scrape finish reading the final counters
// and releases the listener (tests that start sweeps in-process would
// otherwise leak one per run).
func startDebugServer(addr string, reg *telemetry.Registry) (string, func(), error) {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/metricsz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(reg.Snapshot()); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, err
	}
	srv := &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	go srv.Serve(ln) //nolint:errcheck // Shutdown below reaps it
	shutdown := func() {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		srv.Shutdown(ctx) //nolint:errcheck // best effort at exit
	}
	return ln.Addr().String(), shutdown, nil
}
