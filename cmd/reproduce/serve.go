package main

import (
	"encoding/json"
	"net"
	"net/http"
	"net/http/pprof"
	"time"

	"ccatscale/internal/telemetry"
)

// startDebugServer serves net/http/pprof and a /metricsz JSON snapshot
// of the telemetry registry on addr (e.g. "localhost:6060"). It returns
// the bound address, so addr may use port 0 for an ephemeral port. The
// server is opt-in and observation-only; it lives for the process and
// needs no shutdown.
func startDebugServer(addr string, reg *telemetry.Registry) (string, error) {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/metricsz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(reg.Snapshot()); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	srv := &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	go srv.Serve(ln) //nolint:errcheck // dies with the process
	return ln.Addr().String(), nil
}
