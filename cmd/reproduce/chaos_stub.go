//go:build !chaos

package main

import "ccatscale/internal/store"

// sweepFS returns the filesystem the sweep's durability protocol runs
// on. The default build uses the real one; the -tags chaos build wraps
// it with the crash-injection harness (see chaos_enabled.go).
func sweepFS() store.FS { return store.OSFS() }
