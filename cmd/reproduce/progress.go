package main

import (
	"fmt"
	"io"
	"sync"
	"time"

	"ccatscale/internal/core"
)

// progressTracker renders a live sweep status line to stderr about once
// a second: jobs done/running/rejected/failed, the current job's
// fidelity tier, and an ETA extrapolated from the budget estimator's
// predicted per-job cost. It is display-only — nothing it computes
// feeds back into the sweep.
type progressTracker struct {
	w     io.Writer
	start time.Time

	mu          sync.Mutex
	total       int
	weights     map[string]int64
	totalWeight int64
	doneWeight  int64
	done        int
	rejected    int
	failed      int
	current     string
	tier        int

	stop chan struct{}
	wg   sync.WaitGroup
}

// jobWeight prices one job with the same estimator admission control
// uses: the summed predicted processed-event counts over the setting's
// flow-count sweep. Jobs differ in CCA mix and RTT spread, but the
// event count is dominated by flows × rate × duration, which the
// estimator captures — good enough to weight an ETA.
func jobWeight(s core.Setting) int64 {
	var total int64
	for _, n := range s.FlowCounts {
		cfg := s.Build(core.UniformFlows(n, "reno", core.DefaultRTT))
		total += core.EstimateConfig(cfg).Processed
	}
	if total <= 0 {
		total = 1
	}
	return total
}

// newProgressTracker starts the ticker goroutine over the jobs that
// will actually run. Call finish() to stop it and print the summary.
func newProgressTracker(w io.Writer, jobs []job) *progressTracker {
	pt := &progressTracker{
		w:       w,
		start:   time.Now(),
		total:   len(jobs),
		weights: make(map[string]int64, len(jobs)),
		stop:    make(chan struct{}),
	}
	for _, j := range jobs {
		wt := jobWeight(j.setting)
		pt.weights[j.name] = wt
		pt.totalWeight += wt
	}
	pt.wg.Add(1)
	go func() {
		defer pt.wg.Done()
		tick := time.NewTicker(time.Second)
		defer tick.Stop()
		for {
			select {
			case <-pt.stop:
				return
			case <-tick.C:
				pt.print()
			}
		}
	}()
	return pt
}

// jobStarted records the job now running and its fidelity tier.
func (pt *progressTracker) jobStarted(name string, tier int) {
	pt.mu.Lock()
	pt.current, pt.tier = name, tier
	pt.mu.Unlock()
}

// jobEnded records one job's outcome ("done", "rejected", "failed").
func (pt *progressTracker) jobEnded(name, status string) {
	pt.mu.Lock()
	switch status {
	case "rejected":
		pt.rejected++
	case "failed":
		pt.failed++
	default:
		pt.done++
	}
	pt.doneWeight += pt.weights[name]
	if pt.current == name {
		pt.current = ""
	}
	pt.mu.Unlock()
}

// finish stops the ticker and prints a final summary line.
func (pt *progressTracker) finish() {
	close(pt.stop)
	pt.wg.Wait()
	pt.print()
}

func (pt *progressTracker) print() {
	pt.mu.Lock()
	defer pt.mu.Unlock()
	elapsed := time.Since(pt.start).Round(time.Second)
	line := fmt.Sprintf("progress: %d/%d done", pt.done, pt.total)
	if pt.rejected > 0 {
		line += fmt.Sprintf(", %d rejected", pt.rejected)
	}
	if pt.failed > 0 {
		line += fmt.Sprintf(", %d failed", pt.failed)
	}
	if pt.current != "" {
		line += fmt.Sprintf(", running %s (tier %d)", pt.current, pt.tier)
	}
	line += fmt.Sprintf(", elapsed %s", elapsed)
	if pt.doneWeight > 0 && pt.doneWeight < pt.totalWeight {
		eta := time.Duration(float64(time.Since(pt.start)) *
			float64(pt.totalWeight-pt.doneWeight) / float64(pt.doneWeight))
		line += fmt.Sprintf(", eta %s", eta.Round(time.Second))
	}
	fmt.Fprintln(pt.w, line)
}
