package main

import (
	"context"
	"fmt"
	"os"

	"ccatscale/internal/core"
	"ccatscale/internal/metrics"
	"ccatscale/internal/report"
	"ccatscale/internal/schema"
	"ccatscale/internal/sim"
	"ccatscale/internal/units"
)

// loadScenarioJob reads, parses, and compiles one scenario document
// into a sweep job, so a file-driven run flows through exactly the
// same journal/store/lease machinery as the paper sweep. The document
// carries its own seed; it is folded into the job name so two
// scenarios differing only by seed commit under different keys.
func loadScenarioJob(path string) (job, uint64, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return job{}, 0, err
	}
	scn, err := schema.ParseScenario(data)
	if err != nil {
		return job{}, 0, fmt.Errorf("%s: %w", path, err)
	}
	b, err := core.NewScenarioBuilder(scn)
	if err != nil {
		return job{}, 0, fmt.Errorf("%s: %w", path, err)
	}
	name := fmt.Sprintf("scenario_%s_seed%d", scn.Name, scn.Seed)
	return job{
		name:    name,
		setting: b.Setting(),
		run: func(s core.Setting) (*report.Table, error) {
			return scenarioTable(b, scn, s)
		},
	}, scn.Seed, nil
}

// scenarioTable runs the compiled scenario under the job's governed
// setting copy — so -audit, -runwall, budget flags, and the fidelity
// ladder overlay the document like any other job — and renders the
// canonical per-flow table plus per-link notes for topology runs.
func scenarioTable(b *core.ScenarioBuilder, scn *schema.Scenario, s core.Setting) (*report.Table, error) {
	opts := []core.ConfigOption{core.WithSeed(b.Seed())}
	if scn.SeriesIntervalS > 0 {
		iv := sim.Time(scn.SeriesIntervalS * float64(sim.Second))
		opts = append(opts, func(c *core.RunConfig) { c.SeriesInterval = iv })
	}
	cfg := s.Build(b.Flows(), opts...)
	ctx := s.Ctx
	if ctx == nil {
		ctx = context.Background()
	}
	res, err := core.RunCtx(ctx, cfg)
	if err != nil {
		return nil, err
	}
	tab := report.NewTable("Scenario: "+scn.Name,
		"flow", "cca", "rtt_ms", "goodput_mbps", "delivered_segs", "drops", "ecn_resp", "retx_rate")
	goodputs := make([]float64, len(res.Flows))
	for i, f := range res.Flows {
		goodputs[i] = float64(f.Goodput)
		retx := 0.0
		if f.SegmentsSent > 0 {
			retx = 1 - float64(f.SegmentsDelivered)/float64(f.SegmentsSent)
			if retx < 0 {
				retx = 0
			}
		}
		tab.AddRow(i, f.Spec.CCA,
			float64(f.Spec.RTT)/float64(sim.Millisecond),
			float64(f.Goodput)/float64(units.MbitPerSec),
			f.SegmentsDelivered, f.Drops, f.ECNResponses, report.Pct(retx))
	}
	tab.AddNote("aggregate goodput %.2f Mbps, utilization %s, JFI %.4f",
		float64(res.AggregateGoodput)/float64(units.MbitPerSec),
		report.Pct(res.Utilization), metrics.JFI(goodputs))
	if res.CEMarks > 0 {
		tab.AddNote("ECN: %d CE marks across the fabric", res.CEMarks)
	}
	for _, l := range res.Links {
		tab.AddNote("link %-12s rate %7.1f Mbps  util %6s  tx %d pkts  drops %d B  CE %d",
			l.Name, float64(l.Rate)/float64(units.MbitPerSec),
			report.Pct(l.Utilization), l.TxPackets, l.DropWire, l.CEMarks)
	}
	if res.Converged {
		tab.AddNote("converged at %v (window %v)", res.Window, res.Window)
	}
	return tab, nil
}
